package rdp_test

import (
	"fmt"
	"time"

	rdp "repro"
)

// The headline guarantee: a result chases its mobile host across a
// migration.
func Example() {
	world := rdp.NewWorld(rdp.DefaultConfig())
	mh := world.AddMH(1, 1)

	var req rdp.RequestID
	world.Schedule(0, func() { req = mh.IssueRequest(1, []byte("hello")) })
	world.Schedule(60*time.Millisecond, func() { world.Migrate(1, 2) })
	world.RunUntil(2 * time.Second)

	fmt.Println("delivered:", mh.Seen(req))
	fmt.Println("hand-offs:", world.Stats.Handoffs.Value())
	// Output:
	// delivered: true
	// hand-offs: 1
}

// Results wait out inactivity: the proxy retransmits when the host
// reactivates.
func ExampleWorld_SetActive() {
	world := rdp.NewWorld(rdp.DefaultConfig())
	mh := world.AddMH(1, 1)

	var req rdp.RequestID
	world.Schedule(0, func() { req = mh.IssueRequest(1, []byte("q")) })
	world.Schedule(50*time.Millisecond, func() { world.SetActive(1, false) })
	world.Schedule(800*time.Millisecond, func() { world.SetActive(1, true) })
	world.RunUntil(3 * time.Second)

	fmt.Println("delivered:", mh.Seen(req))
	fmt.Println("retransmissions:", world.Stats.Retransmissions.Value())
	// Output:
	// delivered: true
	// retransmissions: 1
}

// A trace recorder captures the protocol flow for inspection.
func ExampleTraceRecorder() {
	rec := rdp.NewTrace()
	cfg := rdp.DefaultConfig()
	cfg.Observer = rec.Observe
	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1)
	world.Schedule(0, func() { mh.IssueRequest(1, []byte("q")) })
	world.RunUntil(time.Second)

	err := rec.ExpectSequence([]rdp.TraceStep{
		{Kind: rdp.KindRequest},
		{Kind: rdp.KindServerRequest},
		{Kind: rdp.KindServerResult},
		{Kind: rdp.KindResultDeliver},
		{Kind: rdp.KindAckMH},
	})
	fmt.Println("flow matches the paper:", err == nil)
	// Output:
	// flow matches the paper: true
}

// The recorder renders traces as space-time diagrams — the visual form
// of the paper's Figures 3 and 4.
func ExampleTraceRecorder_Diagram() {
	rec := rdp.NewTrace()
	cfg := rdp.DefaultConfig()
	cfg.Observer = rec.Observe
	world := rdp.NewWorld(cfg)
	mh := world.AddMH(1, 1)
	world.Schedule(0, func() { mh.IssueRequest(1, []byte("q")) })
	world.Schedule(40*time.Millisecond, func() { world.Migrate(1, 2) })
	world.RunUntil(time.Second)
	fmt.Print(rec.Diagram(rdp.DiagramOptions{LaneWidth: 13}))
	// Output:
	// time            mh1         mss1         mss2         srv1
	// 20ms             |----join--->|            |            |
	// 20ms             |--request-->|            |            |
	// 25ms             |            |-------srv-request------>|
	// 60ms             |----------greet--------->|            |
	// 65ms             |            |<--dereg----|            |
	// 70ms             |            |--deregack->|            |
	// 75ms             |            |<update-cur-|            |
	// 180ms            |            |<------srv-result--------|
	// 185ms            |            |-result-fwd>|            |
	// 205ms            |<--------result----------|            |
	// 225ms            |-----------ack---------->|            |
	// 230ms            |            |<-ack-fwd---|            |
}

// The same protocol stack runs over real loopback TCP sockets — the
// paper's planned "distributed processes within a Linux network". This
// example is compile-checked only (its timing is wall-clock).
func ExampleNewTCPWorld() {
	rt := rdp.NewLiveRuntime(1)
	world, net, err := rdp.NewTCPWorld(rt, rdp.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer net.Close()
	rt.Start()
	defer rt.Stop()

	done := make(chan struct{}, 1)
	rt.Do(func() {
		mh := world.AddMH(1, 1)
		mh.OnResult(func(_ rdp.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- struct{}{}
			}
		})
		mh.IssueRequest(1, []byte("over real sockets"))
	})
	<-done
	fmt.Println("delivered over TCP")
	// Output:
	// delivered over TCP
}

// SIDAM queries ride RDP: ask any Traffic Information Server, receive
// the owning server's reading wherever you have driven meanwhile.
func ExampleInstallSidam() {
	cfg := rdp.DefaultConfig()
	cfg.NumServers = 3
	world := rdp.NewWorld(cfg)
	net := rdp.InstallSidam(world, rdp.SidamConfig{Regions: 9})

	mh := world.AddMH(1, 1)
	mh.OnResult(func(_ rdp.RequestID, payload []byte, dup bool) {
		if dup {
			return
		}
		if r, err := rdp.ParseReading(payload); err == nil {
			fmt.Printf("region %d congestion %d%%\n", r.Region, r.Congestion)
		}
	})
	world.Schedule(0, func() { mh.IssueRequest(net.AnyTIS(), rdp.UpdatePayload(4, 55)) })
	world.Schedule(time.Second, func() { mh.IssueRequest(net.AnyTIS(), rdp.QueryPayload(4)) })
	world.RunUntil(3 * time.Second)
	// Output:
	// region 4 congestion 55%
	// region 4 congestion 55%
}

// Queued RPC accepts invocations while disconnected and completes them
// after reconnection.
func ExampleQRPCClient() {
	world := rdp.NewWorld(rdp.DefaultConfig())
	mh := world.AddMH(1, 1)
	client := rdp.NewQRPC(world, mh, rdp.QRPCOptions{Timeout: 300 * time.Millisecond})

	world.Schedule(0, func() { world.SetActive(1, false) }) // offline
	world.Schedule(10*time.Millisecond, func() {
		client.Invoke(1, []byte("queued offline"), func(p []byte) {
			fmt.Printf("reply: %s\n", p)
		})
	})
	world.Schedule(time.Second, func() { world.SetActive(1, true) }) // back online
	world.RunUntil(5 * time.Second)
	// Output:
	// reply: re:queued offline
}
