package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(out), runErr
}

func TestFig3Diagram(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-scenario", "fig3"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The diagram must show the protocol's signature sequence as lanes
	// and labeled arrows: greet, dereg, deregack, update, retransmitted
	// result, final ack.
	for _, want := range []string{"mh1", "mss3", "srv1", "greet", "dereg", "result", "ack"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 diagram missing %q", want)
		}
	}
	if !strings.Contains(out, "-->") && !strings.Contains(out, "->") {
		t.Error("fig3 diagram has no arrows")
	}
}

func TestFig4DiagramWithDrops(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-scenario", "fig4", "-drops", "-width", "16"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 4", "del-pref"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 diagram missing %q", want)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-scenario", "nope"}) }); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-zzz"}) }); err == nil {
		t.Fatal("bad flag accepted")
	}
}
