// Command rdpviz renders the paper's worked examples as ASCII
// space-time diagrams — the same visual form as the paper's Figures 3
// and 4 (one lane per node, time flowing downward, one labeled arrow
// per message).
//
//	rdpviz -scenario fig3            # Figure 3: migration chases a result
//	rdpviz -scenario fig4 -drops     # Figure 4, including lost frames
//	rdpviz -scenario fig3 -width 18  # wider lanes for long labels
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdpviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdpviz", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "fig3", "scenario to draw: fig3 or fig4")
		width    = fs.Int("width", 14, "columns per node lane")
		drops    = fs.Bool("drops", false, "draw dropped frames (head 'x')")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec := trace.New()
	switch *scenario {
	case "fig3":
		fmt.Println("Figure 3 — one request; the host migrates twice while the result is in flight.")
		experiments.ReplayFigure3(rec.Observe)
	case "fig4":
		fmt.Println("Figure 4 — three overlapping requests on one proxy; del-pref / RKpR / del-proxy life-cycle.")
		experiments.ReplayFigure4(rec.Observe)
	default:
		return fmt.Errorf("unknown scenario %q (fig3 or fig4)", *scenario)
	}
	fmt.Println()
	fmt.Print(rec.Diagram(trace.DiagramOptions{LaneWidth: *width, ShowDrops: *drops}))
	return nil
}
