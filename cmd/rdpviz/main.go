// Command rdpviz renders the paper's worked examples as ASCII
// space-time diagrams — the same visual form as the paper's Figures 3
// and 4 (one lane per node, time flowing downward, one labeled arrow
// per message).
//
//	rdpviz -scenario fig3            # Figure 3: migration chases a result
//	rdpviz -scenario fig4 -drops     # Figure 4, including lost frames
//	rdpviz -scenario e15 -drops      # E15: windowed downlink, coalescing, SACK, RTO repair
//	rdpviz -scenario fig3 -width 18  # wider lanes for long labels
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdpviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdpviz", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "fig3", "scenario to draw: fig3, fig4 or e15")
		width    = fs.Int("width", 14, "columns per node lane")
		drops    = fs.Bool("drops", false, "draw dropped frames (head 'x')")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec := trace.New()
	switch *scenario {
	case "fig3":
		fmt.Println("Figure 3 — one request; the host migrates twice while the result is in flight.")
		experiments.ReplayFigure3(rec.Observe)
	case "fig4":
		fmt.Println("Figure 4 — three overlapping requests on one proxy; del-pref / RKpR / del-proxy life-cycle.")
		experiments.ReplayFigure4(rec.Observe)
	case "e15":
		fmt.Println("E15 — three results over the windowed downlink: coalesced wtp-data frames, a dropped")
		fmt.Println("frame (run with -drops to see it), the SACK from the out-of-order arrival, and the")
		fmt.Println("RTO retransmission that repairs the hole.")
		experiments.ReplayE15Windowed(rec.Observe)
	default:
		return fmt.Errorf("unknown scenario %q (fig3, fig4 or e15)", *scenario)
	}
	fmt.Println()
	fmt.Print(rec.Diagram(trace.DiagramOptions{LaneWidth: *width, ShowDrops: *drops}))
	return nil
}
