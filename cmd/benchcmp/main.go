// Command benchcmp compares two rdpbench -json snapshots and fails on
// regression. It is the gate behind `make bench-compare`:
//
//	benchcmp -base bench/baseline.json -new /tmp/current.json
//
// With -trajectory it instead reads every dated BENCH_*.json snapshot
// under -bench-dir in stamp order and prints the per-experiment
// headline-metric history — the growth record nothing rendered before.
//
// Allocation counts are gated strictly (the simulator is deterministic,
// so allocs/op barely moves between runs of the same code), wall times
// are reported but not gated by default (CI machines are noisy), and
// the per-experiment headline metric must match the baseline
// near-exactly — a seeded simulation that produces different numbers
// has changed behavior, not just speed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/benchcmp"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run returns the process exit code: 0 on pass, 1 on regression.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	var (
		basePath   = fs.String("base", "bench/baseline.json", "baseline snapshot")
		newPath    = fs.String("new", "", "current snapshot (required)")
		allocRatio = fs.Float64("alloc-ratio", 0, "allocs/op regression threshold (0 = default 1.25)")
		nsRatio    = fs.Float64("ns-ratio", 0, "ns/op regression threshold (0 = report only)")
		metricTol  = fs.Float64("metric-tol", 0, "headline metric relative tolerance (0 = default 1e-9)")
		regressRat = fs.Float64("regress-ratio", 0, "lower-is-better metric regression threshold (0 = default 1.10)")
		only       = fs.String("only", "", "comma-separated experiments to compare (for smoke gates over a subset)")
		trajectory = fs.Bool("trajectory", false, "print the headline-metric history across bench-dir's BENCH_*.json snapshots")
		benchDir   = fs.String("bench-dir", "bench", "directory holding dated BENCH_*.json snapshots (with -trajectory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *trajectory {
		return runTrajectory(*benchDir, stdout)
	}
	if *newPath == "" {
		return 2, fmt.Errorf("missing -new snapshot")
	}
	base, err := benchcmp.Load(*basePath)
	if err != nil {
		return 2, err
	}
	cur, err := benchcmp.Load(*newPath)
	if err != nil {
		return 2, err
	}
	if *only != "" {
		names := strings.Split(*only, ",")
		base = filter(base, names)
		cur = filter(cur, names)
		for _, name := range names {
			if !hasEntry(base, strings.TrimSpace(name)) {
				return 2, fmt.Errorf("no entry %q in baseline %s", strings.TrimSpace(name), *basePath)
			}
		}
	}
	opts := benchcmp.DefaultOptions()
	if *allocRatio > 0 {
		opts.AllocRatio = *allocRatio
	}
	if *nsRatio > 0 {
		opts.NsRatio = *nsRatio
	}
	if *metricTol > 0 {
		opts.MetricTol = *metricTol
	}
	if *regressRat > 0 {
		opts.RegressRatio = *regressRat
	}
	findings, failed := benchcmp.Compare(base, cur, opts)
	fmt.Fprintf(stdout, "baseline %s (%s) vs current %s (%s)\n",
		*basePath, base.Stamp, *newPath, cur.Stamp)
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	if failed {
		fmt.Fprintln(stdout, "FAIL: benchmark regression against baseline")
		return 1, nil
	}
	fmt.Fprintln(stdout, "PASS: within thresholds")
	return 0, nil
}

// runTrajectory loads every BENCH_*.json under dir in name order (the
// names embed UTC stamps, so lexical order is chronological) and prints
// the per-experiment headline-metric history.
func runTrajectory(dir string, stdout io.Writer) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return 2, err
	}
	if len(paths) == 0 {
		return 2, fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	sort.Strings(paths)
	var (
		labels []string
		snaps  []benchcmp.Snapshot
	)
	for _, p := range paths {
		s, err := benchcmp.Load(p)
		if err != nil {
			return 2, err
		}
		label := s.Stamp
		if label == "" {
			label = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		}
		labels = append(labels, label)
		snaps = append(snaps, s)
	}
	table, err := benchcmp.FormatTrajectory(labels, snaps)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "headline-metric trajectory across %d snapshots in %s\n", len(snaps), dir)
	fmt.Fprint(stdout, table)
	return 0, nil
}

// filter narrows a snapshot to the named entries, so a smoke job that
// regenerated a handful of experiments can gate them against the full
// committed baseline without tripping the missing-entry check.
func filter(s benchcmp.Snapshot, names []string) benchcmp.Snapshot {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	kept := s.Entries[:0:0]
	for _, e := range s.Entries {
		if want[e.Name] {
			kept = append(kept, e)
		}
	}
	s.Entries = kept
	return s
}

// hasEntry reports whether the snapshot contains the named experiment.
func hasEntry(s benchcmp.Snapshot, name string) bool {
	for _, e := range s.Entries {
		if e.Name == name {
			return true
		}
	}
	return false
}
