package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchcmp"
)

func writeSnap(t *testing.T, dir, name string, allocsE1 float64) string {
	t.Helper()
	p := filepath.Join(dir, name)
	s := benchcmp.Snapshot{
		Stamp: name,
		Entries: []benchcmp.Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: allocsE1, MetricName: "ratio", Metric: 1},
		},
	}
	if err := benchcmp.Save(p, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	return p
}

// TestPassAndFailExitCodes drives the CLI across a passing pair and a
// synthetically regressed pair.
func TestPassAndFailExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 1000)
	same := writeSnap(t, dir, "same.json", 1050)
	worse := writeSnap(t, dir, "worse.json", 2000)

	var out bytes.Buffer
	code, err := run([]string{"-base", base, "-new", same}, &out)
	if err != nil || code != 0 {
		t.Fatalf("pass case: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS line:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"-base", base, "-new", worse}, &out)
	if err != nil || code != 1 {
		t.Fatalf("regression case: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED marker:\n%s", out.String())
	}
}

// TestLooseThresholdOverride lets a caller widen the alloc gate.
func TestLooseThresholdOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 1000)
	worse := writeSnap(t, dir, "worse.json", 2000)
	var out bytes.Buffer
	code, err := run([]string{"-base", base, "-new", worse, "-alloc-ratio", "3"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("widened gate still failed: code=%d err=%v\n%s", code, err, out.String())
	}
}

// TestOnlyFilterIgnoresOtherBaseEntries compares a single-experiment
// snapshot against a multi-entry baseline: without -only the other
// baseline entries count as missing and fail; with -only the gate
// narrows to the named experiment (the e17-smoke CI shape).
func TestOnlyFilterIgnoresOtherBaseEntries(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := benchcmp.Save(base, benchcmp.Snapshot{
		Stamp: "base",
		Entries: []benchcmp.Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: 1000, MetricName: "ratio", Metric: 1},
			{Name: "e17", NsOp: 1e6, AllocsOp: 1000, MetricName: "guarded", Metric: 0.7},
		},
	}); err != nil {
		t.Fatalf("save: %v", err)
	}
	cur := filepath.Join(dir, "cur.json")
	if err := benchcmp.Save(cur, benchcmp.Snapshot{
		Stamp: "cur",
		Entries: []benchcmp.Entry{
			{Name: "e17", NsOp: 1.1e6, AllocsOp: 1010, MetricName: "guarded", Metric: 0.7},
		},
	}); err != nil {
		t.Fatalf("save: %v", err)
	}

	var out bytes.Buffer
	code, err := run([]string{"-base", base, "-new", cur}, &out)
	if err != nil || code != 1 {
		t.Fatalf("unfiltered compare: code=%d err=%v, want missing-entry failure\n%s", code, err, out.String())
	}

	out.Reset()
	code, err = run([]string{"-only", "e17", "-base", base, "-new", cur}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-only e17: code=%d err=%v\n%s", code, err, out.String())
	}

	out.Reset()
	if _, err := run([]string{"-only", "e99", "-base", base, "-new", cur}, &out); err == nil {
		t.Fatal("-only with unknown experiment accepted")
	}
}

// TestOnlyFilterCommaList gates several experiments at once — the shape
// a smoke job uses when it regenerates two related experiments but not
// the whole suite.
func TestOnlyFilterCommaList(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := benchcmp.Save(base, benchcmp.Snapshot{
		Stamp: "base",
		Entries: []benchcmp.Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: 1000, MetricName: "ratio", Metric: 1},
			{Name: "e17", NsOp: 1e6, AllocsOp: 1000, MetricName: "guarded", Metric: 0.7},
			{Name: "e18", NsOp: 1e6, AllocsOp: 1000, MetricName: "guarded", Metric: 0.9},
		},
	}); err != nil {
		t.Fatalf("save: %v", err)
	}
	cur := filepath.Join(dir, "cur.json")
	if err := benchcmp.Save(cur, benchcmp.Snapshot{
		Stamp: "cur",
		Entries: []benchcmp.Entry{
			{Name: "e17", NsOp: 1.1e6, AllocsOp: 1010, MetricName: "guarded", Metric: 0.7},
			{Name: "e18", NsOp: 1.1e6, AllocsOp: 1010, MetricName: "guarded", Metric: 0.9},
		},
	}); err != nil {
		t.Fatalf("save: %v", err)
	}

	var out bytes.Buffer
	code, err := run([]string{"-only", "e17, e18", "-base", base, "-new", cur}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-only e17,e18: code=%d err=%v\n%s", code, err, out.String())
	}

	out.Reset()
	_, err = run([]string{"-only", "e17,e99", "-base", base, "-new", cur}, &out)
	if err == nil || !strings.Contains(err.Error(), "e99") {
		t.Fatalf("-only with one unknown name: err=%v, want complaint about e99", err)
	}
}

// TestTrajectoryMode renders the history table from dated snapshots in
// a bench dir, without needing -new at all.
func TestTrajectoryMode(t *testing.T) {
	dir := t.TempDir()
	writeSnap(t, dir, "BENCH_20260101T000000Z.json", 1000)
	p := filepath.Join(dir, "BENCH_20260201T000000Z.json")
	if err := benchcmp.Save(p, benchcmp.Snapshot{
		Stamp: "20260201T000000Z",
		Entries: []benchcmp.Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: 1000, MetricName: "ratio", Metric: 1},
			{Name: "e16", NsOp: 1e6, AllocsOp: 1000, MetricName: "state_reduction_ratio", Metric: 13.5},
		},
	}); err != nil {
		t.Fatalf("save: %v", err)
	}
	// baseline.json must not count as a trajectory point.
	writeSnap(t, dir, "baseline.json", 1000)

	var out bytes.Buffer
	code, err := run([]string{"-trajectory", "-bench-dir", dir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("trajectory: code=%d err=%v\n%s", code, err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "2 snapshots") {
		t.Errorf("baseline.json counted as a snapshot:\n%s", s)
	}
	for _, want := range []string{"e1", "e16", "state_reduction_ratio", "13.5", "-"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in trajectory output:\n%s", want, s)
		}
	}

	out.Reset()
	if _, err := run([]string{"-trajectory", "-bench-dir", t.TempDir()}, &out); err == nil {
		t.Fatal("empty bench dir accepted")
	}
}

func TestMissingNewFlag(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, &out); err == nil {
		t.Fatal("missing -new accepted")
	}
}
