package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchcmp"
)

func writeSnap(t *testing.T, dir, name string, allocsE1 float64) string {
	t.Helper()
	p := filepath.Join(dir, name)
	s := benchcmp.Snapshot{
		Stamp: name,
		Entries: []benchcmp.Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: allocsE1, MetricName: "ratio", Metric: 1},
		},
	}
	if err := benchcmp.Save(p, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	return p
}

// TestPassAndFailExitCodes drives the CLI across a passing pair and a
// synthetically regressed pair.
func TestPassAndFailExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 1000)
	same := writeSnap(t, dir, "same.json", 1050)
	worse := writeSnap(t, dir, "worse.json", 2000)

	var out bytes.Buffer
	code, err := run([]string{"-base", base, "-new", same}, &out)
	if err != nil || code != 0 {
		t.Fatalf("pass case: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("missing PASS line:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"-base", base, "-new", worse}, &out)
	if err != nil || code != 1 {
		t.Fatalf("regression case: code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED marker:\n%s", out.String())
	}
}

// TestLooseThresholdOverride lets a caller widen the alloc gate.
func TestLooseThresholdOverride(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 1000)
	worse := writeSnap(t, dir, "worse.json", 2000)
	var out bytes.Buffer
	code, err := run([]string{"-base", base, "-new", worse, "-alloc-ratio", "3"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("widened gate still failed: code=%d err=%v\n%s", code, err, out.String())
	}
}

func TestMissingNewFlag(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, &out); err == nil {
		t.Fatal("missing -new accepted")
	}
}
