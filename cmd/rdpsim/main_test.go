package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(out), runErr
}

// TestVirtualRun drives a small world on the simulation kernel; the run
// must end with the invariant check passing and full delivery.
func TestVirtualRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-mhs", "6", "-mss", "4", "-duration", "5s", "-residence", "800ms"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"invariants: OK", "undelivered: 0", "protocol violations           0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestVirtualRunAblations exercises the flag paths that flip protocol
// switches (ablation, optimization, retry, loss).
func TestVirtualRunAblations(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-mhs", "4", "-duration", "4s", "-no-causal", "-hold",
			"-loss", "0.05", "-retry", "2s", "-refresh", "1s"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "invariants: OK") {
		t.Errorf("output missing invariant confirmation:\n%s", out)
	}
}

// TestLiveRun exercises the goroutine/wall-clock runtime briefly.
func TestLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	out, err := capture(t, func() error {
		return run([]string{"-live", "-mhs", "3", "-mss", "3", "-duration", "400ms",
			"-interarrival", "100ms", "-residence", "150ms", "-server", "20ms"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "invariants: OK") {
		t.Errorf("live run missing invariant confirmation:\n%s", out)
	}
}

// TestTCPRun exercises the real-socket transport end to end from the
// command line path.
func TestTCPRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run")
	}
	out, err := capture(t, func() error {
		return run([]string{"-tcp", "-mhs", "3", "-mss", "3", "-duration", "400ms",
			"-interarrival", "100ms", "-residence", "150ms", "-server", "20ms"})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "invariants: OK") {
		t.Errorf("tcp run missing invariant confirmation:\n%s", out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-nope"}) }); err == nil {
		t.Fatal("bad flag accepted")
	}
}
