// Command rdpsim runs one configurable RDP simulation and prints the
// protocol statistics — a workbench for exploring parameter choices
// before committing to an experiment sweep.
//
//	rdpsim -mss 8 -mhs 20 -duration 2m -residence 1s -inactive 0.2
//	rdpsim -loss 0.1 -retry 2s
//	rdpsim -no-causal            # run the E2 ablation interactively
//	rdpsim -tcp -duration 5s     # run over real loopback TCP sockets
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/ids"
	"repro/internal/livenet"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/tcpnet"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdpsim", flag.ContinueOnError)
	var (
		seed      = fs.Int64("seed", 1, "random seed")
		mss       = fs.Int("mss", 8, "number of support stations (cells)")
		servers   = fs.Int("servers", 2, "number of application servers")
		mhs       = fs.Int("mhs", 20, "number of mobile hosts")
		duration  = fs.Duration("duration", time.Minute, "issuing period (a half-duration drain follows)")
		residence = fs.Duration("residence", time.Second, "mean cell residence time")
		inactive  = fs.Float64("inactive", 0.2, "probability of going inactive at each cell boundary")
		interarr  = fs.Duration("interarrival", 800*time.Millisecond, "mean request interarrival per MH")
		serverMs  = fs.Duration("server", 150*time.Millisecond, "mean server processing time")
		loss      = fs.Float64("loss", 0, "wireless random loss probability")
		retry     = fs.Duration("retry", 0, "client request retry timeout (0 = off)")
		noCausal  = fs.Bool("no-causal", false, "disable causal wired delivery (ablation)")
		hold      = fs.Bool("hold", false, "enable the hold-for-inactive optimization (§5 fn.3)")
		refresh   = fs.Duration("refresh", 0, "periodic registration-refresh beacon (0 = off)")
		live      = fs.Bool("live", false, "run on the goroutine/wall-clock runtime instead of the simulation kernel")
		tcp       = fs.Bool("tcp", false, "run the protocol over real loopback TCP sockets (implies -live)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tcp {
		*live = true
	}

	cfg := rdpcore.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumMSS = *mss
	cfg.NumServers = *servers
	cfg.WiredLatency = netsim.Uniform{Lo: 2 * time.Millisecond, Hi: 8 * time.Millisecond}
	cfg.WirelessLatency = netsim.Uniform{Lo: 10 * time.Millisecond, Hi: 30 * time.Millisecond}
	cfg.WirelessLoss = *loss
	cfg.Causal = !*noCausal
	cfg.HoldForInactive = *hold
	cfg.RequestTimeout = *retry
	cfg.GreetRefresh = *refresh
	cfg.ServerProc = netsim.Exponential{MeanDelay: *serverMs, Floor: *serverMs / 10}

	var (
		rt *livenet.Runtime
		w  *rdpcore.World
	)
	if *live {
		rt = livenet.New(*seed)
		if *tcp {
			members := make([]ids.NodeID, 0, *mss+*servers)
			for i := 1; i <= *mss; i++ {
				members = append(members, ids.MSS(i).Node())
			}
			for i := 1; i <= *servers; i++ {
				members = append(members, ids.Server(i).Node())
			}
			n := tcpnet.New(rt, members)
			if err := n.Start(); err != nil {
				return err
			}
			defer n.Close()
			w = rdpcore.NewWorldWith(rt, cfg, n, n)
			n.SetReachable(w.Reachable)
			fmt.Fprintf(os.Stderr, "tcp mode: %d loopback endpoints (e.g. mss1 at %s)\n",
				len(members), n.Addr(ids.MSS(1).Node()))
		} else {
			w = rdpcore.NewWorldOn(rt, cfg)
		}
		fmt.Fprintf(os.Stderr, "live mode: this will take %v of real time\n", *duration+*duration/2)
	} else {
		w = rdpcore.NewWorld(cfg)
	}

	cells := w.StationList()
	srvList := make([]ids.Server, 0, *servers)
	for i := 1; i <= *servers; i++ {
		srvList = append(srvList, ids.Server(i))
	}

	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var reqs []pendingReq
	for i := 1; i <= *mhs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)
		mob := workload.Mobility{
			Picker:            workload.UniformCells{Cells: cells},
			Residence:         netsim.Exponential{MeanDelay: *residence, Floor: *residence / 10},
			InactiveProb:      *inactive,
			InactiveDur:       netsim.Exponential{MeanDelay: 2 * *residence, Floor: *residence / 5},
			MoveWhileInactive: 0.4,
		}
		for _, ev := range workload.Itinerary(rng, mob, start, *duration) {
			ev := ev
			w.Schedule(ev.At, func() {
				switch ev.Kind {
				case workload.EvMigrate:
					w.Migrate(mhID, ev.Cell)
				case workload.EvDeactivate:
					w.SetActive(mhID, false)
				case workload.EvActivate:
					if ev.Cell != w.Location(mhID) {
						w.Migrate(mhID, ev.Cell)
					}
					w.SetActive(mhID, true)
				}
			})
		}
		w.Schedule(*duration+500*time.Millisecond, func() { w.SetActive(mhID, true) })
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: *interarr, Floor: *interarr / 20},
			Servers:      srvList,
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, *duration) {
			a := a
			w.Schedule(a.At, func() {
				reqs = append(reqs, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, a.Payload)})
			})
		}
	}

	start := time.Now()
	if *live {
		rt.Start()
		time.Sleep(*duration + *duration/2)
		rt.Stop()
	} else {
		w.RunUntil(*duration + *duration/2)
	}
	wall := time.Since(start)

	var missing int
	for _, pr := range reqs {
		if !w.MHs[pr.mh].Seen(pr.req) {
			missing++
		}
	}
	s := w.Stats
	fmt.Printf("simulated %v of virtual time in %v of wall time\n\n", *duration+*duration/2, wall.Round(time.Millisecond))
	fmt.Printf("requests issued        %8d\n", s.RequestsIssued.Value())
	fmt.Printf("results delivered      %8d  (undelivered: %d)\n", s.ResultsDelivered.Value(), missing)
	fmt.Printf("duplicate deliveries   %8d\n", s.DuplicateDeliveries.Value())
	fmt.Printf("retransmissions        %8d\n", s.Retransmissions.Value())
	fmt.Printf("request retries        %8d\n", s.RequestRetries.Value())
	fmt.Printf("hand-offs              %8d  (p95 latency %v)\n", s.Handoffs.Value(), s.HandoffLatency.Quantile(0.95).Round(time.Millisecond))
	fmt.Printf("reactivations          %8d\n", s.Reactivations.Value())
	fmt.Printf("update_currentLoc      %8d\n", s.UpdateCurrLocs.Value())
	fmt.Printf("ack forwards           %8d\n", s.AckForwards.Value())
	fmt.Printf("proxies created        %8d  (deleted %d, live %d)\n", s.ProxiesCreated.Value(), s.ProxiesDeleted.Value(), w.TotalProxies())
	fmt.Printf("wireless drops         %8d\n", s.WirelessDrops.Value())
	fmt.Printf("held results           %8d\n", s.HeldResults.Value())
	fmt.Printf("ignored acks           %8d\n", s.IgnoredAcks.Value())
	fmt.Printf("orphan messages        %8d\n", s.OrphanMessages.Value())
	fmt.Printf("protocol violations    %8d\n", s.Violations.Value())
	fmt.Printf("result latency         %s\n", s.ResultLatency.Summary())
	if *tcp {
		if n, ok := w.Wired.(*tcpnet.Net); ok {
			ws := n.Stats()
			fmt.Printf("tcp wire traffic       %8d wired frames (%d B)  %d radio frames (%d B)\n",
				ws.WiredFrames, ws.WiredBytes, ws.WirelessFrames, ws.WirelessBytes)
		}
	}

	if err := w.CheckInvariants(); err != nil {
		return fmt.Errorf("invariant check failed: %w", err)
	}
	fmt.Println("\ninvariants: OK")
	return nil
}
