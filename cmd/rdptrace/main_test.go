package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(out), runErr
}

func TestFig3Trace(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-scenario", "fig3"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 3", "retransmissions=1", "violations=0", "deleted=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestFig4Trace(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-scenario", "fig4", "-all"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// "del-pref(" is the del-pref-only special message of §3.3 (distinct
	// from the del-pref flag riding on result-fwd/result messages).
	for _, want := range []string{"Figure 4", "del-pref(proxy(mss1#1),mh1)", "del-proxy=true", "violations=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestUnknownScenario(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"-scenario", "fig9"}) })
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBadFlag(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"-definitely-not-a-flag"}) })
	if err == nil {
		t.Fatal("bad flag accepted")
	}
}
