// Command rdptrace replays the paper's worked protocol examples and
// prints the full message trace, so the flow of Figures 3 and 4 can be
// read line by line:
//
//	rdptrace -scenario fig3     # single request, two migrations
//	rdptrace -scenario fig4     # three requests, proxy life-cycle
//	rdptrace -scenario mig1     # proxy migration: offer/commit/state/redirect/gc
//	rdptrace -scenario fig3 -all   # include sent/dropped events too
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/rdpcore"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdptrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdptrace", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "fig3", "scenario to replay: fig3, fig4 or mig1")
		all      = fs.Bool("all", false, "print sent and dropped events, not only deliveries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec := trace.New()
	var w *rdpcore.World
	switch *scenario {
	case "fig3":
		fmt.Println("Figure 3 — single request; the MH migrates MssP(mss1) -> MssO(mss2) -> MssN(mss3)")
		fmt.Println("while the result is in flight. The forward to mss2 is lost; the update from mss3")
		fmt.Println("triggers the retransmission that delivers, and the Ack carries del-proxy.")
		fmt.Println()
		w = experiments.ReplayFigure3(rec.Observe)
	case "fig4":
		fmt.Println("Figure 4 — requests A, B, C overlap on one proxy at mss1 while the MH sits at mss2.")
		fmt.Println("Watch RKpR arm on resultA's del-pref, clear on requestB, and the del-pref-only")
		fmt.Println("special message after AckB; AckC finally carries del-proxy.")
		fmt.Println()
		w = experiments.ReplayFigure4(rec.Observe)
	case "mig1":
		fmt.Println("Migration — two requests share a proxy at mss1; the MH moves to mss2 at 50ms.")
		fmt.Println("The fast result's remote forward fires the hop trigger: watch mig-offer,")
		fmt.Println("mig-commit, mig-state move the proxy, pref-redirect rebind the pending server")
		fmt.Println("(and its confirm echo), and mig-gc collect the tombstone. The slow result")
		fmt.Println("then takes the direct path from the migrated proxy.")
		fmt.Println()
		w = experiments.ReplayMigration1(rec.Observe)
	default:
		return fmt.Errorf("unknown scenario %q (fig3, fig4 or mig1)", *scenario)
	}

	entries := rec.Deliveries()
	if *all {
		entries = rec.Entries()
	}
	for _, e := range entries {
		fmt.Println(e)
	}

	fmt.Printf("\nsummary: delivered=%d duplicates=%d retransmissions=%d proxies created=%d deleted=%d migrations=%d violations=%d\n",
		w.Stats.ResultsDelivered.Value(), w.Stats.DuplicateDeliveries.Value(),
		w.Stats.Retransmissions.Value(), w.Stats.ProxiesCreated.Value(),
		w.Stats.ProxiesDeleted.Value(), w.Stats.MigCompleted.Value(), w.Stats.Violations.Value())
	return nil
}
