package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchcmp"
)

// runBuf runs the CLI with output captured in a buffer.
func runBuf(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

// TestQuickSingleExperiment runs one experiment at reduced scale and
// checks the table header reaches the writer.
func TestQuickSingleExperiment(t *testing.T) {
	out, err := runBuf(t, "-quick", "-exp", "e1")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "E1") {
		t.Errorf("output missing E1 header:\n%s", out)
	}
	if strings.Contains(out, "E2") {
		t.Error("-exp e1 also ran E2")
	}
}

// TestQuickExperimentList runs a comma-separated subset.
func TestQuickExperimentList(t *testing.T) {
	out, err := runBuf(t, "-quick", "-exp", "e4, e6")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"E4", "E6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s header", want)
		}
	}
}

// TestCSVMode checks the -csv rendering path.
func TestCSVMode(t *testing.T) {
	out, err := runBuf(t, "-quick", "-exp", "e6", "-csv")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, ",") {
		t.Errorf("CSV output has no commas:\n%s", out)
	}
}

// TestQuickAll runs the complete evaluation at reduced scale — the same
// path `rdpbench -quick` takes — and checks every experiment header is
// present.
func TestQuickAll(t *testing.T) {
	out, err := runBuf(t, "-quick")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		if !strings.Contains(out, "=== "+want) {
			t.Errorf("full run missing %s header", want)
		}
	}
}

// TestParallelMatchesSerial is the determinism check for -parallel: the
// concurrent run must produce byte-identical output to the serial one.
// The subset spans both light and heavy experiments so buffers finish
// out of order.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	args := []string{"-quick", "-exp", "e2,e4,e6,e8"}
	serial, err := runBuf(t, args...)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := runBuf(t, append(args, "-parallel", "4")...)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial != parallel {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestJSONSnapshot writes a snapshot and checks its shape.
func TestJSONSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snap.json")
	if _, err := runBuf(t, "-quick", "-exp", "e4,e6", "-json", "-out", out); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap, err := benchcmp.Load(out)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(snap.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(snap.Entries))
	}
	for _, e := range snap.Entries {
		if e.AllocsOp <= 0 || e.NsOp <= 0 {
			t.Errorf("%s: non-positive measurement: %+v", e.Name, e)
		}
		if e.MetricName == "" {
			t.Errorf("%s: missing headline metric name", e.Name)
		}
	}
	if snap.Scale != "quick" {
		t.Errorf("scale = %q, want quick", snap.Scale)
	}
}

// TestJSONDefaultPath checks the BENCH_<stamp>.json default naming.
func TestJSONDefaultPath(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if _, err := runBuf(t, "-quick", "-exp", "e6", "-json"); err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(m) != 1 {
		t.Fatalf("expected one BENCH_*.json, got %v (err %v)", m, err)
	}
}

// TestE14SmokeFlags runs the e14 CI-smoke shape — a single tier
// override at a single worker count under work stealing — and checks
// the row comes back clean.
func TestE14SmokeFlags(t *testing.T) {
	out, err := runBuf(t, "-quick", "-exp", "e14", "-e14tier", "8:200:4:2", "-workers", "2", "-steal")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "=== E14") {
		t.Fatalf("output missing E14 header:\n%s", out)
	}
	if !strings.Contains(out, "true") {
		t.Errorf("E14 smoke row not marked steal/headline-eq true:\n%s", out)
	}
}

// TestBadE14Flags rejects malformed -e14tier and -workers values.
func TestBadE14Flags(t *testing.T) {
	if _, err := runBuf(t, "-exp", "e14", "-e14tier", "8:200:4"); err == nil {
		t.Error("short -e14tier accepted")
	}
	if _, err := runBuf(t, "-exp", "e14", "-workers", "0"); err == nil {
		t.Error("-workers 0 accepted")
	}
}

// TestNoMatch rejects experiment names that match nothing.
func TestNoMatch(t *testing.T) {
	if _, err := runBuf(t, "-exp", "e42"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := runBuf(t, "-nope"); err == nil {
		t.Fatal("bad flag accepted")
	}
}
