package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(out), runErr
}

// TestQuickSingleExperiment runs one experiment at reduced scale and
// checks the table header reaches stdout.
func TestQuickSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "e1"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "E1") {
		t.Errorf("output missing E1 header:\n%s", out)
	}
	if strings.Contains(out, "E2") {
		t.Error("-exp e1 also ran E2")
	}
}

// TestQuickExperimentList runs a comma-separated subset.
func TestQuickExperimentList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "e4, e6"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"E4", "E6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s header", want)
		}
	}
}

// TestCSVMode checks the -csv rendering path.
func TestCSVMode(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick", "-exp", "e6", "-csv"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, ",") {
		t.Errorf("CSV output has no commas:\n%s", out)
	}
}

// TestQuickAll runs the complete evaluation at reduced scale — the same
// path `rdpbench -quick` takes — and checks every experiment header is
// present.
func TestQuickAll(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-quick"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"} {
		if !strings.Contains(out, "=== "+want) {
			t.Errorf("full run missing %s header", want)
		}
	}
}

// TestNoMatch rejects experiment names that match nothing.
func TestNoMatch(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-exp", "e42"}) }); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-nope"}) }); err == nil {
		t.Fatal("bad flag accepted")
	}
}
