// Command rdpbench regenerates the evaluation of the RDP paper: every
// experiment of DESIGN.md (E1–E18) as a printed table. Run all of them,
// or a subset:
//
//	rdpbench                 # everything, standard scale
//	rdpbench -exp e3,e5      # selected experiments
//	rdpbench -quick          # reduced scale (seconds instead of minutes)
//	rdpbench -seed 7         # different random seed
//	rdpbench -parallel 4     # run experiments concurrently
//	rdpbench -json           # write a BENCH_<stamp>.json snapshot
//	rdpbench -exp e13 -regions 2 -serial   # e13 at a fixed partition, serial
//	rdpbench -exp e14 -e14tier 64:50000:16:3 -workers 8 -steal   # one e14 smoke row
//	rdpbench -cpuprofile cpu.pprof         # profile the run
//
// Experiments are independent simulations, so -parallel runs them on
// separate goroutines; each renders into its own buffer and the buffers
// are emitted in experiment order, so the output is byte-identical to a
// serial run. -json instead runs serially (timings would otherwise
// contend) and records per-experiment wall time, allocations, and a
// headline metric in the snapshot format compared by `make
// bench-compare` (see internal/benchcmp).
//
// The tables printed here are the source of EXPERIMENTS.md.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/benchcmp"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rdpbench:", err)
		os.Exit(1)
	}
}

// runSpec couples an experiment's table printer with its snapshot
// measurement (the headline metric doubles as the measured workload).
type runSpec struct {
	name   string
	print  func(r *renderer, seed int64, sc experiments.Scale)
	metric func(seed int64, sc experiments.Scale) (string, float64)
}

var allRuns = []runSpec{
	{"e1", printE1, metricE1},
	{"e2", printE2, metricE2},
	{"e3", printE3, metricE3},
	{"e4", printE4, metricE4},
	{"e5", printE5, metricE5},
	{"e6", printE6, metricE6},
	{"e7", printE7, metricE7},
	{"e8", printE8, metricE8},
	{"e9", printE9, metricE9},
	{"e10", printE10, metricE10},
	{"e11", printE11, metricE11},
	{"e12", printE12, metricE12},
	{"e13", printE13, metricE13},
	{"e14", printE14, metricE14},
	{"e15", printE15, metricE15},
	{"e15lat", printE15Lat, metricE15Lat},
	{"e16", printE16, metricE16},
	{"e17", printE17, metricE17},
	{"e18", printE18, metricE18},
}

// auxFuncs attaches informational measurements to a -json snapshot
// entry (benchcmp.Entry.Aux). They ride the snapshot but are never
// gated by benchcmp; experiments memoize their sweeps, so computing
// them after the timed metric run costs nothing.
var auxFuncs = map[string]func(seed int64, sc experiments.Scale) map[string]float64{
	"e15": auxE15,
}

// e13RegionList/e13Workers carry the -regions/-serial flags into the
// E13 spec functions (the runSpec signature is shared by all
// experiments, so these ride package state set once before any run).
var (
	e13RegionList []int // nil = the scale's default sweep
	e13Workers    int   // 0 = one worker per core, 1 = serial
)

// e14TierList/e14WorkerList/e14Steal carry the -e14tier/-workers/-steal
// flags into the E14 spec functions the same way.
var (
	e14TierList   []experiments.E14Tier // nil = the scale's default tiers
	e14WorkerList []int                 // nil = the scale's worker sweep
	e14Steal      bool                  // run every e14 row under work stealing
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdpbench", flag.ContinueOnError)
	var (
		expFlag = fs.String("exp", "all", "comma-separated experiments to run (e1..e18, e15lat, or all)")
		seed    = fs.Int64("seed", 1, "random seed")
		quick   = fs.Bool("quick", false, "reduced scale for a fast pass")
		csv     = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		par     = fs.Int("parallel", 1, "experiments to run concurrently (output order is unchanged)")
		jsonOut = fs.Bool("json", false, "write a benchmark snapshot instead of tables")
		outFlag = fs.String("out", "", "snapshot path for -json (default BENCH_<stamp>.json)")
		regions = fs.String("regions", "", "comma-separated region counts for e13 (default: the scale's sweep)")
		serial  = fs.Bool("serial", false, "run the e13 parallel engine with one worker (the serial reference)")
		workers = fs.String("workers", "", "comma-separated worker counts for e14 (default: the scale's sweep)")
		steal   = fs.Bool("steal", false, "run every e14 row under per-window work stealing")
		e14tier = fs.String("e14tier", "", "e14 tier override as cells:mhs:regions:horizonSec (the CI smoke tier)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	e13RegionList = nil
	if *regions != "" {
		for _, s := range strings.Split(*regions, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -regions value %q", s)
			}
			e13RegionList = append(e13RegionList, n)
		}
	}
	e13Workers = 0
	if *serial {
		e13Workers = 1
	}
	e14WorkerList = nil
	if *workers != "" {
		for _, s := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -workers value %q", s)
			}
			e14WorkerList = append(e14WorkerList, n)
		}
	}
	e14Steal = *steal
	e14TierList = nil
	if *e14tier != "" {
		tier, ok := experiments.ParseE14Tier(*e14tier)
		if !ok {
			return fmt.Errorf("bad -e14tier value %q (want cells:mhs:regions:horizonSec)", *e14tier)
		}
		e14TierList = []experiments.E14Tier{tier}
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(*cpuProf)
			return err
		}
		// Runs on every exit path, early errors included: the profile is
		// flushed by StopCPUProfile before the close, and a close failure
		// (full disk, dead NFS handle) is reported instead of silently
		// truncating the profile.
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rdpbench: cpuprofile:", err)
			}
		}()
	}
	if *memProf != "" {
		// Create up front so an unwritable path fails before the run, not
		// after minutes of benchmarking.
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rdpbench: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rdpbench: memprofile:", err)
			}
		}()
	}
	sc := experiments.DefaultScale()
	scName := "default"
	if *quick {
		sc = experiments.SmallScale()
		scName = "quick"
	}

	want := make(map[string]bool)
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	var sel []runSpec
	for _, r := range allRuns {
		if all || want[r.name] {
			sel = append(sel, r)
		}
	}
	if len(sel) == 0 {
		return fmt.Errorf("no experiment matched %q (use e1..e18, e15lat, or all)", *expFlag)
	}

	if *jsonOut {
		return runJSON(stdout, sel, *seed, sc, scName, *outFlag)
	}

	n := *par
	if n < 1 {
		n = 1
	}
	if n == 1 {
		rd := &renderer{w: stdout, csv: *csv}
		for _, r := range sel {
			r.print(rd, *seed, sc)
		}
		return nil
	}

	// Parallel: every experiment renders into a private buffer; buffers
	// are then written in selection order, so output bytes are identical
	// to the serial path regardless of scheduling.
	bufs := make([]bytes.Buffer, len(sel))
	sem := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i, r := range sel {
		wg.Add(1)
		go func(i int, r runSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.print(&renderer{w: &bufs[i], csv: *csv}, *seed, sc)
		}(i, r)
	}
	wg.Wait()
	for i := range bufs {
		if _, err := stdout.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// runJSON measures each selected experiment serially — wall time,
// allocation count (runtime.MemStats deltas), and headline metric — and
// writes the snapshot to out (or BENCH_<stamp>.json).
func runJSON(stdout io.Writer, sel []runSpec, seed int64, sc experiments.Scale, scName, out string) error {
	snap := benchcmp.Snapshot{
		Stamp: time.Now().UTC().Format("20060102T150405Z"),
		Go:    runtime.Version(),
		Scale: scName,
		Seed:  seed,
	}
	var ms0, ms1 runtime.MemStats
	for _, r := range sel {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		name, val := r.metric(seed, sc)
		ns := time.Since(t0).Nanoseconds()
		runtime.ReadMemStats(&ms1)
		e := benchcmp.Entry{
			Name:       r.name,
			NsOp:       float64(ns),
			AllocsOp:   float64(ms1.Mallocs - ms0.Mallocs),
			BytesOp:    float64(ms1.TotalAlloc - ms0.TotalAlloc),
			MetricName: name,
			Metric:     val,
		}
		// Aux rides outside the timed window: the sweep behind it is
		// already memoized by the metric call above.
		if fn := auxFuncs[r.name]; fn != nil {
			e.Aux = fn(seed, sc)
		}
		snap.Entries = append(snap.Entries, e)
		fmt.Fprintf(stdout, "%-5s %12d ns %12d allocs  %s=%g\n",
			r.name, ns, ms1.Mallocs-ms0.Mallocs, name, val)
	}
	if out == "" {
		out = "BENCH_" + snap.Stamp + ".json"
	}
	if err := benchcmp.Save(out, snap); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return nil
}

// renderer writes one experiment's tables to its destination in the
// selected format. Each concurrent experiment owns its renderer.
type renderer struct {
	w   io.Writer
	csv bool
}

// emit prints a table in the selected format.
func (r *renderer) emit(t *metrics.Table) {
	if r.csv {
		io.WriteString(r.w, t.CSV())
		return
	}
	io.WriteString(r.w, t.String())
}

func (r *renderer) header(id, claim string) {
	fmt.Fprintf(r.w, "\n=== %s — %s ===\n\n", id, claim)
}

func f(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }
func d(v int64) string             { return strconv.FormatInt(v, 10) }
func dur(v time.Duration) string   { return v.Round(time.Millisecond).String() }

func printE1(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E1", "reliability: every result delivered despite migrations and inactivity (§5)")
	t := metrics.NewTable("residence", "inactive-p", "issued", "delivered", "ratio", "handoffs", "retrans")
	for _, row := range experiments.E1Reliability(seed, sc) {
		t.AddRow(dur(row.MeanResidence), f(row.InactiveProb, 2), d(row.Issued), d(row.Delivered),
			f(row.Ratio, 4), d(row.Handoffs), d(row.Retrans))
	}
	r.emit(t)
}

func metricE1(seed int64, sc experiments.Scale) (string, float64) {
	min := 1.0
	for _, row := range experiments.E1Reliability(seed, sc) {
		if row.Ratio < min {
			min = row.Ratio
		}
	}
	return "min_delivery_ratio", min
}

func printE2(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E2", "exactly-once needs causal order + ack priority (§5)")
	t := metrics.NewTable("variant", "issued", "delivered", "duplicates", "violations", "ignored-acks")
	for _, row := range experiments.E2ExactlyOnce(seed, sc) {
		t.AddRow(row.Name, d(row.Issued), d(row.Delivered), d(row.Duplicates), d(row.Violations), d(row.IgnoredAcks))
	}
	r.emit(t)
}

func metricE2(seed int64, sc experiments.Scale) (string, float64) {
	var dups int64
	for _, row := range experiments.E2ExactlyOnce(seed, sc) {
		dups += row.Duplicates
	}
	return "total_duplicates", float64(dups)
}

func printE3(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E3", "retransmissions vanish once residence exceeds t_wired+t_wireless (§5)")
	t := metrics.NewTable("residence", "res/threshold", "results", "retrans", "retrans/result")
	for _, row := range experiments.E3RetransmissionThreshold(seed, sc) {
		t.AddRow(dur(row.MeanResidence), f(row.ThresholdRatio, 1), d(row.Results), d(row.Retrans), f(row.RetransPerResult, 4))
	}
	r.emit(t)
}

func metricE3(seed int64, sc experiments.Scale) (string, float64) {
	var retrans int64
	for _, row := range experiments.E3RetransmissionThreshold(seed, sc) {
		retrans += row.Retrans
	}
	return "total_retrans", float64(retrans)
}

func printE4(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E4", "overhead = one update per migration/reactivation + one relayed ack per result (§5)")
	t := metrics.NewTable("residence", "updates", "predicted", "coverage", "ack-fwds", "predicted", "match")
	for _, row := range experiments.E4Overhead(seed, sc) {
		t.AddRow(dur(row.MeanResidence), d(row.UpdateCurrLocs), d(row.PredictedUpdates), f(row.UpdateCoverage, 3),
			d(row.AckForwards), d(row.PredictedAcks), fmt.Sprint(row.Match))
	}
	r.emit(t)
}

func metricE4(seed int64, sc experiments.Scale) (string, float64) {
	var updates int64
	for _, row := range experiments.E4Overhead(seed, sc) {
		updates += row.UpdateCurrLocs
	}
	return "update_msgs", float64(updates)
}

func printE5(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E5", "dynamic proxies balance forwarding load; fixed home agents concentrate it (§1, §4)")
	t := metrics.NewTable("protocol", "jain-index", "max/mean", "per-station load")
	for _, row := range experiments.E5LoadBalance(seed, sc) {
		loads := make([]string, len(row.Loads))
		for i, l := range row.Loads {
			loads[i] = f(l, 0)
		}
		t.AddRow(row.Protocol, f(row.Jain, 3), f(row.MaxOverMean, 2), strings.Join(loads, " "))
	}
	r.emit(t)

	fmt.Fprintln(r.w, "\nE5b — population shift: share of forwarding work carried by the 2 hotspot cells")
	t2 := metrics.NewTable("protocol", "roaming phase", "after shift downtown")
	for _, row := range experiments.E5DynamicShift(seed, sc) {
		t2.AddRow(row.Protocol, f(row.Phase1Hotspot, 3), f(row.Phase2Hotspot, 3))
	}
	r.emit(t2)
}

func metricE5(seed int64, sc experiments.Scale) (string, float64) {
	best := 0.0
	for _, row := range experiments.E5LoadBalance(seed, sc) {
		if row.Jain > best {
			best = row.Jain
		}
	}
	// Include the population-shift half so E5's measured cost matches
	// what the table path runs.
	_ = experiments.E5DynamicShift(seed, sc)
	return "max_jain", best
}

func printE6(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E6", "hand-off state: RDP ships one pref; indirect images grow with load (§4, §5)")
	t := metrics.NewTable("pending", "rdp B/handoff", "itcp B/handoff", "rdp p95", "itcp p95", "rdp-del", "itcp-del")
	for _, row := range experiments.E6HandoffState(seed, sc) {
		t.AddRow(strconv.Itoa(row.PendingRequests), f(row.RDPBytesPerHO, 0), f(row.ITCPBytesPerHO, 0),
			dur(row.RDPHandoffP95), dur(row.ITCPHandoffP95), d(row.RDPDelivered), d(row.ITCPDelivered))
	}
	r.emit(t)
}

func metricE6(seed int64, sc experiments.Scale) (string, float64) {
	var bytes float64
	for _, row := range experiments.E6HandoffState(seed, sc) {
		bytes += row.RDPBytesPerHO
	}
	return "rdp_bytes_per_handoff_sum", bytes
}

func printE7(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E7", "Mobile IP loses datagrams under mobility; upper-layer recovery costs latency (§4)")
	t := metrics.NewTable("protocol", "residence", "issued", "delivered", "ratio", "mean-lat", "p50", "p95", "p99")
	for _, row := range experiments.E7VsMobileIP(seed, sc) {
		t.AddRow(row.Protocol, dur(row.MeanResidence), d(row.Issued), d(row.Delivered),
			f(row.Ratio, 4), dur(row.MeanLatency), dur(row.P50Latency), dur(row.P95Latency), dur(row.P99Latency))
	}
	r.emit(t)
}

func metricE7(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E7VsMobileIP(seed, sc) {
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}

func printE8(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E8", "asynchronous subscription notifications reach roaming subscribers (§3)")
	t := metrics.NewTable("residence", "subs", "fired", "received", "ratio", "remote-ops", "mean-hops")
	for _, row := range experiments.E8Subscriptions(seed, sc) {
		t.AddRow(dur(row.MeanResidence), d(row.Subscriptions), d(row.Fired), d(row.Received),
			f(row.Ratio, 4), d(row.RemoteOps), f(row.MeanHops, 2))
	}
	r.emit(t)
}

func metricE8(seed int64, sc experiments.Scale) (string, float64) {
	var received int64
	for _, row := range experiments.E8Subscriptions(seed, sc) {
		received += row.Received
	}
	return "received_total", float64(received)
}

func printE9(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E9", "ablation: holding results for inactive hosts saves retransmissions (§5 fn.3)")
	t := metrics.NewTable("inactive-p", "hold", "delivered", "retrans", "drops", "held", "mean-lat", "updates")
	for _, row := range experiments.E9HoldForInactive(seed, sc) {
		t.AddRow(f(row.InactiveProb, 2), fmt.Sprint(row.Hold), d(row.Delivered), d(row.Retrans),
			d(row.WirelessDrops), d(row.HeldResults), dur(row.MeanLatency), d(row.UpdateCurrLocs))
	}
	r.emit(t)
}

func metricE9(seed int64, sc experiments.Scale) (string, float64) {
	var retrans int64
	for _, row := range experiments.E9HoldForInactive(seed, sc) {
		retrans += row.Retrans
	}
	return "retrans_total", float64(retrans)
}

func printE10(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E10", "wired faults + MSS crashes: ARQ + checkpoint recovery restores exactly-once delivery")
	t := metrics.NewTable("loss", "crashes", "recovery", "issued", "delivered", "ratio", "dups", "wired-drops", "rec-resends", "ho-reissues", "ckpt-ops")
	for _, row := range experiments.E10WiredFaults(seed, sc) {
		t.AddRow(f(row.Loss, 2), strconv.Itoa(row.Crashes), fmt.Sprint(row.Recovery), d(row.Issued), d(row.Delivered),
			f(row.Ratio, 4), d(row.Duplicates), d(row.WiredDrops), d(row.RecoveryResends), d(row.HandoffReissues), d(row.CheckpointOps))
	}
	r.emit(t)
}

func metricE10(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E10WiredFaults(seed, sc) {
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}

func printE11(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E11", "overload: admission + priorities + backoff plateau at capacity; retries alone collapse")
	t := metrics.NewTable("offered-x", "protected", "issued", "delivered", "refusals", "retries", "abandoned", "dups", "goodput%", "p99-lat", "inbox-peak", "shed", "lost-admitted")
	for _, row := range experiments.E11Overload(seed, sc) {
		t.AddRow(f(row.OfferedX, 1), fmt.Sprint(row.Protected), d(row.Issued), d(row.Delivered),
			d(row.Refusals), d(row.ClientRetries), d(row.Abandoned), d(row.Duplicates),
			f(row.GoodputPct, 1), dur(row.P99Latency), d(row.InboxPeak), d(row.NetworkShed), d(row.LostAdmitted))
	}
	r.emit(t)
}

func metricE11(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E11Overload(seed, sc) {
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}

func printE12(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E12", "proxy migration bounds forwarding hops and spreads placement; static anchors drift")
	t := metrics.NewTable("policy", "issued", "delivered", "ratio", "mean-hops", "worst", "mean-lat", "p95-lat", "migrations", "refused", "mig-msgs", "mig-bytes", "jain", "dups")
	for _, row := range experiments.E12Migration(seed, sc) {
		t.AddRow(row.Policy, d(row.Issued), d(row.Delivered), f(row.Ratio, 4), f(row.MeanHops, 2), d(row.WorstHops),
			dur(row.MeanLatency), dur(row.P95Latency), d(row.Migrations), d(row.Refused),
			d(row.MigMsgs), d(row.MigBytes), f(row.Jain, 3), d(row.Dups))
	}
	r.emit(t)
}

func metricE12(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E12Migration(seed, sc) {
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}

func printE13(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E13", "parallel engine: region partitions reproduce the serial headline exactly and scale out")
	t := metrics.NewTable("cells", "mhs", "regions", "issued", "delivered", "ratio", "dups", "missing", "handoffs", "xframes", "wall", "speedup", "headline-eq")
	for _, row := range experiments.E13Scale(seed, sc, e13RegionList, e13Workers) {
		t.AddRow(strconv.Itoa(row.Cells), strconv.Itoa(row.MHs), strconv.Itoa(row.Regions),
			d(row.Issued), d(row.Delivered), f(row.Ratio, 4), d(row.Duplicates),
			strconv.Itoa(row.Missing), d(row.Handoffs), d(row.CrossFrames),
			dur(row.Wall), f(row.Speedup, 2), fmt.Sprint(row.HeadlineEq))
	}
	r.emit(t)
}

func printE15(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E15", "windowed wireless transport: coalescing + AIMD window vs stop-and-wait and I-TCP")
	t := metrics.NewTable("loss", "offered-x", "transport", "offered", "delivered", "goodput%", "p99-lat",
		"retrans", "resets", "frames", "msgs/frame", "dups", "lost-admitted")
	for _, row := range experiments.E15WindowedTransport(seed, sc) {
		perFrame := 0.0
		if row.Frames > 0 {
			perFrame = float64(row.FrameMsgs) / float64(row.Frames)
		}
		lost := d(row.LostAdmitted)
		if row.LostAdmitted < 0 {
			lost = "-" // the I-TCP baseline has no admission accounting
		}
		t.AddRow(f(row.Loss, 2), f(row.OfferedX, 1), row.Transport, d(row.Offered), d(row.Delivered),
			f(row.GoodputPct, 1), dur(row.P99Latency), d(row.Retransmits), d(row.Resets),
			d(row.Frames), f(perFrame, 2), d(row.Duplicates), lost)
	}
	r.emit(t)

	fmt.Fprintln(r.w, "\nE15b — per-link transport profile (RTT/RTO/cwnd histograms, WTP rows only)")
	t2 := metrics.NewTable("loss", "offered-x", "transport", "rtt-p50", "rtt-p99", "rto-p50", "cwnd-mean", "retrans")
	for _, row := range experiments.E15WindowedTransport(seed, sc) {
		if row.CwndMean == 0 { // plain and I-TCP rows carry no WTP link state
			continue
		}
		t2.AddRow(f(row.Loss, 2), f(row.OfferedX, 1), row.Transport, dur(row.RttP50), dur(row.RttP99),
			dur(row.RtoP50), f(row.CwndMean, 2), d(row.Retransmits))
	}
	r.emit(t2)
}

// printE15Lat is the table half of the e15lat snapshot entry; the grid
// is the same memoized sweep, focused on the latency columns.
func printE15Lat(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E15lat", "windowed wireless transport: p99 result latency at the headline grid point")
	t := metrics.NewTable("loss", "offered-x", "transport", "p99-lat")
	for _, row := range experiments.E15WindowedTransport(seed, sc) {
		if row.Loss != 0.10 || row.OfferedX != 2 {
			continue
		}
		t.AddRow(f(row.Loss, 2), f(row.OfferedX, 1), row.Transport, dur(row.P99Latency))
	}
	r.emit(t)
}

// metricE15 is the snapshot headline: windowed over stop-and-wait
// goodput at the headline grid point (10% loss, 2× the stop-and-wait
// ceiling), forced to -1 whenever a windowed row breaks a guarantee —
// a lost admitted request, a duplicate delivery, or headline p99 worse
// than stop-and-wait — so the e15-smoke benchcmp gate fails on a broken
// transport, not just a slow one.
func metricE15(seed int64, sc experiments.Scale) (string, float64) {
	rows := experiments.E15WindowedTransport(seed, sc)
	for _, row := range rows {
		if row.Transport == "windowed" && (row.LostAdmitted != 0 || row.Duplicates != 0) {
			return "guarded_goodput_ratio", -1
		}
	}
	w, s, ok := experiments.E15Headline(rows)
	if !ok || s.GoodputPct <= 0 || w.P99Latency > s.P99Latency {
		return "guarded_goodput_ratio", -1
	}
	return "guarded_goodput_ratio", w.GoodputPct / s.GoodputPct
}

// auxE15 records the windowed transport's link profile at the headline
// grid point — the RTT/RTO/cwnd histogram summaries and the
// retransmission counter — in the snapshot's informational aux map, so
// the trajectory of committed snapshots keeps the transport's shape
// alongside the gated goodput ratio.
func auxE15(seed int64, sc experiments.Scale) map[string]float64 {
	w, _, ok := experiments.E15Headline(experiments.E15WindowedTransport(seed, sc))
	if !ok {
		return nil
	}
	ms := float64(time.Millisecond)
	return map[string]float64{
		"rtt_p50_ms":       float64(w.RttP50) / ms,
		"rtt_p99_ms":       float64(w.RttP99) / ms,
		"rto_p50_ms":       float64(w.RtoP50) / ms,
		"cwnd_mean_frames": w.CwndMean,
		"retransmits":      float64(w.Retransmits),
		"frames":           float64(w.Frames),
		"frame_msgs":       float64(w.FrameMsgs),
	}
}

// metricE15Lat is the latency half of the E15 gate: the windowed
// transport's p99 result latency at the headline grid point, in
// milliseconds. benchcmp treats p99_latency_ms as regress-only
// (lower is better), so CI fails only when the tail grows.
func metricE15Lat(seed int64, sc experiments.Scale) (string, float64) {
	w, _, ok := experiments.E15Headline(experiments.E15WindowedTransport(seed, sc))
	if !ok {
		return "p99_latency_ms", -1
	}
	return "p99_latency_ms", float64(w.P99Latency) / float64(time.Millisecond)
}

func printE16(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E16", "aggregated location state: O(hosts) → O(cells·servers) station memory at subscriber scale")
	t := metrics.NewTable("mhs", "stations", "mode", "issued", "delivered", "dups", "missing",
		"state-B/MSS", "outstanding", "signaling", "handoffs", "shared-proxies", "notifs",
		"state-redux", "sig-redux", "peak-rss", "wall")
	for _, row := range experiments.E16Aggregation(seed, sc) {
		mode := "faithful"
		if row.Aggregated {
			mode = "aggregated"
		}
		redux, sig := "-", "-"
		if row.Aggregated && row.Reduction != 0 {
			redux, sig = f(row.Reduction, 1)+"x", f(row.SigReduction, 1)+"x"
		}
		t.AddRow(strconv.Itoa(row.MHs), strconv.Itoa(row.Stations), mode,
			d(row.Issued), d(row.Delivered), d(row.Duplicates), strconv.Itoa(row.Missing),
			f(row.PerMSS, 0), d(row.Outstanding), d(row.Signaling), d(row.Handoffs),
			d(row.SharedProxies), d(row.Notifications), redux, sig,
			metrics.FormatBytes(row.PeakRSS, row.PeakRSSOK), dur(row.Wall))
	}
	r.emit(t)
}

// metricE16 is the snapshot headline: the minimum guarded state
// reduction across the paired tiers. Each pair's guard (computed by the
// sweep itself) licenses the ratio only when both representations
// delivered exactly the same results with zero losses and duplicates,
// and the unpaired 1M top tier must be equally clean — any violation
// forces -1, so the e16-smoke benchcmp gate fails on a representation
// that cheats on delivery, not just one that stops shrinking state.
// benchcmp registers state_reduction_ratio as DirHigherBetter.
func metricE16(seed int64, sc experiments.Scale) (string, float64) {
	min := -1.0
	for _, row := range experiments.E16Aggregation(seed, sc) {
		if row.Missing != 0 || row.Duplicates != 0 {
			return "state_reduction_ratio", -1
		}
		if !row.Aggregated {
			continue
		}
		if row.Reduction < 0 {
			return "state_reduction_ratio", -1
		}
		if row.Reduction > 0 && (min < 0 || row.Reduction < min) {
			min = row.Reduction
		}
	}
	return "state_reduction_ratio", min
}

func printE17(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E17", "disconnected operation: offline queue + atomic batches + station result cache")
	t := metrics.NewTable("disc-dur", "crashes", "migration", "issued", "delivered", "lost", "replayed",
		"batches", "b-del", "b-abort", "b-partial", "migrations", "hits", "misses", "stale", "hit-ratio")
	for _, row := range experiments.E17Disconnected(seed, sc) {
		t.AddRow(dur(row.DisconnectDur), strconv.Itoa(row.Crashes), fmt.Sprint(row.Migration),
			d(row.Issued), d(row.Delivered), d(row.Lost), d(row.Replayed),
			d(row.Batches), d(row.BatchDelivered), d(row.BatchAborted), d(row.BatchPartial),
			d(row.Migrations), d(row.CacheHits), d(row.CacheMisses), d(row.CacheStale), f(row.HitRatio, 4))
	}
	r.emit(t)
}

// metricE17 is the snapshot headline: the minimum cache hit ratio
// across the sweep, forced to -1 whenever any row loses a request or
// partially delivers a batch — benchcmp then fails the e17-smoke gate
// on either a broken guarantee or a collapsed cache.
func metricE17(seed int64, sc experiments.Scale) (string, float64) {
	min := 1.0
	for _, row := range experiments.E17Disconnected(seed, sc) {
		if row.Lost > 0 || row.BatchPartial > 0 {
			return "guarded_min_hit_ratio", -1
		}
		if row.HitRatio < min {
			min = row.HitRatio
		}
	}
	return "guarded_min_hit_ratio", min
}

func printE18(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E18", "mobile-host crash/amnesia recovery: incarnation-scoped delivery + lease-based orphan reclamation")
	t := metrics.NewTable("disc-dur", "mss-crash", "migration", "mh-crash", "mh-restart", "issued", "delivered",
		"lost", "orphaned", "x-inc", "reclaimed", "heartbeats", "stale-drops", "journal-drops",
		"migrations", "batches", "b-del", "b-abort", "b-partial", "leaked")
	for _, row := range experiments.E18MHCrash(seed, sc) {
		leaked := "none"
		if row.Leaked != "" {
			leaked = row.Leaked
		}
		t.AddRow(dur(row.DisconnectDur), strconv.Itoa(row.MSSCrashes), fmt.Sprint(row.Migration),
			d(row.MHCrashes), d(row.MHRestarts), d(row.Issued), d(row.Delivered),
			d(row.Lost), d(row.Orphaned), d(row.CrossIncDeliveries), d(row.Reclaimed),
			d(row.Heartbeats), d(row.StaleDrops), d(row.DroppedOffline), d(row.Migrations),
			d(row.Batches), d(row.BatchDelivered), d(row.BatchAborted), d(row.BatchPartial), leaked)
	}
	r.emit(t)
}

// metricE18 is the snapshot headline: the survivor-scope delivery ratio
// across the sweep, forced to -1 whenever any row loses a survivor
// request, delivers a result across an incarnation boundary, partially
// delivers a batch, or leaks dead-incarnation proxy state past the
// quiescence sweep — benchcmp then fails the e18-smoke gate on any
// broken guarantee.
func metricE18(seed int64, sc experiments.Scale) (string, float64) {
	var issued, delivered, orphaned int64
	for _, row := range experiments.E18MHCrash(seed, sc) {
		if row.Lost > 0 || row.CrossIncDeliveries > 0 || row.BatchPartial > 0 || row.Leaked != "" {
			return "guarded_survivor_delivery", -1
		}
		issued += row.Issued
		delivered += row.Delivered
		orphaned += row.Orphaned
	}
	if survivors := issued - orphaned; survivors > 0 {
		return "guarded_survivor_delivery", float64(delivered) / float64(survivors)
	}
	return "guarded_survivor_delivery", -1
}

func printE14(r *renderer, seed int64, sc experiments.Scale) {
	r.header("E14", "multi-core engine: worker count never changes a byte; wall-clock and RSS at scale")
	t := metrics.NewTable("cells", "mhs", "regions", "workers", "steal", "cores", "issued", "delivered",
		"ratio", "dups", "missing", "xframes", "build", "wall", "speedup", "peak-rss", "headline-eq")
	for _, row := range experiments.E14Scale(seed, sc, e14TierList, e14WorkerList, e14Steal) {
		t.AddRow(strconv.Itoa(row.Cells), strconv.Itoa(row.MHs), strconv.Itoa(row.Regions),
			strconv.Itoa(row.Workers), fmt.Sprint(row.Steal), strconv.Itoa(row.Cores),
			d(row.Issued), d(row.Delivered), f(row.Ratio, 4), d(row.Duplicates),
			strconv.Itoa(row.Missing), d(row.CrossFrames), dur(row.Build), dur(row.Wall),
			f(row.Speedup, 2), metrics.FormatBytes(row.PeakRSS, row.PeakRSSOK), fmt.Sprint(row.HeadlineEq))
	}
	r.emit(t)
}

// metricE14 is the snapshot headline: total delivered across the sweep,
// forced to -1 whenever a row breaks full-Summary equality with its
// tier's baseline row. The e14-smoke CI job compares -workers 1,
// -workers 8, and -workers 8 -steal snapshots of the same tier with
// benchcmp, so the metric must be worker-invariant — which is exactly
// the property E14 pins.
func metricE14(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E14Scale(seed, sc, e14TierList, e14WorkerList, e14Steal) {
		if !row.HeadlineEq {
			return "delivered_total", -1
		}
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}

// metricE13 is the snapshot headline: total delivered across the sweep.
// The e13-smoke CI job compares a -serial snapshot against a parallel
// one with benchcmp, so the metric must not depend on worker count —
// delivered totals are exactly worker-invariant by the engine's
// determinism guarantee.
func metricE13(seed int64, sc experiments.Scale) (string, float64) {
	var delivered int64
	for _, row := range experiments.E13Scale(seed, sc, e13RegionList, e13Workers) {
		delivered += row.Delivered
	}
	return "delivered_total", float64(delivered)
}
