// Command rdpbench regenerates the evaluation of the RDP paper: every
// experiment of DESIGN.md (E1–E12) as a printed table. Run all of them,
// or a subset:
//
//	rdpbench                 # everything, standard scale
//	rdpbench -exp e3,e5      # selected experiments
//	rdpbench -quick          # reduced scale (seconds instead of minutes)
//	rdpbench -seed 7         # different random seed
//
// The tables printed here are the source of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdpbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdpbench", flag.ContinueOnError)
	var (
		expFlag = fs.String("exp", "all", "comma-separated experiments to run (e1..e12, or all)")
		seed    = fs.Int64("seed", 1, "random seed")
		quick   = fs.Bool("quick", false, "reduced scale for a fast pass")
		csv     = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	emitCSV = *csv
	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.SmallScale()
	}

	want := make(map[string]bool)
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	runs := []struct {
		name string
		fn   func()
	}{
		{"e1", func() { printE1(*seed, sc) }},
		{"e2", func() { printE2(*seed, sc) }},
		{"e3", func() { printE3(*seed, sc) }},
		{"e4", func() { printE4(*seed, sc) }},
		{"e5", func() { printE5(*seed, sc) }},
		{"e6", func() { printE6(*seed, sc) }},
		{"e7", func() { printE7(*seed, sc) }},
		{"e8", func() { printE8(*seed, sc) }},
		{"e9", func() { printE9(*seed, sc) }},
		{"e10", func() { printE10(*seed, sc) }},
		{"e11", func() { printE11(*seed, sc) }},
		{"e12", func() { printE12(*seed, sc) }},
	}
	ran := 0
	for _, r := range runs {
		if all || want[r.name] {
			r.fn()
			ran++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q (use e1..e12 or all)", *expFlag)
	}
	return nil
}

// emitCSV switches table rendering to CSV (-csv).
var emitCSV bool

// emit prints a table in the selected format.
func emit(t *metrics.Table) {
	if emitCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

func header(id, claim string) {
	fmt.Printf("\n=== %s — %s ===\n\n", id, claim)
}

func f(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }
func d(v int64) string             { return strconv.FormatInt(v, 10) }
func dur(v time.Duration) string   { return v.Round(time.Millisecond).String() }

func printE1(seed int64, sc experiments.Scale) {
	header("E1", "reliability: every result delivered despite migrations and inactivity (§5)")
	t := metrics.NewTable("residence", "inactive-p", "issued", "delivered", "ratio", "handoffs", "retrans")
	for _, r := range experiments.E1Reliability(seed, sc) {
		t.AddRow(dur(r.MeanResidence), f(r.InactiveProb, 2), d(r.Issued), d(r.Delivered),
			f(r.Ratio, 4), d(r.Handoffs), d(r.Retrans))
	}
	emit(t)
}

func printE2(seed int64, sc experiments.Scale) {
	header("E2", "exactly-once needs causal order + ack priority (§5)")
	t := metrics.NewTable("variant", "issued", "delivered", "duplicates", "violations", "ignored-acks")
	for _, r := range experiments.E2ExactlyOnce(seed, sc) {
		t.AddRow(r.Name, d(r.Issued), d(r.Delivered), d(r.Duplicates), d(r.Violations), d(r.IgnoredAcks))
	}
	emit(t)
}

func printE3(seed int64, sc experiments.Scale) {
	header("E3", "retransmissions vanish once residence exceeds t_wired+t_wireless (§5)")
	t := metrics.NewTable("residence", "res/threshold", "results", "retrans", "retrans/result")
	for _, r := range experiments.E3RetransmissionThreshold(seed, sc) {
		t.AddRow(dur(r.MeanResidence), f(r.ThresholdRatio, 1), d(r.Results), d(r.Retrans), f(r.RetransPerResult, 4))
	}
	emit(t)
}

func printE4(seed int64, sc experiments.Scale) {
	header("E4", "overhead = one update per migration/reactivation + one relayed ack per result (§5)")
	t := metrics.NewTable("residence", "updates", "predicted", "coverage", "ack-fwds", "predicted", "match")
	for _, r := range experiments.E4Overhead(seed, sc) {
		t.AddRow(dur(r.MeanResidence), d(r.UpdateCurrLocs), d(r.PredictedUpdates), f(r.UpdateCoverage, 3),
			d(r.AckForwards), d(r.PredictedAcks), fmt.Sprint(r.Match))
	}
	emit(t)
}

func printE5(seed int64, sc experiments.Scale) {
	header("E5", "dynamic proxies balance forwarding load; fixed home agents concentrate it (§1, §4)")
	t := metrics.NewTable("protocol", "jain-index", "max/mean", "per-station load")
	for _, r := range experiments.E5LoadBalance(seed, sc) {
		loads := make([]string, len(r.Loads))
		for i, l := range r.Loads {
			loads[i] = f(l, 0)
		}
		t.AddRow(r.Protocol, f(r.Jain, 3), f(r.MaxOverMean, 2), strings.Join(loads, " "))
	}
	emit(t)

	fmt.Println("\nE5b — population shift: share of forwarding work carried by the 2 hotspot cells")
	t2 := metrics.NewTable("protocol", "roaming phase", "after shift downtown")
	for _, r := range experiments.E5DynamicShift(seed, sc) {
		t2.AddRow(r.Protocol, f(r.Phase1Hotspot, 3), f(r.Phase2Hotspot, 3))
	}
	emit(t2)
}

func printE6(seed int64, sc experiments.Scale) {
	header("E6", "hand-off state: RDP ships one pref; indirect images grow with load (§4, §5)")
	t := metrics.NewTable("pending", "rdp B/handoff", "itcp B/handoff", "rdp p95", "itcp p95", "rdp-del", "itcp-del")
	for _, r := range experiments.E6HandoffState(seed, sc) {
		t.AddRow(strconv.Itoa(r.PendingRequests), f(r.RDPBytesPerHO, 0), f(r.ITCPBytesPerHO, 0),
			dur(r.RDPHandoffP95), dur(r.ITCPHandoffP95), d(r.RDPDelivered), d(r.ITCPDelivered))
	}
	emit(t)
}

func printE7(seed int64, sc experiments.Scale) {
	header("E7", "Mobile IP loses datagrams under mobility; upper-layer recovery costs latency (§4)")
	t := metrics.NewTable("protocol", "residence", "issued", "delivered", "ratio", "mean-lat", "p50", "p95", "p99")
	for _, r := range experiments.E7VsMobileIP(seed, sc) {
		t.AddRow(r.Protocol, dur(r.MeanResidence), d(r.Issued), d(r.Delivered),
			f(r.Ratio, 4), dur(r.MeanLatency), dur(r.P50Latency), dur(r.P95Latency), dur(r.P99Latency))
	}
	emit(t)
}

func printE9(seed int64, sc experiments.Scale) {
	header("E9", "ablation: holding results for inactive hosts saves retransmissions (§5 fn.3)")
	t := metrics.NewTable("inactive-p", "hold", "delivered", "retrans", "drops", "held", "mean-lat", "updates")
	for _, r := range experiments.E9HoldForInactive(seed, sc) {
		t.AddRow(f(r.InactiveProb, 2), fmt.Sprint(r.Hold), d(r.Delivered), d(r.Retrans),
			d(r.WirelessDrops), d(r.HeldResults), dur(r.MeanLatency), d(r.UpdateCurrLocs))
	}
	emit(t)
}

func printE10(seed int64, sc experiments.Scale) {
	header("E10", "wired faults + MSS crashes: ARQ + checkpoint recovery restores exactly-once delivery")
	t := metrics.NewTable("loss", "crashes", "recovery", "issued", "delivered", "ratio", "dups", "wired-drops", "rec-resends", "ho-reissues", "ckpt-ops")
	for _, r := range experiments.E10WiredFaults(seed, sc) {
		t.AddRow(f(r.Loss, 2), strconv.Itoa(r.Crashes), fmt.Sprint(r.Recovery), d(r.Issued), d(r.Delivered),
			f(r.Ratio, 4), d(r.Duplicates), d(r.WiredDrops), d(r.RecoveryResends), d(r.HandoffReissues), d(r.CheckpointOps))
	}
	emit(t)
}

func printE11(seed int64, sc experiments.Scale) {
	header("E11", "overload: admission + priorities + backoff plateau at capacity; retries alone collapse")
	t := metrics.NewTable("offered-x", "protected", "issued", "delivered", "refusals", "retries", "abandoned", "dups", "goodput%", "p99-lat", "inbox-peak", "shed", "lost-admitted")
	for _, r := range experiments.E11Overload(seed, sc) {
		t.AddRow(f(r.OfferedX, 1), fmt.Sprint(r.Protected), d(r.Issued), d(r.Delivered),
			d(r.Refusals), d(r.ClientRetries), d(r.Abandoned), d(r.Duplicates),
			f(r.GoodputPct, 1), dur(r.P99Latency), d(r.InboxPeak), d(r.NetworkShed), d(r.LostAdmitted))
	}
	emit(t)
}

func printE12(seed int64, sc experiments.Scale) {
	header("E12", "proxy migration bounds forwarding hops and spreads placement; static anchors drift")
	t := metrics.NewTable("policy", "issued", "delivered", "ratio", "mean-hops", "worst", "mean-lat", "p95-lat", "migrations", "refused", "mig-msgs", "mig-bytes", "jain", "dups")
	for _, r := range experiments.E12Migration(seed, sc) {
		t.AddRow(r.Policy, d(r.Issued), d(r.Delivered), f(r.Ratio, 4), f(r.MeanHops, 2), d(r.WorstHops),
			dur(r.MeanLatency), dur(r.P95Latency), d(r.Migrations), d(r.Refused),
			d(r.MigMsgs), d(r.MigBytes), f(r.Jain, 3), d(r.Dups))
	}
	emit(t)
}

func printE8(seed int64, sc experiments.Scale) {
	header("E8", "asynchronous subscription notifications reach roaming subscribers (§3)")
	t := metrics.NewTable("residence", "subs", "fired", "received", "ratio", "remote-ops", "mean-hops")
	for _, r := range experiments.E8Subscriptions(seed, sc) {
		t.AddRow(dur(r.MeanResidence), d(r.Subscriptions), d(r.Fired), d(r.Received),
			f(r.Ratio, 4), d(r.RemoteOps), f(r.MeanHops, 2))
	}
	emit(t)
}
