// Command rdpexplore runs the message-order adversary against the RDP
// protocol: deliveries fire in controller-chosen orders rather than
// latency order, probing interleavings no latency assignment produces.
//
//	rdpexplore                          # random walks over every scenario
//	rdpexplore -schedules 5000          # more samples per scenario
//	rdpexplore -exhaustive              # fully enumerate the tiny scenario
//	rdpexplore -exhaustive -budget 1e6  # enumerate a larger tree
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/explore"
	"repro/internal/ids"
	"repro/internal/rdpcore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rdpexplore:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rdpexplore", flag.ContinueOnError)
	var (
		schedules  = fs.Int("schedules", 1000, "random schedules per scenario")
		seed       = fs.Int64("seed", 1, "base seed for schedule choices")
		maxRefresh = fs.Int("max-refresh", 5, "refresh beacons allowed before declaring a liveness failure")
		exhaustive = fs.Bool("exhaustive", false, "systematically enumerate the tiny scenarios' schedule trees")
		budget     = fs.Float64("budget", 200000, "schedule budget per scenario for -exhaustive")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	failures := 0
	errf := func(format string, a ...any) {
		failures++
		fmt.Printf("FAIL: "+format+"\n", a...)
	}

	if *exhaustive {
		// Tiny and TinySleep enumerate completely within the default
		// budget; the bounce tree exceeds two million schedules, so its
		// run is a systematic DFS prefix unless -budget is raised.
		for _, sc := range []explore.Scenario{explore.Tiny(), explore.TinySleep(), explore.TinyHandoffBack()} {
			start := time.Now()
			res := explore.RunExhaustive(sc, int(*budget), *maxRefresh, errf)
			fmt.Printf("exhaustive %-28q %7d schedules, complete=%-5t max depth %2d, %v\n",
				sc.Name, res.Schedules, res.Complete, res.MaxDepth,
				time.Since(start).Round(time.Millisecond))
		}
		if failures > 0 {
			return fmt.Errorf("%d property failures", failures)
		}
		return nil
	}

	for _, sc := range scenarioSet() {
		start := time.Now()
		res := explore.Run(sc, *seed, *schedules, *maxRefresh, errf)
		fmt.Printf("%-32s %5d schedules  %7d firings  %4d needed recovery (max %d beacons)  %v\n",
			sc.Name, res.Schedules, res.TotalFirings, res.TotalRecovery, res.MaxRefreshes,
			time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return fmt.Errorf("%d property failures", failures)
	}
	fmt.Println("all schedules satisfied safety and bounded-liveness")
	return nil
}

// scenarioSet mirrors the scenarios exercised by the explore package's
// tests.
func scenarioSet() []explore.Scenario {
	return []explore.Scenario{
		explore.Tiny(),
		{
			Name:     "single-request-two-migrations",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				actions := []func(){
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) },
					func() { w.Migrate(1, 2) },
					func() { w.Migrate(1, 3) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			Name:     "bounce-back-overlap",
			Stations: 2,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				issue := func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) }
				actions := []func(){
					issue,
					func() { w.Migrate(1, 2) },
					issue,
					func() { w.Migrate(1, 1) },
					func() { w.Migrate(1, 2) },
					issue,
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			Name:     "sleep-carry-wake",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				actions := []func(){
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("a"))) },
					func() { w.SetActive(1, false) },
					func() { w.Migrate(1, 3) },
					func() { w.SetActive(1, true) },
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("b"))) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			Name:     "two-hosts-crossing",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				a := w.AddMH(1, 1)
				b := w.AddMH(2, 3)
				var ra, rb []ids.RequestID
				actions := []func(){
					func() { ra = append(ra, a.IssueRequest(1, []byte("a"))) },
					func() { rb = append(rb, b.IssueRequest(1, []byte("b"))) },
					func() { w.Migrate(1, 2) },
					func() { w.Migrate(2, 2) },
					func() { w.Migrate(1, 3) },
					func() { w.Migrate(2, 1) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: ra, 2: rb}
				}
			},
		},
	}
}
