package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read pipe: %v", err)
	}
	return string(out), runErr
}

// TestRandomWalks runs a reduced random-schedule sweep over every
// scenario; any safety or liveness violation fails the run.
func TestRandomWalks(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-schedules", "40"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "all schedules satisfied safety and bounded-liveness") {
		t.Errorf("missing success line:\n%s", out)
	}
	for _, sc := range []string{"tiny", "bounce-back-overlap", "two-hosts-crossing"} {
		if !strings.Contains(out, sc) {
			t.Errorf("scenario %q not reported", sc)
		}
	}
}

// TestExhaustiveComplete enumerates the tiny scenarios' schedule trees:
// the migration and sleep trees complete inside the budget; the bounce
// tree is explored as a DFS prefix.
func TestExhaustiveComplete(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-exhaustive", "-budget", "5000"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, sc := range []string{"tiny-request-vs-migration", "tiny-request-vs-sleep", "tiny-request-vs-bounce"} {
		if !strings.Contains(out, sc) {
			t.Errorf("scenario %q not reported:\n%s", sc, out)
		}
	}
	if strings.Count(out, "complete=true") < 2 {
		t.Errorf("migration and sleep trees should both complete:\n%s", out)
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-nope"}) }); err == nil {
		t.Fatal("bad flag accepted")
	}
}
