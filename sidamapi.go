package rdp

import (
	"repro/internal/rdpcore"
	"repro/internal/sidam"
)

// SIDAM application types (the paper's motivating traffic-information
// service; see internal/sidam for the full semantics).
type (
	// SidamConfig parameterizes the Traffic Information Server network.
	SidamConfig = sidam.Config
	// SidamNetwork is the installed TIS overlay.
	SidamNetwork = sidam.Network
	// Reading is one region's traffic state.
	Reading = sidam.Reading
)

// DefaultSidamConfig returns a 64-region network with 20ms local
// processing and 5ms per-hop forwarding.
func DefaultSidamConfig() SidamConfig { return sidam.DefaultConfig() }

// InstallSidam replaces the world's generic servers with a ring of
// Traffic Information Servers partitioning cfg.Regions among them.
func InstallSidam(world *rdpcore.World, cfg SidamConfig) *SidamNetwork {
	return sidam.Install(world, cfg)
}

// SIDAM request payload constructors. Pass the returned payload to
// MobileHost.IssueRequest targeting any TIS; the reading (or
// notification) comes back as the request's result payload, parsed with
// ParseReading.
var (
	// QueryPayload asks for a region's current reading.
	QueryPayload = sidam.EncodeQuery
	// UpdatePayload writes a region's congestion value.
	UpdatePayload = sidam.EncodeUpdate
	// SubscribePayload watches a region for a congestion change of at
	// least threshold; the first matching change answers the request.
	SubscribePayload = sidam.EncodeSubscribe
)

// ParseReading decodes a SIDAM result payload.
func ParseReading(b []byte) (Reading, error) { return sidam.DecodeReading(b) }

// Group multicast (§1's fourth operation). Configure a group on the
// network, have each member keep a MailboxPayload request parked, and
// send with MulticastPayload; members receive each message as the
// result of their parked request, parsed with ParseGroupMsg, in the same
// total order.
var (
	// MailboxPayload parks the caller's mailbox request.
	MailboxPayload = sidam.EncodeMailbox
	// MulticastPayload submits a message to a previously configured group.
	MulticastPayload = sidam.EncodeMulticast
)

// ParseGroupMsg decodes a mailbox result payload into the group id, the
// owner's serialization number and the message body.
func ParseGroupMsg(b []byte) (group uint32, seq uint64, data []byte, err error) {
	return sidam.DecodeGroupMsg(b)
}
