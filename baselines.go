package rdp

import (
	"repro/internal/itcp"
	"repro/internal/mobileip"
)

// Comparison baselines (paper §4). Both expose self-contained simulation
// worlds driven the same way as the RDP World; the experiment harness
// runs identical workloads over all three.
type (
	// MobileIPConfig parameterizes the Mobile IP-style baseline: fixed
	// home agents, care-of tunneling, no delivery guarantee.
	MobileIPConfig = mobileip.Config
	// MobileIPWorld is the Mobile IP simulation world.
	MobileIPWorld = mobileip.World
	// MobileIPStats aggregates the baseline's measurements.
	MobileIPStats = mobileip.Stats

	// ITCPConfig parameterizes the I-TCP-style baseline: the respMss
	// holds the host's full session image and ships it on every hand-off.
	ITCPConfig = itcp.Config
	// ITCPWorld is the I-TCP simulation world.
	ITCPWorld = itcp.World
	// ITCPStats aggregates the baseline's measurements.
	ITCPStats = itcp.Stats
)

// DefaultMobileIPConfig mirrors DefaultConfig's network parameters.
func DefaultMobileIPConfig() MobileIPConfig { return mobileip.DefaultConfig() }

// NewMobileIPWorld builds a Mobile IP world.
func NewMobileIPWorld(cfg MobileIPConfig) *MobileIPWorld { return mobileip.NewWorld(cfg) }

// DefaultITCPConfig mirrors DefaultConfig's network parameters.
func DefaultITCPConfig() ITCPConfig { return itcp.DefaultConfig() }

// NewITCPWorld builds an I-TCP world.
func NewITCPWorld(cfg ITCPConfig) *ITCPWorld { return itcp.NewWorld(cfg) }
