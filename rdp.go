// Package rdp is a from-scratch implementation of RDP — the Result
// Delivery Protocol for mobile computing (Endler, Silva, Okuda; SIDAM
// project) — together with every substrate it runs on and the baselines
// it is evaluated against.
//
// RDP reliably delivers request results to mobile hosts that migrate
// between cells and switch between active and inactive states. A proxy
// object, created at the host's current Mobile Support Station when it
// issues a request, receives server replies at a fixed wired location
// and re-forwards them to the host's current station until the host
// acknowledges — at-least-once delivery, and exactly-once under the
// paper's causal-order and ack-priority conditions. Unlike Mobile IP's
// fixed home agent, the proxy retires once all results are delivered,
// so the next request places a new proxy wherever the host then is:
// forwarding load follows the user.
//
// # Quick start
//
//	cfg := rdp.DefaultConfig()
//	world := rdp.NewWorld(cfg)
//	mh := world.AddMH(1, 1)                      // mobile host in cell 1
//	var req rdp.RequestID
//	world.Schedule(0, func() { req = mh.IssueRequest(1, []byte("hello")) })
//	world.Schedule(40*time.Millisecond, func() { world.Migrate(1, 2) })
//	world.RunUntil(2 * time.Second)
//	fmt.Println(mh.Seen(req)) // true — delivered despite the migration
//
// Worlds run by default on a deterministic discrete-event kernel (equal
// seeds give byte-identical runs); the same protocol code also runs on
// real goroutines and wall-clock time via NewLiveRuntime.
//
// The package re-exports the pieces a user composes: configuration and
// world construction (this file), the SIDAM traffic-information
// application (sidamapi.go), and the Mobile IP / I-TCP comparison
// baselines (baselines.go). Experiment reproduction lives in
// bench_test.go and cmd/rdpbench.
package rdp

import (
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/livenet"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
	"repro/internal/tcpnet"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Identifier types.
type (
	// MH identifies a mobile host.
	MH = ids.MH
	// MSS identifies a mobile support station (one cell).
	MSS = ids.MSS
	// Server identifies a fixed application server.
	Server = ids.Server
	// RequestID identifies one client request.
	RequestID = ids.RequestID
	// ProxyID identifies one proxy incarnation.
	ProxyID = ids.ProxyID
)

// Core protocol types.
type (
	// Config parameterizes a World; see DefaultConfig.
	Config = rdpcore.Config
	// World is the full system: stations, servers, substrates, hosts.
	World = rdpcore.World
	// MobileHost is the client handle returned by World.AddMH.
	MobileHost = rdpcore.MHNode
	// Stats aggregates protocol measurements; see World.Stats.
	Stats = rdpcore.Stats
)

// Latency models for wired/wireless links and server processing.
type (
	// LatencyModel samples per-message delays.
	LatencyModel = netsim.LatencyModel
	// Constant is a fixed delay.
	Constant = netsim.Constant
	// Uniform draws uniformly from [Lo, Hi].
	Uniform = netsim.Uniform
	// Exponential draws Floor + Exp(Mean-Floor).
	Exponential = netsim.Exponential
)

// Workload generation.
type (
	// Mobility parameterizes itinerary generation.
	Mobility = workload.Mobility
	// MobilityEvent is one itinerary step.
	MobilityEvent = workload.Event
	// UniformCells, RingWalk, PingPong, Markov and GridWalk choose
	// migration targets.
	UniformCells = workload.UniformCells
	RingWalk     = workload.RingWalk
	PingPong     = workload.PingPong
	Markov       = workload.Markov
	GridWalk     = workload.GridWalk
	// Requests parameterizes request arrival generation.
	Requests = workload.Requests
	// Arrival is one generated request.
	Arrival = workload.Arrival
)

// Mobility event kinds.
const (
	EvMigrate    = workload.EvMigrate
	EvDeactivate = workload.EvDeactivate
	EvActivate   = workload.EvActivate
)

// Measurement helpers.
type (
	// Histogram collects duration samples with quantile queries.
	Histogram = metrics.Histogram
	// Counter is a monotonic event count.
	Counter = metrics.Counter
	// TraceRecorder records network events; install its Observe method
	// as Config.Observer.
	TraceRecorder = trace.Recorder
	// TraceStep describes one expected delivery in a scenario check.
	TraceStep = trace.Step
	// DiagramOptions tunes TraceRecorder.Diagram's space-time rendering.
	DiagramOptions = trace.DiagramOptions
)

// DefaultConfig returns the paper-faithful default configuration:
// 3 stations, 1 server, causal wired delivery, ack priority, reliable
// wireless, 5ms/20ms/150ms wired/wireless/server times.
func DefaultConfig() Config { return rdpcore.DefaultConfig() }

// NewWorld builds a world on a deterministic simulation kernel.
func NewWorld(cfg Config) *World { return rdpcore.NewWorld(cfg) }

// NewTrace returns an empty trace recorder.
func NewTrace() *TraceRecorder { return trace.New() }

// JainIndex computes the Jain fairness index of a load vector.
func JainIndex(loads []float64) float64 { return metrics.JainIndex(loads) }

// RingLatency builds a per-pair wired latency function for a
// metropolitan ring of n stations (assign it to Config.WiredPairLatency).
func RingLatency(n int, base, perHop time.Duration) func(from, to ids.NodeID) LatencyModel {
	return netsim.RingLatency(n, base, perHop)
}

// NodeID is the transport-level address of any node.
type NodeID = ids.NodeID

// Itinerary generates one host's mobility events over [0, horizon).
func Itinerary(rng *RNG, cfg Mobility, start MSS, horizon time.Duration) []MobilityEvent {
	return workload.Itinerary(rng, cfg, start, horizon)
}

// ScheduleRequests generates one host's request arrivals over
// [0, horizon).
func ScheduleRequests(rng *RNG, cfg Requests, horizon time.Duration) []Arrival {
	return workload.Schedule(rng, cfg, horizon)
}

// RNG is the deterministic random source used by workload generation.
type RNG = sim.RNG

// NewRNG returns a seeded random source.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// LiveRuntime runs the same protocol code on goroutines and wall-clock
// time; see NewLiveRuntime.
type LiveRuntime = livenet.Runtime

// NewLiveRuntime returns a live scheduler. Build a world on it with
// NewLiveWorld, call Start, and interact through Do.
func NewLiveRuntime(seed int64) *LiveRuntime { return livenet.New(seed) }

// NewLiveWorld builds a world on a live runtime. Construct it before
// calling rt.Start, and drive it only through rt.Do.
func NewLiveWorld(rt *LiveRuntime, cfg Config) *World {
	return rdpcore.NewWorldOn(rt, cfg)
}

// TCPNet is a network of real loopback TCP endpoints — the paper's
// "distributed processes within a Linux network" prototype. Obtain one
// with NewTCPWorld and Close it when done.
type TCPNet = tcpnet.Net

// NewTCPWorld builds a world whose stations and servers communicate
// over real loopback TCP sockets, with the protocol's binary codec on
// the wire and causal stamps on wired frames. Construct it before
// calling rt.Start, drive it through rt.Do, and Close the returned net
// after rt.Stop.
func NewTCPWorld(rt *LiveRuntime, cfg Config) (*World, *TCPNet, error) {
	members := make([]NodeID, 0, cfg.NumMSS+cfg.NumServers)
	for i := 1; i <= cfg.NumMSS; i++ {
		members = append(members, MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, Server(i).Node())
	}
	n := tcpnet.New(rt, members)
	if err := n.Start(); err != nil {
		return nil, nil, err
	}
	w := rdpcore.NewWorldWith(rt, cfg, n, n)
	n.SetReachable(w.Reachable)
	return w, n, nil
}

// MessageKind re-exports the wire message kinds for trace assertions.
type MessageKind = msg.Kind

// Message kinds commonly matched in traces.
const (
	KindRequest          = msg.KindRequest
	KindResultDeliver    = msg.KindResultDeliver
	KindAckMH            = msg.KindAckMH
	KindGreet            = msg.KindGreet
	KindDereg            = msg.KindDereg
	KindDeregAck         = msg.KindDeregAck
	KindRequestForward   = msg.KindRequestForward
	KindUpdateCurrentLoc = msg.KindUpdateCurrentLoc
	KindResultForward    = msg.KindResultForward
	KindAckForward       = msg.KindAckForward
	KindDelPrefOnly      = msg.KindDelPrefOnly
	KindServerRequest    = msg.KindServerRequest
	KindServerResult     = msg.KindServerResult
	KindBusy             = msg.KindBusy
	KindAdmit            = msg.KindAdmit
)

// Fault injection and the recovery stack (experiment E10).
type (
	// FaultPlan declares the wired faults of a run: per-link drop/
	// duplicate/delay probabilities, timed partitions between station
	// groups, and scheduled station crash/restart windows.
	FaultPlan = faults.Plan
	// LinkFaults is the per-link fault distribution of a FaultPlan.
	LinkFaults = faults.LinkFaults
	// FaultLink addresses one directed wired link in FaultPlan.Links.
	FaultLink = faults.Link
	// Partition is a timed bidirectional partition between MSS groups.
	Partition = faults.Partition
	// Crash schedules one station crash/restart window.
	Crash = faults.Crash
	// Slowdown is a timed per-station processing slowdown window
	// (overload experiments; wire it up via Config.StationDelayHook).
	Slowdown = faults.Slowdown
	// LoadSpike is a timed offered-load multiplier window for workload
	// generators (see FaultInjector.LoadFactor).
	LoadSpike = faults.LoadSpike
	// FaultInjector executes a FaultPlan; its Stats field counts the
	// injected faults.
	FaultInjector = faults.Injector
	// ARQConfig parameterizes the wired link-layer retransmission
	// protocol (Config.WiredARQ, TCPNet.EnableARQ).
	ARQConfig = netsim.ARQConfig
)

// NewFaultedWorld builds a deterministic simulated world whose wired
// backbone executes the given fault plan. The injector draws from a
// fork of the world's seeded RNG, so equal (seed, plan) pairs give
// byte-identical chaos. Counter the injected faults with Config.WiredARQ
// (frame loss), Config.Checkpoint + RecoveryGrace + HandoffTimeout
// (station crashes), or measure the unprotected protocol by leaving
// them off — see experiments.E10WiredFaults for the full sweep.
func NewFaultedWorld(cfg Config, plan FaultPlan) (*World, *FaultInjector) {
	k := sim.NewKernel(cfg.Seed)
	inj := faults.New(k, plan)
	cfg.WiredFaults = inj
	w := rdpcore.NewWorldOn(k, cfg)
	inj.Schedule(w.CrashMSS, w.RestartMSS)
	return w, inj
}
