#!/bin/sh
# Profile a quick evaluation pass: writes cpu.pprof and mem.pprof in
# the repo root (gitignored) for `go tool pprof`. The profile files are
# created by rdpbench before the run starts, so a run that errors out or
# panics mid-experiment would otherwise leave partial profiles behind —
# the EXIT trap removes them unless the run finished cleanly, and stale
# profiles from an earlier run are removed up front. Extra arguments are
# passed through to rdpbench (e.g. -exp e16).
set -u
cd "$(dirname "$0")/.."

rm -f cpu.pprof mem.pprof
ok=0
cleanup() {
	if [ "$ok" -ne 1 ]; then
		rm -f cpu.pprof mem.pprof
	fi
}
trap cleanup EXIT INT TERM

go run ./cmd/rdpbench -quick -cpuprofile cpu.pprof -memprofile mem.pprof "$@" || exit "$?"
ok=1
