package rdpcore

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/proxymig"
)

// This file implements the proxy-migration mechanism (policy layer:
// internal/proxymig). When a trigger fires on a remote result forward,
// the proxy's host offers the proxy to the MH's current respMss:
//
//	old host            target (MH's respMss)         servers
//	  │ ── mig_offer ──────▶ │  admission: responsible,
//	  │                      │  quota (incl. inbound), inbox,
//	  │                      │  load-improvement check
//	  │ ◀─ mig_commit ────── │  (allocates + reserves NewProxy)
//	  │ ── mig_state ──────▶ │  installs proxy under NewProxy,
//	  │  (tombstone up)      │  rebinds local pref, announces:
//	  │ ◀───────────────────────── pref_redirect ──────▶ │
//	  │ ◀─ pref_redirect(confirm) ─────────────────────  │
//	  │  all confirmed + linger quiet period elapsed
//	  │ ── mig_gc ─────────▶ │  (reservation closed)
//
// The tombstone left at the old host redirects in-flight server replies,
// late Acks, stale request forwards and location updates to the new
// host, rewriting the proxy identity on the way and lazily re-binding
// the stale sender's pref. It is garbage-collected only after every
// server with a pending request confirmed the new pref AND a linger
// quiet period passed with no redirect traffic — FIFO ordering makes
// the confirms safe against the servers' own in-flight replies, but a
// stale pref at a third station can surface arbitrarily late.
//
// Composition with the rest of the stack:
//   - E10 crashes: the tombstone (identity map + outstanding confirms)
//     is journaled to stable store; mig_state/mig_commit in flight to a
//     crashed peer are held by the wired ARQ like any other control
//     message. The inbound reservation is volatile — losing it is safe
//     because the allocated sequence number was persisted and a
//     post-restart mig_state installs regardless.
//   - E11 overload: an inbound reservation counts against ProxyQuota at
//     both request admission and offer admission; migration control
//     travels class 0 of the priority inbox (see classOf) and, being
//     wired control traffic, is never silently shed (wired sheds are
//     ARQ backpressure).

// tombstone is the forwarding stub left at a proxy's old host after it
// migrated: the old→new identity map, plus the set of servers that
// still owed a reply at snapshot time and have not yet confirmed the
// new pref.
type tombstone struct {
	oldProxy       ids.ProxyID
	newProxy       ids.ProxyID
	mh             ids.MH
	pendingServers map[ids.Server]bool
	gcEpoch        int // invalidates superseded linger timers
}

// migReservation is the target-side bookkeeping of an accepted offer:
// the old identity it answers for, and proxy-addressed traffic that
// arrived for the new identity before the mig_state did (a station that
// learned the new pref early can legally race the state transfer).
type migReservation struct {
	oldProxy ids.ProxyID
	buffered []inboxItem
}

// noteForward runs on every result forward a proxy issues: it accounts
// the forwarding-path length and consults the migration policy.
func (n *MSSNode) noteForward(p *Proxy) {
	d := n.w.distance(n.id, p.currentLoc)
	n.w.Stats.ForwardHops.Add(int64(d))
	n.w.Stats.ForwardCount.Inc()
	n.w.Stats.ForwardHopMax.Observe(int64(d))
	if d == 0 {
		return
	}
	p.remoteForwards++
	n.maybeMigrate(p, d)
}

// maybeMigrate offers the proxy to the MH's current station when the
// policy fires. At most one offer per proxy is in flight; a lost
// offer/commit (possible only without the ARQ) simply leaves the proxy
// fixed until the cooldown lets the next trigger re-offer.
func (n *MSSNode) maybeMigrate(p *Proxy, dist int) {
	pol := n.w.cfg.Migration
	if !pol.Enabled() {
		return
	}
	if at, pending := n.migOutbound[p.id.Seq]; pending &&
		time.Duration(n.w.Kernel.Now()-at) < pol.Linger() {
		return // offer in flight
	}
	reason, ok := pol.Decide(proxymig.Observation{
		Distance:       dist,
		RemoteForwards: p.remoteForwards,
		HostProxies:    len(n.proxies),
		SinceAttempt:   time.Duration(n.w.Kernel.Now() - p.lastMigAttempt),
	})
	if !ok {
		return
	}
	p.lastMigAttempt = n.w.Kernel.Now()
	n.migOutbound[p.id.Seq] = n.w.Kernel.Now()
	n.w.Stats.MigOffers.Inc()
	n.sendWired(p.currentLoc.Node(), msg.MigOffer{
		Proxy:     p.id,
		MH:        p.mh,
		Pending:   uint32(len(p.reqs)),
		HostLoad:  uint32(len(n.proxies)),
		LoadCheck: reason == proxymig.ReasonLoad,
	})
}

// handleMigOffer is the target-side admission decision. Refusal is
// cheap and final for this offer; the old host's next trigger may try
// again.
func (n *MSSNode) handleMigOffer(m msg.MigOffer) {
	refuse := !n.localMhs.contains(m.MH) // the MH moved on (or never arrived)
	if q := n.w.cfg.ProxyQuota; q > 0 && len(n.proxies)+len(n.migInbound) >= q {
		refuse = true // inbound migration is proxy-quota pressure
	}
	if hw := n.w.cfg.AdmissionHighWater; hw > 0 && n.inbox.len() >= hw {
		refuse = true // an overloaded station does not adopt more work
	}
	if m.LoadCheck && !proxymig.AcceptLoad(int(m.HostLoad), len(n.proxies)+len(n.migInbound)) {
		refuse = true // load-driven move must improve the balance
	}
	if refuse {
		n.w.Stats.MigRefusals.Inc()
		n.sendWired(m.Proxy.Host.Node(), msg.MigCommit{Proxy: m.Proxy, MH: m.MH})
		return
	}
	n.nextProxySeq++
	n.persistSeq() // the identity must never be reused, even across a crash
	newID := ids.ProxyID{Host: n.id, Seq: n.nextProxySeq}
	n.migInbound[newID.Seq] = &migReservation{oldProxy: m.Proxy}
	n.sendWired(m.Proxy.Host.Node(),
		msg.MigCommit{Proxy: m.Proxy, NewProxy: newID, MH: m.MH, Accept: true})
}

// handleMigCommit completes (or abandons) the offer at the old host.
func (n *MSSNode) handleMigCommit(m msg.MigCommit) {
	delete(n.migOutbound, m.Proxy.Seq)
	if !m.Accept {
		return
	}
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		// The proxy is gone — acked away, or migrated on an earlier
		// commit. Cancel the target's reservation; the allocated
		// sequence number is simply burnt.
		n.sendWired(m.NewProxy.Host.Node(),
			msg.MigGC{OldProxy: m.Proxy, NewProxy: m.NewProxy, MH: m.MH})
		return
	}
	n.migrateOut(p, m.NewProxy)
}

// migrateOut atomically snapshots the proxy, ships the snapshot, and
// replaces the proxy with a tombstone — all in one simulation event, so
// a crash either precedes the whole step or follows it.
func (n *MSSNode) migrateOut(p *Proxy, newID ids.ProxyID) {
	st := msg.MigState{Proxy: p.id, NewProxy: newID, MH: p.mh, CurrentLoc: p.currentLoc}
	t := &tombstone{
		oldProxy:       p.id,
		newProxy:       newID,
		mh:             p.mh,
		pendingServers: make(map[ids.Server]bool),
	}
	// The lease's vouched-for incarnation moves with the proxy (E18);
	// the lease clock itself restarts at the new host.
	st.LeaseInc = p.leaseInc
	for _, req := range p.order {
		r := p.reqs[req]
		st.Reqs = append(st.Reqs, msg.MigReqState{
			Req: req, Server: r.server, Payload: r.payload,
			Result: r.result, HasResult: r.hasResult, Forwarded: r.forwarded,
			Batch: r.batch, Inc: r.inc,
		})
		if !r.hasResult {
			t.pendingServers[r.server] = true
		}
	}
	// Batch state (E17) moves with the proxy: open batches keep their
	// commit/release progress, and abort memos travel so the new
	// incarnation answers replayed batch traffic with the same abort.
	for _, id := range p.batchOrder {
		b := p.batches[id]
		st.Batches = append(st.Batches, msg.MigBatchState{
			Batch: b.id, Expected: b.expected, Committed: b.committed, Released: b.released,
			Inc: b.inc,
		})
	}
	for _, id := range p.abortOrder {
		st.Batches = append(st.Batches, msg.MigBatchState{Batch: id, Aborted: true})
	}
	delete(n.proxies, p.id.Seq)
	n.unpersistProxy(p.id.Seq)
	n.tombstones[p.id.Seq] = t
	n.persistTombstone(t)
	n.w.Stats.ProxySeconds[n.id] += time.Duration(n.w.Kernel.Now() - p.createdAt)
	n.sendWired(newID.Host.Node(), st)
	if len(t.pendingServers) == 0 {
		n.armTombstoneGC(t)
	}
}

// handleMigState installs the transferred proxy at the target under its
// new identity and announces the new pref.
func (n *MSSNode) handleMigState(m msg.MigState) {
	if m.NewProxy.Host != n.id {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	if n.proxies[m.NewProxy.Seq] != nil {
		return // duplicate install
	}
	if n.tombstones[m.NewProxy.Seq] != nil {
		return // stale duplicate: this identity already lived here and moved on
	}
	res := n.migInbound[m.NewProxy.Seq]
	delete(n.migInbound, m.NewProxy.Seq)
	// A missing reservation is legal: a crash on this station wiped it,
	// but the sequence number was persisted at allocation, so the
	// identity is still uniquely ours and the install proceeds.
	p := newProxy(m.NewProxy, m.MH, n)
	p.currentLoc = m.CurrentLoc
	p.leaseInc = m.LeaseInc
	// The install itself counts as a migration attempt: an MH ping-ponging
	// between cells must not drag its proxy along inside the cooldown.
	p.lastMigAttempt = n.w.Kernel.Now()
	for _, r := range m.Reqs {
		p.reqs[r.Req] = &proxyReq{
			server: r.Server, payload: r.Payload,
			result: r.Result, hasResult: r.HasResult, forwarded: r.Forwarded,
			batch: r.Batch, inc: r.Inc,
		}
		p.order = append(p.order, r.Req)
	}
	// Rebuild batch state: members are recovered from the requests' batch
	// tags (snapshot order = registration order); abort memos arrive with
	// empty member lists — the MH-side abort handler merges in its own
	// member knowledge. Unreleased live batches get a fresh, full
	// deadline at the new host.
	for _, bs := range m.Batches {
		if bs.Aborted {
			if _, ok := p.abortedBatches[bs.Batch]; !ok {
				p.abortedBatches[bs.Batch] = nil
				p.abortOrder = append(p.abortOrder, bs.Batch)
			}
			continue
		}
		b := &proxyBatch{id: bs.Batch, expected: bs.Expected, committed: bs.Committed, released: bs.Released, inc: bs.Inc}
		for _, req := range p.order {
			if p.reqs[req].batch == bs.Batch {
				b.members = append(b.members, req)
			}
		}
		p.batches[bs.Batch] = b
		p.batchOrder = append(p.batchOrder, bs.Batch)
		if !b.released {
			p.armBatchDeadline(b)
		}
	}
	n.proxies[m.NewProxy.Seq] = p
	n.persistProxy(p)
	p.armLease()                     // fresh lease at the new host (E18)
	n.w.Stats.ProxyCreations[n.id]++ // placement accounting (E12 fairness)
	// Rebind the local pref, or chase it along the hand-off chain if the
	// MH deregistered between commit and install.
	if pref, ok := n.prefs.get(m.MH); ok && n.localMhs.contains(m.MH) && pref.Proxy == m.Proxy {
		pref.Proxy = m.NewProxy
		n.prefs.set(m.MH, pref)
		n.persistMH(m.MH)
		n.w.Stats.PrefRedirects.Inc()
	} else if next, ok := n.forwardTo[m.MH]; ok {
		n.sendWired(next.Node(),
			msg.PrefRedirect{MH: m.MH, OldProxy: m.Proxy, NewProxy: m.NewProxy})
	}
	// If the MH is here but the snapshot still points elsewhere, this is
	// also a location update: stored results were forwarded to the wrong
	// station and must be re-sent. When currentLoc already names this
	// station (the common trigger case), the single forwarding attempt
	// already happened toward here — re-sending would only manufacture
	// duplicates.
	if n.localMhs.contains(m.MH) && p.currentLoc != n.id {
		p.onUpdateLoc(n.id)
	}
	// Announce the new pref to every server still owing a reply; each
	// confirms to the old host, draining the tombstone's confirm set.
	for _, req := range p.order {
		if r := p.reqs[req]; !r.hasResult {
			n.sendWired(r.server.Node(),
				msg.PrefRedirect{MH: m.MH, OldProxy: m.Proxy, NewProxy: m.NewProxy, Req: req})
		}
	}
	// Traffic that arrived for the new identity before the state did.
	if res != nil {
		for _, it := range res.buffered {
			n.process(it.from, it.m)
		}
	}
}

// handlePrefRedirect serves both directions of the redirect message at
// a station: a server confirmation feeding a tombstone's confirm set,
// or a rebind notice updating a stale pref (chasing the hand-off chain
// if the MH has moved on).
func (n *MSSNode) handlePrefRedirect(from ids.NodeID, m msg.PrefRedirect) {
	if m.Confirm {
		t := n.tombstones[m.OldProxy.Seq]
		if t == nil || from.Kind != ids.KindServer {
			return
		}
		srv := ids.Server(from.Num)
		if !t.pendingServers[srv] {
			return
		}
		delete(t.pendingServers, srv)
		n.persistTombstone(t)
		if len(t.pendingServers) == 0 {
			n.armTombstoneGC(t)
		}
		return
	}
	if arr, ok := n.arriving[m.MH]; ok {
		// Our registration for the MH is in flight; apply the rebind
		// after the deregack installs the pref it should act on.
		arr.deferred = append(arr.deferred, inboxItem{from: from, m: m})
		return
	}
	if pref, ok := n.prefs.get(m.MH); ok && pref.Proxy == m.OldProxy {
		pref.Proxy = m.NewProxy
		n.prefs.set(m.MH, pref)
		n.persistMH(m.MH)
		n.w.Stats.PrefRedirects.Inc()
		return
	}
	if next, ok := n.forwardTo[m.MH]; ok {
		n.sendWired(next.Node(), m)
	}
	// Otherwise stale: the pref was already rebound, erased, or lives on
	// a chain this station has no trace of; the tombstone covers it.
}

// handleMigGC closes the episode at the target: the tombstone is gone
// (or the offer was cancelled before the state transfer), so the
// reservation bookkeeping can be dropped.
func (n *MSSNode) handleMigGC(m msg.MigGC) {
	delete(n.migInbound, m.NewProxy.Seq)
}

// redirectOrHold gives proxy-addressed traffic whose proxy is not (or
// no longer) hosted here a second chance: a tombstone redirects it to
// the proxy's new home, an inbound reservation holds it until the
// mig_state installs. It reports whether the message was consumed.
func (n *MSSNode) redirectOrHold(id ids.ProxyID, from ids.NodeID, m msg.Message) bool {
	if id.Host != n.id {
		return false
	}
	if t := n.tombstones[id.Seq]; t != nil {
		n.forwardThroughTombstone(t, from, m)
		return true
	}
	if res := n.migInbound[id.Seq]; res != nil {
		res.buffered = append(res.buffered, inboxItem{from: from, m: m})
		return true
	}
	return false
}

// forwardThroughTombstone rewrites the proxy identity on a redirected
// message, forwards it to the new host, lazily re-binds the stale
// sender's pref, and extends the tombstone's quiet period.
func (n *MSSNode) forwardThroughTombstone(t *tombstone, from ids.NodeID, m msg.Message) {
	var fwd msg.Message
	switch v := m.(type) {
	case msg.ServerResult:
		v.Proxy = t.newProxy
		fwd = v
	case msg.AckForward:
		v.Proxy = t.newProxy
		fwd = v
	case msg.RequestForward:
		v.Proxy = t.newProxy
		fwd = v
	case msg.UpdateCurrentLoc:
		v.Proxy = t.newProxy
		fwd = v
	case msg.BatchOpen:
		v.Proxy = t.newProxy
		fwd = v
	case msg.BatchItem:
		v.Proxy = t.newProxy
		fwd = v
	case msg.BatchCommit:
		v.Proxy = t.newProxy
		fwd = v
	case msg.LeaseHeartbeat:
		v.Proxy = t.newProxy
		fwd = v
	default:
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	n.sendWired(t.newProxy.Host.Node(), fwd)
	if from.Kind == ids.KindMSS && ids.MSS(from.Num) != n.id {
		// The sender addressed a proxy that has moved: tell it the new
		// identity so the next message goes direct.
		n.sendWired(from,
			msg.PrefRedirect{MH: t.mh, OldProxy: t.oldProxy, NewProxy: t.newProxy})
	}
	if len(t.pendingServers) == 0 {
		n.armTombstoneGC(t) // redirect traffic re-opens the quiet period
	}
}

// armTombstoneGC (re-)starts the tombstone's linger timer. Each arming
// supersedes the previous one (gcEpoch); the tombstone dies only when a
// full quiet period passes after the last confirmation or redirect.
func (n *MSSNode) armTombstoneGC(t *tombstone) {
	t.gcEpoch++
	epoch := t.gcEpoch
	n.w.Kernel.Defer(n.w.cfg.Migration.Linger(), func() {
		if n.w.down[n.id] {
			return // restoreFromStore re-arms journaled tombstones
		}
		cur := n.tombstones[t.oldProxy.Seq]
		if cur != t || cur.gcEpoch != epoch || len(cur.pendingServers) > 0 {
			return
		}
		n.gcTombstone(t)
	})
}

// gcTombstone retires a fully-confirmed, quiet tombstone and tells the
// new host the episode is over.
func (n *MSSNode) gcTombstone(t *tombstone) {
	delete(n.tombstones, t.oldProxy.Seq)
	n.unpersistTombstone(t.oldProxy.Seq)
	n.w.Stats.MigCompleted.Inc()
	n.sendWired(t.newProxy.Host.Node(),
		msg.MigGC{OldProxy: t.oldProxy, NewProxy: t.newProxy, MH: t.mh})
}
