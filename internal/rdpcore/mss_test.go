package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
)

// edgeWorld returns a world whose kernel is driven manually; tests poke
// MSS nodes through their message handlers directly.
func edgeWorld() *World {
	cfg := DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(time.Millisecond)
	cfg.ServerProc = netsim.Constant(time.Millisecond)
	return NewWorld(cfg)
}

func TestDeregForUnknownMHParksUntilGreetOrJoin(t *testing.T) {
	// A dereg names this station as the MH's previous respMss, so if the
	// station knows nothing about the MH its own greet must still be in
	// flight: the dereg parks instead of fabricating an empty pref.
	w := edgeWorld()
	mss1 := w.MSSs[1]
	mss1.process(ids.MSS(2).Node(), msg.Dereg{MH: 42, NewMSS: 2})
	w.Run()
	if w.MSSs[2].Responsible(42) {
		t.Fatal("dereg must not be answered while the MH is unknown")
	}
	// The MH's join lands (the overtaken knowledge catches up); the
	// parked dereg is then served with the (empty) fresh registration.
	mss1.process(ids.MH(42).Node(), msg.Join{MH: 42})
	w.Run()
	if !w.MSSs[2].Responsible(42) {
		t.Error("mss2 should register the MH once the parked dereg is served")
	}
	if mss1.Responsible(42) {
		t.Error("mss1 should have handed responsibility over")
	}
	pref, ok := w.MSSs[2].PrefOf(42)
	if !ok || pref.HasProxy() {
		t.Errorf("pref = %v,%t; want present and empty", pref, ok)
	}
}

func TestUpdateCurrentLocForDeadProxyIsOrphan(t *testing.T) {
	w := edgeWorld()
	mss1 := w.MSSs[1]
	mss1.process(ids.MSS(2).Node(), msg.UpdateCurrentLoc{
		Proxy: ids.ProxyID{Host: 1, Seq: 99}, MH: 7, NewLoc: 2,
	})
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}

func TestAckForwardForDeadProxyIsOrphan(t *testing.T) {
	w := edgeWorld()
	w.MSSs[1].process(ids.MSS(2).Node(), msg.AckForward{
		Proxy: ids.ProxyID{Host: 1, Seq: 99}, MH: 7,
		Req: ids.RequestID{Origin: 7, Seq: 1}, DelProxy: true,
	})
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}

func TestServerResultForDeadProxyIsOrphan(t *testing.T) {
	w := edgeWorld()
	w.MSSs[1].process(ids.Server(1).Node(), msg.ServerResult{
		Proxy: ids.ProxyID{Host: 1, Seq: 99},
		Req:   ids.RequestID{Origin: 7, Seq: 1},
	})
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}

func TestRequestForwardForDeadProxyIsOrphan(t *testing.T) {
	w := edgeWorld()
	w.MSSs[1].process(ids.MSS(2).Node(), msg.RequestForward{
		Proxy: ids.ProxyID{Host: 1, Seq: 99},
		Req:   ids.RequestID{Origin: 7, Seq: 1},
	})
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}

func TestDelPrefOnlyWithMismatchedProxyIgnored(t *testing.T) {
	w := edgeWorld()
	mss1 := w.MSSs[1]
	w.AddMH(7, 1)
	w.Run() // join settles
	// A del-pref for a proxy the pref does not reference must not arm RKpR.
	mss1.process(ids.MSS(2).Node(), msg.DelPrefOnly{
		Proxy: ids.ProxyID{Host: 2, Seq: 5}, MH: 7,
	})
	pref, _ := mss1.PrefOf(7)
	if pref.RKpR {
		t.Error("RKpR armed by a mismatched del-pref")
	}
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}

func TestResultForwardWithMismatchedProxyDoesNotArmRKpR(t *testing.T) {
	w := edgeWorld()
	mss1 := w.MSSs[1]
	w.AddMH(7, 1)
	w.Run()
	mss1.process(ids.MSS(2).Node(), msg.ResultForward{
		Proxy:   ids.ProxyID{Host: 2, Seq: 5},
		MH:      7,
		Req:     ids.RequestID{Origin: 7, Seq: 1},
		Payload: []byte("r"),
		DelPref: true,
	})
	pref, _ := mss1.PrefOf(7)
	if pref.RKpR {
		t.Error("RKpR armed by a result for a proxy the pref does not hold")
	}
}

func TestStaleResultForwardStillAttemptsWireless(t *testing.T) {
	// §3.1: the proxy forwards "even if in the meantime MH has migrated";
	// the stale station attempts exactly one wireless forward. The MH is
	// not in its cell, so the frame drops.
	w := edgeWorld()
	w.AddMH(7, 2)
	w.Run()
	w.MSSs[1].process(ids.MSS(3).Node(), msg.ResultForward{
		Proxy:   ids.ProxyID{Host: 3, Seq: 1},
		MH:      7,
		Req:     ids.RequestID{Origin: 7, Seq: 1},
		Payload: []byte("r"),
	})
	w.Run()
	if got := w.Stats.WirelessDrops.Value(); got != 1 {
		t.Errorf("WirelessDrops = %d, want 1 (single stale attempt)", got)
	}
}

func TestDuplicateGreetDuringHandoffIgnored(t *testing.T) {
	w := edgeWorld()
	w.AddMH(7, 1)
	w.Run()
	mss2 := w.MSSs[2]
	// Two greets before the hand-off completes: only one dereg may flow.
	mss2.process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	mss2.process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	if len(mss2.arriving) != 1 {
		t.Fatalf("arriving entries = %d, want 1", len(mss2.arriving))
	}
}

func TestRequestBufferedDuringHandoff(t *testing.T) {
	w := edgeWorld()
	w.AddMH(7, 1)
	w.Run()
	mss2 := w.MSSs[2]
	mss2.process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	// Request lands while the dereg/deregack exchange is still pending.
	mss2.process(ids.MH(7).Node(), msg.Request{
		Req: ids.RequestID{Origin: 7, Seq: 1}, Server: 1, Payload: []byte("q"),
	})
	if got := len(mss2.arriving[7].buffered); got != 1 {
		t.Fatalf("buffered = %d, want 1", got)
	}
	w.loc[7] = 2 // ground truth catches up with the greet
	w.Run()
	// After deregack the buffered request proceeds: a proxy now exists.
	if mss2.HostedProxies() != 1 {
		t.Errorf("HostedProxies = %d, want 1 after buffered request ran", mss2.HostedProxies())
	}
}

func TestLateRequestFollowsForwardingChain(t *testing.T) {
	// A request delivered to a station after it de-registered the MH is
	// forwarded along the hand-off chain instead of being dropped.
	w := edgeWorld()
	w.AddMH(7, 1)
	w.Run()
	mss1 := w.MSSs[1]
	// Hand-off 1 -> 2 completes.
	w.Migrate(7, 2)
	w.Run()
	if mss1.Responsible(7) {
		t.Fatal("mss1 still responsible after hand-off")
	}
	// A stale request (sent before the migration) now arrives at mss1.
	mss1.process(ids.MH(7).Node(), msg.Request{
		Req: ids.RequestID{Origin: 7, Seq: 9}, Server: 1, Payload: []byte("late"),
	})
	w.Run()
	if got := w.Stats.OrphanMessages.Value(); got != 0 {
		t.Errorf("OrphanMessages = %d, want 0 (request must be forwarded)", got)
	}
	// The drained run completes the whole request cycle: the forwarded
	// request created a proxy at mss2 and its result was delivered and
	// acknowledged, retiring the proxy again.
	if got := w.Stats.ProxyCreations[2]; got != 1 {
		t.Errorf("proxy creations at mss2 = %d, want 1 (forwarded request served)", got)
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1", got)
	}
}

func TestIgnoredAckAfterDereg(t *testing.T) {
	w := edgeWorld()
	w.AddMH(7, 1)
	w.Run()
	mss1 := w.MSSs[1]
	w.Migrate(7, 2)
	w.Run()
	mss1.process(ids.MH(7).Node(), msg.AckMH{MH: 7, Req: ids.RequestID{Origin: 7, Seq: 1}})
	if got := w.Stats.IgnoredAcks.Value(); got != 1 {
		t.Errorf("IgnoredAcks = %d, want 1", got)
	}
}

func TestReactivationGreetFromUnknownMHRegisters(t *testing.T) {
	// Defensive path: a same-cell greet from an MH the station does not
	// know registers it like a join rather than crashing.
	w := edgeWorld()
	w.MSSs[1].process(ids.MH(9).Node(), msg.Greet{MH: 9, OldMSS: 1})
	if !w.MSSs[1].Responsible(9) {
		t.Error("unknown reactivating MH not registered")
	}
}

func TestProxyByIDWrongHost(t *testing.T) {
	w := edgeWorld()
	if p := w.MSSs[1].ProxyByID(ids.ProxyID{Host: 2, Seq: 1}); p != nil {
		t.Error("ProxyByID must reject foreign hosts")
	}
}

func TestUnknownMessageKindIsOrphan(t *testing.T) {
	w := edgeWorld()
	w.MSSs[1].process(ids.MSS(2).Node(), msg.MIPRegister{MH: 1, CareOf: 2})
	if got := w.Stats.OrphanMessages.Value(); got != 1 {
		t.Errorf("OrphanMessages = %d, want 1", got)
	}
}
