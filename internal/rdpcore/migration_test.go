package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/proxymig"
)

// migrationWorld builds the deterministic 3-station world of the figure
// scenarios with a migration policy installed.
func migrationWorld(t *testing.T, pol proxymig.Policy, proc netsim.LatencyModel) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = proc
	cfg.Migration = pol
	return NewWorld(cfg)
}

// TestMigrationTransfersPendingRequest runs the canonical episode: two
// requests share a proxy at mss1, the MH moves to mss2, the faster
// result's remote forward fires the hop trigger, and the proxy — with
// the slow request still pending at the server — moves to mss2. The
// server learns the new pref before replying, so the slow result takes
// the direct path; the tombstone drains and is collected.
func TestMigrationTransfersPendingRequest(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{800 * time.Millisecond, 250 * time.Millisecond}}
	w := migrationWorld(t, proxymig.Policy{HopThreshold: 1}, proc)
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh := w.AddMH(1, mss1)

	var reqA, reqB ids.RequestID
	w.Kernel.After(0, func() { reqA = mh.IssueRequest(srv, []byte("slow")) })
	w.Kernel.After(5*time.Millisecond, func() { reqB = mh.IssueRequest(srv, []byte("fast")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(3 * time.Second)

	for _, req := range []ids.RequestID{reqA, reqB} {
		if !mh.Seen(req) {
			t.Errorf("result of %v never delivered", req)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 2 {
		t.Errorf("ResultsDelivered = %d, want 2", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.MigOffers.Value(); got != 1 {
		t.Errorf("MigOffers = %d, want 1", got)
	}
	if got := w.Stats.MigCompleted.Value(); got != 1 {
		t.Errorf("MigCompleted = %d, want 1", got)
	}
	if got := w.Stats.MigRefusals.Value(); got != 0 {
		t.Errorf("MigRefusals = %d, want 0", got)
	}
	// One logical proxy, placed once at each station.
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1 (migration is not a new proxy)", got)
	}
	if got := w.Stats.ProxyCreations[mss1]; got != 1 {
		t.Errorf("placements at mss1 = %d, want 1", got)
	}
	if got := w.Stats.ProxyCreations[mss2]; got != 1 {
		t.Errorf("placements at mss2 = %d, want 1", got)
	}
	if got := w.Stats.PrefRedirects.Value(); got == 0 {
		t.Error("PrefRedirects = 0, want at least the install-time rebind")
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0 after the final ack", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestMigrationRedirectsInFlightReply tightens the slow request's
// timing so its reply leaves the server addressed to the old proxy —
// after the state transfer but before the pref_redirect lands. The
// tombstone must rewrite and re-aim the reply; nothing is delivered
// twice.
func TestMigrationRedirectsInFlightReply(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{275 * time.Millisecond, 250 * time.Millisecond}}
	w := migrationWorld(t, proxymig.Policy{HopThreshold: 1}, proc)
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh := w.AddMH(1, mss1)

	var reqA, reqB ids.RequestID
	w.Kernel.After(0, func() { reqA = mh.IssueRequest(srv, []byte("A")) })
	w.Kernel.After(5*time.Millisecond, func() { reqB = mh.IssueRequest(srv, []byte("B")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(3 * time.Second)

	for _, req := range []ids.RequestID{reqA, reqB} {
		if !mh.Seen(req) {
			t.Errorf("result of %v never delivered", req)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 2 {
		t.Errorf("ResultsDelivered = %d, want 2", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.MigCompleted.Value(); got != 1 {
		t.Errorf("MigCompleted = %d, want 1", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestMigrationRefusedAtQuota pins the target at its proxy quota: the
// offer must be refused, the proxy stays where it is, and delivery is
// unaffected.
func TestMigrationRefusedAtQuota(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{
		2 * time.Second,        // mh2's request keeps a proxy pinned at mss2
		250 * time.Millisecond, // mh1's request
	}}
	w := migrationWorld(t, proxymig.Policy{HopThreshold: 1}, proc)
	w.cfg.ProxyQuota = 1
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh1 := w.AddMH(1, mss1)
	mh2 := w.AddMH(2, mss2)

	var req1, req2 ids.RequestID
	w.Kernel.After(0, func() { req2 = mh2.IssueRequest(srv, []byte("pin")) })
	w.Kernel.After(5*time.Millisecond, func() { req1 = mh1.IssueRequest(srv, []byte("q")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(4 * time.Second)

	if !mh1.Seen(req1) || !mh2.Seen(req2) {
		t.Error("a result was never delivered")
	}
	if got := w.Stats.MigRefusals.Value(); got == 0 {
		t.Error("MigRefusals = 0, want the quota refusal")
	}
	if got := w.Stats.MigCompleted.Value(); got != 0 {
		t.Errorf("MigCompleted = %d, want 0 (offer was refused)", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestMigrationLoadDriven exercises the load trigger: the offering host
// carries three proxies, the target none, so AcceptLoad admits the move.
func TestMigrationLoadDriven(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{
		2 * time.Second, 2 * time.Second, // pin two extra proxies at mss1
		250 * time.Millisecond, // mh1's request
	}}
	w := migrationWorld(t, proxymig.Policy{LoadDriven: true}, proc)
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh1 := w.AddMH(1, mss1)
	mh3 := w.AddMH(3, mss1)
	mh4 := w.AddMH(4, mss1)

	var req1 ids.RequestID
	w.Kernel.After(0, func() { mh3.IssueRequest(srv, []byte("pin3")) })
	w.Kernel.After(1*time.Millisecond, func() { mh4.IssueRequest(srv, []byte("pin4")) })
	w.Kernel.After(5*time.Millisecond, func() { req1 = mh1.IssueRequest(srv, []byte("q")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(4 * time.Second)

	if !mh1.Seen(req1) {
		t.Error("mh1's result never delivered")
	}
	if got := w.Stats.MigCompleted.Value(); got != 1 {
		t.Errorf("MigCompleted = %d, want 1 (3 proxies vs 0 must move)", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestMigrationDisabledNeverOffers re-runs the canonical episode with
// the zero policy: the proxy must stay fixed and no migration message
// may appear.
func TestMigrationDisabledNeverOffers(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{800 * time.Millisecond, 250 * time.Millisecond}}
	w := migrationWorld(t, proxymig.Policy{}, proc)
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh := w.AddMH(1, mss1)

	w.Kernel.After(0, func() { mh.IssueRequest(srv, []byte("slow")) })
	w.Kernel.After(5*time.Millisecond, func() { mh.IssueRequest(srv, []byte("fast")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(3 * time.Second)

	if got := w.Stats.MigOffers.Value(); got != 0 {
		t.Errorf("MigOffers = %d, want 0 with migration disabled", got)
	}
	if got := w.Stats.MigMessages.Value(); got != 0 {
		t.Errorf("MigMessages = %d, want 0 with migration disabled", got)
	}
	if got := w.Stats.ProxyCreations[mss2]; got != 0 {
		t.Errorf("placements at mss2 = %d, want 0", got)
	}
	// Both forwards (fast result, slow result) crossed one hop.
	if got := w.Stats.ForwardHops.Value(); got != 2 {
		t.Errorf("ForwardHops = %d, want 2", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestMigrationCooldownSuppressesSecondOffer verifies MinInterval: a
// fresh proxy may offer at once (its cooldown clock starts backdated),
// but after that first offer — refused by quota, so the proxy stays put
// and forwards remotely again — the second qualifying forward falls
// inside the cooldown and must stay silent.
func TestMigrationCooldownSuppressesSecondOffer(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{
		2 * time.Second,                                // pin at mss2 (quota)
		250 * time.Millisecond, 400 * time.Millisecond, // mh1's two requests
	}}
	w := migrationWorld(t, proxymig.Policy{HopThreshold: 1, MinInterval: 10 * time.Second}, proc)
	w.cfg.ProxyQuota = 1
	mss1, mss2 := ids.MSS(1), ids.MSS(2)
	srv := ids.Server(1)
	mh1 := w.AddMH(1, mss1)
	mh2 := w.AddMH(2, mss2)

	w.Kernel.After(0, func() { mh2.IssueRequest(srv, []byte("pin")) })
	w.Kernel.After(5*time.Millisecond, func() { mh1.IssueRequest(srv, []byte("a")) })
	w.Kernel.After(10*time.Millisecond, func() { mh1.IssueRequest(srv, []byte("b")) })
	w.Kernel.After(50*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.RunUntil(4 * time.Second)

	if got := w.Stats.MigOffers.Value(); got != 1 {
		t.Errorf("MigOffers = %d, want exactly 1 under the cooldown", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}
