package rdpcore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wtp"
)

// recoveryConfig returns a Config with the full E10 recovery stack on:
// wired ARQ, stable-store checkpointing, hand-off timeouts, registration
// confirmations and the client-side shims that make delivery eventual
// under crashes.
func recoveryConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.WiredARQ = netsim.ARQConfig{Enabled: true, RTO: 60 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 600 * time.Millisecond
	cfg.HandoffTimeout = 500 * time.Millisecond
	cfg.RegConfirm = true
	return cfg
}

// TestCrashRecoveryRedeliversResult crashes the station hosting an MH's
// proxy while the server is still processing. The wired ARQ holds the
// reply addressed to the down station and delivers it after the
// checkpointed restart; the restored proxy forwards it exactly once.
func TestCrashRecoveryRedeliversResult(t *testing.T) {
	cfg := recoveryConfig(1)
	cfg.NumMSS = 2
	cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("crash")) })
	w.Schedule(100*time.Millisecond, func() { w.CrashMSS(1) })
	w.Schedule(400*time.Millisecond, func() { w.RestartMSS(1) })
	w.RunUntil(3 * time.Second)

	if !mh.Seen(req) {
		t.Fatalf("result not delivered after crash/restart (delivered=%d wiredDrops=%d)",
			w.Stats.ResultsDelivered.Value(), w.Stats.WiredDrops.Value())
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if c, r := w.Stats.MSSCrashes.Value(), w.Stats.MSSRestarts.Value(); c != 1 || r != 1 {
		t.Errorf("crashes/restarts = %d/%d, want 1/1", c, r)
	}
	if w.Stats.WiredDrops.Value() == 0 {
		t.Error("no wired drops recorded; the reply should have hit the down station")
	}
	if w.CheckpointWrites() == 0 {
		t.Error("no checkpoint writes recorded despite Config.Checkpoint")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrashRecoveryReissuesServerRequest disables the wired ARQ, so the
// server reply that hits the down station is lost for good. The
// checkpointed journal still knows the request has no result: the
// post-restart recovery pass re-issues it to the server.
func TestCrashRecoveryReissuesServerRequest(t *testing.T) {
	cfg := recoveryConfig(1)
	// No ARQ — and therefore no causal order either: a permanently
	// dropped frame would wedge every causally-later message at the
	// destination (see netsim.WiredConfig.Faults).
	cfg.WiredARQ = netsim.ARQConfig{}
	cfg.Causal = false
	cfg.NumMSS = 2
	cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("lost-reply")) })
	w.Schedule(100*time.Millisecond, func() { w.CrashMSS(1) })
	w.Schedule(400*time.Millisecond, func() { w.RestartMSS(1) })
	w.RunUntil(3 * time.Second)

	if !mh.Seen(req) {
		t.Fatalf("result not recovered via re-issued server request (recoveryResends=%d)",
			w.Stats.RecoveryResends.Value())
	}
	if got := w.Stats.RecoveryResends.Value(); got == 0 {
		t.Error("RecoveryResends = 0; recovery pass should have re-issued the request")
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrashAmnesiaLosesResult is the ablation: same outage, but without
// checkpointing or ARQ the restarted station remembers nothing and the
// lost reply is never recovered.
func TestCrashAmnesiaLosesResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumMSS = 2
	cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("doomed")) })
	w.Schedule(100*time.Millisecond, func() { w.CrashMSS(1) })
	w.Schedule(400*time.Millisecond, func() { w.RestartMSS(1) })
	w.RunUntil(3 * time.Second)

	if mh.Seen(req) {
		t.Error("amnesiac restart delivered the result; ablation should lose it")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 0 {
		t.Errorf("ResultsDelivered = %d, want 0 without checkpoint/ARQ", got)
	}
}

// TestHandoffTimeoutUnsticksCrashedOldStation migrates an MH away from a
// station that crashed with its dereg unreachable (no ARQ). The new
// station's hand-off timer re-issues the dereg until the old one
// restarts, replays its journal and serves it.
func TestHandoffTimeoutUnsticksCrashedOldStation(t *testing.T) {
	cfg := recoveryConfig(1)
	cfg.WiredARQ = netsim.ARQConfig{} // with causal order off, as above
	cfg.Causal = false
	cfg.HandoffTimeout = 150 * time.Millisecond
	cfg.NumMSS = 2
	cfg.ServerProc = netsim.Constant(time.Second)
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("handoff")) })
	w.Schedule(100*time.Millisecond, func() { w.CrashMSS(1) })
	w.Schedule(200*time.Millisecond, func() { w.Migrate(1, 2) })
	w.Schedule(600*time.Millisecond, func() { w.RestartMSS(1) })
	w.RunUntil(5 * time.Second)

	if !mh.Seen(req) {
		t.Fatalf("result not delivered after hand-off across crash (reissues=%d handoffs=%d)",
			w.Stats.HandoffReissues.Value(), w.Stats.Handoffs.Value())
	}
	if got := w.Stats.HandoffReissues.Value(); got == 0 {
		t.Error("HandoffReissues = 0; the dereg to the down station should have been re-issued")
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// chaosParams configures one randomized fault-injected run.
type chaosParams struct {
	seed     int64
	mhs      int
	cells    int
	recovery bool
	// overload layers the E11 protection stack (admission control,
	// priority classes, busy backoff, bounded link queues) over the
	// recovery stack and adds station slowdowns plus an offered-load
	// spike to the fault plan.
	overload bool
	// migrate turns on hop-threshold proxy migration, so migration
	// episodes race the crash windows, the partition and (with overload)
	// the load spike.
	migrate bool
	// disconnect takes every third MH out of radio coverage for a
	// twelve-second window overlapping both crash windows (E17):
	// requests issued inside the window journal to the offline queue
	// and must replay to completion after reconnection.
	disconnect bool
	// mhcrash crashes every fourth MH with amnesia mid-run (E18): the
	// victims reboot under a fresh incarnation three seconds later —
	// except the last, which stays dead so the lease GC must reclaim
	// whatever it orphaned. Delivery is then judged incarnation-scoped:
	// requests issued by a dead incarnation are exempt, everything else
	// must still arrive.
	mhcrash bool
	// windowed carries every downlink over the E15 windowed transport
	// and makes the radio itself lossy (10% per frame, both directions),
	// so window timers, SACK recovery and link resets race hand-offs,
	// station crashes and incarnation bumps.
	windowed bool
	// aggregated switches the stations to the E16 aggregated location
	// representation (set-backed responsibility and pref tables) with no
	// GroupTopic, so sharing never engages: the run must be externally
	// indistinguishable from the faithful representation.
	aggregated bool
	horizon    time.Duration
	drainFor   time.Duration
}

// chaosPlan builds the fault schedule for a run: lossy, duplicating,
// reordering wired links, one two-second partition, and two MSS outages
// that both restart well before the horizon.
func chaosPlan() faults.Plan {
	return faults.Plan{
		Default: faults.LinkFaults{
			DropProb:  0.10,
			DupProb:   0.03,
			DelayProb: 0.10,
			DelayMax:  20 * time.Millisecond,
		},
		Partitions: []faults.Partition{
			{Start: 10 * time.Second, End: 12 * time.Second, A: []ids.MSS{1, 2}, B: []ids.MSS{3, 4}},
		},
		Crashes: []faults.Crash{
			{MSS: 2, At: 15 * time.Second, RestartAt: 18 * time.Second},
			{MSS: 4, At: 25 * time.Second, RestartAt: 28 * time.Second},
		},
	}
}

// chaos drives a randomized world under an adversarial fault plan. With
// p.recovery the full ARQ + checkpoint + timeout stack is on and every
// issued request must be delivered by the end of the drain; without it
// the run is the ablation and the caller asserts degradation instead.
// Invariants are checked only at the end: while a station is down, prefs
// legitimately reference proxies whose host has (transiently) forgotten
// them.
func chaos(t *testing.T, p chaosParams) (w *World, missing, total, admittedLost int) {
	t.Helper()
	var cfg Config
	if p.recovery {
		cfg = recoveryConfig(p.seed)
		cfg.GreetRefresh = 2 * time.Second
		cfg.RequestTimeout = 3 * time.Second
	} else {
		cfg = DefaultConfig()
		cfg.Seed = p.seed
		// The ablation drops frames for good; causal order would turn
		// each drop into a permanent wedge of the destination, so it is
		// off here (the E10 ablation configuration).
		cfg.Causal = false
	}
	cfg.NumMSS = p.cells
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Uniform{Lo: time.Millisecond, Hi: 15 * time.Millisecond}
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	cfg.ServerProc = netsim.Exponential{MeanDelay: 300 * time.Millisecond, Floor: 20 * time.Millisecond}

	if p.windowed {
		cfg.WirelessWTP = wtp.Config{Enabled: true}
		cfg.WirelessLoss = 0.10
	}

	if p.aggregated {
		cfg.AggregatedState = true // representation only; GroupTopic stays nil
	}

	plan := chaosPlan()
	if p.overload {
		cfg.ProcDelay = 3 * time.Millisecond
		cfg.PriorityClasses = true
		cfg.AdmissionHighWater = 8
		cfg.BusyRetryBase = 200 * time.Millisecond
		cfg.WiredQueueLimit = 4
		cfg.WirelessQueueLimit = 1
		plan.Slowdowns = []faults.Slowdown{
			{MSS: 1, Start: 20 * time.Second, End: 32 * time.Second, Extra: 15 * time.Millisecond},
			{MSS: 3, Start: 24 * time.Second, End: 36 * time.Second, Extra: 15 * time.Millisecond},
		}
		plan.Spikes = []faults.LoadSpike{
			{Start: 20 * time.Second, End: 30 * time.Second, Factor: 3},
		}
	}

	if p.migrate {
		// The flat station metric makes every remote forward distance 1,
		// so threshold 1 fires on any triangle route; the cooldown keeps
		// an MH ping-ponging between cells from dragging its proxy along
		// on every hand-off.
		cfg.Migration = proxymig.Policy{
			HopThreshold:    1,
			MinInterval:     750 * time.Millisecond,
			TombstoneLinger: 1500 * time.Millisecond,
		}
	}

	if p.disconnect {
		// The window overlaps the MSS 2 outage entirely and opens
		// against the MSS 4 crash instant, so replay races restart
		// recovery and (with p.migrate) in-flight migrations.
		for i := 1; i <= p.mhs; i += 3 {
			plan.Disconnects = append(plan.Disconnects, faults.Disconnect{
				MH: ids.MH(i), At: 14 * time.Second, ReconnectAt: 26 * time.Second,
			})
		}
	}

	if p.mhcrash {
		// The crash instant sits inside the disconnection window (with
		// p.disconnect, victim 1 reboots while still out of coverage and
		// must filter its offline journal) and between the two MSS
		// outages. The last victim never restarts.
		cfg.LeaseTTL = 5 * time.Second
		for i := 1; i <= p.mhs; i += 4 {
			plan.MHCrashes = append(plan.MHCrashes, faults.MHCrash{
				MH: ids.MH(i), At: 20 * time.Second, RestartAt: 23 * time.Second,
			})
		}
		plan.MHCrashes[len(plan.MHCrashes)-1].RestartAt = 0
	}

	// The injector draws from its own forked RNG stream, so the workload
	// below is identical with and without recovery.
	k := sim.NewKernel(cfg.Seed)
	inj := faults.New(k, plan)
	cfg.WiredFaults = inj
	if p.overload {
		cfg.StationDelayHook = inj.ExtraProcDelay
	}
	w = NewWorldOn(k, cfg)
	inj.Schedule(w.CrashMSS, w.RestartMSS)
	inj.ScheduleDisconnects(w.Disconnect, w.Reconnect)
	inj.ScheduleMHCrashes(w.CrashMH, w.RestartMH)

	cells := w.StationList()
	issueUntil := p.horizon - p.drainFor
	// Each request is remembered with the incarnation that issued it:
	// the delivery judgment below exempts requests whose incarnation
	// died (without p.mhcrash every incarnation is FirstIncarnation and
	// nothing is exempt).
	type chaosReq struct {
		req ids.RequestID
		inc ids.Incarnation
	}
	reqs := make(map[ids.MH][]chaosReq)
	for i := 1; i <= p.mhs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)
		mob := workload.Mobility{
			Picker:    workload.UniformCells{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: 1500 * time.Millisecond, Floor: 100 * time.Millisecond},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, issueUntil) {
			ev := ev
			w.Kernel.After(ev.At, func() {
				// A host out of coverage stays put (the E17 drivers
				// suppress moves the same way); no-op without p.disconnect.
				if ev.Kind == workload.EvMigrate && !w.IsDisconnected(mhID) {
					w.Migrate(mhID, ev.Cell)
				}
			})
		}
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 900 * time.Millisecond, Floor: 10 * time.Millisecond},
			Servers:      []ids.Server{1, 2},
			PayloadBytes: 24,
		}
		for _, a := range workload.Schedule(rng, reqCfg, issueUntil) {
			a := a
			// An active load spike multiplies the offered rate by issuing
			// extra copies of the arrival (overload mode only; the copies
			// draw no randomness, so the base schedule stays identical).
			copies := 1
			if p.overload {
				if f := int(inj.LoadFactor(a.At)); f > copies {
					copies = f
				}
			}
			for c := 0; c < copies; c++ {
				at := a.At + time.Duration(c)*7*time.Millisecond
				w.Kernel.After(at, func() {
					if r := mh.IssueRequest(a.Server, a.Payload); r.Seq != 0 {
						reqs[mhID] = append(reqs[mhID], chaosReq{req: r, inc: w.IncarnationOf(mhID)})
					}
				})
			}
		}
	}

	w.RunUntil(p.horizon)

	for mhID, rs := range reqs {
		mh := w.MHs[mhID]
		for _, cr := range rs {
			if w.IsCrashed(mhID) || cr.inc != w.IncarnationOf(mhID) {
				// The issuing incarnation died with its memory (E18);
				// the delivery guarantee covers survivors only.
				continue
			}
			total++
			if !mh.Seen(cr.req) {
				missing++
				if mh.Admitted(cr.req) {
					admittedLost++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("chaos issued no requests; parameters degenerate")
	}
	if got := w.Stats.MSSCrashes.Value(); got != 2 {
		t.Errorf("MSSCrashes = %d, want 2 (plan executed?)", got)
	}
	return w, missing, total, admittedLost
}

// TestChaosSoakRecovery asserts the headline E10 guarantee at soak
// scale: under 10% wired loss, duplication, reordering, a partition and
// two MSS crash/restart windows, the recovery stack still delivers every
// result, with bounded duplicates.
func TestChaosSoakRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered under chaos (delivered=%d wiredDrops=%d recoveryResends=%d)",
					missing, total, w.Stats.ResultsDelivered.Value(),
					w.Stats.WiredDrops.Value(), w.Stats.RecoveryResends.Value())
			}
			// Crash-window races and client retries may duplicate a few
			// deliveries; the MH detects all of them (assumption 5). Only a
			// storm would be a bug.
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
			if w.Stats.WiredDrops.Value() == 0 {
				t.Error("no wired drops recorded; fault plan inactive?")
			}
		})
	}
}

// TestChaosAblationDegrades runs the identical fault plan with the whole
// recovery stack off: permanent wired drops and amnesiac restarts must
// lose results.
func TestChaosAblationDegrades(t *testing.T) {
	_, missing, total, _ := chaos(t, chaosParams{
		seed: 1, mhs: 8, cells: 5, recovery: false,
		horizon: 60 * time.Second, drainFor: 30 * time.Second,
	})
	if missing == 0 {
		t.Errorf("ablation delivered all %d requests; faults should have lost some", total)
	}
}

// TestChaosOverloadAdmittedNeverLost is the property soak for the E11
// protection stack under full chaos: random wired loss, duplication and
// reordering, a partition, two MSS crash/restart windows, station
// slowdowns, an offered-load spike, and bounded queues shedding frames
// on both substrates. The property: a request whose admission was
// acknowledged to the client is never lost (and the MH's duplicate
// detection keeps every delivery exactly-once at the application); with
// the client-side retry machinery on top, every issued request is in
// fact delivered, and the overload shows up only as explicit busy
// refusals and recovered sheds.
func TestChaosOverloadAdmittedNeverLost(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, admittedLost := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, overload: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if admittedLost != 0 {
				t.Errorf("%d admitted requests lost under shedding chaos, want 0", admittedLost)
			}
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered (refusals=%d shed=%d busyRetries=%d)",
					missing, total, w.Stats.BusyRefusals.Value(),
					w.Stats.NetworkShed.Value(), w.Stats.BusyRetries.Value())
			}
			if w.Stats.BusyRefusals.Value() == 0 {
				t.Error("no busy refusals; the overload machinery never engaged")
			}
			if w.Stats.NetworkShed.Value() == 0 {
				t.Error("no network sheds; bounded queues never engaged")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
		})
	}
}

// TestChaosMigrationRecovery soaks proxy migration under the full E10
// fault plan: migration episodes race 10% wired loss, duplication,
// reordering, a partition, and two MSS crash/restart windows — one of
// which can land mid-handshake, leaving tombstones and reservations to
// the journal. Every request must still be delivered, without a
// duplicate storm, and every migration that engaged must drain.
func TestChaosMigrationRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, migrate: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered with migration on (migOffers=%d migCompleted=%d recoveryResends=%d)",
					missing, total, w.Stats.MigOffers.Value(),
					w.Stats.MigCompleted.Value(), w.Stats.RecoveryResends.Value())
			}
			if w.Stats.MigCompleted.Value() == 0 {
				t.Error("MigCompleted = 0; migration never engaged under chaos")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
		})
	}
}

// TestChaosMigrationOverloadAdmittedNeverLost composes all three
// subsystems: migration episodes fire during the E11 load spike and
// station slowdowns while the E10 fault plan crashes stations.
// Admission control must keep counting inbound migrations as proxy
// pressure, migration control must survive shedding (it rides the
// never-shed wired signaling class), and no admitted request may be
// lost.
func TestChaosMigrationOverloadAdmittedNeverLost(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, admittedLost := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, overload: true, migrate: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if admittedLost != 0 {
				t.Errorf("%d admitted requests lost with migration + overload chaos, want 0", admittedLost)
			}
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered (refusals=%d shed=%d migOffers=%d)",
					missing, total, w.Stats.BusyRefusals.Value(),
					w.Stats.NetworkShed.Value(), w.Stats.MigOffers.Value())
			}
			if w.Stats.MigOffers.Value() == 0 {
				t.Error("MigOffers = 0; migration never engaged")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
		})
	}
}

// TestChaosDisconnectRecovery soaks the E17 disconnected-operation
// machinery under the full E10 fault plan: every third MH loses radio
// coverage for twelve seconds spanning both MSS crash windows, keeps
// issuing into the offline queue, and replays it on reconnection. Every
// request — journaled or not — must still be delivered by the end of
// the drain, with bounded duplicates.
func TestChaosDisconnectRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, disconnect: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered with disconnections (offlineQueued=%d offlineReplayed=%d)",
					missing, total, w.Stats.OfflineQueued.Value(), w.Stats.OfflineReplayed.Value())
			}
			if w.Stats.OfflineQueued.Value() == 0 {
				t.Error("OfflineQueued = 0; no request ever hit the offline queue")
			}
			if w.Stats.OfflineReplayed.Value() == 0 {
				t.Error("OfflineReplayed = 0; reconnection never replayed the queue")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
		})
	}
}

// TestChaosDisconnectMigrationCrash composes disconnection windows with
// proxy migration under the crash plan: offline replay lands while
// proxies are migrating between stations and stations are restarting
// from their journals. Delivery must stay complete and migration must
// still engage.
func TestChaosDisconnectMigrationCrash(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, migrate: true, disconnect: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d requests undelivered with disconnect+migration (migCompleted=%d offlineReplayed=%d)",
					missing, total, w.Stats.MigCompleted.Value(), w.Stats.OfflineReplayed.Value())
			}
			if w.Stats.MigCompleted.Value() == 0 {
				t.Error("MigCompleted = 0; migration never engaged under disconnect chaos")
			}
			if w.Stats.OfflineReplayed.Value() == 0 {
				t.Error("OfflineReplayed = 0; reconnection never replayed the queue")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at end: %v", err)
			}
		})
	}
}

// TestChaosDisconnectDeterminism replays a disconnect+migration chaos
// seed twice: the disconnection windows, offline replay and everything
// they race must be deterministic.
func TestChaosDisconnectDeterminism(t *testing.T) {
	run := func() [5]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 4, mhs: 6, cells: 5, recovery: true, migrate: true, disconnect: true,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [5]int64{
			w.Stats.ResultsDelivered.Value(),
			w.Stats.OfflineQueued.Value(),
			w.Stats.OfflineReplayed.Value(),
			w.Stats.MigCompleted.Value(),
			int64(missing),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged with disconnections on: %v vs %v", a, b)
	}
}

// TestChaosMigrationDeterminism replays a migration-enabled chaos seed
// twice: offers, transfers and tombstone GC must all be deterministic.
func TestChaosMigrationDeterminism(t *testing.T) {
	run := func() [5]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 3, mhs: 6, cells: 5, recovery: true, migrate: true,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [5]int64{
			w.Stats.ResultsDelivered.Value(),
			w.Stats.MigOffers.Value(),
			w.Stats.MigCompleted.Value(),
			w.Stats.MigMessages.Value(),
			int64(missing),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged with migration on: %v vs %v", a, b)
	}
}

// TestChaosMHCrashRecovery soaks the E18 mobile-host failure model
// under the full E10 fault plan: every fourth MH crashes with amnesia
// mid-run and reboots under a fresh incarnation (the last victim stays
// dead). Every surviving-incarnation request must be delivered, the
// lease machinery must have engaged, and quiescence must show no proxy
// state owned by a dead incarnation.
func TestChaosMHCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, mhcrash: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d survivor requests undelivered (staleDrops=%d reclaimed=%d heartbeats=%d)",
					missing, total, w.Stats.StaleIncarnationDrops.Value(),
					w.Stats.ProxiesReclaimed.Value(), w.Stats.LeaseHeartbeats.Value())
			}
			if got := w.Stats.MHCrashes.Value(); got != 2 {
				t.Errorf("MHCrashes = %d, want 2 (plan executed?)", got)
			}
			if got := w.Stats.MHRestarts.Value(); got != 1 {
				t.Errorf("MHRestarts = %d, want 1 (one victim is permanent)", got)
			}
			if w.Stats.LeaseHeartbeats.Value() == 0 {
				t.Error("LeaseHeartbeats = 0; the lease machinery never engaged")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckQuiescent(); err != nil {
				t.Errorf("quiescence at end: %v", err)
			}
		})
	}
}

// TestChaosMHCrashMigration races host crashes against proxy migration:
// a victim's proxy may be mid-transfer when its owner dies, so the
// lease state must survive the MigState handoff and the reclaim memo
// must chase the forwarding pointers. Survivor delivery stays complete
// and migration still engages.
func TestChaosMHCrashMigration(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, mhcrash: true, migrate: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d survivor requests undelivered with migration on (migCompleted=%d reclaimed=%d)",
					missing, total, w.Stats.MigCompleted.Value(), w.Stats.ProxiesReclaimed.Value())
			}
			if w.Stats.MigCompleted.Value() == 0 {
				t.Error("MigCompleted = 0; migration never engaged under MH-crash chaos")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckQuiescent(); err != nil {
				t.Errorf("quiescence at end: %v", err)
			}
		})
	}
}

// TestChaosMHCrashDisconnect composes host crashes with disconnection
// windows: victim 1 is also a disconnect victim, so it crashes out of
// coverage, reboots still out of coverage, and must discard its
// dead-incarnation offline journal at the reboot instead of replaying
// it on reconnection.
func TestChaosMHCrashDisconnect(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, mhcrash: true, disconnect: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d survivor requests undelivered with disconnections (offlineReplayed=%d droppedStale=%d)",
					missing, total, w.Stats.OfflineReplayed.Value(), w.Stats.OfflineDroppedStale.Value())
			}
			if w.Stats.OfflineQueued.Value() == 0 {
				t.Error("OfflineQueued = 0; no request ever hit the offline queue")
			}
			if w.Stats.OfflineDroppedStale.Value() == 0 {
				t.Error("OfflineDroppedStale = 0; the reboot never filtered a dead-incarnation journal")
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckQuiescent(); err != nil {
				t.Errorf("quiescence at end: %v", err)
			}
		})
	}
}

// TestChaosMHCrashDeterminism replays the full composition — host
// crashes, disconnections and migration under the E10 fault plan —
// twice: incarnation bumps, lease timers, reclaim memos and journal
// filtering must all be pure functions of the seed.
func TestChaosMHCrashDeterminism(t *testing.T) {
	run := func() [6]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 5, mhs: 6, cells: 5, recovery: true, mhcrash: true, migrate: true, disconnect: true,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [6]int64{
			w.Stats.ResultsDelivered.Value(),
			w.Stats.ProxiesReclaimed.Value(),
			w.Stats.StaleIncarnationDrops.Value(),
			w.Stats.LeaseHeartbeats.Value(),
			w.Stats.OfflineDroppedStale.Value(),
			int64(missing),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged with MH crashes on: %v vs %v", a, b)
	}
}

// TestChaosWindowedTransportRecovery soaks the E15 windowed wireless
// transport under the full composition: 10% radio frame loss on top of
// the E10 wired fault plan, proxy migration and amnesiac MH crashes.
// WTP retransmission, SACK recovery and window resets race hand-offs,
// incarnation bumps and greet-refresh recovery, yet every
// surviving-incarnation request must still be delivered exactly once at
// the application.
func TestChaosWindowedTransportRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true, windowed: true, migrate: true, mhcrash: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d survivor requests undelivered over windowed radio (wtpRetrans=%d wtpResets=%d migCompleted=%d)",
					missing, total, w.Stats.WTPRetransmits.Value(),
					w.Stats.WTPResets.Value(), w.Stats.MigCompleted.Value())
			}
			if w.Stats.WTPRetransmits.Value() == 0 {
				t.Error("WTPRetransmits = 0; the lossy radio never exercised the window")
			}
			if w.Stats.WTPFrames.Value() == 0 {
				t.Error("WTPFrames = 0; the windowed transport never engaged")
			}
			if w.Stats.MigCompleted.Value() == 0 {
				t.Error("MigCompleted = 0; migration never engaged under windowed chaos")
			}
			// WTP dedups at the frame level, but the application ack an MH
			// returns after a delivery still rides the raw 10%-lossy uplink:
			// each lost ack draws a greet-refresh re-forward that the MH must
			// detect and suppress. DuplicateDeliveries counts exactly those
			// suppressed copies, so unlike the lossless-radio soaks a sizable
			// count is inherent here — the gate only rejects an actual storm
			// (a retransmission loop the dedup would be masking).
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*2 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckQuiescent(); err != nil {
				t.Errorf("quiescence at end: %v", err)
			}
		})
	}
}

// TestChaosWindowedTransportDeterminism replays a windowed-transport
// chaos seed twice: RTO timers, fast-retransmit triggers, cwnd
// evolution and coalescing decisions must all be pure functions of the
// seed, even while racing migrations and MH crashes.
func TestChaosWindowedTransportDeterminism(t *testing.T) {
	run := func() [6]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 6, mhs: 6, cells: 5, recovery: true, windowed: true, migrate: true, mhcrash: true,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [6]int64{
			w.Stats.ResultsDelivered.Value(),
			w.Stats.WTPRetransmits.Value(),
			w.Stats.WTPFrames.Value(),
			w.Stats.WTPFrameMsgs.Value(),
			w.Stats.Handoffs.Value(),
			int64(missing),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged over the windowed transport: %v vs %v", a, b)
	}
}

// TestChaosAggregatedRecovery soaks the E16 aggregated location
// representation under the full composition — wired loss, a partition,
// MSS crash/restart windows, proxy migration, disconnection windows and
// amnesiac MH crashes — and demands the same headline guarantee as the
// faithful runs: every surviving-incarnation request delivered, no
// duplicate storm, clean quiescence. The set-backed tables must survive
// journal restores and hand-off races byte-for-byte.
func TestChaosAggregatedRecovery(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w, missing, total, _ := chaos(t, chaosParams{
				seed: seed, mhs: 8, cells: 5, recovery: true,
				migrate: true, disconnect: true, mhcrash: true, aggregated: true,
				horizon: 60 * time.Second, drainFor: 30 * time.Second,
			})
			if missing != 0 {
				t.Errorf("%d of %d survivor requests undelivered in aggregated mode (migCompleted=%d recoveryResends=%d)",
					missing, total, w.Stats.MigCompleted.Value(), w.Stats.RecoveryResends.Value())
			}
			if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); dup*10 > del {
				t.Errorf("DuplicateDeliveries = %d of %d delivered; duplicate storm", dup, del)
			}
			if err := w.CheckQuiescent(); err != nil {
				t.Errorf("quiescence at end: %v", err)
			}
		})
	}
}

// TestChaosAggregatedEquivalence runs the identical seed and fault plan
// under both representations. With no GroupTopic the aggregation is a
// pure data-structure swap, so every externally observable counter —
// deliveries, drops, hand-offs, migrations, lease activity, what was
// missed — must match exactly.
func TestChaosAggregatedEquivalence(t *testing.T) {
	run := func(agg bool) [8]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 7, mhs: 6, cells: 5, recovery: true,
			migrate: true, disconnect: true, mhcrash: true, aggregated: agg,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [8]int64{
			w.Stats.RequestsIssued.Value(),
			w.Stats.ResultsDelivered.Value(),
			w.Stats.DuplicateDeliveries.Value(),
			w.Stats.Handoffs.Value(),
			w.Stats.MigCompleted.Value(),
			w.Stats.ProxiesReclaimed.Value(),
			w.Stats.WiredDrops.Value(),
			int64(missing),
		}
	}
	f, a := run(false), run(true)
	if f != a {
		t.Errorf("aggregated representation diverged from faithful: %v vs %v", f, a)
	}
}

// TestChaosDeterminism replays the same seed twice and demands identical
// counters — the fault injector, ARQ timers and recovery passes must all
// draw from the deterministic kernel.
func TestChaosDeterminism(t *testing.T) {
	run := func() [5]int64 {
		w, missing, _, _ := chaos(t, chaosParams{
			seed: 2, mhs: 6, cells: 5, recovery: true,
			horizon: 45 * time.Second, drainFor: 20 * time.Second,
		})
		return [5]int64{
			w.Stats.RequestsIssued.Value(),
			w.Stats.ResultsDelivered.Value(),
			w.Stats.WiredDrops.Value(),
			w.Stats.Handoffs.Value(),
			int64(missing),
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}
