package rdpcore

import (
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// proxyReq is one entry of the proxy's requestList. A request is
// "pending" from insertion until its Ack arrives (§3.1); the stored
// result, once present, survives until then so it can be re-sent on
// every location update.
type proxyReq struct {
	server    ids.Server
	payload   []byte
	result    []byte
	hasResult bool
	forwarded bool // result forwarded at least once (retransmission accounting)
	// batch, when valid, marks this request a member of an atomic batch
	// (E17): its result is withheld until the batch releases.
	batch ids.BatchID
	// inc is the MH incarnation that issued the request (E18). A
	// rebooted host restarts its sequence counter, so the same
	// RequestID can name two different requests across a crash; the
	// incarnation disambiguates them.
	inc ids.Incarnation
}

// proxyBatch is the proxy side of one atomic batch (E17): the member
// set in arrival order, the commit's member count, and the release
// flag. Released batches stay as memos so late duplicate items cannot
// re-execute a completed computation; aborted ones move to the aborted
// memo instead.
type proxyBatch struct {
	id        ids.BatchID
	members   []ids.RequestID
	expected  uint32 // commit's member count; 0 until committed
	committed bool
	released  bool
	// deadlineEpoch invalidates superseded deadline timers (a restored
	// or migrated incarnation re-arms its own; see armBatchDeadline).
	deadlineEpoch uint64
	// inc is the MH incarnation that opened the batch (E18).
	inc ids.Incarnation
}

// Proxy is the paper's proxy-for-requests (§3.1): created at the MH's
// respMss when it issues a request and has none, it provides the fixed
// wired-network location for server replies, tracks pending requests,
// stores results, and forwards them to the MH's current respMss. It
// lives inside its hosting MSSNode and communicates through it.
type Proxy struct {
	id         ids.ProxyID
	mh         ids.MH
	host       *MSSNode
	currentLoc ids.MSS
	reqs       map[ids.RequestID]*proxyReq
	order      []ids.RequestID // insertion order; keeps iteration deterministic
	createdAt  sim.Time

	// Atomic batch state (E17). batchOrder/abortOrder keep map iteration
	// deterministic for persistence and migration transfer. abortedBatches
	// is the durable abort memo: batch id -> member list at abort time, so
	// a late or replayed batch message is answered with the same abort.
	batches        map[ids.BatchID]*proxyBatch
	batchOrder     []ids.BatchID
	abortedBatches map[ids.BatchID][]ids.RequestID
	abortOrder     []ids.BatchID

	// remoteForwards counts results forwarded to a station other than the
	// host since creation or installation here, and lastMigAttempt is the
	// migration-policy cooldown clock (see internal/proxymig). A fresh
	// proxy may offer immediately (the clock starts backdated by the
	// cooldown); a migrated incarnation must sit out MinInterval first —
	// the ping-pong guard (see handleMigState). Both are per-incarnation
	// observations, deliberately volatile across crash recovery.
	remoteForwards int
	lastMigAttempt sim.Time

	// Incarnation lease (E18, Config.LeaseTTL > 0): the MH's respMss
	// heartbeats every proxy it holds a preference for; a heartbeat
	// carrying a newer incarnation scrubs state owned by dead ones, and
	// a lease that expires without renewal reclaims the orphan. leaseInc
	// is the newest vouched-for incarnation, leaseAt the last renewal
	// instant, and leaseEpoch invalidates superseded expiry timers
	// (same pattern as deadlineEpoch above).
	leaseInc   ids.Incarnation
	leaseAt    sim.Time
	leaseEpoch uint64
}

// normInc maps the zero "unknown" incarnation onto the first one: a
// message or record without incarnation information is, by definition,
// from the pre-E18 world where every host was on its first boot.
func normInc(i ids.Incarnation) ids.Incarnation {
	if i == 0 {
		return ids.FirstIncarnation
	}
	return i
}

// incLess orders two incarnation tags after normalization.
func incLess(a, b ids.Incarnation) bool { return normInc(a) < normInc(b) }

// newProxy creates a proxy hosted at host on behalf of mh. Its
// currentLoc starts as the hosting station itself, since the proxy is
// always created at the MH's current respMss (§3.1).
func newProxy(id ids.ProxyID, mh ids.MH, host *MSSNode) *Proxy {
	return &Proxy{
		id:             id,
		mh:             mh,
		host:           host,
		currentLoc:     host.id,
		reqs:           make(map[ids.RequestID]*proxyReq),
		batches:        make(map[ids.BatchID]*proxyBatch),
		abortedBatches: make(map[ids.BatchID][]ids.RequestID),
		createdAt:      host.w.Kernel.Now(),
		lastMigAttempt: host.w.Kernel.Now() - sim.Time(host.w.cfg.Migration.MinInterval),
	}
}

// ID returns the proxy identifier.
func (p *Proxy) ID() ids.ProxyID { return p.id }

// MH returns the mobile host this proxy represents.
func (p *Proxy) MH() ids.MH { return p.mh }

// CurrentLoc returns the respMss the proxy currently forwards to.
func (p *Proxy) CurrentLoc() ids.MSS { return p.currentLoc }

// Pending returns the number of pending (un-acked) requests.
func (p *Proxy) Pending() int { return len(p.reqs) }

// addRequest registers a request and issues it to the server. From the
// server's perspective the proxy is a fixed client (§3.1). A duplicate
// registration (client-side retry) is not re-issued to the server; if
// the result is already stored it is re-forwarded instead, which is what
// lets a stationary MH recover from a lost wireless delivery.
//
// Incarnation arbitration (E18): an amnesiac reboot restarts the MH's
// sequence counter, so the same RequestID can arrive twice meaning two
// different requests. A registration from an older incarnation than the
// stored entry is a ghost retry of a dead host and is dropped; one from
// a newer incarnation is a brand-new request that reuses the identifier,
// so the orphaned entry is replaced and the new request executed.
func (p *Proxy) addRequest(req ids.RequestID, server ids.Server, payload []byte, inc ids.Incarnation) {
	r, ok := p.reqs[req]
	if ok {
		if incLess(inc, r.inc) {
			p.host.w.Stats.StaleIncarnationDrops.Inc()
			return
		}
		if !incLess(r.inc, inc) {
			if r.hasResult {
				p.forwardResult(req, r)
			}
			return
		}
		p.detachFromBatch(req, r)
		r.server, r.payload, r.inc = server, payload, inc
		r.result, r.hasResult, r.forwarded = nil, false, false
	} else {
		r = &proxyReq{server: server, payload: payload, inc: inc}
		p.reqs[req] = r
		p.order = append(p.order, req)
	}
	if result, ok := p.host.cacheLookup(server, payload); ok {
		// Answered from the station's result cache (E17): no server
		// round-trip. The cached copy is forwarded like a fresh result.
		r.result = result
		r.hasResult = true
		p.forwardResult(req, r) // persists inside
		return
	}
	p.host.persistProxy(p)
	p.host.sendWired(server.Node(), msg.ServerRequest{Proxy: p.id, Req: req, Payload: payload})
}

// detachFromBatch removes a replaced request from its old batch's
// member list (the batch belonged to a dead incarnation; its release
// bookkeeping must not wait on an identifier that now names something
// else).
func (p *Proxy) detachFromBatch(req ids.RequestID, r *proxyReq) {
	if !r.batch.Valid() {
		return
	}
	if b := p.batches[r.batch]; b != nil {
		for i, q := range b.members {
			if q == req {
				b.members = append(b.members[:i], b.members[i+1:]...)
				break
			}
		}
	}
	r.batch = ids.BatchID{}
}

// onServerResult stores the server's reply and forwards it to the MH's
// current location (§3.1). Late or duplicate server replies (for
// requests already acked and removed) are dropped.
func (p *Proxy) onServerResult(req ids.RequestID, payload []byte) {
	r, ok := p.reqs[req]
	if !ok {
		p.host.w.Stats.OrphanMessages.Inc()
		return
	}
	if r.hasResult {
		// Duplicate server reply; the stored copy wins.
		return
	}
	r.result = payload
	r.hasResult = true
	p.host.cacheStore(r.server, r.payload, payload)
	if r.batch.Valid() {
		// Batch members are withheld until the whole batch is complete;
		// this result may be the one that releases it.
		p.host.persistProxy(p)
		p.checkBatchRelease(p.batches[r.batch])
		return
	}
	p.forwardResult(req, r)
}

// forwardResult sends one stored result to currentLoc, piggybacking
// del-pref when this is the proxy's only pending request (§3.3: the
// flag rides on "the result of the last pending request").
func (p *Proxy) forwardResult(req ids.RequestID, r *proxyReq) {
	if r.batch.Valid() {
		// Atomicity gate (E17): no member result ever leaves the proxy
		// before its batch releases. This single check covers every
		// forwarding path — fresh results, location updates, crash
		// recovery resends — so an aborted batch delivers nothing and a
		// released one delivers everything.
		if b := p.batches[r.batch]; b == nil || !b.released {
			p.host.w.Stats.BatchResultsWithheld.Inc()
			return
		}
	}
	delPref := len(p.reqs) == 1
	if r.forwarded {
		p.host.w.Stats.Retransmissions.Inc()
	}
	r.forwarded = true
	p.host.persistProxy(p) // result + forwarded flag reach stable store
	p.host.w.Stats.ResultForwards[p.host.id]++
	fwd := msg.ResultForward{Proxy: p.id, MH: p.mh, Req: req, Payload: r.result, DelPref: delPref, Inc: r.inc}
	p.host.sendToStation(p.currentLoc, fwd)
	// Every forward is a migration-policy observation (migration.go); a
	// fired trigger only sends an offer, so the proxy stays intact here.
	p.host.noteForward(p)
}

// onUpdateLoc handles update_currentLoc: record the MH's new respMss and
// re-send every stored, not-yet-acknowledged result to it (§3.1: "causes
// the variable currentLoc to be updated and any non-acknowledged results
// from pending requests to be re-sent to the new location").
func (p *Proxy) onUpdateLoc(newLoc ids.MSS) {
	p.currentLoc = newLoc
	p.host.persistProxy(p)
	for _, req := range p.order {
		r, ok := p.reqs[req]
		if !ok || !r.hasResult {
			continue
		}
		p.forwardResult(req, r)
	}
}

// onAck processes a relayed Ack: the request is completed and removed
// from the requestList (§3.1); an application-level ack may be owed to
// the server. It reports whether the proxy must now be deleted (del-proxy
// piggybacked; §3.3).
//
// Fig. 4 rule: if after removal exactly one pending request remains and
// its result has already been forwarded, the proxy sends the special
// del-pref-only message so the respMss can arm RKpR.
func (p *Proxy) onAck(req ids.RequestID, delProxy bool) (deleted bool) {
	r, ok := p.reqs[req]
	if ok {
		delete(p.reqs, req)
		for i, q := range p.order {
			if q == req {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		if p.host.w.cfg.ServerAcks {
			p.host.sendWired(r.server.Node(), msg.ServerAck{Req: req})
			p.host.w.Stats.ServerAcks.Inc()
		}
		p.host.persistProxy(p)
	}
	if delProxy {
		if len(p.reqs) != 0 {
			// del-proxy may only be confirmed when no request is pending
			// (§3.3); a violation indicates a protocol bug.
			p.host.w.Stats.Violations.Inc()
		}
		return true
	}
	if ok && len(p.reqs) == 1 {
		sole := p.reqs[p.order[0]]
		if sole.hasResult && sole.forwarded {
			p.host.sendToStation(p.currentLoc, msg.DelPrefOnly{Proxy: p.id, MH: p.mh})
		}
	}
	return false
}

// --- Atomic request batches (E17) ------------------------------------
//
// The proxy is the batch coordinator: it collects member results but
// withholds every one of them (forwardResult gate) until the commit has
// arrived and all members have results, then releases the batch and
// forwards the members in order. A batch that misses its deadline is
// aborted: members are dropped, the MH is told to abandon them, and the
// abort memo persists so replayed batch traffic gets the same answer.

// ensureBatch returns the batch record for id, creating it on first
// contact (any member/commit message may arrive first after a retry).
//
// Incarnation arbitration (E18) mirrors addRequest: batch identifiers
// restart with the host's sequence counter, so inc decides whether a
// colliding identifier is a ghost (older — drop, nil returned), the
// same batch (equal or unknown), or a reuse by a rebooted host (newer —
// the orphaned record is torn down and replaced).
func (p *Proxy) ensureBatch(id ids.BatchID, inc ids.Incarnation) *proxyBatch {
	if b, ok := p.batches[id]; ok {
		if inc != 0 {
			if incLess(inc, b.inc) {
				p.host.w.Stats.StaleIncarnationDrops.Inc()
				return nil
			}
			if incLess(b.inc, inc) {
				p.dropBatch(b)
			} else {
				b.inc = inc
				return b
			}
		} else {
			return b
		}
	}
	b := &proxyBatch{id: id, inc: inc}
	p.batches[id] = b
	p.batchOrder = append(p.batchOrder, id)
	p.host.w.Stats.BatchesOpened.Inc()
	p.host.persistProxy(p)
	p.armBatchDeadline(b)
	return b
}

// dropBatch silently discards a batch owned by a dead incarnation: its
// members leave the requestList and the record disappears. Unlike
// abortBatch, no abort memo is kept and nobody is notified — the owner
// no longer exists to care.
func (p *Proxy) dropBatch(b *proxyBatch) {
	for _, req := range b.members {
		delete(p.reqs, req)
		for i, q := range p.order {
			if q == req {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
	}
	delete(p.batches, b.id)
	for i, id := range p.batchOrder {
		if id == b.id {
			p.batchOrder = append(p.batchOrder[:i], p.batchOrder[i+1:]...)
			break
		}
	}
	p.host.persistProxy(p)
}

// onBatchOpen registers a batch. A re-open of an aborted batch (retry
// raced the abort) is answered with the abort again.
func (p *Proxy) onBatchOpen(id ids.BatchID, inc ids.Incarnation) {
	if reqs, ok := p.abortedBatches[id]; ok {
		p.sendAbort(id, reqs)
		return
	}
	p.ensureBatch(id, inc)
}

// onBatchItem registers one batch member and issues it to the server
// (or answers it from the cache).
func (p *Proxy) onBatchItem(m msg.BatchItem) {
	if reqs, ok := p.abortedBatches[m.Batch]; ok {
		p.sendAbort(m.Batch, reqs)
		return
	}
	b := p.ensureBatch(m.Batch, m.Inc)
	if b == nil {
		return
	}
	if b.released {
		// Late duplicate of an already-delivered batch: the members were
		// forwarded (and possibly acked away); never re-execute.
		return
	}
	if _, ok := p.reqs[m.Req]; ok {
		return // duplicate member (retry); first registration wins
	}
	r := &proxyReq{server: m.Server, payload: m.Payload, batch: m.Batch, inc: m.Inc}
	p.reqs[m.Req] = r
	p.order = append(p.order, m.Req)
	b.members = append(b.members, m.Req)
	if result, ok := p.host.cacheLookup(m.Server, m.Payload); ok {
		r.result = result
		r.hasResult = true
		p.host.persistProxy(p)
		p.checkBatchRelease(b)
		return
	}
	p.host.persistProxy(p)
	p.host.sendWired(m.Server.Node(), msg.ServerRequest{Proxy: p.id, Req: m.Req, Payload: m.Payload})
}

// onBatchCommit seals the member set. The commit's count is the
// completeness criterion: release waits until that many members are
// registered and all hold results.
func (p *Proxy) onBatchCommit(m msg.BatchCommit) {
	if reqs, ok := p.abortedBatches[m.Batch]; ok {
		p.sendAbort(m.Batch, reqs)
		return
	}
	// BatchCommit carries no incarnation; the open/items that precede it
	// already settled the batch's ownership.
	b := p.ensureBatch(m.Batch, 0)
	if b.committed {
		p.checkBatchRelease(b) // duplicate commit (retry); just re-check
		return
	}
	b.committed = true
	b.expected = m.Count
	p.host.w.Stats.BatchesCommitted.Inc()
	p.host.persistProxy(p)
	p.checkBatchRelease(b)
}

// checkBatchRelease releases the batch once it is committed, fully
// registered, and every member holds a result; then all members are
// forwarded in registration order.
func (p *Proxy) checkBatchRelease(b *proxyBatch) {
	if b == nil || b.released || !b.committed || uint32(len(b.members)) != b.expected {
		return
	}
	for _, req := range b.members {
		if r, ok := p.reqs[req]; !ok || !r.hasResult {
			return
		}
	}
	b.released = true
	p.host.persistProxy(p)
	for _, req := range b.members {
		p.forwardResult(req, p.reqs[req])
	}
}

// abortBatch drops every member, records the abort memo, and notifies
// the MH. Exactly-once for aborted members means exactly-zero: the
// forwardResult gate guarantees none was ever delivered.
func (p *Proxy) abortBatch(b *proxyBatch) {
	reqs := append([]ids.RequestID(nil), b.members...)
	for _, req := range reqs {
		delete(p.reqs, req)
		for i, q := range p.order {
			if q == req {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
	}
	delete(p.batches, b.id)
	for i, id := range p.batchOrder {
		if id == b.id {
			p.batchOrder = append(p.batchOrder[:i], p.batchOrder[i+1:]...)
			break
		}
	}
	p.abortedBatches[b.id] = reqs
	p.abortOrder = append(p.abortOrder, b.id)
	p.host.persistProxy(p)
	p.host.w.Stats.BatchesAborted.Inc()
	p.sendAbort(b.id, reqs)
}

func (p *Proxy) sendAbort(id ids.BatchID, reqs []ids.RequestID) {
	p.host.sendToStation(p.currentLoc, msg.BatchAbort{Proxy: p.id, MH: p.mh, Batch: id, Reqs: reqs})
}

// armBatchDeadline starts the batch's abort timer. The epoch guard (a
// station-level counter that survives crashes) keeps timers armed by a
// previous incarnation from aborting a restored or migrated batch; each
// incarnation arms its own fresh, full deadline — conservative, but
// deadline precision across crashes is not part of the atomicity
// contract.
func (p *Proxy) armBatchDeadline(b *proxyBatch) {
	if p.host.w.cfg.BatchDeadline <= 0 {
		return
	}
	host := p.host
	host.batchEpochSeq++
	epoch := host.batchEpochSeq
	b.deadlineEpoch = epoch
	proxyID, batchID := p.id, b.id
	host.w.Kernel.Defer(host.w.cfg.BatchDeadline, func() {
		if host.w.down[host.id] {
			return
		}
		cur, ok := host.proxies[proxyID.Seq]
		if !ok || cur.id != proxyID {
			return
		}
		bb, ok := cur.batches[batchID]
		if !ok || bb.released || bb.deadlineEpoch != epoch {
			return
		}
		cur.abortBatch(bb)
	})
}

// --- Incarnation leases (E18) -----------------------------------------
//
// A proxy exists on behalf of one incarnation of one mobile host. When
// the host crashes and loses its memory, nothing in the base protocol
// ever acknowledges the stored results — the proxy would sit pending
// forever. Under Config.LeaseTTL the MH's respMss vouches for its
// registered hosts with periodic heartbeats; a proxy whose lease
// expires unrenewed is reclaimed, and a heartbeat carrying a newer
// incarnation scrubs everything owned by dead ones.

// armLease (re)starts the proxy's lease-expiry timer. The epoch guard
// invalidates timers armed by earlier renewals or by a pre-crash
// incarnation of the hosting station (leaseEpochSeq survives crashes,
// like batchEpochSeq).
func (p *Proxy) armLease() {
	host := p.host
	ttl := host.w.cfg.LeaseTTL
	if ttl <= 0 {
		return
	}
	host.leaseEpochSeq++
	epoch := host.leaseEpochSeq
	p.leaseEpoch = epoch
	p.leaseAt = host.w.Kernel.Now()
	proxyID := p.id
	host.w.Kernel.Defer(ttl, func() {
		if host.w.down[host.id] {
			return
		}
		cur, ok := host.proxies[proxyID.Seq]
		if !ok || cur.id != proxyID || cur.leaseEpoch != epoch {
			return
		}
		// No renewal for a full TTL: the host (and every incarnation up
		// to the last one vouched for) is presumed dead.
		host.reclaimProxy(cur, normInc(cur.leaseInc))
	})
}

// renewLease processes one heartbeat. A newer incarnation than the one
// last vouched for means the host rebooted: state owned by older
// incarnations is scrubbed, and a proxy left completely empty by the
// scrub is reclaimed on the spot (the pref at the respMss is dropped by
// the reclaim memo, so the next request builds a fresh proxy).
func (p *Proxy) renewLease(inc ids.Incarnation) {
	p.host.w.Stats.LeaseHeartbeats.Inc()
	if incLess(p.leaseInc, inc) {
		p.scrubStale(inc)
		p.leaseInc = inc
		p.host.persistProxy(p)
		if len(p.reqs) == 0 && len(p.batches) == 0 {
			// Only the incarnations below inc are dead; the memo must not
			// sweep up requests the live incarnation has in flight.
			p.host.reclaimProxy(p, inc-1)
			return
		}
	}
	p.armLease()
}

// scrubStale drops every request and batch owned by an incarnation
// older than inc. No abort or ack flows anywhere: the owner lost its
// memory of all of it, and the incarnation gates keep any replayed
// traffic from resurrecting it.
func (p *Proxy) scrubStale(inc ids.Incarnation) {
	var deadBatches []*proxyBatch
	for _, id := range p.batchOrder {
		if b := p.batches[id]; b != nil && incLess(b.inc, inc) {
			deadBatches = append(deadBatches, b)
		}
	}
	for _, b := range deadBatches {
		p.dropBatch(b)
	}
	var keep []ids.RequestID
	for _, req := range p.order {
		r := p.reqs[req]
		if r != nil && incLess(r.inc, inc) {
			delete(p.reqs, req)
			p.host.w.Stats.StaleIncarnationDrops.Inc()
			continue
		}
		keep = append(keep, req)
	}
	p.order = keep
}
