package rdpcore

import (
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// proxyReq is one entry of the proxy's requestList. A request is
// "pending" from insertion until its Ack arrives (§3.1); the stored
// result, once present, survives until then so it can be re-sent on
// every location update.
type proxyReq struct {
	server    ids.Server
	payload   []byte
	result    []byte
	hasResult bool
	forwarded bool // result forwarded at least once (retransmission accounting)
}

// Proxy is the paper's proxy-for-requests (§3.1): created at the MH's
// respMss when it issues a request and has none, it provides the fixed
// wired-network location for server replies, tracks pending requests,
// stores results, and forwards them to the MH's current respMss. It
// lives inside its hosting MSSNode and communicates through it.
type Proxy struct {
	id         ids.ProxyID
	mh         ids.MH
	host       *MSSNode
	currentLoc ids.MSS
	reqs       map[ids.RequestID]*proxyReq
	order      []ids.RequestID // insertion order; keeps iteration deterministic
	createdAt  sim.Time

	// remoteForwards counts results forwarded to a station other than the
	// host since creation or installation here, and lastMigAttempt is the
	// migration-policy cooldown clock (see internal/proxymig). A fresh
	// proxy may offer immediately (the clock starts backdated by the
	// cooldown); a migrated incarnation must sit out MinInterval first —
	// the ping-pong guard (see handleMigState). Both are per-incarnation
	// observations, deliberately volatile across crash recovery.
	remoteForwards int
	lastMigAttempt sim.Time
}

// newProxy creates a proxy hosted at host on behalf of mh. Its
// currentLoc starts as the hosting station itself, since the proxy is
// always created at the MH's current respMss (§3.1).
func newProxy(id ids.ProxyID, mh ids.MH, host *MSSNode) *Proxy {
	return &Proxy{
		id:             id,
		mh:             mh,
		host:           host,
		currentLoc:     host.id,
		reqs:           make(map[ids.RequestID]*proxyReq),
		createdAt:      host.w.Kernel.Now(),
		lastMigAttempt: host.w.Kernel.Now() - sim.Time(host.w.cfg.Migration.MinInterval),
	}
}

// ID returns the proxy identifier.
func (p *Proxy) ID() ids.ProxyID { return p.id }

// MH returns the mobile host this proxy represents.
func (p *Proxy) MH() ids.MH { return p.mh }

// CurrentLoc returns the respMss the proxy currently forwards to.
func (p *Proxy) CurrentLoc() ids.MSS { return p.currentLoc }

// Pending returns the number of pending (un-acked) requests.
func (p *Proxy) Pending() int { return len(p.reqs) }

// addRequest registers a request and issues it to the server. From the
// server's perspective the proxy is a fixed client (§3.1). A duplicate
// registration (client-side retry) is not re-issued to the server; if
// the result is already stored it is re-forwarded instead, which is what
// lets a stationary MH recover from a lost wireless delivery.
func (p *Proxy) addRequest(req ids.RequestID, server ids.Server, payload []byte) {
	if r, ok := p.reqs[req]; ok {
		if r.hasResult {
			p.forwardResult(req, r)
		}
		return
	}
	r := &proxyReq{server: server, payload: payload}
	p.reqs[req] = r
	p.order = append(p.order, req)
	p.host.persistProxy(p)
	p.host.sendWired(server.Node(), msg.ServerRequest{Proxy: p.id, Req: req, Payload: payload})
}

// onServerResult stores the server's reply and forwards it to the MH's
// current location (§3.1). Late or duplicate server replies (for
// requests already acked and removed) are dropped.
func (p *Proxy) onServerResult(req ids.RequestID, payload []byte) {
	r, ok := p.reqs[req]
	if !ok {
		p.host.w.Stats.OrphanMessages.Inc()
		return
	}
	if r.hasResult {
		// Duplicate server reply; the stored copy wins.
		return
	}
	r.result = payload
	r.hasResult = true
	p.forwardResult(req, r)
}

// forwardResult sends one stored result to currentLoc, piggybacking
// del-pref when this is the proxy's only pending request (§3.3: the
// flag rides on "the result of the last pending request").
func (p *Proxy) forwardResult(req ids.RequestID, r *proxyReq) {
	delPref := len(p.reqs) == 1
	if r.forwarded {
		p.host.w.Stats.Retransmissions.Inc()
	}
	r.forwarded = true
	p.host.persistProxy(p) // result + forwarded flag reach stable store
	p.host.w.Stats.ResultForwards[p.host.id]++
	fwd := msg.ResultForward{Proxy: p.id, MH: p.mh, Req: req, Payload: r.result, DelPref: delPref}
	p.host.sendToStation(p.currentLoc, fwd)
	// Every forward is a migration-policy observation (migration.go); a
	// fired trigger only sends an offer, so the proxy stays intact here.
	p.host.noteForward(p)
}

// onUpdateLoc handles update_currentLoc: record the MH's new respMss and
// re-send every stored, not-yet-acknowledged result to it (§3.1: "causes
// the variable currentLoc to be updated and any non-acknowledged results
// from pending requests to be re-sent to the new location").
func (p *Proxy) onUpdateLoc(newLoc ids.MSS) {
	p.currentLoc = newLoc
	p.host.persistProxy(p)
	for _, req := range p.order {
		r, ok := p.reqs[req]
		if !ok || !r.hasResult {
			continue
		}
		p.forwardResult(req, r)
	}
}

// onAck processes a relayed Ack: the request is completed and removed
// from the requestList (§3.1); an application-level ack may be owed to
// the server. It reports whether the proxy must now be deleted (del-proxy
// piggybacked; §3.3).
//
// Fig. 4 rule: if after removal exactly one pending request remains and
// its result has already been forwarded, the proxy sends the special
// del-pref-only message so the respMss can arm RKpR.
func (p *Proxy) onAck(req ids.RequestID, delProxy bool) (deleted bool) {
	r, ok := p.reqs[req]
	if ok {
		delete(p.reqs, req)
		for i, q := range p.order {
			if q == req {
				p.order = append(p.order[:i], p.order[i+1:]...)
				break
			}
		}
		if p.host.w.cfg.ServerAcks {
			p.host.sendWired(r.server.Node(), msg.ServerAck{Req: req})
			p.host.w.Stats.ServerAcks.Inc()
		}
		p.host.persistProxy(p)
	}
	if delProxy {
		if len(p.reqs) != 0 {
			// del-proxy may only be confirmed when no request is pending
			// (§3.3); a violation indicates a protocol bug.
			p.host.w.Stats.Violations.Inc()
		}
		return true
	}
	if ok && len(p.reqs) == 1 {
		sole := p.reqs[p.order[0]]
		if sole.hasResult && sole.forwarded {
			p.host.sendToStation(p.currentLoc, msg.DelPrefOnly{Proxy: p.id, MH: p.mh})
		}
	}
	return false
}
