package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// proxyFixture builds a world with one pending request so its proxy can
// be poked directly.
func proxyFixture(t *testing.T) (*World, *Proxy, ids.RequestID) {
	t.Helper()
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(10 * time.Second) })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(100 * time.Millisecond)
	pref, ok := w.MSSs[1].PrefOf(1)
	if !ok || !pref.HasProxy() {
		t.Fatal("fixture: no proxy created")
	}
	p := w.MSSs[1].ProxyByID(pref.Proxy)
	if p == nil {
		t.Fatal("fixture: proxy not hosted")
	}
	return w, p, req
}

func TestProxyAccessors(t *testing.T) {
	w, p, _ := proxyFixture(t)
	if p.MH() != 1 {
		t.Errorf("MH = %v, want mh1", p.MH())
	}
	if p.CurrentLoc() != 1 {
		t.Errorf("CurrentLoc = %v, want mss1", p.CurrentLoc())
	}
	if p.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", p.Pending())
	}
	_ = w
}

func TestProxyDuplicateServerResultIgnored(t *testing.T) {
	w, p, req := proxyFixture(t)
	p.onServerResult(req, []byte("first"))
	forwards := w.Stats.ResultForwards[1]
	p.onServerResult(req, []byte("second"))
	if got := w.Stats.ResultForwards[1]; got != forwards {
		t.Errorf("duplicate server result triggered a forward (%d -> %d)", forwards, got)
	}
	// The stored copy is the first one.
	w.RunUntil(time.Second)
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}
}

func TestProxyLateServerResultIsOrphan(t *testing.T) {
	w, p, req := proxyFixture(t)
	p.onServerResult(req, []byte("r"))
	w.RunUntil(time.Second) // delivered + acked: request removed
	if p.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", p.Pending())
	}
	before := w.Stats.OrphanMessages.Value()
	p.onServerResult(req, []byte("late"))
	if got := w.Stats.OrphanMessages.Value(); got != before+1 {
		t.Errorf("late server result not counted as orphan")
	}
}

func TestProxyAckForUnknownRequestHarmless(t *testing.T) {
	w, p, _ := proxyFixture(t)
	if deleted := p.onAck(ids.RequestID{Origin: 1, Seq: 99}, false); deleted {
		t.Error("unknown ack deleted the proxy")
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("Violations = %d", got)
	}
	if p.Pending() != 1 {
		t.Errorf("Pending = %d, want 1 (real request untouched)", p.Pending())
	}
}

func TestProxyRetryReforwardsStoredResult(t *testing.T) {
	// addRequest with a known id re-forwards the stored result instead of
	// re-asking the server — the path that saves a stationary client
	// whose wireless delivery was lost.
	w, p, req := proxyFixture(t)
	p.onServerResult(req, []byte("r"))
	forwards := w.Stats.ResultForwards[1]
	served := w.Servers[1].Served.Value()
	p.addRequest(req, 1, []byte("x"), 0) // client retry arrives
	if got := w.Stats.ResultForwards[1]; got != forwards+1 {
		t.Errorf("retry did not re-forward the stored result (%d -> %d)", forwards, got)
	}
	w.RunUntil(2 * time.Second)
	if got := w.Servers[1].Served.Value(); got != served {
		t.Errorf("retry re-issued the request to the server")
	}
}

func TestProxyRetryBeforeResultIsNoop(t *testing.T) {
	w, p, req := proxyFixture(t)
	forwards := w.Stats.ResultForwards[1]
	p.addRequest(req, 1, []byte("x"), 0)
	if got := w.Stats.ResultForwards[1]; got != forwards {
		t.Error("retry before the result forwarded something")
	}
	if p.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", p.Pending())
	}
	_ = req
}

func TestProxyDelPrefOnlyRequiresForwardedResult(t *testing.T) {
	// The Fig. 4 special message fires only when the sole remaining
	// pending request's result has already been forwarded.
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(10 * time.Second) })
	mh := w.AddMH(1, 1)
	var r1, r2 ids.RequestID
	w.Schedule(0, func() {
		r1 = mh.IssueRequest(1, []byte("a"))
		r2 = mh.IssueRequest(1, []byte("b"))
	})
	w.RunUntil(100 * time.Millisecond)
	pref, _ := w.MSSs[1].PrefOf(1)
	p := w.MSSs[1].ProxyByID(pref.Proxy)
	if p == nil || p.Pending() != 2 {
		t.Fatal("fixture: want 2 pending requests")
	}
	// Ack r1 while r2 has no result yet: no del-pref-only may be sent,
	// so RKpR stays clear.
	p.onAck(r1, false)
	w.RunUntil(200 * time.Millisecond)
	if pref2, _ := w.MSSs[1].PrefOf(1); pref2.RKpR {
		t.Error("RKpR armed although the remaining result was never forwarded")
	}
	_ = r2
}
