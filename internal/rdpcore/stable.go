package rdpcore

import (
	"encoding/binary"
	"sort"

	"repro/internal/aggstate"
	"repro/internal/dcache"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// This file implements MSS crash/recovery. The paper assumes support
// stations never fail; E10 removes that assumption. Stations journal
// their protocol state — responsibility, prefs with life-cycle flags,
// forwarding pointers, outstanding-request routing knowledge, and the
// full requestList of every hosted proxy — to an in-sim stable store on
// every mutation (write-through snapshots per entity). A crash wipes
// the station's memory; a restart replays the journal and, after a
// grace period, re-issues whatever the journal shows incomplete.

// mhRecord is the journaled per-MH state of one station.
type mhRecord struct {
	responsible bool
	pref        msg.Pref
	hasPref     bool
	ignoreAcks  bool
	forwardTo   ids.MSS
	hasForward  bool
	// inc is the newest incarnation of the MH this station has
	// registered (E18); outstanding tags each admitted request with the
	// incarnation that issued it, so a restart can still scrub entries
	// orphaned by a pre-crash reboot of the host.
	inc         ids.Incarnation
	outstanding map[ids.RequestID]ids.Incarnation
}

// proxyReqRecord is one journaled requestList entry.
type proxyReqRecord struct {
	req       ids.RequestID
	server    ids.Server
	payload   []byte
	result    []byte
	hasResult bool
	forwarded bool
	batch     ids.BatchID
	inc       ids.Incarnation
}

// proxyBatchRecord is the journaled image of one atomic batch (E17).
type proxyBatchRecord struct {
	id        ids.BatchID
	members   []ids.RequestID
	expected  uint32
	committed bool
	released  bool
	inc       ids.Incarnation
}

// proxyAbortRecord journals a batch-abort memo: the decision to refuse
// a batch must survive the crash, or replayed batch traffic could be
// accepted (and delivered) after the MH was told to abandon it.
type proxyAbortRecord struct {
	id   ids.BatchID
	reqs []ids.RequestID
}

// proxyRecord is the journaled image of one hosted proxy.
type proxyRecord struct {
	id         ids.ProxyID
	mh         ids.MH
	currentLoc ids.MSS
	reqs       []proxyReqRecord   // insertion order
	batches    []proxyBatchRecord // batchOrder
	aborted    []proxyAbortRecord // abortOrder
	// leaseInc is the newest MH incarnation a lease heartbeat has
	// vouched for (E18); the lease clock itself restarts on recovery.
	leaseInc ids.Incarnation
}

// groupWaiterRecord journals one member subscription of a shared entry
// (E16).
type groupWaiterRecord struct {
	mh        ids.MH
	seq       uint32
	inc       ids.Incarnation
	acked     bool
	forwarded bool
}

// groupEntryRecord journals one shared entry of a group proxy.
type groupEntryRecord struct {
	server    ids.Server
	payload   []byte
	leaderReq ids.RequestID
	result    []byte
	hasResult bool
	waiters   []groupWaiterRecord
}

// groupRecord is the journaled image of one shared group proxy (E16):
// identity, the delta-encoded member set, the location exceptions, and
// every in-flight entry. Group proxies journal whole images like
// per-request proxies do; the snapshot is O(members) bytes, but group
// membership mutates far less often than it is read.
type groupRecord struct {
	id        ids.ProxyID
	server    ids.Server
	topic     uint32
	members   []byte // aggstate delta encoding
	memberLoc map[ids.MH]ids.MSS
	entries   []groupEntryRecord // entryOrder
}

// tombstoneRecord is the journaled image of a migration tombstone: the
// old-to-new identity map plus the servers still owing a pref
// confirmation. A crash mid-migration must not lose the redirect — the
// transferred proxy lives on at the new host, and stale prefs keep
// addressing the old identity.
type tombstoneRecord struct {
	oldProxy       ids.ProxyID
	newProxy       ids.ProxyID
	mh             ids.MH
	pendingServers map[ids.Server]bool
}

// stationRecord is one station's journal.
type stationRecord struct {
	mhs        map[ids.MH]*mhRecord
	proxies    map[uint32]*proxyRecord
	groups     map[uint32]*groupRecord
	tombstones map[uint32]*tombstoneRecord
	nextSeq    uint32
	// reclaims is a checksummed record log (journal.go) of proxy
	// reclamation memos (E18): each record is a u32 destination MSS
	// followed by the wire encoding of the ReclaimMemo. The memo must
	// survive a crash of the reclaiming host, or the preference that
	// pointed at the reclaimed proxy could dangle forever.
	reclaims []byte
}

// stableStore is the world's stable storage: per-station journals that
// survive crashes by construction (the store lives in the World, not in
// the stations).
type stableStore struct {
	stations map[ids.MSS]*stationRecord
	// offline journals each disconnected MH's offline request queue
	// (E17) as a checksummed record log of wire-encoded messages; see
	// World.persistOffline.
	offline map[ids.MH][]byte
	writes  int64
}

func newStableStore() *stableStore {
	return &stableStore{
		stations: make(map[ids.MSS]*stationRecord),
		offline:  make(map[ids.MH][]byte),
	}
}

func (s *stableStore) station(id ids.MSS) *stationRecord {
	rec := s.stations[id]
	if rec == nil {
		rec = &stationRecord{
			mhs:        make(map[ids.MH]*mhRecord),
			proxies:    make(map[uint32]*proxyRecord),
			groups:     make(map[uint32]*groupRecord),
			tombstones: make(map[uint32]*tombstoneRecord),
		}
		s.stations[id] = rec
	}
	return rec
}

// persistMH journals this station's complete per-MH state for mh. Call
// it after any mutation of localMhs/prefs/ignoreAcks/forwardTo/
// outstanding for that MH; a snapshot with nothing left to remember
// erases the record.
func (n *MSSNode) persistMH(mh ids.MH) {
	if !n.w.cfg.Checkpoint {
		return
	}
	rec := n.w.store.station(n.id)
	r := &mhRecord{
		responsible: n.localMhs.contains(mh),
		ignoreAcks:  n.ignoreAcks[mh],
	}
	if p, ok := n.prefs.get(mh); ok {
		r.pref, r.hasPref = p, true
	}
	if f, ok := n.forwardTo[mh]; ok {
		r.forwardTo, r.hasForward = f, true
	}
	r.inc = n.incs[mh]
	if set := n.outstanding[mh]; len(set) > 0 {
		r.outstanding = make(map[ids.RequestID]ids.Incarnation, len(set))
		for req, inc := range set {
			r.outstanding[req] = inc
		}
	}
	if !r.responsible && !r.hasPref && !r.ignoreAcks && !r.hasForward {
		delete(rec.mhs, mh)
	} else {
		rec.mhs[mh] = r
	}
	n.w.store.writes++
}

// persistProxy journals the full image of a hosted proxy. Call it after
// any requestList or currentLoc mutation.
func (n *MSSNode) persistProxy(p *Proxy) {
	if !n.w.cfg.Checkpoint {
		return
	}
	rec := n.w.store.station(n.id)
	pr := &proxyRecord{id: p.id, mh: p.mh, currentLoc: p.currentLoc, leaseInc: p.leaseInc}
	for _, req := range p.order {
		r := p.reqs[req]
		pr.reqs = append(pr.reqs, proxyReqRecord{
			req: req, server: r.server, payload: r.payload,
			result: r.result, hasResult: r.hasResult, forwarded: r.forwarded,
			batch: r.batch, inc: r.inc,
		})
	}
	for _, id := range p.batchOrder {
		b := p.batches[id]
		pr.batches = append(pr.batches, proxyBatchRecord{
			id: b.id, members: append([]ids.RequestID(nil), b.members...),
			expected: b.expected, committed: b.committed, released: b.released,
			inc: b.inc,
		})
	}
	for _, id := range p.abortOrder {
		pr.aborted = append(pr.aborted, proxyAbortRecord{
			id: id, reqs: append([]ids.RequestID(nil), p.abortedBatches[id]...),
		})
	}
	rec.proxies[p.id.Seq] = pr
	n.w.store.writes++
}

// persistGroup journals the full image of a hosted group proxy (E16).
// Call it after any membership, location or entry mutation. Groups are
// never deleted, so there is no unpersist counterpart.
func (n *MSSNode) persistGroup(g *GroupProxy) {
	if !n.w.cfg.Checkpoint {
		return
	}
	rec := n.w.store.station(n.id)
	gr := &groupRecord{
		id:      g.id,
		server:  g.server,
		topic:   g.topic,
		members: g.members.AppendDelta(nil),
	}
	if len(g.memberLoc) > 0 {
		gr.memberLoc = make(map[ids.MH]ids.MSS, len(g.memberLoc))
		for mh, loc := range g.memberLoc {
			gr.memberLoc[mh] = loc
		}
	}
	for _, key := range g.entryOrder {
		e := g.entries[key]
		er := groupEntryRecord{
			server: e.server, payload: e.payload, leaderReq: e.leaderReq,
			result: e.result, hasResult: e.hasResult,
		}
		for _, w := range e.waiters {
			er.waiters = append(er.waiters, groupWaiterRecord{
				mh: w.mh, seq: w.seq, inc: w.inc, acked: w.acked, forwarded: w.forwarded,
			})
		}
		gr.entries = append(gr.entries, er)
	}
	rec.groups[g.id.Seq] = gr
	n.w.store.writes++
}

// unpersistProxy erases a deleted proxy's journal entry.
func (n *MSSNode) unpersistProxy(seq uint32) {
	if !n.w.cfg.Checkpoint {
		return
	}
	delete(n.w.store.station(n.id).proxies, seq)
	n.w.store.writes++
}

// persistTombstone journals a migration tombstone's current state. Call
// it when the tombstone is created and whenever its confirmation set
// shrinks.
func (n *MSSNode) persistTombstone(t *tombstone) {
	if !n.w.cfg.Checkpoint {
		return
	}
	tr := &tombstoneRecord{
		oldProxy:       t.oldProxy,
		newProxy:       t.newProxy,
		mh:             t.mh,
		pendingServers: make(map[ids.Server]bool, len(t.pendingServers)),
	}
	for s := range t.pendingServers {
		tr.pendingServers[s] = true
	}
	n.w.store.station(n.id).tombstones[t.oldProxy.Seq] = tr
	n.w.store.writes++
}

// unpersistTombstone erases a garbage-collected tombstone's journal
// entry.
func (n *MSSNode) unpersistTombstone(seq uint32) {
	if !n.w.cfg.Checkpoint {
		return
	}
	delete(n.w.store.station(n.id).tombstones, seq)
	n.w.store.writes++
}

// persistSeq journals the proxy sequence counter so a restarted station
// never reuses a proxy identifier.
func (n *MSSNode) persistSeq() {
	if !n.w.cfg.Checkpoint {
		return
	}
	n.w.store.station(n.id).nextSeq = n.nextProxySeq
	n.w.store.writes++
}

// persistReclaim appends one reclamation memo to the station's durable
// reclaim log (E18). Unlike the snapshot journals above, the log is
// append-only and checksummed per record, so a torn write surfaces as a
// truncation on replay instead of silent corruption.
func (n *MSSNode) persistReclaim(dest ids.MSS, memo msg.ReclaimMemo) {
	if !n.w.cfg.Checkpoint {
		return
	}
	enc, err := msg.Encode(memo)
	if err != nil {
		return
	}
	body := make([]byte, 4, 4+len(enc))
	binary.BigEndian.PutUint32(body, uint32(dest))
	body = append(body, enc...)
	rec := n.w.store.station(n.id)
	rec.reclaims = journalAppend(rec.reclaims, body)
	n.w.store.writes++
}

// crash wipes the station's memory. Volatile state — message queues,
// pending hand-offs and parked deregs, held results, deferred-update
// bookkeeping — is gone in every configuration; the protocol state is
// gone too, but recoverable from the journal when Checkpoint is on.
// nextProxySeq deliberately survives (a monotonic boot counter): reusing
// a proxy identifier after an amnesiac restart would alias stale prefs
// elsewhere onto a fresh proxy.
func (n *MSSNode) crash() {
	n.inbox = classInbox{}
	n.arriving = make(map[ids.MH]*arrival)
	n.pendingDeregs = make(map[ids.MH][]inboxItem)
	n.held = make(map[ids.MH][]msg.ResultDeliver)
	n.heldAcksPending = make(map[ids.MH]map[ids.RequestID]bool)
	n.deferredUpdate = make(map[ids.MH]bool)
	n.lastAttempt = make(map[ids.MH]sim.Time)
	n.reqAttempt = make(map[ids.RequestID]sim.Time)
	// The result cache is volatile by design (dcache doc): rebuilding it
	// empty costs recomputation, never correctness. batchEpochSeq is NOT
	// reset — it invalidates batch-deadline timers armed before the crash.
	n.cache = dcache.New(n.w.cfg.ResultCache)
	n.localMhs = newHostSet(n.w.cfg.AggregatedState)
	n.prefs = newPrefTable(n.w.cfg.AggregatedState)
	// Group proxies are recoverable from the journal; the signaling
	// coalescing buffers are volatile (a stale flush timer finds empty
	// buffers and does nothing).
	n.groupProxies = make(map[uint32]*GroupProxy)
	n.topicProxies = make(map[groupKey]uint32)
	n.aggLocBuf = make(map[ids.ProxyID]*aggstate.Set)
	n.aggAckBuf = make(map[ids.ProxyID]*groupAckBuf)
	n.aggLocArmed, n.aggAckArmed = false, false
	n.incs = make(map[ids.MH]ids.Incarnation)
	n.outstanding = make(map[ids.MH]map[ids.RequestID]ids.Incarnation)
	n.proxies = make(map[uint32]*Proxy)
	n.ignoreAcks = make(map[ids.MH]bool)
	n.forwardTo = make(map[ids.MH]ids.MSS)
	n.reclaims = nil
	// Migration state: tombstones are recoverable from the journal;
	// inbound reservations and outbound-offer clocks are volatile (the
	// reserved sequence numbers were persisted at allocation, so a
	// post-restart mig_state still installs under a unique identity, and
	// a lost offer merely leaves the proxy fixed until the next trigger).
	n.tombstones = make(map[uint32]*tombstone)
	n.migInbound = make(map[uint32]*migReservation)
	n.migOutbound = make(map[uint32]sim.Time)
}

// restoreFromStore replays the journal into memory after a restart.
func (n *MSSNode) restoreFromStore() {
	rec := n.w.store.station(n.id)
	for mh, r := range rec.mhs {
		if r.responsible {
			n.localMhs.add(mh)
		}
		if r.hasPref {
			n.prefs.set(mh, r.pref)
		}
		if r.ignoreAcks {
			n.ignoreAcks[mh] = true
		}
		if r.hasForward {
			n.forwardTo[mh] = r.forwardTo
		}
		if r.inc > ids.FirstIncarnation {
			n.incs[mh] = r.inc
		}
		if len(r.outstanding) > 0 {
			set := make(map[ids.RequestID]ids.Incarnation, len(r.outstanding))
			for req, inc := range r.outstanding {
				set[req] = inc
			}
			n.outstanding[mh] = set
		}
	}
	if rec.nextSeq > n.nextProxySeq {
		n.nextProxySeq = rec.nextSeq
	}
	// Journal maps are iterated in sorted key order: restoring arms
	// timers (tombstone GC below), and arming them in Go's randomized
	// map order would shuffle kernel event sequence numbers, making
	// post-crash runs diverge under the same seed.
	proxySeqs := make([]int, 0, len(rec.proxies))
	for seq := range rec.proxies {
		proxySeqs = append(proxySeqs, int(seq))
	}
	sort.Ints(proxySeqs)
	for _, s := range proxySeqs {
		seq, pr := uint32(s), rec.proxies[uint32(s)]
		// createdAt restarts at the restart instant; the station's
		// ProxySeconds accounting loses the pre-crash span.
		p := newProxy(pr.id, pr.mh, n)
		p.currentLoc = pr.currentLoc
		p.leaseInc = pr.leaseInc
		for _, rr := range pr.reqs {
			p.reqs[rr.req] = &proxyReq{
				server: rr.server, payload: rr.payload,
				result: rr.result, hasResult: rr.hasResult, forwarded: rr.forwarded,
				batch: rr.batch, inc: rr.inc,
			}
			p.order = append(p.order, rr.req)
		}
		for _, br := range pr.batches {
			b := &proxyBatch{
				id: br.id, members: append([]ids.RequestID(nil), br.members...),
				expected: br.expected, committed: br.committed, released: br.released,
				inc: br.inc,
			}
			p.batches[b.id] = b
			p.batchOrder = append(p.batchOrder, b.id)
			if !b.released {
				// A fresh, full deadline per incarnation: pre-crash timers
				// are invalidated by the epoch guard, and deadline
				// precision across crashes is outside the atomicity
				// contract.
				p.armBatchDeadline(b)
			}
		}
		for _, ar := range pr.aborted {
			p.abortedBatches[ar.id] = append([]ids.RequestID(nil), ar.reqs...)
			p.abortOrder = append(p.abortOrder, ar.id)
		}
		n.proxies[seq] = p
		// The lease clock restarts with a fresh, full TTL: pre-crash
		// expiry timers are invalidated by the epoch guard, and the next
		// heartbeat renews the lease anyway.
		p.armLease()
	}
	groupSeqs := make([]int, 0, len(rec.groups))
	for seq := range rec.groups {
		groupSeqs = append(groupSeqs, int(seq))
	}
	sort.Ints(groupSeqs)
	for _, s := range groupSeqs {
		seq, gr := uint32(s), rec.groups[uint32(s)]
		g := &GroupProxy{
			id:        gr.id,
			host:      n,
			server:    gr.server,
			topic:     gr.topic,
			memberLoc: make(map[ids.MH]ids.MSS, len(gr.memberLoc)),
			entries:   make(map[dcache.Key]*sharedEntry),
			createdAt: n.w.Kernel.Now(),
		}
		if set, err := aggstate.DecodeDelta(gr.members); err == nil {
			g.members = *set
		}
		for mh, loc := range gr.memberLoc {
			g.memberLoc[mh] = loc
		}
		for _, er := range gr.entries {
			e := &sharedEntry{
				server: er.server, payload: er.payload, leaderReq: er.leaderReq,
				result: er.result, hasResult: er.hasResult,
			}
			for _, wr := range er.waiters {
				e.entrants.Add(uint32(wr.mh))
				if !wr.acked {
					e.unacked++
				}
				e.waiters = append(e.waiters, sharedWaiter{
					mh: wr.mh, seq: wr.seq, inc: wr.inc, acked: wr.acked, forwarded: wr.forwarded,
				})
			}
			if e.hasResult {
				e.ackIdx = make(map[waiterKey]int, len(e.waiters))
				for i := range e.waiters {
					e.ackIdx[waiterKey{mh: e.waiters[i].mh, seq: e.waiters[i].seq}] = i
				}
			}
			key := dcache.Key{Server: er.server, Digest: dcache.Digest(er.payload)}
			g.entries[key] = e
			g.entryOrder = append(g.entryOrder, key)
		}
		n.groupProxies[seq] = g
		n.topicProxies[groupKey{server: gr.server, topic: gr.topic}] = seq
	}
	tombSeqs := make([]int, 0, len(rec.tombstones))
	for seq := range rec.tombstones {
		tombSeqs = append(tombSeqs, int(seq))
	}
	sort.Ints(tombSeqs)
	for _, s := range tombSeqs {
		seq, tr := uint32(s), rec.tombstones[uint32(s)]
		t := &tombstone{
			oldProxy:       tr.oldProxy,
			newProxy:       tr.newProxy,
			mh:             tr.mh,
			pendingServers: make(map[ids.Server]bool, len(tr.pendingServers)),
		}
		for s := range tr.pendingServers {
			t.pendingServers[s] = true
		}
		n.tombstones[seq] = t
		// A fully-confirmed tombstone restarts its quiet period; one still
		// awaiting confirms re-arms when the ARQ redelivers them.
		if len(t.pendingServers) == 0 {
			n.armTombstoneGC(t)
		}
	}
	// Replay the durable reclaim log (E18). The scan verifies each
	// record's checksum and truncates at the first corrupt one; whatever
	// survives is re-sent by recoveryResend below.
	if raw := rec.reclaims; len(raw) > 0 {
		records, truncated := journalScan(raw)
		if truncated {
			n.w.Stats.JournalTruncations.Inc()
			// Rewrite the log as its verified prefix so the corrupt tail
			// is not re-scanned (and re-counted) on the next restart.
			clean := []byte(nil)
			for _, body := range records {
				clean = journalAppend(clean, body)
			}
			rec.reclaims = clean
		}
		for _, body := range records {
			if len(body) < 4 {
				continue
			}
			dest := ids.MSS(binary.BigEndian.Uint32(body[:4]))
			m, err := msg.Decode(body[4:])
			if err != nil {
				continue
			}
			if memo, ok := m.(msg.ReclaimMemo); ok {
				n.reclaims = append(n.reclaims, reclaimRecord{dest: dest, memo: memo})
			}
		}
	}
	// The heartbeat loop died with the crash; re-arm it.
	n.armLeaseBeat()
}

// recoveryResend runs after RecoveryGrace: for every restored proxy it
// re-issues the server request of each result-less entry (covers a
// reply lost with the crash when the backbone has no ARQ) and
// re-forwards each stored, still-unacked result; for every responsible
// MH whose proxy lives elsewhere it re-announces this station as the
// MH's location, prompting that proxy to re-send anything stranded.
// Iteration is sorted so recovery traffic is deterministic.
func (n *MSSNode) recoveryResend() {
	seqs := make([]int, 0, len(n.proxies))
	for seq := range n.proxies {
		seqs = append(seqs, int(seq))
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		p := n.proxies[uint32(seq)]
		for _, req := range p.order {
			r := p.reqs[req]
			n.w.Stats.RecoveryResends.Inc()
			if r.hasResult {
				p.forwardResult(req, r)
			} else {
				n.sendWired(r.server.Node(), msg.ServerRequest{Proxy: p.id, Req: req, Payload: r.payload})
			}
		}
		// A crash can land between the journal write that completed a
		// batch's last member and the one that recorded its release;
		// re-judge every restored batch. (The forwardResult calls above
		// withheld any unreleased members.)
		for _, id := range p.batchOrder {
			p.checkBatchRelease(p.batches[id])
		}
	}
	// Restored group proxies (E16): re-issue the server request of every
	// result-less entry and re-fan-out every stored, still-unacked
	// result — the group analogue of the per-proxy loop above.
	gseqs := make([]int, 0, len(n.groupProxies))
	for seq := range n.groupProxies {
		gseqs = append(gseqs, int(seq))
	}
	sort.Ints(gseqs)
	for _, s := range gseqs {
		g := n.groupProxies[uint32(s)]
		for _, key := range g.entryOrder {
			e := g.entries[key]
			if !e.hasResult {
				n.w.Stats.RecoveryResends.Inc()
				n.sendWired(e.server.Node(),
					msg.ServerRequest{Proxy: g.id, Req: e.leaderReq, Payload: e.payload})
				continue
			}
			for i := range e.waiters {
				if !e.waiters[i].acked {
					n.w.Stats.RecoveryResends.Inc()
					g.forward(e, i)
				}
			}
		}
	}
	n.localMhs.forEach(func(mh ids.MH) {
		pref, ok := n.prefs.get(mh)
		if ok && pref.HasProxy() && pref.Proxy.Host != n.id {
			n.w.Stats.RecoveryResends.Inc()
			n.announceLoc(pref.Proxy, mh)
		}
	})
	// Re-send every journaled reclamation memo (E18): the crash may have
	// landed between the journal write and the wire send, and the memo
	// is idempotent at the receiver.
	for _, rr := range n.reclaims {
		n.w.Stats.RecoveryResends.Inc()
		n.sendToStation(rr.dest, rr.memo)
	}
}
