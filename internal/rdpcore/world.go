package rdpcore

import (
	"fmt"
	"time"

	"repro/internal/dcache"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/wtp"
)

// Config parameterizes a World. DefaultConfig supplies values matching
// the paper's operating assumptions (reliable causal wired network, ack
// priority on, no wireless loss).
type Config struct {
	// Seed drives the deterministic kernel.
	Seed int64
	// NumMSS and NumServers size the static network. Stations are
	// ids.MSS(1..NumMSS); servers are ids.Server(1..NumServers).
	NumMSS     int
	NumServers int
	// Stations, when non-nil, overrides the default station set — the
	// region-aware construction used by the parallel engine
	// (internal/psim), where each region's world simulates only its own
	// subset of the global stations. NumMSS is ignored when set.
	Stations []ids.MSS
	// ServerIDs likewise overrides ids.Server(1..NumServers).
	ServerIDs []ids.Server

	// WiredLatency and WirelessLatency model the substrates; defaults
	// are 5ms wired, 20ms wireless (t_wired and t_wireless of §5).
	WiredLatency    netsim.LatencyModel
	WirelessLatency netsim.LatencyModel
	// WiredPairLatency, when set, overrides WiredLatency per host pair —
	// e.g. netsim.RingLatency for a metropolitan ring topology.
	WiredPairLatency func(from, to ids.NodeID) netsim.LatencyModel
	// WirelessLoss is the random frame loss probability.
	WirelessLoss float64
	// Causal enables causal-order wired delivery (assumption 1). Off for
	// the E2 ablation.
	Causal bool
	// AckPriority enables §3.1's ack-before-handoff processing priority.
	// It only has observable effect with ProcDelay > 0.
	AckPriority bool
	// ProcDelay is the per-message processing delay at each MSS; zero
	// means messages are processed the instant they arrive.
	ProcDelay time.Duration
	// HoldForInactive enables the §5 footnote 3 optimization: an MSS that
	// can detect the destination MH is inactive keeps the result and
	// delivers it on reactivation, saving a proxy retransmission.
	HoldForInactive bool
	// ServerAcks makes proxies send application-level acks to servers
	// once the MH acknowledged a result (§3.1 "depending on the
	// particular application-level client-server protocol").
	ServerAcks bool
	// RequestTimeout, when positive, enables client-side request retry
	// (QRPC-style shim); zero disables it.
	RequestTimeout time.Duration
	// GreetRefresh, when positive, makes every active MH periodically
	// re-greet its respMss (a registration-refresh beacon, standard in
	// real mobility systems and abstracted over by §2). Each refresh is
	// treated as a reactivation, prompting an update_currentLoc and
	// thereby a retransmission of any stranded results; it also
	// reconciles a registration that drifted to another station after
	// greets reordered across radio links. Zero disables it (the
	// paper-pure protocol, where recovery waits for the next migration
	// or reactivation).
	GreetRefresh time.Duration
	// ServerProc models server-side request processing time (the paper
	// targets services with "long request processing times").
	ServerProc netsim.LatencyModel
	// ServerHandler computes reply payloads; nil means server.Echo.
	ServerHandler server.Handler
	// WiredFaults, when set, injects per-attempt faults (drop, duplicate,
	// delay, partition) on every wired transmission — typically a
	// faults.Injector. Nil keeps the paper's reliable backbone.
	WiredFaults netsim.FaultHook
	// WiredARQ enables the wired link-layer retransmission protocol, which
	// restores reliable causal delivery under WiredFaults (the E10
	// recovery configuration). Off, an injected drop is permanent.
	WiredARQ netsim.ARQConfig
	// Checkpoint makes every station journal its protocol state (prefs,
	// responsibility, forwarding pointers, proxies) to an in-sim stable
	// store on every mutation, and replay the journal on restart after a
	// crash. Off, a crashed station restarts amnesiac (the E10 ablation).
	Checkpoint bool
	// RecoveryGrace is the pause between a checkpointed station's restart
	// and its recovery resends (re-issued server requests, re-forwarded
	// results, re-announced locations). The grace lets ARQ-held inbound
	// traffic — acks in particular — drain first, so the recovery pass
	// does not re-send results that were delivered just before the crash.
	RecoveryGrace time.Duration
	// HandoffTimeout, when positive, makes a new station re-issue its
	// Dereg while the hand-off is still pending after the timeout — the
	// peer-outage detection that unsticks hand-offs whose old station
	// crashed mid-transfer. Zero trusts the backbone (paper assumption 1).
	HandoffTimeout time.Duration
	// RegConfirm makes stations confirm every registration to the MH over
	// the downlink; the MH then names its last *confirmed* station as the
	// old respMss in greets. Without it, a greet lost to a crashed station
	// leaves the MH pointing its hand-off chain at a station that never
	// registered it.
	RegConfirm bool
	// WirelessDropFilter, when set, force-drops matching wireless frames
	// (delivery-time on the downlink, send-time on the uplink) — a
	// deterministic testing hook for targeted-loss scenarios.
	WirelessDropFilter func(from, to ids.NodeID, m msg.Message) bool
	// Observer, when set, receives every network event (tracing).
	Observer netsim.Observer
	// WiredSeq and WirelessSeq install adversarial delivery sequencers
	// on the substrates (testing hook; see internal/explore).
	WiredSeq    netsim.Sequencer
	WirelessSeq netsim.Sequencer

	// --- Overload protection (E11) ---

	// PriorityClasses generalizes §3.1's Ack-priority rule into a
	// three-class station inbox: control and acks first, admitted
	// result traffic second, new requests last. Under overload the
	// station finishes work in progress before starting more. Only
	// observable with ProcDelay > 0; overrides AckPriority when set.
	PriorityClasses bool
	// AdmissionHighWater, when positive, is the station inbox depth at
	// which new requests are refused with a busy-NACK instead of
	// enqueued. Retries of already-admitted requests are never refused.
	AdmissionHighWater int
	// ProxyQuota, when positive, bounds the proxies a station will
	// host: a request needing a new proxy beyond the quota is refused
	// with a busy-NACK (proxy storage is the station resource the paper
	// assumes infinite).
	ProxyQuota int
	// BusyRetryBase, when positive, makes an MH whose request was
	// busy-refused re-issue it after a capped exponential backoff with
	// jitter: base·2^attempt, clamped to BusyRetryMax, plus up to 50%
	// jitter. Zero disables client busy-retry (a refused request is
	// simply dropped — the E11 ablation's client behavior under
	// refusal, though the ablation normally disables admission
	// entirely).
	BusyRetryBase time.Duration
	// BusyRetryMax clamps the busy-retry backoff; defaults to
	// 32×BusyRetryBase when zero.
	BusyRetryMax time.Duration
	// RequestDeadline, when positive, abandons a request that has not
	// been admitted by any station within the deadline of its issue:
	// retries stop and the request is counted in RequestsAbandoned.
	// Admitted requests are never abandoned — the delivery guarantee
	// covers them until the result arrives.
	RequestDeadline time.Duration
	// StationDelayHook, when set, adds per-station extra processing
	// delay on top of ProcDelay (the slow/overloaded-station fault
	// mode; see faults.Plan.Slowdowns). Consulted on every message.
	StationDelayHook func(ids.MSS) time.Duration
	// WiredQueueLimit and WirelessQueueLimit bound the frames in flight
	// per directed link on each substrate (netsim queue bounds; frames
	// past the bound are shed and counted in Stats.NetworkShed). Zero
	// means unbounded, the paper's model.
	WiredQueueLimit    int
	WirelessQueueLimit int

	// --- Proxy migration (E12; internal/proxymig) ---

	// Migration configures proxy migration: when a policy trigger fires
	// (forwarding-hop threshold, result-volume threshold, or load
	// imbalance) the proxy's full state moves to the MH's current
	// respMss, leaving a forwarding tombstone at the old host. The zero
	// value keeps the paper's fixed-proxy behavior. Migration control
	// relies on the reliable backbone (assumption 1 or the wired ARQ),
	// the same trust DeregAck places in it.
	Migration proxymig.Policy
	// StationDistance is the topological distance between stations, used
	// for forwarding-hop accounting and the hop-threshold trigger. Nil
	// defaults to the flat metric (0 to itself, 1 to everyone else); E12
	// installs proxymig.RingDistance to match its ring latency topology.
	StationDistance func(a, b ids.MSS) int

	// --- Disconnected operation (E17; internal/dcache) ---

	// ResultCache configures the per-station result cache consulted by
	// proxies before issuing a ServerRequest: a repeated query (same
	// server, same payload digest) within the TTL is answered at the MSS
	// without re-executing. The zero value disables caching, keeping
	// every message trace byte-identical to the uncached protocol. The
	// cache is volatile: a station crash clears it.
	ResultCache dcache.Config
	// BatchDeadline, when positive, bounds how long a proxy waits for an
	// atomic batch to become deliverable (committed with every member
	// result present). On expiry the proxy aborts the batch: member
	// requests are dropped undelivered and the MH is told to abandon
	// them — all-or-nothing, so a deadline can never yield a partial
	// batch. Zero means batches wait forever.
	BatchDeadline time.Duration

	// --- Mobile-host crash/amnesia recovery (E18) ---

	// LeaseTTL, when positive, enables incarnation-scoped delivery and
	// lease-based orphan reclamation: every responsible station
	// heartbeats the proxies of its registered hosts (period LeaseTTL/3,
	// skipping hosts it can tell are crashed), and a proxy whose lease
	// goes unrenewed for a full LeaseTTL reclaims itself — its state is
	// orphaned by a host that lost its volatile memory (CrashMH) and
	// will re-register under a fresh incarnation. Zero disables the
	// whole machinery (heartbeats, reclamation, and the dead-incarnation
	// quiescence checks), keeping E1–E17 traces byte-identical.
	LeaseTTL time.Duration

	// --- Windowed wireless transport (E15) ---

	// WirelessWTP, when enabled, routes downlink result traffic through
	// internal/wtp: per-(MSS, MH) sliding-window ARQ with selective
	// acks, Jacobson/Karn RTT estimation, AIMD congestion control and
	// MTU-budgeted coalescing of small results into shared frames. The
	// world attaches its Stats hooks (RTT/RTO/cwnd histograms,
	// retransmission and reset counters) before handing the config to
	// netsim. Disabled — the default — the wireless path is untouched
	// and E1–E18 traces stay byte-identical.
	WirelessWTP wtp.Config

	// --- Aggregated location state (E16) ---

	// AggregatedState switches every station's per-MH state containers
	// (responsibility set, pref table) from hash maps to compact
	// aggregate structures: members by distinct pref value, membership
	// as chunked sorted/bitmap sets (internal/aggstate). The protocol's
	// message traces are unchanged by the representation alone; only
	// memory drops. Combined with GroupTopic it additionally enables
	// shared group proxies. Off — the default — keeps the faithful
	// representation and byte-identical traces.
	AggregatedState bool
	// GroupTopic, when set together with AggregatedState, classifies a
	// request at its respMss: a (server, payload) pair mapped to a topic
	// (ok=true) is served through a shared group proxy — one proxy per
	// (cell, server, topic) instead of one per MH — whose fan-out state
	// is aggregate membership rather than per-host request lists.
	// Requests it declines (ok=false) take the paper-faithful per-MH
	// proxy path unchanged. Nil disables group proxies entirely.
	GroupTopic func(ids.Server, []byte) (topic uint32, ok bool)
	// AggFlushDelay is the coalescing window for group-proxy signaling
	// from a respMss: hand-off location updates and forwarded-result
	// acks for the same shared proxy buffer for this long and leave as
	// one delta-encoded GroupUpdateLoc/GroupAckForward. Zero sends each
	// immediately (single-member messages).
	AggFlushDelay time.Duration
}

// DefaultConfig returns a configuration matching the paper's model: 3
// stations, 1 server, causal wired delivery, ack priority, reliable
// wireless, 5ms/20ms/150ms wired/wireless/server-processing times.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumMSS:          3,
		NumServers:      1,
		WiredLatency:    netsim.Constant(5 * time.Millisecond),
		WirelessLatency: netsim.Constant(20 * time.Millisecond),
		Causal:          true,
		AckPriority:     true,
		ServerProc:      netsim.Constant(150 * time.Millisecond),
	}
}

// World assembles the full system model of §2: stations, servers, the
// wired and wireless substrates, and the mobile hosts with their
// location/activity ground truth. It owns the simulation kernel.
type World struct {
	cfg   Config
	Stats *Stats

	Kernel   sim.Scheduler
	Wired    netsim.WiredTransport
	Wireless netsim.WirelessTransport

	MSSs    map[ids.MSS]*MSSNode
	Servers map[ids.Server]*server.AppServer
	MHs     map[ids.MH]*MHNode

	mssList []ids.MSS
	loc     map[ids.MH]ids.MSS
	active  map[ids.MH]bool

	// disconnected marks hosts whose radio is gone entirely (out of
	// coverage), as opposed to merely inactive: no frame reaches them in
	// either direction, and requests they issue are journaled for replay
	// on reconnection (E17 disconnected operation).
	disconnected map[ids.MH]bool

	// crashedMH marks hosts that fail-stopped with amnesia (E18): the
	// host is dead to the radio and its volatile protocol state is gone.
	// mhInc is each host's incarnation counter, modeled as a tiny
	// non-volatile flash word on the device: it lives in the World (not
	// the node) precisely so a crash cannot wipe it, and RestartMH bumps
	// it before reboot.
	crashedMH map[ids.MH]bool
	mhInc     map[ids.MH]ids.Incarnation

	// down marks crashed stations; see CrashMSS/RestartMSS. store is the
	// in-sim stable storage stations journal to when Config.Checkpoint is
	// on — it survives crashes by construction.
	down  map[ids.MSS]bool
	store *stableStore
}

// NewWorld builds a world from cfg on a deterministic discrete-event
// kernel seeded with cfg.Seed. It panics on structurally invalid
// configurations (no stations); experiments construct worlds from code,
// so a bad shape is a programming error.
func NewWorld(cfg Config) *World {
	return NewWorldOn(sim.NewKernel(cfg.Seed), cfg)
}

// NewWorldOn builds a world on an explicit scheduler — the simulation
// kernel or a live goroutine runtime. The scheduler must not be running
// callbacks concurrently with this call.
func NewWorldOn(sched sim.Scheduler, cfg Config) *World {
	return NewWorldWith(sched, cfg, nil, nil)
}

// NewWorldWith builds a world on an explicit scheduler and, optionally,
// explicit transports (nil transports default to the netsim substrates,
// configured from cfg). Custom transports — e.g. tcpnet's real TCP
// sockets — must deliver messages serialized on the given scheduler.
func NewWorldWith(sched sim.Scheduler, cfg Config, wired netsim.WiredTransport, wireless netsim.WirelessTransport) *World {
	stations := cfg.Stations
	if stations == nil {
		if cfg.NumMSS < 1 {
			panic("rdpcore: Config.NumMSS must be >= 1")
		}
		for i := 1; i <= cfg.NumMSS; i++ {
			stations = append(stations, ids.MSS(i))
		}
	} else if len(stations) == 0 {
		panic("rdpcore: Config.Stations must not be empty")
	}
	servers := cfg.ServerIDs
	if servers == nil {
		for i := 1; i <= cfg.NumServers; i++ {
			servers = append(servers, ids.Server(i))
		}
	}
	w := &World{
		cfg:     cfg,
		Stats:   NewStats(),
		Kernel:  sched,
		MSSs:    make(map[ids.MSS]*MSSNode, len(stations)),
		Servers: make(map[ids.Server]*server.AppServer, len(servers)),
		MHs:     make(map[ids.MH]*MHNode),
		loc:     make(map[ids.MH]ids.MSS),
		active:  make(map[ids.MH]bool),
		down:    make(map[ids.MSS]bool),
		store:   newStableStore(),

		disconnected: make(map[ids.MH]bool),
		crashedMH:    make(map[ids.MH]bool),
		mhInc:        make(map[ids.MH]ids.Incarnation),
	}

	members := make([]ids.NodeID, 0, len(stations)+len(servers))
	for _, id := range stations {
		w.mssList = append(w.mssList, id)
		members = append(members, id.Node())
	}
	for _, id := range servers {
		members = append(members, id.Node())
	}

	obs := w.statsObserver(cfg.Observer)
	if wired == nil {
		wired = netsim.NewWired(w.Kernel, members, netsim.WiredConfig{
			Latency:     cfg.WiredLatency,
			Causal:      cfg.Causal,
			Seq:         cfg.WiredSeq,
			PairLatency: cfg.WiredPairLatency,
			Faults:      cfg.WiredFaults,
			ARQ:         cfg.WiredARQ,
			Down:        w.nodeDown,
			QueueLimit:  cfg.WiredQueueLimit,
		}, obs)
	}
	w.Wired = wired
	if wireless == nil {
		wireless = netsim.NewWireless(w.Kernel, netsim.WirelessConfig{
			Latency:    cfg.WirelessLatency,
			LossProb:   cfg.WirelessLoss,
			Reachable:  w.reachable,
			Seq:        cfg.WirelessSeq,
			DropFilter: cfg.WirelessDropFilter,
			QueueLimit: cfg.WirelessQueueLimit,
			WTP:        w.wtpConfig(cfg.WirelessWTP),
		}, obs)
	}
	w.Wireless = wireless

	for _, id := range w.mssList {
		n := newMSSNode(id, w)
		w.MSSs[id] = n
		w.Wired.Register(id.Node(), n)
		w.Wireless.RegisterMSS(id, n)
	}
	for _, id := range servers {
		s := server.New(id, w.Kernel, w.Wired, cfg.ServerProc, cfg.ServerHandler)
		w.Servers[id] = s
		w.Wired.Register(id.Node(), s)
	}
	return w
}

// wtpConfig chains the world's Stats accounting onto the user's
// windowed-transport hooks (any hooks already set keep firing). The
// parallel engine reuses it so every region's links feed the shared
// Stats exactly like the serial world's.
func (w *World) wtpConfig(c wtp.Config) wtp.Config {
	if !c.Enabled {
		return c
	}
	userRTT, userCwnd, userRtx, userFrame := c.OnRTTSample, c.OnCwnd, c.OnRetransmit, c.OnFrame
	c.OnRTTSample = func(rtt, rto time.Duration) {
		w.Stats.WTPRtt.Observe(rtt)
		w.Stats.WTPRto.Observe(rto)
		if userRTT != nil {
			userRTT(rtt, rto)
		}
	}
	c.OnCwnd = func(cwnd int) {
		w.Stats.WTPCwnd.Observe(time.Duration(cwnd))
		if userCwnd != nil {
			userCwnd(cwnd)
		}
	}
	c.OnRetransmit = func() {
		w.Stats.WTPRetransmits.Inc()
		if userRtx != nil {
			userRtx()
		}
	}
	c.OnFrame = func(msgs int) {
		w.Stats.WTPFrames.Inc()
		w.Stats.WTPFrameMsgs.Add(int64(msgs))
		if userFrame != nil {
			userFrame(msgs)
		}
	}
	userReset := c.OnReset
	c.OnReset = func(dropped int) {
		w.Stats.WTPResets.Inc()
		if userReset != nil {
			userReset(dropped)
		}
	}
	return c
}

// WTPConfig returns Config.WirelessWTP with the world's Stats hooks
// attached (see wtpConfig). Custom transports built outside the world —
// the parallel engine's per-region substrates, tcpnet — use it so their
// windowed links account to the same Stats.
func (w *World) WTPConfig() wtp.Config { return w.wtpConfig(w.cfg.WirelessWTP) }

// NetObserver returns the world's network-event observer — the internal
// accounting chained with Config.Observer. Custom transports built
// before the world exists (the parallel engine's per-region substrates)
// bind it after construction so their events reach the same stats.
func (w *World) NetObserver() netsim.Observer {
	return w.statsObserver(w.cfg.Observer)
}

// statsObserver chains the world's internal accounting with an optional
// external observer.
func (w *World) statsObserver(ext netsim.Observer) netsim.Observer {
	return func(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
		if kind == netsim.EventShed {
			// Sheds are drops of a distinct cause (a full bounded queue);
			// account them separately from loss and unreachability.
			w.Stats.NetworkShed.Inc()
		} else if layer == netsim.LayerWireless && kind.IsDrop() {
			w.Stats.WirelessDrops.Inc()
		} else if layer == netsim.LayerWired && kind.IsDrop() {
			w.Stats.WiredDrops.Inc()
		}
		if layer == netsim.LayerWired && kind == netsim.EventSent {
			switch m.Kind() {
			case msg.KindDeregAck, msg.KindImageTransfer:
				w.Stats.HandoffStateBytes.Add(int64(msg.WireSize(m)))
			case msg.KindMigOffer, msg.KindMigCommit, msg.KindPrefRedirect, msg.KindMigGC:
				w.Stats.MigMessages.Inc()
			case msg.KindMigState:
				w.Stats.MigMessages.Inc()
				w.Stats.MigStateBytes.Add(int64(msg.WireSize(m)))
			}
		}
		if ext != nil {
			ext(at, layer, kind, from, to, m)
		}
	}
}

// Config returns the world's configuration.
func (w *World) Config() Config { return w.cfg }

// ReplaceServer swaps the wired-network node behind a server identifier
// for a custom implementation (the SIDAM substrate registers its
// Traffic Information Servers this way). The identifier must belong to
// one of the servers the world was configured with.
func (w *World) ReplaceServer(id ids.Server, h netsim.Handler) {
	if _, ok := w.Servers[id]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown server %v", id))
	}
	delete(w.Servers, id)
	w.Wired.Register(id.Node(), h)
}

// StationList returns the station identifiers in ascending order.
func (w *World) StationList() []ids.MSS {
	return append([]ids.MSS(nil), w.mssList...)
}

// AddMH creates a mobile host in the given cell; the host immediately
// joins the system, active. It panics on duplicate ids or unknown cells.
func (w *World) AddMH(id ids.MH, cell ids.MSS) *MHNode {
	if !id.Valid() {
		panic("rdpcore: invalid MH id")
	}
	if _, dup := w.MHs[id]; dup {
		panic(fmt.Sprintf("rdpcore: duplicate MH %v", id))
	}
	if _, ok := w.MSSs[cell]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown cell %v", cell))
	}
	h := newMHNode(id, w)
	w.MHs[id] = h
	w.Wireless.RegisterMH(id, h)
	w.loc[id] = cell
	w.active[id] = true
	w.mhInc[id] = ids.FirstIncarnation
	h.join(cell)
	return h
}

// Leave makes the MH exit the system (§2); assumption 6 is checked by
// the responsible station.
func (w *World) Leave(id ids.MH) {
	if h, ok := w.MHs[id]; ok {
		h.leave()
	}
}

// Rejoin brings back a mobile host that previously left the system
// (§2's join, for a host whose identity the world already knows). The
// host re-enters the given cell, active, with fresh protocol state at
// its station — a clean leave (assumption 6) guarantees nothing was
// pending.
func (w *World) Rejoin(id ids.MH, cell ids.MSS) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if h.Joined() {
		panic(fmt.Sprintf("rdpcore: %v is still joined", id))
	}
	if _, ok := w.MSSs[cell]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown cell %v", cell))
	}
	w.loc[id] = cell
	w.active[id] = true
	h.join(cell)
}

// Migrate moves the MH to a new cell. For an active MH this triggers the
// greet/Hand-off machinery; an inactive MH is carried silently and
// greets on reactivation (§2: the greet is sent "whenever a MH enters a
// new cell" or "when it becomes active again").
func (w *World) Migrate(id ids.MH, cell ids.MSS) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if _, ok := w.MSSs[cell]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown cell %v", cell))
	}
	if w.loc[id] == cell {
		return
	}
	w.loc[id] = cell
	if w.active[id] && !w.crashedMH[id] {
		// A crashed host is carried silently; it greets from the cell it
		// reboots in (E18).
		h.onMigrate(cell)
	}
}

// DetachMH removes a mobile host from this world without ending its
// protocol life: the node object — respMss belief, duplicate-detection
// set, outstanding requests — survives and can be re-attached to another
// world with AttachMH. This is the parallel engine's region hand-off:
// the host is radio-silent while in transit between region worlds, and
// its protocol state at the stations stays put (the next greet reaches
// the old respMss over the wired path exactly as in a serial world). It
// reports whether the host was active at detach time.
func (w *World) DetachMH(id ids.MH) (h *MHNode, active bool) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	active = w.active[id]
	// The device's flash chip travels with it: park the incarnation
	// counter, crash flag, and offline journal on the node so AttachMH
	// restores them in the destination world (E18) — otherwise a region
	// transfer would be an accidental amnesia wipe.
	h.xferInc = w.mhInc[id]
	h.xferCrashed = w.crashedMH[id]
	h.xferJournal = w.store.offline[id]
	delete(w.MHs, id)
	delete(w.loc, id)
	delete(w.active, id)
	delete(w.disconnected, id)
	delete(w.mhInc, id)
	delete(w.crashedMH, id)
	delete(w.store.offline, id)
	// The host is radio-silent in transit: stop its retransmit, deadline
	// and refresh timers so a detached host leaks no kernel events. The
	// timers re-arm from live state on the next attach-side activity.
	h.cancelTimers()
	return h, active
}

// AttachMH inserts a detached mobile host into this world in the given
// cell. An active host greets the cell's station immediately, naming its
// old respMss — which lives in another region's world, so the hand-off
// runs over the cross-region wired path. An inactive host is carried
// silently and greets on the next SetActive, as §2 prescribes.
func (w *World) AttachMH(h *MHNode, cell ids.MSS, active bool) {
	if h == nil {
		panic("rdpcore: AttachMH of nil host")
	}
	if _, dup := w.MHs[h.id]; dup {
		panic(fmt.Sprintf("rdpcore: duplicate MH %v", h.id))
	}
	if _, ok := w.MSSs[cell]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown cell %v", cell))
	}
	h.w = w
	w.MHs[h.id] = h
	w.Wireless.RegisterMH(h.id, h)
	w.loc[h.id] = cell
	w.active[h.id] = active
	// Restore the flash chip DetachMH parked on the node — before any
	// greet, so the radio model sees a crashed host as unreachable.
	if h.xferInc != 0 {
		w.mhInc[h.id] = h.xferInc
	}
	if h.xferCrashed {
		w.crashedMH[h.id] = true
	}
	if len(h.xferJournal) != 0 {
		w.store.offline[h.id] = h.xferJournal
	}
	h.xferInc, h.xferCrashed, h.xferJournal = 0, false, nil
	if active && h.joined && !w.crashedMH[h.id] {
		h.onMigrate(cell)
	}
	// Rebuild the timer set DetachMH cancelled (refresh beacon, retry
	// chains, deadlines, batch retries) from the host's live state.
	h.rearmTimers()
}

// persistOffline journals an MH's offline request queue through the E10
// stable store (write-through on every mutation, like the stations'
// records); an empty queue erases the record. Gated on Checkpoint like
// every other journal write. The record is a checksummed byte log
// (journal.go): each message is wire-encoded and framed with a length
// and an FNV-64a, so a torn write is detected at replay time instead of
// resurrecting garbage requests.
func (w *World) persistOffline(mh ids.MH, queue []msg.Message) {
	if !w.cfg.Checkpoint {
		return
	}
	if len(queue) == 0 {
		delete(w.store.offline, mh)
	} else {
		var log []byte
		for _, m := range queue {
			body, err := msg.Encode(m)
			if err != nil {
				// Non-wire message in the queue (not produced by the
				// protocol); skip it rather than poison the journal.
				continue
			}
			log = journalAppend(log, body)
		}
		w.store.offline[mh] = log
	}
	w.store.writes++
}

// loadOffline decodes an MH's journaled offline queue from the stable
// store, verifying each record's checksum. A corrupt record truncates
// the replay at the longest verified prefix (JournalTruncations counts
// it) and the store is rewritten to that prefix.
func (w *World) loadOffline(mh ids.MH) []msg.Message {
	log := w.store.offline[mh]
	if len(log) == 0 {
		return nil
	}
	records, truncated := journalScan(log)
	if truncated {
		w.Stats.JournalTruncations.Inc()
		var good []byte
		for _, body := range records {
			good = journalAppend(good, body)
		}
		if len(good) == 0 {
			delete(w.store.offline, mh)
		} else {
			w.store.offline[mh] = good
		}
		w.store.writes++
	}
	queue := make([]msg.Message, 0, len(records))
	for _, body := range records {
		m, err := msg.Decode(body)
		if err != nil {
			continue // checksummed but undecodable: never replay garbage
		}
		queue = append(queue, m)
	}
	return queue
}

// SetActive switches the MH between the active and inactive states of
// §2. Activation greets the station of the current cell.
func (w *World) SetActive(id ids.MH, activeNow bool) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if w.active[id] == activeNow {
		return
	}
	w.active[id] = activeNow
	if activeNow && !w.crashedMH[id] {
		h.onActivate(w.loc[id])
	}
}

// Refresh makes an active, joined MH re-greet its respMss immediately —
// a single registration-refresh beacon, the manual form of
// Config.GreetRefresh. It is a no-op for inactive or departed hosts.
func (w *World) Refresh(id ids.MH) {
	h, ok := w.MHs[id]
	if !ok || !h.joined || !w.active[id] {
		return
	}
	h.refreshGreet()
}

// Disconnect takes the MH out of radio coverage entirely (E17's
// long-disconnection fault mode): no frame reaches it in either
// direction, and requests it issues are journaled in issue order for
// replay on Reconnect. Unlike SetActive(false), the host itself keeps
// running — disconnected operation, not dormancy. No-op if already
// disconnected.
func (w *World) Disconnect(id ids.MH) {
	if _, ok := w.MHs[id]; !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	w.disconnected[id] = true
}

// Reconnect restores the MH's radio. The host re-greets its station
// (announcing its location so stranded results re-forward) and replays
// its offline request queue in issue order; replayed requests
// deduplicate against the MH's own seen-set, the proxy's request
// memoization and the result cache. No-op if not disconnected.
func (w *World) Reconnect(id ids.MH) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if !w.disconnected[id] {
		return
	}
	delete(w.disconnected, id)
	if w.active[id] && h.joined && !w.crashedMH[id] {
		h.onReconnect(w.loc[id])
	}
}

// IsDisconnected reports whether the MH is currently out of coverage.
func (w *World) IsDisconnected(id ids.MH) bool { return w.disconnected[id] }

// InCell reports whether the MH is currently located in the cell of the
// given station.
func (w *World) InCell(id ids.MH, cell ids.MSS) bool { return w.loc[id] == cell }

// IsActive reports the MH's activity state.
func (w *World) IsActive(id ids.MH) bool { return w.active[id] }

// Location returns the MH's current cell.
func (w *World) Location(id ids.MH) ids.MSS { return w.loc[id] }

// distance returns the topological distance between two stations
// (Config.StationDistance, defaulting to the flat metric): the unit of
// the forwarding-hop accounting and of the hop-threshold trigger.
func (w *World) distance(a, b ids.MSS) int {
	if w.cfg.StationDistance != nil {
		return w.cfg.StationDistance(a, b)
	}
	if a == b {
		return 0
	}
	return 1
}

// reachable implements the wireless gate: in the station's cell and
// active, not disconnected, not crashed, and the station's radio itself
// up (a crashed station neither transmits nor receives).
func (w *World) reachable(mss ids.MSS, mh ids.MH) bool {
	return w.loc[mh] == mss && w.active[mh] && !w.down[mss] &&
		!w.disconnected[mh] && !w.crashedMH[mh]
}

// nodeDown is the wired substrate's down gate: frames addressed to a
// crashed station are dropped un-acked (the ARQ sender keeps
// retransmitting them until the station restarts).
func (w *World) nodeDown(node ids.NodeID) bool {
	return node.Kind == ids.KindMSS && w.down[ids.MSS(node.Num)]
}

// IsDown reports whether the station is currently crashed.
func (w *World) IsDown(id ids.MSS) bool { return w.down[id] }

// CrashMSS fail-stops a station: its volatile state (message queues,
// pending hand-offs, held results — and, without Config.Checkpoint, all
// protocol state) is lost, and both its radio and its wired interface go
// dead until RestartMSS. A crash strikes between simulation events, so
// checkpointed mutations are atomic. No-op if already down.
func (w *World) CrashMSS(id ids.MSS) {
	n, ok := w.MSSs[id]
	if !ok || w.down[id] {
		return
	}
	w.down[id] = true
	w.Stats.MSSCrashes.Inc()
	n.crash()
}

// RestartMSS brings a crashed station back. With Config.Checkpoint the
// station replays its stable-store journal immediately and, after
// Config.RecoveryGrace, re-issues whatever the journal shows incomplete:
// server requests without results, un-acked result forwards, and
// update_currentLoc announcements for its responsible MHs with remote
// proxies. Without Checkpoint it restarts amnesiac. No-op if not down.
func (w *World) RestartMSS(id ids.MSS) {
	n, ok := w.MSSs[id]
	if !ok || !w.down[id] {
		return
	}
	delete(w.down, id)
	w.Stats.MSSRestarts.Inc()
	if !w.cfg.Checkpoint {
		return
	}
	n.restoreFromStore()
	w.Kernel.Defer(w.cfg.RecoveryGrace, func() {
		if w.down[id] {
			return
		}
		n.recoveryResend()
	})
}

// IsCrashed reports whether the MH is currently crashed (E18). Stations
// consult it as the radio-level liveness probe behind their lease
// heartbeats: a cellular station can distinguish a dead handset from a
// merely silent one at the link layer, which the simulation abstracts
// into this one predicate.
func (w *World) IsCrashed(id ids.MH) bool { return w.crashedMH[id] }

// IncarnationOf returns the MH's current incarnation number — the
// monotonic counter in the host's non-volatile flash that survives
// crashes and is bumped on every restart (E18).
func (w *World) IncarnationOf(id ids.MH) ids.Incarnation { return w.mhInc[id] }

// CrashMH fail-stops a mobile host with amnesia (E18): its radio goes
// dead and every piece of volatile protocol state — the seen-set, the
// outstanding/admitted/pending bookkeeping, the activation queue, the
// batch objects, all timers — is lost. Only the incarnation counter
// (non-volatile flash) and the journaled offline queue survive. The
// host's proxies and any in-flight results addressed to the dead
// incarnation are left orphaned; the lease machinery (Config.LeaseTTL)
// reclaims them. No-op if already crashed.
func (w *World) CrashMH(id ids.MH) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if w.crashedMH[id] {
		return
	}
	w.crashedMH[id] = true
	w.Stats.MHCrashes.Inc()
	h.crash()
}

// RestartMH reboots a crashed mobile host under a fresh incarnation:
// the flash counter is bumped, the surviving offline journal is
// replayed through the incarnation filter (entries issued by the dead
// incarnation are discarded — their requests died with the memory that
// tracked them), and the host re-registers with the station of its
// current cell, carrying the new incarnation so stale state everywhere
// can be scrubbed. No-op if not crashed.
func (w *World) RestartMH(id ids.MH) {
	h, ok := w.MHs[id]
	if !ok {
		panic(fmt.Sprintf("rdpcore: unknown MH %v", id))
	}
	if !w.crashedMH[id] {
		return
	}
	delete(w.crashedMH, id)
	w.Stats.MHRestarts.Inc()
	inc := w.mhInc[id]
	if inc == 0 {
		inc = ids.FirstIncarnation
	}
	inc++
	w.mhInc[id] = inc
	h.reboot(inc)
}

// CheckpointWrites returns the number of journal writes stations have
// made to stable storage (zero unless Config.Checkpoint).
func (w *World) CheckpointWrites() int64 { return w.store.writes }

// Reachable reports whether the mobile host is currently radio-reachable
// from the station (in its cell and active). Custom transports built
// with NewWorldWith install this as their radio gate.
func (w *World) Reachable(mss ids.MSS, mh ids.MH) bool { return w.reachable(mss, mh) }

// Schedule runs fn after the given delay of scheduler time — the way
// driver code injects actions (requests, migrations) into a running
// world.
func (w *World) Schedule(after time.Duration, fn func()) { w.Kernel.Defer(after, fn) }

// RunUntil advances the simulation to the given virtual instant. It
// panics on a live-runtime world, which advances by itself in real time.
func (w *World) RunUntil(t time.Duration) { w.kernel().RunUntil(sim.Time(t)) }

// Run drains every scheduled event (only safe without client retry
// timers, which re-arm themselves). It panics on a live-runtime world.
func (w *World) Run() { w.kernel().Run() }

// kernel returns the underlying discrete-event kernel.
func (w *World) kernel() *sim.Kernel {
	k, ok := w.Kernel.(*sim.Kernel)
	if !ok {
		panic("rdpcore: world runs on a live scheduler; it cannot be stepped")
	}
	return k
}

// TotalProxies returns the number of proxies currently hosted anywhere
// (invariant checks: at most one per MH, §3.1).
func (w *World) TotalProxies() int {
	n := 0
	for _, m := range w.MSSs {
		n += m.HostedProxies()
	}
	return n
}

// CheckInvariants verifies cross-node protocol invariants that hold at
// every instant, and returns a descriptive error on the first violation
// found. Tests call it after (and during) randomized runs.
//
// Invariants checked:
//  1. Each MH has at most one proxy *referenced by a pref* (§3.1: "at
//     any time each MH is associated with at most one proxy"). An
//     additional unreferenced proxy may exist transiently: once the
//     respMss confirms removal it erases the pref immediately, but the
//     del-proxy Ack is still in flight to the proxy host, and a new
//     request may legally create the successor proxy in that window.
//     CheckQuiescent rules the orphan out once traffic has drained.
//  2. Each MH is the responsibility of at most one station, except
//     transiently during a hand-off (old deregistered, new pending).
//  3. Every pref pointing at a proxy refers to a proxy that exists at
//     the named host.
func (w *World) CheckInvariants() error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	refOwner := make(map[ids.MH]ids.ProxyID)
	for _, id := range w.mssList {
		st := w.MSSs[id]
		st.prefs.forEach(func(mh ids.MH, pref msg.Pref) {
			if !pref.HasProxy() {
				return
			}
			if prev, dup := refOwner[mh]; dup && prev != pref.Proxy {
				fail(fmt.Errorf("invariant 1: %v referenced by prefs for both %v and %v", mh, prev, pref.Proxy))
			}
			refOwner[mh] = pref.Proxy
		})
	}
	respOwner := make(map[ids.MH]ids.MSS)
	for _, id := range w.mssList {
		st := w.MSSs[id]
		st.localMhs.forEach(func(mh ids.MH) {
			if prev, dup := respOwner[mh]; dup {
				fail(fmt.Errorf("invariant 2: %v responsible at both %v and %v", mh, prev, id))
			}
			respOwner[mh] = id
		})
	}
	for _, id := range w.mssList {
		st := w.MSSs[id]
		st.prefs.forEach(func(mh ids.MH, pref msg.Pref) {
			if !pref.HasProxy() {
				return
			}
			if err := w.resolveProxyRef(mh, pref.Proxy); err != nil {
				fail(err)
			}
		})
	}
	return firstErr
}

// resolveProxyRef checks invariant 3 for one proxy reference: following
// migration tombstones (bounded, in case of a cycle bug), the reference
// must reach a live proxy or an inbound-migration reservation whose
// installation is in flight.
func (w *World) resolveProxyRef(mh ids.MH, p ids.ProxyID) error {
	for hops := 0; hops < 2*len(w.mssList)+2; hops++ {
		host, ok := w.MSSs[p.Host]
		if !ok {
			return fmt.Errorf("invariant 3: pref of %v names unknown host %v", mh, p.Host)
		}
		if isSharedProxy(p) {
			// Group proxies (E16) never migrate and are never deleted, so
			// the reference must resolve directly at the named host.
			if g := host.groupProxies[p.Seq]; g != nil && g.id == p {
				return nil
			}
			return fmt.Errorf("invariant 3: pref of %v names dead group proxy %v", mh, p)
		}
		if q := host.proxies[p.Seq]; q != nil && q.id == p {
			return nil
		}
		if t := host.tombstones[p.Seq]; t != nil {
			p = t.newProxy
			continue
		}
		if _, reserved := host.migInbound[p.Seq]; reserved {
			return nil // mig_state install in flight
		}
		return fmt.Errorf("invariant 3: pref of %v names dead proxy %v", mh, p)
	}
	return fmt.Errorf("invariant 3: pref of %v loops through tombstones at %v", mh, p)
}

// CheckQuiescent verifies the stronger invariants that hold once all
// traffic has drained (no in-flight messages, no pending hand-offs):
// everything CheckInvariants demands, plus that no proxy exists without
// a pref referencing it — in-flight deletions and hand-overs have
// settled, so an orphan proxy would be a leak.
func (w *World) CheckQuiescent() error {
	if err := w.CheckInvariants(); err != nil {
		return err
	}
	referenced := make(map[ids.ProxyID]bool)
	for _, st := range w.MSSs {
		st.prefs.forEach(func(_ ids.MH, pref msg.Pref) {
			if pref.HasProxy() {
				referenced[pref.Proxy] = true
			}
		})
	}
	for _, id := range w.mssList {
		st := w.MSSs[id]
		for _, p := range st.proxies {
			if !referenced[p.id] {
				return fmt.Errorf("quiescence: proxy %v for %v is orphaned (pending=%d)", p.id, p.mh, p.Pending())
			}
			for _, bid := range p.batchOrder {
				if !p.batches[bid].released {
					return fmt.Errorf("quiescence: proxy %v still holds unreleased batch %v", p.id, bid)
				}
			}
			if w.cfg.LeaseTTL > 0 {
				// E18: once traffic drains, no proxy state may belong to
				// a dead incarnation — the lease machinery must have
				// scrubbed or reclaimed it.
				cur := w.mhInc[p.mh]
				if incLess(p.leaseInc, cur) {
					return fmt.Errorf("quiescence: proxy %v leased to dead incarnation %v of %v (current %v)",
						p.id, normInc(p.leaseInc), p.mh, normInc(cur))
				}
				for req, r := range p.reqs {
					if incLess(r.inc, cur) {
						return fmt.Errorf("quiescence: proxy %v holds request %v from dead incarnation %v of %v",
							p.id, req, normInc(r.inc), p.mh)
					}
				}
				for bid, b := range p.batches {
					if incLess(b.inc, cur) {
						return fmt.Errorf("quiescence: proxy %v holds batch %v from dead incarnation %v of %v",
							p.id, bid, normInc(b.inc), p.mh)
					}
				}
			}
		}
		for _, g := range st.groupProxies {
			// Group proxies themselves persist (durable infrastructure),
			// but their entries must have drained: every subscribed member
			// acknowledged its fan-out.
			if len(g.entries) > 0 {
				return fmt.Errorf("quiescence: group proxy %v still has %d open entries", g.id, len(g.entries))
			}
		}
		if len(st.aggLocBuf) > 0 || len(st.aggAckBuf) > 0 {
			return fmt.Errorf("quiescence: %v still has buffered group signaling", id)
		}
		if len(st.arriving) > 0 {
			return fmt.Errorf("quiescence: %v still has %d pending hand-offs", id, len(st.arriving))
		}
		if len(st.pendingDeregs) > 0 {
			return fmt.Errorf("quiescence: %v still has parked deregs", id)
		}
		if len(st.tombstones) > 0 {
			return fmt.Errorf("quiescence: %v still has %d migration tombstones", id, len(st.tombstones))
		}
		if len(st.migInbound) > 0 {
			return fmt.Errorf("quiescence: %v still has %d inbound migration reservations", id, len(st.migInbound))
		}
	}
	return nil
}
