// Package rdpcore implements the Result Delivery Protocol itself: the
// proxy object and its life-cycle, the proxy reference (pref), the
// mobile support station (MSS) and mobile host (MH) state machines, the
// Hand-off protocol, and the World that wires them onto the simulated
// network substrates.
//
// The package follows the paper's §2–§3 closely; doc comments cite the
// relevant section for every protocol rule.
package rdpcore

import (
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
)

// Stats aggregates every protocol-level measurement the experiments
// report. One Stats value is shared by all nodes of a World.
type Stats struct {
	// RequestsIssued counts client requests created at MHs.
	RequestsIssued metrics.Counter
	// RequestRetries counts client-side request retransmissions (the
	// QRPC-style reliable-sending shim; see World.Config.RequestTimeout).
	RequestRetries metrics.Counter
	// ResultsDelivered counts first-time deliveries of results at MHs.
	ResultsDelivered metrics.Counter
	// DuplicateDeliveries counts redundant result deliveries at MHs
	// (at-least-once slack; §5 predicts 0 under causal order + ack
	// priority + reliable wireless).
	DuplicateDeliveries metrics.Counter
	// Retransmissions counts proxy re-forwards of a result that had
	// already been forwarded once (§5 threshold analysis, E3).
	Retransmissions metrics.Counter
	// UpdateCurrLocs counts update_currentLoc messages (overhead term 1
	// of §5: one per migration or reactivation of an MH with a proxy).
	UpdateCurrLocs metrics.Counter
	// AckForwards counts Ack messages relayed respMss -> proxy (overhead
	// term 2 of §5: one per acknowledged result).
	AckForwards metrics.Counter
	// ServerAcks counts application-level acks sent proxy -> server.
	ServerAcks metrics.Counter
	// Handoffs counts completed Hand-off protocol runs (deregack
	// processed at the new MSS).
	Handoffs metrics.Counter
	// Reactivations counts same-cell greet messages (inactive -> active).
	Reactivations metrics.Counter
	// ProxiesCreated and ProxiesDeleted track the proxy life-cycle.
	ProxiesCreated metrics.Counter
	ProxiesDeleted metrics.Counter
	// HeldResults counts results an MSS held for an inactive MH instead
	// of attempting wireless delivery (§5 footnote 3 optimization).
	HeldResults metrics.Counter
	// OrphanMessages counts messages that reached a node with no state to
	// process them (stale forwards after proxy deletion, requests from
	// unregistered MHs, ...). They are dropped.
	OrphanMessages metrics.Counter
	// IgnoredAcks counts MH acks dropped by an MSS that had already
	// received a dereg for that MH (§3.1).
	IgnoredAcks metrics.Counter
	// Violations counts internal invariant breaches. It must stay zero;
	// experiments assert on it.
	Violations metrics.Counter
	// WirelessDrops counts frames lost on the wireless layer (random
	// loss, migration or inactivity at delivery time).
	WirelessDrops metrics.Counter
	// WiredDrops counts frames lost on the wired layer: injected faults,
	// partitions, and frames addressed to a crashed station. Zero under
	// the paper's assumption 1; E10 removes it.
	WiredDrops metrics.Counter
	// MSSCrashes and MSSRestarts count station outages executed by the
	// World (E10's failure model; the paper assumes MSSs never fail).
	MSSCrashes  metrics.Counter
	MSSRestarts metrics.Counter
	// RecoveryResends counts messages a restarted station re-issued while
	// replaying its stable-store journal (server re-requests and result
	// re-forwards).
	RecoveryResends metrics.Counter
	// HandoffReissues counts Dereg retransmissions sent by a new station
	// whose hand-off timed out (peer-outage detection; see
	// Config.HandoffTimeout).
	HandoffReissues metrics.Counter
	// HandoffStateBytes accumulates the wire size of hand-off state
	// transfers (DeregAck for RDP; ImageTransfer for the I-TCP baseline),
	// the E6 measurement.
	HandoffStateBytes metrics.Counter
	// BusyRefusals counts requests refused at admission control with a
	// busy-NACK (overload protection, E11). Refused requests never enter
	// the delivery guarantee; they are the protocol's explicit,
	// accounted casualty under overload.
	BusyRefusals metrics.Counter
	// BusyRetries counts client re-issues of a busy-refused request
	// after backoff (see Config.BusyRetryBase).
	BusyRetries metrics.Counter
	// RequestsAbandoned counts requests whose per-request deadline
	// expired before any admission (see Config.RequestDeadline). Only
	// never-admitted requests can be abandoned.
	RequestsAbandoned metrics.Counter
	// NetworkShed counts frames shed by bounded link queues on either
	// substrate (netsim.EventShed).
	NetworkShed metrics.Counter
	// MigOffers counts proxy-migration offers sent by proxy hosts;
	// MigRefusals counts offers the target refused (not responsible, at
	// quota, inbox past the high-watermark, or no load improvement);
	// MigCompleted counts finished migration episodes (tombstone
	// garbage-collected at the old host). See internal/proxymig and E12.
	MigOffers    metrics.Counter
	MigRefusals  metrics.Counter
	MigCompleted metrics.Counter
	// MigMessages counts migration-control messages put on the wired
	// network (mig_offer, mig_commit, mig_state, pref_redirect, mig_gc)
	// — the E12 overhead measurement. MigStateBytes accumulates the wire
	// size of the mig_state transfers alone.
	MigMessages   metrics.Counter
	MigStateBytes metrics.Counter
	// PrefRedirects counts pref rebinds applied at stations (a stale
	// proxy reference updated to the migrated proxy's new identity).
	PrefRedirects metrics.Counter
	// ForwardHops sums the topological distance (Config.StationDistance)
	// of every proxy result forward; ForwardCount counts those forwards
	// and ForwardHopMax tracks the worst single path. Mean forwarding
	// hops = ForwardHops/ForwardCount — the E12 route-stretch metric.
	ForwardHops   metrics.Counter
	ForwardCount  metrics.Counter
	ForwardHopMax metrics.Peak

	// CacheHits, CacheMisses and CacheStale count result-cache lookups at
	// proxy hosts (internal/dcache, E17): a hit answers a repeated query
	// at the MSS without a server round trip, a stale lookup found an
	// entry past its TTL (evicted, re-executed). CacheEvictions counts
	// entries pushed out by the byte/entry budget.
	CacheHits      metrics.Counter
	CacheMisses    metrics.Counter
	CacheStale     metrics.Counter
	CacheEvictions metrics.Counter
	// OfflineQueued counts requests journaled by a disconnected MH
	// instead of being transmitted; OfflineReplayed counts queued
	// requests re-issued in order on reconnection (E17).
	OfflineQueued   metrics.Counter
	OfflineReplayed metrics.Counter
	// BatchesOpened/Committed/Aborted track atomic request batches at
	// proxies (E17). BatchResultsWithheld counts member results the proxy
	// held back because their batch had not released yet — each one is a
	// partial delivery prevented.
	BatchesOpened        metrics.Counter
	BatchesCommitted     metrics.Counter
	BatchesAborted       metrics.Counter
	BatchResultsWithheld metrics.Counter

	// MHCrashes and MHRestarts count mobile-host outages executed by the
	// World (E18's failure model: a crash wipes the host's volatile
	// state — seen-set, outstanding table, in-flight batches, timers —
	// and a restart reboots it under a fresh incarnation).
	MHCrashes  metrics.Counter
	MHRestarts metrics.Counter
	// StaleIncarnationDrops counts results (and batch traffic) refused
	// because they belonged to a dead incarnation of their MH: the
	// amnesia guard that keeps a rebooted host from receiving answers
	// its previous self asked for. Each drop is acked back to the proxy
	// so the orphaned request state is scrubbed, not retried forever.
	StaleIncarnationDrops metrics.Counter
	// LeaseHeartbeats counts proxy-lease renewals processed at proxy
	// hosts; ProxiesReclaimed counts proxies garbage-collected by the
	// lease GC because their owner's incarnation died (no heartbeat for
	// Config.LeaseTTL, or a heartbeat announcing a newer incarnation
	// left the proxy empty).
	LeaseHeartbeats  metrics.Counter
	ProxiesReclaimed metrics.Counter
	// OfflineDroppedStale counts offline-journal entries skipped at
	// replay because they were journaled by a dead incarnation (E18
	// scoping of the E17 offline queue).
	OfflineDroppedStale metrics.Counter
	// JournalTruncations counts checksummed-journal recoveries that
	// found a corrupt record and truncated the journal there (stable
	// store hardening; see internal/rdpcore/journal.go).
	JournalTruncations metrics.Counter

	// SharedProxies counts group proxies created (E16: one per
	// (cell, server, topic) that sees a groupable request);
	// SharedJoins counts member subscriptions into group entries (the
	// aggregated analogue of per-request proxy registrations);
	// GroupFanouts counts result forwards issued by group proxies (each
	// serves one member from the entry's single server round-trip).
	SharedProxies metrics.Counter
	SharedJoins   metrics.Counter
	GroupFanouts  metrics.Counter
	// GroupUpdateLocs and GroupAckForwards count the coalesced hand-off
	// signaling messages (E16): each replaces up to |members| faithful
	// update_currentLoc / Ack-forward messages. The E16 signaling
	// metric is 2·Handoffs + UpdateCurrLocs + GroupUpdateLocs +
	// AckForwards + GroupAckForwards.
	GroupUpdateLocs  metrics.Counter
	GroupAckForwards metrics.Counter

	// WTPRetransmits counts windowed-transport frame retransmissions
	// (timeout and sack-gap fast retransmissions) on the wireless
	// downlinks; WTPResets counts links that exhausted MaxRetries and
	// dropped their queue (the silent-loss fallback the proxy-level
	// recovery machinery absorbs); WTPFrames counts first transmissions
	// of coalesced data frames and WTPFrameMsgs the messages they
	// carried, so WTPFrameMsgs/WTPFrames is the mean coalescing factor.
	// All zero unless Config.WirelessWTP is enabled (E15).
	WTPRetransmits metrics.Counter
	WTPResets      metrics.Counter
	WTPFrames      metrics.Counter
	WTPFrameMsgs   metrics.Counter

	// InboxPeak tracks the deepest station inbox seen anywhere: the
	// queue-growth measurement of E11 (unbounded growth past saturation
	// without admission control; bounded by the high-watermark with it).
	InboxPeak metrics.Peak

	// ResultLatency measures issue -> first wireless delivery per request.
	ResultLatency metrics.Histogram
	// HandoffLatency measures greet -> deregack completion per hand-off.
	HandoffLatency metrics.Histogram
	// WTPRtt and WTPRto record the windowed transport's Karn-valid
	// round-trip samples and the smoothed RTO after each; WTPCwnd
	// records the congestion window (in frames, as a Duration so the
	// histogram reservoir applies) after every change (E15).
	WTPRtt  metrics.Histogram
	WTPRto  metrics.Histogram
	WTPCwnd metrics.Histogram

	// ProxySeconds integrates, per station, virtual time spent hosting
	// proxies (E5 load metric). ProxyCreations counts proxy placements
	// per station; ResultForwards counts result forwards issued by
	// proxies per hosting station.
	ProxySeconds   map[ids.MSS]time.Duration
	ProxyCreations map[ids.MSS]int64
	ResultForwards map[ids.MSS]int64
}

// NewStats returns an initialized Stats.
func NewStats() *Stats {
	return &Stats{
		ProxySeconds:   make(map[ids.MSS]time.Duration),
		ProxyCreations: make(map[ids.MSS]int64),
		ResultForwards: make(map[ids.MSS]int64),
	}
}

// HostLoads returns the per-station proxy-seconds for the given stations
// as a float vector (for fairness computations), in the order given.
func (s *Stats) HostLoads(stations []ids.MSS) []float64 {
	out := make([]float64, len(stations))
	for i, m := range stations {
		out[i] = float64(s.ProxySeconds[m])
	}
	return out
}

// ForwardLoads returns per-station result-forward counts as floats.
func (s *Stats) ForwardLoads(stations []ids.MSS) []float64 {
	out := make([]float64, len(stations))
	for i, m := range stations {
		out[i] = float64(s.ResultForwards[m])
	}
	return out
}
