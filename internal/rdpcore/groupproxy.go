package rdpcore

import (
	"sort"

	"repro/internal/aggstate"
	"repro/internal/dcache"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// This file implements shared group proxies, the fan-out half of the
// aggregated-location-state optimization (E16). The paper's proxy is
// strictly per-host: a cell of 10k subscribers asking one server the
// same question builds 10k proxies, 10k server round-trips, and 10k
// independent pref/location records. When the deployment can classify
// requests into topics (Config.GroupTopic), all subscribers of a
// (server, topic) pair in a cell share ONE group proxy: one server
// request per distinct payload, one pref value for the whole
// population (which the prefTable then stores as a single aggregate
// record), and hand-off signaling batched into per-group messages
// carrying delta-encoded member sets.
//
// Group proxies are durable cell infrastructure, not per-request
// state: they are never deleted by the §3.3 RKpR machinery, never
// offered for migration, and hold no incarnation lease (each member's
// forward still carries — and is gated by — that member's own
// incarnation). Their member sets are append-only: membership is
// lazily correct, in that a departed member costs its bits in the set
// and a possible wasted forward, but never a per-member bookkeeping
// map, which is exactly the O(hosts) cost this representation removes.

// sharedProxyBit marks a ProxyID.Seq as naming a group proxy. The bit
// rides inside the existing identifier space so every message, pref and
// stable-store record that carries a ProxyID works unchanged; stations
// route on the bit (group table vs. proxy table) without a new field.
const sharedProxyBit = uint32(1) << 31

// isSharedProxy reports whether id names a shared group proxy.
func isSharedProxy(id ids.ProxyID) bool { return id.Seq&sharedProxyBit != 0 }

// groupKey indexes a cell's group proxies by what they serve.
type groupKey struct {
	server ids.Server
	topic  uint32
}

// waiterKey identifies one member request inside a shared entry: the
// member's RequestID re-expressed without the redundant origin.
type waiterKey struct {
	mh  ids.MH
	seq uint32
}

// sharedWaiter is one member subscribed to a shared entry: 16 bytes of
// steady state per waiting request, against the faithful ~300+ bytes of
// proxy + requestList entry.
type sharedWaiter struct {
	mh        ids.MH
	seq       uint32
	inc       ids.Incarnation
	acked     bool
	forwarded bool
}

// sharedEntry is one distinct in-flight request payload of a group:
// the single server round-trip and the waiters it will fan out to.
type sharedEntry struct {
	server    ids.Server
	payload   []byte
	leaderReq ids.RequestID // the first joiner's id; names the server exchange
	result    []byte
	hasResult bool
	unacked   int
	waiters   []sharedWaiter
	// ackIdx maps (mh, seq) to the waiter index. Built lazily when the
	// result arrives (acks can only follow forwards) and freed with the
	// entry, so steady-state subscription memory stays at the 16-byte
	// waiter records.
	ackIdx map[waiterKey]int
	// entrants guards duplicate joins: the common path (new member) is
	// one O(log n) set insert; only a repeated member pays the linear
	// waiter scan to distinguish a retry from a new request.
	entrants aggstate.Set
}

// GroupProxy is the shared proxy of one (server, topic) pair in one
// cell. Like Proxy it lives inside its hosting MSSNode.
type GroupProxy struct {
	id     ids.ProxyID
	host   *MSSNode
	server ids.Server
	topic  uint32

	// members is the append-only subscriber population (see file
	// comment); memberLoc records only the members whose current respMss
	// is NOT the hosting station — in the common case (subscribers in
	// the group's own cell) it stays empty.
	members   aggstate.Set
	memberLoc map[ids.MH]ids.MSS

	entries    map[dcache.Key]*sharedEntry
	entryOrder []dcache.Key // insertion order; keeps iteration deterministic
	createdAt  sim.Time
}

// sharedGroupFor returns the group proxy serving (server, payload) in
// this cell, creating it on first use — or nil when aggregation is off
// or the deployment's topic classifier declines the request.
func (n *MSSNode) sharedGroupFor(server ids.Server, payload []byte) *GroupProxy {
	if !n.w.cfg.AggregatedState || n.w.cfg.GroupTopic == nil {
		return nil
	}
	topic, ok := n.w.cfg.GroupTopic(server, payload)
	if !ok {
		return nil
	}
	key := groupKey{server: server, topic: topic}
	if seq, ok := n.topicProxies[key]; ok {
		return n.groupProxies[seq]
	}
	// Group proxies draw from the same persistent sequence counter as
	// per-request proxies, so identifiers stay unique across crashes.
	n.nextProxySeq++
	n.persistSeq()
	id := ids.ProxyID{Host: n.id, Seq: sharedProxyBit | n.nextProxySeq}
	g := &GroupProxy{
		id:        id,
		host:      n,
		server:    server,
		topic:     topic,
		memberLoc: make(map[ids.MH]ids.MSS),
		entries:   make(map[dcache.Key]*sharedEntry),
		createdAt: n.w.Kernel.Now(),
	}
	n.groupProxies[id.Seq] = g
	n.topicProxies[key] = id.Seq
	n.w.Stats.SharedProxies.Inc()
	n.persistGroup(g)
	return g
}

// ID returns the group proxy identifier.
func (g *GroupProxy) ID() ids.ProxyID { return g.id }

// Members returns the subscriber population size (append-only; see
// file comment).
func (g *GroupProxy) Members() int { return g.members.Len() }

// join subscribes mh (whose current respMss is loc) to the entry for
// (server, payload), creating the entry — and its single server
// round-trip — on first subscription.
func (g *GroupProxy) join(mh ids.MH, loc ids.MSS, req ids.RequestID, server ids.Server, payload []byte, inc ids.Incarnation) {
	g.members.Add(uint32(mh))
	if loc == g.host.id {
		delete(g.memberLoc, mh)
	} else {
		g.memberLoc[mh] = loc
	}
	g.host.w.Stats.SharedJoins.Inc()
	key := dcache.Key{Server: server, Digest: dcache.Digest(payload)}
	e := g.entries[key]
	if e == nil {
		e = &sharedEntry{server: server, payload: payload, leaderReq: req}
		g.entries[key] = e
		g.entryOrder = append(g.entryOrder, key)
		if result, ok := g.host.cacheLookup(server, payload); ok {
			e.result, e.hasResult = result, true
		} else {
			g.host.sendWired(server.Node(),
				msg.ServerRequest{Proxy: g.id, Req: req, Payload: payload})
		}
	} else if !e.entrants.Contains(uint32(mh)) {
		// fresh member of an existing entry: falls through to append
	} else if i := e.waiterIndex(mh, req.Seq); i >= 0 {
		// Same (mh, seq): a retry. Incarnation arbitration mirrors
		// Proxy.addRequest — older is a ghost, newer reuses the
		// identifier for a brand-new request of the reborn host.
		w := &e.waiters[i]
		if incLess(inc, w.inc) {
			g.host.w.Stats.StaleIncarnationDrops.Inc()
			return
		}
		if incLess(w.inc, inc) {
			w.inc = inc
			if w.acked {
				w.acked = false
				e.unacked++
			}
			w.forwarded = false
		}
		if e.hasResult && !w.acked {
			g.forward(e, i)
		}
		g.host.persistGroup(g)
		return
	}
	e.entrants.Add(uint32(mh))
	e.waiters = append(e.waiters, sharedWaiter{mh: mh, seq: req.Seq, inc: inc})
	e.unacked++
	i := len(e.waiters) - 1
	if e.ackIdx != nil {
		e.ackIdx[waiterKey{mh: mh, seq: req.Seq}] = i
	}
	if e.hasResult {
		g.forward(e, i)
	}
	g.host.persistGroup(g)
}

// waiterIndex finds the waiter for (mh, seq), or -1. Only reached on
// the duplicate-join path (entrants already contains mh).
func (e *sharedEntry) waiterIndex(mh ids.MH, seq uint32) int {
	if e.ackIdx != nil {
		if i, ok := e.ackIdx[waiterKey{mh: mh, seq: seq}]; ok {
			return i
		}
		return -1
	}
	for i := range e.waiters {
		if e.waiters[i].mh == mh && e.waiters[i].seq == seq {
			return i
		}
	}
	return -1
}

// forward sends the entry's result to one waiter's current respMss.
// DelPref never rides along: shared prefs are permanent (file comment).
func (g *GroupProxy) forward(e *sharedEntry, i int) {
	w := &e.waiters[i]
	if w.forwarded {
		g.host.w.Stats.Retransmissions.Inc()
	}
	w.forwarded = true
	loc, ok := g.memberLoc[w.mh]
	if !ok {
		loc = g.host.id
	}
	g.host.w.Stats.GroupFanouts.Inc()
	g.host.w.Stats.ResultForwards[g.host.id]++
	g.host.sendToStation(loc, msg.ResultForward{
		Proxy:   g.id,
		MH:      w.mh,
		Req:     ids.RequestID{Origin: w.mh, Seq: w.seq},
		Payload: e.result,
		Inc:     w.inc,
	})
}

// onServerResult stores the single server reply and fans it out to
// every waiting member.
func (g *GroupProxy) onServerResult(req ids.RequestID, payload []byte) {
	var e *sharedEntry
	for _, key := range g.entryOrder {
		if cand := g.entries[key]; cand != nil && cand.leaderReq == req {
			e = cand
			break
		}
	}
	if e == nil {
		g.host.w.Stats.OrphanMessages.Inc()
		return
	}
	if e.hasResult {
		return // duplicate server reply; the stored copy wins
	}
	e.result = payload
	e.hasResult = true
	g.host.cacheStore(e.server, e.payload, payload)
	e.ackIdx = make(map[waiterKey]int, len(e.waiters))
	for i := range e.waiters {
		e.ackIdx[waiterKey{mh: e.waiters[i].mh, seq: e.waiters[i].seq}] = i
	}
	g.host.persistGroup(g)
	for i := range e.waiters {
		if !e.waiters[i].acked {
			g.forward(e, i)
		}
	}
}

// ack completes one member's request; the entry is retired when the
// last member has acknowledged.
func (g *GroupProxy) ack(mh ids.MH, seq uint32) {
	for _, key := range g.entryOrder {
		e := g.entries[key]
		if e == nil || e.ackIdx == nil {
			continue
		}
		i, ok := e.ackIdx[waiterKey{mh: mh, seq: seq}]
		if !ok {
			continue
		}
		if e.waiters[i].acked {
			return // duplicate ack; ignore like Proxy.onAck
		}
		e.waiters[i].acked = true
		e.unacked--
		if e.unacked == 0 {
			g.completeEntry(key, e)
		} else {
			g.host.persistGroup(g)
		}
		return
	}
	// Ack for an already-retired entry (duplicate after completion).
}

// completeEntry retires a fully-acknowledged entry, freeing its result,
// waiters, ack index and entrants guard in one delete.
func (g *GroupProxy) completeEntry(key dcache.Key, e *sharedEntry) {
	delete(g.entries, key)
	for i, k := range g.entryOrder {
		if k == key {
			g.entryOrder = append(g.entryOrder[:i], g.entryOrder[i+1:]...)
			break
		}
	}
	if g.host.w.cfg.ServerAcks {
		g.host.sendWired(e.server.Node(), msg.ServerAck{Req: e.leaderReq})
		g.host.w.Stats.ServerAcks.Inc()
	}
	g.host.persistGroup(g)
}

// updateLoc applies a (possibly coalesced) hand-off notification: every
// member in moved now sits at newLoc; unacknowledged results they wait
// on are re-sent there (§3.1 semantics, batched).
func (g *GroupProxy) updateLoc(moved *aggstate.Set, newLoc ids.MSS) {
	moved.ForEach(func(v uint32) {
		mh := ids.MH(v)
		g.members.Add(v)
		if newLoc == g.host.id {
			delete(g.memberLoc, mh)
		} else {
			g.memberLoc[mh] = newLoc
		}
	})
	g.host.persistGroup(g)
	for _, key := range g.entryOrder {
		e := g.entries[key]
		if e == nil || !e.hasResult || e.unacked == 0 {
			continue
		}
		for i := range e.waiters {
			if !e.waiters[i].acked && moved.Contains(uint32(e.waiters[i].mh)) {
				g.forward(e, i)
			}
		}
	}
}

// --- Hand-off signaling coalescing ------------------------------------
//
// The respMss side of the optimization: instead of one update_currentLoc
// per (member, hand-off), location changes and forwarded-result acks
// addressed to the same group proxy are buffered for AggFlushDelay and
// shipped as single group messages carrying a delta-encoded member set.
// With AggFlushDelay zero each notification still goes out immediately
// (as a one-member group message) — the aggregation is then purely
// representational.

// groupAckBuf accumulates acks bound for one group proxy. seqs carries
// each member's acked request sequence, aligned at flush time with the
// ascending member iteration order of the set.
type groupAckBuf struct {
	members aggstate.Set
	seqs    map[ids.MH]uint32
}

// announceLoc notifies a proxy of mh's (new or re-confirmed) location:
// the faithful per-host update for private proxies, the buffered group
// path for shared ones.
func (n *MSSNode) announceLoc(proxy ids.ProxyID, mh ids.MH) {
	if !isSharedProxy(proxy) {
		n.sendUpdateCurrLoc(proxy, mh)
		return
	}
	n.bufferGroupLoc(proxy, mh)
}

// bufferGroupLoc enqueues one member location update for proxy.
func (n *MSSNode) bufferGroupLoc(proxy ids.ProxyID, mh ids.MH) {
	if n.w.cfg.AggFlushDelay <= 0 {
		var one aggstate.Set
		one.Add(uint32(mh))
		n.sendGroupLoc(proxy, &one)
		return
	}
	set := n.aggLocBuf[proxy]
	if set == nil {
		set = &aggstate.Set{}
		n.aggLocBuf[proxy] = set
	}
	set.Add(uint32(mh))
	if !n.aggLocArmed {
		n.aggLocArmed = true
		n.w.Kernel.Defer(n.w.cfg.AggFlushDelay, func() {
			if n.w.down[n.id] {
				return
			}
			n.flushGroupLocs()
		})
	}
}

// flushGroupLocs ships every buffered location update, one group
// message per proxy, in deterministic proxy order.
func (n *MSSNode) flushGroupLocs() {
	n.aggLocArmed = false
	for _, proxy := range sortedProxyIDs(n.aggLocBuf) {
		n.sendGroupLoc(proxy, n.aggLocBuf[proxy])
		delete(n.aggLocBuf, proxy)
	}
}

func (n *MSSNode) sendGroupLoc(proxy ids.ProxyID, set *aggstate.Set) {
	n.w.Stats.GroupUpdateLocs.Inc()
	n.sendToStation(proxy.Host, msg.GroupUpdateLoc{
		Proxy:   proxy,
		NewLoc:  n.id,
		Members: set.AppendDelta(nil),
	})
}

// bufferGroupAck enqueues one member's delivery ack for proxy. A member
// acking twice before the flush (two requests completing back-to-back)
// flushes the first batch immediately — the buffer holds one sequence
// per member.
func (n *MSSNode) bufferGroupAck(proxy ids.ProxyID, mh ids.MH, seq uint32) {
	if n.w.cfg.AggFlushDelay <= 0 {
		buf := &groupAckBuf{seqs: map[ids.MH]uint32{mh: seq}}
		buf.members.Add(uint32(mh))
		n.sendGroupAck(proxy, buf)
		return
	}
	buf := n.aggAckBuf[proxy]
	if buf == nil {
		buf = &groupAckBuf{seqs: make(map[ids.MH]uint32)}
		n.aggAckBuf[proxy] = buf
	}
	if _, dup := buf.seqs[mh]; dup {
		n.sendGroupAck(proxy, buf)
		delete(n.aggAckBuf, proxy)
		buf = &groupAckBuf{seqs: make(map[ids.MH]uint32)}
		n.aggAckBuf[proxy] = buf
	}
	buf.members.Add(uint32(mh))
	buf.seqs[mh] = seq
	if !n.aggAckArmed {
		n.aggAckArmed = true
		n.w.Kernel.Defer(n.w.cfg.AggFlushDelay, func() {
			if n.w.down[n.id] {
				return
			}
			n.flushGroupAcks()
		})
	}
}

// flushGroupAcks ships every buffered ack batch in deterministic order.
func (n *MSSNode) flushGroupAcks() {
	n.aggAckArmed = false
	for _, proxy := range sortedProxyIDsAck(n.aggAckBuf) {
		n.sendGroupAck(proxy, n.aggAckBuf[proxy])
		delete(n.aggAckBuf, proxy)
	}
}

func (n *MSSNode) sendGroupAck(proxy ids.ProxyID, buf *groupAckBuf) {
	seqs := make([]uint32, 0, len(buf.seqs))
	buf.members.ForEach(func(v uint32) {
		seqs = append(seqs, buf.seqs[ids.MH(v)])
	})
	n.w.Stats.GroupAckForwards.Inc()
	n.sendToStation(proxy.Host, msg.GroupAckForward{
		Proxy:   proxy,
		Members: buf.members.AppendDelta(nil),
		Seqs:    seqs,
	})
}

func sortedProxyIDs(m map[ids.ProxyID]*aggstate.Set) []ids.ProxyID {
	out := make([]ids.ProxyID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortProxyIDs(out)
	return out
}

func sortedProxyIDsAck(m map[ids.ProxyID]*groupAckBuf) []ids.ProxyID {
	out := make([]ids.ProxyID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sortProxyIDs(out)
	return out
}

func sortProxyIDs(out []ids.ProxyID) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Seq < out[j].Seq
	})
}

// handleGroupUpdateLoc applies a coalesced hand-off notification to a
// hosted group proxy.
func (n *MSSNode) handleGroupUpdateLoc(m msg.GroupUpdateLoc) {
	g := n.groupProxies[m.Proxy.Seq]
	if g == nil || g.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	moved, err := aggstate.DecodeDelta(m.Members)
	if err != nil {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	g.updateLoc(moved, m.NewLoc)
}

// handleGroupAckForward applies a coalesced ack batch to a hosted group
// proxy. Seqs aligns with the ascending iteration of the member set; a
// mismatched pair is rejected whole.
func (n *MSSNode) handleGroupAckForward(m msg.GroupAckForward) {
	g := n.groupProxies[m.Proxy.Seq]
	if g == nil || g.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	set, err := aggstate.DecodeDelta(m.Members)
	if err != nil || set.Len() != len(m.Seqs) {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	i := 0
	set.ForEach(func(v uint32) {
		g.ack(ids.MH(v), m.Seqs[i])
		i++
	})
}
