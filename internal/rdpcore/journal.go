package rdpcore

import (
	"encoding/binary"
	"hash/fnv"
)

// This file implements the checksummed record log used by the
// byte-serialized journals in the stable store (the E17 offline queue
// and the E18 reclaim-memo log). Each record is framed as
//
//	u32 body length | u64 FNV-64a of body | body
//
// so a torn or bit-flipped write is detected on replay: the scan stops
// at the first record whose frame or checksum does not verify and
// discards it together with everything after it (a corrupt prefix
// cannot vouch for its suffix — later records may have been relocated
// by the same failure). Recovery therefore yields the longest verified
// prefix, mirroring how production write-ahead logs truncate at the
// first bad record.

const journalHeaderLen = 4 + 8

// journalAppend frames body as one checksummed record at the end of
// log and returns the grown log.
func journalAppend(log []byte, body []byte) []byte {
	var hdr [journalHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)))
	h := fnv.New64a()
	h.Write(body)
	binary.BigEndian.PutUint64(hdr[4:12], h.Sum64())
	log = append(log, hdr[:]...)
	return append(log, body...)
}

// journalScan walks the log and returns every record body up to (not
// including) the first corrupt or truncated record. The returned bodies
// alias the log. truncated reports whether anything was discarded.
func journalScan(log []byte) (records [][]byte, truncated bool) {
	for len(log) > 0 {
		if len(log) < journalHeaderLen {
			return records, true
		}
		n := int(binary.BigEndian.Uint32(log[0:4]))
		sum := binary.BigEndian.Uint64(log[4:12])
		if n > len(log)-journalHeaderLen {
			return records, true
		}
		body := log[journalHeaderLen : journalHeaderLen+n]
		h := fnv.New64a()
		h.Write(body)
		if h.Sum64() != sum {
			return records, true
		}
		records = append(records, body)
		log = log[journalHeaderLen+n:]
	}
	return records, false
}
