package rdpcore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// soakParams configures one randomized end-to-end run.
type soakParams struct {
	seed            int64
	mhs             int
	cells           int
	loss            float64
	retry           time.Duration
	holdForInactive bool
	procDelay       time.Duration
	inactiveProb    float64
	horizon         time.Duration
	drainFor        time.Duration
}

// soak drives a random world: every MH follows a random itinerary and
// issues Poisson requests during the first part of the horizon, then the
// system drains. It checks global invariants midway and at the end and
// asserts full delivery and zero duplicates/violations (valid under
// causal order and with client retry enabled when loss > 0).
func soak(t *testing.T, p soakParams) *World {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = p.seed
	cfg.NumMSS = p.cells
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Uniform{Lo: time.Millisecond, Hi: 15 * time.Millisecond}
	cfg.WirelessLatency = netsim.Uniform{Lo: 5 * time.Millisecond, Hi: 25 * time.Millisecond}
	cfg.WirelessLoss = p.loss
	cfg.RequestTimeout = p.retry
	cfg.HoldForInactive = p.holdForInactive
	cfg.ProcDelay = p.procDelay
	cfg.ServerProc = netsim.Exponential{MeanDelay: 300 * time.Millisecond, Floor: 20 * time.Millisecond}
	w := NewWorld(cfg)

	cells := w.StationList()
	issueUntil := p.horizon - p.drainFor
	reqs := make(map[ids.MH][]ids.RequestID)

	for i := 1; i <= p.mhs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)

		mob := workload.Mobility{
			Picker:            workload.UniformCells{Cells: cells},
			Residence:         netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 50 * time.Millisecond},
			InactiveProb:      p.inactiveProb,
			InactiveDur:       netsim.Exponential{MeanDelay: 1200 * time.Millisecond, Floor: 100 * time.Millisecond},
			MoveWhileInactive: 0.4,
		}
		// Mobility runs while requests are issued; the drain phase then
		// needs every MH reachable, so an MH left inactive by the tail of
		// its itinerary is woken once at the start of the drain (an MH
		// that stays asleep forever legitimately never gets its results —
		// the guarantee is "eventually", conditioned on reactivation).
		for _, ev := range workload.Itinerary(rng, mob, start, issueUntil) {
			ev := ev
			w.Kernel.After(ev.At, func() {
				switch ev.Kind {
				case workload.EvMigrate:
					w.Migrate(mhID, ev.Cell)
				case workload.EvDeactivate:
					w.SetActive(mhID, false)
				case workload.EvActivate:
					if ev.Cell != w.Location(mhID) {
						w.Migrate(mhID, ev.Cell)
					}
					w.SetActive(mhID, true)
				}
			})
		}
		w.Kernel.After(issueUntil+500*time.Millisecond, func() {
			w.SetActive(mhID, true) // no-op when already active
		})
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 700 * time.Millisecond, Floor: 10 * time.Millisecond},
			Servers:      []ids.Server{1, 2},
			PayloadBytes: 24,
		}
		for _, a := range workload.Schedule(rng, reqCfg, issueUntil) {
			a := a
			w.Kernel.After(a.At, func() {
				reqs[mhID] = append(reqs[mhID], mh.IssueRequest(a.Server, a.Payload))
			})
		}
	}

	// Invariant probes during the run.
	for frac := 1; frac <= 4; frac++ {
		at := p.horizon * time.Duration(frac) / 5
		w.Kernel.After(at, func() {
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("invariants at %v: %v", at, err)
			}
		})
	}

	w.RunUntil(p.horizon)

	if err := w.CheckInvariants(); err != nil {
		t.Errorf("invariants at end: %v", err)
	}
	if got := w.Stats.Violations.Value(); got != 0 && p.loss == 0 {
		// Under reliable wireless the del-proxy condition never fires
		// with genuinely unanswered requests pending. With loss, an MH
		// whose ack vanished can hold a result the proxy still counts as
		// pending, making the (benign) mismatch possible.
		t.Errorf("Violations = %d, want 0 without wireless loss", got)
	}
	// §5 grants exactly-once only conditionally: the ack must reach the
	// old respMss before the hand-off dereg does. With variable wireless
	// latency that race is occasionally lost (the ack is ignored and the
	// proxy retransmits), so a small duplicate rate is expected protocol
	// behaviour — the MH "is able to identify duplicated messages".
	if dup, del := w.Stats.DuplicateDeliveries.Value(), w.Stats.ResultsDelivered.Value(); p.loss == 0 && del > 0 && dup*50 > del {
		t.Errorf("DuplicateDeliveries = %d of %d delivered; expected only the rare ignored-ack race (<2%%)", dup, del)
	}
	missing := 0
	total := 0
	for mhID, rs := range reqs {
		mh := w.MHs[mhID]
		for _, r := range rs {
			total++
			if !mh.Seen(r) {
				missing++
			}
		}
	}
	if total == 0 {
		t.Fatal("soak issued no requests; parameters degenerate")
	}
	if missing != 0 {
		t.Errorf("%d of %d requests undelivered after drain (issued=%d delivered=%d retrans=%d drops=%d)",
			missing, total,
			w.Stats.RequestsIssued.Value(), w.Stats.ResultsDelivered.Value(),
			w.Stats.Retransmissions.Value(), w.Stats.WirelessDrops.Value())
	}
	return w
}

func TestSoakLosslessMobility(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soak(t, soakParams{
				seed:         seed,
				mhs:          12,
				cells:        6,
				inactiveProb: 0.2,
				// No random loss: reliability must come from the protocol
				// alone (no retry shim). Drain must be generous: a result
				// arriving while its MH sleeps waits for reactivation.
				horizon:  50 * time.Second,
				drainFor: 20 * time.Second,
			})
		})
	}
}

func TestSoakWithWirelessLoss(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := soak(t, soakParams{
				seed:         seed + 100,
				mhs:          10,
				cells:        5,
				loss:         0.15,
				retry:        2 * time.Second, // recovers lost acks/results for stationary hosts
				inactiveProb: 0.15,
				horizon:      60 * time.Second,
				drainFor:     25 * time.Second,
			})
			if w.Stats.WirelessDrops.Value() == 0 {
				t.Error("no wireless drops recorded at 15% loss")
			}
		})
	}
}

func TestSoakHoldForInactive(t *testing.T) {
	w := soak(t, soakParams{
		seed:            42,
		mhs:             10,
		cells:           5,
		holdForInactive: true,
		inactiveProb:    0.35,
		horizon:         50 * time.Second,
		drainFor:        20 * time.Second,
	})
	if w.Stats.HeldResults.Value() == 0 {
		t.Error("hold-for-inactive optimization never triggered despite 35% inactivity")
	}
}

func TestSoakWithProcessingDelay(t *testing.T) {
	soak(t, soakParams{
		seed:         7,
		mhs:          8,
		cells:        5,
		procDelay:    2 * time.Millisecond,
		inactiveProb: 0.2,
		horizon:      40 * time.Second,
		drainFor:     15 * time.Second,
	})
}

func TestSoakPingPong(t *testing.T) {
	// Adversarial hand-off churn: two MHs bouncing between two cells
	// every ~60ms, well below the wired+wireless round trip.
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.NumMSS = 2
	cfg.WiredLatency = netsim.Constant(10 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(15 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(200 * time.Millisecond)
	w := NewWorld(cfg)

	var reqs []ids.RequestID
	mh := w.AddMH(1, 1)
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 60 * time.Millisecond
		cell := ids.MSS(i%2 + 1)
		w.Kernel.After(at, func() { w.Migrate(1, cell) })
	}
	for i := 0; i < 10; i++ {
		at := time.Duration(i) * 250 * time.Millisecond
		w.Kernel.After(at, func() { reqs = append(reqs, mh.IssueRequest(1, []byte("pp"))) })
	}
	w.RunUntil(30 * time.Second)

	for _, r := range reqs {
		if !mh.Seen(r) {
			t.Errorf("%v undelivered under ping-pong churn", r)
		}
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("Violations = %d, want 0", got)
	}
	if w.Stats.Retransmissions.Value() == 0 {
		t.Error("ping-pong below the §5 threshold should force retransmissions")
	}
	// Exactly-once holds only when the MH "stays in its cell for a
	// sufficiently long period" (§5); ping-pong below the round-trip time
	// deliberately breaks that premise, so duplicates may occur — but
	// they must be *detected* (assumption 5), which is what the counter
	// records. Only a runaway duplicate storm would be a bug.
	if dup := w.Stats.DuplicateDeliveries.Value(); dup > int64(len(reqs)) {
		t.Errorf("DuplicateDeliveries = %d for %d requests; duplicate storm", dup, len(reqs))
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSoakDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		w := soak(t, soakParams{
			seed:         11,
			mhs:          6,
			cells:        4,
			inactiveProb: 0.25,
			horizon:      30 * time.Second,
			drainFor:     12 * time.Second,
		})
		return w.Stats.RequestsIssued.Value(), w.Stats.Retransmissions.Value(), w.Stats.Handoffs.Value()
	}
	i1, r1, h1 := run()
	i2, r2, h2 := run()
	if i1 != i2 || r1 != r2 || h1 != h2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", i1, r1, h1, i2, r2, h2)
	}
}
