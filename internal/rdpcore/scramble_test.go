package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
)

// These tests pin down, as deterministic unit scenarios, the two greet
// re-ordering races originally found by TestRandomOpSequences: greets
// sent over different radio links can arrive out of order, letting a
// hand-off chain reach a station before the greet that explains it.

// TestDeregOvertakesGreetKeepsPref reconstructs the seed-7 scramble:
// the MH migrates A(mss1) -> B(mss2) -> C(mss3) so fast that C's dereg
// reaches B before the MH's greet to B does. B must park the dereg (not
// answer with a fabricated empty pref) so the real proxy reference is
// preserved when its own hand-off completes.
func TestDeregOvertakesGreetKeepsPref(t *testing.T) {
	w := edgeWorld()
	mh := w.AddMH(7, 1)
	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(50 * time.Millisecond) // request answered; pref history at mss1

	// Re-issue so a live proxy exists at mss1 during the scramble.
	cfg := w.Config()
	_ = cfg
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("y")) })
	w.RunUntil(52 * time.Millisecond) // request in flight: proxy pending at mss1

	mss2, mss3 := w.MSSs[2], w.MSSs[3]
	// Scramble: C (mss3) learns of the MH first. It received
	// greet(old=mss2) and deregs mss2 — which knows nothing yet. The MH
	// itself is already in cell 3 and believes in mss3 (it sent both
	// greets; only their arrivals are reordered).
	w.loc[7] = 3
	mh.respMss = 3
	mss3.process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 2})
	w.RunUntil(60 * time.Millisecond)
	if w.MSSs[3].Responsible(7) {
		t.Fatal("mss3 registered from a fabricated pref; dereg should be parked at mss2")
	}
	// Now the delayed greet to B (mss2) lands; B hands off from A,
	// registers with the real pref, and serves the parked dereg — the
	// registration (and pref) chain A -> B -> C completes.
	mss2.process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	w.RunUntil(200 * time.Millisecond)

	if !mss3.Responsible(7) {
		t.Fatal("mss3 not registered after the chain settled")
	}
	// Two proxies were created across the two requests; the scramble
	// must not have fabricated a third.
	if got := w.Stats.ProxiesCreated.Value(); got != 2 {
		t.Errorf("ProxiesCreated = %d, want 2 (no fabricated extra proxy)", got)
	}
	w.RunUntil(2 * time.Second)
	if !mh.Seen(req) {
		t.Error("in-flight result lost across the scrambled hand-off chain")
	}
	// The completed request retired its proxy through the scrambled
	// chain: the pref survives the chain and ends empty.
	if pref, ok := mss3.PrefOf(7); !ok || pref.HasProxy() {
		t.Errorf("pref at mss3 = %v,%t; want present and retired", pref, ok)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestReactivationFetchesDriftedRegistration reconstructs the seed-5
// aftermath: the registration drifted to a station (mss2) other than
// the one the MH believes in (mss1). A reactivation greet at mss1 must
// fetch the registration back through the forwarding pointer instead of
// fabricating a fresh one.
func TestReactivationFetchesDriftedRegistration(t *testing.T) {
	w := edgeWorld()
	mh := w.AddMH(7, 1)
	w.RunUntil(20 * time.Millisecond)

	// Issue a request whose result will strand at the drifted station.
	cfgServerSlow(w)
	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(30 * time.Millisecond)

	// Force the drift: mss2 deregs mss1 directly (as a scrambled chain
	// would), so mss2 becomes responsible while the MH still believes in
	// mss1.
	w.MSSs[2].process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	w.RunUntil(100 * time.Millisecond)
	if !w.MSSs[2].Responsible(7) || w.MSSs[1].Responsible(7) {
		t.Fatal("setup failed: registration did not drift to mss2")
	}
	// The MH (physically in cell 1, believing respMss=mss1) reactivates.
	w.MSSs[1].process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	w.RunUntil(3 * time.Second)

	if !w.MSSs[1].Responsible(7) {
		t.Fatal("reactivation did not fetch the drifted registration back")
	}
	if w.MSSs[2].Responsible(7) {
		t.Error("mss2 still responsible after the fetch-back")
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1", got)
	}
	if !mh.Seen(req) {
		t.Error("stranded result not delivered after the fetch-back")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// cfgServerSlow makes in-flight results linger long enough for the
// scramble scenarios to race them (test helper mutating the live world's
// server processing model is not possible; instead we rely on the
// default 50ms processing of edgeWorld — this helper documents intent).
func cfgServerSlow(*World) {}

// TestGreetRefreshRecoversStrandedResult verifies Config.GreetRefresh:
// with periodic registration refresh, even an MH that never migrates or
// sleeps again recovers results stranded by a drifted registration.
func TestGreetRefreshRecoversStrandedResult(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(time.Millisecond)
	cfg.ServerProc = netsim.Constant(50 * time.Millisecond)
	cfg.GreetRefresh = 500 * time.Millisecond
	w := NewWorld(cfg)
	mh := w.AddMH(7, 1)
	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	// Drift the registration away while the request is being served; the
	// MH stays put and issues nothing else.
	w.Schedule(10*time.Millisecond, func() {
		w.MSSs[2].process(ids.MH(7).Node(), msg.Greet{MH: 7, OldMSS: 1})
	})
	w.RunUntil(5 * time.Second)
	if !mh.Seen(req) {
		t.Fatal("refresh beacons did not recover the stranded result")
	}
	if !w.MSSs[1].Responsible(7) {
		t.Error("registration not reconciled to the MH's actual cell")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
