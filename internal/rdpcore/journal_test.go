package rdpcore

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestJournalScanTruncatesAtFirstCorruptRecord(t *testing.T) {
	var log []byte
	for _, b := range []string{"alpha", "beta", "gamma"} {
		log = journalAppend(log, []byte(b))
	}
	recs, trunc := journalScan(log)
	if trunc || len(recs) != 3 {
		t.Fatalf("pristine scan: %d records, truncated=%v", len(recs), trunc)
	}
	if string(recs[0]) != "alpha" || string(recs[2]) != "gamma" {
		t.Fatalf("bodies corrupted on the happy path: %q", recs)
	}

	// A bit flip inside the second record's body must truncate the scan
	// to the first record: the corrupt record AND everything after it
	// are discarded (a bad prefix cannot vouch for its suffix).
	bad := append([]byte(nil), log...)
	bad[journalHeaderLen+len("alpha")+journalHeaderLen+1] ^= 0xff
	recs, trunc = journalScan(bad)
	if !trunc {
		t.Error("bit flip not detected")
	}
	if len(recs) != 1 || string(recs[0]) != "alpha" {
		t.Errorf("scan after bit flip = %q, want just alpha", recs)
	}

	// A torn tail (write cut off mid-record) keeps every whole record.
	recs, trunc = journalScan(log[: len(log)-3 : len(log)-3])
	if !trunc || len(recs) != 2 {
		t.Errorf("torn tail: %d records, truncated=%v; want 2, true", len(recs), trunc)
	}

	// A corrupt length field cannot read past the log.
	bad = append([]byte(nil), log...)
	binary.BigEndian.PutUint32(bad[0:4], 1<<30)
	recs, trunc = journalScan(bad)
	if !trunc || len(recs) != 0 {
		t.Errorf("huge length field: %d records, truncated=%v; want 0, true", len(recs), trunc)
	}
}

// TestOfflineJournalCorruptionRecoversVerifiedPrefix is the end-to-end
// regression for the checksummed stable store: an MH journals five
// offline requests, a byte of the third record is flipped in "flash",
// and the reboot replay must recover exactly the two verified records —
// counting one truncation — instead of resurrecting garbage or wedging.
func TestOfflineJournalCorruptionRecoversVerifiedPrefix(t *testing.T) {
	cfg := recoveryConfig(1)
	w := NewWorld(cfg)
	mhID := ids.MH(1)
	mh := w.AddMH(mhID, 1)
	w.RunUntil(200 * time.Millisecond)

	w.Disconnect(mhID)
	for i := 0; i < 5; i++ {
		mh.IssueRequest(1, []byte{byte(i)})
	}
	log := w.store.offline[mhID]
	if len(log) == 0 {
		t.Fatal("offline journal empty after disconnected issues")
	}

	// Flip the first body byte of the third record.
	off := 0
	for i := 0; i < 2; i++ {
		off += journalHeaderLen + int(binary.BigEndian.Uint32(log[off:off+4]))
	}
	log[off+journalHeaderLen] ^= 0x01

	w.CrashMH(mhID)
	w.RestartMH(mhID)

	if got := w.Stats.JournalTruncations.Value(); got != 1 {
		t.Errorf("JournalTruncations = %d, want 1", got)
	}
	// The verified prefix is two records; both were issued by the dead
	// incarnation, so the reboot filter discards them — but it must see
	// exactly those two, nothing corrupt, nothing past the corruption.
	if got := w.Stats.OfflineDroppedStale.Value(); got != 2 {
		t.Errorf("OfflineDroppedStale = %d, want 2 (the verified prefix)", got)
	}
	if rest := w.store.offline[mhID]; len(rest) != 0 {
		t.Errorf("store still holds %d journal bytes after reboot drained it", len(rest))
	}
}
