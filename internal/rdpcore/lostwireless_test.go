package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// TestResultLostToSameTickMigration loses a ResultDeliver to a migration
// racing its wireless flight: the result leaves mss1's radio while the
// MH is still in cell 1 but the MH has entered cell 2 by delivery time.
// The drop must be classified "unreachable" (satellite of the
// EventDropped split), and the hand-off must recover the result: dereg →
// deregack → update_currentLoc → re-forwarded result at the new station.
func TestResultLostToSameTickMigration(t *testing.T) {
	rec := trace.New()
	cfg := DefaultConfig() // constant 5ms/20ms/150ms timings
	cfg.Observer = rec.Observe
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("race")) })
	// Result timeline: uplink 20ms, server 25ms, +150ms processing, reply
	// back at 180ms, ResultDeliver in flight 180→200ms. Migrating at
	// 190ms puts the MH in cell 2 before the frame lands.
	w.Schedule(190*time.Millisecond, func() { w.Migrate(1, 2) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result not recovered by the hand-off after the in-flight loss")
	}
	var unreachableDrops int
	for _, e := range rec.Drops() {
		if e.Msg.Kind() == msg.KindResultDeliver {
			if e.Kind != netsim.EventDroppedUnreachable {
				t.Errorf("ResultDeliver drop classified %v, want dropped-unreachable", e.Kind)
			}
			unreachableDrops++
		}
	}
	if unreachableDrops != 1 {
		t.Errorf("ResultDeliver drops = %d, want exactly 1\n%s", unreachableDrops, rec.String())
	}
	mss1, mss2 := ids.MSS(1).Node(), ids.MSS(2).Node()
	if err := rec.ExpectSequence([]trace.Step{
		{Kind: msg.KindGreet, To: mss2, Note: "MH greets the new station"},
		{Kind: msg.KindDereg, From: mss2, To: mss1, Note: "hand-off starts"},
		{Kind: msg.KindDeregAck, From: mss1, To: mss2, Note: "pref transferred"},
		{Kind: msg.KindUpdateCurrentLoc, From: mss2, To: mss1, Note: "proxy learns the new location"},
		{Kind: msg.KindResultForward, From: mss1, To: mss2, Note: "stored result re-forwarded"},
		{Kind: msg.KindResultDeliver, From: mss2, Note: "delivery at the new cell"},
		{Kind: msg.KindAckMH, To: mss2, Note: "MH acknowledges"},
	}); err != nil {
		t.Error(err)
	}
	if got := w.Stats.Retransmissions.Value(); got != 1 {
		t.Errorf("Retransmissions = %d, want 1 (the recovery re-forward)", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0 (first copy never arrived)", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestAckLostAfterDelivery loses the MH's AckMH after a successful
// delivery: the proxy still counts the request as pending, so the next
// update_currentLoc (here a manual registration refresh) must make it
// re-send the stored result; the MH detects the duplicate and re-acks.
func TestAckLostAfterDelivery(t *testing.T) {
	rec := trace.New()
	cfg := DefaultConfig()
	cfg.Observer = rec.Observe
	acksDropped := 0
	cfg.WirelessDropFilter = func(from, to ids.NodeID, m msg.Message) bool {
		if m.Kind() == msg.KindAckMH && acksDropped == 0 {
			acksDropped++
			return true
		}
		return false
	}
	w := NewWorld(cfg)
	mh := w.AddMH(1, 1)

	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("lost-ack")) })
	// Delivery (and the doomed ack) happen at 200ms; refresh well after.
	w.Schedule(time.Second, func() { w.Refresh(1) })
	w.RunUntil(3 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result never delivered")
	}
	if acksDropped != 1 {
		t.Fatalf("filter dropped %d acks, want 1", acksDropped)
	}
	var ackDrops int
	for _, e := range rec.Drops() {
		if e.Msg.Kind() == msg.KindAckMH {
			if e.Kind != netsim.EventDroppedLoss {
				t.Errorf("AckMH drop classified %v, want dropped-loss", e.Kind)
			}
			ackDrops++
		}
	}
	if ackDrops != 1 {
		t.Errorf("AckMH drops in trace = %d, want 1", ackDrops)
	}
	mss1 := ids.MSS(1).Node()
	if err := rec.ExpectSequence([]trace.Step{
		{Kind: msg.KindResultDeliver, From: mss1, Note: "first delivery (ack will be lost)"},
		{Kind: msg.KindGreet, To: mss1, Note: "registration refresh"},
		{Kind: msg.KindResultDeliver, From: mss1, Note: "proxy re-sends on update_currentLoc"},
		{Kind: msg.KindAckMH, To: mss1, Note: "duplicate detected and re-acked"},
	}); err != nil {
		t.Error(err)
	}
	if got := w.Stats.Retransmissions.Value(); got != 1 {
		t.Errorf("Retransmissions = %d, want 1", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 1 {
		t.Errorf("DuplicateDeliveries = %d, want 1 (the re-sent copy)", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}
