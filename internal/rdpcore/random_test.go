package rdpcore

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestRandomOpSequences drives worlds with randomly generated operation
// sequences — joins, migrations, activity flips, requests, clean leaves
// — and checks the protocol's global properties after a drain:
//
//  1. cross-node invariants hold at checkpoints and at the end;
//  2. no protocol violations;
//  3. every request issued by a host that is present and awake at the
//     end was answered;
//  4. identical seeds produce identical statistics (determinism).
//
// This is schedule-space fuzzing on top of the scenario tests: the
// operations land at arbitrary instants relative to one another, probing
// interleavings no hand-written test enumerates.
func TestRandomOpSequences(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runRandomOps(t, seed)
			second := runRandomOps(t, seed)
			if first != second {
				t.Errorf("determinism broken:\n%v\nvs\n%v", first, second)
			}
		})
	}
}

// opCounters summarizes one run for the determinism check.
type opCounters struct {
	issued, delivered, dups, retrans, handoffs int64
}

func runRandomOps(t *testing.T, seed int64) opCounters {
	w := runRandomOpsDebug(t, seed)
	return opCounters{
		issued:    w.Stats.RequestsIssued.Value(),
		delivered: w.Stats.ResultsDelivered.Value(),
		dups:      w.Stats.DuplicateDeliveries.Value(),
		retrans:   w.Stats.Retransmissions.Value(),
		handoffs:  w.Stats.Handoffs.Value(),
	}
}

func runRandomOpsDebug(t *testing.T, seed int64) *World {
	t.Helper()
	const (
		cells   = 5
		hosts   = 8
		horizon = 20 * time.Second
		drain   = 15 * time.Second
	)
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = cells
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Uniform{Lo: time.Millisecond, Hi: 12 * time.Millisecond}
	cfg.WirelessLatency = netsim.Uniform{Lo: 4 * time.Millisecond, Hi: 22 * time.Millisecond}
	cfg.ServerProc = netsim.Exponential{MeanDelay: 250 * time.Millisecond, Floor: 10 * time.Millisecond}
	// Registration-refresh beacons give recovery liveness even when
	// greets reorder across radio links (see Config.GreetRefresh).
	cfg.GreetRefresh = 2 * time.Second
	w := NewWorld(cfg)
	rng := sim.NewRNG(seed * 7717)

	type hostState struct {
		mh     *MHNode
		reqs   []ids.RequestID
		gone   bool // left the system
		asleep bool
	}
	states := make(map[ids.MH]*hostState, hosts)
	for i := 1; i <= hosts; i++ {
		id := ids.MH(i)
		states[id] = &hostState{mh: w.AddMH(id, ids.MSS(rng.Intn(cells)+1))}
	}

	// Generate a random op schedule. Ops are pre-scheduled (the schedule
	// itself is independent of execution, keeping runs reproducible).
	nOps := 300 + rng.Intn(200)
	for i := 0; i < nOps; i++ {
		at := time.Duration(rng.Int63() % int64(horizon))
		id := ids.MH(rng.Intn(hosts) + 1)
		st := states[id]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // migrate
			cell := ids.MSS(rng.Intn(cells) + 1)
			w.Schedule(at, func() {
				if !st.gone {
					w.Migrate(id, cell)
				}
			})
		case 4: // deactivate
			w.Schedule(at, func() {
				if !st.gone {
					st.asleep = true
					w.SetActive(id, false)
				}
			})
		case 5: // activate
			w.Schedule(at, func() {
				if !st.gone {
					st.asleep = false
					w.SetActive(id, true)
				}
			})
		default: // issue a request
			srv := ids.Server(rng.Intn(2) + 1)
			w.Schedule(at, func() {
				if !st.gone {
					st.reqs = append(st.reqs, st.mh.IssueRequest(srv, []byte("r")))
				}
			})
		}
	}
	// One host leaves cleanly mid-run: wait until it has no unanswered
	// requests, then leave (assumption 6).
	leaver := ids.MH(rng.Intn(hosts) + 1)
	var tryLeave func()
	tryLeave = func() {
		st := states[leaver]
		if st.gone {
			return
		}
		for _, r := range st.reqs {
			if !st.mh.Seen(r) {
				w.Schedule(500*time.Millisecond, tryLeave)
				return
			}
		}
		if !w.IsActive(leaver) {
			w.SetActive(leaver, true)
		}
		st.gone = true
		w.Leave(leaver)
	}
	w.Schedule(horizon+time.Second, tryLeave)

	// Invariant checkpoints while the system is hot.
	for i := 1; i <= 4; i++ {
		at := horizon * time.Duration(i) / 5
		w.Schedule(at, func() {
			if err := w.CheckInvariants(); err != nil {
				t.Errorf("seed %d: invariants at %v: %v", seed, at, err)
			}
		})
	}
	// Wake everyone for the drain so pending results can deliver.
	for i := 1; i <= hosts; i++ {
		id := ids.MH(i)
		st := states[id]
		w.Schedule(horizon+500*time.Millisecond, func() {
			if !st.gone {
				st.asleep = false
				w.SetActive(id, true)
			}
		})
	}

	w.RunUntil(horizon + drain)

	if err := w.CheckInvariants(); err != nil {
		t.Errorf("seed %d: invariants at end: %v", seed, err)
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("seed %d: Violations = %d, want 0", seed, got)
	}
	for id, st := range states {
		if st.gone {
			continue
		}
		for _, r := range st.reqs {
			if !st.mh.Seen(r) {
				t.Errorf("seed %d: %v never received result of %v", seed, id, r)
			}
		}
	}
	return w
}
