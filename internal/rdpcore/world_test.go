package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// quickWorld builds a small world with constant latencies and the given
// overrides applied.
func quickWorld(mutate func(*Config)) *World {
	cfg := DefaultConfig()
	cfg.NumMSS = 4
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(50 * time.Millisecond)
	if mutate != nil {
		mutate(&cfg)
	}
	return NewWorld(cfg)
}

func TestSingleRequestNoMigration(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("hello")) })
	w.RunUntil(time.Second)

	if !mh.Seen(req) {
		t.Fatal("result not delivered")
	}
	if got := w.Stats.Retransmissions.Value(); got != 0 {
		t.Errorf("Retransmissions = %d, want 0 for a stationary MH", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("proxy not deleted after the only result was acked: %d", got)
	}
	if got := w.Stats.UpdateCurrLocs.Value(); got != 0 {
		t.Errorf("UpdateCurrLocs = %d, want 0 without migrations", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestResultEchoPayload(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var got []byte
	mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) { got = payload })
	w.Kernel.After(0, func() { mh.IssueRequest(1, []byte("ping")) })
	w.RunUntil(time.Second)
	if string(got) != "re:ping" {
		t.Errorf("result payload = %q, want %q", got, "re:ping")
	}
}

func TestDeliveryAcrossManyMigrations(t *testing.T) {
	// The headline guarantee: "eventually every result will be delivered
	// to the requesting MH despite any number of migrations".
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(400 * time.Millisecond) })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	// Migrate every 30ms across all four cells while the server thinks.
	for i := 1; i <= 20; i++ {
		cell := ids.MSS(i%4 + 1)
		w.Kernel.After(time.Duration(i)*30*time.Millisecond, func() { w.Migrate(1, cell) })
	}
	w.RunUntil(3 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result lost despite guaranteed delivery")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0 under causal order", got)
	}
	if got := w.Stats.Handoffs.Value(); got != 20 {
		t.Errorf("Handoffs = %d, want 20", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInactivityDelaysDelivery(t *testing.T) {
	// MH goes inactive before the result arrives; the wireless forward is
	// lost. On reactivation in the same cell the greet triggers an
	// update_currentLoc and the proxy retransmits (§3.2, §5).
	w := quickWorld(nil)
	mh := w.AddMH(1, 2)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.Kernel.After(30*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(500*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result not delivered after reactivation")
	}
	if got := w.Stats.Reactivations.Value(); got != 1 {
		t.Errorf("Reactivations = %d, want 1", got)
	}
	if got := w.Stats.Retransmissions.Value(); got != 1 {
		t.Errorf("Retransmissions = %d, want 1 (first attempt hit an inactive MH)", got)
	}
	if got := w.Stats.WirelessDrops.Value(); got == 0 {
		t.Error("expected the first delivery attempt to be dropped")
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("proxy not retired: %d", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHoldForInactiveOptimization(t *testing.T) {
	// §5 footnote 3: if the MSS can detect the MH is inactive it may keep
	// the result, avoiding the proxy retransmission entirely.
	w := quickWorld(func(c *Config) { c.HoldForInactive = true })
	mh := w.AddMH(1, 2)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.Kernel.After(30*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(500*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("held result not delivered on reactivation")
	}
	if got := w.Stats.HeldResults.Value(); got != 1 {
		t.Errorf("HeldResults = %d, want 1", got)
	}
	if got := w.Stats.Retransmissions.Value(); got != 0 {
		t.Errorf("Retransmissions = %d, want 0 with the hold optimization", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRequestIssuedWhileInactiveIsQueued(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { w.SetActive(1, false) })
	w.Kernel.After(10*time.Millisecond, func() { req = mh.IssueRequest(1, []byte("q")) })
	w.Kernel.After(300*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(2 * time.Second)
	if !mh.Seen(req) {
		t.Fatal("queued request not answered after activation")
	}
}

func TestWakeUpInDifferentCell(t *testing.T) {
	// The MH deactivates, is carried to another cell, and wakes up there:
	// the greet names the old station, so a full hand-off runs (§2).
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(300 * time.Millisecond) })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.Kernel.After(20*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(40*time.Millisecond, func() { w.Migrate(1, 3) }) // carried while asleep
	w.Kernel.After(600*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(3 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result not delivered after waking in a new cell")
	}
	if got := w.Stats.Handoffs.Value(); got != 1 {
		t.Errorf("Handoffs = %d, want 1", got)
	}
	if got := w.Stats.Reactivations.Value(); got != 0 {
		t.Errorf("Reactivations = %d, want 0 (wake-up was in a new cell)", got)
	}
	if !w.MSSs[3].Responsible(1) {
		t.Error("mss3 should be responsible after the wake-up hand-off")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestExactlyOnceUnderCausalOrder(t *testing.T) {
	// §5: with causal wired delivery (and reliable wireless), delivery is
	// exactly-once even when the MH acks and immediately migrates. Without
	// the causal layer the update_currentLoc can overtake the forwarded
	// Ack and cause duplicates. Run the same adversarial schedule both
	// ways and compare.
	type outcome struct {
		delivered, duplicates, violations int64
	}
	run := func(causal bool) outcome {
		w := quickWorld(func(c *Config) {
			c.Causal = causal
			c.NumMSS = 6
			// High-variance wired latency creates overtaking opportunities.
			c.WiredLatency = netsim.Uniform{Lo: time.Millisecond, Hi: 40 * time.Millisecond}
			c.ServerProc = netsim.Constant(30 * time.Millisecond)
			c.Seed = 77
		})
		mh := w.AddMH(1, 1)
		// After every result delivery, migrate immediately: the Ack and
		// the hand-off race through the wired network.
		next := ids.MSS(2)
		mh.OnResult(func(ids.RequestID, []byte, bool) {
			cell := next
			next = next%6 + 1
			w.Kernel.After(100*time.Microsecond, func() { w.Migrate(1, cell) })
		})
		issue := func() { mh.IssueRequest(1, []byte("x")) }
		for i := 0; i < 400; i++ {
			w.Kernel.After(time.Duration(i)*120*time.Millisecond, issue)
		}
		w.RunUntil(2 * time.Minute)
		if err := w.CheckInvariants(); err != nil && causal {
			t.Errorf("causal run violated invariants: %v", err)
		}
		return outcome{
			delivered:  w.Stats.ResultsDelivered.Value(),
			duplicates: w.Stats.DuplicateDeliveries.Value(),
			violations: w.Stats.Violations.Value(),
		}
	}

	causal := run(true)
	if causal.delivered != 400 {
		t.Errorf("causal: delivered %d of 400", causal.delivered)
	}
	if causal.duplicates != 0 {
		t.Errorf("duplicates under causal order = %d, want 0", causal.duplicates)
	}
	if causal.violations != 0 {
		t.Errorf("violations under causal order = %d, want 0", causal.violations)
	}
	// Without assumption 1 the §5 exactly-once argument collapses: the
	// update_currentLoc can overtake the forwarded Ack (duplicates), and
	// a late del-pref can even let the proxy die with a pending request
	// (losses / violations). Any of these anomalies demonstrates the
	// dependence.
	ablation := run(false)
	anomalies := ablation.duplicates + ablation.violations + (400 - ablation.delivered)
	if anomalies == 0 {
		t.Error("ablation produced no anomalies; the adversarial schedule is not exercising the race")
	}
}

func TestAckPriorityReducesIgnoredAcks(t *testing.T) {
	// §3.1: with per-message processing delay, giving Acks priority over
	// hand-off work means an Ack queued behind a Dereg still gets
	// forwarded. Compare ignored-ack counts with the rule on and off.
	run := func(priority bool) (ignored, dups int64) {
		w := quickWorld(func(c *Config) {
			c.AckPriority = priority
			c.ProcDelay = 4 * time.Millisecond
			c.NumMSS = 6
			c.WirelessLatency = netsim.Uniform{Lo: 2 * time.Millisecond, Hi: 30 * time.Millisecond}
			c.ServerProc = netsim.Constant(20 * time.Millisecond)
			c.Seed = 99
		})
		mh := w.AddMH(1, 1)
		next := ids.MSS(2)
		mh.OnResult(func(ids.RequestID, []byte, bool) {
			cell := next
			next = next%6 + 1
			w.Kernel.After(0, func() { w.Migrate(1, cell) })
		})
		issue := func() { mh.IssueRequest(1, []byte("x")) }
		for i := 0; i < 300; i++ {
			w.Kernel.After(time.Duration(i)*150*time.Millisecond, issue)
		}
		w.RunUntil(2 * time.Minute)
		return w.Stats.IgnoredAcks.Value(), w.Stats.DuplicateDeliveries.Value()
	}

	ignWith, _ := run(true)
	ignWithout, _ := run(false)
	if ignWith >= ignWithout {
		t.Errorf("ack priority did not reduce ignored acks: with=%d without=%d", ignWith, ignWithout)
	}
}

func TestClientRetryRecoversFromWirelessLoss(t *testing.T) {
	// A stationary MH on a lossy link: RDP alone has no trigger to
	// retransmit (no migrations), so the client-side retry shim must
	// recover both lost requests and lost results.
	w := quickWorld(func(c *Config) {
		c.WirelessLoss = 0.4
		c.RequestTimeout = 300 * time.Millisecond
		c.Seed = 5
	})
	mh := w.AddMH(1, 1)
	reqs := make([]ids.RequestID, 0, 20)
	w.Kernel.After(0, func() {
		for i := 0; i < 20; i++ {
			reqs = append(reqs, mh.IssueRequest(1, []byte("x")))
		}
	})
	w.RunUntil(time.Minute)
	for _, r := range reqs {
		if !mh.Seen(r) {
			t.Errorf("request %v never answered despite retries", r)
		}
	}
	if w.Stats.RequestRetries.Value() == 0 {
		t.Error("no retries recorded under 40% loss; shim inactive?")
	}
}

func TestLeaveWithPendingRequestIsViolation(t *testing.T) {
	// Assumption 6: an MH only leaves after acknowledging everything.
	// Leaving with a live proxy must be flagged.
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(time.Second) })
	mh := w.AddMH(1, 1)
	w.Kernel.After(0, func() { mh.IssueRequest(1, []byte("x")) })
	w.Kernel.After(100*time.Millisecond, func() { w.Leave(1) })
	w.RunUntil(3 * time.Second)
	if got := w.Stats.Violations.Value(); got == 0 {
		t.Error("leave with pending request not flagged as violation")
	}
}

func TestCleanLeaveIsNoViolation(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.Kernel.After(1500*time.Millisecond, func() { w.Leave(1) })
	w.RunUntil(3 * time.Second)
	if !mh.Seen(req) {
		t.Fatal("result not delivered")
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("Violations = %d, want 0 for a clean leave", got)
	}
	if mh.Joined() {
		t.Error("MH still joined after leave")
	}
}

func TestOverheadAccounting(t *testing.T) {
	// §5: overhead is (1) one update_currentLoc per migration or
	// reactivation of an MH with a proxy, and (2) one extra Ack per
	// acknowledged result. Verify the exact counts on a deterministic
	// schedule where the proxy exists throughout.
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(2 * time.Second) })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	// Three migrations and one inactivity cycle, all while the request
	// is pending (server busy until t=2s).
	w.Kernel.After(100*time.Millisecond, func() { w.Migrate(1, 2) })
	w.Kernel.After(400*time.Millisecond, func() { w.Migrate(1, 3) })
	w.Kernel.After(700*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(900*time.Millisecond, func() { w.SetActive(1, true) })
	w.Kernel.After(1200*time.Millisecond, func() { w.Migrate(1, 4) })
	w.RunUntil(5 * time.Second)

	if !mh.Seen(req) {
		t.Fatal("result not delivered")
	}
	// 3 migrations + 1 reactivation = 4 update_currentLoc.
	if got := w.Stats.UpdateCurrLocs.Value(); got != 4 {
		t.Errorf("UpdateCurrLocs = %d, want 4 (3 migrations + 1 reactivation)", got)
	}
	// One result, one ack relayed to the proxy.
	if got := w.Stats.AckForwards.Value(); got != 1 {
		t.Errorf("AckForwards = %d, want 1", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestHandoffStateBytesConstant(t *testing.T) {
	// E6 base fact: RDP's hand-off state (the pref inside DeregAck) has
	// constant size regardless of pending-request count.
	bytesFor := func(pending int) int64 {
		w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(5 * time.Second) })
		mh := w.AddMH(1, 1)
		w.Kernel.After(0, func() {
			for i := 0; i < pending; i++ {
				mh.IssueRequest(1, []byte("payload-of-some-size"))
			}
		})
		w.Kernel.After(200*time.Millisecond, func() { w.Migrate(1, 2) })
		w.RunUntil(time.Second)
		return w.Stats.HandoffStateBytes.Value()
	}
	small, large := bytesFor(1), bytesFor(50)
	if small == 0 {
		t.Fatal("no hand-off state recorded")
	}
	if small != large {
		t.Errorf("hand-off state grew with pending requests: %d vs %d bytes", small, large)
	}
}

func TestServerAcksOption(t *testing.T) {
	w := quickWorld(func(c *Config) { c.ServerAcks = true })
	mh := w.AddMH(1, 1)
	w.Kernel.After(0, func() { mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(time.Second)
	if got := w.Stats.ServerAcks.Value(); got != 1 {
		t.Errorf("ServerAcks = %d, want 1", got)
	}
	if got := w.Servers[1].Acked.Value(); got != 1 {
		t.Errorf("server recorded %d acks, want 1", got)
	}
}

func TestMigrateToSameCellIsNoop(t *testing.T) {
	w := quickWorld(nil)
	w.AddMH(1, 1)
	w.Kernel.After(0, func() { w.Migrate(1, 1) })
	w.RunUntil(100 * time.Millisecond)
	if got := w.Stats.Handoffs.Value(); got != 0 {
		t.Errorf("Handoffs = %d, want 0", got)
	}
}

func TestAddMHValidation(t *testing.T) {
	w := quickWorld(nil)
	w.AddMH(1, 1)
	for name, fn := range map[string]func(){
		"duplicate":    func() { w.AddMH(1, 1) },
		"unknown cell": func() { w.AddMH(2, 99) },
		"invalid id":   func() { w.AddMH(0, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestProxyPlacementFollowsRequestOrigin(t *testing.T) {
	// §3.3 / §4: the proxy is created wherever the MH currently is, so
	// consecutive request bursts from different cells place proxies on
	// different stations — the load-balancing property.
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var r1, r2 ids.RequestID
	w.Kernel.After(0, func() { r1 = mh.IssueRequest(1, []byte("a")) })
	// After r1 completes (proxy deleted), move and issue again.
	w.Kernel.After(500*time.Millisecond, func() { w.Migrate(1, 3) })
	w.Kernel.After(800*time.Millisecond, func() { r2 = mh.IssueRequest(1, []byte("b")) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(r1) || !mh.Seen(r2) {
		t.Fatal("results not delivered")
	}
	if got := w.Stats.ProxyCreations[1]; got != 1 {
		t.Errorf("proxy creations at mss1 = %d, want 1", got)
	}
	if got := w.Stats.ProxyCreations[3]; got != 1 {
		t.Errorf("proxy creations at mss3 = %d, want 1", got)
	}
}

func TestLeaveAndRejoinLifecycle(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 1)
	var r1, r2 ids.RequestID
	w.Schedule(0, func() { r1 = mh.IssueRequest(1, []byte("before")) })
	w.Schedule(time.Second, func() { w.Leave(1) })
	// Rejoin in a different cell and use the service again.
	w.Schedule(2*time.Second, func() { w.Rejoin(1, 3) })
	w.Schedule(2500*time.Millisecond, func() { r2 = mh.IssueRequest(1, []byte("after")) })
	w.RunUntil(5 * time.Second)

	if !mh.Seen(r1) || !mh.Seen(r2) {
		t.Fatalf("deliveries: before=%t after=%t, want both", mh.Seen(r1), mh.Seen(r2))
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("Violations = %d, want 0 for clean leave/rejoin", got)
	}
	if !w.MSSs[3].Responsible(1) {
		t.Error("rejoined host not registered in its new cell")
	}
	if w.MSSs[1].Responsible(1) {
		t.Error("old cell still responsible after leave")
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestDetachAttachLeaksNoKernelTimers pins the kernel event count
// across detach/attach cycles. DetachMH must cancel every tracked MH
// timer — refresh beacon, per-request retry chains, batch retries — so
// a host bouncing between region worlds cannot leave orphaned events
// behind; a single untracked Scheduler.Defer in any MH path would grow
// the pending set by one event per cycle and fail the equality below.
func TestDetachAttachLeaksNoKernelTimers(t *testing.T) {
	w := quickWorld(func(cfg *Config) {
		cfg.GreetRefresh = 100 * time.Millisecond
		cfg.RequestTimeout = 300 * time.Millisecond
		// The server never answers inside the horizon, so the retry
		// chains and the batch retry stay permanently armed.
		cfg.ServerProc = netsim.Constant(time.Hour)
	})
	kernel := w.Kernel.(*sim.Kernel) // virtual worlds always run on the event kernel
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() {
		mh.IssueRequest(1, []byte("slow"))
		b := mh.BeginBatch()
		mh.BatchRequest(b, 1, []byte("member"))
		mh.CommitBatch(b)
	})
	at := 500 * time.Millisecond
	w.RunUntil(at)

	baseline := -1
	for cycle := 0; cycle < 4; cycle++ {
		h, active := w.DetachMH(1)
		if !active {
			t.Fatalf("cycle %d: host detached inactive", cycle)
		}
		if n := len(h.timers); n != 0 {
			t.Fatalf("cycle %d: %d tracked timers survive DetachMH", cycle, n)
		}
		// Drain the frames in flight at detach time; what remains must
		// be cycle-invariant (only the parked server completions).
		at += 2 * time.Second
		w.RunUntil(at)
		if pend := kernel.Pending(); baseline < 0 {
			baseline = pend
		} else if pend != baseline {
			t.Fatalf("cycle %d: %d kernel events pending after detach, want %d — timers leak across detach/attach",
				cycle, pend, baseline)
		}
		w.AttachMH(h, ids.MSS(cycle%4+1), true)
		at += time.Second
		w.RunUntil(at)
	}
}

func TestRejoinValidation(t *testing.T) {
	w := quickWorld(nil)
	w.AddMH(1, 1)
	for name, fn := range map[string]func(){
		"still joined": func() { w.Rejoin(1, 2) },
		"unknown MH":   func() { w.Rejoin(9, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestAccessorsAndLoadVectors(t *testing.T) {
	w := quickWorld(nil)
	mh := w.AddMH(1, 2)
	if mh.ID() != 1 {
		t.Errorf("MH.ID = %v", mh.ID())
	}
	w.RunUntil(50 * time.Millisecond)
	if mh.RespMss() != 2 {
		t.Errorf("RespMss = %v, want mss2", mh.RespMss())
	}
	if w.MSSs[2].ID() != 2 {
		t.Errorf("MSS.ID = %v", w.MSSs[2].ID())
	}
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(time.Second)
	stations := w.StationList()
	hosts := w.Stats.HostLoads(stations)
	forwards := w.Stats.ForwardLoads(stations)
	if len(hosts) != len(stations) || len(forwards) != len(stations) {
		t.Fatal("load vector lengths wrong")
	}
	var totalF float64
	for _, f := range forwards {
		totalF += f
	}
	if totalF == 0 {
		t.Error("no forwarding load recorded")
	}
	pref, _ := w.MSSs[2].PrefOf(1)
	if p := w.MSSs[2].ProxyByID(pref.Proxy); p != nil {
		if p.ID() != pref.Proxy {
			t.Errorf("Proxy.ID = %v, want %v", p.ID(), pref.Proxy)
		}
	}
}

func TestMHRetransmitGuards(t *testing.T) {
	w := quickWorld(func(c *Config) { c.ServerProc = netsim.Constant(5 * time.Second) })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Schedule(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(100 * time.Millisecond)
	// Retransmit while pending goes out.
	w.Schedule(0, func() { mh.Retransmit(req, 1, []byte("x")) })
	w.RunUntil(200 * time.Millisecond)
	if got := w.Stats.RequestRetries.Value(); got != 1 {
		t.Fatalf("RequestRetries = %d, want 1", got)
	}
	// Retransmit while inactive is a no-op.
	w.Schedule(0, func() { w.SetActive(1, false) })
	w.Schedule(10*time.Millisecond, func() { mh.Retransmit(req, 1, []byte("x")) })
	w.RunUntil(300 * time.Millisecond)
	if got := w.Stats.RequestRetries.Value(); got != 1 {
		t.Fatalf("RequestRetries while inactive = %d, want still 1", got)
	}
}

func TestReplaceServerUnknownPanics(t *testing.T) {
	w := quickWorld(nil)
	defer func() {
		if recover() == nil {
			t.Error("replacing an unknown server must panic")
		}
	}()
	w.ReplaceServer(99, nil)
}

func TestRingTopologyLatency(t *testing.T) {
	// Deliveries between near and far stations reflect the ring distance.
	w := quickWorld(func(c *Config) {
		c.NumMSS = 6
		c.WiredPairLatency = netsim.RingLatency(6, time.Millisecond, 4*time.Millisecond)
		c.ServerProc = netsim.Constant(time.Hour) // keep the proxy pending
	})
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(100 * time.Millisecond)
	// Migrate to the opposite side of the ring: the dereg+deregack
	// round trip covers ring distance 3 each way at 1+3*4=13ms per hop.
	w.Schedule(0, func() { w.Migrate(1, 4) })
	w.RunUntil(2 * time.Second)
	if got := w.Stats.Handoffs.Value(); got != 1 {
		t.Fatalf("Handoffs = %d", got)
	}
	// HandoffLatency runs greet-processing -> deregack: two wired hops
	// across ring distance 3 at 1+3*4 = 13ms each.
	if got := w.Stats.HandoffLatency.Max(); got != 26*time.Millisecond {
		t.Errorf("hand-off latency = %v, want 26ms over the ring", got)
	}
}
