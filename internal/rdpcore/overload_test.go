package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// overloadWorld is a quickWorld with station processing time and the
// admission stack dialed in by the caller.
func overloadWorld(mutate func(*Config)) *World {
	return quickWorld(func(c *Config) {
		c.ProcDelay = 20 * time.Millisecond
		if mutate != nil {
			mutate(c)
		}
	})
}

func TestAdmissionRefusesPastHighWater(t *testing.T) {
	w := overloadWorld(func(c *Config) { c.AdmissionHighWater = 2 })
	mh := w.AddMH(1, 1)
	const n = 12
	reqs := make([]ids.RequestID, 0, n)
	// Burst after registration has settled: admission only guards
	// requests from MHs the station knows it is responsible for.
	w.Kernel.After(200*time.Millisecond, func() {
		for i := 0; i < n; i++ {
			reqs = append(reqs, mh.IssueRequest(1, []byte("x")))
		}
	})
	w.RunUntil(5 * time.Second)

	delivered := w.Stats.ResultsDelivered.Value()
	refused := w.Stats.BusyRefusals.Value()
	if refused == 0 {
		t.Fatal("no busy refusals under a 6x burst with high-watermark 2")
	}
	if delivered+refused != n {
		t.Errorf("delivered %d + refused %d != issued %d: unaccounted shortfall",
			delivered, refused, n)
	}
	for _, req := range reqs {
		if mh.Seen(req) != mh.Admitted(req) {
			t.Errorf("request %v: seen=%v admitted=%v, want them to agree",
				req, mh.Seen(req), mh.Admitted(req))
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAdmittedRequestsGetAdmitMessage(t *testing.T) {
	w := overloadWorld(func(c *Config) { c.AdmissionHighWater = 100 })
	mh := w.AddMH(1, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(1, []byte("x")) })
	w.RunUntil(2 * time.Second)

	if !mh.Admitted(req) || !mh.Seen(req) {
		t.Errorf("admitted=%v seen=%v, want both", mh.Admitted(req), mh.Seen(req))
	}
	if got := w.Stats.BusyRefusals.Value(); got != 0 {
		t.Errorf("BusyRefusals = %d, want 0 far below the high-watermark", got)
	}
}

func TestBusyRetryEventuallyAdmitsEverything(t *testing.T) {
	w := overloadWorld(func(c *Config) {
		c.AdmissionHighWater = 2
		c.BusyRetryBase = 60 * time.Millisecond
	})
	mh := w.AddMH(1, 1)
	const n = 12
	reqs := make([]ids.RequestID, 0, n)
	w.Kernel.After(200*time.Millisecond, func() {
		for i := 0; i < n; i++ {
			reqs = append(reqs, mh.IssueRequest(1, []byte("x")))
		}
	})
	w.RunUntil(30 * time.Second)

	for _, req := range reqs {
		if !mh.Seen(req) {
			t.Errorf("request %v never delivered despite busy retry", req)
		}
	}
	if got := w.Stats.BusyRetries.Value(); got == 0 {
		t.Error("no busy retries recorded; backoff machinery never engaged")
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0: retries must not duplicate", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRequestDeadlineAbandonsOnlyUnadmitted(t *testing.T) {
	w := overloadWorld(func(c *Config) {
		c.AdmissionHighWater = 1
		c.RequestDeadline = 300 * time.Millisecond
	})
	mh := w.AddMH(1, 1)
	const n = 8
	reqs := make([]ids.RequestID, 0, n)
	w.Kernel.After(200*time.Millisecond, func() {
		for i := 0; i < n; i++ {
			reqs = append(reqs, mh.IssueRequest(1, []byte("x")))
		}
	})
	w.RunUntil(5 * time.Second)

	abandoned := w.Stats.RequestsAbandoned.Value()
	if abandoned == 0 {
		t.Fatal("no requests abandoned at the deadline")
	}
	for _, req := range reqs {
		switch {
		case mh.Admitted(req) && mh.Abandoned(req):
			t.Errorf("request %v both admitted and abandoned", req)
		case mh.Admitted(req) && !mh.Seen(req):
			t.Errorf("admitted request %v never delivered", req)
		case !mh.Admitted(req) && !mh.Abandoned(req):
			t.Errorf("request %v neither admitted nor abandoned", req)
		}
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestProxyQuotaRefusesNewProxies(t *testing.T) {
	w := overloadWorld(func(c *Config) {
		c.ProxyQuota = 1
		c.ServerProc = netsim.Constant(400 * time.Millisecond)
	})
	a := w.AddMH(1, 1)
	b := w.AddMH(2, 1)
	// Stagger so a's proxy exists (and still holds the quota slot —
	// the server is slow) when b's request reaches admission.
	w.Kernel.After(200*time.Millisecond, func() { a.IssueRequest(1, []byte("x")) })
	w.Kernel.After(300*time.Millisecond, func() { b.IssueRequest(1, []byte("y")) })
	w.RunUntil(2 * time.Second)

	if got := w.Stats.BusyRefusals.Value(); got != 1 {
		t.Errorf("BusyRefusals = %d, want 1 (second MH needs a proxy past quota)", got)
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInboxPeakBoundedByAdmission(t *testing.T) {
	burst := func(admit int) int64 {
		w := overloadWorld(func(c *Config) { c.AdmissionHighWater = admit })
		mh := w.AddMH(1, 1)
		w.Kernel.After(200*time.Millisecond, func() {
			for i := 0; i < 40; i++ {
				mh.IssueRequest(1, []byte("x"))
			}
		})
		w.RunUntil(10 * time.Second)
		return w.Stats.InboxPeak.Value()
	}
	unbounded := burst(0)
	bounded := burst(4)
	if bounded >= unbounded {
		t.Errorf("InboxPeak with admission = %d, without = %d; admission should bound queue growth",
			bounded, unbounded)
	}
}

func TestStationDelayHookSlowsProcessing(t *testing.T) {
	latency := func(extra time.Duration) time.Duration {
		w := overloadWorld(func(c *Config) {
			c.StationDelayHook = func(ids.MSS) time.Duration { return extra }
		})
		mh := w.AddMH(1, 1)
		w.Kernel.After(0, func() { mh.IssueRequest(1, []byte("x")) })
		w.RunUntil(10 * time.Second)
		if got := w.Stats.ResultsDelivered.Value(); got != 1 {
			t.Fatalf("ResultsDelivered = %d, want 1 (extra=%v)", got, extra)
		}
		return time.Duration(w.Stats.ResultLatency.Mean())
	}
	fast := latency(0)
	slow := latency(80 * time.Millisecond)
	if slow < fast+100*time.Millisecond {
		t.Errorf("latency with slowdown = %v, without = %v; hook did not slow the station",
			slow, fast)
	}
}
