package rdpcore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// sortRequestIDs and sortBatchIDs order identifier slices for
// deterministic timer arming and replay.
func sortRequestIDs(s []ids.RequestID) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}

func sortBatchIDs(s []ids.BatchID) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}

// MHNode is a mobile host (§2): a disconnected computer with a
// system-wide unique identification that is either active or inactive,
// joins and leaves the system, migrates between cells, issues requests
// through its respMss, and acknowledges every message received from it
// (assumption 4). Duplicate detection (assumption 5) is implemented with
// the set of request identifiers already answered.
type MHNode struct {
	id      ids.MH
	w       *World
	respMss ids.MSS
	joined  bool
	// regOld is the last station that *confirmed* a registration (see
	// Config.RegConfirm). With confirmations on, greets name it as the
	// old respMss: a station that never actually registered the MH (its
	// greet was lost to a crash) must not anchor the hand-off chain.
	regOld ids.MSS
	// inc is the host's current incarnation number (E18), mirrored from
	// the world's non-volatile flash word. It is stamped on every
	// registration and request so that, after a crash-with-amnesia and
	// restart, state belonging to the dead incarnation can be recognized
	// and scrubbed everywhere — and a result addressed to a dead
	// incarnation is never delivered to its successor.
	inc ids.Incarnation
	// Transfer stash (psim region hand-over): DetachMH parks the host's
	// world-resident durable state — incarnation word, crash flag,
	// offline journal — here so AttachMH restores it in the destination
	// world. The flash chip travels with the device.
	xferInc     ids.Incarnation
	xferCrashed bool
	xferJournal []byte

	nextSeq  uint32
	seen     map[ids.RequestID]bool
	issuedAt map[ids.RequestID]sim.Time
	// outstanding holds requests issued whose results have not yet been
	// received; its emptiness is piggybacked on every Ack (see
	// msg.AckMH.HaveOutstanding).
	outstanding map[ids.RequestID]bool

	// queued holds requests issued while inactive; they are transmitted
	// on the next activation (a minimal QRPC-style request queue; the
	// paper cites Rover's QRPC as the complementary mechanism for
	// reliable request sending).
	queued []msg.Message
	// offline holds requests issued while disconnected (out of coverage
	// entirely, E17), in issue order. The queue is journaled through the
	// world's stable store on every mutation and replayed verbatim on
	// reconnection; the proxy's request memoization and the MH's own
	// seen-set make the replay idempotent.
	offline []msg.Message

	// admitted marks requests the responsible MSS acknowledged past
	// admission control (msg.Admit): they are covered by the delivery
	// guarantee and are never abandoned or busy-retried again.
	admitted map[ids.RequestID]bool
	// abandoned marks never-admitted requests whose per-request deadline
	// expired (Config.RequestDeadline); the client gave up on them.
	abandoned map[ids.RequestID]bool
	// pending retains the full request message while it may still need a
	// busy re-issue (a Busy NACK only carries the request identifier).
	pending map[ids.RequestID]msg.Request
	// busyAttempts counts Busy NACKs per request, driving the capped
	// exponential backoff.
	busyAttempts map[ids.RequestID]int
	// rng is a lazily forked random stream for backoff jitter. Lazy so
	// configurations without busy-retry never draw from the kernel
	// stream (golden traces depend on the default draw order).
	rng *sim.RNG

	// timers tracks every pending kernel timer this host armed (refresh
	// beacons, request retries, deadlines, busy backoffs, batch retries)
	// so detach and leave can cancel them: a detached host must leak no
	// kernel events (its timers would otherwise fire against a world it
	// no longer inhabits). timerSeq keys the map.
	timers   map[uint64]sim.Canceler
	timerSeq uint64
	// retryMsgs retains the message behind each live retry chain and
	// deadlines the set of armed request deadlines, so timers cancelled
	// at detach can re-arm from live state on attach.
	retryMsgs map[ids.RequestID]msg.Message
	deadlines map[ids.RequestID]bool

	// --- Atomic request batches (E17) ---

	nextBatchSeq uint32
	// batches holds this host's batch bookkeeping; batchOf maps member
	// requests back to their batch.
	batches map[ids.BatchID]*mhBatch
	batchOf map[ids.RequestID]ids.BatchID

	// onResult, when set, observes every result delivery (first or
	// duplicate) for application callbacks and tests.
	onResult func(req ids.RequestID, payload []byte, duplicate bool)
}

// mhBatch is the client side of one atomic batch: the control messages
// it re-sends until the batch resolves, and the member set it uses to
// detect resolution (all delivered, or aborted).
type mhBatch struct {
	id        ids.BatchID
	open      msg.BatchOpen
	items     []msg.BatchItem
	committed bool
	aborted   bool
}

// newMHNode constructs a mobile host bound to a world.
func newMHNode(id ids.MH, w *World) *MHNode {
	return &MHNode{
		id:           id,
		w:            w,
		inc:          ids.FirstIncarnation,
		seen:         make(map[ids.RequestID]bool),
		issuedAt:     make(map[ids.RequestID]sim.Time),
		outstanding:  make(map[ids.RequestID]bool),
		admitted:     make(map[ids.RequestID]bool),
		abandoned:    make(map[ids.RequestID]bool),
		pending:      make(map[ids.RequestID]msg.Request),
		busyAttempts: make(map[ids.RequestID]int),
		timers:       make(map[uint64]sim.Canceler),
		retryMsgs:    make(map[ids.RequestID]msg.Message),
		deadlines:    make(map[ids.RequestID]bool),
		batches:      make(map[ids.BatchID]*mhBatch),
		batchOf:      make(map[ids.RequestID]ids.BatchID),
	}
}

// after arms a tracked kernel timer: the handle is retained until the
// callback fires or cancelTimers sweeps it, so no detached host leaves
// events behind in the kernel.
func (h *MHNode) after(d time.Duration, fn func()) {
	h.timerSeq++
	id := h.timerSeq
	h.timers[id] = h.w.Kernel.After(d, func() {
		delete(h.timers, id)
		fn()
	})
}

// cancelTimers cancels every pending timer (detach, leave). Cancellation
// order does not matter: cancelling never schedules events, so map
// iteration order cannot perturb the kernel's event sequence.
func (h *MHNode) cancelTimers() {
	for id, c := range h.timers {
		c.Cancel()
		delete(h.timers, id)
	}
}

// rearmTimers rebuilds the timer set from live state after an attach:
// the refresh beacon, one retry chain per un-answered tracked request,
// one full deadline per armed request (conservatively restarted — a
// deadline never fires early), and the retry chain of every unresolved
// committed batch. Requests and batches are armed in sorted order so
// the kernel event sequence stays a pure function of the seed.
func (h *MHNode) rearmTimers() {
	if !h.joined {
		return
	}
	if h.w.cfg.GreetRefresh > 0 {
		h.scheduleRefresh()
	}
	reqs := make([]ids.RequestID, 0, len(h.retryMsgs))
	for req := range h.retryMsgs {
		reqs = append(reqs, req)
	}
	sortRequestIDs(reqs)
	for _, req := range reqs {
		h.scheduleRetry(req, h.retryMsgs[req])
	}
	dls := make([]ids.RequestID, 0, len(h.deadlines))
	for req := range h.deadlines {
		dls = append(dls, req)
	}
	sortRequestIDs(dls)
	for _, req := range dls {
		h.scheduleDeadline(req)
	}
	bs := make([]ids.BatchID, 0, len(h.batches))
	for id, b := range h.batches {
		if b.committed && !h.batchResolved(b) {
			bs = append(bs, id)
		}
	}
	sortBatchIDs(bs)
	for _, id := range bs {
		h.scheduleBatchRetry(h.batches[id])
	}
}

// ID returns the mobile host identifier.
func (h *MHNode) ID() ids.MH { return h.id }

// RespMss returns the station the MH currently considers responsible
// for it.
func (h *MHNode) RespMss() ids.MSS { return h.respMss }

// Joined reports whether the MH is part of the system.
func (h *MHNode) Joined() bool { return h.joined }

// Seen reports whether the result of req has been received.
func (h *MHNode) Seen(req ids.RequestID) bool { return h.seen[req] }

// Admitted reports whether the responsible MSS acknowledged req past
// admission control (overload protection, E11). A request that was
// delivered counts as admitted even if the explicit Admit was lost.
func (h *MHNode) Admitted(req ids.RequestID) bool { return h.admitted[req] || h.seen[req] }

// Abandoned reports whether the client gave up on a never-admitted
// request at its deadline (see Config.RequestDeadline).
func (h *MHNode) Abandoned(req ids.RequestID) bool { return h.abandoned[req] }

// OnResult installs the result observer callback.
func (h *MHNode) OnResult(fn func(req ids.RequestID, payload []byte, duplicate bool)) {
	h.onResult = fn
}

// join sends the join message to the station of the current cell (§2).
func (h *MHNode) join(cell ids.MSS) {
	h.respMss = cell
	h.joined = true
	h.regOld = 0 // no confirmed registration yet in this membership
	h.uplink(msg.Join{MH: h.id})
	if h.w.cfg.GreetRefresh > 0 {
		h.scheduleRefresh()
	}
}

// greetOld picks the old respMss a greet should name: the last confirmed
// station when confirmations are on (falling back to the believed one
// before the first confirmation), else the believed one.
func (h *MHNode) greetOld(prev ids.MSS) ids.MSS {
	if h.w.cfg.RegConfirm && h.regOld != 0 {
		return h.regOld
	}
	return prev
}

// refreshGreet re-sends a registration beacon to the current respMss.
func (h *MHNode) refreshGreet() {
	h.uplink(msg.Greet{MH: h.id, OldMSS: h.greetOld(h.respMss), Inc: h.inc})
}

// scheduleRefresh re-greets the current respMss on a fixed period while
// the MH is active (see Config.GreetRefresh). A disconnected host skips
// the beacon (its radio is gone) but keeps the period running.
func (h *MHNode) scheduleRefresh() {
	h.after(h.w.cfg.GreetRefresh, func() {
		if !h.joined {
			return
		}
		if h.w.IsActive(h.id) && !h.w.IsDisconnected(h.id) {
			h.refreshGreet()
		}
		h.scheduleRefresh()
	})
}

// leave exits the system (§2). Assumption 6 requires all results to have
// been acknowledged; the responsible MSS checks and records a violation
// otherwise.
func (h *MHNode) leave() {
	if !h.joined {
		return
	}
	h.uplink(msg.Leave{MH: h.id})
	h.joined = false
	// The membership is over: its timers must not fire into a later
	// rejoin, and the retry/deadline bookkeeping dies with it.
	h.cancelTimers()
	h.retryMsgs = make(map[ids.RequestID]msg.Message)
	h.deadlines = make(map[ids.RequestID]bool)
}

// crash wipes the host's volatile state (E18, World.CrashMH): every
// timer, the duplicate-detection seen-set, the outstanding/admitted/
// abandoned/pending bookkeeping, the activation and offline queues, the
// batch objects, and both sequence counters. Only what the model puts
// in non-volatile flash survives: the incarnation counter (held by the
// World) and the journaled offline queue in the stable store. The
// membership itself survives too — the host never sent a Leave, so the
// system still considers it registered; it is the *memory* that died.
func (h *MHNode) crash() {
	h.cancelTimers()
	h.regOld = 0
	h.nextSeq = 0
	h.nextBatchSeq = 0
	h.seen = make(map[ids.RequestID]bool)
	h.issuedAt = make(map[ids.RequestID]sim.Time)
	h.outstanding = make(map[ids.RequestID]bool)
	h.queued = nil
	h.offline = nil
	h.admitted = make(map[ids.RequestID]bool)
	h.abandoned = make(map[ids.RequestID]bool)
	h.pending = make(map[ids.RequestID]msg.Request)
	h.busyAttempts = make(map[ids.RequestID]int)
	h.retryMsgs = make(map[ids.RequestID]msg.Message)
	h.deadlines = make(map[ids.RequestID]bool)
	h.batches = make(map[ids.BatchID]*mhBatch)
	h.batchOf = make(map[ids.RequestID]ids.BatchID)
}

// reboot brings a crashed host back under a fresh incarnation (E18,
// World.RestartMH). The journaled offline queue is replayed through the
// incarnation filter: every entry was written by a dead incarnation
// (nothing of the current one can predate the reboot), so each is
// discarded and counted — the requests died with the memory that
// tracked them, and replaying them would resurrect computations with no
// owner. The host then re-registers with the station of the cell it
// woke up in, carrying the new incarnation so stale proxy and station
// state can be scrubbed everywhere.
func (h *MHNode) reboot(inc ids.Incarnation) {
	h.inc = inc
	cell := h.w.loc[h.id]
	h.respMss = cell
	kept := h.offline[:0]
	for _, m := range h.w.loadOffline(h.id) {
		stale := true
		switch v := m.(type) {
		case msg.Request:
			stale = normInc(v.Inc) != normInc(inc)
		case msg.BatchOpen:
			stale = normInc(v.Inc) != normInc(inc)
		case msg.BatchItem:
			stale = normInc(v.Inc) != normInc(inc)
		case msg.BatchCommit:
			// BatchCommit carries no incarnation; it is live only while
			// the host still knows the batch it seals.
			stale = h.batches[v.Batch] == nil
		}
		if stale {
			h.w.Stats.OfflineDroppedStale.Inc()
			continue
		}
		kept = append(kept, m)
	}
	h.offline = kept
	h.w.persistOffline(h.id, h.offline)
	if !h.joined {
		return
	}
	if h.w.cfg.GreetRefresh > 0 {
		h.scheduleRefresh()
	}
	if h.w.IsActive(h.id) && !h.w.IsDisconnected(h.id) {
		// Register announces the new incarnation: the station bumps its
		// own record, scrubs stale held state, and immediately
		// heartbeats the proxy so orphaned entries are swept without
		// waiting for a lease period.
		h.uplink(msg.Register{MH: h.id, Inc: inc})
	}
}

// IssueRequest creates a new service request and transmits it through
// the current respMss (§3.1). While inactive the request is queued and
// sent on the next activation. The returned identifier lets callers
// correlate the eventual result.
func (h *MHNode) IssueRequest(server ids.Server, payload []byte) ids.RequestID {
	if h.w.IsCrashed(h.id) {
		// A crashed host runs no code; the driver's scheduled request
		// simply never happens (E18).
		return ids.RequestID{}
	}
	h.nextSeq++
	req := ids.RequestID{Origin: h.id, Seq: h.nextSeq}
	h.issuedAt[req] = h.w.Kernel.Now()
	h.outstanding[req] = true
	h.w.Stats.RequestsIssued.Inc()
	m := msg.Request{Req: req, Server: server, Payload: payload, Inc: h.inc}
	if h.w.cfg.BusyRetryBase > 0 {
		h.pending[req] = m
	}
	if h.joined && h.w.IsActive(h.id) && h.w.IsDisconnected(h.id) {
		// Out of coverage: journal for in-order replay on reconnection
		// (E17). Retry and deadline timers arm at replay time, not now —
		// a long disconnection must not retry into a dead radio or
		// abandon a request the network never saw.
		h.queueOffline(m)
		return req
	}
	h.transmit(m)
	h.armRequestTimers(req, m)
	return req
}

// transmit routes an outbound protocol message by the host's current
// connectivity: up the radio when possible, into the activation queue
// while inactive or departed, into the journaled offline queue while
// disconnected (E17).
func (h *MHNode) transmit(m msg.Message) {
	switch {
	case !h.joined || !h.w.IsActive(h.id):
		h.queued = append(h.queued, m)
	case h.w.IsDisconnected(h.id):
		h.queueOffline(m)
	default:
		h.uplink(m)
	}
}

// queueOffline journals one message into the offline queue (E17): the
// queue rides the E10 stable-store machinery (write-through on every
// mutation) and replays in issue order on reconnection.
func (h *MHNode) queueOffline(m msg.Message) {
	h.offline = append(h.offline, m)
	h.w.persistOffline(h.id, h.offline)
	h.w.Stats.OfflineQueued.Inc()
}

// armRequestTimers starts the retry chain and the deadline for one
// tracked request, where configured.
func (h *MHNode) armRequestTimers(req ids.RequestID, m msg.Message) {
	if h.w.cfg.RequestTimeout > 0 {
		h.retryMsgs[req] = m
		h.scheduleRetry(req, m)
	}
	if h.w.cfg.RequestDeadline > 0 {
		h.deadlines[req] = true
		h.scheduleDeadline(req)
	}
}

// onReconnect is invoked by the World when a disconnected MH regains
// coverage: re-greet the current cell's station (announcing the host's
// location re-forwards any stranded results), then replay the offline
// queue in issue order. Replay is idempotent — the proxy memoizes
// requests and the MH's own seen-set drops answered ones — and each
// replayed request arms its retry/deadline machinery only now, so the
// disconnection window never counts against the deadline.
func (h *MHNode) onReconnect(cell ids.MSS) {
	old := h.greetOld(h.respMss)
	h.respMss = cell
	h.uplink(msg.Greet{MH: h.id, OldMSS: old, Inc: h.inc})
	offline := h.offline
	h.offline = nil
	h.w.persistOffline(h.id, nil)
	for _, m := range offline {
		switch v := m.(type) {
		case msg.Request:
			if h.seen[v.Req] || h.abandoned[v.Req] {
				continue
			}
			h.armRequestTimers(v.Req, m)
		case msg.BatchItem:
			if h.seen[v.Req] || h.abandoned[v.Req] {
				continue
			}
		}
		h.w.Stats.OfflineReplayed.Inc()
		h.uplink(m)
	}
}

// scheduleDeadline abandons a request that is still un-admitted when its
// deadline expires (see Config.RequestDeadline). Admitted requests are
// covered by the delivery guarantee and are never abandoned; abandoning
// stops the busy-retry machinery for this request.
func (h *MHNode) scheduleDeadline(req ids.RequestID) {
	h.after(h.w.cfg.RequestDeadline, func() {
		delete(h.deadlines, req)
		if h.seen[req] || h.admitted[req] {
			return
		}
		h.abandoned[req] = true
		delete(h.outstanding, req)
		delete(h.pending, req)
		delete(h.busyAttempts, req)
		delete(h.retryMsgs, req)
		h.w.Stats.RequestsAbandoned.Inc()
	})
}

// scheduleRetry re-sends a request whose result has not arrived within
// the configured timeout. This client-side shim covers the one gap RDP
// leaves open by design — reliable *request* sending (the paper assigns
// it to QRPC, §4) — and lets a stationary MH recover a result whose
// wireless delivery was lost (the proxy re-forwards the stored result on
// a duplicate request).
// A disconnected host skips the resend (dead radio) but keeps the chain
// alive for after reconnection.
func (h *MHNode) scheduleRetry(req ids.RequestID, m msg.Message) {
	h.after(h.w.cfg.RequestTimeout, func() {
		if h.seen[req] || h.abandoned[req] || !h.joined {
			delete(h.retryMsgs, req)
			return
		}
		if h.w.IsActive(h.id) && !h.w.IsDisconnected(h.id) {
			h.w.Stats.RequestRetries.Inc()
			h.uplink(m)
		}
		h.scheduleRetry(req, m)
	})
}

// Retransmit re-sends a previously issued request through the current
// respMss — the hook the queued-RPC layer (internal/qrpc) uses for its
// backoff resends. It is a no-op once the result has been received or
// while the host cannot transmit. The proxy deduplicates re-arrivals
// and re-forwards a stored result, so retransmission is always safe.
func (h *MHNode) Retransmit(req ids.RequestID, server ids.Server, payload []byte) {
	if h.seen[req] || h.abandoned[req] || !h.joined || !h.w.IsActive(h.id) ||
		h.w.IsDisconnected(h.id) || h.w.IsCrashed(h.id) {
		return
	}
	h.w.Stats.RequestRetries.Inc()
	h.uplink(msg.Request{Req: req, Server: server, Payload: payload, Inc: h.inc})
}

// onMigrate is invoked by the World when the (active) MH enters a new
// cell: it greets the new station, naming the old one so the Hand-off
// can start (§2, §3.2). From this moment the MH answers only the new
// station.
func (h *MHNode) onMigrate(newCell ids.MSS) {
	old := h.greetOld(h.respMss)
	h.respMss = newCell
	h.uplink(msg.Greet{MH: h.id, OldMSS: old, Inc: h.inc})
}

// onActivate is invoked by the World when the MH becomes active. It
// greets the station of the cell it woke up in — the same station (no
// hand-off; §3.2) or a new one if it was carried while inactive — and
// flushes requests queued during inactivity.
func (h *MHNode) onActivate(cell ids.MSS) {
	old := h.greetOld(h.respMss)
	h.respMss = cell
	h.uplink(msg.Greet{MH: h.id, OldMSS: old, Inc: h.inc})
	queued := h.queued
	h.queued = nil
	for _, m := range queued {
		// Routed, not blindly uplinked: a host that wakes up outside
		// coverage journals its queue for the eventual reconnection.
		h.transmit(m)
	}
}

// HandleMessage implements netsim.Handler for the MH's radio. Per §3.2,
// after greeting a new station the MH "must not reply to any message
// from any MSS other than" it, so traffic from other stations is
// dropped.
func (h *MHNode) HandleMessage(from ids.NodeID, m msg.Message) {
	if from != h.respMss.Node() {
		h.w.Stats.OrphanMessages.Inc()
		return
	}
	if _, ok := m.(msg.RegConfirm); ok {
		// The station confirmed our registration; future greets may
		// anchor their hand-off chain here (see Config.RegConfirm).
		h.regOld = h.respMss
		return
	}
	if a, ok := m.(msg.Admit); ok {
		// The request is past admission control: the delivery guarantee
		// now covers it, so the busy-retry machinery stands down.
		h.admitted[a.Req] = true
		delete(h.pending, a.Req)
		delete(h.busyAttempts, a.Req)
		delete(h.deadlines, a.Req)
		return
	}
	if b, ok := m.(msg.Busy); ok {
		h.onBusy(b.Req)
		return
	}
	if a, ok := m.(msg.BatchAbort); ok {
		h.onBatchAbort(a)
		return
	}
	r, ok := m.(msg.ResultDeliver)
	if !ok {
		h.w.Stats.OrphanMessages.Inc()
		return
	}
	if normInc(r.Inc) != normInc(h.inc) {
		// A result addressed to a dead incarnation of this host (E18):
		// the request's issuer lost its memory, so delivering would hand
		// an answer to a computation that no longer exists. Dropped
		// without an ack — the lease machinery retires the proxy state.
		h.w.Stats.StaleIncarnationDrops.Inc()
		return
	}
	duplicate := h.seen[r.Req]
	h.seen[r.Req] = true
	delete(h.outstanding, r.Req)
	delete(h.pending, r.Req)
	delete(h.busyAttempts, r.Req)
	delete(h.retryMsgs, r.Req)
	delete(h.deadlines, r.Req)
	delete(h.batchOf, r.Req)
	if duplicate {
		h.w.Stats.DuplicateDeliveries.Inc()
	} else {
		h.w.Stats.ResultsDelivered.Inc()
		if at, known := h.issuedAt[r.Req]; known {
			h.w.Stats.ResultLatency.Observe(time.Duration(h.w.Kernel.Now() - at))
		}
	}
	// Assumption 4: an active MH acknowledges every message from its
	// respMss — including retransmissions, or the proxy would re-send
	// forever. The Ack states whether other requests are still awaiting
	// results (§3.3's "not preceded by any new request" condition).
	h.uplink(msg.AckMH{MH: h.id, Req: r.Req, HaveOutstanding: len(h.outstanding) > 0})
	if h.onResult != nil {
		h.onResult(r.Req, r.Payload, duplicate)
	}
}

// onBusy reacts to an admission refusal: re-issue the request after a
// capped exponential backoff with jitter (overload protection, E11).
// The retry is event-driven — each re-issue either gets admitted, gets
// another Busy (scheduling the next, longer backoff), or dies with a
// lost frame, in which case the request deadline is the backstop.
func (h *MHNode) onBusy(req ids.RequestID) {
	m, ok := h.pending[req]
	if !ok || h.seen[req] || h.admitted[req] || h.abandoned[req] {
		return
	}
	attempt := h.busyAttempts[req]
	h.busyAttempts[req] = attempt + 1
	h.after(h.backoff(attempt), func() {
		if _, live := h.pending[req]; !live || h.seen[req] || h.admitted[req] || h.abandoned[req] {
			return
		}
		if !h.joined || !h.w.IsActive(h.id) || h.w.IsDisconnected(h.id) {
			return
		}
		h.w.Stats.BusyRetries.Inc()
		h.uplink(m)
	})
}

// backoff returns min(BusyRetryBase·2^attempt, BusyRetryMax) plus up to
// 50% uniform jitter, so synchronized refused clients don't re-offer
// their load in lockstep.
func (h *MHNode) backoff(attempt int) time.Duration {
	base := h.w.cfg.BusyRetryBase
	max := h.w.cfg.BusyRetryMax
	if max <= 0 {
		max = 32 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if h.rng == nil {
		h.rng = h.w.Kernel.RNG().Fork()
	}
	return d + h.rng.Uniform(0, d/2)
}

// ---------------------------------------------------------------------
// Atomic request batches (E17).

// BeginBatch opens a new atomic request batch: no member result is
// delivered until the whole batch is deliverable (committed with every
// member result present at the proxy), and the proxy-side deadline
// (Config.BatchDeadline) aborts the batch as a unit — all or nothing.
func (h *MHNode) BeginBatch() ids.BatchID {
	if h.w.IsCrashed(h.id) {
		return ids.BatchID{}
	}
	h.nextBatchSeq++
	id := ids.BatchID{Origin: h.id, Seq: h.nextBatchSeq}
	b := &mhBatch{id: id, open: msg.BatchOpen{MH: h.id, Batch: id, Inc: h.inc}}
	h.batches[id] = b
	h.transmit(b.open)
	return id
}

// BatchRequest issues one member request inside an open batch. Its
// result arrives through the normal delivery path, but only once the
// whole batch releases. It panics on an unknown or closed batch —
// batches are driver-local objects, so that is a programming error.
func (h *MHNode) BatchRequest(batch ids.BatchID, server ids.Server, payload []byte) ids.RequestID {
	if h.w.IsCrashed(h.id) {
		return ids.RequestID{}
	}
	b := h.batches[batch]
	if b == nil || b.committed || b.aborted {
		panic(fmt.Sprintf("rdpcore: BatchRequest on closed batch %v", batch))
	}
	h.nextSeq++
	req := ids.RequestID{Origin: h.id, Seq: h.nextSeq}
	h.issuedAt[req] = h.w.Kernel.Now()
	h.outstanding[req] = true
	h.batchOf[req] = batch
	h.w.Stats.RequestsIssued.Inc()
	it := msg.BatchItem{MH: h.id, Batch: batch, Req: req, Server: server, Payload: payload, Inc: h.inc}
	b.items = append(b.items, it)
	h.transmit(it)
	return req
}

// CommitBatch seals the batch. From here the retry chain re-offers the
// whole batch (open, unseen items, commit) on the request-timeout
// period until every member result arrived or the proxy aborted it —
// the batch-level analogue of scheduleRetry.
func (h *MHNode) CommitBatch(batch ids.BatchID) {
	if h.w.IsCrashed(h.id) {
		return
	}
	b := h.batches[batch]
	if b == nil || b.committed || b.aborted {
		return
	}
	b.committed = true
	h.transmit(msg.BatchCommit{MH: h.id, Batch: batch, Count: uint32(len(b.items))})
	h.scheduleBatchRetry(b)
}

// batchResolved reports whether the batch needs no further client
// action: aborted, or committed with every member result delivered.
func (h *MHNode) batchResolved(b *mhBatch) bool {
	if b.aborted {
		return true
	}
	if !b.committed {
		return false
	}
	for _, it := range b.items {
		if !h.seen[it.Req] {
			return false
		}
	}
	return true
}

// scheduleBatchRetry keeps re-offering a committed batch until it
// resolves. Like scheduleRetry it skips the resend while the host
// cannot transmit, keeping the chain alive for later.
func (h *MHNode) scheduleBatchRetry(b *mhBatch) {
	if h.w.cfg.RequestTimeout <= 0 {
		return
	}
	h.after(h.w.cfg.RequestTimeout, func() {
		if h.batchResolved(b) || !h.joined {
			return
		}
		if h.w.IsActive(h.id) && !h.w.IsDisconnected(h.id) {
			h.w.Stats.RequestRetries.Inc()
			h.uplink(b.open)
			for _, it := range b.items {
				if !h.seen[it.Req] {
					h.uplink(it)
				}
			}
			h.uplink(msg.BatchCommit{MH: h.id, Batch: b.id, Count: uint32(len(b.items))})
		}
		h.scheduleBatchRetry(b)
	})
}

// onBatchAbort abandons every member of an aborted batch: the proxy's
// deadline expired before the batch became deliverable, and atomicity
// means no member may be delivered afterwards. A delivered member at
// abort time would be a partial delivery — the proxy guarantees this
// cannot happen, so it is counted as a violation.
func (h *MHNode) onBatchAbort(a msg.BatchAbort) {
	// Union the abort's member list with our own: a re-abort from a
	// migrated proxy incarnation carries an empty list (the memo travels
	// without members), but this host knows exactly what it issued.
	reqs := append([]ids.RequestID(nil), a.Reqs...)
	if b := h.batches[a.Batch]; b != nil {
		b.aborted = true
		for _, it := range b.items {
			reqs = append(reqs, it.Req)
		}
	}
	handled := make(map[ids.RequestID]bool, len(reqs))
	for _, req := range reqs {
		if handled[req] {
			continue
		}
		handled[req] = true
		if h.seen[req] {
			h.w.Stats.Violations.Inc()
			continue
		}
		if h.abandoned[req] {
			continue
		}
		h.abandoned[req] = true
		delete(h.outstanding, req)
		delete(h.pending, req)
		delete(h.busyAttempts, req)
		delete(h.retryMsgs, req)
		delete(h.deadlines, req)
		delete(h.batchOf, req)
	}
}

// BatchStatus reports the terminal view of a batch at this host: how
// many member results have been delivered, the member count, and
// whether the batch was aborted (experiment and test hook).
func (h *MHNode) BatchStatus(id ids.BatchID) (delivered, members int, aborted bool) {
	b := h.batches[id]
	if b == nil {
		return 0, 0, false
	}
	for _, it := range b.items {
		if h.seen[it.Req] {
			delivered++
		}
	}
	return delivered, len(b.items), b.aborted
}

// uplink transmits over the wireless link to the current respMss.
func (h *MHNode) uplink(m msg.Message) {
	h.w.Wireless.SendUplink(h.id, h.respMss, m)
}
