package rdpcore

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// MHNode is a mobile host (§2): a disconnected computer with a
// system-wide unique identification that is either active or inactive,
// joins and leaves the system, migrates between cells, issues requests
// through its respMss, and acknowledges every message received from it
// (assumption 4). Duplicate detection (assumption 5) is implemented with
// the set of request identifiers already answered.
type MHNode struct {
	id      ids.MH
	w       *World
	respMss ids.MSS
	joined  bool
	// regOld is the last station that *confirmed* a registration (see
	// Config.RegConfirm). With confirmations on, greets name it as the
	// old respMss: a station that never actually registered the MH (its
	// greet was lost to a crash) must not anchor the hand-off chain.
	regOld ids.MSS

	nextSeq  uint32
	seen     map[ids.RequestID]bool
	issuedAt map[ids.RequestID]sim.Time
	// outstanding holds requests issued whose results have not yet been
	// received; its emptiness is piggybacked on every Ack (see
	// msg.AckMH.HaveOutstanding).
	outstanding map[ids.RequestID]bool

	// queued holds requests issued while inactive; they are transmitted
	// on the next activation (a minimal QRPC-style request queue; the
	// paper cites Rover's QRPC as the complementary mechanism for
	// reliable request sending).
	queued []msg.Request

	// admitted marks requests the responsible MSS acknowledged past
	// admission control (msg.Admit): they are covered by the delivery
	// guarantee and are never abandoned or busy-retried again.
	admitted map[ids.RequestID]bool
	// abandoned marks never-admitted requests whose per-request deadline
	// expired (Config.RequestDeadline); the client gave up on them.
	abandoned map[ids.RequestID]bool
	// pending retains the full request message while it may still need a
	// busy re-issue (a Busy NACK only carries the request identifier).
	pending map[ids.RequestID]msg.Request
	// busyAttempts counts Busy NACKs per request, driving the capped
	// exponential backoff.
	busyAttempts map[ids.RequestID]int
	// rng is a lazily forked random stream for backoff jitter. Lazy so
	// configurations without busy-retry never draw from the kernel
	// stream (golden traces depend on the default draw order).
	rng *sim.RNG

	// onResult, when set, observes every result delivery (first or
	// duplicate) for application callbacks and tests.
	onResult func(req ids.RequestID, payload []byte, duplicate bool)
}

// newMHNode constructs a mobile host bound to a world.
func newMHNode(id ids.MH, w *World) *MHNode {
	return &MHNode{
		id:           id,
		w:            w,
		seen:         make(map[ids.RequestID]bool),
		issuedAt:     make(map[ids.RequestID]sim.Time),
		outstanding:  make(map[ids.RequestID]bool),
		admitted:     make(map[ids.RequestID]bool),
		abandoned:    make(map[ids.RequestID]bool),
		pending:      make(map[ids.RequestID]msg.Request),
		busyAttempts: make(map[ids.RequestID]int),
	}
}

// ID returns the mobile host identifier.
func (h *MHNode) ID() ids.MH { return h.id }

// RespMss returns the station the MH currently considers responsible
// for it.
func (h *MHNode) RespMss() ids.MSS { return h.respMss }

// Joined reports whether the MH is part of the system.
func (h *MHNode) Joined() bool { return h.joined }

// Seen reports whether the result of req has been received.
func (h *MHNode) Seen(req ids.RequestID) bool { return h.seen[req] }

// Admitted reports whether the responsible MSS acknowledged req past
// admission control (overload protection, E11). A request that was
// delivered counts as admitted even if the explicit Admit was lost.
func (h *MHNode) Admitted(req ids.RequestID) bool { return h.admitted[req] || h.seen[req] }

// Abandoned reports whether the client gave up on a never-admitted
// request at its deadline (see Config.RequestDeadline).
func (h *MHNode) Abandoned(req ids.RequestID) bool { return h.abandoned[req] }

// OnResult installs the result observer callback.
func (h *MHNode) OnResult(fn func(req ids.RequestID, payload []byte, duplicate bool)) {
	h.onResult = fn
}

// join sends the join message to the station of the current cell (§2).
func (h *MHNode) join(cell ids.MSS) {
	h.respMss = cell
	h.joined = true
	h.regOld = 0 // no confirmed registration yet in this membership
	h.uplink(msg.Join{MH: h.id})
	if h.w.cfg.GreetRefresh > 0 {
		h.scheduleRefresh()
	}
}

// greetOld picks the old respMss a greet should name: the last confirmed
// station when confirmations are on (falling back to the believed one
// before the first confirmation), else the believed one.
func (h *MHNode) greetOld(prev ids.MSS) ids.MSS {
	if h.w.cfg.RegConfirm && h.regOld != 0 {
		return h.regOld
	}
	return prev
}

// refreshGreet re-sends a registration beacon to the current respMss.
func (h *MHNode) refreshGreet() {
	h.uplink(msg.Greet{MH: h.id, OldMSS: h.greetOld(h.respMss)})
}

// scheduleRefresh re-greets the current respMss on a fixed period while
// the MH is active (see Config.GreetRefresh).
func (h *MHNode) scheduleRefresh() {
	h.w.Kernel.Defer(h.w.cfg.GreetRefresh, func() {
		if !h.joined {
			return
		}
		if h.w.IsActive(h.id) {
			h.refreshGreet()
		}
		h.scheduleRefresh()
	})
}

// leave exits the system (§2). Assumption 6 requires all results to have
// been acknowledged; the responsible MSS checks and records a violation
// otherwise.
func (h *MHNode) leave() {
	if !h.joined {
		return
	}
	h.uplink(msg.Leave{MH: h.id})
	h.joined = false
}

// IssueRequest creates a new service request and transmits it through
// the current respMss (§3.1). While inactive the request is queued and
// sent on the next activation. The returned identifier lets callers
// correlate the eventual result.
func (h *MHNode) IssueRequest(server ids.Server, payload []byte) ids.RequestID {
	h.nextSeq++
	req := ids.RequestID{Origin: h.id, Seq: h.nextSeq}
	h.issuedAt[req] = h.w.Kernel.Now()
	h.outstanding[req] = true
	h.w.Stats.RequestsIssued.Inc()
	m := msg.Request{Req: req, Server: server, Payload: payload}
	if h.w.cfg.BusyRetryBase > 0 {
		h.pending[req] = m
	}
	if h.w.IsActive(h.id) && h.joined {
		h.uplink(m)
	} else {
		h.queued = append(h.queued, m)
	}
	if h.w.cfg.RequestTimeout > 0 {
		h.scheduleRetry(m)
	}
	if h.w.cfg.RequestDeadline > 0 {
		h.scheduleDeadline(req)
	}
	return req
}

// scheduleDeadline abandons a request that is still un-admitted when its
// deadline expires (see Config.RequestDeadline). Admitted requests are
// covered by the delivery guarantee and are never abandoned; abandoning
// stops the busy-retry machinery for this request.
func (h *MHNode) scheduleDeadline(req ids.RequestID) {
	h.w.Kernel.Defer(h.w.cfg.RequestDeadline, func() {
		if h.seen[req] || h.admitted[req] {
			return
		}
		h.abandoned[req] = true
		delete(h.outstanding, req)
		delete(h.pending, req)
		delete(h.busyAttempts, req)
		h.w.Stats.RequestsAbandoned.Inc()
	})
}

// scheduleRetry re-sends a request whose result has not arrived within
// the configured timeout. This client-side shim covers the one gap RDP
// leaves open by design — reliable *request* sending (the paper assigns
// it to QRPC, §4) — and lets a stationary MH recover a result whose
// wireless delivery was lost (the proxy re-forwards the stored result on
// a duplicate request).
func (h *MHNode) scheduleRetry(m msg.Request) {
	h.w.Kernel.Defer(h.w.cfg.RequestTimeout, func() {
		if h.seen[m.Req] || h.abandoned[m.Req] || !h.joined {
			return
		}
		if h.w.IsActive(h.id) {
			h.w.Stats.RequestRetries.Inc()
			h.uplink(m)
		}
		h.scheduleRetry(m)
	})
}

// Retransmit re-sends a previously issued request through the current
// respMss — the hook the queued-RPC layer (internal/qrpc) uses for its
// backoff resends. It is a no-op once the result has been received or
// while the host cannot transmit. The proxy deduplicates re-arrivals
// and re-forwards a stored result, so retransmission is always safe.
func (h *MHNode) Retransmit(req ids.RequestID, server ids.Server, payload []byte) {
	if h.seen[req] || h.abandoned[req] || !h.joined || !h.w.IsActive(h.id) {
		return
	}
	h.w.Stats.RequestRetries.Inc()
	h.uplink(msg.Request{Req: req, Server: server, Payload: payload})
}

// onMigrate is invoked by the World when the (active) MH enters a new
// cell: it greets the new station, naming the old one so the Hand-off
// can start (§2, §3.2). From this moment the MH answers only the new
// station.
func (h *MHNode) onMigrate(newCell ids.MSS) {
	old := h.greetOld(h.respMss)
	h.respMss = newCell
	h.uplink(msg.Greet{MH: h.id, OldMSS: old})
}

// onActivate is invoked by the World when the MH becomes active. It
// greets the station of the cell it woke up in — the same station (no
// hand-off; §3.2) or a new one if it was carried while inactive — and
// flushes requests queued during inactivity.
func (h *MHNode) onActivate(cell ids.MSS) {
	old := h.greetOld(h.respMss)
	h.respMss = cell
	h.uplink(msg.Greet{MH: h.id, OldMSS: old})
	queued := h.queued
	h.queued = nil
	for _, m := range queued {
		h.uplink(m)
	}
}

// HandleMessage implements netsim.Handler for the MH's radio. Per §3.2,
// after greeting a new station the MH "must not reply to any message
// from any MSS other than" it, so traffic from other stations is
// dropped.
func (h *MHNode) HandleMessage(from ids.NodeID, m msg.Message) {
	if from != h.respMss.Node() {
		h.w.Stats.OrphanMessages.Inc()
		return
	}
	if _, ok := m.(msg.RegConfirm); ok {
		// The station confirmed our registration; future greets may
		// anchor their hand-off chain here (see Config.RegConfirm).
		h.regOld = h.respMss
		return
	}
	if a, ok := m.(msg.Admit); ok {
		// The request is past admission control: the delivery guarantee
		// now covers it, so the busy-retry machinery stands down.
		h.admitted[a.Req] = true
		delete(h.pending, a.Req)
		delete(h.busyAttempts, a.Req)
		return
	}
	if b, ok := m.(msg.Busy); ok {
		h.onBusy(b.Req)
		return
	}
	r, ok := m.(msg.ResultDeliver)
	if !ok {
		h.w.Stats.OrphanMessages.Inc()
		return
	}
	duplicate := h.seen[r.Req]
	h.seen[r.Req] = true
	delete(h.outstanding, r.Req)
	delete(h.pending, r.Req)
	delete(h.busyAttempts, r.Req)
	if duplicate {
		h.w.Stats.DuplicateDeliveries.Inc()
	} else {
		h.w.Stats.ResultsDelivered.Inc()
		if at, known := h.issuedAt[r.Req]; known {
			h.w.Stats.ResultLatency.Observe(time.Duration(h.w.Kernel.Now() - at))
		}
	}
	// Assumption 4: an active MH acknowledges every message from its
	// respMss — including retransmissions, or the proxy would re-send
	// forever. The Ack states whether other requests are still awaiting
	// results (§3.3's "not preceded by any new request" condition).
	h.uplink(msg.AckMH{MH: h.id, Req: r.Req, HaveOutstanding: len(h.outstanding) > 0})
	if h.onResult != nil {
		h.onResult(r.Req, r.Payload, duplicate)
	}
}

// onBusy reacts to an admission refusal: re-issue the request after a
// capped exponential backoff with jitter (overload protection, E11).
// The retry is event-driven — each re-issue either gets admitted, gets
// another Busy (scheduling the next, longer backoff), or dies with a
// lost frame, in which case the request deadline is the backstop.
func (h *MHNode) onBusy(req ids.RequestID) {
	m, ok := h.pending[req]
	if !ok || h.seen[req] || h.admitted[req] || h.abandoned[req] {
		return
	}
	attempt := h.busyAttempts[req]
	h.busyAttempts[req] = attempt + 1
	h.w.Kernel.Defer(h.backoff(attempt), func() {
		if _, live := h.pending[req]; !live || h.seen[req] || h.admitted[req] || h.abandoned[req] {
			return
		}
		if !h.joined || !h.w.IsActive(h.id) {
			return
		}
		h.w.Stats.BusyRetries.Inc()
		h.uplink(m)
	})
}

// backoff returns min(BusyRetryBase·2^attempt, BusyRetryMax) plus up to
// 50% uniform jitter, so synchronized refused clients don't re-offer
// their load in lockstep.
func (h *MHNode) backoff(attempt int) time.Duration {
	base := h.w.cfg.BusyRetryBase
	max := h.w.cfg.BusyRetryMax
	if max <= 0 {
		max = 32 * base
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if h.rng == nil {
		h.rng = h.w.Kernel.RNG().Fork()
	}
	return d + h.rng.Uniform(0, d/2)
}

// uplink transmits over the wireless link to the current respMss.
func (h *MHNode) uplink(m msg.Message) {
	h.w.Wireless.SendUplink(h.id, h.respMss, m)
}
