package rdpcore

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scriptedProc replays a fixed sequence of processing delays, then zero.
type scriptedProc struct {
	delays []time.Duration
	i      int
}

func (s *scriptedProc) Sample(*sim.RNG) time.Duration {
	if s.i < len(s.delays) {
		d := s.delays[s.i]
		s.i++
		return d
	}
	return 0
}

func (s *scriptedProc) Mean() time.Duration { return 0 }

// figureWorld builds the 3-station, 1-server world used by the paper's
// worked examples, with deterministic latencies: 5ms wired, 10ms
// wireless. The trace recorder observes both substrates.
func figureWorld(t *testing.T, proc netsim.LatencyModel) (*World, *trace.Recorder) {
	t.Helper()
	rec := trace.New()
	cfg := DefaultConfig()
	cfg.NumMSS = 3
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = proc
	cfg.Observer = rec.Observe
	return NewWorld(cfg), rec
}

// TestScenarioFigure3 reproduces Figure 3 of the paper: a single request
// issued at MssP, the MH migrating to MssO and then MssN while the
// result is in flight. The proxy's first forward (to MssO) is lost
// because the MH has moved on; the update_currentLoc from MssN triggers
// the retransmission that finally delivers, and the Ack with del-proxy
// deletes the proxy.
//
// Cast: mssP = mss1 (proxy host), mssO = mss2, mssN = mss3, mh1, srv1.
func TestScenarioFigure3(t *testing.T) {
	w, rec := figureWorld(t, netsim.Constant(100*time.Millisecond))
	var (
		mssP = ids.MSS(1)
		mssO = ids.MSS(2)
		mssN = ids.MSS(3)
		srv  = ids.Server(1)
	)
	mh := w.AddMH(1, mssP)

	// t=0: request issued at MssP (reaches it at 10ms; server reply
	// ready at 115ms, back at proxy at 120ms).
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mh.IssueRequest(srv, []byte("q")) })
	// t=20ms: migrate to MssO (hand-off completes ~40ms; update_currl
	// reaches the proxy at 45ms).
	w.Kernel.After(20*time.Millisecond, func() { w.Migrate(1, mssO) })
	// t=126ms: migrate to MssN just after the proxy forwarded the result
	// to MssO (125ms) but before MssO's wireless delivery lands (135ms),
	// so the first delivery attempt is lost.
	w.Kernel.After(126*time.Millisecond, func() { w.Migrate(1, mssN) })

	w.RunUntil(2 * time.Second)

	steps := []trace.Step{
		{Kind: msg.KindRequest, From: ids.MH(1).Node(), To: mssP.Node(), Note: "request at MssP"},
		{Kind: msg.KindServerRequest, From: mssP.Node(), To: srv.Node()},
		{Kind: msg.KindGreet, To: mssO.Node(), Note: "greet MssO"},
		{Kind: msg.KindDereg, From: mssO.Node(), To: mssP.Node()},
		{Kind: msg.KindDeregAck, From: mssP.Node(), To: mssO.Node(),
			Check: func(m msg.Message) bool { return m.(msg.DeregAck).Pref.HasProxy() },
			Note:  "pref handed over"},
		{Kind: msg.KindUpdateCurrentLoc, From: mssO.Node(), To: mssP.Node()},
		{Kind: msg.KindServerResult, From: srv.Node(), To: mssP.Node()},
		{Kind: msg.KindResultForward, From: mssP.Node(), To: mssO.Node(),
			Check: func(m msg.Message) bool { return m.(msg.ResultForward).DelPref },
			Note:  "first forward, del-pref, lost on wireless"},
		{Kind: msg.KindGreet, To: mssN.Node(), Note: "greet MssN"},
		{Kind: msg.KindDereg, From: mssN.Node(), To: mssO.Node()},
		{Kind: msg.KindDeregAck, From: mssO.Node(), To: mssN.Node()},
		{Kind: msg.KindUpdateCurrentLoc, From: mssN.Node(), To: mssP.Node()},
		{Kind: msg.KindResultForward, From: mssP.Node(), To: mssN.Node(),
			Check: func(m msg.Message) bool { return m.(msg.ResultForward).DelPref },
			Note:  "retransmission to MssN"},
		{Kind: msg.KindResultDeliver, From: mssN.Node(), To: ids.MH(1).Node(), Note: "delivered"},
		{Kind: msg.KindAckMH, From: ids.MH(1).Node(), To: mssN.Node()},
		{Kind: msg.KindAckForward, From: mssN.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool { return m.(msg.AckForward).DelProxy },
			Note:  "ack with del-proxy"},
	}
	if err := rec.ExpectSequence(steps); err != nil {
		t.Fatal(err)
	}

	if !mh.Seen(req) {
		t.Error("result never delivered to the MH")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.Retransmissions.Value(); got != 1 {
		t.Errorf("Retransmissions = %d, want exactly 1 (the MssO forward was lost)", got)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0 after del-proxy", got)
	}
	if pref, ok := w.MSSs[mssN].PrefOf(1); !ok || pref.HasProxy() {
		t.Errorf("pref at MssN = %v,%t; want present and empty", pref, ok)
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1", got)
	}
	if got := w.Stats.ProxiesDeleted.Value(); got != 1 {
		t.Errorf("ProxiesDeleted = %d, want 1", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestScenarioFigure4 reproduces Figure 4: three overlapping requests
// through one proxy, the RKpR flag being re-armed and cleared, the
// del-pref-only special message, and final proxy deletion on AckC.
//
// Cast: mssP = mss1 (proxy host), mss = mss2, mh1, srv1. Server
// processing times are scripted per request: A=30ms, B=60ms, C=55ms,
// which yields the paper's event order (see DESIGN.md F4).
func TestScenarioFigure4(t *testing.T) {
	proc := &scriptedProc{delays: []time.Duration{30 * time.Millisecond, 60 * time.Millisecond, 55 * time.Millisecond}}
	w, rec := figureWorld(t, proc)
	var (
		mssP = ids.MSS(1)
		mss2 = ids.MSS(2)
		srv  = ids.Server(1)
	)
	mh := w.AddMH(1, mssP)

	var reqA, reqB, reqC ids.RequestID
	w.Kernel.After(0, func() { reqA = mh.IssueRequest(srv, []byte("A")) })
	// t=20ms: migrate to mss2; hand-off completes by 40ms.
	w.Kernel.After(20*time.Millisecond, func() { w.Migrate(1, mss2) })
	// resultA delivered to the MH at 65ms; requestB is issued at 60ms so
	// it reaches mss2 (70ms) before AckA does (75ms) — the paper's
	// "issues a new requestB before sending an Ack for resultA" race.
	w.Kernel.After(60*time.Millisecond, func() { reqB = mh.IssueRequest(srv, []byte("B")) })
	w.Kernel.After(80*time.Millisecond, func() { reqC = mh.IssueRequest(srv, []byte("C")) })

	w.RunUntil(2 * time.Second)

	steps := []trace.Step{
		// requestA creates the proxy at MssP and goes to the server.
		{Kind: msg.KindServerRequest, From: mssP.Node(), To: srv.Node()},
		// Hand-off to mss2.
		{Kind: msg.KindDeregAck, From: mssP.Node(), To: mss2.Node()},
		{Kind: msg.KindUpdateCurrentLoc, From: mss2.Node(), To: mssP.Node()},
		// resultA forwarded with del-pref (only pending request).
		{Kind: msg.KindResultForward, From: mssP.Node(), To: mss2.Node(),
			Check: func(m msg.Message) bool {
				v := m.(msg.ResultForward)
				return v.DelPref && string(v.Payload) == "re:A"
			},
			Note: "resultA del-pref"},
		{Kind: msg.KindResultDeliver, To: ids.MH(1).Node(),
			Check: func(m msg.Message) bool { return string(m.(msg.ResultDeliver).Payload) == "re:A" }},
		// requestB reaches mss2 before AckA, clearing RKpR...
		{Kind: msg.KindRequestForward, From: mss2.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool { return string(m.(msg.RequestForward).Payload) == "B" }},
		// ...so AckA travels with del-proxy=false and the proxy survives.
		{Kind: msg.KindAckForward, From: mss2.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool {
				v := m.(msg.AckForward)
				return !v.DelProxy
			},
			Note: "AckA, del-proxy=false"},
		// requestC joins the requestList.
		{Kind: msg.KindRequestForward, From: mss2.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool { return string(m.(msg.RequestForward).Payload) == "C" }},
		// resultB forwarded without del-pref (B and C both pending).
		{Kind: msg.KindResultForward, From: mssP.Node(), To: mss2.Node(),
			Check: func(m msg.Message) bool {
				v := m.(msg.ResultForward)
				return !v.DelPref && string(v.Payload) == "re:B"
			},
			Note: "resultB, no del-pref"},
		// resultC forwarded without del-pref (AckB not yet at proxy).
		{Kind: msg.KindResultForward, From: mssP.Node(), To: mss2.Node(),
			Check: func(m msg.Message) bool {
				v := m.(msg.ResultForward)
				return !v.DelPref && string(v.Payload) == "re:C"
			},
			Note: "resultC, no del-pref"},
		// AckB reaches the proxy; only C pending, already forwarded ->
		// the Fig. 4 special del-pref-only message.
		{Kind: msg.KindAckForward, From: mss2.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool { return !m.(msg.AckForward).DelProxy },
			Note:  "AckB"},
		{Kind: msg.KindDelPrefOnly, From: mssP.Node(), To: mss2.Node(), Note: "special del-pref message"},
		// AckC finally confirms removal.
		{Kind: msg.KindAckForward, From: mss2.Node(), To: mssP.Node(),
			Check: func(m msg.Message) bool { return m.(msg.AckForward).DelProxy },
			Note:  "AckC, del-proxy"},
	}
	if err := rec.ExpectSequence(steps); err != nil {
		t.Fatal(err)
	}

	for _, req := range []ids.RequestID{reqA, reqB, reqC} {
		if !mh.Seen(req) {
			t.Errorf("result of %v not delivered", req)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 3 {
		t.Errorf("ResultsDelivered = %d, want 3", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1 (one proxy serves all three requests)", got)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestScenarioFigure4AlternativeEnding exercises the final paragraph of
// §3.4: if the del-pref-only message arrives at the respMss after AckC
// has already been relayed, RKpR is still false when AckC passes
// through, del-proxy stays false, and the proxy survives — to be reused
// by the MH's next request.
func TestScenarioFigure4AlternativeEnding(t *testing.T) {
	// Per-request processing: A=30ms, B=80ms, C=68ms. resultC is
	// delivered 8ms after resultB, so AckC reaches mss2 (198ms) after
	// AckB reached the proxy (195ms) but before the del-pref-only
	// message lands there (200ms) — the exact race of §3.4's closing
	// paragraph.
	proc := &scriptedProc{delays: []time.Duration{30 * time.Millisecond, 80 * time.Millisecond, 68 * time.Millisecond}}
	w, rec := figureWorld(t, proc)
	var (
		mssP = ids.MSS(1)
		mss2 = ids.MSS(2)
		srv  = ids.Server(1)
	)
	mh := w.AddMH(1, mssP)

	var reqD ids.RequestID
	w.Kernel.After(0, func() { mh.IssueRequest(srv, []byte("A")) })
	w.Kernel.After(20*time.Millisecond, func() { w.Migrate(1, mss2) })
	w.Kernel.After(60*time.Millisecond, func() { mh.IssueRequest(srv, []byte("B")) })
	w.Kernel.After(80*time.Millisecond, func() { mh.IssueRequest(srv, []byte("C")) })
	w.RunUntil(1 * time.Second)

	// The del-pref-only message was sent but arrived with RKpR disarmed
	// by then-newer traffic, or after the last ack: the proxy survives.
	if got := rec.CountDelivered(msg.KindDelPrefOnly); got != 1 {
		t.Fatalf("DelPrefOnly deliveries = %d, want 1", got)
	}
	if got := w.TotalProxies(); got != 1 {
		t.Fatalf("TotalProxies = %d, want 1 (proxy must survive)", got)
	}
	pref, ok := w.MSSs[mss2].PrefOf(1)
	if !ok || !pref.HasProxy() {
		t.Fatalf("pref at mss2 = %v,%t; want a live proxy reference", pref, ok)
	}

	// The surviving proxy serves the next request, and a fresh
	// del-pref/ack round finally deletes it.
	w.Kernel.After(0, func() { reqD = mh.IssueRequest(srv, []byte("D")) })
	w.RunUntil(2 * time.Second)
	if !mh.Seen(reqD) {
		t.Error("request D not answered by the surviving proxy")
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1 (no second proxy)", got)
	}
	if got := w.TotalProxies(); got != 0 {
		t.Errorf("TotalProxies = %d, want 0 after D's ack", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if err := w.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
