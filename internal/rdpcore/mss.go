package rdpcore

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// arrival tracks a mobile host whose greet has been received but whose
// hand-off has not yet completed (dereg sent, deregack pending). Paper
// §2 assumption 4: during the hand-off the MH "may be considered
// inactive by both" stations, so traffic from it is buffered rather than
// processed.
//
// A fast-moving host can leave and re-enter cells while earlier
// hand-offs are still settling, producing greets and deregs that arrive
// at a station whose own registration for that host is pending. Those
// control messages are recorded in deferred, in arrival order, and
// replayed once the registration completes — reconstructing the host's
// true migration chronology one hand-off at a time (see
// handleDeregAck). The paper's presentation assumes hand-offs complete
// before the next migration starts; this queue is the completing
// decision for when they do not.
type arrival struct {
	greetAt  sim.Time
	buffered []inboxItem // wireless data (requests, acks) from the MH
	deferred []inboxItem // greets/deregs awaiting our registration
}

// inboxItem is one queued message at an MSS.
type inboxItem struct {
	from ids.NodeID
	m    msg.Message
}

// MSSNode is a mobile support station (§2): it serves one cell, holds
// the prefs of the MHs it is responsible for, hosts proxies, runs the
// Hand-off protocol, and translates between the wired and wireless
// substrates (the indirect model of Badrinath et al.).
type MSSNode struct {
	id ids.MSS
	w  *World

	// localMhs is the set of MHs this station is responsible for (§2).
	localMhs map[ids.MH]bool
	// prefs holds one proxy reference per responsible MH (§3.1).
	prefs map[ids.MH]*msg.Pref
	// outstanding tracks, per MH, the requests this station has routed
	// whose Acks it has not yet seen. §3.3 confirms proxy removal "only
	// if ... RKpR = true and for all of MH's requests the corresponding
	// Ack has been received" — the RKpR flag alone is not enough, because
	// a request can pass through before the del-pref result arrives and
	// arms the flag. Like the pref's other local context, this knowledge
	// is not transferred on hand-off.
	outstanding map[ids.MH]map[ids.RequestID]bool
	// proxies are the proxy objects hosted at this station, by sequence.
	proxies      map[uint32]*Proxy
	nextProxySeq uint32
	// ignoreAcks marks MHs whose dereg has been processed: "it will
	// ignore all future Ack messages from this MH" (§3.1).
	ignoreAcks map[ids.MH]bool
	// forwardTo records, per de-registered MH, the station that took over
	// responsibility (learned from the Dereg). A request can be in flight
	// over the old cell's radio when the hand-off completes; dropping it
	// would break the delivery guarantee for that request, and unlike
	// Acks (which retransmission covers) nothing would ever re-create it.
	// The paper does not discuss this in-flight case; forwarding along
	// the hand-off chain is the completing decision (cf. DESIGN.md).
	forwardTo map[ids.MH]ids.MSS
	// arriving tracks in-flight hand-offs keyed by MH.
	arriving map[ids.MH]*arrival
	// pendingDeregs holds deregs for MHs this station knows nothing
	// about *yet*. An MH only names a station as its old respMss after
	// greeting it, so such a dereg means our own greet (and hand-off)
	// for that MH is still in flight, merely overtaken on another radio
	// link; the dereg is served once the greet lands (it moves into that
	// arrival's deferred queue) or a join registers the MH. Answering
	// immediately with an empty pref would fabricate a registration and
	// lose the real proxy reference.
	pendingDeregs map[ids.MH][]inboxItem
	// held stores results kept for inactive MHs when the §5 footnote 3
	// optimization is enabled. heldAcksPending tracks which of the
	// just-delivered held results still await their Ack, and
	// deferredUpdate marks MHs whose reactivation update_currentLoc is
	// postponed until those Acks have passed through — otherwise the
	// update would reach the proxy before the Acks and trigger exactly
	// the retransmission the optimization exists to save.
	held            map[ids.MH][]msg.ResultDeliver
	heldAcksPending map[ids.MH]map[ids.RequestID]bool
	deferredUpdate  map[ids.MH]bool

	// inbox implements the priority rule of §3.1 ("higher priority is
	// given to forwarding Ack messages than to engaging in any new
	// Hand-off transactions") when per-message processing delay is
	// configured; with zero delay messages are processed on arrival.
	inbox         []inboxItem
	procScheduled bool
}

// newMSSNode constructs a station bound to a world.
func newMSSNode(id ids.MSS, w *World) *MSSNode {
	return &MSSNode{
		id:              id,
		w:               w,
		localMhs:        make(map[ids.MH]bool),
		prefs:           make(map[ids.MH]*msg.Pref),
		outstanding:     make(map[ids.MH]map[ids.RequestID]bool),
		proxies:         make(map[uint32]*Proxy),
		ignoreAcks:      make(map[ids.MH]bool),
		forwardTo:       make(map[ids.MH]ids.MSS),
		arriving:        make(map[ids.MH]*arrival),
		pendingDeregs:   make(map[ids.MH][]inboxItem),
		held:            make(map[ids.MH][]msg.ResultDeliver),
		heldAcksPending: make(map[ids.MH]map[ids.RequestID]bool),
		deferredUpdate:  make(map[ids.MH]bool),
	}
}

// ID returns the station identifier.
func (n *MSSNode) ID() ids.MSS { return n.id }

// Responsible reports whether the station currently holds
// responsibility for mh.
func (n *MSSNode) Responsible(mh ids.MH) bool { return n.localMhs[mh] }

// PrefOf returns a copy of the pref held for mh and whether one exists
// (test and invariant-checking hook).
func (n *MSSNode) PrefOf(mh ids.MH) (msg.Pref, bool) {
	p, ok := n.prefs[mh]
	if !ok {
		return msg.Pref{}, false
	}
	return *p, true
}

// HostedProxies returns the number of proxies currently hosted here.
func (n *MSSNode) HostedProxies() int { return len(n.proxies) }

// ProxyByID returns a hosted proxy (tests and invariant checks).
func (n *MSSNode) ProxyByID(id ids.ProxyID) *Proxy {
	if id.Host != n.id {
		return nil
	}
	return n.proxies[id.Seq]
}

// HandleMessage implements netsim.Handler for both substrates.
func (n *MSSNode) HandleMessage(from ids.NodeID, m msg.Message) {
	if n.w.cfg.ProcDelay <= 0 {
		n.process(from, m)
		return
	}
	n.inbox = append(n.inbox, inboxItem{from: from, m: m})
	n.scheduleProcessing()
}

func (n *MSSNode) scheduleProcessing() {
	if n.procScheduled || len(n.inbox) == 0 {
		return
	}
	n.procScheduled = true
	n.w.Kernel.After(n.w.cfg.ProcDelay, n.processNext)
}

// processNext pops one inbox item — Acks first when the §3.1 priority
// rule is enabled — and processes it.
func (n *MSSNode) processNext() {
	n.procScheduled = false
	if len(n.inbox) == 0 {
		return
	}
	idx := 0
	if n.w.cfg.AckPriority {
		for i, it := range n.inbox {
			if it.m.Kind() == msg.KindAckMH {
				idx = i
				break
			}
		}
	}
	it := n.inbox[idx]
	n.inbox = append(n.inbox[:idx], n.inbox[idx+1:]...)
	n.process(it.from, it.m)
	n.scheduleProcessing()
}

// process dispatches one message.
func (n *MSSNode) process(from ids.NodeID, m msg.Message) {
	switch v := m.(type) {
	case msg.Join:
		n.handleJoin(v)
	case msg.Leave:
		n.handleLeave(v)
	case msg.Greet:
		n.handleGreet(v)
	case msg.Request:
		n.handleRequest(from, v)
	case msg.AckMH:
		n.handleAckMH(from, v)
	case msg.Dereg:
		n.handleDereg(from, v)
	case msg.DeregAck:
		n.handleDeregAck(v)
	case msg.RequestForward:
		n.handleRequestForward(v)
	case msg.UpdateCurrentLoc:
		n.handleUpdateCurrentLoc(v)
	case msg.ResultForward:
		n.handleResultForward(v)
	case msg.DelPrefOnly:
		n.handleDelPrefOnly(v)
	case msg.AckForward:
		n.handleAckForward(v)
	case msg.ServerResult:
		n.handleServerResult(v)
	default:
		n.w.Stats.OrphanMessages.Inc()
	}
}

// handleJoin registers a new MH in the cell (§2).
func (n *MSSNode) handleJoin(m msg.Join) {
	n.localMhs[m.MH] = true
	delete(n.ignoreAcks, m.MH)
	delete(n.forwardTo, m.MH)
	if _, ok := n.prefs[m.MH]; !ok {
		n.prefs[m.MH] = &msg.Pref{}
	}
	// Serve deregs that were parked while we knew nothing about the MH:
	// now registered, the normal responsible path answers them.
	if parked := n.pendingDeregs[m.MH]; len(parked) > 0 {
		delete(n.pendingDeregs, m.MH)
		for _, it := range parked {
			n.process(it.from, it.m)
		}
	}
}

// handleLeave removes an MH from the system. Assumption 6 guarantees it
// has acknowledged everything; a live proxy at departure is a protocol
// violation.
func (n *MSSNode) handleLeave(m msg.Leave) {
	if p, ok := n.prefs[m.MH]; ok && p.HasProxy() {
		n.w.Stats.Violations.Inc()
	}
	delete(n.localMhs, m.MH)
	delete(n.prefs, m.MH)
	delete(n.held, m.MH)
	delete(n.heldAcksPending, m.MH)
	delete(n.deferredUpdate, m.MH)
	delete(n.outstanding, m.MH)
}

// handleGreet implements §3.2: a greet from a new cell starts the
// Hand-off; a greet naming this station is a reactivation in place and
// triggers only an update_currentLoc (plus delivery of any held
// results).
func (n *MSSNode) handleGreet(m msg.Greet) {
	if arr, ok := n.arriving[m.MH]; ok {
		// The MH re-entered this cell (or reactivated here) while our own
		// registration for it is still pending; replay the greet once the
		// registration lands so the hand-off chain stays chronological.
		arr.deferred = append(arr.deferred, inboxItem{from: m.MH.Node(), m: m})
		return
	}
	if m.OldMSS == n.id {
		// Reactivation within the same cell: "no Hand-off is initiated".
		n.w.Stats.Reactivations.Inc()
		if !n.localMhs[m.MH] {
			if next, ok := n.forwardTo[m.MH]; ok {
				// The MH believes it is registered here, but an earlier
				// hand-off chain (greets reordered across radio links)
				// carried the registration elsewhere. Fetch it back: run
				// a normal hand-off toward the station we forwarded to;
				// the dereg follows the chain to the current holder.
				n.arriving[m.MH] = &arrival{greetAt: n.w.Kernel.Now()}
				n.sendWired(next.Node(), msg.Dereg{MH: m.MH, NewMSS: n.id})
				return
			}
			// Genuinely unknown MH with no trace of a registration: there
			// is no state to reactivate; register it like a join.
			n.handleJoin(msg.Join{MH: m.MH})
		}
		delete(n.deferredUpdate, m.MH) // recomputed below
		if pref, ok := n.prefs[m.MH]; ok && pref.HasProxy() {
			if len(n.held[m.MH]) > 0 {
				// Held results are about to be delivered; defer the
				// update_currentLoc until their Acks pass through so the
				// proxy is not prompted into a redundant retransmission.
				n.deferredUpdate[m.MH] = true
			} else {
				n.sendUpdateCurrLoc(pref.Proxy, m.MH)
			}
		}
		n.deliverHeld(m.MH)
		return
	}
	// Migration into this cell: start the Hand-off with the old station.
	// Deregs that overtook this greet join the arrival's deferred queue.
	arr := &arrival{greetAt: n.w.Kernel.Now(), deferred: n.pendingDeregs[m.MH]}
	delete(n.pendingDeregs, m.MH)
	n.arriving[m.MH] = arr
	n.sendWired(m.OldMSS.Node(), msg.Dereg{MH: m.MH, NewMSS: n.id})
}

// handleRequest implements §3.1/§3.3 request routing: create a proxy
// locally when the pref is empty, otherwise forward to the proxy, and in
// all cases clear RKpR — a new request keeps the proxy alive.
func (n *MSSNode) handleRequest(from ids.NodeID, m msg.Request) {
	mh := m.Req.Origin
	if arr, ok := n.arriving[mh]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return
	}
	if !n.localMhs[mh] {
		// In flight across a completed hand-off: pass it along the chain
		// of responsibility; it ends at the MH's current (or arriving)
		// station.
		if next, ok := n.forwardTo[mh]; ok {
			n.sendWired(next.Node(), m)
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	pref := n.prefs[mh]
	if pref == nil {
		pref = &msg.Pref{}
		n.prefs[mh] = pref
	}
	pref.RKpR = false // §3.3: a new request re-arms the proxy
	if n.outstanding[mh] == nil {
		n.outstanding[mh] = make(map[ids.RequestID]bool)
	}
	n.outstanding[mh][m.Req] = true
	if !pref.HasProxy() {
		n.nextProxySeq++
		id := ids.ProxyID{Host: n.id, Seq: n.nextProxySeq}
		p := newProxy(id, mh, n)
		n.proxies[id.Seq] = p
		pref.Proxy = id
		n.w.Stats.ProxiesCreated.Inc()
		n.w.Stats.ProxyCreations[n.id]++
		p.addRequest(m.Req, m.Server, m.Payload)
		return
	}
	if pref.Proxy.Host == n.id {
		if p := n.proxies[pref.Proxy.Seq]; p != nil {
			p.addRequest(m.Req, m.Server, m.Payload)
			return
		}
		n.w.Stats.Violations.Inc() // pref points at a proxy we no longer host
		return
	}
	n.sendWired(pref.Proxy.Host.Node(),
		msg.RequestForward{Proxy: pref.Proxy, Req: m.Req, Server: m.Server, Payload: m.Payload})
}

// handleAckMH relays an MH's Ack to its proxy (§3.1), confirming proxy
// removal when RKpR is armed and no new request intervened (§3.3).
func (n *MSSNode) handleAckMH(from ids.NodeID, m msg.AckMH) {
	// A hand-off back to this station may be in flight: the MH greeted
	// us again, so we are its next respMss and must buffer (not ignore)
	// its traffic until the deregack arrives — the ignore rule below
	// applies only to our *old* respMss role.
	if arr, ok := n.arriving[m.MH]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return
	}
	if n.ignoreAcks[m.MH] {
		n.w.Stats.IgnoredAcks.Inc()
		return
	}
	if !n.localMhs[m.MH] {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	pref := n.prefs[m.MH]
	if pref == nil || !pref.HasProxy() {
		// Ack for an already-completed request (duplicate delivery ack
		// after the proxy was confirmed dead); nothing to relay.
		n.w.Stats.OrphanMessages.Inc()
		n.noteHeldAck(m.MH, m.Req)
		return
	}
	if set := n.outstanding[m.MH]; set != nil {
		delete(set, m.Req)
		if len(set) == 0 {
			delete(n.outstanding, m.MH)
		}
	}
	// §3.3 removal condition: RKpR armed AND every request of the MH has
	// been answered — judged both from this station's routing knowledge
	// and from the MH's own statement on the Ack (the latter covers
	// requests routed through a previous respMss and still in flight).
	delProxy := pref.RKpR && len(n.outstanding[m.MH]) == 0 && !m.HaveOutstanding
	proxy := pref.Proxy
	if delProxy {
		// §3.3: erase the proxy address and confirm removal.
		pref.Proxy = ids.NoProxy
		pref.RKpR = false
	}
	n.w.Stats.AckForwards.Inc()
	n.sendToStation(proxy.Host,
		msg.AckForward{Proxy: proxy, MH: m.MH, Req: m.Req, DelProxy: delProxy})
	// Release a deferred reactivation update only after the Ack relay
	// above, so the proxy sees the Ack before any update_currentLoc.
	n.noteHeldAck(m.MH, m.Req)
}

// handleDereg implements the old-station side of the Hand-off (§3.2):
// return the pref, drop responsibility, and ignore the MH's later acks.
//
// Fast migration chains require three further cases. A station that is
// still responsible serves the dereg immediately even while its own
// (re-)registration for the same MH is pending — deferring there would
// deadlock two stations waiting on each other's deregack. A station the
// MH has already left forwards the dereg along the hand-off chain to
// wherever it sent the pref. Only a station that is itself *about to
// receive* the pref defers the dereg until its registration completes.
func (n *MSSNode) handleDereg(from ids.NodeID, m msg.Dereg) {
	if n.localMhs[m.MH] {
		n.ignoreAcks[m.MH] = true
		n.forwardTo[m.MH] = m.NewMSS
		var pref msg.Pref
		if p, ok := n.prefs[m.MH]; ok {
			pref = *p
		}
		delete(n.localMhs, m.MH)
		delete(n.prefs, m.MH)
		delete(n.held, m.MH)
		delete(n.heldAcksPending, m.MH)
		delete(n.deferredUpdate, m.MH)
		delete(n.outstanding, m.MH)
		n.sendWired(m.NewMSS.Node(), msg.DeregAck{MH: m.MH, Pref: pref})
		return
	}
	if next, ok := n.forwardTo[m.MH]; ok {
		n.sendWired(next.Node(), m)
		return
	}
	if arr, ok := n.arriving[m.MH]; ok {
		arr.deferred = append(arr.deferred, inboxItem{from: from, m: m})
		return
	}
	// Unknown MH: our own greet for it must still be in flight (an MH
	// names us as old respMss only after greeting us); park the dereg
	// until that greet or a join arrives.
	n.pendingDeregs[m.MH] = append(n.pendingDeregs[m.MH], inboxItem{from: from, m: m})
}

// handleDeregAck completes the Hand-off on the new station (§3.2):
// responsibility is officially transferred, the pref is installed, the
// proxy learns the new location, and traffic buffered during the
// hand-off is processed.
func (n *MSSNode) handleDeregAck(m msg.DeregAck) {
	arr := n.arriving[m.MH]
	delete(n.arriving, m.MH)
	n.localMhs[m.MH] = true
	delete(n.ignoreAcks, m.MH)
	delete(n.forwardTo, m.MH)
	pref := m.Pref
	n.prefs[m.MH] = &pref
	n.w.Stats.Handoffs.Inc()
	if arr != nil {
		n.w.Stats.HandoffLatency.Observe(time.Duration(n.w.Kernel.Now() - arr.greetAt))
	}
	if pref.HasProxy() {
		n.sendUpdateCurrLoc(pref.Proxy, m.MH)
	}
	if arr != nil {
		for _, it := range arr.buffered {
			n.process(it.from, it.m)
		}
		// Replay deferred greets/deregs in arrival order. Processing one
		// may start the next hand-off of the chain (re-entering the
		// arriving state); the rest of the queue then carries over to
		// that new arrival record and replays after *its* registration.
		for i, it := range arr.deferred {
			n.process(it.from, it.m)
			if next, ok := n.arriving[m.MH]; ok {
				next.deferred = append(next.deferred, arr.deferred[i+1:]...)
				break
			}
		}
	}
}

// sendUpdateCurrLoc notifies the proxy of the MH's new respMss (§3.1).
func (n *MSSNode) sendUpdateCurrLoc(proxy ids.ProxyID, mh ids.MH) {
	n.w.Stats.UpdateCurrLocs.Inc()
	n.sendToStation(proxy.Host, msg.UpdateCurrentLoc{Proxy: proxy, MH: mh, NewLoc: n.id})
}

// handleRequestForward delivers a forwarded request to a hosted proxy.
func (n *MSSNode) handleRequestForward(m msg.RequestForward) {
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.addRequest(m.Req, m.Server, m.Payload)
}

// handleUpdateCurrentLoc updates a hosted proxy's currentLoc.
func (n *MSSNode) handleUpdateCurrentLoc(m msg.UpdateCurrentLoc) {
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.onUpdateLoc(m.NewLoc)
}

// handleResultForward is the respMss side of result delivery (§3.1,
// §3.3): arm RKpR if del-pref rides along and the pref matches, then
// attempt exactly one wireless forward — or hold the result for an
// inactive MH when the §5 footnote 3 optimization is on. The station
// keeps no copy: "the MSS can discard the result message after a single
// attempt to forward it".
func (n *MSSNode) handleResultForward(m msg.ResultForward) {
	if m.DelPref {
		if pref, ok := n.prefs[m.MH]; ok && pref.Proxy == m.Proxy {
			pref.RKpR = true
		}
	}
	deliver := msg.ResultDeliver{Req: m.Req, Payload: m.Payload, DelPref: m.DelPref}
	if n.w.cfg.HoldForInactive && n.localMhs[m.MH] &&
		n.w.InCell(m.MH, n.id) && !n.w.IsActive(m.MH) {
		n.held[m.MH] = append(n.held[m.MH], deliver)
		n.w.Stats.HeldResults.Inc()
		return
	}
	n.w.Wireless.SendDownlink(n.id, m.MH, deliver)
}

// deliverHeld flushes results held for an inactive MH (footnote 3),
// recording which Acks the deferred update_currentLoc is waiting on.
func (n *MSSNode) deliverHeld(mh ids.MH) {
	held := n.held[mh]
	if len(held) == 0 {
		return
	}
	delete(n.held, mh)
	pending := n.heldAcksPending[mh]
	if pending == nil {
		pending = make(map[ids.RequestID]bool, len(held))
		n.heldAcksPending[mh] = pending
	}
	for _, r := range held {
		pending[r.Req] = true
		n.w.Wireless.SendDownlink(n.id, mh, r)
	}
}

// noteHeldAck updates the held-result bookkeeping on an incoming Ack and
// releases the deferred update_currentLoc once all held results are
// acknowledged.
func (n *MSSNode) noteHeldAck(mh ids.MH, req ids.RequestID) {
	set := n.heldAcksPending[mh]
	if set == nil {
		return
	}
	delete(set, req)
	if len(set) > 0 {
		return
	}
	delete(n.heldAcksPending, mh)
	if !n.deferredUpdate[mh] {
		return
	}
	delete(n.deferredUpdate, mh)
	if pref, ok := n.prefs[mh]; ok && pref.HasProxy() {
		n.sendUpdateCurrLoc(pref.Proxy, mh)
	}
}

// handleDelPrefOnly arms RKpR without a result payload (Fig. 4 case).
func (n *MSSNode) handleDelPrefOnly(m msg.DelPrefOnly) {
	if pref, ok := n.prefs[m.MH]; ok && pref.Proxy == m.Proxy {
		pref.RKpR = true
		return
	}
	n.w.Stats.OrphanMessages.Inc()
}

// handleAckForward hands a relayed Ack to a hosted proxy, deleting the
// proxy when del-proxy is confirmed (§3.3).
func (n *MSSNode) handleAckForward(m msg.AckForward) {
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	if p.onAck(m.Req, m.DelProxy) {
		delete(n.proxies, m.Proxy.Seq)
		n.w.Stats.ProxiesDeleted.Inc()
		n.w.Stats.ProxySeconds[n.id] += time.Duration(n.w.Kernel.Now() - p.createdAt)
	}
}

// handleServerResult hands a server reply to the addressed proxy.
func (n *MSSNode) handleServerResult(m msg.ServerResult) {
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.onServerResult(m.Req, m.Payload)
}

// sendWired transmits to another static host over the wired network.
func (n *MSSNode) sendWired(to ids.NodeID, m msg.Message) {
	n.w.Wired.Send(n.id.Node(), to, m)
}

// sendToStation transmits to another MSS, short-circuiting delivery when
// the destination is this station itself (a proxy talking to its own
// host needs no network hop; cf. Fig. 3, where proxy and respMss start
// co-located).
func (n *MSSNode) sendToStation(to ids.MSS, m msg.Message) {
	if to == n.id {
		local := m
		n.w.Kernel.After(0, func() { n.process(n.id.Node(), local) })
		return
	}
	n.sendWired(to.Node(), m)
}
