package rdpcore

import (
	"time"

	"repro/internal/aggstate"
	"repro/internal/dcache"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// arrival tracks a mobile host whose greet has been received but whose
// hand-off has not yet completed (dereg sent, deregack pending). Paper
// §2 assumption 4: during the hand-off the MH "may be considered
// inactive by both" stations, so traffic from it is buffered rather than
// processed.
//
// A fast-moving host can leave and re-enter cells while earlier
// hand-offs are still settling, producing greets and deregs that arrive
// at a station whose own registration for that host is pending. Those
// control messages are recorded in deferred, in arrival order, and
// replayed once the registration completes — reconstructing the host's
// true migration chronology one hand-off at a time (see
// handleDeregAck). The paper's presentation assumes hand-offs complete
// before the next migration starts; this queue is the completing
// decision for when they do not.
type arrival struct {
	greetAt  sim.Time
	oldMSS   ids.MSS     // the greet's old respMss (dedups refresh beacons)
	buffered []inboxItem // wireless data (requests, acks) from the MH
	deferred []inboxItem // greets/deregs awaiting our registration
}

// inboxItem is one queued message at an MSS.
type inboxItem struct {
	from ids.NodeID
	m    msg.Message
}

// MSSNode is a mobile support station (§2): it serves one cell, holds
// the prefs of the MHs it is responsible for, hosts proxies, runs the
// Hand-off protocol, and translates between the wired and wireless
// substrates (the indirect model of Badrinath et al.).
type MSSNode struct {
	id ids.MSS
	w  *World

	// localMhs is the set of MHs this station is responsible for (§2).
	localMhs *hostSet
	// prefs holds one proxy reference per responsible MH (§3.1). Both
	// containers switch representation under Config.AggregatedState
	// (aggtable.go, E16).
	prefs *prefTable
	// incs records, per responsible MH, the newest incarnation this
	// station has registered (E18). Requests, greets and registrations
	// carry the issuing incarnation; learning a newer one scrubs every
	// piece of per-MH state owned by the dead ones (see noteInc). A
	// missing entry means the first incarnation — the pre-E18 world.
	incs map[ids.MH]ids.Incarnation
	// outstanding tracks, per MH, the requests this station has routed
	// whose Acks it has not yet seen, tagged with the incarnation that
	// issued each. §3.3 confirms proxy removal "only if ... RKpR = true
	// and for all of MH's requests the corresponding Ack has been
	// received" — the RKpR flag alone is not enough, because a request
	// can pass through before the del-pref result arrives and arms the
	// flag. Like the pref's other local context, this knowledge is not
	// transferred on hand-off.
	outstanding map[ids.MH]map[ids.RequestID]ids.Incarnation
	// proxies are the proxy objects hosted at this station, by sequence.
	proxies      map[uint32]*Proxy
	nextProxySeq uint32
	// groupProxies are the shared group proxies hosted here (E16), keyed
	// by sequence (always carrying the shared bit); topicProxies maps a
	// (server, topic) pair to the hosting sequence so joins dedup onto
	// one proxy per group. See groupproxy.go.
	groupProxies map[uint32]*GroupProxy
	topicProxies map[groupKey]uint32
	// aggLocBuf and aggAckBuf coalesce per-MH group-proxy signaling
	// (hand-off location updates, forwarded-result acks) into
	// delta-encoded group messages over Config.AggFlushDelay. Volatile:
	// a crash loses the buffers and recovery re-announces.
	aggLocBuf   map[ids.ProxyID]*aggstate.Set
	aggAckBuf   map[ids.ProxyID]*groupAckBuf
	aggLocArmed bool
	aggAckArmed bool
	// tombstones are the forwarding stubs of proxies that migrated away,
	// keyed by the departed proxy's sequence; migInbound reserves the
	// identities of accepted inbound migrations whose mig_state has not
	// yet arrived; migOutbound timestamps the in-flight offer (if any)
	// per local proxy sequence. See migration.go.
	tombstones  map[uint32]*tombstone
	migInbound  map[uint32]*migReservation
	migOutbound map[uint32]sim.Time
	// ignoreAcks marks MHs whose dereg has been processed: "it will
	// ignore all future Ack messages from this MH" (§3.1).
	ignoreAcks map[ids.MH]bool
	// forwardTo records, per de-registered MH, the station that took over
	// responsibility (learned from the Dereg). A request can be in flight
	// over the old cell's radio when the hand-off completes; dropping it
	// would break the delivery guarantee for that request, and unlike
	// Acks (which retransmission covers) nothing would ever re-create it.
	// The paper does not discuss this in-flight case; forwarding along
	// the hand-off chain is the completing decision (cf. DESIGN.md).
	forwardTo map[ids.MH]ids.MSS
	// arriving tracks in-flight hand-offs keyed by MH.
	arriving map[ids.MH]*arrival
	// pendingDeregs holds deregs for MHs this station knows nothing
	// about *yet*. An MH only names a station as its old respMss after
	// greeting it, so such a dereg means our own greet (and hand-off)
	// for that MH is still in flight, merely overtaken on another radio
	// link; the dereg is served once the greet lands (it moves into that
	// arrival's deferred queue) or a join registers the MH. Answering
	// immediately with an empty pref would fabricate a registration and
	// lose the real proxy reference.
	pendingDeregs map[ids.MH][]inboxItem
	// held stores results kept for inactive MHs when the §5 footnote 3
	// optimization is enabled. heldAcksPending tracks which of the
	// just-delivered held results still await their Ack, and
	// deferredUpdate marks MHs whose reactivation update_currentLoc is
	// postponed until those Acks have passed through — otherwise the
	// update would reach the proxy before the Acks and trigger exactly
	// the retransmission the optimization exists to save.
	held            map[ids.MH][]msg.ResultDeliver
	heldAcksPending map[ids.MH]map[ids.RequestID]bool
	deferredUpdate  map[ids.MH]bool
	// lastAttempt and reqAttempt record when this station last sent a
	// ResultDeliver to each (then-reachable) MH, overall and per request.
	// With registration-refresh beacons on (Config.GreetRefresh), a
	// refresh arriving inside the delivery round trip must not prompt the
	// proxy into re-sending a result whose Ack is simply still in the
	// air — and a redundant forward of a result whose own delivery
	// attempt is still in flight (e.g. an ARQ-held forward racing a
	// recovery re-send after a restart) is not re-transmitted over the
	// radio. Volatile: lost on crash, like the rest of the radio-side
	// bookkeeping.
	lastAttempt map[ids.MH]sim.Time
	reqAttempt  map[ids.RequestID]sim.Time

	// cache is the station's result cache (E17): proxies hosted here
	// consult it before issuing server requests and feed it every reply.
	// Volatile — rebuilt empty on crash (stale answers across a crash
	// would be worse than cold misses); nil when the cache is disabled.
	cache *dcache.Cache
	// batchEpochSeq numbers batch-deadline timers so stale closures
	// (armed by a pre-crash or pre-migration incarnation) can detect they
	// were superseded. Monotonic across crashes, like nextProxySeq.
	batchEpochSeq uint64
	// leaseEpochSeq numbers lease-expiry timers the same way (E18).
	leaseEpochSeq uint64
	// reclaims mirrors the durable reclaim-memo log (stable.go): every
	// proxy this station has reclaimed, with the respMss the memo was
	// addressed to, so recovery can re-send memos the crash swallowed.
	reclaims []reclaimRecord

	// inbox implements the priority rule of §3.1 ("higher priority is
	// given to forwarding Ack messages than to engaging in any new
	// Hand-off transactions") when per-message processing delay is
	// configured; with zero delay messages are processed on arrival.
	// Config.PriorityClasses generalizes the rule into three classes
	// (control/acks, admitted result traffic, new requests); see classOf.
	inbox         classInbox
	procScheduled bool
	// procFn caches the processNext method value so scheduleProcessing
	// does not materialize a fresh closure per processed message.
	procFn func()
}

// classInbox is the station's priority inbox: one FIFO queue per
// processing class, drained lowest class first. Within a class, arrival
// order is preserved. With a single class in use it degenerates to the
// plain FIFO inbox of earlier revisions.
type classInbox struct {
	q    [3][]inboxItem
	head [3]int
}

func (b *classInbox) push(class int, it inboxItem) {
	b.q[class] = append(b.q[class], it)
}

// len returns the queued (not yet popped) item count.
func (b *classInbox) len() int {
	n := 0
	for c := range b.q {
		n += len(b.q[c]) - b.head[c]
	}
	return n
}

// pop removes the head of the lowest-numbered non-empty class.
func (b *classInbox) pop() (inboxItem, bool) {
	for c := range b.q {
		if b.head[c] < len(b.q[c]) {
			it := b.q[c][b.head[c]]
			b.q[c][b.head[c]] = inboxItem{} // release references
			b.head[c]++
			if b.head[c] == len(b.q[c]) {
				b.q[c] = b.q[c][:0]
				b.head[c] = 0
			}
			return it, true
		}
	}
	return inboxItem{}, false
}

// reclaimRecord is one entry of the station's reclaim-memo log (E18).
type reclaimRecord struct {
	dest ids.MSS
	memo msg.ReclaimMemo
}

// newMSSNode constructs a station bound to a world.
func newMSSNode(id ids.MSS, w *World) *MSSNode {
	n := &MSSNode{
		id:              id,
		w:               w,
		localMhs:        newHostSet(w.cfg.AggregatedState),
		prefs:           newPrefTable(w.cfg.AggregatedState),
		incs:            make(map[ids.MH]ids.Incarnation),
		outstanding:     make(map[ids.MH]map[ids.RequestID]ids.Incarnation),
		proxies:         make(map[uint32]*Proxy),
		groupProxies:    make(map[uint32]*GroupProxy),
		topicProxies:    make(map[groupKey]uint32),
		aggLocBuf:       make(map[ids.ProxyID]*aggstate.Set),
		aggAckBuf:       make(map[ids.ProxyID]*groupAckBuf),
		ignoreAcks:      make(map[ids.MH]bool),
		forwardTo:       make(map[ids.MH]ids.MSS),
		arriving:        make(map[ids.MH]*arrival),
		pendingDeregs:   make(map[ids.MH][]inboxItem),
		tombstones:      make(map[uint32]*tombstone),
		migInbound:      make(map[uint32]*migReservation),
		migOutbound:     make(map[uint32]sim.Time),
		held:            make(map[ids.MH][]msg.ResultDeliver),
		heldAcksPending: make(map[ids.MH]map[ids.RequestID]bool),
		deferredUpdate:  make(map[ids.MH]bool),
		lastAttempt:     make(map[ids.MH]sim.Time),
		reqAttempt:      make(map[ids.RequestID]sim.Time),
		cache:           dcache.New(w.cfg.ResultCache),
	}
	n.procFn = n.processNext
	n.armLeaseBeat()
	return n
}

// ID returns the station identifier.
func (n *MSSNode) ID() ids.MSS { return n.id }

// Responsible reports whether the station currently holds
// responsibility for mh.
func (n *MSSNode) Responsible(mh ids.MH) bool { return n.localMhs.contains(mh) }

// PrefOf returns a copy of the pref held for mh and whether one exists
// (test and invariant-checking hook).
func (n *MSSNode) PrefOf(mh ids.MH) (msg.Pref, bool) {
	return n.prefs.get(mh)
}

// HostedProxies returns the number of proxies currently hosted here.
func (n *MSSNode) HostedProxies() int { return len(n.proxies) }

// ProxyByID returns a hosted proxy (tests and invariant checks).
func (n *MSSNode) ProxyByID(id ids.ProxyID) *Proxy {
	if id.Host != n.id {
		return nil
	}
	return n.proxies[id.Seq]
}

// HandleMessage implements netsim.Handler for both substrates. New
// requests pass admission control at ingress: a refused request is
// NACKed without ever occupying an inbox slot or a processing turn —
// refusal must stay cheap for shedding to raise, not lower, goodput.
func (n *MSSNode) HandleMessage(from ids.NodeID, m msg.Message) {
	if req, ok := m.(msg.Request); ok && n.refuseAdmission(req) {
		return
	}
	if n.procDelay() <= 0 {
		n.process(from, m)
		return
	}
	n.inbox.push(n.classOf(m), inboxItem{from: from, m: m})
	n.w.Stats.InboxPeak.Observe(int64(n.inbox.len()))
	n.scheduleProcessing()
}

// procDelay is the station's current per-message processing time: the
// configured base plus any injected slowdown (Config.StationDelayHook).
func (n *MSSNode) procDelay() time.Duration {
	d := n.w.cfg.ProcDelay
	if n.w.cfg.StationDelayHook != nil {
		d += n.w.cfg.StationDelayHook(n.id)
	}
	return d
}

// classOf assigns a message its inbox priority class. With
// Config.PriorityClasses the paper's Ack-priority rule is generalized:
// class 0 is acks, hand-off, proxy-migration and other control traffic
// (completing work and releasing state — migration control must never
// queue behind the very result backlog it exists to relieve), class 1
// is result traffic and forwarded — already admitted — requests (work
// in progress), class 2 is new requests (work not yet begun). Under overload the station therefore
// finishes what it started before accepting more. Without
// PriorityClasses, the classic AckPriority rule (acks ahead of
// everything) or plain FIFO applies.
func (n *MSSNode) classOf(m msg.Message) int {
	if n.w.cfg.PriorityClasses {
		switch v := m.(type) {
		case msg.Request:
			return 2
		case msg.ServerResult, msg.ResultForward, msg.RequestForward:
			return 1
		case msg.BatchOpen:
			return batchClass(v.Proxy)
		case msg.BatchItem:
			return batchClass(v.Proxy)
		case msg.BatchCommit:
			return batchClass(v.Proxy)
		default:
			return 0
		}
	}
	if n.w.cfg.AckPriority && m.Kind() != msg.KindAckMH {
		return 1
	}
	return 0
}

// batchClass places batch traffic in the priority scheme: on the
// wireless uplink leg (Proxy still unset) it is new work like a plain
// request; once addressed to a proxy it is admitted work in progress.
// BatchAbort is control traffic and stays in class 0.
func batchClass(proxy ids.ProxyID) int {
	if proxy == ids.NoProxy {
		return 2
	}
	return 1
}

// admissionEnabled reports whether any admission-control bound is
// configured.
func (n *MSSNode) admissionEnabled() bool {
	return n.w.cfg.AdmissionHighWater > 0 || n.w.cfg.ProxyQuota > 0
}

// refuseAdmission decides, at ingress, whether a new request must be
// refused with a busy-NACK. Only requests this station is responsible
// for and has not already admitted are candidates: retries of admitted
// requests, requests buffered during a hand-off, and requests merely
// passing through along the forwarding chain are never refused here
// (the chain's end runs its own admission check on arrival). Refusal
// grounds are a full inbox (past the high-watermark) or exhausted proxy
// storage (at quota, and this request needs a new proxy).
func (n *MSSNode) refuseAdmission(m msg.Request) bool {
	if !n.admissionEnabled() || n.w.down[n.id] {
		return false
	}
	mh := m.Req.Origin
	if _, ok := n.arriving[mh]; ok {
		return false
	}
	if !n.localMhs.contains(mh) {
		return false
	}
	if _, ok := n.outstanding[mh][m.Req]; ok {
		return false // already admitted; the delivery guarantee covers it
	}
	refuse := false
	if hw := n.w.cfg.AdmissionHighWater; hw > 0 && n.inbox.len() >= hw {
		refuse = true
	}
	// An accepted inbound migration is committed proxy storage the
	// mig_state has merely not yet filled; it counts against the quota.
	if q := n.w.cfg.ProxyQuota; q > 0 && len(n.proxies)+len(n.migInbound) >= q {
		if pref, ok := n.prefs.get(mh); !ok || !pref.HasProxy() {
			refuse = true // needs a proxy we have no room for
		}
	}
	if refuse {
		n.w.Stats.BusyRefusals.Inc()
		n.w.Wireless.SendDownlink(n.id, mh, msg.Busy{Req: m.Req})
	}
	return refuse
}

// sendAdmit confirms admission to the MH once its request is routed
// (only when admission control is on; the message is what stops the
// MH's busy-retry and deadline machinery).
func (n *MSSNode) sendAdmit(mh ids.MH, req ids.RequestID) {
	if !n.admissionEnabled() {
		return
	}
	n.w.Wireless.SendDownlink(n.id, mh, msg.Admit{Req: req})
}

func (n *MSSNode) scheduleProcessing() {
	if n.procScheduled || n.inbox.len() == 0 {
		return
	}
	n.procScheduled = true
	n.w.Kernel.Defer(n.procDelay(), n.procFn)
}

// processNext pops one inbox item — lowest priority class first — and
// processes it.
func (n *MSSNode) processNext() {
	n.procScheduled = false
	it, ok := n.inbox.pop()
	if !ok {
		return
	}
	n.process(it.from, it.m)
	n.scheduleProcessing()
}

// process dispatches one message.
func (n *MSSNode) process(from ids.NodeID, m msg.Message) {
	// A crashed host loses whatever was addressed to it: the network
	// substrates gate external traffic, and this guard covers the
	// remaining internal paths (self-sends and timers armed pre-crash).
	if n.w.down[n.id] {
		return
	}
	switch v := m.(type) {
	case msg.Join:
		n.handleJoin(v)
	case msg.Leave:
		n.handleLeave(v)
	case msg.Greet:
		n.handleGreet(v)
	case msg.Request:
		n.handleRequest(from, v)
	case msg.AckMH:
		n.handleAckMH(from, v)
	case msg.Dereg:
		n.handleDereg(from, v)
	case msg.DeregAck:
		n.handleDeregAck(v)
	case msg.RequestForward:
		n.handleRequestForward(from, v)
	case msg.UpdateCurrentLoc:
		n.handleUpdateCurrentLoc(from, v)
	case msg.ResultForward:
		n.handleResultForward(v)
	case msg.DelPrefOnly:
		n.handleDelPrefOnly(v)
	case msg.AckForward:
		n.handleAckForward(from, v)
	case msg.ServerResult:
		n.handleServerResult(from, v)
	case msg.MigOffer:
		n.handleMigOffer(v)
	case msg.MigCommit:
		n.handleMigCommit(v)
	case msg.MigState:
		n.handleMigState(v)
	case msg.PrefRedirect:
		n.handlePrefRedirect(from, v)
	case msg.MigGC:
		n.handleMigGC(v)
	case msg.BatchOpen:
		n.handleBatchOpen(from, v)
	case msg.BatchItem:
		n.handleBatchItem(from, v)
	case msg.BatchCommit:
		n.handleBatchCommit(from, v)
	case msg.BatchAbort:
		n.handleBatchAbort(from, v)
	case msg.Register:
		n.handleRegister(v)
	case msg.LeaseHeartbeat:
		n.handleLeaseHeartbeat(from, v)
	case msg.ReclaimMemo:
		n.handleReclaimMemo(from, v)
	case msg.GroupUpdateLoc:
		n.handleGroupUpdateLoc(v)
	case msg.GroupAckForward:
		n.handleGroupAckForward(v)
	default:
		n.w.Stats.OrphanMessages.Inc()
	}
}

// --- Mobile-host incarnations (E18) -----------------------------------

// incOf returns the newest incarnation registered for mh (first if none
// is known).
func (n *MSSNode) incOf(mh ids.MH) ids.Incarnation { return normInc(n.incs[mh]) }

// noteInc records that mh is running incarnation inc. Learning a newer
// incarnation than the registered one means the host crashed and
// rebooted since we last heard from it: every admitted-but-unacked
// request and every held result owned by the dead incarnations is
// scrubbed — the reborn host has no memory of them and will never
// acknowledge anything on their behalf.
func (n *MSSNode) noteInc(mh ids.MH, inc ids.Incarnation) {
	if inc == 0 || !incLess(n.incs[mh], inc) {
		return
	}
	n.incs[mh] = inc
	if set := n.outstanding[mh]; set != nil {
		for req, old := range set {
			if incLess(old, inc) {
				delete(set, req)
				n.w.Stats.StaleIncarnationDrops.Inc()
			}
		}
		if len(set) == 0 {
			delete(n.outstanding, mh)
		}
	}
	if held := n.held[mh]; len(held) > 0 {
		keep := held[:0]
		for _, r := range held {
			if incLess(r.Inc, inc) {
				n.w.Stats.StaleIncarnationDrops.Inc()
				continue
			}
			keep = append(keep, r)
		}
		if len(keep) == 0 {
			delete(n.held, mh)
		} else {
			n.held[mh] = keep
		}
	}
	n.persistMH(mh)
}

// handleRegister processes the re-registration a rebooted host sends
// under its fresh incarnation: record the incarnation (scrubbing what
// the dead ones owned), then run the registration itself through the
// greet path — it already handles every placement case (responsible,
// forwarded-away, wholly unknown) — and finally vouch for the host
// immediately so its proxy learns the new incarnation without waiting
// for the next heartbeat round.
func (n *MSSNode) handleRegister(m msg.Register) {
	n.noteInc(m.MH, m.Inc)
	n.handleGreet(msg.Greet{MH: m.MH, OldMSS: n.id, Inc: m.Inc})
	n.beatOne(m.MH)
}

// handleLeaseHeartbeat renews a hosted proxy's incarnation lease.
func (n *MSSNode) handleLeaseHeartbeat(from ids.NodeID, m msg.LeaseHeartbeat) {
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		if n.redirectOrHold(m.Proxy, from, m) {
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.renewLease(m.Inc)
}

// handleReclaimMemo is the respMss side of proxy reclamation: the named
// proxy no longer exists, so a pref still pointing at it is emptied (the
// next request builds a fresh proxy) and every ledger entry owned by an
// incarnation the memo covers is scrubbed. The memo chases a moved
// registration along the forwarding chain like any per-MH traffic.
func (n *MSSNode) handleReclaimMemo(from ids.NodeID, m msg.ReclaimMemo) {
	if arr, ok := n.arriving[m.MH]; ok {
		arr.deferred = append(arr.deferred, inboxItem{from: from, m: m})
		return
	}
	if !n.localMhs.contains(m.MH) {
		if next, ok := n.forwardTo[m.MH]; ok {
			n.sendWired(next.Node(), m)
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	if pref, ok := n.prefs.get(m.MH); ok && pref.Proxy == m.Proxy {
		pref.Proxy = ids.NoProxy
		pref.RKpR = false
		n.prefs.set(m.MH, pref)
	}
	if set := n.outstanding[m.MH]; set != nil {
		for req, inc := range set {
			if !incLess(m.Inc, inc) { // inc <= memo's incarnation
				delete(set, req)
			}
		}
		if len(set) == 0 {
			delete(n.outstanding, m.MH)
		}
	}
	n.persistMH(m.MH)
}

// armLeaseBeat starts the station's heartbeat loop (E18): every
// LeaseTTL/3 the station vouches for each registered host whose pref
// names a proxy. The loop dies with a crash (restoreFromStore re-arms
// it) and is never armed when leases are disabled.
func (n *MSSNode) armLeaseBeat() {
	ttl := n.w.cfg.LeaseTTL
	if ttl <= 0 {
		return
	}
	n.w.Kernel.Defer(ttl/3, func() {
		if n.w.down[n.id] {
			return
		}
		n.leaseBeat()
		n.armLeaseBeat()
	})
}

// leaseBeat sends one heartbeat round, in sorted MH order so the wire
// traffic is deterministic (hostSet.forEach iterates ascending).
func (n *MSSNode) leaseBeat() {
	n.localMhs.forEach(n.beatOne)
}

// beatOne vouches for one registered host. A host the radio layer knows
// to be crashed gets no vouching — the station's periodic page of the
// host goes unanswered — so its proxy's lease runs out and the orphan
// is reclaimed. A merely disconnected or inactive host keeps its lease:
// the station is still its registrar and its state must survive the
// coverage gap (E17 semantics).
func (n *MSSNode) beatOne(mh ids.MH) {
	if n.w.cfg.LeaseTTL <= 0 || !n.localMhs.contains(mh) {
		return
	}
	pref, ok := n.prefs.get(mh)
	if !ok || !pref.HasProxy() || isSharedProxy(pref.Proxy) {
		// Shared group proxies take no per-MH leases (E16): they are
		// durable per-(cell, server, topic) infrastructure, not per-host
		// state an amnesiac host could orphan.
		return
	}
	if n.w.IsCrashed(mh) {
		return
	}
	n.sendToStation(pref.Proxy.Host,
		msg.LeaseHeartbeat{Proxy: pref.Proxy, MH: mh, Inc: n.incOf(mh)})
}

// reclaimProxy removes an orphaned proxy (lease expired, or everything
// it held belonged to dead incarnations), journals the reclaim memo
// durably, and tells the MH's last known respMss so the dangling pref
// is dropped. memoInc bounds the scrub at the receiver: only ledger
// entries of incarnations <= memoInc are dead — requests a surviving
// incarnation has in flight must not be swept up.
func (n *MSSNode) reclaimProxy(p *Proxy, memoInc ids.Incarnation) {
	if cur, ok := n.proxies[p.id.Seq]; !ok || cur != p {
		return
	}
	delete(n.proxies, p.id.Seq)
	n.unpersistProxy(p.id.Seq)
	n.w.Stats.ProxiesReclaimed.Inc()
	n.w.Stats.ProxySeconds[n.id] += time.Duration(n.w.Kernel.Now() - p.createdAt)
	rr := reclaimRecord{
		dest: p.currentLoc,
		memo: msg.ReclaimMemo{Proxy: p.id, MH: p.mh, Inc: memoInc},
	}
	n.reclaims = append(n.reclaims, rr)
	n.persistReclaim(rr.dest, rr.memo)
	n.sendToStation(rr.dest, rr.memo)
}

// handleJoin registers a new MH in the cell (§2).
func (n *MSSNode) handleJoin(m msg.Join) {
	n.localMhs.add(m.MH)
	delete(n.ignoreAcks, m.MH)
	delete(n.forwardTo, m.MH)
	if !n.prefs.has(m.MH) {
		n.prefs.set(m.MH, msg.Pref{})
	}
	n.persistMH(m.MH)
	n.sendRegConfirm(m.MH)
	// Serve deregs that were parked while we knew nothing about the MH:
	// now registered, the normal responsible path answers them.
	if parked := n.pendingDeregs[m.MH]; len(parked) > 0 {
		delete(n.pendingDeregs, m.MH)
		for _, it := range parked {
			n.process(it.from, it.m)
		}
	}
}

// handleLeave removes an MH from the system. Assumption 6 guarantees it
// has acknowledged everything; a live proxy at departure is a protocol
// violation.
func (n *MSSNode) handleLeave(m msg.Leave) {
	// A shared group-proxy pref is exempt: it is durable routing
	// infrastructure, not per-request state — membership is pruned
	// lazily at the proxy (E16), so holding one at departure violates
	// nothing.
	if p, ok := n.prefs.get(m.MH); ok && p.HasProxy() && !isSharedProxy(p.Proxy) {
		n.w.Stats.Violations.Inc()
	}
	n.localMhs.remove(m.MH)
	n.prefs.delete(m.MH)
	delete(n.held, m.MH)
	delete(n.heldAcksPending, m.MH)
	delete(n.deferredUpdate, m.MH)
	delete(n.outstanding, m.MH)
	delete(n.incs, m.MH)
	n.persistMH(m.MH)
}

// handleGreet implements §3.2: a greet from a new cell starts the
// Hand-off; a greet naming this station is a reactivation in place and
// triggers only an update_currentLoc (plus delivery of any held
// results).
func (n *MSSNode) handleGreet(m msg.Greet) {
	n.noteInc(m.MH, m.Inc)
	if arr, ok := n.arriving[m.MH]; ok {
		if n.w.cfg.RegConfirm && m.OldMSS == arr.oldMSS {
			// A registration-refresh beacon repeating the greet that
			// started the pending hand-off; deferring it would replay a
			// redundant hand-off per beacon once we register.
			return
		}
		// The MH re-entered this cell (or reactivated here) while our own
		// registration for it is still pending; replay the greet once the
		// registration lands so the hand-off chain stays chronological.
		arr.deferred = append(arr.deferred, inboxItem{from: m.MH.Node(), m: m})
		return
	}
	if m.OldMSS == n.id {
		// Reactivation within the same cell: "no Hand-off is initiated".
		n.w.Stats.Reactivations.Inc()
		if !n.localMhs.contains(m.MH) {
			if next, ok := n.forwardTo[m.MH]; ok {
				// The MH believes it is registered here, but an earlier
				// hand-off chain (greets reordered across radio links)
				// carried the registration elsewhere. Fetch it back: run
				// a normal hand-off toward the station we forwarded to;
				// the dereg follows the chain to the current holder.
				n.arriving[m.MH] = &arrival{greetAt: n.w.Kernel.Now(), oldMSS: m.OldMSS}
				n.sendDereg(next, m.MH)
				return
			}
			// Genuinely unknown MH with no trace of a registration: there
			// is no state to reactivate; register it like a join.
			n.handleJoin(msg.Join{MH: m.MH})
		} else {
			n.sendRegConfirm(m.MH)
		}
		n.reactivateInPlace(m.MH)
		return
	}
	if n.w.cfg.RegConfirm && n.localMhs.contains(m.MH) {
		// Already responsible although the MH names another old station:
		// its confirmation for our registration was lost, or the deregack
		// re-establishing us outran this greet after our restart. Starting
		// a hand-off toward the named station would chase a pref that is
		// already here; re-confirm and treat it as a reactivation.
		n.w.Stats.Reactivations.Inc()
		n.sendRegConfirm(m.MH)
		n.reactivateInPlace(m.MH)
		return
	}
	// Migration into this cell: start the Hand-off with the old station.
	// Deregs that overtook this greet join the arrival's deferred queue.
	arr := &arrival{greetAt: n.w.Kernel.Now(), oldMSS: m.OldMSS, deferred: n.pendingDeregs[m.MH]}
	delete(n.pendingDeregs, m.MH)
	n.arriving[m.MH] = arr
	n.sendDereg(m.OldMSS, m.MH)
}

// reactivateInPlace runs the reactivation tail for a responsible MH:
// prompt the proxy with an update_currentLoc (or defer it behind held
// deliveries) and flush held results.
func (n *MSSNode) reactivateInPlace(mh ids.MH) {
	delete(n.deferredUpdate, mh) // recomputed below
	if pref, ok := n.prefs.get(mh); ok && pref.HasProxy() {
		if n.w.cfg.GreetRefresh > 0 {
			// With refresh beacons on, a greet can land between a
			// delivery attempt to the (reachable) MH and the return of
			// its Ack; prompting the proxy then re-sends a result that is
			// merely in flight. Skip the update while the last attempt's
			// round trip can still complete — if that delivery was in
			// fact lost, the next beacon falls outside the window and
			// recovers it.
			if at, ok := n.lastAttempt[mh]; ok &&
				n.w.Kernel.Now()-at < n.deliveryWindow() {
				n.deliverHeld(mh)
				return
			}
		}
		if len(n.held[mh]) > 0 {
			// Held results are about to be delivered; defer the
			// update_currentLoc until their Acks pass through so the
			// proxy is not prompted into a redundant retransmission.
			n.deferredUpdate[mh] = true
		} else {
			n.announceLoc(pref.Proxy, mh)
		}
	}
	n.deliverHeld(mh)
}

// sendDereg starts (or continues) a hand-off toward the station believed
// to hold the pref and, when peer-outage detection is configured, arms a
// timer that re-issues the Dereg while the hand-off stays pending — the
// old station may have crashed before serving it.
func (n *MSSNode) sendDereg(old ids.MSS, mh ids.MH) {
	n.sendWired(old.Node(), msg.Dereg{MH: mh, NewMSS: n.id})
	if n.w.cfg.HandoffTimeout > 0 {
		n.armHandoffTimer(old, mh)
	}
}

func (n *MSSNode) armHandoffTimer(old ids.MSS, mh ids.MH) {
	n.w.Kernel.Defer(n.w.cfg.HandoffTimeout, func() {
		if n.w.down[n.id] {
			return // we crashed ourselves; the arrival is gone
		}
		if _, pending := n.arriving[mh]; !pending {
			return
		}
		n.w.Stats.HandoffReissues.Inc()
		n.sendWired(old.Node(), msg.Dereg{MH: mh, NewMSS: n.id})
		n.armHandoffTimer(old, mh)
	})
}

// sendRegConfirm confirms a registration to the MH over the downlink
// (see Config.RegConfirm).
func (n *MSSNode) sendRegConfirm(mh ids.MH) {
	if !n.w.cfg.RegConfirm {
		return
	}
	n.w.Wireless.SendDownlink(n.id, mh, msg.RegConfirm{MH: mh})
}

// handleRequest implements §3.1/§3.3 request routing: create a proxy
// locally when the pref is empty, otherwise forward to the proxy, and in
// all cases clear RKpR — a new request keeps the proxy alive.
func (n *MSSNode) handleRequest(from ids.NodeID, m msg.Request) {
	mh := m.Req.Origin
	if arr, ok := n.arriving[mh]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return
	}
	if !n.localMhs.contains(mh) {
		// In flight across a completed hand-off: pass it along the chain
		// of responsibility; it ends at the MH's current (or arriving)
		// station.
		if next, ok := n.forwardTo[mh]; ok {
			n.sendWired(next.Node(), m)
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	// Incarnation gates (E18): a request from a dead incarnation is a
	// ghost — its issuer lost all memory of it, so admitting it would
	// promise a delivery nobody will ever acknowledge. A request from a
	// *newer* incarnation than the registered one means the host's
	// re-registration was lost; the request itself is the proof of life.
	if incLess(m.Inc, n.incOf(mh)) {
		n.w.Stats.StaleIncarnationDrops.Inc()
		return
	}
	n.noteInc(mh, m.Inc)
	pref, _ := n.prefs.get(mh) // registered MHs always have an entry
	pref.RKpR = false          // §3.3: a new request re-arms the proxy
	if n.outstanding[mh] == nil {
		n.outstanding[mh] = make(map[ids.RequestID]ids.Incarnation)
	}
	n.outstanding[mh][m.Req] = normInc(m.Inc)
	if !pref.HasProxy() {
		// Shared group proxy (E16): a groupable request binds the MH to
		// the cell's per-(server, topic) proxy instead of building one of
		// its own. The pref it installs is the proxy's shared identity —
		// the MH's only proxy reference, so every later request of this
		// MH routes through the same group host.
		if g := n.sharedGroupFor(m.Server, m.Payload); g != nil {
			pref.Proxy = g.id
			n.prefs.set(mh, pref)
			n.persistMH(mh)
			g.join(mh, n.id, m.Req, m.Server, m.Payload, m.Inc)
			n.sendAdmit(mh, m.Req)
			return
		}
		n.nextProxySeq++
		n.persistSeq()
		id := ids.ProxyID{Host: n.id, Seq: n.nextProxySeq}
		p := newProxy(id, mh, n)
		n.proxies[id.Seq] = p
		pref.Proxy = id
		n.prefs.set(mh, pref)
		n.persistMH(mh)
		n.w.Stats.ProxiesCreated.Inc()
		n.w.Stats.ProxyCreations[n.id]++
		p.armLease()
		p.addRequest(m.Req, m.Server, m.Payload, m.Inc)
		n.sendAdmit(mh, m.Req)
		return
	}
	n.prefs.set(mh, pref)
	n.persistMH(mh)
	if isSharedProxy(pref.Proxy) && pref.Proxy.Host == n.id {
		if g := n.groupProxies[pref.Proxy.Seq]; g != nil && g.id == pref.Proxy {
			g.join(mh, n.id, m.Req, m.Server, m.Payload, m.Inc)
			n.sendAdmit(mh, m.Req)
			return
		}
		n.w.Stats.Violations.Inc() // pref points at a group we no longer host
		return
	}
	if pref.Proxy.Host == n.id {
		if p := n.proxies[pref.Proxy.Seq]; p != nil {
			p.addRequest(m.Req, m.Server, m.Payload, m.Inc)
			n.sendAdmit(mh, m.Req)
			return
		}
		n.w.Stats.Violations.Inc() // pref points at a proxy we no longer host
		return
	}
	// A remote shared proxy takes the same forward: the host joins the
	// MH into the matching group entry (handleRequestForward).
	n.sendWired(pref.Proxy.Host.Node(),
		msg.RequestForward{Proxy: pref.Proxy, Req: m.Req, Server: m.Server, Payload: m.Payload, Inc: m.Inc})
	n.sendAdmit(mh, m.Req)
}

// handleAckMH relays an MH's Ack to its proxy (§3.1), confirming proxy
// removal when RKpR is armed and no new request intervened (§3.3).
func (n *MSSNode) handleAckMH(from ids.NodeID, m msg.AckMH) {
	// A hand-off back to this station may be in flight: the MH greeted
	// us again, so we are its next respMss and must buffer (not ignore)
	// its traffic until the deregack arrives — the ignore rule below
	// applies only to our *old* respMss role.
	if arr, ok := n.arriving[m.MH]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return
	}
	if n.ignoreAcks[m.MH] {
		n.w.Stats.IgnoredAcks.Inc()
		return
	}
	if n.w.cfg.GreetRefresh > 0 {
		// The Ack is proof of a completed delivery. Refresh (don't clear)
		// the attempt record: a redundant forward of the same result may
		// still be in the backbone — dropped once and resurrected by the
		// ARQ well after the Ack — and must be suppressed when it lands.
		n.reqAttempt[m.Req] = n.w.Kernel.Now()
	}
	if !n.localMhs.contains(m.MH) {
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	pref, ok := n.prefs.get(m.MH)
	if !ok || !pref.HasProxy() {
		// Ack for an already-completed request (duplicate delivery ack
		// after the proxy was confirmed dead); nothing to relay.
		n.w.Stats.OrphanMessages.Inc()
		n.noteHeldAck(m.MH, m.Req)
		return
	}
	if set := n.outstanding[m.MH]; set != nil {
		delete(set, m.Req)
		if len(set) == 0 {
			delete(n.outstanding, m.MH)
		}
	}
	if isSharedProxy(pref.Proxy) {
		// Shared prefs are never deleted (E16): the group proxy is durable
		// cell infrastructure, so §3.3 removal does not apply. The ack is
		// coalesced with other members' acks into one group_ack_forward.
		n.persistMH(m.MH)
		n.bufferGroupAck(pref.Proxy, m.MH, m.Req.Seq)
		n.noteHeldAck(m.MH, m.Req)
		return
	}
	// §3.3 removal condition: RKpR armed AND every request of the MH has
	// been answered — judged both from this station's routing knowledge
	// and from the MH's own statement on the Ack (the latter covers
	// requests routed through a previous respMss and still in flight).
	delProxy := pref.RKpR && len(n.outstanding[m.MH]) == 0 && !m.HaveOutstanding
	proxy := pref.Proxy
	if delProxy {
		// §3.3: erase the proxy address and confirm removal.
		pref.Proxy = ids.NoProxy
		pref.RKpR = false
		n.prefs.set(m.MH, pref)
	}
	n.persistMH(m.MH)
	n.w.Stats.AckForwards.Inc()
	n.sendToStation(proxy.Host,
		msg.AckForward{Proxy: proxy, MH: m.MH, Req: m.Req, DelProxy: delProxy})
	// Release a deferred reactivation update only after the Ack relay
	// above, so the proxy sees the Ack before any update_currentLoc.
	n.noteHeldAck(m.MH, m.Req)
}

// handleDereg implements the old-station side of the Hand-off (§3.2):
// return the pref, drop responsibility, and ignore the MH's later acks.
//
// Fast migration chains require three further cases. A station that is
// still responsible serves the dereg immediately even while its own
// (re-)registration for the same MH is pending — deferring there would
// deadlock two stations waiting on each other's deregack. A station the
// MH has already left forwards the dereg along the hand-off chain to
// wherever it sent the pref. Only a station that is itself *about to
// receive* the pref defers the dereg until its registration completes.
func (n *MSSNode) handleDereg(from ids.NodeID, m msg.Dereg) {
	if m.NewMSS == n.id && n.localMhs.contains(m.MH) && n.arriving[m.MH] == nil {
		// A re-issued Dereg of ours returned along the forwarding chain
		// after its hand-off already completed (the deregack outran it,
		// typically held by ARQ across our crash window): we are
		// responsible and expect no further deregack, so serving our own
		// Dereg would just churn responsibility through a self round
		// trip. Drop it. (A dereg reaching its own NewMSS *while* an
		// arrival is pending is the fast-migration chain case and takes
		// the normal path below.)
		return
	}
	if n.localMhs.contains(m.MH) {
		n.ignoreAcks[m.MH] = true
		n.forwardTo[m.MH] = m.NewMSS
		pref, _ := n.prefs.get(m.MH)
		// The deregack carries the registered incarnation (E18): the new
		// respMss must not vouch for (or gate against) an older one.
		inc := n.incs[m.MH]
		n.localMhs.remove(m.MH)
		n.prefs.delete(m.MH)
		delete(n.held, m.MH)
		delete(n.heldAcksPending, m.MH)
		delete(n.deferredUpdate, m.MH)
		delete(n.outstanding, m.MH)
		delete(n.incs, m.MH)
		n.persistMH(m.MH)
		n.sendWired(m.NewMSS.Node(), msg.DeregAck{MH: m.MH, Pref: pref, Inc: inc})
		return
	}
	if next, ok := n.forwardTo[m.MH]; ok {
		n.sendWired(next.Node(), m)
		return
	}
	if arr, ok := n.arriving[m.MH]; ok {
		arr.deferred = append(arr.deferred, inboxItem{from: from, m: m})
		return
	}
	// Unknown MH: our own greet for it must still be in flight (an MH
	// names us as old respMss only after greeting us); park the dereg
	// until that greet or a join arrives.
	n.pendingDeregs[m.MH] = append(n.pendingDeregs[m.MH], inboxItem{from: from, m: m})
}

// handleDeregAck completes the Hand-off on the new station (§3.2):
// responsibility is officially transferred, the pref is installed, the
// proxy learns the new location, and traffic buffered during the
// hand-off is processed.
func (n *MSSNode) handleDeregAck(m msg.DeregAck) {
	n.noteInc(m.MH, m.Inc)
	arr := n.arriving[m.MH]
	delete(n.arriving, m.MH)
	n.localMhs.add(m.MH)
	delete(n.ignoreAcks, m.MH)
	delete(n.forwardTo, m.MH)
	pref := m.Pref
	n.prefs.set(m.MH, pref)
	n.persistMH(m.MH)
	n.sendRegConfirm(m.MH)
	n.w.Stats.Handoffs.Inc()
	if arr != nil {
		n.w.Stats.HandoffLatency.Observe(time.Duration(n.w.Kernel.Now() - arr.greetAt))
	}
	if pref.HasProxy() {
		n.announceLoc(pref.Proxy, m.MH)
	}
	if arr != nil {
		for _, it := range arr.buffered {
			n.process(it.from, it.m)
		}
		// Replay deferred greets/deregs in arrival order. Processing one
		// may start the next hand-off of the chain (re-entering the
		// arriving state); the rest of the queue then carries over to
		// that new arrival record and replays after *its* registration.
		for i, it := range arr.deferred {
			n.process(it.from, it.m)
			if next, ok := n.arriving[m.MH]; ok {
				next.deferred = append(next.deferred, arr.deferred[i+1:]...)
				break
			}
		}
	}
}

// sendUpdateCurrLoc notifies the proxy of the MH's new respMss (§3.1).
func (n *MSSNode) sendUpdateCurrLoc(proxy ids.ProxyID, mh ids.MH) {
	n.w.Stats.UpdateCurrLocs.Inc()
	n.sendToStation(proxy.Host, msg.UpdateCurrentLoc{Proxy: proxy, MH: mh, NewLoc: n.id})
}

// handleRequestForward delivers a forwarded request to a hosted proxy.
func (n *MSSNode) handleRequestForward(from ids.NodeID, m msg.RequestForward) {
	if isSharedProxy(m.Proxy) {
		// A member MH moved to another cell but kept its shared pref; its
		// later request arrives here as a forward and (re-)joins the group
		// with the sender station as its delivery location (E16).
		g := n.groupProxies[m.Proxy.Seq]
		if g == nil || g.id != m.Proxy {
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		g.join(m.Req.Origin, from.MSS(), m.Req, m.Server, m.Payload, m.Inc)
		return
	}
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		if n.redirectOrHold(m.Proxy, from, m) {
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.addRequest(m.Req, m.Server, m.Payload, m.Inc)
}

// handleUpdateCurrentLoc updates a hosted proxy's currentLoc.
func (n *MSSNode) handleUpdateCurrentLoc(from ids.NodeID, m msg.UpdateCurrentLoc) {
	if isSharedProxy(m.Proxy) {
		// A single-member location update addressed to a group proxy
		// (sent by stations running without coalescing, or by the
		// faithful update path on a mixed deployment).
		g := n.groupProxies[m.Proxy.Seq]
		if g == nil || g.id != m.Proxy {
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		var one aggstate.Set
		one.Add(uint32(m.MH))
		g.updateLoc(&one, m.NewLoc)
		return
	}
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		if n.redirectOrHold(m.Proxy, from, m) {
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.onUpdateLoc(m.NewLoc)
}

// handleResultForward is the respMss side of result delivery (§3.1,
// §3.3): arm RKpR if del-pref rides along and the pref matches, then
// attempt exactly one wireless forward — or hold the result for an
// inactive MH when the §5 footnote 3 optimization is on. The station
// keeps no copy: "the MSS can discard the result message after a single
// attempt to forward it".
func (n *MSSNode) handleResultForward(m msg.ResultForward) {
	// Incarnation gate (E18): a result for a dead incarnation of the MH
	// must never reach the radio — the reborn host has no memory of the
	// request and would either drop it (wasted delivery) or, worse, have
	// reused the identifier. Acking it back instead lets the proxy
	// retire the orphaned entry.
	if incLess(m.Inc, n.incOf(m.MH)) {
		n.w.Stats.StaleIncarnationDrops.Inc()
		n.sendToStation(m.Proxy.Host,
			msg.AckForward{Proxy: m.Proxy, MH: m.MH, Req: m.Req})
		return
	}
	if m.DelPref {
		if pref, ok := n.prefs.get(m.MH); ok && pref.Proxy == m.Proxy {
			pref.RKpR = true
			n.prefs.set(m.MH, pref)
			n.persistMH(m.MH)
		}
	}
	deliver := msg.ResultDeliver{Req: m.Req, Payload: m.Payload, DelPref: m.DelPref, Inc: m.Inc}
	if n.w.cfg.HoldForInactive && n.localMhs.contains(m.MH) &&
		n.w.InCell(m.MH, n.id) && !n.w.IsActive(m.MH) {
		n.held[m.MH] = append(n.held[m.MH], deliver)
		n.w.Stats.HeldResults.Inc()
		return
	}
	if n.w.cfg.GreetRefresh > 0 && n.w.Reachable(n.id, m.MH) {
		now := n.w.Kernel.Now()
		if at, ok := n.reqAttempt[m.Req]; ok && now-at < n.deliveryWindow() {
			// A delivery attempt for this very result went out to the
			// reachable MH within the last round trip; this forward is a
			// redundant copy (beacon- or recovery-prompted) whose
			// original may still be acknowledged.
			return
		}
		n.lastAttempt[m.MH] = now
		n.reqAttempt[m.Req] = now
	}
	n.w.Wireless.SendDownlink(n.id, m.MH, deliver)
}

// deliveryWindow is how long a downlink delivery attempt to a reachable
// MH may remain unconfirmed before the refresh machinery treats it as
// lost: two wireless legs (result out, Ack back) with slack, plus — when
// the backbone runs the ARQ — enough room for a redundant forward that
// was dropped on the wire to be resurrected by retransmission.
func (n *MSSNode) deliveryWindow() sim.Time {
	w := sim.Time(4 * n.w.cfg.WirelessLatency.Mean())
	if n.w.cfg.WiredARQ.Enabled {
		w += sim.Time(2 * n.w.cfg.WiredARQ.MaxBackoff)
	}
	return w
}

// deliverHeld flushes results held for an inactive MH (footnote 3),
// recording which Acks the deferred update_currentLoc is waiting on.
func (n *MSSNode) deliverHeld(mh ids.MH) {
	held := n.held[mh]
	if len(held) == 0 {
		return
	}
	delete(n.held, mh)
	pending := n.heldAcksPending[mh]
	if pending == nil {
		pending = make(map[ids.RequestID]bool, len(held))
		n.heldAcksPending[mh] = pending
	}
	for _, r := range held {
		pending[r.Req] = true
		n.w.Wireless.SendDownlink(n.id, mh, r)
	}
}

// noteHeldAck updates the held-result bookkeeping on an incoming Ack and
// releases the deferred update_currentLoc once all held results are
// acknowledged.
func (n *MSSNode) noteHeldAck(mh ids.MH, req ids.RequestID) {
	set := n.heldAcksPending[mh]
	if set == nil {
		return
	}
	delete(set, req)
	if len(set) > 0 {
		return
	}
	delete(n.heldAcksPending, mh)
	if !n.deferredUpdate[mh] {
		return
	}
	delete(n.deferredUpdate, mh)
	if pref, ok := n.prefs.get(mh); ok && pref.HasProxy() {
		n.announceLoc(pref.Proxy, mh)
	}
}

// handleDelPrefOnly arms RKpR without a result payload (Fig. 4 case).
func (n *MSSNode) handleDelPrefOnly(m msg.DelPrefOnly) {
	if pref, ok := n.prefs.get(m.MH); ok && pref.Proxy == m.Proxy {
		pref.RKpR = true
		n.prefs.set(m.MH, pref)
		n.persistMH(m.MH)
		return
	}
	n.w.Stats.OrphanMessages.Inc()
}

// handleAckForward hands a relayed Ack to a hosted proxy, deleting the
// proxy when del-proxy is confirmed (§3.3).
func (n *MSSNode) handleAckForward(from ids.NodeID, m msg.AckForward) {
	if isSharedProxy(m.Proxy) {
		// Single-member ack for a group entry (stale-incarnation bounce or
		// uncoalesced deployment). DelProxy never applies to group proxies.
		g := n.groupProxies[m.Proxy.Seq]
		if g == nil || g.id != m.Proxy {
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		g.ack(m.MH, m.Req.Seq)
		return
	}
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		if n.redirectOrHold(m.Proxy, from, m) {
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	if p.onAck(m.Req, m.DelProxy) {
		delete(n.proxies, m.Proxy.Seq)
		n.unpersistProxy(m.Proxy.Seq)
		n.w.Stats.ProxiesDeleted.Inc()
		n.w.Stats.ProxySeconds[n.id] += time.Duration(n.w.Kernel.Now() - p.createdAt)
	}
}

// handleServerResult hands a server reply to the addressed proxy.
func (n *MSSNode) handleServerResult(from ids.NodeID, m msg.ServerResult) {
	if isSharedProxy(m.Proxy) {
		g := n.groupProxies[m.Proxy.Seq]
		if g == nil || g.id != m.Proxy {
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		g.onServerResult(m.Req, m.Payload)
		return
	}
	p := n.proxies[m.Proxy.Seq]
	if p == nil || p.id != m.Proxy {
		if n.redirectOrHold(m.Proxy, from, m) {
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	p.onServerResult(m.Req, m.Payload)
}

// cacheLookup consults the station's result cache (E17) for the result
// of an identical earlier request. Stale entries count separately: the
// TTL expired between storing and asking.
func (n *MSSNode) cacheLookup(server ids.Server, payload []byte) ([]byte, bool) {
	if n.cache == nil {
		return nil, false
	}
	key := dcache.Key{Server: server, Digest: dcache.Digest(payload)}
	result, outcome := n.cache.Get(key, time.Duration(n.w.Kernel.Now()))
	switch outcome {
	case dcache.Hit:
		n.w.Stats.CacheHits.Inc()
		return result, true
	case dcache.Stale:
		n.w.Stats.CacheStale.Inc()
	default:
		n.w.Stats.CacheMisses.Inc()
	}
	return nil, false
}

// cacheStore feeds a fresh server result into the station's cache.
func (n *MSSNode) cacheStore(server ids.Server, reqPayload, result []byte) {
	if n.cache == nil {
		return
	}
	before := n.cache.Evictions()
	key := dcache.Key{Server: server, Digest: dcache.Digest(reqPayload)}
	n.cache.Put(key, result, time.Duration(n.w.Kernel.Now()))
	if d := n.cache.Evictions() - before; d > 0 {
		n.w.Stats.CacheEvictions.Add(d)
	}
}

// --- Atomic request batches (E17) ------------------------------------
//
// Batch messages travel two legs, distinguished by the Proxy field: the
// wireless uplink leg (Proxy unset) is routed by the respMss like a
// plain request — buffered during hand-offs, forwarded along the
// responsibility chain, creating the proxy if the pref is empty — and
// the wired leg (Proxy set) is delivered to the hosting station's proxy
// like a RequestForward. Batch traffic bypasses admission control:
// refusing a single member of a half-transmitted batch would force the
// whole batch toward its abort deadline, turning overload shedding into
// batch aborts; the batch deadline itself is the back-pressure.

// batchUplinkRoute applies the respMss routing preamble shared by every
// uplink batch message: buffer during a pending hand-off, pass along the
// forwarding chain when responsibility moved on. It reports whether the
// caller should continue processing locally.
func (n *MSSNode) batchUplinkRoute(from ids.NodeID, mh ids.MH, m msg.Message) bool {
	if arr, ok := n.arriving[mh]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return false
	}
	if !n.localMhs.contains(mh) {
		if next, ok := n.forwardTo[mh]; ok {
			n.sendWired(next.Node(), m)
			return false
		}
		n.w.Stats.OrphanMessages.Inc()
		return false
	}
	return true
}

// batchProxyRef resolves (creating if necessary) the proxy for a
// responsible MH's batch traffic, mirroring handleRequest's pref logic:
// batch activity keeps the proxy alive (RKpR cleared). It returns the
// proxy object when hosted locally, or just the remote identity.
func (n *MSSNode) batchProxyRef(mh ids.MH) (ids.ProxyID, *Proxy) {
	pref, _ := n.prefs.get(mh)
	pref.RKpR = false
	if !pref.HasProxy() {
		n.nextProxySeq++
		n.persistSeq()
		id := ids.ProxyID{Host: n.id, Seq: n.nextProxySeq}
		p := newProxy(id, mh, n)
		n.proxies[id.Seq] = p
		pref.Proxy = id
		n.prefs.set(mh, pref)
		n.persistMH(mh)
		n.w.Stats.ProxiesCreated.Inc()
		n.w.Stats.ProxyCreations[n.id]++
		p.armLease()
		return id, p
	}
	n.prefs.set(mh, pref)
	n.persistMH(mh)
	if isSharedProxy(pref.Proxy) {
		// Batches and shared group prefs are an unsupported combination:
		// return the bare remote identity, so the wired leg lands at the
		// group host and is counted as an orphan there (documented).
		return pref.Proxy, nil
	}
	if pref.Proxy.Host == n.id {
		if p := n.proxies[pref.Proxy.Seq]; p != nil {
			return pref.Proxy, p
		}
		n.w.Stats.Violations.Inc() // pref points at a proxy we no longer host
		return ids.NoProxy, nil
	}
	return pref.Proxy, nil
}

// handleBatchOpen routes a batch_open on either leg.
func (n *MSSNode) handleBatchOpen(from ids.NodeID, m msg.BatchOpen) {
	if m.Proxy != ids.NoProxy {
		p := n.proxies[m.Proxy.Seq]
		if p == nil || p.id != m.Proxy {
			if n.redirectOrHold(m.Proxy, from, m) {
				return
			}
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		p.onBatchOpen(m.Batch, m.Inc)
		return
	}
	if !n.batchUplinkRoute(from, m.MH, m) {
		return
	}
	if incLess(m.Inc, n.incOf(m.MH)) {
		n.w.Stats.StaleIncarnationDrops.Inc()
		return
	}
	n.noteInc(m.MH, m.Inc)
	id, p := n.batchProxyRef(m.MH)
	if p != nil {
		p.onBatchOpen(m.Batch, m.Inc)
		return
	}
	if id == ids.NoProxy {
		return
	}
	m.Proxy = id
	n.sendWired(id.Host.Node(), m)
}

// handleBatchItem routes a batch member, recording it in the routing
// ledger like an admitted request (§3.3 proxy-removal accounting).
func (n *MSSNode) handleBatchItem(from ids.NodeID, m msg.BatchItem) {
	if m.Proxy != ids.NoProxy {
		p := n.proxies[m.Proxy.Seq]
		if p == nil || p.id != m.Proxy {
			if n.redirectOrHold(m.Proxy, from, m) {
				return
			}
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		p.onBatchItem(m)
		return
	}
	if !n.batchUplinkRoute(from, m.MH, m) {
		return
	}
	if incLess(m.Inc, n.incOf(m.MH)) {
		n.w.Stats.StaleIncarnationDrops.Inc()
		return
	}
	n.noteInc(m.MH, m.Inc)
	if n.outstanding[m.MH] == nil {
		n.outstanding[m.MH] = make(map[ids.RequestID]ids.Incarnation)
	}
	n.outstanding[m.MH][m.Req] = normInc(m.Inc)
	id, p := n.batchProxyRef(m.MH)
	if p != nil {
		p.onBatchItem(m)
		return
	}
	if id == ids.NoProxy {
		return
	}
	m.Proxy = id
	n.sendWired(id.Host.Node(), m)
}

// handleBatchCommit routes a batch_commit on either leg.
func (n *MSSNode) handleBatchCommit(from ids.NodeID, m msg.BatchCommit) {
	if m.Proxy != ids.NoProxy {
		p := n.proxies[m.Proxy.Seq]
		if p == nil || p.id != m.Proxy {
			if n.redirectOrHold(m.Proxy, from, m) {
				return
			}
			n.w.Stats.OrphanMessages.Inc()
			return
		}
		p.onBatchCommit(m)
		return
	}
	if !n.batchUplinkRoute(from, m.MH, m) {
		return
	}
	id, p := n.batchProxyRef(m.MH)
	if p != nil {
		p.onBatchCommit(m)
		return
	}
	if id == ids.NoProxy {
		return
	}
	m.Proxy = id
	n.sendWired(id.Host.Node(), m)
}

// handleBatchAbort delivers a batch abort to the MH through its current
// respMss, scrubbing the aborted members from the routing ledger — they
// will never be acked and must not block proxy removal (§3.3).
func (n *MSSNode) handleBatchAbort(from ids.NodeID, m msg.BatchAbort) {
	if arr, ok := n.arriving[m.MH]; ok {
		arr.buffered = append(arr.buffered, inboxItem{from: from, m: m})
		return
	}
	if !n.localMhs.contains(m.MH) {
		if next, ok := n.forwardTo[m.MH]; ok {
			n.sendWired(next.Node(), m)
			return
		}
		n.w.Stats.OrphanMessages.Inc()
		return
	}
	if set := n.outstanding[m.MH]; set != nil {
		for _, req := range m.Reqs {
			delete(set, req)
		}
		if len(set) == 0 {
			delete(n.outstanding, m.MH)
		}
		n.persistMH(m.MH)
	}
	n.w.Wireless.SendDownlink(n.id, m.MH, m)
}

// sendWired transmits to another static host over the wired network.
func (n *MSSNode) sendWired(to ids.NodeID, m msg.Message) {
	n.w.Wired.Send(n.id.Node(), to, m)
}

// sendToStation transmits to another MSS, short-circuiting delivery when
// the destination is this station itself (a proxy talking to its own
// host needs no network hop; cf. Fig. 3, where proxy and respMss start
// co-located).
func (n *MSSNode) sendToStation(to ids.MSS, m msg.Message) {
	if to == n.id {
		local := m
		n.w.Kernel.Defer(0, func() { n.process(n.id.Node(), local) })
		return
	}
	n.sendWired(to.Node(), m)
}
