package rdpcore

// This file defines the E16 state-accounting model: a deterministic
// byte count of the location/subscription state a station holds, under
// either representation. The constants model Go's real costs (map
// bucket share + key/value + heap object headers) but are fixed by
// contract, so experiments measure representation, not allocator noise,
// and the regression test can assert exact counts.
//
// The model covers exactly the state the aggregation changes or could
// plausibly change: responsibility membership, the pref table, hosted
// proxies (private and group) with their request/entry lists, and the
// incarnation table. The outstanding-request routing ledger is the same
// size in both modes — it is per-(MH, in-flight request) transient
// state by nature — and is reported separately (OutstandingBytes) so
// the headline ratio compares representations, not workload phase.

const (
	// Faithful per-MH containers.
	bytesHostEntry = 48 // one localMhs map entry
	bytesPrefEntry = 80 // one prefs map entry + heap-allocated Pref
	// Aggregated pref-table group record: map entry keyed by Pref value
	// plus the member-set header (the set's payload is MemBytes).
	bytesPrefGroup = 64
	// Incarnation table entry (identical in both modes).
	bytesIncEntry = 52
	// Private proxy: struct + map/slice headers, and one requestList
	// entry (excluding the variable payload/result bytes, added per
	// request).
	bytesProxy    = 160
	bytesProxyReq = 120
	// Group proxy: struct + maps, one shared entry (again excluding
	// payload/result), one waiter, one memberLoc exception, and one
	// ackIdx element (only while a result is in fan-out).
	bytesGroupProxy = 128
	bytesGroupEntry = 96
	bytesWaiter     = 16
	bytesMemberLoc  = 16
	bytesAckIdx     = 16
	// Outstanding ledger: per-MH map header plus per-request entry.
	bytesOutstandingMH  = 48
	bytesOutstandingReq = 56
)

// stateBytes is the responsibility set's footprint under the model.
func (h *hostSet) stateBytes() int {
	if !h.agg {
		return len(h.m) * bytesHostEntry
	}
	return h.s.MemBytes()
}

// stateBytes is the pref table's footprint under the model.
func (t *prefTable) stateBytes() int {
	if !t.agg {
		return len(t.byMH) * bytesPrefEntry
	}
	total := 0
	for _, set := range t.groups {
		total += bytesPrefGroup + set.MemBytes()
	}
	return total
}

// StateBytes returns the station's modeled location/subscription state
// footprint: responsibility set, pref table, incarnation table, and
// every hosted proxy with its stored requests and results.
func (n *MSSNode) StateBytes() int {
	total := n.localMhs.stateBytes() + n.prefs.stateBytes()
	total += len(n.incs) * bytesIncEntry
	for _, p := range n.proxies {
		total += bytesProxy
		for _, req := range p.order {
			r := p.reqs[req]
			total += bytesProxyReq + len(r.payload) + len(r.result)
		}
	}
	for _, g := range n.groupProxies {
		total += bytesGroupProxy + g.members.MemBytes() + len(g.memberLoc)*bytesMemberLoc
		for _, key := range g.entryOrder {
			e := g.entries[key]
			total += bytesGroupEntry + len(e.payload) + len(e.result)
			total += len(e.waiters)*bytesWaiter + e.entrants.MemBytes()
			if e.ackIdx != nil {
				total += len(e.ackIdx) * bytesAckIdx
			}
		}
	}
	return total
}

// OutstandingBytes returns the modeled footprint of the station's
// outstanding-request routing ledger, identical in both representations
// (reported separately from StateBytes; see file comment).
func (n *MSSNode) OutstandingBytes() int {
	total := 0
	for _, set := range n.outstanding {
		total += bytesOutstandingMH + len(set)*bytesOutstandingReq
	}
	return total
}

// StateBytes sums the modeled station state over the whole world.
func (w *World) StateBytes() int64 {
	var total int64
	for _, id := range w.mssList {
		total += int64(w.MSSs[id].StateBytes())
	}
	return total
}

// OutstandingBytes sums the outstanding-ledger footprint over the world.
func (w *World) OutstandingBytes() int64 {
	var total int64
	for _, id := range w.mssList {
		total += int64(w.MSSs[id].OutstandingBytes())
	}
	return total
}
