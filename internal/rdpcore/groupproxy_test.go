package rdpcore

import (
	"testing"
	"time"

	"repro/internal/aggstate"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// allOneTopic classifies every request into topic 0 — the simplest
// GroupTopic for tests where everything should share.
func allOneTopic(ids.Server, []byte) (uint32, bool) { return 0, true }

// aggWorld builds a 2-station aggregated-state world with deterministic
// latencies (5ms wired, 10ms wireless) and a slow server, so tests can
// measure state while requests are in flight.
func aggWorld(t *testing.T, proc time.Duration) (*World, *trace.Recorder) {
	t.Helper()
	rec := trace.New()
	cfg := DefaultConfig()
	cfg.NumMSS = 2
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(proc)
	cfg.AggregatedState = true
	cfg.GroupTopic = allOneTopic
	cfg.Observer = rec.Observe
	return NewWorld(cfg), rec
}

// TestSharedGroupFanout: N subscribers per cell asking the same question
// share one group proxy per cell and one server round-trip per cell; the
// single result fans out to every subscriber exactly once.
func TestSharedGroupFanout(t *testing.T) {
	w, rec := aggWorld(t, 100*time.Millisecond)
	srv := ids.Server(1)
	var mhs []*MHNode
	for i := 1; i <= 5; i++ {
		mhs = append(mhs, w.AddMH(ids.MH(i), ids.MSS(1)))
	}
	for i := 6; i <= 8; i++ {
		mhs = append(mhs, w.AddMH(ids.MH(i), ids.MSS(2)))
	}
	reqs := make([]ids.RequestID, len(mhs))
	w.Kernel.After(0, func() {
		for i, mh := range mhs {
			reqs[i] = mh.IssueRequest(srv, []byte("sub"))
		}
	})
	w.RunUntil(2 * time.Second)

	for i, mh := range mhs {
		if !mh.Seen(reqs[i]) {
			t.Errorf("mh%d never saw its result", i+1)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 8 {
		t.Errorf("ResultsDelivered = %d, want 8", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.SharedProxies.Value(); got != 2 {
		t.Errorf("SharedProxies = %d, want 2 (one per cell)", got)
	}
	if got := w.Stats.SharedJoins.Value(); got != 8 {
		t.Errorf("SharedJoins = %d, want 8", got)
	}
	if got := rec.CountDelivered(msg.KindServerRequest); got != 2 {
		t.Errorf("server requests = %d, want 2 (one per group entry)", got)
	}
	if got := w.Stats.GroupFanouts.Value(); got != 8 {
		t.Errorf("GroupFanouts = %d, want 8", got)
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 0 {
		t.Errorf("ProxiesCreated = %d, want 0 (everything rode the groups)", got)
	}
	if got := w.Stats.Violations.Value(); got != 0 {
		t.Errorf("Violations = %d, want 0", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestSharedGroupHandoff: a member migrating while its request is in
// flight is redirected by a coalesced group_update_currentLoc; the
// result reaches it in the new cell, and the ack travels back as a
// group_ack_forward.
func TestSharedGroupHandoff(t *testing.T) {
	w, rec := aggWorld(t, 300*time.Millisecond)
	srv := ids.Server(1)
	mh := w.AddMH(1, ids.MSS(1))
	stay := w.AddMH(2, ids.MSS(1))
	var req1, req2 ids.RequestID
	w.Kernel.After(0, func() {
		req1 = mh.IssueRequest(srv, []byte("sub"))
		req2 = stay.IssueRequest(srv, []byte("sub"))
	})
	w.Kernel.After(100*time.Millisecond, func() { w.Migrate(1, ids.MSS(2)) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(req1) || !stay.Seen(req2) {
		t.Fatal("a subscriber missed its result")
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.GroupUpdateLocs.Value(); got < 1 {
		t.Errorf("GroupUpdateLocs = %d, want >= 1 (the hand-off notice)", got)
	}
	if got := rec.CountDelivered(msg.KindGroupAckForward); got < 1 {
		t.Errorf("group_ack_forward deliveries = %d, want >= 1 (mss2's ack relay)", got)
	}
	// The migrated member's forward went straight to its new cell.
	if got := rec.CountDelivered(msg.KindUpdateCurrentLoc); got != 0 {
		t.Errorf("per-host update_currentLoc deliveries = %d, want 0 in aggregated mode", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestSharedGroupRemoteRejoin: a member that moved to another cell keeps
// its shared pref; its next request is forwarded to the group host,
// re-joins with the new location, and is answered there.
func TestSharedGroupRemoteRejoin(t *testing.T) {
	w, rec := aggWorld(t, 50*time.Millisecond)
	srv := ids.Server(1)
	mh := w.AddMH(1, ids.MSS(1))
	var req1, req2 ids.RequestID
	w.Kernel.After(0, func() { req1 = mh.IssueRequest(srv, []byte("sub")) })
	w.Kernel.After(300*time.Millisecond, func() { w.Migrate(1, ids.MSS(2)) })
	w.Kernel.After(500*time.Millisecond, func() { req2 = mh.IssueRequest(srv, []byte("sub2")) })
	w.RunUntil(2 * time.Second)

	if !mh.Seen(req1) || !mh.Seen(req2) {
		t.Fatal("a request went unanswered")
	}
	if got := w.Stats.SharedProxies.Value(); got != 1 {
		t.Errorf("SharedProxies = %d, want 1 (the pref pins the member to mss1's group)", got)
	}
	if got := rec.CountDelivered(msg.KindRequestForward); got != 1 {
		t.Errorf("request forwards = %d, want 1 (the remote re-join)", got)
	}
	if got := rec.CountDelivered(msg.KindServerRequest); got != 2 {
		t.Errorf("server requests = %d, want 2 (distinct payloads)", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// TestSharedGroupCrashRestore: the group host crashes with the server
// reply in flight. The journal restores the group — members, locations,
// open entries — and recovery re-issues the lost server request, so
// every subscriber is still served exactly once.
func TestSharedGroupCrashRestore(t *testing.T) {
	rec := trace.New()
	cfg := DefaultConfig()
	cfg.NumMSS = 2
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
	cfg.AggregatedState = true
	cfg.GroupTopic = allOneTopic
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 50 * time.Millisecond
	// No ARQ, and therefore no causal order either: the reply dropped at
	// the down station must be lost for good (not wedge the channel), so
	// recovery's re-issued server request is the only path to delivery.
	cfg.Causal = false
	cfg.Observer = rec.Observe
	w := NewWorld(cfg)

	srv := ids.Server(1)
	var mhs []*MHNode
	for i := 1; i <= 3; i++ {
		mhs = append(mhs, w.AddMH(ids.MH(i), ids.MSS(1)))
	}
	reqs := make([]ids.RequestID, len(mhs))
	w.Kernel.After(0, func() {
		for i, mh := range mhs {
			reqs[i] = mh.IssueRequest(srv, []byte("sub"))
		}
	})
	// Crash after the joins are journaled but before the server reply
	// (due ~320ms) lands; the reply is lost with the station down.
	w.Kernel.After(150*time.Millisecond, func() { w.CrashMSS(1) })
	w.Kernel.After(400*time.Millisecond, func() { w.RestartMSS(1) })
	w.RunUntil(3 * time.Second)

	for i, mh := range mhs {
		if !mh.Seen(reqs[i]) {
			t.Errorf("mh%d never saw its result after the crash", i+1)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 3 {
		t.Errorf("ResultsDelivered = %d, want 3", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Errorf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.SharedProxies.Value(); got != 1 {
		t.Errorf("SharedProxies = %d, want 1 (restore must not double-count)", got)
	}
	if got := w.Stats.RecoveryResends.Value(); got < 1 {
		t.Errorf("RecoveryResends = %d, want >= 1 (the re-issued server request)", got)
	}
	if err := w.CheckQuiescent(); err != nil {
		t.Error(err)
	}
}

// setBytes reports the aggstate footprint of a member set — the test's
// reference for the exact-accounting assertions below.
func setBytes(vs ...uint32) int {
	var s aggstate.Set
	for _, v := range vs {
		s.Add(v)
	}
	return s.MemBytes()
}

// churnSetBytes is the footprint of a set that held vs and then lost
// them all — an emptied set can retain container capacity, so it is not
// byte-identical to a never-used one.
func churnSetBytes(vs ...uint32) int {
	var s aggstate.Set
	for _, v := range vs {
		s.Add(v)
	}
	for _, v := range vs {
		s.Remove(v)
	}
	return s.MemBytes()
}

// TestStateBytesExact pins the E16 accounting model: after each protocol
// phase — registration+subscription, hand-off, drain, departure — every
// station's StateBytes must equal the hand-computed model value, in both
// representations. A drift here means the representation (or the model)
// changed shape, which would silently invalidate the E16 ratios.
func TestStateBytesExact(t *testing.T) {
	run := func(t *testing.T, agg bool) (w *World, at map[string][2]int) {
		rec := trace.New()
		cfg := DefaultConfig()
		cfg.NumMSS = 2
		cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
		cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
		cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
		cfg.AggregatedState = agg
		if agg {
			cfg.GroupTopic = allOneTopic
		}
		cfg.Observer = rec.Observe
		w = NewWorld(cfg)
		srv := ids.Server(1)
		var mhs []*MHNode
		for i := 1; i <= 3; i++ {
			mhs = append(mhs, w.AddMH(ids.MH(i), ids.MSS(1)))
		}
		w.Kernel.After(0, func() {
			for _, mh := range mhs {
				mh.IssueRequest(srv, []byte("q"))
			}
		})
		w.Kernel.After(100*time.Millisecond, func() { w.Migrate(2, ids.MSS(2)) })
		w.Kernel.After(700*time.Millisecond, func() {
			w.Leave(1)
			w.Leave(2)
			w.Leave(3)
		})
		at = make(map[string][2]int)
		snap := func(name string, after time.Duration) {
			w.Kernel.After(after, func() {
				at[name] = [2]int{w.MSSs[1].StateBytes(), w.MSSs[2].StateBytes()}
			})
		}
		snap("subscribed", 50*time.Millisecond) // requests admitted, server busy
		snap("handoff", 200*time.Millisecond)   // MH2 now at mss2
		snap("drained", 600*time.Millisecond)   // results delivered + acked
		snap("departed", 800*time.Millisecond)  // all MHs left the system
		w.RunUntil(1 * time.Second)
		if err := w.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		if got := w.Stats.ResultsDelivered.Value(); got != 3 {
			t.Fatalf("ResultsDelivered = %d, want 3", got)
		}
		return w, at
	}

	t.Run("faithful", func(t *testing.T) {
		_, at := run(t, false)
		// Model: per MH 48 (responsibility) + 80 (pref entry); per proxy
		// 160 + 120 per request + payload (1 byte) + result (0 until the
		// server replies, and the proxy dies with the ack).
		proxy := bytesProxy + bytesProxyReq + 1
		want := map[string][2]int{
			"subscribed": {3*bytesHostEntry + 3*bytesPrefEntry + 3*proxy, 0},
			"handoff":    {2*bytesHostEntry + 2*bytesPrefEntry + 3*proxy, bytesHostEntry + bytesPrefEntry},
			"drained":    {2 * (bytesHostEntry + bytesPrefEntry), bytesHostEntry + bytesPrefEntry},
			"departed":   {0, 0},
		}
		for name, w2 := range want {
			if at[name] != w2 {
				t.Errorf("%s: StateBytes = %v, want %v", name, at[name], w2)
			}
		}
	})

	t.Run("aggregated", func(t *testing.T) {
		w, at := run(t, true)
		if got := w.Stats.SharedProxies.Value(); got != 1 {
			t.Fatalf("SharedProxies = %d, want 1", got)
		}
		s123, s13, s2 := setBytes(1, 2, 3), setBytes(1, 3), setBytes(2)
		entry := bytesGroupEntry + 1 + 3*bytesWaiter + s123 // payload "q", 3 waiters, entrants
		want := map[string][2]int{
			// hostSet + prefTable group + group proxy (+ members) + entry.
			// mss2's only state so far is its (empty) responsibility set
			// header.
			"subscribed": {s123 + bytesPrefGroup + s123 + bytesGroupProxy + s123 + entry, setBytes()},
			// MH2 moved: one memberLoc exception at mss1, its pref at mss2.
			"handoff": {
				s13 + bytesPrefGroup + s13 + bytesGroupProxy + s123 + bytesMemberLoc + entry,
				s2 + bytesPrefGroup + s2,
			},
			// Entry retired; group and (never-deleted) shared prefs remain.
			"drained": {
				s13 + bytesPrefGroup + s13 + bytesGroupProxy + s123 + bytesMemberLoc,
				s2 + bytesPrefGroup + s2,
			},
			// Members left: per-MH state gone, the group skeleton stays
			// (append-only membership, documented). The drained
			// responsibility sets keep their container capacity.
			"departed": {
				churnSetBytes(1, 2, 3) + bytesGroupProxy + s123 + bytesMemberLoc,
				churnSetBytes(2),
			},
		}
		for name, w2 := range want {
			if at[name] != w2 {
				t.Errorf("%s: StateBytes = %v, want %v", name, at[name], w2)
			}
		}
		// The headline comparison the model exists for: the aggregated
		// steady-subscribed footprint undercuts the faithful one.
		faithful := 3*bytesHostEntry + 3*bytesPrefEntry + 3*(bytesProxy+bytesProxyReq+1)
		if got := at["subscribed"][0]; got >= faithful {
			t.Errorf("aggregated subscribed footprint %d not below faithful %d", got, faithful)
		}
	})
}

// TestOutstandingBytesModeInvariant: the outstanding-request ledger is
// workload state, not representation state — its modeled size must be
// identical in both modes at the same instant.
func TestOutstandingBytesModeInvariant(t *testing.T) {
	measure := func(agg bool) int64 {
		cfg := DefaultConfig()
		cfg.NumMSS = 2
		cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
		cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
		cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
		cfg.AggregatedState = agg
		if agg {
			cfg.GroupTopic = allOneTopic
		}
		w := NewWorld(cfg)
		srv := ids.Server(1)
		var mhs []*MHNode
		for i := 1; i <= 4; i++ {
			mhs = append(mhs, w.AddMH(ids.MH(i), ids.MSS(1)))
		}
		w.Kernel.After(0, func() {
			for _, mh := range mhs {
				mh.IssueRequest(srv, []byte("q"))
			}
		})
		var out int64
		w.Kernel.After(100*time.Millisecond, func() { out = w.OutstandingBytes() })
		w.RunUntil(150 * time.Millisecond)
		return out
	}
	f, a := measure(false), measure(true)
	if f != a || f == 0 {
		t.Errorf("OutstandingBytes: faithful %d vs aggregated %d, want equal and non-zero", f, a)
	}
}
