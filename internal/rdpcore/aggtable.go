package rdpcore

import (
	"sort"

	"repro/internal/aggstate"
	"repro/internal/ids"
	"repro/internal/msg"
)

// This file holds the two mode-switched per-MH state containers behind
// the aggregated-location-state optimization (E16). In the
// paper-faithful representation every responsible MH costs a hash-map
// entry in the station's responsibility set and another one (with a
// heap-allocated Pref) in its pref table — O(hosts) bytes per station.
// The aggregated representation exploits that prefs are tiny and
// massively shared: a subscriber population served by shared group
// proxies collapses into a handful of distinct Pref *values*, so the
// table becomes a map from Pref value to a compact member set
// (aggstate.Set, ~2 bits per member in dense cells), and the
// responsibility set becomes one such member set — O(cells·servers)
// group entries instead of O(hosts) map entries.
//
// Both containers expose identical value-semantics accessors, and every
// protocol path goes through them; with Config.AggregatedState off, the
// faithful map representation is used and message traces are
// byte-identical to earlier revisions.

// prefTable stores one pref per registered MH.
type prefTable struct {
	agg bool
	// byMH is the faithful representation (§3.1: one pref per MH).
	byMH map[ids.MH]*msg.Pref
	// groups is the aggregated representation: members by pref value.
	// Lookups scan the groups — O(#distinct prefs), which is the point:
	// the representation is built for workloads where prefs collapse
	// onto few shared values (group proxies, empty prefs). Workloads
	// with per-MH proxies should keep AggregatedState off.
	groups map[msg.Pref]*aggstate.Set
}

func newPrefTable(agg bool) *prefTable {
	t := &prefTable{agg: agg}
	if agg {
		t.groups = make(map[msg.Pref]*aggstate.Set)
	} else {
		t.byMH = make(map[ids.MH]*msg.Pref)
	}
	return t
}

// get returns the pref registered for mh, if any.
func (t *prefTable) get(mh ids.MH) (msg.Pref, bool) {
	if !t.agg {
		p, ok := t.byMH[mh]
		if !ok {
			return msg.Pref{}, false
		}
		return *p, true
	}
	for p, set := range t.groups {
		if set.Contains(uint32(mh)) {
			return p, true
		}
	}
	return msg.Pref{}, false
}

// has reports whether mh has a registered pref (possibly the zero pref).
func (t *prefTable) has(mh ids.MH) bool {
	_, ok := t.get(mh)
	return ok
}

// set registers (or replaces) mh's pref.
func (t *prefTable) set(mh ids.MH, p msg.Pref) {
	if !t.agg {
		if cur, ok := t.byMH[mh]; ok {
			*cur = p
		} else {
			cp := p
			t.byMH[mh] = &cp
		}
		return
	}
	for g, set := range t.groups {
		if !set.Contains(uint32(mh)) {
			continue
		}
		if g == p {
			return
		}
		set.Remove(uint32(mh))
		if set.Len() == 0 {
			delete(t.groups, g)
		}
		break
	}
	set := t.groups[p]
	if set == nil {
		set = &aggstate.Set{}
		t.groups[p] = set
	}
	set.Add(uint32(mh))
}

// delete erases mh's pref entirely (system departure, hand-off out).
func (t *prefTable) delete(mh ids.MH) {
	if !t.agg {
		delete(t.byMH, mh)
		return
	}
	for g, set := range t.groups {
		if set.Remove(uint32(mh)) {
			if set.Len() == 0 {
				delete(t.groups, g)
			}
			return
		}
	}
}

// len returns the number of registered prefs.
func (t *prefTable) len() int {
	if !t.agg {
		return len(t.byMH)
	}
	n := 0
	for _, set := range t.groups {
		n += set.Len()
	}
	return n
}

// forEach visits every (MH, pref) pair. Iteration order is unspecified
// (only invariant checks and state accounting iterate the table).
func (t *prefTable) forEach(fn func(ids.MH, msg.Pref)) {
	if !t.agg {
		for mh, p := range t.byMH {
			fn(mh, *p)
		}
		return
	}
	for g, set := range t.groups {
		p := g
		set.ForEach(func(v uint32) { fn(ids.MH(v), p) })
	}
}

// hostSet is the station's responsibility set (§2 localMhs).
type hostSet struct {
	agg bool
	m   map[ids.MH]bool
	s   aggstate.Set
}

func newHostSet(agg bool) *hostSet {
	h := &hostSet{agg: agg}
	if !agg {
		h.m = make(map[ids.MH]bool)
	}
	return h
}

func (h *hostSet) contains(mh ids.MH) bool {
	if !h.agg {
		return h.m[mh]
	}
	return h.s.Contains(uint32(mh))
}

func (h *hostSet) add(mh ids.MH) {
	if !h.agg {
		h.m[mh] = true
		return
	}
	h.s.Add(uint32(mh))
}

func (h *hostSet) remove(mh ids.MH) {
	if !h.agg {
		delete(h.m, mh)
		return
	}
	h.s.Remove(uint32(mh))
}

func (h *hostSet) len() int {
	if !h.agg {
		return len(h.m)
	}
	return h.s.Len()
}

// forEach visits members in ascending MH order in both modes — the
// callers that emit wire traffic per member (lease beats, recovery
// re-announcements) need a deterministic order, and the faithful code
// sorted before iterating anyway.
func (h *hostSet) forEach(fn func(ids.MH)) {
	if !h.agg {
		mhs := make([]int, 0, len(h.m))
		for mh := range h.m {
			mhs = append(mhs, int(mh))
		}
		sort.Ints(mhs)
		for _, mh := range mhs {
			fn(ids.MH(mh))
		}
		return
	}
	h.s.ForEach(func(v uint32) { fn(ids.MH(v)) })
}
