package proxymig

import (
	"testing"
	"time"

	"repro/internal/ids"
)

func TestPolicyEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Error("zero policy must be disabled")
	}
	for _, p := range []Policy{
		{HopThreshold: 1},
		{VolumeThreshold: 5},
		{LoadDriven: true},
	} {
		if !p.Enabled() {
			t.Errorf("%+v must be enabled", p)
		}
	}
}

func TestDecideHopThreshold(t *testing.T) {
	p := Policy{HopThreshold: 2}
	if r, ok := p.Decide(Observation{Distance: 1, SinceAttempt: time.Hour}); ok {
		t.Errorf("distance 1 < threshold 2 fired (%v)", r)
	}
	r, ok := p.Decide(Observation{Distance: 2, SinceAttempt: time.Hour})
	if !ok || r != ReasonHops {
		t.Errorf("distance 2 at threshold 2: got (%v,%t), want (hops,true)", r, ok)
	}
}

func TestDecideVolumeThreshold(t *testing.T) {
	p := Policy{VolumeThreshold: 3}
	if _, ok := p.Decide(Observation{Distance: 1, RemoteForwards: 2, SinceAttempt: time.Hour}); ok {
		t.Error("2 remote forwards fired a threshold of 3")
	}
	r, ok := p.Decide(Observation{Distance: 1, RemoteForwards: 3, SinceAttempt: time.Hour})
	if !ok || r != ReasonVolume {
		t.Errorf("got (%v,%t), want (volume,true)", r, ok)
	}
}

func TestDecideLoadDriven(t *testing.T) {
	p := Policy{LoadDriven: true}
	r, ok := p.Decide(Observation{Distance: 1, SinceAttempt: time.Hour})
	if !ok || r != ReasonLoad {
		t.Errorf("got (%v,%t), want (load,true)", r, ok)
	}
}

func TestDecideCooldown(t *testing.T) {
	p := Policy{HopThreshold: 1, MinInterval: time.Second}
	if _, ok := p.Decide(Observation{Distance: 5, SinceAttempt: 500 * time.Millisecond}); ok {
		t.Error("migration fired inside the cooldown")
	}
	if _, ok := p.Decide(Observation{Distance: 5, SinceAttempt: time.Second}); !ok {
		t.Error("migration suppressed after the cooldown elapsed")
	}
}

func TestAcceptLoad(t *testing.T) {
	// Moving one proxy from a host with 3 to a host with 1 gives (2,2):
	// improvement. From 2 to 1 gives (1,2): not an improvement.
	if !AcceptLoad(3, 1) {
		t.Error("3->1 must be accepted")
	}
	if AcceptLoad(2, 1) {
		t.Error("2->1 must be refused (no improvement)")
	}
	if AcceptLoad(1, 0) {
		t.Error("1->0 must be refused (pure churn)")
	}
}

func TestRingDistance(t *testing.T) {
	d := RingDistance(8)
	cases := []struct {
		a, b ids.MSS
		want int
	}{
		{1, 1, 0},
		{1, 2, 1},
		{1, 8, 1},  // wrap
		{1, 5, 4},  // antipode
		{2, 7, 3},  // shorter way around
		{1, 99, 1}, // unknown station falls back to 1
	}
	for _, c := range cases {
		if got := d(c.a, c.b); got != c.want {
			t.Errorf("RingDistance(8)(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := d(c.b, c.a); got != c.want {
			t.Errorf("RingDistance(8)(%v,%v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLinger(t *testing.T) {
	if got := (Policy{}).Linger(); got != DefaultTombstoneLinger {
		t.Errorf("zero linger = %v, want default %v", got, DefaultTombstoneLinger)
	}
	if got := (Policy{TombstoneLinger: 5 * time.Second}).Linger(); got != 5*time.Second {
		t.Errorf("explicit linger = %v", got)
	}
}

func TestReasonString(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:   "none",
		ReasonHops:   "hops",
		ReasonVolume: "volume",
		ReasonLoad:   "load",
		Reason(99):   "reason(?)",
	}
	for r, s := range want {
		if got := r.String(); got != s {
			t.Errorf("Reason(%d).String() = %q, want %q", uint8(r), got, s)
		}
	}
}
