// Package proxymig decides when and where an RDP proxy migrates.
//
// The paper pins a proxy at the MSS that created it, so a long-lived
// proxy triangle-routes every result through an ever-longer
// proxy→currentLoc wired path — the same static-anchor cost the paper
// criticizes in Mobile IP's home agent, merely deferred. This package
// holds the policy layer of the migration subsystem: when a trigger
// fires (forwarding-hop threshold, result-volume threshold, or MSS
// load imbalance) the proxy's full state moves to the MH's current
// respMss, leaving a forwarding tombstone at the old site.
//
// The mechanism — the mig_offer / mig_commit / mig_state /
// pref_redirect / mig_gc exchange — lives in internal/rdpcore
// (migration.go); this package is deliberately small and importable
// from rdpcore without a cycle: it knows about identifiers, distances,
// and durations, not about stations or messages.
package proxymig

import (
	"time"

	"repro/internal/ids"
)

// Reason names the policy trigger that fired a migration. It is carried
// into traces and statistics so experiments can attribute migrations to
// their cause.
type Reason uint8

// Migration reasons.
const (
	ReasonNone   Reason = iota
	ReasonHops          // forwarding distance exceeded HopThreshold
	ReasonVolume        // results forwarded remotely exceeded VolumeThreshold
	ReasonLoad          // host proxy population imbalance (load-driven)
)

// String names the reason for traces.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonHops:
		return "hops"
	case ReasonVolume:
		return "volume"
	case ReasonLoad:
		return "load"
	default:
		return "reason(?)"
	}
}

// Policy configures when a proxy offers itself to the MH's current
// station. The zero value disables migration entirely.
type Policy struct {
	// HopThreshold fires a migration when the topological distance from
	// the proxy's host to the MH's current station reaches the
	// threshold. Zero disables the trigger.
	HopThreshold int

	// VolumeThreshold fires a migration once the proxy has forwarded at
	// least this many results to a remote station since it was created
	// or last migrated. Zero disables the trigger.
	VolumeThreshold int

	// LoadDriven fires a migration whenever the proxy forwards remotely
	// and moving it would improve the proxy-population balance between
	// the two stations; the target enforces the improvement check at
	// admission (see AcceptLoad).
	LoadDriven bool

	// MinInterval is the cooldown between migration attempts of the
	// same proxy, so an MH ping-ponging between two cells does not drag
	// its proxy back and forth on every hand-off. Zero means no
	// cooldown.
	MinInterval time.Duration

	// TombstoneLinger is the quiet period the old host keeps the
	// forwarding tombstone after every server confirmed the new pref.
	// It covers stragglers from stations whose pref is still stale:
	// FIFO ordering makes the server confirms safe against the servers'
	// own in-flight replies, but a third station can hold a stale pref
	// arbitrarily long. The timer re-arms whenever the tombstone
	// redirects traffic. Zero selects DefaultTombstoneLinger.
	TombstoneLinger time.Duration
}

// DefaultTombstoneLinger is the tombstone quiet period used when the
// policy leaves TombstoneLinger zero.
const DefaultTombstoneLinger = time.Second

// Enabled reports whether any migration trigger is configured.
func (p Policy) Enabled() bool {
	return p.HopThreshold > 0 || p.VolumeThreshold > 0 || p.LoadDriven
}

// Linger returns the effective tombstone quiet period.
func (p Policy) Linger() time.Duration {
	if p.TombstoneLinger > 0 {
		return p.TombstoneLinger
	}
	return DefaultTombstoneLinger
}

// Observation is what the proxy's host knows when a result is forwarded
// remotely — the moment migration decisions are made.
type Observation struct {
	// Distance is the topological distance from the proxy's host to the
	// MH's current station (at least 1: the observation is only made on
	// remote forwards).
	Distance int

	// RemoteForwards counts results this proxy has forwarded to remote
	// stations since creation or its last migration, including the one
	// triggering the observation.
	RemoteForwards int

	// HostProxies is the number of proxies hosted at the observing
	// station (including this one).
	HostProxies int

	// SinceAttempt is the time since this proxy's last migration
	// attempt (or since its creation/installation if none).
	SinceAttempt time.Duration
}

// Decide reports whether the observation fires a migration, and why.
// The load-driven trigger only proposes; the target's AcceptLoad check
// decides whether the move actually improves the balance.
func (p Policy) Decide(o Observation) (Reason, bool) {
	if !p.Enabled() || o.SinceAttempt < p.MinInterval {
		return ReasonNone, false
	}
	if p.HopThreshold > 0 && o.Distance >= p.HopThreshold {
		return ReasonHops, true
	}
	if p.VolumeThreshold > 0 && o.RemoteForwards >= p.VolumeThreshold {
		return ReasonVolume, true
	}
	if p.LoadDriven {
		return ReasonLoad, true
	}
	return ReasonNone, false
}

// AcceptLoad is the target-side admission check for a load-driven
// offer: adopting the proxy must strictly improve the proxy-population
// balance between the offering host (offerLoad proxies, including the
// one on offer) and the target (targetLoad proxies, excluding it).
// Moving one proxy from a host with L to a host with T helps exactly
// when T+1 < L.
func AcceptLoad(offerLoad, targetLoad int) bool {
	return targetLoad+1 < offerLoad
}

// RingDistance returns a distance function for n stations arranged in a
// ring (matching netsim.RingLatency): the hop count is the shorter way
// around. Stations are ids.MSS(1..n); unknown stations are distance 1
// from everything, the same fallback the flat default uses.
func RingDistance(n int) func(a, b ids.MSS) int {
	return func(a, b ids.MSS) int {
		if a == b {
			return 0
		}
		ai, bi := int(a)-1, int(b)-1
		if ai < 0 || ai >= n || bi < 0 || bi >= n {
			return 1
		}
		d := ai - bi
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d
	}
}
