// Package netsim models the two communication substrates of the paper's
// system (§2) on top of the discrete-event kernel:
//
//   - Wired: the static network connecting MSSs and servers. It is
//     reliable and, per assumption 1, delivers messages among static
//     hosts in causal order (implemented with the causal package; can be
//     downgraded to arrival order for the E2 ablation).
//   - Wireless: the per-cell link between an MSS and the mobile hosts
//     currently in its cell. Delivery requires the MH to be in the cell
//     and active at delivery time, and may additionally fail with a
//     configurable loss probability.
//
// The package is protocol-agnostic: it moves msg.Message values between
// ids.NodeID addresses and reports every event to an optional Observer,
// which the metrics and trace layers hook into.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/causal"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// Handler consumes messages delivered to a node.
type Handler interface {
	HandleMessage(from ids.NodeID, m msg.Message)
}

// WiredTransport is the interface the protocol layer needs from the
// static network. Wired implements it over the simulation kernel;
// tcpnet implements it over real TCP sockets.
type WiredTransport interface {
	Send(from, to ids.NodeID, m msg.Message)
	Register(n ids.NodeID, h Handler)
}

// WirelessTransport is the interface the protocol layer needs from the
// per-cell radio links.
type WirelessTransport interface {
	SendDownlink(from ids.MSS, to ids.MH, m msg.Message)
	SendUplink(from ids.MH, to ids.MSS, m msg.Message)
	RegisterMH(mh ids.MH, h Handler)
	RegisterMSS(mss ids.MSS, h Handler)
}

var (
	_ WiredTransport    = (*Wired)(nil)
	_ WirelessTransport = (*Wireless)(nil)
)

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ids.NodeID, m msg.Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(from ids.NodeID, m msg.Message) { f(from, m) }

// Layer identifies which substrate carried a message.
type Layer uint8

// Substrate layers.
const (
	LayerWired Layer = iota + 1
	LayerWireless
)

// String returns "wired" or "wireless".
func (l Layer) String() string {
	if l == LayerWired {
		return "wired"
	}
	return "wireless"
}

// EventKind classifies observer callbacks.
type EventKind uint8

// Observer event kinds. A wireless message is Dropped either by random
// loss or because the destination MH was unreachable (left the cell or
// inactive) at delivery time.
const (
	EventSent EventKind = iota + 1
	EventDelivered
	EventDropped
)

// String names the event kind.
func (e EventKind) String() string {
	switch e {
	case EventSent:
		return "sent"
	case EventDelivered:
		return "delivered"
	default:
		return "dropped"
	}
}

// Observer receives a callback for every message event on either layer.
type Observer func(at sim.Time, layer Layer, kind EventKind, from, to ids.NodeID, m msg.Message)

// Reachability reports whether mh can currently receive from (or be
// heard by) the station mss: it must be located in mss's cell and be
// active. The world model owns this state.
type Reachability func(mss ids.MSS, mh ids.MH) bool

// Sequencer intercepts message deliveries for adversarial-order testing
// (see internal/explore). When configured, a transport hands every
// delivery to the sequencer as a fire closure instead of scheduling it
// on the clock; the sequencer decides when (and in what order) each one
// fires. Gating that belongs to delivery time (wireless reachability,
// random loss) runs inside the closure, so it reflects the world state
// at fire time.
type Sequencer interface {
	Offer(layer Layer, from, to ids.NodeID, fire func())
}

// WiredConfig parameterizes the wired network.
type WiredConfig struct {
	// Latency models per-message delay between static hosts.
	Latency LatencyModel
	// Causal enables causal-order delivery (paper assumption 1). When
	// false, messages are handed up in raw arrival order (E2 ablation).
	Causal bool
	// Seq, when set, sequences deliveries adversarially instead of by
	// latency (testing hook; see Sequencer).
	Seq Sequencer
	// PairLatency, when set, overrides Latency per directed host pair —
	// e.g. distance-dependent delays over a metropolitan ring topology
	// (see RingLatency). Pairs for which it returns nil fall back to
	// Latency.
	PairLatency func(from, to ids.NodeID) LatencyModel
}

// Wired is the reliable static network among MSSs and servers.
type Wired struct {
	k        sim.Scheduler
	cfg      WiredConfig
	rng      *sim.RNG
	index    map[ids.NodeID]int
	members  []ids.NodeID
	handlers []Handler
	eps      []*causal.Endpoint
	observer Observer
}

// wiredPayload is what travels through the causal layer.
type wiredPayload struct {
	from ids.NodeID
	to   ids.NodeID
	m    msg.Message
}

// NewWired builds the wired network for a fixed membership of static
// hosts. Membership is fixed because the causal group's matrix clocks
// are sized at creation (the paper likewise fixes the set of MSSs).
func NewWired(k sim.Scheduler, members []ids.NodeID, cfg WiredConfig, obs Observer) *Wired {
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	w := &Wired{
		k:        k,
		cfg:      cfg,
		rng:      k.RNG().Fork(),
		index:    make(map[ids.NodeID]int, len(members)),
		members:  append([]ids.NodeID(nil), members...),
		handlers: make([]Handler, len(members)),
		observer: obs,
	}
	for i, n := range members {
		if n.Kind == ids.KindMH {
			panic(fmt.Sprintf("netsim: mobile host %v cannot be a wired member", n))
		}
		if _, dup := w.index[n]; dup {
			panic(fmt.Sprintf("netsim: duplicate wired member %v", n))
		}
		w.index[n] = i
	}
	w.eps = causal.Group(len(members), func(dst int, payload any) {
		p := payload.(wiredPayload)
		w.deliver(p)
	})
	return w
}

// Register installs the message handler for a member node. Every member
// must be registered before it can receive.
func (w *Wired) Register(n ids.NodeID, h Handler) {
	i, ok := w.index[n]
	if !ok {
		panic(fmt.Sprintf("netsim: %v is not a wired member", n))
	}
	w.handlers[i] = h
}

// Send transmits m from one static host to another. Both must be
// members. Delivery is reliable; order is causal when configured.
func (w *Wired) Send(from, to ids.NodeID, m msg.Message) {
	fi, ok := w.index[from]
	if !ok {
		panic(fmt.Sprintf("netsim: wired send from non-member %v", from))
	}
	ti, ok := w.index[to]
	if !ok {
		panic(fmt.Sprintf("netsim: wired send to non-member %v", to))
	}
	w.observe(EventSent, from, to, m)
	p := wiredPayload{from: from, to: to, m: m}
	var fire func()
	if w.cfg.Causal {
		st := w.eps[fi].Send(ti)
		fire = func() { w.eps[ti].Receive(st, p) }
	} else {
		fire = func() { w.deliver(p) }
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWired, from, to, fire)
		return
	}
	lat := w.cfg.Latency
	if w.cfg.PairLatency != nil {
		if pl := w.cfg.PairLatency(from, to); pl != nil {
			lat = pl
		}
	}
	w.k.After(lat.Sample(w.rng), fire)
}

// deliver hands a message to its destination handler.
func (w *Wired) deliver(p wiredPayload) {
	h := w.handlers[w.index[p.to]]
	if h == nil {
		panic(fmt.Sprintf("netsim: wired member %v has no handler", p.to))
	}
	w.observe(EventDelivered, p.from, p.to, p.m)
	h.HandleMessage(p.from, p.m)
}

func (w *Wired) observe(kind EventKind, from, to ids.NodeID, m msg.Message) {
	if w.observer != nil {
		w.observer(w.k.Now(), LayerWired, kind, from, to, m)
	}
}

// MeanLatency exposes the configured mean wired delay (t_wired in the
// paper's §5 retransmission condition).
func (w *Wired) MeanLatency() time.Duration { return w.cfg.Latency.Mean() }

// CausalQueue reports the causally blocked messages buffered at a
// member's endpoint (diagnostic; empty without the causal layer).
func (w *Wired) CausalQueue(n ids.NodeID) []causal.QueuedInfo {
	i, ok := w.index[n]
	if !ok || w.eps == nil {
		return nil
	}
	return w.eps[i].QueuedPayloads()
}

// MemberName resolves a causal process index back to the member node
// (diagnostic companion to CausalQueue).
func (w *Wired) MemberName(idx int) ids.NodeID {
	if idx < 0 || idx >= len(w.members) {
		return ids.NoNode
	}
	return w.members[idx]
}

// WirelessConfig parameterizes the per-cell wireless links.
type WirelessConfig struct {
	// Latency models the over-the-air delay.
	Latency LatencyModel
	// LossProb is the probability that a frame is lost even though the
	// destination is reachable.
	LossProb float64
	// Reachable gates downlink delivery: the MH must be in the sending
	// station's cell and active at delivery time. Uplink frames are gated
	// on the same predicate at send time (an MH can only transmit to the
	// station whose cell it occupies while active).
	Reachable Reachability
	// Seq, when set, sequences deliveries adversarially instead of by
	// latency (testing hook; see Sequencer). Per-link FIFO remains the
	// sequencer's responsibility.
	Seq Sequencer
}

// Wireless models every cell's radio link. There is one Wireless value
// for the whole world; cells are distinguished by the sending MSS.
//
// Each (sender, receiver) pair is FIFO: a frame never overtakes an
// earlier frame on the same link. A mobile host talks to a station over
// a single radio channel, so in-order delivery per direction is the
// physical reality — and the protocol depends on it (a request must not
// arrive at the new station before the greet that announces the MH).
type Wireless struct {
	k        sim.Scheduler
	cfg      WirelessConfig
	rng      *sim.RNG
	mhs      map[ids.MH]Handler
	stations map[ids.MSS]Handler
	observer Observer
	lastRx   map[linkKey]sim.Time // per-link FIFO horizon
}

// linkKey identifies one directed radio link.
type linkKey struct {
	from ids.NodeID
	to   ids.NodeID
}

// NewWireless builds the wireless substrate.
func NewWireless(k sim.Scheduler, cfg WirelessConfig, obs Observer) *Wireless {
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	if cfg.Reachable == nil {
		panic("netsim: WirelessConfig.Reachable is required")
	}
	return &Wireless{
		k:        k,
		cfg:      cfg,
		rng:      k.RNG().Fork(),
		mhs:      make(map[ids.MH]Handler),
		stations: make(map[ids.MSS]Handler),
		observer: obs,
		lastRx:   make(map[linkKey]sim.Time),
	}
}

// RegisterMH installs the radio handler of a mobile host.
func (w *Wireless) RegisterMH(mh ids.MH, h Handler) { w.mhs[mh] = h }

// RegisterMSS installs the radio handler of a support station.
func (w *Wireless) RegisterMSS(mss ids.MSS, h Handler) { w.stations[mss] = h }

// SendDownlink transmits from a station to a mobile host in its cell.
// The frame is lost if the MH is unreachable at delivery time (it
// migrated away or turned inactive while the frame was in flight), or by
// random loss. Loss is silent, exactly as in the paper: "the respMss
// does not attempt any new forwarding of the result" — recovery is the
// proxy's job.
func (w *Wireless) SendDownlink(from ids.MSS, to ids.MH, m msg.Message) {
	w.observe(EventSent, from.Node(), to.Node(), m)
	fire := func() {
		if !w.cfg.Reachable(from, to) || w.rng.Prob(w.cfg.LossProb) {
			w.observe(EventDropped, from.Node(), to.Node(), m)
			return
		}
		h := w.mhs[to]
		if h == nil {
			w.observe(EventDropped, from.Node(), to.Node(), m)
			return
		}
		w.observe(EventDelivered, from.Node(), to.Node(), m)
		h.HandleMessage(from.Node(), m)
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWireless, from.Node(), to.Node(), fire)
		return
	}
	w.k.After(w.fifoDelay(from.Node(), to.Node()), fire)
}

// SendUplink transmits from a mobile host to a station. The MH must be
// reachable from that station when transmitting (same-cell, active);
// random loss applies too — except for registration control messages
// (join, leave, greet), which model the link-layer-reliable beacon
// exchange the paper abstracts over in §2 ("we abstract from the details
// of how a MH learns that it is entering or leaving a cell").
func (w *Wireless) SendUplink(from ids.MH, to ids.MSS, m msg.Message) {
	w.observe(EventSent, from.Node(), to.Node(), m)
	lossy := true
	switch m.Kind() {
	case msg.KindJoin, msg.KindLeave, msg.KindGreet:
		lossy = false
	}
	if !w.cfg.Reachable(to, from) || (lossy && w.rng.Prob(w.cfg.LossProb)) {
		w.observe(EventDropped, from.Node(), to.Node(), m)
		return
	}
	fire := func() {
		h := w.stations[to]
		if h == nil {
			w.observe(EventDropped, from.Node(), to.Node(), m)
			return
		}
		w.observe(EventDelivered, from.Node(), to.Node(), m)
		h.HandleMessage(from.Node(), m)
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWireless, from.Node(), to.Node(), fire)
		return
	}
	w.k.After(w.fifoDelay(from.Node(), to.Node()), fire)
}

// fifoDelay samples a link delay and stretches it so this frame arrives
// no earlier than the previous frame on the same directed link.
func (w *Wireless) fifoDelay(from, to ids.NodeID) time.Duration {
	key := linkKey{from: from, to: to}
	arrival := w.k.Now() + sim.Time(w.cfg.Latency.Sample(w.rng))
	if prev := w.lastRx[key]; arrival < prev {
		arrival = prev
	}
	w.lastRx[key] = arrival
	return time.Duration(arrival - w.k.Now())
}

func (w *Wireless) observe(kind EventKind, from, to ids.NodeID, m msg.Message) {
	if w.observer != nil {
		w.observer(w.k.Now(), LayerWireless, kind, from, to, m)
	}
}

// MeanLatency exposes the configured mean wireless delay (t_wireless in
// the paper's §5 retransmission condition).
func (w *Wireless) MeanLatency() time.Duration { return w.cfg.Latency.Mean() }
