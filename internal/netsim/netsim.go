// Package netsim models the two communication substrates of the paper's
// system (§2) on top of the discrete-event kernel:
//
//   - Wired: the static network connecting MSSs and servers. It is
//     reliable and, per assumption 1, delivers messages among static
//     hosts in causal order (implemented with the causal package; can be
//     downgraded to arrival order for the E2 ablation).
//   - Wireless: the per-cell link between an MSS and the mobile hosts
//     currently in its cell. Delivery requires the MH to be in the cell
//     and active at delivery time, and may additionally fail with a
//     configurable loss probability.
//
// The package is protocol-agnostic: it moves msg.Message values between
// ids.NodeID addresses and reports every event to an optional Observer,
// which the metrics and trace layers hook into.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/causal"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/wtp"
)

// Handler consumes messages delivered to a node.
type Handler interface {
	HandleMessage(from ids.NodeID, m msg.Message)
}

// WiredTransport is the interface the protocol layer needs from the
// static network. Wired implements it over the simulation kernel;
// tcpnet implements it over real TCP sockets.
type WiredTransport interface {
	Send(from, to ids.NodeID, m msg.Message)
	Register(n ids.NodeID, h Handler)
}

// WirelessTransport is the interface the protocol layer needs from the
// per-cell radio links.
type WirelessTransport interface {
	SendDownlink(from ids.MSS, to ids.MH, m msg.Message)
	SendUplink(from ids.MH, to ids.MSS, m msg.Message)
	RegisterMH(mh ids.MH, h Handler)
	RegisterMSS(mss ids.MSS, h Handler)
}

var (
	_ WiredTransport    = (*Wired)(nil)
	_ WirelessTransport = (*Wireless)(nil)
)

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ids.NodeID, m msg.Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(from ids.NodeID, m msg.Message) { f(from, m) }

// Layer identifies which substrate carried a message.
type Layer uint8

// Substrate layers.
const (
	LayerWired Layer = iota + 1
	LayerWireless
)

// String returns "wired" or "wireless".
func (l Layer) String() string {
	if l == LayerWired {
		return "wired"
	}
	return "wireless"
}

// EventKind classifies observer callbacks.
type EventKind uint8

// Observer event kinds. Drops carry a reason: EventDroppedUnreachable
// when the destination could not receive (an MH that left the cell or
// turned inactive, a crashed static host, an unregistered node),
// EventDroppedLoss for random loss or an injected link fault, and
// EventShed when a bounded link queue was full (overload protection).
// The bare EventDropped remains for unclassified drops.
const (
	EventSent EventKind = iota + 1
	EventDelivered
	EventDropped
	EventDroppedUnreachable
	EventDroppedLoss
	EventShed
)

// String names the event kind.
func (e EventKind) String() string {
	switch e {
	case EventSent:
		return "sent"
	case EventDelivered:
		return "delivered"
	case EventDroppedUnreachable:
		return "dropped-unreachable"
	case EventDroppedLoss:
		return "dropped-loss"
	case EventShed:
		return "shed"
	default:
		return "dropped"
	}
}

// IsDrop reports whether the event is a drop of any reason.
func (e EventKind) IsDrop() bool {
	return e == EventDropped || e == EventDroppedUnreachable || e == EventDroppedLoss ||
		e == EventShed
}

// Observer receives a callback for every message event on either layer.
type Observer func(at sim.Time, layer Layer, kind EventKind, from, to ids.NodeID, m msg.Message)

// Reachability reports whether mh can currently receive from (or be
// heard by) the station mss: it must be located in mss's cell and be
// active. The world model owns this state.
type Reachability func(mss ids.MSS, mh ids.MH) bool

// Sequencer intercepts message deliveries for adversarial-order testing
// (see internal/explore). When configured, a transport hands every
// delivery to the sequencer as a fire closure instead of scheduling it
// on the clock; the sequencer decides when (and in what order) each one
// fires. Gating that belongs to delivery time (wireless reachability,
// random loss) runs inside the closure, so it reflects the world state
// at fire time.
type Sequencer interface {
	Offer(layer Layer, from, to ids.NodeID, fire func())
}

// LinkFault is the fault decision for one physical transmission attempt
// on a wired link: lose the frame, deliver an extra copy, and/or add
// extra latency (which also reorders the frame against its neighbours).
type LinkFault struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// FaultHook decides faults on the wired substrate. It is consulted once
// per physical transmission attempt — including ARQ retransmissions and
// ack frames — so loss probabilities apply per attempt, as on a real
// link. internal/faults provides the standard seeded implementation.
type FaultHook interface {
	OnWired(from, to ids.NodeID, m msg.Message) LinkFault
}

// WiredConfig parameterizes the wired network.
type WiredConfig struct {
	// Latency models per-message delay between static hosts.
	Latency LatencyModel
	// Causal enables causal-order delivery (paper assumption 1). When
	// false, messages are handed up in raw arrival order (E2 ablation).
	Causal bool
	// Seq, when set, sequences deliveries adversarially instead of by
	// latency (testing hook; see Sequencer). The sequencer path bypasses
	// Faults, ARQ and Down.
	Seq Sequencer
	// PairLatency, when set, overrides Latency per directed host pair —
	// e.g. distance-dependent delays over a metropolitan ring topology
	// (see RingLatency). Pairs for which it returns nil fall back to
	// Latency.
	PairLatency func(from, to ids.NodeID) LatencyModel
	// Faults, when set, injects per-attempt link faults. Without ARQ a
	// dropped frame is simply lost (and, under Causal, permanently wedges
	// all causally-later messages at the destination — the failure mode
	// the E10 ablation demonstrates).
	Faults FaultHook
	// ARQ enables the link-layer retransmission protocol that makes the
	// wired network reliable again under Faults and crashes.
	ARQ ARQConfig
	// Down, when set, reports that a static member is currently crashed.
	// Frames arriving at a down member are dropped; under ARQ they stay
	// un-acked and retransmit until the member restarts. Link-layer ARQ
	// state itself is part of the network fabric and survives crashes.
	Down func(ids.NodeID) bool
	// QueueLimit, when positive, bounds the frames concurrently in
	// flight on each directed link (a model of a finite send queue). A
	// frame offered to a full link is shed — observed as EventShed — at
	// the physical layer, below the ARQ: with ARQ enabled a shed frame
	// stays un-acked and the sender's timeout re-offers it once the
	// queue has drained, so bounded links are backpressure, not loss.
	// Without ARQ a shed frame is lost like any other drop.
	QueueLimit int
}

// Wired is the static network among MSSs and servers: reliable by
// default, faulty when a FaultHook is configured, and reliable again on
// top of faults when the ARQ layer is enabled.
type Wired struct {
	k        sim.Scheduler
	cfg      WiredConfig
	rng      *sim.RNG
	index    map[ids.NodeID]int
	members  []ids.NodeID
	handlers []Handler
	eps      []*causal.Endpoint
	observer Observer
	links    map[linkKey]*wiredLink
	queued   map[linkKey]int // frames in flight per directed link
	shed     int64           // frames shed by full link queues
}

// wiredLink is the ARQ state of one directed wired link.
type wiredLink struct {
	sender   *ARQSender
	recv     *ARQReceiver
	inflight map[uint64]wiredFrame // un-acked frames by seq (sender side)
}

// wiredFrame is one protocol message in flight on an ARQ link. fire
// performs the delivery (through the causal endpoint when configured);
// it is reused verbatim on retransmission so the causal stamp is
// assigned exactly once per message.
type wiredFrame struct {
	fire func()
	p    wiredPayload
}

// wiredPayload is what travels through the causal layer.
type wiredPayload struct {
	from ids.NodeID
	to   ids.NodeID
	m    msg.Message
}

// NewWired builds the wired network for a fixed membership of static
// hosts. Membership is fixed because the causal group's matrix clocks
// are sized at creation (the paper likewise fixes the set of MSSs).
func NewWired(k sim.Scheduler, members []ids.NodeID, cfg WiredConfig, obs Observer) *Wired {
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	w := &Wired{
		k:        k,
		cfg:      cfg,
		rng:      k.RNG().Fork(),
		index:    make(map[ids.NodeID]int, len(members)),
		members:  append([]ids.NodeID(nil), members...),
		handlers: make([]Handler, len(members)),
		observer: obs,
		links:    make(map[linkKey]*wiredLink),
		queued:   make(map[linkKey]int),
	}
	for i, n := range members {
		if n.Kind == ids.KindMH {
			panic(fmt.Sprintf("netsim: mobile host %v cannot be a wired member", n))
		}
		if _, dup := w.index[n]; dup {
			panic(fmt.Sprintf("netsim: duplicate wired member %v", n))
		}
		w.index[n] = i
	}
	// Stamp recycling needs at-most-once delivery per stamp: with ARQ the
	// receiver dedups frames, and without faults nothing duplicates. A
	// faulty link without ARQ can fire the same stamp twice (duplication
	// fault), and the sequencer hook replays fires adversarially — both
	// must keep the allocating path.
	pooled := cfg.Seq == nil && (cfg.Faults == nil || cfg.ARQ.Enabled)
	w.eps = causal.Group(len(members), func(dst int, payload any) {
		p := payload.(wiredPayload)
		w.deliver(p)
	}, causal.Pooled(pooled))
	return w
}

// Register installs the message handler for a member node. Every member
// must be registered before it can receive.
func (w *Wired) Register(n ids.NodeID, h Handler) {
	i, ok := w.index[n]
	if !ok {
		panic(fmt.Sprintf("netsim: %v is not a wired member", n))
	}
	w.handlers[i] = h
}

// Send transmits m from one static host to another. Both must be
// members. Delivery is reliable (under faults: reliable iff ARQ is on);
// order is causal when configured.
func (w *Wired) Send(from, to ids.NodeID, m msg.Message) {
	fi, ok := w.index[from]
	if !ok {
		panic(fmt.Sprintf("netsim: wired send from non-member %v", from))
	}
	ti, ok := w.index[to]
	if !ok {
		panic(fmt.Sprintf("netsim: wired send to non-member %v", to))
	}
	w.observe(EventSent, from, to, m)
	p := wiredPayload{from: from, to: to, m: m}
	var fire func()
	if w.cfg.Causal {
		st := w.eps[fi].Send(ti)
		fire = func() { w.eps[ti].Receive(st, p) }
	} else {
		fire = func() { w.deliver(p) }
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWired, from, to, fire)
		return
	}
	if w.cfg.ARQ.Enabled {
		l := w.link(from, to)
		l.sender.Send(func(seq uint64) {
			l.inflight[seq] = wiredFrame{fire: fire, p: p}
		})
		return
	}
	w.transmitRaw(from, to, p.m, fire)
}

// transmitRaw is the non-ARQ physical path: one attempt, subject to
// faults and the Down gate. Without ARQ a lost frame stays lost.
func (w *Wired) transmitRaw(from, to ids.NodeID, m msg.Message, fire func()) {
	f := w.fault(from, to, m)
	if f.Drop {
		w.observe(EventDroppedLoss, from, to, m)
		return
	}
	deliver := fire
	if w.cfg.Down != nil {
		deliver = func() {
			if w.cfg.Down(to) {
				w.observe(EventDroppedUnreachable, from, to, m)
				return
			}
			fire()
		}
	}
	w.enqueue(from, to, m, f, deliver)
}

// enqueue schedules the physical delivery attempts of one frame (one
// attempt, or two under a duplication fault), each subject to the
// per-link queue bound: an attempt that finds the link full is shed —
// observed as EventShed and never scheduled.
func (w *Wired) enqueue(from, to ids.NodeID, m msg.Message, f LinkFault, deliver func()) {
	if w.cfg.QueueLimit <= 0 {
		// Unbounded link: no occupancy to track, so the delivery closure
		// schedules directly (the common configuration's zero-extra-alloc
		// path).
		w.k.Defer(w.sampleLatency(from, to)+f.Delay, deliver)
		if f.Duplicate {
			w.k.Defer(w.sampleLatency(from, to)+f.Delay, deliver)
		}
		return
	}
	key := linkKey{from: from, to: to}
	attempt := func() {
		if w.queued[key] >= w.cfg.QueueLimit {
			w.shed++
			w.observe(EventShed, from, to, m)
			return
		}
		w.queued[key]++
		w.k.Defer(w.sampleLatency(from, to)+f.Delay, func() {
			w.queued[key]--
			deliver()
		})
	}
	attempt()
	if f.Duplicate {
		attempt()
	}
}

// Shed returns the number of frames shed by full link queues.
func (w *Wired) Shed() int64 { return w.shed }

// link returns (creating on first use) the ARQ state of a directed link.
func (w *Wired) link(from, to ids.NodeID) *wiredLink {
	key := linkKey{from: from, to: to}
	l, ok := w.links[key]
	if !ok {
		l = &wiredLink{recv: NewARQReceiver(), inflight: make(map[uint64]wiredFrame)}
		l.sender = NewARQSender(w.k, w.cfg.ARQ, func(seq uint64, attempt int) {
			fr, live := l.inflight[seq]
			if !live {
				return
			}
			w.transmitFrame(from, to, seq, fr)
		})
		w.links[key] = l
	}
	return l
}

// transmitFrame is one physical transmission attempt of an ARQ frame. A
// shed attempt (full link queue) leaves the frame un-acked; the ARQ
// timeout re-offers it after the queue has had time to drain.
func (w *Wired) transmitFrame(from, to ids.NodeID, seq uint64, fr wiredFrame) {
	frame := msg.LinkFrame{Seq: seq, Inner: fr.p.m}
	f := w.fault(from, to, frame)
	if f.Drop {
		w.observe(EventDroppedLoss, from, to, frame)
		return
	}
	w.enqueue(from, to, frame, f, func() { w.receiveFrame(from, to, seq, fr) })
}

// receiveFrame runs at the receiving end of an ARQ link. A frame that
// arrives at a down host is dropped un-acked, so it keeps retransmitting
// until the host restarts. Every accepted arrival is acked — including
// duplicates, whose first ack may have been lost.
func (w *Wired) receiveFrame(from, to ids.NodeID, seq uint64, fr wiredFrame) {
	if w.cfg.Down != nil && w.cfg.Down(to) {
		w.observe(EventDroppedUnreachable, from, to, msg.LinkFrame{Seq: seq, Inner: fr.p.m})
		return
	}
	w.sendAck(from, to, seq)
	if !w.link(from, to).recv.Accept(seq) {
		return
	}
	fr.fire()
}

// sendAck transmits a LinkAck on the reverse direction of the link. Ack
// frames are subject to the same faults; a lost ack just costs one
// retransmission. Acks are processed regardless of the original
// sender's up/down state: the link-layer state lives in the network
// fabric, not in the crashing host.
func (w *Wired) sendAck(origFrom, origTo ids.NodeID, seq uint64) {
	ack := msg.LinkAck{Seq: seq}
	f := w.fault(origTo, origFrom, ack)
	if f.Drop {
		w.observe(EventDroppedLoss, origTo, origFrom, ack)
		return
	}
	w.enqueue(origTo, origFrom, ack, f, func() {
		l := w.link(origFrom, origTo)
		l.sender.Ack(seq)
		delete(l.inflight, seq)
	})
}

// fault consults the fault hook, if any.
func (w *Wired) fault(from, to ids.NodeID, m msg.Message) LinkFault {
	if w.cfg.Faults == nil {
		return LinkFault{}
	}
	return w.cfg.Faults.OnWired(from, to, m)
}

// sampleLatency draws the link delay for one attempt.
func (w *Wired) sampleLatency(from, to ids.NodeID) time.Duration {
	lat := w.cfg.Latency
	if w.cfg.PairLatency != nil {
		if pl := w.cfg.PairLatency(from, to); pl != nil {
			lat = pl
		}
	}
	return lat.Sample(w.rng)
}

// ARQStats sums link-layer retransmissions and still-outstanding
// (un-acked) frames over all links.
func (w *Wired) ARQStats() (retransmits int64, outstanding int) {
	for _, l := range w.links {
		retransmits += l.sender.Retransmits
		outstanding += l.sender.Outstanding()
	}
	return retransmits, outstanding
}

// deliver hands a message to its destination handler.
func (w *Wired) deliver(p wiredPayload) {
	h := w.handlers[w.index[p.to]]
	if h == nil {
		panic(fmt.Sprintf("netsim: wired member %v has no handler", p.to))
	}
	w.observe(EventDelivered, p.from, p.to, p.m)
	h.HandleMessage(p.from, p.m)
}

func (w *Wired) observe(kind EventKind, from, to ids.NodeID, m msg.Message) {
	if w.observer != nil {
		w.observer(w.k.Now(), LayerWired, kind, from, to, m)
	}
}

// MeanLatency exposes the configured mean wired delay (t_wired in the
// paper's §5 retransmission condition).
func (w *Wired) MeanLatency() time.Duration { return w.cfg.Latency.Mean() }

// CausalQueue reports the causally blocked messages buffered at a
// member's endpoint (diagnostic; empty without the causal layer).
func (w *Wired) CausalQueue(n ids.NodeID) []causal.QueuedInfo {
	i, ok := w.index[n]
	if !ok || w.eps == nil {
		return nil
	}
	return w.eps[i].QueuedPayloads()
}

// MemberName resolves a causal process index back to the member node
// (diagnostic companion to CausalQueue).
func (w *Wired) MemberName(idx int) ids.NodeID {
	if idx < 0 || idx >= len(w.members) {
		return ids.NoNode
	}
	return w.members[idx]
}

// WirelessConfig parameterizes the per-cell wireless links.
type WirelessConfig struct {
	// Latency models the over-the-air delay.
	Latency LatencyModel
	// LossProb is the probability that a frame is lost even though the
	// destination is reachable.
	LossProb float64
	// Reachable gates downlink delivery: the MH must be in the sending
	// station's cell and active at delivery time. Uplink frames are gated
	// on the same predicate at send time (an MH can only transmit to the
	// station whose cell it occupies while active).
	Reachable Reachability
	// Seq, when set, sequences deliveries adversarially instead of by
	// latency (testing hook; see Sequencer). Per-link FIFO remains the
	// sequencer's responsibility.
	Seq Sequencer
	// DropFilter, when set, force-drops matching frames (testing hook
	// for targeted single-frame loss). It is consulted at delivery time
	// on the downlink and at send time on the uplink, alongside random
	// loss; a filtered frame is observed as EventDroppedLoss.
	DropFilter func(from, to ids.NodeID, m msg.Message) bool
	// QueueLimit, when positive, bounds the data frames concurrently in
	// flight on each directed radio link. A frame offered to a full
	// link is shed (EventShed) — extra loss, which the protocol's
	// recovery machinery (proxy re-forwarding, client retries) absorbs.
	// Registration and admission signaling (join, leave, greet up;
	// reg-confirm, admit, busy down) rides the link-layer beacon
	// exchange the paper abstracts over: it is never shed and does not
	// occupy the bounded data queue. Without the exemption a beacon
	// reply can pin a limit-1 downlink exactly when the re-forwarded
	// result arrives, shedding it on every recovery cycle — a livelock
	// the control plane must not be able to cause.
	QueueLimit int
	// WTP, when enabled, routes downlink data through the windowed
	// wireless transport (E15): per-(MSS, MH) sliding-window ARQ with
	// selective acks, RTT-driven retransmission and AIMD congestion
	// control, plus coalescing of small results into MTU-sized frames.
	// Control signaling still rides the beacon exchange, and the
	// Sequencer hook (adversarial-order testing) bypasses the window.
	// Off — the default — the legacy per-message path is untouched, so
	// pre-E15 experiments stay byte-identical.
	WTP wtp.Config
}

// Wireless models every cell's radio link. There is one Wireless value
// for the whole world; cells are distinguished by the sending MSS.
//
// Each (sender, receiver) pair is FIFO: a frame never overtakes an
// earlier frame on the same link. A mobile host talks to a station over
// a single radio channel, so in-order delivery per direction is the
// physical reality — and the protocol depends on it (a request must not
// arrive at the new station before the greet that announces the MH).
type Wireless struct {
	k        sim.Scheduler
	cfg      WirelessConfig
	rng      *sim.RNG
	mhs      map[ids.MH]Handler
	stations map[ids.MSS]Handler
	observer Observer
	lastRx   map[linkKey]sim.Time // per-link FIFO horizon
	queued   map[linkKey]int      // frames in flight per directed link
	shed     int64                // frames shed by full link queues

	// Windowed-transport state (E15), allocated only when cfg.WTP is
	// enabled. Like the wired ARQ state, it is part of the network
	// fabric keyed by directed (MSS, MH) link.
	wtpOut map[linkKey]*wtp.Sender
	wtpIn  map[linkKey]*wtp.Receiver
}

// linkKey identifies one directed radio link.
type linkKey struct {
	from ids.NodeID
	to   ids.NodeID
}

// NewWireless builds the wireless substrate.
func NewWireless(k sim.Scheduler, cfg WirelessConfig, obs Observer) *Wireless {
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	if cfg.Reachable == nil {
		panic("netsim: WirelessConfig.Reachable is required")
	}
	w := &Wireless{
		k:        k,
		cfg:      cfg,
		rng:      k.RNG().Fork(),
		mhs:      make(map[ids.MH]Handler),
		stations: make(map[ids.MSS]Handler),
		observer: obs,
		lastRx:   make(map[linkKey]sim.Time),
		queued:   make(map[linkKey]int),
	}
	if cfg.WTP.Enabled {
		w.wtpOut = make(map[linkKey]*wtp.Sender)
		w.wtpIn = make(map[linkKey]*wtp.Receiver)
	}
	return w
}

// Shed returns the number of frames shed by full radio link queues.
func (w *Wireless) Shed() int64 { return w.shed }

// wirelessControl reports whether m is registration or admission
// signaling that rides the link-layer beacon exchange: never shed and
// not counted against the bounded data queue (it still observes the
// per-link FIFO delay).
func wirelessControl(m msg.Message) bool {
	switch m.Kind() {
	case msg.KindJoin, msg.KindLeave, msg.KindGreet,
		msg.KindRegConfirm, msg.KindAdmit, msg.KindBusy:
		return true
	}
	return false
}

// WirelessControl reports whether m is beacon-channel control signaling
// (see WirelessConfig.QueueLimit). Exported for mirrored transports —
// tcpnet keeps control traffic out of its windowed links the same way.
func WirelessControl(m msg.Message) bool { return wirelessControl(m) }

// sendOrShed schedules fire after the link's FIFO delay, unless the
// directed link already has QueueLimit frames in flight, in which case
// the frame is shed.
func (w *Wireless) sendOrShed(from, to ids.NodeID, m msg.Message, fire func()) {
	if w.cfg.QueueLimit <= 0 {
		w.k.Defer(w.fifoDelay(from, to), fire)
		return
	}
	key := linkKey{from: from, to: to}
	if w.queued[key] >= w.cfg.QueueLimit {
		w.shed++
		w.observe(EventShed, from, to, m)
		return
	}
	w.queued[key]++
	w.k.Defer(w.fifoDelay(from, to), func() {
		w.queued[key]--
		fire()
	})
}

// RegisterMH installs the radio handler of a mobile host.
func (w *Wireless) RegisterMH(mh ids.MH, h Handler) { w.mhs[mh] = h }

// RegisterMSS installs the radio handler of a support station.
func (w *Wireless) RegisterMSS(mss ids.MSS, h Handler) { w.stations[mss] = h }

// SendDownlink transmits from a station to a mobile host in its cell.
// The frame is lost if the MH is unreachable at delivery time (it
// migrated away or turned inactive while the frame was in flight), or by
// random loss. Loss is silent, exactly as in the paper: "the respMss
// does not attempt any new forwarding of the result" — recovery is the
// proxy's job.
func (w *Wireless) SendDownlink(from ids.MSS, to ids.MH, m msg.Message) {
	w.observe(EventSent, from.Node(), to.Node(), m)
	fire := func() {
		if !w.cfg.Reachable(from, to) {
			w.observe(EventDroppedUnreachable, from.Node(), to.Node(), m)
			return
		}
		if w.rng.Prob(w.cfg.LossProb) || w.filtered(from.Node(), to.Node(), m) {
			w.observe(EventDroppedLoss, from.Node(), to.Node(), m)
			return
		}
		h := w.mhs[to]
		if h == nil {
			w.observe(EventDroppedUnreachable, from.Node(), to.Node(), m)
			return
		}
		w.observe(EventDelivered, from.Node(), to.Node(), m)
		h.HandleMessage(from.Node(), m)
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWireless, from.Node(), to.Node(), fire)
		return
	}
	if wirelessControl(m) {
		// Admission signaling (reg-confirm, admit, busy) rides the
		// beacon exchange: outside the bounded data queue, so a control
		// reply can never pin the link and starve a result delivery.
		w.k.Defer(w.fifoDelay(from.Node(), to.Node()), fire)
		return
	}
	if w.cfg.WTP.Enabled {
		// Windowed transport: the message joins the per-link coalescing
		// buffer and travels inside a WtpData frame; the sender decides
		// when (window, congestion, retransmission).
		w.wtpSender(from, to).Queue(m)
		return
	}
	w.sendOrShed(from.Node(), to.Node(), m, fire)
}

// wtpSender returns (creating on first use) the windowed-transport
// sender of a directed downlink.
func (w *Wireless) wtpSender(from ids.MSS, to ids.MH) *wtp.Sender {
	key := linkKey{from: from.Node(), to: to.Node()}
	s, ok := w.wtpOut[key]
	if !ok {
		s = wtp.NewSender(w.k, w.cfg.WTP, func(f msg.WtpData) {
			w.transmitWtpFrame(from, to, f)
		})
		w.wtpOut[key] = s
	}
	return s
}

// transmitWtpFrame is one physical transmission attempt of a windowed
// data frame: subject to the bounded link queue at send time and to
// reachability, random loss and the drop filter at delivery time —
// exactly the gates a plain downlink message passes. Frame-level fates
// (loss, shed, unreachable) are observed with the WtpData envelope; the
// coalesced messages inside observe EventSent at Queue time and
// EventDelivered when the receiver hands them up in order.
func (w *Wireless) transmitWtpFrame(from ids.MSS, to ids.MH, f msg.WtpData) {
	fire := func() {
		if !w.cfg.Reachable(from, to) {
			w.observe(EventDroppedUnreachable, from.Node(), to.Node(), f)
			return
		}
		if w.rng.Prob(w.cfg.LossProb) || w.filtered(from.Node(), to.Node(), f) {
			w.observe(EventDroppedLoss, from.Node(), to.Node(), f)
			return
		}
		h := w.mhs[to]
		if h == nil {
			w.observe(EventDroppedUnreachable, from.Node(), to.Node(), f)
			return
		}
		w.receiveWtpFrame(from, to, f, h)
	}
	w.sendOrShed(from.Node(), to.Node(), f, fire)
}

// receiveWtpFrame runs at the mobile end of a windowed downlink: the
// receiver reorders and dedups, newly in-order messages go up to the
// handler, and every live frame is acknowledged (cumulative watermark
// plus selective blocks) on the reverse link.
func (w *Wireless) receiveWtpFrame(from ids.MSS, to ids.MH, f msg.WtpData, h Handler) {
	key := linkKey{from: from.Node(), to: to.Node()}
	r, ok := w.wtpIn[key]
	if !ok {
		r = wtp.NewReceiver(w.cfg.WTP)
		w.wtpIn[key] = r
	}
	deliver, ack, live := r.Accept(f)
	if !live {
		return // dead epoch: the sender reset and moved on
	}
	// The frame itself is observed as delivered (tracing sees the
	// transport's arrows, not just the payloads); drop accounting never
	// counts wireless deliveries, so stats are unaffected.
	w.observe(EventDelivered, from.Node(), to.Node(), f)
	for _, in := range deliver {
		w.observe(EventDelivered, from.Node(), to.Node(), in)
		h.HandleMessage(from.Node(), in)
	}
	w.sendWtpAck(from, to, ack)
}

// sendWtpAck returns an acknowledgment on the reverse radio link. Acks
// are subject to random loss (a lost ack costs one retransmission) but,
// like the beacon control traffic, ride outside the bounded data queue;
// they terminate inside the transport, never at the station handler.
func (w *Wireless) sendWtpAck(from ids.MSS, to ids.MH, a msg.WtpAck) {
	if w.rng.Prob(w.cfg.LossProb) {
		w.observe(EventDroppedLoss, to.Node(), from.Node(), a)
		return
	}
	key := linkKey{from: from.Node(), to: to.Node()}
	w.k.Defer(w.fifoDelay(to.Node(), from.Node()), func() {
		if s, ok := w.wtpOut[key]; ok {
			w.observe(EventDelivered, to.Node(), from.Node(), a)
			s.OnAck(a)
		}
	})
}

// WTPStats aggregates windowed-transport counters over all downlinks:
// total retransmissions (timeout + fast), fast retransmissions, link
// resets, first-transmission frames, messages carried by them, and
// duplicate frames seen by receivers. All zero when WTP is off.
func (w *Wireless) WTPStats() (retransmits, fast, resets, frames, msgs, dups int64) {
	for _, s := range w.wtpOut {
		retransmits += s.Retransmits
		fast += s.FastRetransmits
		resets += s.Resets
		frames += s.FramesSent
		msgs += s.MsgsFramed
	}
	for _, r := range w.wtpIn {
		dups += r.Duplicates
	}
	return
}

// SendUplink transmits from a mobile host to a station. The MH must be
// reachable from that station when transmitting (same-cell, active);
// random loss applies too — except for registration control messages
// (join, leave, greet), which model the link-layer-reliable beacon
// exchange the paper abstracts over in §2 ("we abstract from the details
// of how a MH learns that it is entering or leaving a cell").
func (w *Wireless) SendUplink(from ids.MH, to ids.MSS, m msg.Message) {
	w.observe(EventSent, from.Node(), to.Node(), m)
	lossy := true
	switch m.Kind() {
	case msg.KindJoin, msg.KindLeave, msg.KindGreet:
		lossy = false
	}
	if !w.cfg.Reachable(to, from) {
		w.observe(EventDroppedUnreachable, from.Node(), to.Node(), m)
		return
	}
	if lossy && (w.rng.Prob(w.cfg.LossProb) || w.filtered(from.Node(), to.Node(), m)) {
		w.observe(EventDroppedLoss, from.Node(), to.Node(), m)
		return
	}
	fire := func() {
		h := w.stations[to]
		if h == nil {
			w.observe(EventDroppedUnreachable, from.Node(), to.Node(), m)
			return
		}
		w.observe(EventDelivered, from.Node(), to.Node(), m)
		h.HandleMessage(from.Node(), m)
	}
	if w.cfg.Seq != nil {
		w.cfg.Seq.Offer(LayerWireless, from.Node(), to.Node(), fire)
		return
	}
	if !lossy {
		// Registration control rides the reliable beacon exchange; it is
		// never shed and does not occupy the bounded data queue (a lost
		// join would desynchronize the cell model).
		w.k.Defer(w.fifoDelay(from.Node(), to.Node()), fire)
		return
	}
	w.sendOrShed(from.Node(), to.Node(), m, fire)
}

// fifoDelay samples a link delay and stretches it so this frame arrives
// no earlier than the previous frame on the same directed link.
func (w *Wireless) fifoDelay(from, to ids.NodeID) time.Duration {
	key := linkKey{from: from, to: to}
	arrival := w.k.Now() + sim.Time(w.cfg.Latency.Sample(w.rng))
	if prev := w.lastRx[key]; arrival < prev {
		arrival = prev
	}
	w.lastRx[key] = arrival
	return time.Duration(arrival - w.k.Now())
}

// filtered consults the DropFilter test hook, if any.
func (w *Wireless) filtered(from, to ids.NodeID, m msg.Message) bool {
	return w.cfg.DropFilter != nil && w.cfg.DropFilter(from, to, m)
}

func (w *Wireless) observe(kind EventKind, from, to ids.NodeID, m msg.Message) {
	if w.observer != nil {
		w.observer(w.k.Now(), LayerWireless, kind, from, to, m)
	}
}

// MeanLatency exposes the configured mean wireless delay (t_wireless in
// the paper's §5 retransmission condition).
func (w *Wireless) MeanLatency() time.Duration { return w.cfg.Latency.Mean() }
