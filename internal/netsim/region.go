package netsim

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// CrossFrame is one wired message leaving its region: the payload plus
// the absolute virtual instant it reaches the destination host. The
// parallel coordinator (internal/psim) carries frames between region
// kernels and injects them at Arrival, merged in deterministic
// (arrival, source region, sequence) order.
type CrossFrame struct {
	From, To ids.NodeID
	M        msg.Message
	Arrival  sim.Time
}

// RegionLink is the wired transport of one region in a partitioned
// world. Traffic between two hosts of the same region goes through the
// region's own Wired substrate untouched (causal order, queue bounds,
// the lot). Traffic to a host in another region is turned into a
// CrossFrame: the latency is sampled here, on the sender's kernel, and
// the frame is handed to the coordinator, which delivers it on the
// destination region's kernel at the sampled arrival instant.
//
// Conservative synchronization leans on the emitted latency never being
// below the coordinator's lookahead — Send enforces that invariant and
// panics on a violation, because a short frame would have to land inside
// a window the destination region may already have finished.
type RegionLink struct {
	k     sim.Scheduler
	local *Wired
	// localSet marks the hosts simulated by this region; everything else
	// is remote.
	localSet map[ids.NodeID]bool
	// latency and pair mirror WiredConfig.Latency/PairLatency for the
	// cross-region links; sampling draws from this region's own stream.
	latency LatencyModel
	pair    func(from, to ids.NodeID) LatencyModel
	rng     *sim.RNG
	// lookahead is the coordinator's window width; every cross-region
	// latency sample must be >= it.
	lookahead sim.Time
	emit      func(CrossFrame)
	obs       Observer
	handlers  map[ids.NodeID]Handler
	// lastOut enforces per-pair FIFO on outbound cross links: a frame
	// never arrives before an earlier frame of the same directed pair
	// (physical links do not reorder). With a constant latency model the
	// clamp never fires; with a variable one it removes the same-pair
	// overtakes the intra-region causal group would have prevented.
	lastOut map[[2]ids.NodeID]sim.Time
}

// RegionLinkConfig parameterizes NewRegionLink.
type RegionLinkConfig struct {
	// Local is the region's intra-region substrate; LocalMembers its
	// membership (the subset of the global host set this region owns).
	Local        *Wired
	LocalMembers []ids.NodeID
	// Latency and PairLatency model the cross-region wired links, with
	// the same precedence rule as WiredConfig.
	Latency     LatencyModel
	PairLatency func(from, to ids.NodeID) LatencyModel
	// Lookahead is the conservative window width. Every sampled
	// cross-region latency must be at least this long.
	Lookahead time.Duration
	// Emit receives each outbound cross-region frame. It runs on the
	// sending region's kernel (inside a window), so it must only record
	// the frame — typically appending to the region's outbox for the
	// coordinator to merge at the next barrier.
	Emit func(CrossFrame)
}

// NewRegionLink wraps a region's Wired substrate into the partitioned
// world's wired transport. obs may be nil; use SetObserver to bind it
// after the world exists (construction order: substrate, link, world,
// then the world's stats observer).
func NewRegionLink(k sim.Scheduler, cfg RegionLinkConfig, obs Observer) *RegionLink {
	if cfg.Local == nil || cfg.Emit == nil {
		panic("netsim: RegionLink needs a local substrate and an emit hook")
	}
	if cfg.Lookahead <= 0 {
		panic("netsim: RegionLink lookahead must be positive")
	}
	if cfg.Latency == nil {
		cfg.Latency = Constant(0)
	}
	l := &RegionLink{
		k:         k,
		local:     cfg.Local,
		localSet:  make(map[ids.NodeID]bool, len(cfg.LocalMembers)),
		latency:   cfg.Latency,
		pair:      cfg.PairLatency,
		rng:       k.RNG().Fork(),
		lookahead: sim.Time(cfg.Lookahead),
		emit:      cfg.Emit,
		obs:       obs,
		handlers:  make(map[ids.NodeID]Handler),
		lastOut:   make(map[[2]ids.NodeID]sim.Time),
	}
	for _, n := range cfg.LocalMembers {
		l.localSet[n] = true
	}
	return l
}

// SetObserver binds the network-event observer. Must be called before
// the simulation runs (single-threaded construction time).
func (l *RegionLink) SetObserver(obs Observer) { l.obs = obs }

// Register installs the handler for a local host. Remote hosts are the
// other regions' business; registering one here is a partitioning bug.
func (l *RegionLink) Register(n ids.NodeID, h Handler) {
	if !l.localSet[n] {
		panic(fmt.Sprintf("netsim: %v is not a member of this region", n))
	}
	l.handlers[n] = h
	l.local.Register(n, h)
}

// Send routes m: intra-region through the local substrate, inter-region
// as a CrossFrame with a latency sampled now.
func (l *RegionLink) Send(from, to ids.NodeID, m msg.Message) {
	if l.localSet[to] {
		l.local.Send(from, to, m)
		return
	}
	l.observe(EventSent, from, to, m)
	lat := l.sampleLatency(from, to)
	if sim.Time(lat) < l.lookahead {
		panic(fmt.Sprintf("netsim: cross-region latency %v below lookahead %v (%v -> %v)",
			lat, time.Duration(l.lookahead), from, to))
	}
	arrival := l.k.Now() + sim.Time(lat)
	pair := [2]ids.NodeID{from, to}
	if last := l.lastOut[pair]; arrival < last {
		arrival = last
	}
	l.lastOut[pair] = arrival
	l.emit(CrossFrame{From: from, To: to, M: m, Arrival: arrival})
}

// Deliver hands an inbound cross-region frame to its destination host.
// The coordinator calls it on the destination region's kernel at
// f.Arrival. Cross-region frames bypass the local causal group: with the
// partitioned topologies' latency models (cross links no shorter than
// any path through a third host), timestamp order already is causal
// order, which the coordinator's deterministic merge preserves.
func (l *RegionLink) Deliver(f CrossFrame) {
	h, ok := l.handlers[f.To]
	if !ok {
		panic(fmt.Sprintf("netsim: cross-region frame for unregistered host %v", f.To))
	}
	l.observe(EventDelivered, f.From, f.To, f.M)
	h.HandleMessage(f.From, f.M)
}

// Local reports whether the host is simulated by this region.
func (l *RegionLink) Local(n ids.NodeID) bool { return l.localSet[n] }

func (l *RegionLink) sampleLatency(from, to ids.NodeID) time.Duration {
	lat := l.latency
	if l.pair != nil {
		if pl := l.pair(from, to); pl != nil {
			lat = pl
		}
	}
	return lat.Sample(l.rng)
}

func (l *RegionLink) observe(kind EventKind, from, to ids.NodeID, m msg.Message) {
	if l.obs != nil {
		l.obs(l.k.Now(), LayerWired, kind, from, to, m)
	}
}

var _ WiredTransport = (*RegionLink)(nil)
