package netsim

import (
	"time"

	"repro/internal/sim"
)

// ARQConfig parameterizes the wired link-layer retransmission protocol
// (positive acks, timeout-driven retransmission with capped exponential
// backoff, receiver-side dedup). With ARQ layered under the causal
// delivery, internal/causal sees a reliable stream again even when the
// backbone drops or duplicates frames — restoring paper assumption 1
// over a faulty network.
type ARQConfig struct {
	// Enabled turns the ARQ layer on.
	Enabled bool
	// RTO is the initial retransmission timeout (default 50ms). It must
	// exceed the round-trip time of the link or every frame is sent at
	// least twice.
	RTO time.Duration
	// MaxBackoff caps the exponential backoff between retransmissions
	// (default 2s).
	MaxBackoff time.Duration
}

func (c ARQConfig) rto() time.Duration {
	if c.RTO > 0 {
		return c.RTO
	}
	return 50 * time.Millisecond
}

func (c ARQConfig) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 2 * time.Second
}

// backoff returns the wait before the next retransmission after the
// given attempt number (1-based): RTO doubled per attempt, capped.
func (c ARQConfig) backoff(attempt int) time.Duration {
	d := c.rto()
	max := c.maxBackoff()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// ARQSender is the send half of the link-layer ARQ for one directed
// link. It assigns sequence numbers, calls transmit for the first copy
// and every retransmission, and keeps retransmitting until Ack. It is
// substrate-agnostic: Wired drives it with simulated frames, tcpnet
// with real sockets.
type ARQSender struct {
	k        sim.Scheduler
	cfg      ARQConfig
	transmit func(seq uint64, attempt int)
	nextSeq  uint64
	pending  map[uint64]*arqPending
	// Retransmits counts timeout-driven re-sends on this link.
	Retransmits int64
}

type arqPending struct {
	attempt int
	timer   sim.Canceler
}

// NewARQSender builds a sender that transmits via the given callback.
func NewARQSender(k sim.Scheduler, cfg ARQConfig, transmit func(seq uint64, attempt int)) *ARQSender {
	return &ARQSender{k: k, cfg: cfg, transmit: transmit, pending: make(map[uint64]*arqPending)}
}

// Send assigns the next sequence number, calls prepare with it (so the
// caller can register the frame payload before the first transmission),
// transmits, and arms the retransmission timer. It returns the sequence
// number.
func (s *ARQSender) Send(prepare func(seq uint64)) uint64 {
	s.nextSeq++
	seq := s.nextSeq
	if prepare != nil {
		prepare(seq)
	}
	p := &arqPending{attempt: 1}
	s.pending[seq] = p
	s.transmit(seq, 1)
	s.arm(seq, p)
	return seq
}

func (s *ARQSender) arm(seq uint64, p *arqPending) {
	p.timer = s.k.After(s.cfg.backoff(p.attempt), func() {
		if _, live := s.pending[seq]; !live {
			return
		}
		p.attempt++
		s.Retransmits++
		s.transmit(seq, p.attempt)
		s.arm(seq, p)
	})
}

// Ack confirms receipt of a frame and stops its retransmission. Acking
// an unknown or already-acked sequence number is a no-op (acks are
// themselves duplicated by a faulty link).
func (s *ARQSender) Ack(seq uint64) {
	p, ok := s.pending[seq]
	if !ok {
		return
	}
	if p.timer != nil {
		p.timer.Cancel()
	}
	delete(s.pending, seq)
}

// Outstanding reports the number of un-acked frames.
func (s *ARQSender) Outstanding() int { return len(s.pending) }

// ARQReceiver is the receive half: at-most-once delivery by sequence
// number. Because the sender assigns contiguous numbers and every frame
// is eventually delivered, the seen-set is compacted into a contiguous
// watermark plus a (transient) set of out-of-order arrivals.
type ARQReceiver struct {
	contig uint64 // every seq <= contig has been accepted
	ahead  map[uint64]bool
}

// NewARQReceiver returns an empty receiver.
func NewARQReceiver() *ARQReceiver {
	return &ARQReceiver{ahead: make(map[uint64]bool)}
}

// Accept reports whether seq is seen for the first time, recording it.
func (r *ARQReceiver) Accept(seq uint64) bool {
	if seq <= r.contig || r.ahead[seq] {
		return false
	}
	r.ahead[seq] = true
	for r.ahead[r.contig+1] {
		delete(r.ahead, r.contig+1)
		r.contig++
	}
	return true
}
