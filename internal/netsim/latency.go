package netsim

import (
	"time"

	"repro/internal/ids"
	"repro/internal/sim"
)

// LatencyModel samples per-message transmission delays.
type LatencyModel interface {
	// Sample draws one delay. Implementations must return >= 0.
	Sample(rng *sim.RNG) time.Duration
	// Mean returns the model's expected delay, used by the analytical
	// retransmission-threshold experiment (E3: retransmissions occur only
	// if mean residence < t_wired + t_wireless).
	Mean() time.Duration
}

// Constant is a fixed delay.
type Constant time.Duration

// Sample returns the fixed delay.
func (c Constant) Sample(*sim.RNG) time.Duration { return time.Duration(c) }

// Mean returns the fixed delay.
func (c Constant) Mean() time.Duration { return time.Duration(c) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi time.Duration
}

// Sample draws from the uniform range.
func (u Uniform) Sample(rng *sim.RNG) time.Duration { return rng.Uniform(u.Lo, u.Hi) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() time.Duration { return (u.Lo + u.Hi) / 2 }

// Exponential draws exponentially distributed delays with the given
// mean, shifted by Floor so delays never go below a propagation minimum.
type Exponential struct {
	MeanDelay time.Duration
	Floor     time.Duration
}

// Sample draws Floor + Exp(MeanDelay - Floor).
func (e Exponential) Sample(rng *sim.RNG) time.Duration {
	extra := e.MeanDelay - e.Floor
	if extra < 0 {
		extra = 0
	}
	return e.Floor + rng.Exp(extra)
}

// Mean returns the configured mean (never below Floor).
func (e Exponential) Mean() time.Duration {
	if e.MeanDelay < e.Floor {
		return e.Floor
	}
	return e.MeanDelay
}

// RingLatency returns a PairLatency function modelling a metropolitan
// ring of n stations: the delay between two stations is base plus
// perHop times their ring distance (servers and other non-station hosts
// fall back to the wired default). Stations are ids.MSS(1..n).
func RingLatency(n int, base, perHop time.Duration) func(from, to ids.NodeID) LatencyModel {
	return func(from, to ids.NodeID) LatencyModel {
		a, b := from.MSS(), to.MSS()
		if !a.Valid() || !b.Valid() {
			return nil
		}
		d := int(a) - int(b)
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return Constant(base + time.Duration(d)*perHop)
	}
}
