package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

func staticMembers() []ids.NodeID {
	return []ids.NodeID{
		ids.MSS(1).Node(), ids.MSS(2).Node(), ids.MSS(3).Node(), ids.Server(1).Node(),
	}
}

type record struct {
	from ids.NodeID
	m    msg.Message
}

func collector(dst *[]record) Handler {
	return HandlerFunc(func(from ids.NodeID, m msg.Message) {
		*dst = append(*dst, record{from: from, m: m})
	})
}

func TestWiredDelivers(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{Latency: Constant(10 * time.Millisecond), Causal: true}, nil)
	var got []record
	for _, n := range staticMembers() {
		n := n
		if n == ids.MSS(2).Node() {
			w.Register(n, collector(&got))
		} else {
			w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) {}))
		}
	}
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].from != ids.MSS(1).Node() {
		t.Errorf("from = %v, want mss1", got[0].from)
	}
	if _, ok := got[0].m.(msg.Dereg); !ok {
		t.Errorf("message type = %T, want Dereg", got[0].m)
	}
	if k.Now() != sim.Time(10*time.Millisecond) {
		t.Errorf("delivery time = %v, want 10ms", k.Now())
	}
}

func TestWiredCausalOrderAcrossHosts(t *testing.T) {
	// mss1 sends A to mss3, then B to mss2; mss2 sends C to mss3 after
	// receiving B. Even though C's path (1->2->3) can be faster than A's
	// direct path under the chosen latencies, mss3 must get A before C.
	k := sim.NewKernel(1)
	// Adversarial deterministic latency: first send is slow, rest fast.
	lat := &scriptedLatency{delays: []time.Duration{
		50 * time.Millisecond, // A: mss1 -> mss3 (slow)
		1 * time.Millisecond,  // B: mss1 -> mss2
		1 * time.Millisecond,  // C: mss2 -> mss3
	}}
	w := NewWired(k, staticMembers(), WiredConfig{Latency: lat, Causal: true}, nil)
	var at3 []record
	w.Register(ids.MSS(3).Node(), collector(&at3))
	w.Register(ids.MSS(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.Server(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.MSS(2).Node(), HandlerFunc(func(from ids.NodeID, m msg.Message) {
		w.Send(ids.MSS(2).Node(), ids.MSS(3).Node(), msg.Join{MH: 99}) // C
	}))

	w.Send(ids.MSS(1).Node(), ids.MSS(3).Node(), msg.Join{MH: 1}) // A
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 2}) // B
	k.Run()

	if len(at3) != 2 {
		t.Fatalf("mss3 received %d messages, want 2", len(at3))
	}
	if at3[0].m.(msg.Join).MH != 1 || at3[1].m.(msg.Join).MH != 99 {
		t.Fatalf("causal order violated at mss3: %v then %v", at3[0].m, at3[1].m)
	}
}

func TestWiredWithoutCausalReordersAblation(t *testing.T) {
	// Identical scenario with Causal: false must deliver C before A —
	// this is the reordering the E2 ablation depends on observing.
	k := sim.NewKernel(1)
	lat := &scriptedLatency{delays: []time.Duration{
		50 * time.Millisecond,
		1 * time.Millisecond,
		1 * time.Millisecond,
	}}
	w := NewWired(k, staticMembers(), WiredConfig{Latency: lat, Causal: false}, nil)
	var at3 []record
	w.Register(ids.MSS(3).Node(), collector(&at3))
	w.Register(ids.MSS(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.Server(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.MSS(2).Node(), HandlerFunc(func(from ids.NodeID, m msg.Message) {
		w.Send(ids.MSS(2).Node(), ids.MSS(3).Node(), msg.Join{MH: 99})
	}))
	w.Send(ids.MSS(1).Node(), ids.MSS(3).Node(), msg.Join{MH: 1})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 2})
	k.Run()
	if len(at3) != 2 {
		t.Fatalf("mss3 received %d messages, want 2", len(at3))
	}
	if at3[0].m.(msg.Join).MH != 99 {
		t.Fatalf("without causal layer, fast path should win: got %v first", at3[0].m)
	}
}

// scriptedLatency returns pre-programmed delays in sequence, then zero.
type scriptedLatency struct {
	delays []time.Duration
	i      int
}

func (s *scriptedLatency) Sample(*sim.RNG) time.Duration {
	if s.i < len(s.delays) {
		d := s.delays[s.i]
		s.i++
		return d
	}
	return 0
}

func (s *scriptedLatency) Mean() time.Duration { return 0 }

func TestWiredPanicsOnNonMember(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{}, nil)
	defer func() {
		if recover() == nil {
			t.Error("send from non-member must panic")
		}
	}()
	w.Send(ids.MSS(9).Node(), ids.MSS(1).Node(), msg.Join{MH: 1})
}

func TestWiredRejectsMobileMember(t *testing.T) {
	k := sim.NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("MH as wired member must panic")
		}
	}()
	NewWired(k, []ids.NodeID{ids.MH(1).Node()}, WiredConfig{}, nil)
}

// world is a minimal reachability oracle for wireless tests.
type world struct {
	loc    map[ids.MH]ids.MSS
	active map[ids.MH]bool
}

func (w *world) reachable(mss ids.MSS, mh ids.MH) bool {
	return w.loc[mh] == mss && w.active[mh]
}

func TestWirelessDownlinkDelivery(t *testing.T) {
	k := sim.NewKernel(1)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{Latency: Constant(time.Millisecond), Reachable: wd.reachable}, nil)
	var got []record
	w.RegisterMH(7, collector(&got))
	w.SendDownlink(1, 7, msg.ResultDeliver{Req: ids.RequestID{Origin: 7, Seq: 1}})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
}

func TestWirelessDownlinkLostWhenMigratedMidFlight(t *testing.T) {
	k := sim.NewKernel(1)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	var events []EventKind
	obs := func(at sim.Time, l Layer, kind EventKind, from, to ids.NodeID, m msg.Message) {
		if l == LayerWireless {
			events = append(events, kind)
		}
	}
	w := NewWireless(k, WirelessConfig{Latency: Constant(10 * time.Millisecond), Reachable: wd.reachable}, obs)
	var got []record
	w.RegisterMH(7, collector(&got))
	w.SendDownlink(1, 7, msg.ResultDeliver{})
	// The MH migrates to cell 2 while the frame is in flight.
	k.After(5*time.Millisecond, func() { wd.loc[7] = 2 })
	k.Run()
	if len(got) != 0 {
		t.Fatal("frame delivered despite mid-flight migration")
	}
	if len(events) != 2 || events[1] != EventDroppedUnreachable {
		t.Fatalf("events = %v, want [sent dropped-unreachable]", events)
	}
}

func TestWirelessDownlinkLostWhenInactive(t *testing.T) {
	k := sim.NewKernel(1)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: false}}
	w := NewWireless(k, WirelessConfig{Reachable: wd.reachable}, nil)
	var got []record
	w.RegisterMH(7, collector(&got))
	w.SendDownlink(1, 7, msg.ResultDeliver{})
	k.Run()
	if len(got) != 0 {
		t.Fatal("frame delivered to inactive MH")
	}
}

func TestWirelessRandomLoss(t *testing.T) {
	k := sim.NewKernel(42)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{LossProb: 0.5, Reachable: wd.reachable}, nil)
	delivered := 0
	w.RegisterMH(7, HandlerFunc(func(ids.NodeID, msg.Message) { delivered++ }))
	const n = 10000
	for i := 0; i < n; i++ {
		w.SendDownlink(1, 7, msg.ResultDeliver{})
	}
	k.Run()
	frac := float64(delivered) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("delivery fraction = %.3f, want ~0.5", frac)
	}
}

func TestWirelessUplink(t *testing.T) {
	k := sim.NewKernel(1)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{Latency: Constant(time.Millisecond), Reachable: wd.reachable}, nil)
	var got []record
	w.RegisterMSS(1, collector(&got))
	w.SendUplink(7, 1, msg.Request{Req: ids.RequestID{Origin: 7, Seq: 1}, Server: 1})
	// Uplink to a station whose cell the MH does not occupy is lost.
	w.SendUplink(7, 2, msg.Request{Req: ids.RequestID{Origin: 7, Seq: 2}, Server: 1})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("station received %d, want 1", len(got))
	}
}

func TestObserverSeesWiredTraffic(t *testing.T) {
	k := sim.NewKernel(1)
	var kinds []EventKind
	obs := func(at sim.Time, l Layer, kind EventKind, from, to ids.NodeID, m msg.Message) {
		kinds = append(kinds, kind)
	}
	w := NewWired(k, staticMembers(), WiredConfig{Causal: true}, obs)
	for _, n := range staticMembers() {
		w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	}
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})
	k.Run()
	if len(kinds) != 2 || kinds[0] != EventSent || kinds[1] != EventDelivered {
		t.Fatalf("observer events = %v, want [sent delivered]", kinds)
	}
}

func TestLatencyModels(t *testing.T) {
	rng := sim.NewRNG(1)
	if Constant(5*time.Millisecond).Sample(rng) != 5*time.Millisecond {
		t.Error("Constant.Sample")
	}
	if Constant(5*time.Millisecond).Mean() != 5*time.Millisecond {
		t.Error("Constant.Mean")
	}
	u := Uniform{Lo: time.Millisecond, Hi: 3 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := u.Sample(rng)
		if d < u.Lo || d > u.Hi {
			t.Fatalf("Uniform.Sample = %v out of range", d)
		}
	}
	if u.Mean() != 2*time.Millisecond {
		t.Error("Uniform.Mean")
	}
	e := Exponential{MeanDelay: 10 * time.Millisecond, Floor: 2 * time.Millisecond}
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		d := e.Sample(rng)
		if d < e.Floor {
			t.Fatalf("Exponential.Sample = %v below floor", d)
		}
		sum += d
	}
	mean := float64(sum) / n
	if mean < 0.9*float64(e.MeanDelay) || mean > 1.1*float64(e.MeanDelay) {
		t.Errorf("Exponential mean = %v, want ~%v", time.Duration(mean), e.MeanDelay)
	}
	if e.Mean() != 10*time.Millisecond {
		t.Error("Exponential.Mean")
	}
	if (Exponential{MeanDelay: time.Millisecond, Floor: 5 * time.Millisecond}).Mean() != 5*time.Millisecond {
		t.Error("Exponential.Mean floor clamp")
	}
}

func TestWirelessPerLinkFIFO(t *testing.T) {
	// Frames on one directed radio link never overtake each other, even
	// under high-variance latency draws: a single radio channel delivers
	// in order, and the protocol depends on it (a request must not reach
	// a station before the greet announcing its sender).
	k := sim.NewKernel(9)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{
		Latency:   Uniform{Lo: time.Millisecond, Hi: 50 * time.Millisecond},
		Reachable: wd.reachable,
	}, nil)
	var order []uint32
	w.RegisterMSS(1, HandlerFunc(func(_ ids.NodeID, m msg.Message) {
		order = append(order, m.(msg.Request).Req.Seq)
	}))
	const n = 200
	for i := uint32(1); i <= n; i++ {
		i := i
		// Stagger sends a little so draws overlap adversarially.
		k.After(time.Duration(i)*100*time.Microsecond, func() {
			w.SendUplink(7, 1, msg.Request{Req: ids.RequestID{Origin: 7, Seq: i}})
		})
	}
	k.Run()
	if len(order) != n {
		t.Fatalf("delivered %d of %d", len(order), n)
	}
	for i, seq := range order {
		if seq != uint32(i+1) {
			t.Fatalf("frame %d delivered out of order (seq %d)", i, seq)
		}
	}
}

func TestWirelessFIFOIndependentLinks(t *testing.T) {
	// Different links are NOT synchronized: a frame to one station may
	// overtake an earlier frame to another — the reordering the hand-off
	// chain machinery exists to absorb.
	k := sim.NewKernel(3)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	// First frame slow, second fast.
	lat := &scriptedLatency{delays: []time.Duration{40 * time.Millisecond, time.Millisecond}}
	w := NewWireless(k, WirelessConfig{Latency: lat, Reachable: func(ids.MSS, ids.MH) bool { return true }}, nil)
	var got []ids.MSS
	for _, id := range []ids.MSS{1, 2} {
		id := id
		w.RegisterMSS(id, HandlerFunc(func(ids.NodeID, msg.Message) { got = append(got, id) }))
	}
	w.SendUplink(7, 1, msg.Join{MH: 7})
	w.SendUplink(7, 2, msg.Join{MH: 7})
	k.Run()
	_ = wd
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("expected the fast cross-link frame to win: %v", got)
	}
}

func TestLayerAndEventStrings(t *testing.T) {
	if LayerWired.String() != "wired" || LayerWireless.String() != "wireless" {
		t.Error("Layer names wrong")
	}
	if EventSent.String() != "sent" || EventDelivered.String() != "delivered" || EventDropped.String() != "dropped" {
		t.Error("EventKind names wrong")
	}
}

func TestMeanLatencyExposure(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{Latency: Constant(5 * time.Millisecond)}, nil)
	if got := w.MeanLatency(); got != 5*time.Millisecond {
		t.Errorf("wired MeanLatency = %v", got)
	}
	wd := &world{loc: map[ids.MH]ids.MSS{}, active: map[ids.MH]bool{}}
	wl := NewWireless(k, WirelessConfig{Latency: Constant(20 * time.Millisecond), Reachable: wd.reachable}, nil)
	if got := wl.MeanLatency(); got != 20*time.Millisecond {
		t.Errorf("wireless MeanLatency = %v", got)
	}
}

func TestRegisterUnknownMemberPanics(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{}, nil)
	defer func() {
		if recover() == nil {
			t.Error("registering a non-member must panic")
		}
	}()
	w.Register(ids.MSS(99).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
}

func TestWiredDuplicateMemberPanics(t *testing.T) {
	k := sim.NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate member must panic")
		}
	}()
	NewWired(k, []ids.NodeID{ids.MSS(1).Node(), ids.MSS(1).Node()}, WiredConfig{}, nil)
}

func TestWiredSendToUnregisteredHandlerPanics(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{}, nil)
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})
	defer func() {
		if recover() == nil {
			t.Error("delivery to an unregistered member must panic")
		}
	}()
	k.Run()
}

func TestExponentialFloorExceedsMean(t *testing.T) {
	rng := sim.NewRNG(4)
	e := Exponential{MeanDelay: time.Millisecond, Floor: 10 * time.Millisecond}
	for i := 0; i < 50; i++ {
		if d := e.Sample(rng); d < 10*time.Millisecond {
			t.Fatalf("sample %v below floor", d)
		}
	}
}

func TestPairLatencyOverridesDefault(t *testing.T) {
	k := sim.NewKernel(1)
	cfg := WiredConfig{
		Latency:     Constant(100 * time.Millisecond), // fallback (server links)
		PairLatency: RingLatency(3, 2*time.Millisecond, 3*time.Millisecond),
	}
	w := NewWired(k, staticMembers(), cfg, nil)
	var arrivals []sim.Time
	for _, n := range staticMembers() {
		n := n
		w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) { arrivals = append(arrivals, k.Now()) }))
	}
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})    // distance 1: 5ms
	w.Send(ids.MSS(1).Node(), ids.MSS(3).Node(), msg.Join{MH: 2})    // ring distance 1: 5ms
	w.Send(ids.MSS(1).Node(), ids.Server(1).Node(), msg.Join{MH: 3}) // fallback: 100ms
	k.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3", len(arrivals))
	}
	if arrivals[0] != sim.Time(5*time.Millisecond) || arrivals[1] != sim.Time(5*time.Millisecond) {
		t.Errorf("station-pair arrivals = %v, want 5ms each", arrivals[:2])
	}
	if arrivals[2] != sim.Time(100*time.Millisecond) {
		t.Errorf("server arrival = %v, want fallback 100ms", arrivals[2])
	}
}

func TestRingLatencyDistances(t *testing.T) {
	pl := RingLatency(6, time.Millisecond, time.Millisecond)
	cases := []struct {
		a, b ids.MSS
		want time.Duration
	}{
		{1, 2, 2 * time.Millisecond},
		{1, 4, 4 * time.Millisecond}, // opposite side: distance 3
		{1, 6, 2 * time.Millisecond}, // wrap: distance 1
		{2, 2, time.Millisecond},     // self: distance 0
	}
	rng := sim.NewRNG(1)
	for _, c := range cases {
		got := pl(c.a.Node(), c.b.Node()).Sample(rng)
		if got != c.want {
			t.Errorf("latency %v->%v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if pl(ids.Server(1).Node(), ids.MSS(1).Node()) != nil {
		t.Error("non-station pair should fall back")
	}
}

// holdSeq is a Sequencer that parks every offered delivery until the
// test fires it explicitly.
type holdSeq struct {
	fires []func()
}

func (s *holdSeq) Offer(_ Layer, _, _ ids.NodeID, fire func()) {
	s.fires = append(s.fires, fire)
}

// TestCausalQueueDiagnostics blocks a causally dependent message and
// checks CausalQueue / MemberName expose the blockage, then drains it.
func TestCausalQueueDiagnostics(t *testing.T) {
	k := sim.NewKernel(1)
	seq := &holdSeq{}
	members := staticMembers()
	w := NewWired(k, members, WiredConfig{Causal: true, Seq: seq}, nil)
	var got []record
	for _, m := range members {
		w.Register(m, collector(&got))
	}
	a, b, c := members[0], members[1], members[2]

	w.Send(a, c, msg.Greet{MH: 1}) // m1: the causal predecessor
	w.Send(a, b, msg.Greet{MH: 2}) // m2
	seq.fires[1]()                 // deliver m2 at b
	w.Send(b, c, msg.Greet{MH: 3}) // m3: causally after m1 via b's delivery
	seq.fires[2]()                 // m3 arrives at c before m1 — must block

	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want only m2", len(got))
	}
	infos := w.CausalQueue(c)
	if len(infos) != 1 {
		t.Fatalf("CausalQueue = %d entries, want 1", len(infos))
	}
	if len(infos[0].BlockedOn) != 1 {
		t.Fatalf("BlockedOn = %v, want one sender", infos[0].BlockedOn)
	}
	if blocker := w.MemberName(infos[0].BlockedOn[0]); blocker != a {
		t.Errorf("blocked on %v, want %v", blocker, a)
	}
	if w.MemberName(-1) != ids.NoNode || w.MemberName(99) != ids.NoNode {
		t.Error("out-of-range MemberName did not return NoNode")
	}
	if w.CausalQueue(ids.MSS(9).Node()) != nil {
		t.Error("CausalQueue for a non-member should be nil")
	}

	seq.fires[0]() // m1 arrives; m3 must flush behind it
	if len(got) != 3 {
		t.Fatalf("delivered %d messages after unblocking, want 3", len(got))
	}
	if len(w.CausalQueue(c)) != 0 {
		t.Error("CausalQueue not drained")
	}
}

// TestNewWirelessRequiresReachable checks the constructor guard.
func TestNewWirelessRequiresReachable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWireless accepted a nil Reachable")
		}
	}()
	NewWireless(sim.NewKernel(1), WirelessConfig{}, nil)
}

// TestWirelessUnregisteredHandlersDrop verifies frames to nodes without
// handlers count as drops (not panics): radios genuinely lose frames.
func TestWirelessUnregisteredHandlersDrop(t *testing.T) {
	k := sim.NewKernel(1)
	drops := 0
	obs := func(_ sim.Time, _ Layer, kind EventKind, _, _ ids.NodeID, _ msg.Message) {
		if kind.IsDrop() {
			drops++
		}
	}
	w := NewWireless(k, WirelessConfig{
		Reachable: func(ids.MSS, ids.MH) bool { return true },
	}, obs)
	w.SendDownlink(1, 1, msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: 1}})
	w.SendUplink(1, 1, msg.AckMH{MH: 1, Req: ids.RequestID{Origin: 1, Seq: 1}})
	k.Run()
	if drops != 2 {
		t.Fatalf("drops = %d, want 2 (one per direction)", drops)
	}
}

// TestWirelessSequencerHook routes both directions through the
// adversarial sequencer and fires them manually.
func TestWirelessSequencerHook(t *testing.T) {
	k := sim.NewKernel(1)
	seq := &holdSeq{}
	w := NewWireless(k, WirelessConfig{
		Reachable: func(ids.MSS, ids.MH) bool { return true },
		Seq:       seq,
	}, nil)
	var up, down []record
	w.RegisterMSS(1, collector(&up))
	w.RegisterMH(1, collector(&down))
	w.SendUplink(1, 1, msg.Join{MH: 1})
	w.SendDownlink(1, 1, msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: 1}})
	if len(up)+len(down) != 0 {
		t.Fatal("sequencer did not hold deliveries")
	}
	for _, fire := range seq.fires {
		fire()
	}
	if len(up) != 1 || len(down) != 1 {
		t.Fatalf("delivered up=%d down=%d, want 1/1", len(up), len(down))
	}
}
