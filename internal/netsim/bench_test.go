package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// BenchmarkWiredDelivery measures the steady-state cost of one wired
// causal send+deliver: stamp snapshot (pooled), transit scheduling
// (kernel free list, no cancel handle), and RST delivery. This is the
// per-hop cost every simulated protocol message pays.
func BenchmarkWiredDelivery(b *testing.B) {
	k := sim.NewKernel(1)
	members := staticMembers()
	w := NewWired(k, members, WiredConfig{Latency: Constant(time.Millisecond), Causal: true}, nil)
	for _, n := range members {
		w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	}
	from, to := ids.MSS(1).Node(), ids.MSS(2).Node()
	m := msg.Dereg{MH: 7, NewMSS: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Send(from, to, m)
		k.Run()
	}
}

// BenchmarkWiredDeliveryUncausal isolates the transport without RST
// stamps, for comparison with BenchmarkWiredDelivery.
func BenchmarkWiredDeliveryUncausal(b *testing.B) {
	k := sim.NewKernel(1)
	members := staticMembers()
	w := NewWired(k, members, WiredConfig{Latency: Constant(time.Millisecond)}, nil)
	for _, n := range members {
		w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	}
	from, to := ids.MSS(1).Node(), ids.MSS(2).Node()
	m := msg.Dereg{MH: 7, NewMSS: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Send(from, to, m)
		k.Run()
	}
}

// TestWiredDeliveryAllocBudget pins the per-message delivery cost on
// the fault-free causal path. The budget is deliberately small but not
// zero: the boxed sim payload and the causal receive entry still cost a
// couple of allocations per hop; what the budget guards is the removal
// of the per-hop matrix clone and timer handle, which used to dominate.
func TestWiredDeliveryAllocBudget(t *testing.T) {
	k := sim.NewKernel(1)
	members := staticMembers()
	w := NewWired(k, members, WiredConfig{Latency: Constant(time.Millisecond), Causal: true}, nil)
	for _, n := range members {
		w.Register(n, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	}
	from, to := ids.MSS(1).Node(), ids.MSS(2).Node()
	var m msg.Message = msg.Dereg{MH: 7, NewMSS: 2}
	// Warm up pools and the kernel free list.
	for i := 0; i < 32; i++ {
		w.Send(from, to, m)
		k.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		w.Send(from, to, m)
		k.Run()
	})
	const budget = 4
	if avg > budget {
		t.Errorf("wired causal delivery: %.1f allocs/op, budget %d", avg, budget)
	}
}
