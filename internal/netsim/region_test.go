package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

func TestRegionLinkRoutesLocalAndRemote(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := ids.MSS(1).Node(), ids.MSS(2).Node()
	remote := ids.MSS(3).Node()
	local := NewWired(k, []ids.NodeID{a, b}, WiredConfig{Latency: Constant(2 * time.Millisecond), Causal: true}, nil)

	var out []CrossFrame
	l := NewRegionLink(k, RegionLinkConfig{
		Local:        local,
		LocalMembers: []ids.NodeID{a, b},
		Latency:      Constant(2 * time.Millisecond),
		Lookahead:    2 * time.Millisecond,
		Emit:         func(f CrossFrame) { out = append(out, f) },
	}, nil)

	var gotLocal []msg.Message
	l.Register(a, HandlerFunc(func(from ids.NodeID, m msg.Message) {}))
	l.Register(b, HandlerFunc(func(from ids.NodeID, m msg.Message) { gotLocal = append(gotLocal, m) }))

	l.Send(a, b, &msg.Greet{MH: 7, OldMSS: 1})
	l.Send(a, remote, &msg.Greet{MH: 7, OldMSS: 1})
	k.Run()

	if len(gotLocal) != 1 {
		t.Fatalf("local delivery count = %d, want 1", len(gotLocal))
	}
	if len(out) != 1 {
		t.Fatalf("emitted frames = %d, want 1", len(out))
	}
	f := out[0]
	if f.To != remote || f.Arrival != sim.Time(2*time.Millisecond) {
		t.Fatalf("frame = %+v, want arrival 2ms at %v", f, remote)
	}
}

func TestRegionLinkDeliverAndObserver(t *testing.T) {
	k := sim.NewKernel(1)
	a := ids.MSS(1).Node()
	local := NewWired(k, []ids.NodeID{a}, WiredConfig{}, nil)
	var events []EventKind
	l := NewRegionLink(k, RegionLinkConfig{
		Local:        local,
		LocalMembers: []ids.NodeID{a},
		Latency:      Constant(5 * time.Millisecond),
		Lookahead:    5 * time.Millisecond,
		Emit:         func(CrossFrame) {},
	}, nil)
	l.SetObserver(func(at sim.Time, layer Layer, kind EventKind, from, to ids.NodeID, m msg.Message) {
		events = append(events, kind)
	})
	var got []msg.Message
	l.Register(a, HandlerFunc(func(from ids.NodeID, m msg.Message) { got = append(got, m) }))

	l.Deliver(CrossFrame{From: ids.MSS(9).Node(), To: a, M: &msg.Greet{MH: 1, OldMSS: 9}})
	if len(got) != 1 {
		t.Fatalf("Deliver reached handler %d times, want 1", len(got))
	}
	if len(events) != 1 || events[0] != EventDelivered {
		t.Fatalf("observer saw %v, want [EventDelivered]", events)
	}
}

func TestRegionLinkShortLatencyPanics(t *testing.T) {
	k := sim.NewKernel(1)
	a := ids.MSS(1).Node()
	local := NewWired(k, []ids.NodeID{a}, WiredConfig{}, nil)
	l := NewRegionLink(k, RegionLinkConfig{
		Local:        local,
		LocalMembers: []ids.NodeID{a},
		Latency:      Constant(1 * time.Millisecond),
		Lookahead:    2 * time.Millisecond,
		Emit:         func(CrossFrame) {},
	}, nil)
	l.Register(a, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("sub-lookahead cross latency did not panic")
		}
	}()
	l.Send(a, ids.MSS(2).Node(), &msg.Greet{MH: 1, OldMSS: 1})
}
