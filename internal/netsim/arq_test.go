package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// dropNth injects a drop on the nth..(n+k-1)th wired transmission
// attempts (1-based, counted across all links including acks).
type dropNth struct {
	n       int
	from    int
	count   int
	dupNth  int
	delay   time.Duration
	delayed int
}

func (d *dropNth) OnWired(from, to ids.NodeID, m msg.Message) LinkFault {
	d.n++
	var f LinkFault
	if d.from > 0 && d.n >= d.from && d.count > 0 {
		d.count--
		f.Drop = true
	}
	if d.dupNth == d.n {
		f.Duplicate = true
	}
	if d.delayed == d.n {
		f.Delay = d.delay
	}
	return f
}

func wiredPair(t *testing.T, k *sim.Kernel, cfg WiredConfig) (*Wired, *[]msg.Message) {
	t.Helper()
	a, b := ids.MSS(1).Node(), ids.MSS(2).Node()
	w := NewWired(k, []ids.NodeID{a, b}, cfg, nil)
	var got []msg.Message
	w.Register(a, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(b, HandlerFunc(func(_ ids.NodeID, m msg.Message) { got = append(got, m) }))
	return w, &got
}

func TestARQRetransmitsThroughLoss(t *testing.T) {
	k := sim.NewKernel(1)
	// Drop the first two transmission attempts of the data frame.
	hook := &dropNth{from: 1, count: 2}
	w, got := wiredPair(t, k, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Causal:  true,
		Faults:  hook,
		ARQ:     ARQConfig{Enabled: true, RTO: 20 * time.Millisecond},
	})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	k.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1", len(*got))
	}
	re, out := w.ARQStats()
	if re != 2 {
		t.Errorf("retransmits = %d, want 2", re)
	}
	if out != 0 {
		t.Errorf("outstanding = %d, want 0 after ack", out)
	}
}

func TestARQDedupsDuplicatedFrames(t *testing.T) {
	k := sim.NewKernel(1)
	// Duplicate the first attempt; the receiver must deliver once.
	hook := &dropNth{dupNth: 1}
	w, got := wiredPair(t, k, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Causal:  true,
		Faults:  hook,
		ARQ:     ARQConfig{Enabled: true, RTO: 20 * time.Millisecond},
	})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	k.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1", len(*got))
	}
}

func TestARQLostAckOnlyCostsARetransmission(t *testing.T) {
	k := sim.NewKernel(1)
	// Attempt 1 is the data frame (delivered), attempt 2 its ack
	// (dropped): the sender retransmits, the receiver dedups and re-acks.
	hook := &dropNth{from: 2, count: 1}
	w, got := wiredPair(t, k, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Causal:  true,
		Faults:  hook,
		ARQ:     ARQConfig{Enabled: true, RTO: 20 * time.Millisecond},
	})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	k.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want exactly 1 despite lost ack", len(*got))
	}
	if re, _ := w.ARQStats(); re != 1 {
		t.Errorf("retransmits = %d, want 1", re)
	}
}

func TestARQCausalOrderSurvivesReorderingLoss(t *testing.T) {
	k := sim.NewKernel(1)
	// Drop the first attempt of the first message only: without ARQ the
	// second message would arrive first and (under causal order) the
	// first would be lost forever; with ARQ both arrive, in causal order.
	hook := &dropNth{from: 1, count: 1}
	w, got := wiredPair(t, k, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Causal:  true,
		Faults:  hook,
		ARQ:     ARQConfig{Enabled: true, RTO: 20 * time.Millisecond},
	})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 8, NewMSS: 2})
	k.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(*got))
	}
	if (*got)[0].(msg.Dereg).MH != 7 || (*got)[1].(msg.Dereg).MH != 8 {
		t.Fatalf("causal order violated: %v", *got)
	}
}

func TestWiredDownGateHoldsFramesUntilRestart(t *testing.T) {
	k := sim.NewKernel(1)
	down := true
	a, b := ids.MSS(1).Node(), ids.MSS(2).Node()
	w := NewWired(k, []ids.NodeID{a, b}, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Causal:  true,
		ARQ:     ARQConfig{Enabled: true, RTO: 10 * time.Millisecond},
		Down: func(n ids.NodeID) bool {
			return n == b && down
		},
	}, nil)
	var got []msg.Message
	w.Register(a, HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(b, HandlerFunc(func(_ ids.NodeID, m msg.Message) { got = append(got, m) }))
	w.Send(a, b, msg.Dereg{MH: 7, NewMSS: 2})
	k.After(50*time.Millisecond, func() { down = false })
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1 after restart", len(got))
	}
	if _, out := w.ARQStats(); out != 0 {
		t.Errorf("outstanding = %d, want 0", out)
	}
	re, _ := w.ARQStats()
	if re == 0 {
		t.Error("expected retransmissions while the destination was down")
	}
}

func TestNonARQFaultDropIsPermanent(t *testing.T) {
	k := sim.NewKernel(1)
	hook := &dropNth{from: 1, count: 1}
	w, got := wiredPair(t, k, WiredConfig{
		Latency: Constant(2 * time.Millisecond),
		Faults:  hook,
	})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 7, NewMSS: 2})
	w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 8, NewMSS: 2})
	k.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1 (first was lost for good)", len(*got))
	}
}

func TestARQBackoffIsCapped(t *testing.T) {
	cfg := ARQConfig{RTO: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
	}
	for i, w := range want {
		if got := cfg.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestARQReceiverCompactsSeenSet(t *testing.T) {
	r := NewARQReceiver()
	for _, seq := range []uint64{2, 1, 3} {
		if !r.Accept(seq) {
			t.Fatalf("first Accept(%d) = false", seq)
		}
	}
	for _, seq := range []uint64{1, 2, 3} {
		if r.Accept(seq) {
			t.Fatalf("second Accept(%d) = true", seq)
		}
	}
	if len(r.ahead) != 0 || r.contig != 3 {
		t.Errorf("receiver not compacted: contig=%d ahead=%d", r.contig, len(r.ahead))
	}
	if !r.Accept(5) || len(r.ahead) != 1 {
		t.Error("out-of-order accept should park in ahead set")
	}
}
