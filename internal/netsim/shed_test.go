package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
)

// countShed returns an observer that counts EventShed callbacks.
func countShed(n *int) Observer {
	return func(at sim.Time, layer Layer, kind EventKind, from, to ids.NodeID, m msg.Message) {
		if kind == EventShed {
			*n++
		}
	}
}

func TestWiredQueueLimitSheds(t *testing.T) {
	k := sim.NewKernel(1)
	var shedEvents int
	w := NewWired(k, staticMembers(), WiredConfig{
		Latency:    Constant(10 * time.Millisecond),
		QueueLimit: 4,
	}, countShed(&shedEvents))
	var got []record
	w.Register(ids.MSS(2).Node(), collector(&got))
	w.Register(ids.MSS(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.MSS(3).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.Server(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))

	for i := 0; i < 10; i++ {
		w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: ids.MH(i + 1)})
	}
	k.Run()

	if len(got) != 4 {
		t.Errorf("delivered %d messages, want 4 (queue limit)", len(got))
	}
	if shedEvents != 6 || w.Shed() != 6 {
		t.Errorf("shed events=%d Shed()=%d, want 6/6", shedEvents, w.Shed())
	}
}

func TestWiredQueueLimitBoundsConcurrencyNotTotal(t *testing.T) {
	// Frames offered after the queue drains go through: the limit bounds
	// concurrency, not cumulative traffic.
	k := sim.NewKernel(1)
	w := NewWired(k, staticMembers(), WiredConfig{
		Latency:    Constant(10 * time.Millisecond),
		QueueLimit: 1,
	}, nil)
	var got []record
	w.Register(ids.MSS(2).Node(), collector(&got))
	w.Register(ids.MSS(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.MSS(3).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.Server(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	for i := 0; i < 5; i++ {
		mh := ids.MH(i + 1)
		k.After(time.Duration(i)*50*time.Millisecond, func() {
			w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: mh})
		})
	}
	k.Run()
	if len(got) != 5 || w.Shed() != 0 {
		t.Errorf("delivered %d (shed %d), want all 5 with a drained queue", len(got), w.Shed())
	}
}

// TestWiredQueueLimitARQRecovers is the load-shedding contract the
// protocol's delivery guarantee rests on: with the ARQ above the
// bounded queue, shed frames stay un-acked and retransmit, so every
// message still arrives exactly once — the full queue is backpressure,
// not loss.
func TestWiredQueueLimitARQRecovers(t *testing.T) {
	k := sim.NewKernel(1)
	var shedEvents int
	w := NewWired(k, staticMembers(), WiredConfig{
		Latency:    Constant(10 * time.Millisecond),
		Causal:     true,
		QueueLimit: 2,
		ARQ:        ARQConfig{Enabled: true, RTO: 25 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
	}, countShed(&shedEvents))
	var got []record
	w.Register(ids.MSS(2).Node(), collector(&got))
	w.Register(ids.MSS(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.MSS(3).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))
	w.Register(ids.Server(1).Node(), HandlerFunc(func(ids.NodeID, msg.Message) {}))

	const n = 12
	for i := 0; i < n; i++ {
		w.Send(ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: ids.MH(i + 1)})
	}
	k.Run()

	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d despite shedding", len(got), n)
	}
	seen := make(map[ids.MH]int)
	for _, r := range got {
		seen[r.m.(msg.Join).MH]++
	}
	for mh, c := range seen {
		if c != 1 {
			t.Errorf("MH %v delivered %d times, want exactly once", mh, c)
		}
	}
	if shedEvents == 0 {
		t.Error("no sheds recorded; queue limit never engaged")
	}
	retransmits, outstanding := w.ARQStats()
	if retransmits == 0 {
		t.Error("no ARQ retransmits; shed frames should have been retried")
	}
	if outstanding != 0 {
		t.Errorf("%d frames still outstanding after Run", outstanding)
	}
}

func TestWirelessQueueLimitShedsDownlink(t *testing.T) {
	k := sim.NewKernel(1)
	var shedEvents int
	w := NewWireless(k, WirelessConfig{
		Latency:    Constant(20 * time.Millisecond),
		Reachable:  func(ids.MSS, ids.MH) bool { return true },
		QueueLimit: 3,
	}, countShed(&shedEvents))
	var got []record
	w.RegisterMH(1, collector(&got))

	for i := 0; i < 8; i++ {
		w.SendDownlink(1, 1, msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: uint32(i)}})
	}
	k.Run()

	if len(got) != 3 {
		t.Errorf("delivered %d frames, want 3 (queue limit)", len(got))
	}
	if shedEvents != 5 || w.Shed() != 5 {
		t.Errorf("shed events=%d Shed()=%d, want 5/5", shedEvents, w.Shed())
	}
}

func TestWirelessQueueLimitExemptsControlUplink(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWireless(k, WirelessConfig{
		Latency:    Constant(20 * time.Millisecond),
		Reachable:  func(ids.MSS, ids.MH) bool { return true },
		QueueLimit: 1,
	}, nil)
	var got []record
	w.RegisterMSS(1, collector(&got))

	// Control frames (greet) ride the beacon exchange: never shed and
	// not counted against the data queue. Data frames past the limit
	// are shed: the first request takes the single slot, the rest shed.
	for i := 0; i < 3; i++ {
		w.SendUplink(1, 1, msg.Greet{MH: 1, OldMSS: 1})
	}
	for i := 0; i < 3; i++ {
		w.SendUplink(1, 1, msg.Request{Req: ids.RequestID{Origin: 1, Seq: uint32(i)}, Server: 1})
	}
	k.Run()

	var greets, requests int
	for _, r := range got {
		switch r.m.(type) {
		case msg.Greet:
			greets++
		case msg.Request:
			requests++
		}
	}
	if greets != 3 {
		t.Errorf("delivered %d greets, want all 3 (control exempt from shedding)", greets)
	}
	if requests != 1 {
		t.Errorf("delivered %d requests, want 1 (greets do not occupy the data queue)", requests)
	}
	if w.Shed() != 2 {
		t.Errorf("Shed() = %d, want 2", w.Shed())
	}
}

// TestWirelessQueueLimitExemptsControlDownlink pins the downlink side of
// the control-plane exemption: a reg-confirm occupying nothing means a
// result offered immediately after it still takes the single queue slot
// and is delivered, not shed.
func TestWirelessQueueLimitExemptsControlDownlink(t *testing.T) {
	k := sim.NewKernel(1)
	w := NewWireless(k, WirelessConfig{
		Latency:    Constant(20 * time.Millisecond),
		Reachable:  func(ids.MSS, ids.MH) bool { return true },
		QueueLimit: 1,
	}, nil)
	var got []record
	w.RegisterMH(1, collector(&got))

	w.SendDownlink(1, 1, msg.RegConfirm{MH: 1})
	w.SendDownlink(1, 1, msg.Admit{Req: ids.RequestID{Origin: 1, Seq: 1}})
	w.SendDownlink(1, 1, msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: 1}})
	k.Run()

	if len(got) != 3 {
		t.Errorf("delivered %d frames, want all 3 (control must not pin the data queue)", len(got))
	}
	if w.Shed() != 0 {
		t.Errorf("Shed() = %d, want 0", w.Shed())
	}
}
