package netsim

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/wtp"
)

func TestWirelessWTPDeliversInOrderUnderLoss(t *testing.T) {
	k := sim.NewKernel(7)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{
		Latency:   Constant(5 * time.Millisecond),
		LossProb:  0.2,
		Reachable: wd.reachable,
		WTP:       wtp.Config{Enabled: true, InitialRTO: 40 * time.Millisecond},
	}, nil)
	var got []msg.Message
	w.RegisterMH(7, HandlerFunc(func(_ ids.NodeID, m msg.Message) { got = append(got, m) }))
	const n = 200
	for i := 0; i < n; i++ {
		seq := uint32(i + 1)
		// Spread over time so coalescing closes many frames, each a
		// separate loss trial.
		k.After(time.Duration(i)*time.Millisecond, func() {
			w.SendDownlink(1, 7, msg.ResultDeliver{Req: ids.RequestID{Origin: 7, Seq: seq}})
		})
	}
	k.Run()
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d (windowed link must repair 20%% loss)", len(got), n)
	}
	for i, m := range got {
		if rd := m.(msg.ResultDeliver); rd.Req.Seq != uint32(i+1) {
			t.Fatalf("got[%d] seq %d, want %d (out of order)", i, rd.Req.Seq, i+1)
		}
	}
	retransmits, _, _, frames, msgs, _ := w.WTPStats()
	if retransmits == 0 {
		t.Error("expected retransmissions at 20% loss")
	}
	if msgs != n {
		t.Errorf("MsgsFramed = %d, want %d", msgs, n)
	}
	if frames >= n {
		t.Errorf("FramesSent = %d: no coalescing happened over %d messages", frames, n)
	}
}

func TestWirelessWTPControlBypassesWindow(t *testing.T) {
	k := sim.NewKernel(1)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 1}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{
		Latency:   Constant(time.Millisecond),
		Reachable: wd.reachable,
		WTP:       wtp.Config{Enabled: true, CoalesceDelay: 50 * time.Millisecond},
	}, nil)
	var got []msg.Message
	w.RegisterMH(7, HandlerFunc(func(_ ids.NodeID, m msg.Message) { got = append(got, m) }))
	w.SendDownlink(1, 7, msg.RegConfirm{MH: 7})
	k.RunUntil(sim.Time(10 * time.Millisecond))
	// The control message must arrive on the beacon path immediately,
	// not sit in a 50ms coalescing buffer.
	if len(got) != 1 {
		t.Fatalf("delivered %d, want the reg-confirm on the beacon path", len(got))
	}
	if _, _, _, frames, _, _ := w.WTPStats(); frames != 0 {
		t.Errorf("control traffic entered the windowed transport: %d frames", frames)
	}
}

func TestWirelessWTPStopsAtUnreachableMH(t *testing.T) {
	k := sim.NewKernel(3)
	wd := &world{loc: map[ids.MH]ids.MSS{7: 2}, active: map[ids.MH]bool{7: true}}
	w := NewWireless(k, WirelessConfig{
		Latency:   Constant(time.Millisecond),
		Reachable: wd.reachable,
		WTP:       wtp.Config{Enabled: true, InitialRTO: 5 * time.Millisecond, MaxRetries: 3, CoalesceDelay: -1},
	}, nil)
	var got []msg.Message
	w.RegisterMH(7, HandlerFunc(func(_ ids.NodeID, m msg.Message) { got = append(got, m) }))
	// MH 7 lives in cell 2; station 1's link can never reach it.
	w.SendDownlink(1, 7, msg.ResultDeliver{Req: ids.RequestID{Origin: 7, Seq: 1}})
	k.Run()
	if len(got) != 0 {
		t.Fatal("delivered across an unreachable link")
	}
	if _, _, resets, _, _, _ := w.WTPStats(); resets != 1 {
		t.Errorf("resets = %d, want 1 (link must give up after MaxRetries)", resets)
	}
	// Once the MH shows up in the right cell, the post-reset epoch works.
	wd.loc[7] = 1
	w.SendDownlink(1, 7, msg.ResultDeliver{Req: ids.RequestID{Origin: 7, Seq: 2}})
	k.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d after reset, want 1", len(got))
	}
}
