// Package trace records message events from the network substrates and
// checks recorded traces against expected protocol scenarios. The
// Figure 3 and Figure 4 reproduction tests use it to assert that the
// implementation exchanges exactly the message sequence the paper draws.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Entry is one recorded message event.
type Entry struct {
	At    sim.Time
	Layer netsim.Layer
	Kind  netsim.EventKind
	From  ids.NodeID
	To    ids.NodeID
	Msg   msg.Message
}

// String renders the entry as one trace line.
func (e Entry) String() string {
	return fmt.Sprintf("%-12s %-8s %-9s %v -> %v: %v",
		e.At, e.Layer, e.Kind, e.From, e.To, e.Msg)
}

// Recorder collects entries; it implements the netsim.Observer contract
// via its Observe method.
type Recorder struct {
	entries []Entry
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Observe appends one event; pass it as the Observer to the substrates.
func (r *Recorder) Observe(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
	r.entries = append(r.entries, Entry{At: at, Layer: layer, Kind: kind, From: from, To: to, Msg: m})
}

// Entries returns all recorded events in order.
func (r *Recorder) Entries() []Entry { return r.entries }

// Deliveries returns only successful deliveries, in order.
func (r *Recorder) Deliveries() []Entry {
	var out []Entry
	for _, e := range r.entries {
		if e.Kind == netsim.EventDelivered {
			out = append(out, e)
		}
	}
	return out
}

// Drops returns only dropped messages, in order.
func (r *Recorder) Drops() []Entry {
	var out []Entry
	for _, e := range r.entries {
		if e.Kind.IsDrop() {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all recorded entries.
func (r *Recorder) Reset() { r.entries = nil }

// String renders the whole trace, one line per event.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, e := range r.entries {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

// CountDelivered returns how many messages of the given kind were
// delivered.
func (r *Recorder) CountDelivered(k msg.Kind) int {
	n := 0
	for _, e := range r.entries {
		if e.Kind == netsim.EventDelivered && e.Msg.Kind() == k {
			n++
		}
	}
	return n
}

// Step is one expected delivery in a scenario. Zero-valued fields are
// wildcards: a zero From/To matches any endpoint and a nil Check skips
// payload inspection.
type Step struct {
	// Kind of the delivered message.
	Kind msg.Kind
	// From and To constrain the endpoints when valid.
	From, To ids.NodeID
	// Check, when non-nil, inspects the message payload.
	Check func(m msg.Message) bool
	// Note describes the step in failure messages.
	Note string
}

func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", s.Kind)
	if s.From.Valid() || s.To.Valid() {
		fmt.Fprintf(&b, " %v->%v", s.From, s.To)
	}
	if s.Note != "" {
		fmt.Fprintf(&b, " (%s)", s.Note)
	}
	return b.String()
}

// matches reports whether entry e satisfies step s.
func (s Step) matches(e Entry) bool {
	if e.Msg.Kind() != s.Kind {
		return false
	}
	if s.From.Valid() && e.From != s.From {
		return false
	}
	if s.To.Valid() && e.To != s.To {
		return false
	}
	if s.Check != nil && !s.Check(e.Msg) {
		return false
	}
	return true
}

// ExpectSequence verifies that the given steps appear among the
// recorder's deliveries in order (as a subsequence: unrelated deliveries
// may be interleaved). It returns a descriptive error naming the first
// unmatched step.
func (r *Recorder) ExpectSequence(steps []Step) error {
	deliveries := r.Deliveries()
	di := 0
	for si, s := range steps {
		found := false
		for di < len(deliveries) {
			e := deliveries[di]
			di++
			if s.matches(e) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("trace: step %d (%v) not found after position %d;\nfull trace:\n%s",
				si, s, di, r.String())
		}
	}
	return nil
}

// ExpectExactly verifies that the recorder's deliveries, filtered to the
// kinds mentioned in steps, match the steps one-for-one in order. It is
// stricter than ExpectSequence: no extra delivery of a mentioned kind
// may occur.
func (r *Recorder) ExpectExactly(steps []Step) error {
	mentioned := make(map[msg.Kind]bool, len(steps))
	for _, s := range steps {
		mentioned[s.Kind] = true
	}
	var relevant []Entry
	for _, e := range r.Deliveries() {
		if mentioned[e.Msg.Kind()] {
			relevant = append(relevant, e)
		}
	}
	if len(relevant) != len(steps) {
		return fmt.Errorf("trace: %d relevant deliveries, want %d;\nrelevant:\n%s\nfull trace:\n%s",
			len(relevant), len(steps), format(relevant), r.String())
	}
	for i, s := range steps {
		if !s.matches(relevant[i]) {
			return fmt.Errorf("trace: delivery %d = %v does not match step %v;\nrelevant:\n%s",
				i, relevant[i], s, format(relevant))
		}
	}
	return nil
}

func format(entries []Entry) string {
	var b strings.Builder
	for i, e := range entries {
		fmt.Fprintf(&b, "%3d: %s\n", i, e.String())
	}
	return b.String()
}
