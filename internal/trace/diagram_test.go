package trace

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func delivered(at sim.Time, from, to ids.NodeID, m msg.Message) Entry {
	return Entry{At: at, Layer: netsim.LayerWired, Kind: netsim.EventDelivered, From: from, To: to, Msg: m}
}

func TestDiagramBasicArrows(t *testing.T) {
	entries := []Entry{
		delivered(0, ids.MH(1).Node(), ids.MSS(1).Node(), msg.Join{MH: 1}),
		delivered(sim.Time(5e6), ids.MSS(1).Node(), ids.Server(1).Node(),
			msg.ServerRequest{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1}}),
		delivered(sim.Time(9e6), ids.Server(1).Node(), ids.MSS(1).Node(),
			msg.ServerResult{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1}}),
	}
	out := Diagram(entries, DiagramOptions{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("diagram has %d lines, want header + 3 arrows:\n%s", len(lines), out)
	}
	header := lines[0]
	for _, lane := range []string{"mh1", "mss1", "srv1"} {
		if !strings.Contains(header, lane) {
			t.Errorf("header %q missing lane %s", header, lane)
		}
	}
	// Lanes must be ordered MH, MSS, server.
	if !(strings.Index(header, "mh1") < strings.Index(header, "mss1") &&
		strings.Index(header, "mss1") < strings.Index(header, "srv1")) {
		t.Errorf("lane order wrong: %q", header)
	}
	if !strings.Contains(lines[1], "join") || !strings.Contains(lines[1], ">") {
		t.Errorf("first arrow %q missing join label or head", lines[1])
	}
	// The server's reply travels leftward.
	if !strings.Contains(lines[3], "<") {
		t.Errorf("reply arrow %q has no leftward head", lines[3])
	}
}

func TestDiagramDropRendering(t *testing.T) {
	entries := []Entry{
		{
			At: 0, Layer: netsim.LayerWireless, Kind: netsim.EventDropped,
			From: ids.MSS(1).Node(), To: ids.MH(1).Node(),
			Msg: msg.ResultDeliver{Req: ids.RequestID{Origin: 1, Seq: 1}},
		},
	}
	if out := Diagram(entries, DiagramOptions{}); strings.Count(out, "\n") != 1 {
		t.Errorf("drop rendered without ShowDrops:\n%s", out)
	}
	out := Diagram(entries, DiagramOptions{ShowDrops: true})
	if !strings.Contains(out, "x") {
		t.Errorf("drop has no 'x' head:\n%s", out)
	}
}

func TestDiagramEmptyAndNarrow(t *testing.T) {
	if out := Diagram(nil, DiagramOptions{}); !strings.Contains(out, "empty") {
		t.Errorf("empty trace rendered %q", out)
	}
	// A sub-minimum lane width must be clamped, not panic.
	entries := []Entry{
		delivered(0, ids.MH(1).Node(), ids.MSS(1).Node(),
			msg.UpdateCurrentLoc{Proxy: ids.ProxyID{Host: 1, Seq: 1}, MH: 1, NewLoc: 2}),
	}
	out := Diagram(entries, DiagramOptions{LaneWidth: 3})
	if !strings.Contains(out, ">") {
		t.Errorf("narrow diagram lost its arrow:\n%s", out)
	}
}

// TestDiagramLongLabelTruncated keeps labels inside their arrow span.
func TestDiagramLongLabelTruncated(t *testing.T) {
	entries := []Entry{
		delivered(0, ids.MSS(1).Node(), ids.MSS(2).Node(),
			msg.UpdateCurrentLoc{Proxy: ids.ProxyID{Host: 1, Seq: 1}, MH: 1, NewLoc: 2}),
	}
	out := Diagram(entries, DiagramOptions{LaneWidth: 8})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	arrow := lines[1]
	if len(arrow) > 11+2*8 {
		t.Errorf("arrow row wider than the lanes: %q", arrow)
	}
}

// TestRecorderDiagram checks the recorder convenience method agrees
// with the package function.
func TestRecorderDiagram(t *testing.T) {
	r := New()
	r.Observe(0, netsim.LayerWired, netsim.EventDelivered,
		ids.MSS(1).Node(), ids.Server(1).Node(), msg.ServerAck{Req: ids.RequestID{Origin: 1, Seq: 1}})
	if r.Diagram(DiagramOptions{}) != Diagram(r.Entries(), DiagramOptions{}) {
		t.Error("Recorder.Diagram diverges from Diagram(Entries())")
	}
}
