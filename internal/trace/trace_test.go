package trace

import (
	"strings"
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func record(r *Recorder, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
	r.Observe(0, netsim.LayerWired, kind, from, to, m)
}

func TestDeliveriesAndDrops(t *testing.T) {
	r := New()
	record(r, netsim.EventSent, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})
	record(r, netsim.EventDropped, ids.MSS(1).Node(), ids.MH(1).Node(), msg.ResultDeliver{})
	if got := len(r.Deliveries()); got != 1 {
		t.Errorf("Deliveries = %d, want 1", got)
	}
	if got := len(r.Drops()); got != 1 {
		t.Errorf("Drops = %d, want 1", got)
	}
	if got := len(r.Entries()); got != 3 {
		t.Errorf("Entries = %d, want 3", got)
	}
	r.Reset()
	if len(r.Entries()) != 0 {
		t.Error("Reset did not clear entries")
	}
}

func TestCountDelivered(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 1})
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 2})
	record(r, netsim.EventSent, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 3})
	if got := r.CountDelivered(msg.KindJoin); got != 2 {
		t.Errorf("CountDelivered = %d, want 2", got)
	}
}

func TestExpectSequenceSubsequence(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 1, NewMSS: 2})
	record(r, netsim.EventDelivered, ids.MSS(3).Node(), ids.MSS(1).Node(), msg.Join{MH: 9}) // noise
	record(r, netsim.EventDelivered, ids.MSS(2).Node(), ids.MSS(1).Node(), msg.DeregAck{MH: 1})

	err := r.ExpectSequence([]Step{
		{Kind: msg.KindDereg, From: ids.MSS(1).Node()},
		{Kind: msg.KindDeregAck, To: ids.MSS(1).Node()},
	})
	if err != nil {
		t.Errorf("ExpectSequence failed: %v", err)
	}
}

func TestExpectSequenceOrderViolation(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(2).Node(), ids.MSS(1).Node(), msg.DeregAck{MH: 1})
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 1, NewMSS: 2})
	err := r.ExpectSequence([]Step{
		{Kind: msg.KindDereg},
		{Kind: msg.KindDeregAck},
	})
	if err == nil {
		t.Error("ExpectSequence accepted out-of-order trace")
	}
	if !strings.Contains(err.Error(), "step 1") {
		t.Errorf("error should name the failing step: %v", err)
	}
}

func TestExpectSequenceCheckFunc(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MH(1).Node(), msg.ResultDeliver{DelPref: false})
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MH(1).Node(), msg.ResultDeliver{DelPref: true})
	err := r.ExpectSequence([]Step{{
		Kind:  msg.KindResultDeliver,
		Check: func(m msg.Message) bool { return m.(msg.ResultDeliver).DelPref },
		Note:  "final result carries del-pref",
	}})
	if err != nil {
		t.Errorf("Check-constrained step not matched: %v", err)
	}
}

func TestExpectExactlyRejectsExtras(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 1})
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(3).Node(), msg.Dereg{MH: 1}) // extra
	err := r.ExpectExactly([]Step{{Kind: msg.KindDereg}})
	if err == nil {
		t.Error("ExpectExactly accepted an extra delivery")
	}
}

func TestExpectExactlyIgnoresUnmentionedKinds(t *testing.T) {
	r := New()
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Join{MH: 5}) // unmentioned
	record(r, netsim.EventDelivered, ids.MSS(1).Node(), ids.MSS(2).Node(), msg.Dereg{MH: 1})
	err := r.ExpectExactly([]Step{{Kind: msg.KindDereg}})
	if err != nil {
		t.Errorf("ExpectExactly should ignore unmentioned kinds: %v", err)
	}
}

func TestEntryString(t *testing.T) {
	e := Entry{
		At:    sim.Time(0),
		Layer: netsim.LayerWired,
		Kind:  netsim.EventDelivered,
		From:  ids.MSS(1).Node(),
		To:    ids.MSS(2).Node(),
		Msg:   msg.Join{MH: 1},
	}
	s := e.String()
	for _, want := range []string{"wired", "delivered", "mss1", "mss2", "join"} {
		if !strings.Contains(s, want) {
			t.Errorf("Entry.String() = %q missing %q", s, want)
		}
	}
}
