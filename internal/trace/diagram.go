package trace

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// DiagramOptions tunes the space-time rendering.
type DiagramOptions struct {
	// LaneWidth is the number of columns per node lane (minimum 8;
	// default 14).
	LaneWidth int
	// ShowDrops includes dropped frames, drawn with an 'x' head where
	// the frame died.
	ShowDrops bool
}

func (o *DiagramOptions) fill() {
	if o.LaneWidth == 0 {
		o.LaneWidth = 14
	}
	if o.LaneWidth < 8 {
		o.LaneWidth = 8
	}
}

// Diagram renders delivered (and optionally dropped) messages as an
// ASCII space-time diagram in the style of the paper's Figures 3 and 4:
// one vertical lane per node, time flowing downward, one arrow per
// message labeled with its kind. Example:
//
//	time       mh1        mss1       mss2
//	10ms        |--request->|          |
//	15ms        |           |--dereg-->|
//
// Arrows are drawn at delivery time (the instant the paper's figures
// place the receiving end of each arrow).
func Diagram(entries []Entry, opts DiagramOptions) string {
	opts.fill()
	lanes := diagramLanes(entries)
	if len(lanes) == 0 {
		return "(empty trace)\n"
	}
	col := make(map[ids.NodeID]int, len(lanes))
	for i, n := range lanes {
		col[n] = i
	}
	w := opts.LaneWidth
	center := func(lane int) int { return lane*w + w/2 }
	width := len(lanes) * w

	var b strings.Builder

	// Header: node names centered over their lanes.
	b.WriteString(pad("time", 11))
	header := make([]byte, width)
	for i := range header {
		header[i] = ' '
	}
	for i, n := range lanes {
		name := n.String()
		if len(name) > w-2 {
			name = name[:w-2]
		}
		start := center(i) - len(name)/2
		copy(header[start:], name)
	}
	b.Write(bytes.TrimRight(header, " "))
	b.WriteByte('\n')

	for _, e := range entries {
		var head byte
		switch {
		case e.Kind == netsim.EventDelivered:
			head = '>'
		case e.Kind.IsDrop() && opts.ShowDrops:
			head = 'x'
		default:
			continue
		}
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for i := range lanes {
			row[center(i)] = '|'
		}
		c1, ok1 := col[e.From]
		c2, ok2 := col[e.To]
		if !ok1 || !ok2 || c1 == c2 {
			continue
		}
		lo, hi := center(c1), center(c2)
		rightward := lo < hi
		if !rightward {
			lo, hi = hi, lo
		}
		for i := lo + 1; i < hi; i++ {
			row[i] = '-'
		}
		if rightward {
			row[hi-1] = head
		} else {
			if head == '>' {
				head = '<'
			}
			row[lo+1] = head
		}
		label := e.Msg.Kind().String()
		span := hi - lo - 3 // keep the head and one dash visible
		if span > 0 {
			if len(label) > span {
				label = label[:span]
			}
			start := lo + 1 + (hi-lo-1-len(label))/2
			copy(row[start:], label)
		}
		b.WriteString(pad(fmt.Sprint(e.At), 11))
		b.Write(bytes.TrimRight(row, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Diagram renders the recorder's trace; see the package-level Diagram.
func (r *Recorder) Diagram(opts DiagramOptions) string {
	return Diagram(r.entries, opts)
}

// diagramLanes orders the participating nodes: mobile hosts first, then
// stations, then servers, each by number — matching the left-to-right
// layout of the paper's figures.
func diagramLanes(entries []Entry) []ids.NodeID {
	seen := make(map[ids.NodeID]bool)
	var lanes []ids.NodeID
	add := func(n ids.NodeID) {
		if n.Valid() && !seen[n] {
			seen[n] = true
			lanes = append(lanes, n)
		}
	}
	for _, e := range entries {
		add(e.From)
		add(e.To)
	}
	rank := func(n ids.NodeID) int {
		switch n.Kind {
		case ids.KindMH:
			return 0
		case ids.KindMSS:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		if rank(lanes[i]) != rank(lanes[j]) {
			return rank(lanes[i]) < rank(lanes[j])
		}
		return lanes[i].Num < lanes[j].Num
	})
	return lanes
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s[:n-1] + " "
	}
	return s + strings.Repeat(" ", n-len(s))
}
