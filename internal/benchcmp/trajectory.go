package benchcmp

import (
	"fmt"
	"strings"
)

// FormatTrajectory renders the per-experiment headline-metric history
// across an ordered snapshot sequence (oldest first) as a plain-text
// table: one row per experiment, one column per snapshot. labels names
// the columns (typically the BENCH_<stamp>.json file stamps) and must
// be the same length as snaps.
//
// Rows appear in first-appearance order across the sequence, so the
// table reads as the repo's growth history: experiments added later
// show "-" in the columns before they existed. A metric whose name
// changed between snapshots keeps one row per name — a rename is a
// visible discontinuity, not a silent splice.
func FormatTrajectory(labels []string, snaps []Snapshot) (string, error) {
	if len(labels) != len(snaps) {
		return "", fmt.Errorf("benchcmp: %d labels for %d snapshots", len(labels), len(snaps))
	}
	if len(snaps) == 0 {
		return "", fmt.Errorf("benchcmp: no snapshots")
	}
	type rowKey struct{ name, metric string }
	var order []rowKey
	seen := map[rowKey]bool{}
	cells := map[rowKey][]string{}
	for si, s := range snaps {
		for _, e := range s.Entries {
			k := rowKey{e.Name, e.MetricName}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
				cells[k] = make([]string, len(snaps))
			}
			cells[k][si] = fmt.Sprintf("%.6g", e.Metric)
		}
	}

	header := append([]string{"exp", "metric"}, labels...)
	rows := [][]string{header}
	for _, k := range order {
		row := []string{k.name, k.metric}
		for _, c := range cells[k] {
			if c == "" {
				c = "-"
			}
			row = append(row, c)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
