// Package benchcmp defines the benchmark snapshot format written by
// `rdpbench -json` and compares two snapshots against regression
// thresholds. It is the library behind `make bench-compare`, which
// gates changes on the committed bench/baseline.json.
//
// The three measured quantities regress differently and are gated
// differently:
//
//   - allocs/op is deterministic for the single-goroutine simulator (up
//     to sync.Pool clearing at GC boundaries), so it is gated strictly:
//     a modest ratio above baseline fails.
//   - ns/op depends on the machine and on CI noise, so by default it is
//     reported but not gated. Set NsRatio to gate it locally.
//   - the headline metric (delivery ratio, retransmission count, …) is
//     a determinism check, not a performance one: the simulation is
//     seeded, so any drift means behavior changed. It is compared
//     near-exactly — except for metrics registered as lower-is-better
//     (Options.Directions), which are gated regress-only: latency may
//     improve across changes without invalidating the baseline, and
//     fails only when it grows past RegressRatio.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Entry is one experiment's measurement within a snapshot.
type Entry struct {
	Name       string  `json:"name"`
	NsOp       float64 `json:"ns_op"`
	AllocsOp   float64 `json:"allocs_op"`
	BytesOp    float64 `json:"bytes_op,omitempty"`
	MetricName string  `json:"metric_name,omitempty"`
	Metric     float64 `json:"metric"`
	// Aux carries informational per-experiment measurements (transport
	// RTT/RTO/cwnd profiles, retransmission counts, …). Compare never
	// gates on them: they exist so the snapshot trajectory records more
	// than the single gated headline.
	Aux map[string]float64 `json:"aux,omitempty"`
}

// Snapshot is one full rdpbench -json run.
type Snapshot struct {
	Stamp   string  `json:"stamp,omitempty"`
	Go      string  `json:"go,omitempty"`
	Scale   string  `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	Entries []Entry `json:"entries"`
}

// Load reads a snapshot file.
func Load(path string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("benchcmp: %s: %w", path, err)
	}
	return s, nil
}

// Save writes a snapshot file (indented, trailing newline).
func Save(path string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Options sets the regression thresholds.
type Options struct {
	// AllocRatio fails an entry whose allocs/op exceeds baseline by this
	// factor. Zero disables the gate; DefaultOptions sets 1.25.
	AllocRatio float64
	// NsRatio fails an entry whose ns/op exceeds baseline by this
	// factor. Zero (the default) reports times without gating them.
	NsRatio float64
	// MetricTol is the relative tolerance for the headline metric.
	// DefaultOptions sets 1e-9 — effectively exact for seeded runs.
	MetricTol float64
	// Directions maps a metric name (Entry.MetricName) to its gating
	// direction. Unlisted metrics use DirExact. DefaultOptions registers
	// p99_latency_ms as DirLowerBetter.
	Directions map[string]Direction
	// RegressRatio fails a DirLowerBetter metric whose value exceeds
	// baseline by this factor, and a DirHigherBetter metric that falls
	// below baseline divided by it. Zero disables the gate;
	// DefaultOptions sets 1.10.
	RegressRatio float64
}

// Direction selects how an entry's headline metric is gated.
type Direction int

const (
	// DirExact treats any drift beyond MetricTol as failure — the
	// default, right for metrics that are determinism checks.
	DirExact Direction = iota
	// DirLowerBetter gates only regressions: the metric may shrink
	// freely (an improvement), and fails when it exceeds baseline by
	// RegressRatio. Right for latency-like measurements.
	DirLowerBetter
	// DirHigherBetter is the mirror image: the metric may grow freely,
	// and fails when it falls below baseline divided by RegressRatio.
	// Right for reduction ratios and throughput-like measurements.
	DirHigherBetter
)

// DefaultOptions returns the thresholds used by make bench-compare.
func DefaultOptions() Options {
	return Options{
		AllocRatio: 1.25,
		NsRatio:    0,
		MetricTol:  1e-9,
		Directions: map[string]Direction{
			"p99_latency_ms":        DirLowerBetter,
			"state_reduction_ratio": DirHigherBetter,
		},
		RegressRatio: 1.10,
	}
}

// Finding is one per-entry, per-quantity comparison outcome.
type Finding struct {
	Name     string  // experiment name
	Field    string  // "allocs/op", "ns/op", "metric", "missing"
	Old, New float64 // baseline and current values
	Limit    float64 // threshold that applied (ratio or tolerance)
	Bad      bool    // true when this finding fails the gate
}

func (f Finding) String() string {
	switch f.Field {
	case "missing":
		return fmt.Sprintf("%-8s MISSING from current snapshot", f.Name)
	case "metric":
		status := "ok"
		if f.Bad {
			status = "DRIFT"
		}
		return fmt.Sprintf("%-8s %-9s %14.6g -> %-14.6g %s", f.Name, f.Field, f.Old, f.New, status)
	default:
		ratio := math.Inf(1)
		if f.Old != 0 {
			ratio = f.New / f.Old
		} else if f.New == 0 {
			ratio = 1
		}
		status := fmt.Sprintf("%.3fx", ratio)
		if f.Bad {
			status += " REGRESSED"
		}
		return fmt.Sprintf("%-8s %-9s %14.6g -> %-14.6g %s", f.Name, f.Field, f.Old, f.New, status)
	}
}

// Compare checks cur against base. It returns every per-entry finding
// (gated or informational) and whether any finding failed. Entries only
// present in cur are ignored — new experiments are not regressions;
// entries missing from cur fail.
func Compare(base, cur Snapshot, o Options) (findings []Finding, failed bool) {
	curBy := make(map[string]Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		curBy[e.Name] = e
	}
	baseEntries := append([]Entry(nil), base.Entries...)
	sort.Slice(baseEntries, func(i, j int) bool { return baseEntries[i].Name < baseEntries[j].Name })
	for _, b := range baseEntries {
		c, ok := curBy[b.Name]
		if !ok {
			findings = append(findings, Finding{Name: b.Name, Field: "missing", Bad: true})
			failed = true
			continue
		}
		af := Finding{Name: b.Name, Field: "allocs/op", Old: b.AllocsOp, New: c.AllocsOp, Limit: o.AllocRatio}
		if o.AllocRatio > 0 && c.AllocsOp > b.AllocsOp*o.AllocRatio {
			af.Bad, failed = true, true
		}
		findings = append(findings, af)
		nf := Finding{Name: b.Name, Field: "ns/op", Old: b.NsOp, New: c.NsOp, Limit: o.NsRatio}
		if o.NsRatio > 0 && c.NsOp > b.NsOp*o.NsRatio {
			nf.Bad, failed = true, true
		}
		findings = append(findings, nf)
		mf := Finding{Name: b.Name, Field: "metric", Old: b.Metric, New: c.Metric, Limit: o.MetricTol}
		switch o.Directions[b.MetricName] {
		case DirLowerBetter:
			mf.Limit = o.RegressRatio
			// A negative current value is a guard sentinel (-1), never a
			// fast run; it must not slip under a lower-is-better gate.
			if (o.RegressRatio > 0 && c.Metric > b.Metric*o.RegressRatio) ||
				(c.Metric < 0 && b.Metric >= 0) {
				mf.Bad, failed = true, true
			}
		case DirHigherBetter:
			mf.Limit = o.RegressRatio
			// The -1 guard sentinel is caught by the shrink test itself
			// (it is below any positive baseline's floor), but keep the
			// explicit check for a zero baseline.
			if (o.RegressRatio > 0 && c.Metric*o.RegressRatio < b.Metric) ||
				(c.Metric < 0 && b.Metric >= 0) {
				mf.Bad, failed = true, true
			}
		default:
			if o.MetricTol > 0 && !withinTol(b.Metric, c.Metric, o.MetricTol) {
				mf.Bad, failed = true, true
			}
		}
		findings = append(findings, mf)
	}
	return findings, failed
}

// withinTol reports |a-b| <= tol*max(|a|,|b|), with exact equality
// always passing (covers a == b == 0).
func withinTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
