package benchcmp

import (
	"strings"
	"testing"
)

// TestFormatTrajectory renders a three-snapshot history where one
// experiment appears mid-sequence, and checks row order, the "-"
// placeholder and the metric values.
func TestFormatTrajectory(t *testing.T) {
	snaps := []Snapshot{
		{Entries: []Entry{
			{Name: "e1", MetricName: "min_delivery_ratio", Metric: 1},
		}},
		{Entries: []Entry{
			{Name: "e1", MetricName: "min_delivery_ratio", Metric: 1},
			{Name: "e16", MetricName: "state_reduction_ratio", Metric: 11.5},
		}},
		{Entries: []Entry{
			{Name: "e1", MetricName: "min_delivery_ratio", Metric: 0.999},
			{Name: "e16", MetricName: "state_reduction_ratio", Metric: 14.25},
		}},
	}
	out, err := FormatTrajectory([]string{"a", "b", "c"}, snaps)
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "exp") || !strings.Contains(lines[0], "a") {
		t.Errorf("bad header: %q", lines[0])
	}
	e1 := strings.Fields(lines[1])
	if e1[0] != "e1" || e1[2] != "1" || e1[4] != "0.999" {
		t.Errorf("bad e1 row: %q", lines[1])
	}
	e16 := strings.Fields(lines[2])
	if e16[0] != "e16" || e16[2] != "-" || e16[3] != "11.5" || e16[4] != "14.25" {
		t.Errorf("bad e16 row: %q", lines[2])
	}
}

// TestFormatTrajectoryRejects pins the error cases: empty sequence and
// mismatched label count.
func TestFormatTrajectoryRejects(t *testing.T) {
	if _, err := FormatTrajectory(nil, nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := FormatTrajectory([]string{"a"}, []Snapshot{{}, {}}); err == nil {
		t.Fatal("label/snapshot length mismatch accepted")
	}
}
