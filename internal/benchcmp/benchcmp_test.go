package benchcmp

import (
	"path/filepath"
	"testing"
)

func baseSnap() Snapshot {
	return Snapshot{
		Stamp: "base",
		Entries: []Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: 1000, MetricName: "ratio", Metric: 1.0},
			{Name: "e2", NsOp: 2e6, AllocsOp: 2000, MetricName: "dups", Metric: 42},
		},
	}
}

// TestIdenticalPasses: a snapshot compared against itself never fails.
func TestIdenticalPasses(t *testing.T) {
	s := baseSnap()
	findings, failed := Compare(s, s, DefaultOptions())
	if failed {
		t.Fatalf("identical snapshots failed: %+v", findings)
	}
	if len(findings) != 6 { // 3 fields × 2 entries
		t.Errorf("got %d findings, want 6", len(findings))
	}
}

// TestNoiseWithinThresholdPasses: allocs and time may drift a little
// (pool clearing at GC boundaries, machine noise) without failing.
func TestNoiseWithinThresholdPasses(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].AllocsOp = 1100 // +10% < 1.25x
	cur.Entries[0].NsOp = 5e6      // ns not gated by default
	if findings, failed := Compare(baseSnap(), cur, DefaultOptions()); failed {
		t.Fatalf("within-threshold drift failed: %+v", findings)
	}
}

// TestAllocRegressionFails: the synthetic regression the harness must
// catch — allocs/op jumping past the threshold.
func TestAllocRegressionFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries[1].AllocsOp = 2000 * 1.5
	findings, failed := Compare(baseSnap(), cur, DefaultOptions())
	if !failed {
		t.Fatal("1.5x allocs/op regression not caught")
	}
	var hit bool
	for _, f := range findings {
		if f.Name == "e2" && f.Field == "allocs/op" && f.Bad {
			hit = true
		}
		if f.Name == "e1" && f.Bad {
			t.Errorf("unregressed entry flagged: %+v", f)
		}
	}
	if !hit {
		t.Errorf("regressed entry not flagged: %+v", findings)
	}
}

// TestMetricDriftFails: the headline metric is a determinism check, so
// even a small drift fails.
func TestMetricDriftFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].Metric = 0.9999
	if _, failed := Compare(baseSnap(), cur, DefaultOptions()); !failed {
		t.Fatal("headline metric drift not caught")
	}
}

// TestMissingEntryFails: an experiment disappearing from the snapshot
// is a regression, while a new one is not.
func TestMissingEntryFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries = cur.Entries[:1]
	if _, failed := Compare(baseSnap(), cur, DefaultOptions()); !failed {
		t.Fatal("missing entry not caught")
	}
	cur = baseSnap()
	cur.Entries = append(cur.Entries, Entry{Name: "e13", AllocsOp: 1, Metric: 1})
	if findings, failed := Compare(baseSnap(), cur, DefaultOptions()); failed {
		t.Fatalf("extra entry treated as regression: %+v", findings)
	}
}

// TestNsGatingOptIn: setting NsRatio turns time into a gate.
func TestNsGatingOptIn(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].NsOp = 10e6
	opts := DefaultOptions()
	opts.NsRatio = 2.0
	if _, failed := Compare(baseSnap(), cur, opts); !failed {
		t.Fatal("10x ns/op with NsRatio=2 not caught")
	}
}

// TestSaveLoadRoundTrip exercises the file format.
func TestSaveLoadRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "snap.json")
	want := baseSnap()
	if err := Save(p, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Entries) != len(want.Entries) || got.Stamp != want.Stamp {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Entries[1].Metric != 42 {
		t.Errorf("metric lost in round trip: %+v", got.Entries[1])
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
