package benchcmp

import (
	"path/filepath"
	"testing"
)

func baseSnap() Snapshot {
	return Snapshot{
		Stamp: "base",
		Entries: []Entry{
			{Name: "e1", NsOp: 1e6, AllocsOp: 1000, MetricName: "ratio", Metric: 1.0},
			{Name: "e2", NsOp: 2e6, AllocsOp: 2000, MetricName: "dups", Metric: 42},
		},
	}
}

// TestIdenticalPasses: a snapshot compared against itself never fails.
func TestIdenticalPasses(t *testing.T) {
	s := baseSnap()
	findings, failed := Compare(s, s, DefaultOptions())
	if failed {
		t.Fatalf("identical snapshots failed: %+v", findings)
	}
	if len(findings) != 6 { // 3 fields × 2 entries
		t.Errorf("got %d findings, want 6", len(findings))
	}
}

// TestNoiseWithinThresholdPasses: allocs and time may drift a little
// (pool clearing at GC boundaries, machine noise) without failing.
func TestNoiseWithinThresholdPasses(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].AllocsOp = 1100 // +10% < 1.25x
	cur.Entries[0].NsOp = 5e6      // ns not gated by default
	if findings, failed := Compare(baseSnap(), cur, DefaultOptions()); failed {
		t.Fatalf("within-threshold drift failed: %+v", findings)
	}
}

// TestAllocRegressionFails: the synthetic regression the harness must
// catch — allocs/op jumping past the threshold.
func TestAllocRegressionFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries[1].AllocsOp = 2000 * 1.5
	findings, failed := Compare(baseSnap(), cur, DefaultOptions())
	if !failed {
		t.Fatal("1.5x allocs/op regression not caught")
	}
	var hit bool
	for _, f := range findings {
		if f.Name == "e2" && f.Field == "allocs/op" && f.Bad {
			hit = true
		}
		if f.Name == "e1" && f.Bad {
			t.Errorf("unregressed entry flagged: %+v", f)
		}
	}
	if !hit {
		t.Errorf("regressed entry not flagged: %+v", findings)
	}
}

// TestMetricDriftFails: the headline metric is a determinism check, so
// even a small drift fails.
func TestMetricDriftFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].Metric = 0.9999
	if _, failed := Compare(baseSnap(), cur, DefaultOptions()); !failed {
		t.Fatal("headline metric drift not caught")
	}
}

// TestMissingEntryFails: an experiment disappearing from the snapshot
// is a regression, while a new one is not.
func TestMissingEntryFails(t *testing.T) {
	cur := baseSnap()
	cur.Entries = cur.Entries[:1]
	if _, failed := Compare(baseSnap(), cur, DefaultOptions()); !failed {
		t.Fatal("missing entry not caught")
	}
	cur = baseSnap()
	cur.Entries = append(cur.Entries, Entry{Name: "e13", AllocsOp: 1, Metric: 1})
	if findings, failed := Compare(baseSnap(), cur, DefaultOptions()); failed {
		t.Fatalf("extra entry treated as regression: %+v", findings)
	}
}

func latSnap(p99 float64) Snapshot {
	return Snapshot{
		Stamp: "base",
		Entries: []Entry{
			{Name: "e15lat", NsOp: 1e6, AllocsOp: 100, MetricName: "p99_latency_ms", Metric: p99},
		},
	}
}

// TestLowerBetterImprovementPasses: a registered lower-is-better metric
// may shrink arbitrarily without tripping the exact-drift gate.
func TestLowerBetterImprovementPasses(t *testing.T) {
	if findings, failed := Compare(latSnap(250), latSnap(80), DefaultOptions()); failed {
		t.Fatalf("p99 improvement treated as regression: %+v", findings)
	}
}

// TestLowerBetterNoisePasses: growth under RegressRatio is tolerated —
// the point of the direction flag is that latency is gated, not pinned.
func TestLowerBetterNoisePasses(t *testing.T) {
	if findings, failed := Compare(latSnap(250), latSnap(250*1.05), DefaultOptions()); failed {
		t.Fatalf("+5%% p99 under the 1.10 threshold failed: %+v", findings)
	}
}

// TestLowerBetterRegressionFails: growth past RegressRatio fails.
func TestLowerBetterRegressionFails(t *testing.T) {
	findings, failed := Compare(latSnap(250), latSnap(250*1.5), DefaultOptions())
	if !failed {
		t.Fatal("+50% p99 regression not caught")
	}
	var hit bool
	for _, f := range findings {
		if f.Name == "e15lat" && f.Field == "metric" && f.Bad {
			hit = true
		}
	}
	if !hit {
		t.Errorf("regressed metric not flagged: %+v", findings)
	}
}

// TestLowerBetterGuardSentinelFails: a -1 guard value must fail even
// though it is numerically "lower" than any real latency.
func TestLowerBetterGuardSentinelFails(t *testing.T) {
	if _, failed := Compare(latSnap(250), latSnap(-1), DefaultOptions()); !failed {
		t.Fatal("-1 guard sentinel slipped under the lower-is-better gate")
	}
}

func ratioSnap(r float64) Snapshot {
	return Snapshot{
		Stamp: "base",
		Entries: []Entry{
			{Name: "e16", NsOp: 1e6, AllocsOp: 100, MetricName: "state_reduction_ratio", Metric: r},
		},
	}
}

// TestHigherBetterImprovementPasses: a registered higher-is-better
// metric may grow arbitrarily without tripping the exact-drift gate.
func TestHigherBetterImprovementPasses(t *testing.T) {
	if findings, failed := Compare(ratioSnap(12), ratioSnap(40), DefaultOptions()); failed {
		t.Fatalf("reduction-ratio improvement treated as regression: %+v", findings)
	}
}

// TestHigherBetterNoisePasses: shrinkage within RegressRatio is
// tolerated.
func TestHigherBetterNoisePasses(t *testing.T) {
	if findings, failed := Compare(ratioSnap(12), ratioSnap(12/1.05), DefaultOptions()); failed {
		t.Fatalf("-5%% reduction ratio under the 1.10 threshold failed: %+v", findings)
	}
}

// TestHigherBetterRegressionFails: shrinkage past RegressRatio fails.
func TestHigherBetterRegressionFails(t *testing.T) {
	findings, failed := Compare(ratioSnap(12), ratioSnap(12/1.5), DefaultOptions())
	if !failed {
		t.Fatal("-33% reduction ratio regression not caught")
	}
	var hit bool
	for _, f := range findings {
		if f.Name == "e16" && f.Field == "metric" && f.Bad {
			hit = true
		}
	}
	if !hit {
		t.Errorf("regressed metric not flagged: %+v", findings)
	}
}

// TestHigherBetterGuardSentinelFails: the -1 guard value fails against
// both a positive and a zero baseline.
func TestHigherBetterGuardSentinelFails(t *testing.T) {
	if _, failed := Compare(ratioSnap(12), ratioSnap(-1), DefaultOptions()); !failed {
		t.Fatal("-1 guard sentinel passed the higher-is-better gate")
	}
	if _, failed := Compare(ratioSnap(0), ratioSnap(-1), DefaultOptions()); !failed {
		t.Fatal("-1 guard sentinel passed against a zero baseline")
	}
}

// TestUnlistedMetricStaysExact: direction flags apply by metric name;
// everything else keeps the near-exact determinism gate.
func TestUnlistedMetricStaysExact(t *testing.T) {
	base := latSnap(250)
	base.Entries[0].MetricName = "delivered_total"
	cur := latSnap(249)
	cur.Entries[0].MetricName = "delivered_total"
	if _, failed := Compare(base, cur, DefaultOptions()); !failed {
		t.Fatal("drift on an unlisted metric not caught")
	}
}

// TestNsGatingOptIn: setting NsRatio turns time into a gate.
func TestNsGatingOptIn(t *testing.T) {
	cur := baseSnap()
	cur.Entries[0].NsOp = 10e6
	opts := DefaultOptions()
	opts.NsRatio = 2.0
	if _, failed := Compare(baseSnap(), cur, opts); !failed {
		t.Fatal("10x ns/op with NsRatio=2 not caught")
	}
}

// TestSaveLoadRoundTrip exercises the file format.
func TestSaveLoadRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "snap.json")
	want := baseSnap()
	if err := Save(p, want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(got.Entries) != len(want.Entries) || got.Stamp != want.Stamp {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Entries[1].Metric != 42 {
		t.Errorf("metric lost in round trip: %+v", got.Entries[1])
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
