package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.After(3*time.Second, func() { got = append(got, 3) })
	k.After(1*time.Second, func() { got = append(got, 1) })
	k.After(2*time.Second, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	var fired []string
	k.After(time.Second, func() {
		fired = append(fired, "outer")
		k.After(time.Second, func() { fired = append(fired, "inner") })
	})
	k.Run()
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != Time(2*time.Second) {
		t.Errorf("Now() = %v, want 2s", k.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	tm := k.After(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report false")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel(1)
	tm := k.After(0, func() {})
	k.Run()
	if tm.Cancel() {
		t.Error("Cancel after fire should report false")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.After(1*time.Second, func() { fired = append(fired, 1) })
	k.After(5*time.Second, func() { fired = append(fired, 5) })
	k.RunUntil(Time(3 * time.Second))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if k.Now() != Time(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", k.Now())
	}
	k.Run()
	if len(fired) != 2 {
		t.Errorf("remaining event did not run: %v", fired)
	}
}

func TestRunLimit(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		k.After(time.Millisecond, tick)
	}
	k.After(0, tick)
	if ran := k.RunLimit(100); ran != 100 {
		t.Fatalf("RunLimit ran %d, want 100", ran)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

func TestStopAndResume(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.After(1*time.Second, func() { count++; k.Stop() })
	k.After(2*time.Second, func() { count++ })
	k.Run()
	if count != 1 {
		t.Fatalf("count after Stop = %d, want 1", count)
	}
	k.Resume()
	k.Run()
	if count != 2 {
		t.Fatalf("count after Resume = %d, want 2", count)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Second, func() {
		k.After(-5*time.Second, func() {
			if k.Now() != Time(time.Second) {
				t.Errorf("clamped event ran at %v, want 1s", k.Now())
			}
		})
	})
	k.Run()
}

func TestPending(t *testing.T) {
	k := NewKernel(1)
	t1 := k.After(time.Second, func() {})
	k.After(2*time.Second, func() {})
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	t1.Cancel()
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int64 {
		k := NewKernel(seed)
		var trace []int64
		var step func()
		n := 0
		step = func() {
			trace = append(trace, int64(k.Now()), k.RNG().Int63())
			n++
			if n < 50 {
				k.After(k.RNG().Exp(100*time.Millisecond), step)
			}
		}
		k.After(0, step)
		k.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestRNGProb(t *testing.T) {
	g := NewRNG(1)
	if g.Prob(0) {
		t.Error("Prob(0) must be false")
	}
	if !g.Prob(1) {
		t.Error("Prob(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Prob(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("Prob(0.3) frequency = %.3f", frac)
	}
}

func TestRNGUniformBounds(t *testing.T) {
	g := NewRNG(2)
	f := func(a, b uint32) bool {
		lo := time.Duration(a % 1000000)
		hi := time.Duration(b % 1000000)
		d := g.Uniform(lo, hi)
		if hi <= lo {
			return d == lo
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGExp(t *testing.T) {
	g := NewRNG(3)
	if g.Exp(0) != 0 || g.Exp(-time.Second) != 0 {
		t.Error("non-positive mean must return 0")
	}
	var sum time.Duration
	const n = 50000
	mean := 200 * time.Millisecond
	for i := 0; i < n; i++ {
		sum += g.Exp(mean)
	}
	got := float64(sum) / n
	if got < 0.95*float64(mean) || got > 1.05*float64(mean) {
		t.Errorf("Exp mean = %v, want ~%v", time.Duration(got), mean)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(5)
	f1 := g.Fork()
	before := g.Int63()
	_ = f1.Int63() // draw from the fork...
	g2 := NewRNG(5)
	_ = g2.Fork()
	after := g2.Int63()
	if before != after {
		t.Error("drawing from a fork perturbed the parent stream")
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("scheduling a nil callback must panic")
		}
	}()
	NewKernel(1).After(time.Second, nil)
}

func BenchmarkKernelThroughput(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		k.After(time.Microsecond, tick)
	}
	k.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.RunLimit(uint64(b.N))
}
