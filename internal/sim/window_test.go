package sim

import (
	"testing"
	"time"
)

// StepUntil must execute strictly below the limit and leave the clock at
// the last executed event, so callers can inject more work anywhere in
// [now, limit) between windows.
func TestStepUntilIsExclusiveAndKeepsClock(t *testing.T) {
	k := NewKernel(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		k.After(d, func() { fired = append(fired, d) })
	}
	ran := k.StepUntil(Time(2 * time.Millisecond))
	if ran != 1 || len(fired) != 1 || fired[0] != 1*time.Millisecond {
		t.Fatalf("StepUntil(2ms): ran=%d fired=%v", ran, fired)
	}
	if k.Now() != Time(1*time.Millisecond) {
		t.Fatalf("clock advanced to %v, want 1ms (limit must not drag the clock)", k.Now())
	}
	// An event injected inside the already-stepped window must still run
	// in timestamp order on the next window.
	k.DeferAt(Time(1500*time.Microsecond), func() { fired = append(fired, 1500*time.Microsecond) })
	k.StepUntil(Time(4 * time.Millisecond))
	want := []time.Duration{1 * time.Millisecond, 1500 * time.Microsecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestStepUntilBoundaryEventStaysQueued(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.After(5*time.Millisecond, func() { ran = true })
	if n := k.StepUntil(Time(5 * time.Millisecond)); n != 0 || ran {
		t.Fatalf("event at the limit executed (n=%d ran=%v); window is [_, limit)", n, ran)
	}
	if n := k.StepUntil(Time(5*time.Millisecond + 1)); n != 1 || !ran {
		t.Fatalf("event just below the next limit did not execute (n=%d ran=%v)", n, ran)
	}
}

func TestNextEventAt(t *testing.T) {
	k := NewKernel(1)
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("empty kernel reported a next event")
	}
	tm := k.At(Time(7*time.Millisecond), func() {})
	k.After(3*time.Millisecond, func() {})
	if at, ok := k.NextEventAt(); !ok || at != Time(3*time.Millisecond) {
		t.Fatalf("NextEventAt = %v,%v; want 3ms,true", at, ok)
	}
	// Cancelled events must be invisible.
	k.Step()
	tm.Cancel()
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("cancelled event visible through NextEventAt")
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel(1)
	k.AdvanceTo(Time(10 * time.Millisecond))
	if k.Now() != Time(10*time.Millisecond) {
		t.Fatalf("Now = %v, want 10ms", k.Now())
	}
	k.AdvanceTo(Time(5 * time.Millisecond)) // backwards: no-op
	if k.Now() != Time(10*time.Millisecond) {
		t.Fatalf("AdvanceTo moved the clock backwards to %v", k.Now())
	}
	k.After(1*time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	k.AdvanceTo(Time(20 * time.Millisecond))
}

// A burst that inflates the heap must not pin its high-water backing
// array (or the matching free-list growth) for the rest of the run.
func TestQueueShrinksAfterBurst(t *testing.T) {
	k := NewKernel(1)
	const burst = 1 << 15
	for i := 0; i < burst; i++ {
		k.Defer(time.Duration(i)*time.Microsecond, func() {})
	}
	if cap(k.queue) < burst {
		t.Fatalf("burst did not grow the heap: cap=%d", cap(k.queue))
	}
	k.Run()
	if c := cap(k.queue); c >= shrinkMinCap {
		t.Fatalf("drained queue kept cap=%d, want < %d", c, shrinkMinCap)
	}
	if f := len(k.free); f > shrinkMinCap {
		t.Fatalf("free list kept %d retired events, want <= %d", f, shrinkMinCap)
	}
	// The kernel must still work after shrinking.
	ran := 0
	for i := 0; i < 100; i++ {
		k.Defer(time.Duration(i)*time.Microsecond, func() { ran++ })
	}
	k.Run()
	if ran != 100 {
		t.Fatalf("post-shrink events ran %d/100", ran)
	}
}

// Steady-state alloc budget around the shrink path: a sawtooth load that
// repeatedly grows to a sub-threshold size and drains must stay
// allocation-free once warm (the shrink threshold exists precisely so
// the common case never reallocates).
func TestShrinkDoesNotBreakSteadyStateAllocs(t *testing.T) {
	k := NewKernel(1)
	saw := func() {
		for i := 0; i < shrinkMinCap/2; i++ {
			k.Defer(time.Duration(i), func() {})
		}
		k.Run()
	}
	saw() // warm the free list and heap
	allocs := testing.AllocsPerRun(20, saw)
	if allocs > 0 {
		t.Fatalf("sub-threshold sawtooth allocates %.1f/run, want 0", allocs)
	}
}
