package sim

import (
	"testing"
	"time"
)

// TestKernelAllocBudget pins the scheduling fast path to zero
// allocations in the steady state: once the free list and the heap's
// backing array are warm, Defer+Step must recycle events rather than
// allocate them. testing.AllocsPerRun fails loudly if the free list
// regresses (e.g. an event leaks or a closure sneaks in).
func TestKernelAllocBudget(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	// Warm up: grow the heap's backing array and populate the free list.
	for i := 0; i < 64; i++ {
		k.Defer(time.Duration(i)*time.Microsecond, fn)
	}
	k.Run()

	if avg := testing.AllocsPerRun(500, func() {
		k.Defer(time.Microsecond, fn)
		if !k.Step() {
			panic("kernel empty")
		}
	}); avg != 0 {
		t.Errorf("Defer+Step steady state: %.1f allocs/op, budget 0", avg)
	}
}

// TestTimerAllocBudget documents the cost of the cancellable path: one
// Timer handle per After, and nothing else once warm.
func TestTimerAllocBudget(t *testing.T) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		k.Defer(0, fn)
	}
	k.Run()

	if avg := testing.AllocsPerRun(500, func() {
		k.After(time.Microsecond, fn)
		k.Step()
	}); avg > 1 {
		t.Errorf("After+Step steady state: %.1f allocs/op, budget 1 (the Timer handle)", avg)
	}
}

// TestFreeListReuseIsGuarded: a Timer kept across its event's firing
// must not cancel the recycled event that now occupies the same slot.
func TestFreeListReuseIsGuarded(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	tm := k.After(time.Millisecond, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The event is now on the free list; schedule again so it is reused.
	k.Defer(time.Millisecond, func() { fired++ })
	if tm.Cancel() {
		t.Error("stale Timer canceled a recycled event")
	}
	k.Run()
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (recycled event must still run)", fired)
	}
}

// BenchmarkKernelDefer measures the no-handle scheduling fast path
// (compare BenchmarkKernelThroughput, which uses After and pays for the
// Timer handle).
func BenchmarkKernelDefer(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		k.Defer(time.Microsecond, tick)
	}
	k.Defer(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	k.RunLimit(uint64(b.N))
}
