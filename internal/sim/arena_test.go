package sim

import (
	"testing"
	"time"
)

// TestArenaRecyclesAcrossKernels: with an arena attached, retired
// events land in the shared pool and a second kernel attached to the
// same arena reuses them instead of allocating — the memory-footprint
// property the parallel engine's per-worker arenas rely on.
func TestArenaRecyclesAcrossKernels(t *testing.T) {
	a := NewArena()
	k1 := NewKernel(1)
	k1.SetArena(a)
	fn := func() {}
	for i := 0; i < 32; i++ {
		k1.Defer(time.Duration(i)*time.Microsecond, fn)
	}
	k1.Run()
	if len(a.free) != 32 {
		t.Fatalf("arena holds %d events after 32 retires, want 32", len(a.free))
	}
	if len(k1.free) != 0 {
		t.Fatalf("kernel free list holds %d events despite arena", len(k1.free))
	}

	k2 := NewKernel(2)
	k2.SetArena(a)
	if avg := testing.AllocsPerRun(20, func() {
		k2.Defer(time.Microsecond, fn)
		if !k2.Step() {
			panic("kernel empty")
		}
	}); avg != 0 {
		t.Errorf("second kernel on warm arena: %.1f allocs/op, budget 0", avg)
	}
}

// TestArenaDetach: SetArena(nil) returns the kernel to its private free
// list; events retired afterwards stay local.
func TestArenaDetach(t *testing.T) {
	a := NewArena()
	k := NewKernel(1)
	k.SetArena(a)
	k.Defer(0, func() {})
	k.Run()
	if len(a.free) != 1 {
		t.Fatalf("arena holds %d events, want 1", len(a.free))
	}
	k.SetArena(nil)
	k.Defer(0, func() {})
	k.Run()
	if len(k.free) != 1 || len(a.free) != 1 {
		t.Fatalf("after detach: kernel free %d (want 1), arena free %d (want 1)", len(k.free), len(a.free))
	}
}

// TestArenaPreservesDeterminism: recycling order is not observable —
// the same program with and without an arena produces the same event
// sequence and final clock.
func TestArenaPreservesDeterminism(t *testing.T) {
	runSeq := func(arena *Arena) ([]int, Time) {
		k := NewKernel(9)
		if arena != nil {
			k.SetArena(arena)
		}
		var seq []int
		var tick func(i int) func()
		tick = func(i int) func() {
			return func() {
				seq = append(seq, i)
				if i < 40 {
					k.Defer(time.Duration(k.RNG().Intn(5))*time.Microsecond, tick(i+1))
				}
			}
		}
		k.Defer(0, tick(0))
		k.Run()
		return seq, k.Now()
	}
	plain, plainNow := runSeq(nil)
	pooled, pooledNow := runSeq(NewArena())
	if plainNow != pooledNow {
		t.Fatalf("final clock differs: %v vs %v", plainNow, pooledNow)
	}
	if len(plain) != len(pooled) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(plain), len(pooled))
	}
	for i := range plain {
		if plain[i] != pooled[i] {
			t.Fatalf("sequence diverges at %d: %d vs %d", i, plain[i], pooled[i])
		}
	}
}
