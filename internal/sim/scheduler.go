package sim

import "time"

// Canceler cancels a scheduled event. Cancel reports whether the event
// was still pending.
type Canceler interface {
	Cancel() bool
}

// Scheduler is the execution substrate the protocol code runs on: a
// clock, deferred execution and a random source. Two implementations
// exist — the deterministic discrete-event Kernel in this package
// (virtual time, used by all experiments) and livenet.Runtime
// (goroutines and wall-clock time, used to demonstrate the same
// protocol code running live).
//
// Implementations must serialize all scheduled callbacks: protocol
// state machines rely on running one event at a time.
type Scheduler interface {
	// Now returns the current (virtual or wall-clock) time since start.
	Now() Time
	// After schedules fn to run after delay; fn runs serialized with all
	// other callbacks.
	After(delay time.Duration, fn func()) Canceler
	// Defer schedules fn like After but without a cancellation handle.
	// Implementations use it as the allocation-free fast path for the
	// fire-and-forget schedules that dominate message-level hot paths.
	Defer(delay time.Duration, fn func())
	// RNG returns the scheduler's deterministic random source.
	RNG() *RNG
}

var _ Scheduler = (*Kernel)(nil)
