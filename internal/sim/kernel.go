// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue with stable tie-breaking, cancellable
// timers and a seeded random source.
//
// The kernel is single-threaded by design. All protocol actors run as
// event handlers; two runs with the same seed and the same schedule of
// calls produce byte-identical traces, which the scenario tests
// (Figures 3 and 4 of the paper) and the experiment sweeps rely on.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a virtual instant, expressed as the duration elapsed since the
// start of the simulation.
type Time time.Duration

// String renders the instant as a duration, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// event is one scheduled callback. Events are recycled through the
// kernel's free list once fired or cancel-popped, so the steady-state
// event rate causes no allocation; seq doubles as a generation counter
// that keeps stale Timer handles from cancelling a recycled event.
type event struct {
	at       Time
	seq      uint64 // insertion order; breaks ties deterministically
	fn       func()
	canceled bool
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent
// use; all interaction must happen from the goroutine driving Run (or
// from within event callbacks, which amounts to the same thing).
type Kernel struct {
	now     Time
	queue   []*event // binary heap ordered by (at, seq)
	free    []*event // retired events awaiting reuse
	arena   *Arena   // optional shared free list; see SetArena
	rng     *RNG
	nextSeq uint64
	stopped bool
	steps   uint64
}

// Arena is a free list of retired events shared between kernels. Without
// it every kernel pins its own burst high-water mark of event structs;
// with an arena, kernels that execute on the same OS thread in turn —
// the parallel engine's regions, dealt to one worker — recycle a single
// pool sized to the worker's peak, not the sum of per-kernel peaks.
//
// An Arena is not safe for concurrent use: at most one kernel may have
// it attached at a time, and the attach/detach calls must be serialized
// with that kernel's stepping (the parallel engine attaches it around
// each region's window step, on the worker goroutine).
type Arena struct {
	free []*event
}

// NewArena returns an empty shared free list.
func NewArena() *Arena { return &Arena{} }

// SetArena routes the kernel's event recycling through a: retired events
// are returned to the arena, and new events draw from it before falling
// back to the kernel's own free list (which drains first and then stays
// empty while attached). Passing nil reverts to the private free list.
// Events already queued are unaffected — an arena can be attached and
// detached freely between steps. Recycling order is not observable:
// events carry no identity beyond the seq the kernel assigns fresh on
// every schedule, so runs with and without an arena are byte-identical.
func (k *Kernel) SetArena(a *Arena) { k.arena = a }

// NewKernel returns a kernel whose random source is seeded with seed.
// Equal seeds yield identical simulations.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events still scheduled.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event. It remembers the event's
// generation (seq): once the event has fired or been cancelled the
// kernel recycles it, and a stale handle observing a different seq
// knows its event is gone.
type Timer struct {
	e   *event
	seq uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.e == nil || t.e.seq != t.seq || t.e.canceled {
		return false
	}
	t.e.canceled = true
	return true
}

// After schedules fn to run after delay of virtual time. A negative
// delay is treated as zero (fn runs at the current instant, after any
// events already scheduled for it).
func (k *Kernel) After(delay time.Duration, fn func()) Canceler {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+Time(delay), fn)
}

// At schedules fn for the given absolute virtual instant. Instants in
// the past are clamped to now.
func (k *Kernel) At(at Time, fn func()) Canceler {
	e := k.schedule(at, fn)
	return &Timer{e: e, seq: e.seq}
}

// Defer schedules fn like After but returns no cancellation handle, so
// the steady-state cost is zero allocations (the event comes from the
// free list). It is the right call for the fire-and-forget schedules
// that dominate the hot path — message deliveries, processing steps.
func (k *Kernel) Defer(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.schedule(k.now+Time(delay), fn)
}

// schedule allocates (or recycles) an event and pushes it on the heap.
func (k *Kernel) schedule(at Time, fn func()) *event {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if at < k.now {
		at = k.now
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else if k.arena != nil {
		if n := len(k.arena.free); n > 0 {
			e = k.arena.free[n-1]
			k.arena.free[n-1] = nil
			k.arena.free = k.arena.free[:n-1]
		}
	}
	if e == nil {
		e = new(event)
	}
	e.at, e.seq, e.fn, e.canceled = at, k.nextSeq, fn, false
	k.nextSeq++
	k.push(e)
	return e
}

// retire returns a popped event to the free list (the shared arena when
// one is attached). canceled stays set so a stale Timer holding the
// event sees it as spent until reuse bumps its seq.
func (k *Kernel) retire(e *event) {
	e.fn = nil
	e.canceled = true
	if k.arena != nil {
		k.arena.free = append(k.arena.free, e)
		return
	}
	k.free = append(k.free, e)
}

// eventLess orders events by (at, seq).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends an event and restores the heap invariant. The sift loops
// are inlined (vs container/heap) so scheduling costs no interface
// conversions or indirect Less/Swap calls.
func (k *Kernel) push(e *event) {
	k.queue = append(k.queue, e)
	q := k.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = e
}

// pop removes and returns the minimum event.
func (k *Kernel) pop() *event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	e := q[n]
	q[n] = nil
	k.queue = q[:n]
	if n > 0 {
		q = k.queue
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && eventLess(q[r], q[c]) {
				c = r
			}
			if !eventLess(q[c], e) {
				break
			}
			q[i] = q[c]
			i = c
		}
		q[i] = e
	}
	k.maybeShrink(n)
	return top
}

// shrinkMinCap is the queue capacity below which the heap never shrinks:
// small steady-state queues keep their backing array so the common case
// stays allocation-free. Only a genuine burst (thousands of concurrent
// events) trips the release path.
const shrinkMinCap = 1024

// maybeShrink releases most of a burst's memory once the queue drains
// below a quarter of its capacity: without it the heap's backing array —
// and, through the free list, every event the burst allocated — stays
// pinned at the high-water mark for the rest of the run. Halving per
// shrink keeps the cost amortized O(1) per pop.
func (k *Kernel) maybeShrink(n int) {
	c := cap(k.queue)
	if c < shrinkMinCap || n >= c/4 {
		return
	}
	nc := c / 2
	nq := make([]*event, n, nc)
	copy(nq, k.queue)
	k.queue = nq
	// The free list grew to the same burst size; cap it at the shrunk
	// queue capacity so the retired events can be collected too.
	if len(k.free) > nc {
		nf := make([]*event, nc)
		copy(nf, k.free[:nc])
		k.free = nf
	}
}

// Step executes the next pending event. It reports whether an event was
// executed (false means the queue is empty or the kernel was stopped).
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	for len(k.queue) > 0 {
		e := k.pop()
		if e.canceled {
			k.retire(e)
			continue
		}
		k.now = e.at
		k.steps++
		fn := e.fn
		k.retire(e)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to deadline. Events scheduled beyond deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	for !k.stopped {
		next := k.peek()
		if next == nil || next.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// StepUntil executes every event with timestamp strictly below limit and
// reports how many ran. Unlike RunUntil it does not advance the clock to
// limit afterwards: the clock stays at the last executed event, so a
// caller can keep injecting events anywhere in [now, limit) between
// windows. It is the kernel barrier primitive of the conservative
// parallel engine (internal/psim): each region steps its kernel through
// the window [T, T+lookahead) and then synchronizes.
func (k *Kernel) StepUntil(limit Time) uint64 {
	var ran uint64
	for !k.stopped {
		next := k.peek()
		if next == nil || next.at >= limit {
			break
		}
		k.Step()
		ran++
	}
	return ran
}

// NextEventAt returns the timestamp of the earliest pending event; ok is
// false when nothing is scheduled.
func (k *Kernel) NextEventAt() (at Time, ok bool) {
	e := k.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// DeferAt schedules fn at the absolute instant at with no cancellation
// handle — the zero-allocation analogue of At, used to inject
// cross-region frames at their precomputed arrival instants. Instants in
// the past are clamped to now.
func (k *Kernel) DeferAt(at Time, fn func()) { k.schedule(at, fn) }

// AdvanceTo moves the clock forward to t without executing anything. It
// panics if a pending event precedes t — virtual time must not skip an
// unprocessed event. Used by window runners to align region clocks at
// the end of a run (the serial RunUntil's final clock advance, factored
// out).
func (k *Kernel) AdvanceTo(t Time) {
	if t <= k.now {
		return
	}
	if e := k.peek(); e != nil && e.at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event at %v", t, e.at))
	}
	k.now = t
}

// RunLimit executes at most n events; it reports how many ran. It guards
// experiment loops against livelock bugs.
func (k *Kernel) RunLimit(n uint64) uint64 {
	var ran uint64
	for ran < n && k.Step() {
		ran++
	}
	return ran
}

// Stop halts Run after the current event. Further Step calls return
// false until Resume.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a Stop.
func (k *Kernel) Resume() { k.stopped = false }

// peek returns the earliest non-cancelled event without popping it.
func (k *Kernel) peek() *event {
	for len(k.queue) > 0 {
		if e := k.queue[0]; !e.canceled {
			return e
		}
		k.retire(k.pop())
	}
	return nil
}

// RNG is a deterministic random source with the distributions the
// workload models need. It wraps math/rand so all draws flow through a
// single stream, keeping runs reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Prob reports true with probability p (clamped to [0, 1]).
func (g *RNG) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Uniform returns a duration uniformly distributed in [lo, hi]. If
// hi <= lo it returns lo.
func (g *RNG) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed duration with the given mean.
// A non-positive mean returns 0.
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(g.r.ExpFloat64() * float64(mean))
	// Guard against pathological draws overflowing downstream arithmetic.
	const cap = time.Duration(math.MaxInt64 / 4)
	if d > cap {
		d = cap
	}
	return d
}

// Perm returns a deterministic random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fork returns an independent source derived from this one. Forked
// sources let subsystems draw without perturbing each other's streams
// while remaining reproducible.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Ensure Time formats sensibly even at extreme values (documentation of
// intent; exercised in tests).
var _ = fmt.Stringer(Time(0))
