// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue with stable tie-breaking, cancellable
// timers and a seeded random source.
//
// The kernel is single-threaded by design. All protocol actors run as
// event handlers; two runs with the same seed and the same schedule of
// calls produce byte-identical traces, which the scenario tests
// (Figures 3 and 4 of the paper) and the experiment sweeps rely on.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Time is a virtual instant, expressed as the duration elapsed since the
// start of the simulation.
type Time time.Duration

// String renders the instant as a duration, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// event is one scheduled callback.
type event struct {
	at       Time
	seq      uint64 // insertion order; breaks ties deterministically
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event scheduler. It is not safe for concurrent
// use; all interaction must happen from the goroutine driving Run (or
// from within event callbacks, which amounts to the same thing).
type Kernel struct {
	now     Time
	queue   eventHeap
	rng     *RNG
	nextSeq uint64
	stopped bool
	steps   uint64
}

// NewKernel returns a kernel whose random source is seeded with seed.
// Equal seeds yield identical simulations.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events still scheduled.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event.
type Timer struct {
	e *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.e == nil || t.e.canceled || t.e.index == -1 {
		return false
	}
	t.e.canceled = true
	return true
}

// After schedules fn to run after delay of virtual time. A negative
// delay is treated as zero (fn runs at the current instant, after any
// events already scheduled for it).
func (k *Kernel) After(delay time.Duration, fn func()) Canceler {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+Time(delay), fn)
}

// At schedules fn for the given absolute virtual instant. Instants in
// the past are clamped to now.
func (k *Kernel) At(at Time, fn func()) Canceler {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if at < k.now {
		at = k.now
	}
	e := &event{at: at, seq: k.nextSeq, fn: fn}
	k.nextSeq++
	heap.Push(&k.queue, e)
	return &Timer{e: e}
}

// Step executes the next pending event. It reports whether an event was
// executed (false means the queue is empty or the kernel was stopped).
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*event)
		if e.canceled {
			continue
		}
		k.now = e.at
		k.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock to deadline. Events scheduled beyond deadline stay queued.
func (k *Kernel) RunUntil(deadline Time) {
	for !k.stopped {
		next := k.peek()
		if next == nil || next.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunLimit executes at most n events; it reports how many ran. It guards
// experiment loops against livelock bugs.
func (k *Kernel) RunLimit(n uint64) uint64 {
	var ran uint64
	for ran < n && k.Step() {
		ran++
	}
	return ran
}

// Stop halts Run after the current event. Further Step calls return
// false until Resume.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a Stop.
func (k *Kernel) Resume() { k.stopped = false }

// peek returns the earliest non-cancelled event without popping it.
func (k *Kernel) peek() *event {
	for len(k.queue) > 0 {
		if e := k.queue[0]; !e.canceled {
			return e
		}
		heap.Pop(&k.queue)
	}
	return nil
}

// RNG is a deterministic random source with the distributions the
// workload models need. It wraps math/rand so all draws flow through a
// single stream, keeping runs reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Prob reports true with probability p (clamped to [0, 1]).
func (g *RNG) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Uniform returns a duration uniformly distributed in [lo, hi]. If
// hi <= lo it returns lo.
func (g *RNG) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(g.r.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed duration with the given mean.
// A non-positive mean returns 0.
func (g *RNG) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(g.r.ExpFloat64() * float64(mean))
	// Guard against pathological draws overflowing downstream arithmetic.
	const cap = time.Duration(math.MaxInt64 / 4)
	if d > cap {
		d = cap
	}
	return d
}

// Perm returns a deterministic random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Fork returns an independent source derived from this one. Forked
// sources let subsystems draw without perturbing each other's streams
// while remaining reproducible.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Ensure Time formats sensibly even at extreme values (documentation of
// intent; exercised in tests).
var _ = fmt.Stringer(Time(0))
