package tcpnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/livenet"
	"repro/internal/rdpcore"
	"repro/internal/wtp"
)

// wtpWorld is tcpWorld with the windowed wireless transport enabled
// before the endpoints start, the way EnableARQ is layered in.
func wtpWorld(t *testing.T, cfg rdpcore.Config) (*rdpcore.World, *livenet.Runtime, *Net) {
	t.Helper()
	rt := livenet.New(cfg.Seed)
	members := make([]ids.NodeID, 0, cfg.NumMSS+cfg.NumServers)
	for i := 1; i <= cfg.NumMSS; i++ {
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	n := New(rt, members)
	n.EnableWTP(wtp.Config{CoalesceDelay: time.Millisecond})
	if err := n.Start(); err != nil {
		t.Fatalf("tcpnet start: %v", err)
	}
	w := rdpcore.NewWorldWith(rt, cfg, n, n)
	n.SetReachable(w.Reachable)
	rt.Start()
	t.Cleanup(func() {
		rt.Stop()
		n.Close()
	})
	return w, rt, n
}

// TestWTPOverTCP drives a burst of requests through real sockets with
// the windowed downlink: every result must arrive exactly once, in
// coalesced WtpData frames rather than one radio frame per message.
func TestWTPOverTCP(t *testing.T) {
	w, rt, n := wtpWorld(t, testConfig())
	const requests = 20
	var (
		mu   sync.Mutex
		got  int
		dups int
	)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
			mu.Lock()
			if dup {
				dups++
			} else {
				got++
			}
			mu.Unlock()
		})
		for r := 0; r < requests; r++ {
			mh.IssueRequest(1, []byte{byte(r)})
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		done := got >= requests
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("only %d of %d results delivered over the windowed link", got, requests)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dups != 0 {
		t.Errorf("%d duplicate deliveries", dups)
	}
	rt.Do(func() {
		var frames, msgs int64
		for _, s := range n.wtpOut {
			frames += s.FramesSent
			msgs += s.MsgsFramed
		}
		if msgs != requests {
			t.Errorf("MsgsFramed = %d, want %d", msgs, requests)
		}
		if frames == 0 || frames > msgs {
			t.Errorf("FramesSent = %d for %d messages", frames, msgs)
		}
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
	})
}

// TestWTPOverTCPMigration migrates the host mid-stream: the old
// station's windowed link goes unreachable (its frames are dropped at
// the radio gate) while proxy-level recovery re-forwards through the
// new station's own link. Nothing may be lost or duplicated.
func TestWTPOverTCPMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak")
	}
	w, rt, _ := wtpWorld(t, testConfig())
	const requests = 10
	var (
		mu  sync.Mutex
		got int
	)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
			if dup {
				return
			}
			mu.Lock()
			got++
			mu.Unlock()
		})
	})
	for r := 0; r < requests; r++ {
		rt.Do(func() { w.MHs[1].IssueRequest(1, []byte{byte(r)}) })
		time.Sleep(10 * time.Millisecond)
		rt.Do(func() { w.Migrate(1, ids.MSS(r%3+1)) })
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		done := got >= requests
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("only %d of %d results delivered across migrations", got, requests)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rt.Do(func() {
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants: %v", err)
		}
	})
}
