package tcpnet

import (
	"bytes"
	"testing"

	"repro/internal/causal"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/netsim"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it
// must never panic or over-allocate, and every frame it does accept
// must re-encode to the same bytes it consumed (when it consumed the
// whole input).
func FuzzReadFrame(f *testing.F) {
	seed := []frame{
		{
			layer: netsim.LayerWired,
			from:  ids.MSS(1).Node(), to: ids.Server(1).Node(),
			m:        msg.ServerRequest{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 9}, Payload: []byte("fuzz")},
			hasStamp: true, stampFrom: 1, stamp: causal.NewMatrix(3),
		},
		{
			layer: netsim.LayerWireless,
			from:  ids.MH(2).Node(), to: ids.MSS(1).Node(),
			m: msg.AckMH{MH: 2, Req: ids.RequestID{Origin: 2, Seq: 4}},
		},
	}
	for _, fr := range seed {
		b, err := encodeFrame(fr)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		got, err := readFrame(r)
		if err != nil {
			return
		}
		if got.m == nil {
			t.Fatal("readFrame returned a frame with a nil message and no error")
		}
		// Accepted frames must re-encode (possibly canonicalizing loose
		// input, e.g. non-zero-or-one bool bytes), and the re-encoding
		// must be a fixed point: decode(encode(f)) == encode(f).
		re, err := encodeFrame(got)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		got2, err := readFrame(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if got2.layer != got.layer || got2.from != got.from || got2.to != got.to ||
			got2.hasStamp != got.hasStamp || got2.stampFrom != got.stampFrom ||
			got2.m.Kind() != got.m.Kind() {
			t.Fatalf("round trip changed the frame: %+v vs %+v", got, got2)
		}
		re2, err := encodeFrame(got2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not a fixed point:\n first  %x\n second %x", re, re2)
		}
	})
}
