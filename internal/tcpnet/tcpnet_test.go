package tcpnet

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/causal"
	"repro/internal/ids"
	"repro/internal/livenet"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/qrpc"
	"repro/internal/rdpcore"
)

// testConfig is a small world tuned for wall-clock runs: fast server,
// short retry so any timing race self-heals within the test deadline.
func testConfig() rdpcore.Config {
	return rdpcore.Config{
		Seed:           1,
		NumMSS:         3,
		NumServers:     1,
		ServerProc:     netsim.Constant(20 * time.Millisecond),
		RequestTimeout: 500 * time.Millisecond,
		GreetRefresh:   300 * time.Millisecond,
	}
}

// tcpWorld builds a world whose two substrates are this package's real
// TCP endpoints, started and ready. Callers interact via rt.Do.
func tcpWorld(t *testing.T, cfg rdpcore.Config) (*rdpcore.World, *livenet.Runtime, *Net) {
	t.Helper()
	rt := livenet.New(cfg.Seed)
	members := make([]ids.NodeID, 0, cfg.NumMSS+cfg.NumServers)
	for i := 1; i <= cfg.NumMSS; i++ {
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	n := New(rt, members)
	if err := n.Start(); err != nil {
		t.Fatalf("tcpnet start: %v", err)
	}
	w := rdpcore.NewWorldWith(rt, cfg, n, n)
	n.SetReachable(w.Reachable)
	rt.Start()
	t.Cleanup(func() {
		rt.Stop()
		n.Close()
	})
	return w, rt, n
}

// TestRequestResponseOverTCP sends one request through real loopback
// sockets: MH -> MSS radio frame, MSS -> server wired frame with causal
// stamp, and the result back down. The paper's prototype plan —
// "distributed processes within a Linux network" — end to end.
func TestRequestResponseOverTCP(t *testing.T) {
	w, rt, _ := tcpWorld(t, testConfig())
	done := make(chan []byte, 1)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, payload []byte, dup bool) {
			if !dup {
				done <- payload
			}
		})
		mh.IssueRequest(1, []byte("over-tcp"))
	})
	select {
	case got := <-done:
		if !bytes.Contains(got, []byte("over-tcp")) {
			t.Fatalf("result payload %q does not echo request", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("result never delivered over TCP")
	}
	rt.Do(func() {
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants after delivery: %v", err)
		}
	})
}

// TestMigrationOverTCP issues a request and migrates the host twice
// while the server is still computing, so the proxy must chase the host
// across real TCP links (hand-off, update_currentLoc, retransmission).
func TestMigrationOverTCP(t *testing.T) {
	cfg := testConfig()
	cfg.ServerProc = netsim.Constant(150 * time.Millisecond)
	w, rt, _ := tcpWorld(t, cfg)

	var (
		mu        sync.Mutex
		delivered []ids.RequestID
	)
	var req ids.RequestID
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(r ids.RequestID, _ []byte, dup bool) {
			if dup {
				return
			}
			mu.Lock()
			delivered = append(delivered, r)
			mu.Unlock()
		})
		req = mh.IssueRequest(1, []byte("chase-me"))
	})
	// Hand off twice while the result is still being computed.
	time.Sleep(30 * time.Millisecond)
	rt.Do(func() { w.Migrate(1, 2) })
	time.Sleep(30 * time.Millisecond)
	rt.Do(func() { w.Migrate(1, 3) })

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := len(delivered)
		mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result never chased the host over TCP")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	if delivered[0] != req {
		t.Errorf("delivered %v, want %v", delivered[0], req)
	}
	mu.Unlock()
	rt.Do(func() {
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants after hand-offs: %v", err)
		}
	})
}

// TestInactiveHostBuffersOverTCP disconnects the host; the radio gate at
// the TCP edge must drop the downlink frame, and reactivation must fetch
// the buffered result via the retransmit-on-update rule.
func TestInactiveHostBuffersOverTCP(t *testing.T) {
	cfg := testConfig()
	cfg.ServerProc = netsim.Constant(100 * time.Millisecond)
	w, rt, _ := tcpWorld(t, cfg)

	done := make(chan struct{}, 1)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- struct{}{}
			}
		})
		mh.IssueRequest(1, []byte("while-asleep"))
	})
	time.Sleep(20 * time.Millisecond)
	rt.Do(func() { w.SetActive(1, false) })
	// Let the result arrive at the cell while the host is unreachable.
	time.Sleep(300 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("result delivered to an inactive host")
	default:
	}
	rt.Do(func() { w.SetActive(1, true) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("buffered result not delivered after reactivation")
	}
}

// TestManyRequestsManyHostsOverTCP drives several hosts concurrently
// with interleaved migrations — a miniature soak over real sockets.
func TestManyRequestsManyHostsOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock soak")
	}
	cfg := testConfig()
	w, rt, _ := tcpWorld(t, cfg)

	const (
		hosts    = 4
		requests = 5
	)
	var (
		mu   sync.Mutex
		got  = map[ids.MH]int{}
		want = hosts * requests
	)
	rt.Do(func() {
		for h := 1; h <= hosts; h++ {
			id := ids.MH(h)
			mh := w.AddMH(id, ids.MSS(h%3+1))
			mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
				if dup {
					return
				}
				mu.Lock()
				got[id]++
				mu.Unlock()
			})
		}
	})
	for r := 0; r < requests; r++ {
		rt.Do(func() {
			for h := 1; h <= hosts; h++ {
				w.MHs[ids.MH(h)].IssueRequest(1, []byte{byte(r)})
			}
		})
		time.Sleep(15 * time.Millisecond)
		rt.Do(func() {
			for h := 1; h <= hosts; h++ {
				w.Migrate(ids.MH(h), ids.MSS((h+r)%3+1))
			}
		})
		time.Sleep(15 * time.Millisecond)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, c := range got {
			total += c
		}
		mu.Unlock()
		if total >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d results delivered", total, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	rt.Do(func() {
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants after soak: %v", err)
		}
	})
}

// TestFrameRoundTrip checks the wire codec on both stamped and
// unstamped frames.
func TestFrameRoundTrip(t *testing.T) {
	stamp := causal.NewMatrix(3)
	stamp[0][1] = 7
	stamp[2][0] = 42
	frames := []frame{
		{
			layer: netsim.LayerWired,
			from:  ids.MSS(1).Node(), to: ids.Server(1).Node(),
			m:        msg.ServerRequest{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1}, Payload: []byte("x")},
			hasStamp: true, stampFrom: 2, stamp: stamp,
		},
		{
			layer: netsim.LayerWireless,
			from:  ids.MH(1).Node(), to: ids.MSS(2).Node(),
			m: msg.Greet{MH: 1, OldMSS: 1},
		},
	}
	for _, f := range frames {
		b, err := encodeFrame(f)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := readFrame(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.layer != f.layer || got.from != f.from || got.to != f.to {
			t.Errorf("header mismatch: got %+v want %+v", got, f)
		}
		if got.hasStamp != f.hasStamp || got.stampFrom != f.stampFrom {
			t.Errorf("stamp meta mismatch: got %+v want %+v", got, f)
		}
		if f.hasStamp {
			for i := range f.stamp {
				for j := range f.stamp[i] {
					if got.stamp[i][j] != f.stamp[i][j] {
						t.Errorf("stamp[%d][%d] = %d, want %d", i, j, got.stamp[i][j], f.stamp[i][j])
					}
				}
			}
		}
		if got.m.Kind() != f.m.Kind() {
			t.Errorf("message kind %v, want %v", got.m.Kind(), f.m.Kind())
		}
	}
}

// TestFrameTruncation verifies every truncation point errors rather
// than hanging or mis-parsing.
func TestFrameTruncation(t *testing.T) {
	f := frame{
		layer: netsim.LayerWired,
		from:  ids.MSS(1).Node(), to: ids.Server(1).Node(),
		m:        msg.ServerRequest{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1}, Payload: []byte("payload")},
		hasStamp: true, stampFrom: 0, stamp: causal.NewMatrix(2),
	}
	b, err := encodeFrame(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := readFrame(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(b))
		}
	}
}

// TestAddrAndClose covers the endpoint-address accessor and the
// shutdown path: after Close, sends fail quietly instead of panicking,
// and conn() refuses new dials.
func TestAddrAndClose(t *testing.T) {
	rt := livenet.New(1)
	members := []ids.NodeID{ids.MSS(1).Node(), ids.Server(1).Node()}
	n := New(rt, members)
	if err := n.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	for _, m := range members {
		if n.Addr(m) == "" {
			t.Errorf("no address for %v", m)
		}
	}
	if n.Addr(ids.MSS(9).Node()) != "" {
		t.Error("address reported for a non-member")
	}
	n.Close()
	// Sending after Close must be a quiet no-op (conn() errors out).
	n.Send(ids.MSS(1).Node(), ids.Server(1).Node(),
		msg.ServerRequest{Proxy: ids.ProxyID{Host: 1, Seq: 1}, Req: ids.RequestID{Origin: 1, Seq: 1}})
}

// TestSendToNonMemberPanics verifies the programming-error guard.
func TestSendToNonMemberPanics(t *testing.T) {
	rt := livenet.New(1)
	n := New(rt, []ids.NodeID{ids.MSS(1).Node()})
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("send-from-non-member", func() {
		n.Send(ids.MSS(7).Node(), ids.MSS(1).Node(), msg.Greet{MH: 1})
	})
	assertPanics("send-to-non-member", func() {
		n.Send(ids.MSS(1).Node(), ids.Server(9).Node(), msg.Greet{MH: 1})
	})
}

// TestUplinkGateDropsAtSend covers the send-side radio gate: an uplink
// from a host the station cannot hear must not reach any handler.
func TestUplinkGateDropsAtSend(t *testing.T) {
	rt := livenet.New(1)
	n := New(rt, []ids.NodeID{ids.MSS(1).Node()})
	if err := n.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer n.Close()
	var got int
	n.RegisterMSS(1, netsim.HandlerFunc(func(ids.NodeID, msg.Message) { got++ }))
	n.SetReachable(func(ids.MSS, ids.MH) bool { return false })
	rt.Start()
	defer rt.Stop()
	rt.Do(func() { n.SendUplink(1, 1, msg.Join{MH: 1}) })
	time.Sleep(50 * time.Millisecond)
	rt.Do(func() {
		if got != 0 {
			t.Errorf("gated uplink delivered %d frames", got)
		}
	})
}

// TestOversizeFrameRejected covers the length guards in readFrame.
func TestOversizeFrameRejected(t *testing.T) {
	base := frame{
		layer: netsim.LayerWired,
		from:  ids.MSS(1).Node(), to: ids.MSS(2).Node(),
		m: msg.Greet{MH: 1},
	}
	b, err := encodeFrame(base)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Corrupt the stamp length (bytes 11..15) to exceed the 1 MiB cap.
	huge := append([]byte(nil), b...)
	huge[11], huge[12], huge[13], huge[14] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Error("huge stamp length accepted")
	}
	// Corrupt the body length (the 4 bytes after the empty stamp).
	huge = append([]byte(nil), b...)
	huge[15], huge[16], huge[17], huge[18] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Error("huge body length accepted")
	}
	// A stamp length that disagrees with its own n field must error.
	stamped := frame{
		layer: netsim.LayerWired,
		from:  ids.MSS(1).Node(), to: ids.MSS(2).Node(),
		m:        msg.Greet{MH: 1},
		hasStamp: true, stampFrom: 0, stamp: causal.NewMatrix(2),
	}
	sb, err := encodeFrame(stamped)
	if err != nil {
		t.Fatalf("encode stamped: %v", err)
	}
	sb[22]++ // bump n inside the stamp (header 11 + stampLen 4 + from 4 + 3) without resizing it
	if _, err := readFrame(bytes.NewReader(sb)); err == nil {
		t.Error("inconsistent stamp size accepted")
	}
}

// TestQueuedRPCOverTCP composes the §4 pairing over real sockets: a
// queued-RPC invocation issued while the host is disconnected is
// transmitted on reactivation, and the result comes back through the
// RDP proxy — reliable sending + reliable delivery end to end on TCP.
func TestQueuedRPCOverTCP(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = 0 // qrpc owns retransmission
	w, rt, _ := tcpWorld(t, cfg)

	done := make(chan []byte, 1)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		w.SetActive(1, false) // asleep before the invocation
		cli := qrpc.New(w, mh, qrpc.Options{Timeout: 50 * time.Millisecond})
		cli.Invoke(1, []byte("queued-while-off"), func(payload []byte) {
			done <- payload
		})
	})
	time.Sleep(150 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("reply arrived while the host was disconnected")
	default:
	}
	rt.Do(func() { w.SetActive(1, true) })
	select {
	case got := <-done:
		if !bytes.Contains(got, []byte("queued-while-off")) {
			t.Fatalf("reply %q does not echo the invocation", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued invocation never completed over TCP")
	}
}

// TestWireStats checks the byte/frame accounting: a request-response
// exchange produces traffic on both substrates, and wired frames carry
// the causal-stamp overhead (larger than their payload alone).
func TestWireStats(t *testing.T) {
	w, rt, n := tcpWorld(t, testConfig())
	done := make(chan struct{}, 1)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(_ ids.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- struct{}{}
			}
		})
		mh.IssueRequest(1, []byte("count-me"))
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("delivery timed out")
	}
	s := n.Stats()
	if s.WiredFrames == 0 || s.WirelessFrames == 0 {
		t.Fatalf("no traffic counted: %+v", s)
	}
	if s.WiredBytes <= s.WiredFrames*19 {
		t.Errorf("wired bytes %d too small for %d frames (no stamp overhead?)",
			s.WiredBytes, s.WiredFrames)
	}
	// Wired frames average larger than wireless ones: same header, plus
	// an n×n causal matrix per frame.
	if s.WiredBytes/s.WiredFrames <= s.WirelessBytes/s.WirelessFrames {
		t.Errorf("wired avg %d <= wireless avg %d; causal stamps missing",
			s.WiredBytes/s.WiredFrames, s.WirelessBytes/s.WirelessFrames)
	}
}

// TestARQOverLossyTCP reuses netsim's link-layer ARQ over the real
// sockets: a loss filter discards every third wired link-frame and every
// fifth link-ack, and the protocol must still deliver every result —
// retransmission recovers the frames, receiver-side dedup absorbs the
// copies that a lost ack forces the sender to repeat.
func TestARQOverLossyTCP(t *testing.T) {
	cfg := testConfig()
	rt := livenet.New(cfg.Seed)
	members := []ids.NodeID{}
	for i := 1; i <= cfg.NumMSS; i++ {
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	n := New(rt, members)
	n.EnableARQ(netsim.ARQConfig{RTO: 40 * time.Millisecond, MaxBackoff: 200 * time.Millisecond})
	var frames, acks int
	n.SetWiredLoss(func(_, _ ids.NodeID, m msg.Message) bool {
		switch m.Kind() {
		case msg.KindLinkFrame:
			frames++
			return frames%3 == 0
		case msg.KindLinkAck:
			acks++
			return acks%5 == 0
		}
		return false
	})
	if err := n.Start(); err != nil {
		t.Fatalf("tcpnet start: %v", err)
	}
	w := rdpcore.NewWorldWith(rt, cfg, n, n)
	n.SetReachable(w.Reachable)
	rt.Start()
	t.Cleanup(func() {
		rt.Stop()
		n.Close()
	})

	const reqs = 5
	done := make(chan ids.RequestID, reqs)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(req ids.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- req
			}
		})
		for i := 0; i < reqs; i++ {
			mh.IssueRequest(1, []byte("lossy"))
		}
	})
	for i := 0; i < reqs; i++ {
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("only %d of %d results delivered over the lossy link", i, reqs)
		}
	}
	rt.Do(func() {
		if n.ARQRetransmits() == 0 {
			t.Error("no ARQ retransmissions despite injected loss")
		}
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants after lossy run: %v", err)
		}
	})
}

// TestSendQueueLimitShedsAndRecovers mirrors netsim's bounded-queue
// contract on the TCP deployment: with a one-frame send window, a burst
// of requests must shed initial transmissions (Stats.WiredShed) yet
// still deliver every result, because shed frames stay registered with
// the ARQ and its retransmissions re-offer them as acks drain the link.
func TestSendQueueLimitShedsAndRecovers(t *testing.T) {
	cfg := testConfig()
	rt := livenet.New(cfg.Seed)
	members := []ids.NodeID{}
	for i := 1; i <= cfg.NumMSS; i++ {
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	n := New(rt, members)
	n.EnableARQ(netsim.ARQConfig{RTO: 40 * time.Millisecond, MaxBackoff: 200 * time.Millisecond})
	n.SetSendQueueLimit(1)
	// Loopback acks drain the window faster than the dispatcher can
	// offer frames; dropping the first few acks keeps frames un-acked
	// long enough for the burst to hit the one-frame window.
	var acks int
	n.SetWiredLoss(func(_, _ ids.NodeID, m msg.Message) bool {
		if m.Kind() == msg.KindLinkAck {
			acks++
			return acks <= 10
		}
		return false
	})
	if err := n.Start(); err != nil {
		t.Fatalf("tcpnet start: %v", err)
	}
	w := rdpcore.NewWorldWith(rt, cfg, n, n)
	n.SetReachable(w.Reachable)
	rt.Start()
	t.Cleanup(func() {
		rt.Stop()
		n.Close()
	})

	const reqs = 6
	done := make(chan ids.RequestID, reqs)
	rt.Do(func() {
		mh := w.AddMH(1, 1)
		mh.OnResult(func(req ids.RequestID, _ []byte, dup bool) {
			if !dup {
				done <- req
			}
		})
		for i := 0; i < reqs; i++ {
			mh.IssueRequest(1, []byte("burst"))
		}
	})
	for i := 0; i < reqs; i++ {
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatalf("only %d of %d results delivered with a bounded send queue", i, reqs)
		}
	}
	if s := n.Stats(); s.WiredShed == 0 {
		t.Error("no sheds recorded; one-frame send window never engaged")
	}
	rt.Do(func() {
		if err := w.CheckInvariants(); err != nil {
			t.Errorf("invariants after bounded-queue run: %v", err)
		}
	})
}
