// Package tcpnet runs the RDP substrates over real TCP sockets. The
// paper's authors planned to evaluate RDP as "distributed processes ...
// within a Linux network"; this package is that prototype: every
// station and server listens on its own loopback TCP endpoint, protocol
// messages travel as length-prefixed frames in the msg package's binary
// encoding, and the unchanged rdpcore state machines run on top (their
// handlers executed on a livenet runtime, which serializes them exactly
// as the authors' per-process event loops would).
//
// Wired messages additionally carry causal stamps (assumption 1 —
// per-connection TCP FIFO alone does not give cross-host causal order).
// Wireless frames also ride TCP here, with the radio semantics —
// delivery gated on cell membership and activity — enforced at the
// receiving edge, mirroring netsim. EnableARQ layers netsim's link-layer
// retransmission protocol under the causal stamps, for deployments where
// frames can be lost between the endpoints despite TCP.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/causal"
	"repro/internal/ids"
	"repro/internal/livenet"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/wtp"
)

// frame layout: layer(1) fromKind(1) fromNum(4) toKind(1) toNum(4)
// stampLen(4) stamp msgLen(4) msg. A non-empty stamp is
// from(4) n(4) followed by the n×n SENT matrix as uint64s.

// Net is one in-process "network" of TCP endpoints. All handler
// execution is posted to the runtime's dispatcher, so protocol state
// needs no locking — the same discipline as the simulation kernel.
type Net struct {
	rt      *livenet.Runtime
	members []ids.NodeID
	index   map[ids.NodeID]int

	mu        sync.Mutex
	addrs     map[ids.NodeID]string
	listeners []net.Listener
	conns     map[connKey]net.Conn
	closed    bool

	eps []*causal.Endpoint // wired causal layer (dispatcher-only access)

	wiredHandlers map[ids.NodeID]netsim.Handler
	mhHandlers    map[ids.MH]netsim.Handler
	mssHandlers   map[ids.MSS]netsim.Handler

	reachable func(ids.MSS, ids.MH) bool

	// Link-layer ARQ (EnableARQ), sharing netsim's sender/receiver halves.
	// All three fields are dispatcher-only, like the protocol state.
	arqCfg    netsim.ARQConfig
	arqOut    map[connKey]*arqLink
	arqIn     map[connKey]*netsim.ARQReceiver
	wiredLoss func(from, to ids.NodeID, m msg.Message) bool
	sendLimit int

	// Windowed wireless transport (EnableWTP), sharing internal/wtp's
	// sender/receiver halves per directed downlink. Dispatcher-only.
	wtpCfg wtp.Config
	wtpOut map[connKey]*wtp.Sender
	wtpIn  map[connKey]*wtp.Receiver

	stats struct {
		sync.Mutex
		wiredFrames, wiredBytes       uint64
		wirelessFrames, wirelessBytes uint64
		wiredShed                     uint64
	}
}

// Stats reports cumulative wire-level traffic: frames and bytes written
// to TCP connections, per substrate. Bytes include the frame header and
// (for wired traffic) the causal stamp, so the wired figure measures
// the real cost of assumption 1 on this deployment.
type Stats struct {
	WiredFrames, WiredBytes       uint64
	WirelessFrames, WirelessBytes uint64
	// WiredShed counts initial transmissions skipped by the bounded
	// send queue (SetSendQueueLimit); the ARQ re-offers them later.
	WiredShed uint64
}

// Stats returns a snapshot of the wire-level counters.
func (n *Net) Stats() Stats {
	n.stats.Lock()
	defer n.stats.Unlock()
	return Stats{
		WiredFrames: n.stats.wiredFrames, WiredBytes: n.stats.wiredBytes,
		WirelessFrames: n.stats.wirelessFrames, WirelessBytes: n.stats.wirelessBytes,
		WiredShed: n.stats.wiredShed,
	}
}

func (n *Net) countShed() {
	n.stats.Lock()
	defer n.stats.Unlock()
	n.stats.wiredShed++
}

func (n *Net) countFrame(layer netsim.Layer, bytes int) {
	n.stats.Lock()
	defer n.stats.Unlock()
	if layer == netsim.LayerWired {
		n.stats.wiredFrames++
		n.stats.wiredBytes += uint64(bytes)
	} else {
		n.stats.wirelessFrames++
		n.stats.wirelessBytes += uint64(bytes)
	}
}

type connKey struct{ from, to ids.NodeID }

// New creates a network for a fixed set of wired members (stations and
// servers). Mobile hosts need no endpoint of their own: their radio
// traffic terminates at their current station's endpoint, as it would
// in a real cell.
func New(rt *livenet.Runtime, members []ids.NodeID) *Net {
	n := &Net{
		rt:            rt,
		members:       append([]ids.NodeID(nil), members...),
		index:         make(map[ids.NodeID]int, len(members)),
		addrs:         make(map[ids.NodeID]string, len(members)),
		conns:         make(map[connKey]net.Conn),
		wiredHandlers: make(map[ids.NodeID]netsim.Handler),
		mhHandlers:    make(map[ids.MH]netsim.Handler),
		mssHandlers:   make(map[ids.MSS]netsim.Handler),
	}
	for i, m := range members {
		n.index[m] = i
	}
	n.eps = causal.Group(len(members), func(dst int, payload any) {
		p := payload.(wiredDelivery)
		h := n.wiredHandlers[p.to]
		if h != nil {
			h.HandleMessage(p.from, p.m)
		}
	})
	return n
}

type wiredDelivery struct {
	from ids.NodeID
	to   ids.NodeID
	m    msg.Message
}

// SetReachable installs the radio gate (the world's cell/activity
// oracle). Must be set before traffic flows.
func (n *Net) SetReachable(f func(ids.MSS, ids.MH) bool) { n.reachable = f }

// --- wired link-layer ARQ ---

// arqLink is the send half of the ARQ for one directed TCP link plus the
// framed payloads awaiting acknowledgement, kept verbatim (causal stamp
// included) so retransmissions are byte-identical to the original.
type arqLink struct {
	s      *netsim.ARQSender
	frames map[uint64]frame
}

// EnableARQ layers the netsim link-layer ARQ — sequence numbers,
// positive acks, capped-exponential retransmission, receiver dedup —
// over every wired TCP link, exactly as Wired layers it over simulated
// links. TCP is already reliable per connection, so the ARQ earns its
// keep only when frames can vanish between the endpoints: a lossy
// overlay installed with SetWiredLoss, or a peer process crash taking
// its accepted-but-unprocessed frames with it. Retransmission timers run
// on the runtime's dispatcher. Call before Start.
func (n *Net) EnableARQ(cfg netsim.ARQConfig) {
	cfg.Enabled = true
	n.arqCfg = cfg
	n.arqOut = make(map[connKey]*arqLink)
	n.arqIn = make(map[connKey]*netsim.ARQReceiver)
}

// EnableWTP layers the windowed wireless transport (internal/wtp, E15)
// over every downlink, exactly as Wireless layers it over simulated
// radio links and the way EnableARQ mirrors the wired ARQ: coalesced
// WtpData frames ride the same TCP path as plain radio frames, the
// radio gate still applies at the receiving edge, acks travel the
// reverse direction, and control signaling (netsim.WirelessControl)
// bypasses the window. Retransmission and coalescing timers run on the
// runtime's dispatcher. Call before Start.
func (n *Net) EnableWTP(cfg wtp.Config) {
	cfg.Enabled = true
	n.wtpCfg = cfg
	n.wtpOut = make(map[connKey]*wtp.Sender)
	n.wtpIn = make(map[connKey]*wtp.Receiver)
}

// WTPRetransmits sums windowed-transport retransmissions across all
// downlinks. Dispatcher-only, like the transport state it reads.
func (n *Net) WTPRetransmits() int64 {
	var total int64
	for _, s := range n.wtpOut {
		total += s.Retransmits
	}
	return total
}

// wtpLinkFor returns (creating on first use) the send-side windowed
// transport of the from→to downlink.
func (n *Net) wtpLinkFor(from ids.MSS, to ids.MH) *wtp.Sender {
	key := connKey{from: from.Node(), to: to.Node()}
	s := n.wtpOut[key]
	if s == nil {
		s = wtp.NewSender(n.rt, n.wtpCfg, func(f msg.WtpData) {
			n.write(frame{layer: netsim.LayerWireless, from: from.Node(), to: to.Node(), m: f, via: from.Node()})
		})
		n.wtpOut[key] = s
	}
	return s
}

// SetWiredLoss installs a wired loss filter for fault testing: a frame
// for which it returns true is silently discarded instead of written
// (the TCP analogue of netsim's injected drops). Call before Start; the
// filter runs on the dispatcher.
func (n *Net) SetWiredLoss(f func(from, to ids.NodeID, m msg.Message) bool) {
	n.wiredLoss = f
}

// SetSendQueueLimit bounds the number of un-acked frames in flight on
// each directed wired link — the TCP deployment's mirror of netsim's
// WiredConfig.QueueLimit. When a new send would exceed the limit its
// initial transmission is skipped (counted in Stats.WiredShed); the
// frame stays registered with the ARQ sender, whose retransmission
// timer re-offers it once acks have drained the queue, so the limit is
// backpressure, not loss. Requires EnableARQ (ignored without it, since
// shedding below a bare TCP link would silently lose the frame). Call
// before Start.
func (n *Net) SetSendQueueLimit(limit int) { n.sendLimit = limit }

// ARQRetransmits sums timeout-driven re-sends across all wired links.
// Dispatcher-only, like the ARQ state it reads.
func (n *Net) ARQRetransmits() int64 {
	var total int64
	for _, l := range n.arqOut {
		total += l.s.Retransmits
	}
	return total
}

// arqLinkFor returns (creating on first use) the send-side ARQ state of
// the from→to link.
func (n *Net) arqLinkFor(key connKey) *arqLink {
	l := n.arqOut[key]
	if l == nil {
		l = &arqLink{frames: make(map[uint64]frame)}
		l.s = netsim.NewARQSender(n.rt, n.arqCfg, func(seq uint64, attempt int) {
			fr, ok := l.frames[seq]
			if !ok {
				return
			}
			// Bounded send queue: shed the *initial* attempt when the
			// link already carries sendLimit un-acked frames (the frame
			// itself is counted, hence the strict >). Retransmissions
			// always go out so the queue is guaranteed to drain.
			if n.sendLimit > 0 && attempt == 1 && len(l.frames) > n.sendLimit {
				n.countShed()
				return
			}
			n.write(fr)
		})
		n.arqOut[key] = l
	}
	return l
}

// Start opens one loopback TCP listener per member and begins accepting.
func (n *Net) Start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, m := range n.members {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("tcpnet: listen for %v: %w", m, err)
		}
		n.listeners = append(n.listeners, ln)
		n.addrs[m] = ln.Addr().String()
		go n.acceptLoop(ln)
	}
	return nil
}

// Close shuts the listeners and connections down.
func (n *Net) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.closed = true
	for _, ln := range n.listeners {
		ln.Close()
	}
	for _, c := range n.conns {
		c.Close()
	}
}

// Addr returns the TCP address a member listens on (diagnostics).
func (n *Net) Addr(m ids.NodeID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.addrs[m]
}

func (n *Net) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go n.readLoop(conn)
	}
}

func (n *Net) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		n.rt.Post(func() { n.dispatch(f) })
	}
}

// dispatch runs on the dispatcher goroutine.
func (n *Net) dispatch(f frame) {
	switch f.layer {
	case netsim.LayerWired:
		// The ARQ layer sits under causal delivery: frames are unwrapped
		// (and deduped) here, acks are consumed here, and only first
		// copies of inner messages continue up the stack.
		if n.arqCfg.Enabled {
			switch lm := f.m.(type) {
			case msg.LinkFrame:
				// Ack every copy — the ack for an earlier one may be lost.
				n.write(frame{layer: netsim.LayerWired, from: f.to, to: f.from, m: msg.LinkAck{Seq: lm.Seq}})
				key := connKey{from: f.from, to: f.to}
				r := n.arqIn[key]
				if r == nil {
					r = netsim.NewARQReceiver()
					n.arqIn[key] = r
				}
				if !r.Accept(lm.Seq) {
					return // retransmitted copy of a frame already delivered
				}
				f.m = lm.Inner
			case msg.LinkAck:
				if l := n.arqOut[connKey{from: f.to, to: f.from}]; l != nil {
					l.s.Ack(lm.Seq)
					delete(l.frames, lm.Seq)
				}
				return
			}
		}
		ti, ok := n.index[f.to]
		if !ok {
			return
		}
		p := wiredDelivery{from: f.from, to: f.to, m: f.m}
		if f.hasStamp {
			n.eps[ti].Receive(causal.Stamp{From: f.stampFrom, Sent: f.stamp}, p)
			return
		}
		if h := n.wiredHandlers[f.to]; h != nil {
			h.HandleMessage(f.from, f.m)
		}
	case netsim.LayerWireless:
		if f.to.Kind == ids.KindMH {
			// Downlink: the radio gate applies at delivery time.
			mh := f.to.MH()
			mss := f.from.MSS()
			if n.reachable == nil || !n.reachable(mss, mh) {
				return
			}
			if wf, isWtp := f.m.(msg.WtpData); isWtp && n.wtpCfg.Enabled {
				// Windowed frame: reorder/dedup at the mobile edge, hand
				// the coalesced messages up in order, ack on the reverse
				// link (terminating at the serving station's endpoint).
				key := connKey{from: f.from, to: f.to}
				r := n.wtpIn[key]
				if r == nil {
					r = wtp.NewReceiver(n.wtpCfg)
					n.wtpIn[key] = r
				}
				deliver, ack, live := r.Accept(wf)
				if !live {
					return
				}
				h := n.mhHandlers[mh]
				for _, in := range deliver {
					if h != nil {
						h.HandleMessage(f.from, in)
					}
				}
				n.write(frame{layer: netsim.LayerWireless, from: f.to, to: f.from, m: ack, via: f.from})
				return
			}
			if h := n.mhHandlers[mh]; h != nil {
				h.HandleMessage(f.from, f.m)
			}
			return
		}
		if wa, isAck := f.m.(msg.WtpAck); isAck && n.wtpCfg.Enabled {
			// Transport ack: terminates inside the sender, never at the
			// station's protocol handler.
			if s := n.wtpOut[connKey{from: f.to, to: f.from}]; s != nil {
				s.OnAck(wa)
			}
			return
		}
		if h := n.mssHandlers[f.to.MSS()]; h != nil {
			h.HandleMessage(f.from, f.m)
		}
	}
}

// --- netsim.WiredTransport ---

// Send transmits a wired message with a causal stamp. It must be called
// from the dispatcher (protocol handlers always are).
func (n *Net) Send(from, to ids.NodeID, m msg.Message) {
	fi, ok := n.index[from]
	if !ok {
		panic(fmt.Sprintf("tcpnet: wired send from non-member %v", from))
	}
	ti, ok := n.index[to]
	if !ok {
		panic(fmt.Sprintf("tcpnet: wired send to non-member %v", to))
	}
	st := n.eps[fi].Send(ti)
	f := frame{
		layer: netsim.LayerWired, from: from, to: to, m: m,
		hasStamp: true, stampFrom: st.From, stamp: st.Sent,
	}
	if !n.arqCfg.Enabled {
		n.write(f)
		return
	}
	// The causal stamp is taken once, here; every retransmission carries
	// the original stamp so the receiver's causal layer sees one send.
	l := n.arqLinkFor(connKey{from: from, to: to})
	l.s.Send(func(seq uint64) {
		wf := f
		wf.m = msg.LinkFrame{Seq: seq, Inner: m}
		l.frames[seq] = wf
	})
}

// Register implements netsim.WiredTransport.
func (n *Net) Register(node ids.NodeID, h netsim.Handler) {
	n.wiredHandlers[node] = h
}

// --- netsim.WirelessTransport ---

// SendDownlink transmits a radio frame to a mobile host. The frame is
// routed to the sending station's own endpoint and the radio gate —
// still in the cell, still active — applies at delivery time there,
// mirroring netsim's delivery-time reachability check.
func (n *Net) SendDownlink(from ids.MSS, to ids.MH, m msg.Message) {
	if n.wtpCfg.Enabled && !netsim.WirelessControl(m) {
		n.wtpLinkFor(from, to).Queue(m)
		return
	}
	n.write(frame{layer: netsim.LayerWireless, from: from.Node(), to: to.Node(), m: m, via: from.Node()})
}

// SendUplink transmits from a mobile host to a station; like netsim,
// the radio gate applies at send time.
func (n *Net) SendUplink(from ids.MH, to ids.MSS, m msg.Message) {
	if n.reachable == nil || !n.reachable(to, from) {
		return
	}
	n.write(frame{layer: netsim.LayerWireless, from: from.Node(), to: to.Node(), m: m, via: to.Node()})
}

// RegisterMH implements netsim.WirelessTransport.
func (n *Net) RegisterMH(mh ids.MH, h netsim.Handler) { n.mhHandlers[mh] = h }

// RegisterMSS implements netsim.WirelessTransport.
func (n *Net) RegisterMSS(mss ids.MSS, h netsim.Handler) { n.mssHandlers[mss] = h }

var (
	_ netsim.WiredTransport    = (*Net)(nil)
	_ netsim.WirelessTransport = (*Net)(nil)
)

// write frames and sends a message over the (lazily dialed) connection
// toward the endpoint that must process it.
func (n *Net) write(f frame) {
	if f.layer == netsim.LayerWired && n.wiredLoss != nil && n.wiredLoss(f.from, f.to, f.m) {
		return
	}
	dest := f.to
	if f.via.Valid() {
		// Wireless frames terminate at the serving station's endpoint:
		// the radio is physically part of that cell.
		dest = f.via
	}
	conn, err := n.conn(f.from, dest)
	if err != nil {
		return // endpoint gone (shutdown)
	}
	bp := msg.GetBuffer()
	b, err := appendFrame(*bp, f)
	if err != nil {
		msg.PutBuffer(bp)
		panic(fmt.Sprintf("tcpnet: encode: %v", err))
	}
	*bp = b[:0]
	_, err = conn.Write(b)
	size := len(b)
	msg.PutBuffer(bp)
	if err != nil {
		n.dropConn(f.from, dest)
		return
	}
	n.countFrame(f.layer, size)
}

func (n *Net) conn(from, to ids.NodeID) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("tcpnet: closed")
	}
	key := connKey{from: from, to: to}
	if c, ok := n.conns[key]; ok {
		return c, nil
	}
	addr, ok := n.addrs[to]
	if !ok {
		return nil, fmt.Errorf("tcpnet: no endpoint for %v", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	n.conns[key] = c
	return c, nil
}

func (n *Net) dropConn(from, to ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := connKey{from: from, to: to}
	if c, ok := n.conns[key]; ok {
		c.Close()
		delete(n.conns, key)
	}
}

// frame is one on-the-wire unit.
type frame struct {
	layer     netsim.Layer
	from, to  ids.NodeID
	via       ids.NodeID // endpoint that terminates the frame (wireless)
	m         msg.Message
	hasStamp  bool
	stampFrom int
	stamp     causal.Matrix
}

// encodeFrame serializes a frame (header + stamp + message) into a
// fresh buffer. The write path uses appendFrame with a pooled buffer
// instead.
func encodeFrame(f frame) ([]byte, error) {
	return appendFrame(nil, f)
}

// appendFrame serializes a frame onto dst, writing the stamp and the
// message body in place (behind length placeholders patched afterwards)
// so framing needs no intermediate buffers.
func appendFrame(dst []byte, f frame) ([]byte, error) {
	out := dst
	out = append(out, byte(f.layer), byte(f.from.Kind))
	out = binary.BigEndian.AppendUint32(out, f.from.Num)
	out = append(out, byte(f.to.Kind))
	out = binary.BigEndian.AppendUint32(out, f.to.Num)
	stampLenAt := len(out)
	out = binary.BigEndian.AppendUint32(out, 0)
	if f.hasStamp {
		nn := len(f.stamp)
		out = binary.BigEndian.AppendUint32(out, uint32(f.stampFrom))
		out = binary.BigEndian.AppendUint32(out, uint32(nn))
		for i := 0; i < nn; i++ {
			for j := 0; j < nn; j++ {
				out = binary.BigEndian.AppendUint64(out, f.stamp[i][j])
			}
		}
		binary.BigEndian.PutUint32(out[stampLenAt:], uint32(len(out)-stampLenAt-4))
	}
	bodyLenAt := len(out)
	out = binary.BigEndian.AppendUint32(out, 0)
	out, err := msg.AppendEncode(out, f.m)
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(out[bodyLenAt:], uint32(len(out)-bodyLenAt-4))
	return out, nil
}

// readFrame reads one frame from the stream.
func readFrame(r io.Reader) (frame, error) {
	var f frame
	head := make([]byte, 11)
	if _, err := io.ReadFull(r, head); err != nil {
		return f, err
	}
	f.layer = netsim.Layer(head[0])
	f.from = ids.NodeID{Kind: ids.NodeKind(head[1]), Num: binary.BigEndian.Uint32(head[2:])}
	f.to = ids.NodeID{Kind: ids.NodeKind(head[6]), Num: binary.BigEndian.Uint32(head[7:])}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return f, err
	}
	stampLen := binary.BigEndian.Uint32(lenBuf[:])
	if stampLen > 1<<20 {
		return f, errors.New("tcpnet: stamp too large")
	}
	if stampLen > 0 {
		if stampLen < 8 {
			return f, errors.New("tcpnet: stamp too short")
		}
		stamp := make([]byte, stampLen)
		if _, err := io.ReadFull(r, stamp); err != nil {
			return f, err
		}
		f.hasStamp = true
		f.stampFrom = int(binary.BigEndian.Uint32(stamp[0:]))
		nn := int(binary.BigEndian.Uint32(stamp[4:]))
		// The size consistency check runs in uint64 so a huge nn cannot
		// wrap back onto stampLen and trigger an n×n allocation.
		if nn < 0 || 8+uint64(nn)*uint64(nn)*8 != uint64(stampLen) {
			return f, errors.New("tcpnet: stamp size mismatch")
		}
		if f.stampFrom < 0 || f.stampFrom >= nn {
			return f, errors.New("tcpnet: stamp sender out of range")
		}
		f.stamp = causal.NewMatrix(nn)
		off := 8
		for i := 0; i < nn; i++ {
			for j := 0; j < nn; j++ {
				f.stamp[i][j] = binary.BigEndian.Uint64(stamp[off:])
				off += 8
			}
		}
	}
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return f, err
	}
	bodyLen := binary.BigEndian.Uint32(lenBuf[:])
	if bodyLen > 1<<24 {
		return f, errors.New("tcpnet: body too large")
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return f, err
	}
	m, err := msg.Decode(body)
	if err != nil {
		return f, err
	}
	f.m = m
	return f, nil
}
