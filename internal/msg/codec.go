package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
)

// Wire format: one version byte, one kind byte, then the message fields
// in declaration order. Integers are big-endian; byte slices and lists
// are length-prefixed with a uint32. The format is intentionally simple:
// the simulator moves millions of messages and the codec sits on the hot
// path of the livenet runtime.
//
// Two encode entry points exist: Encode allocates a fresh buffer, and
// AppendEncode appends to a caller-owned one so steady-state encoding
// reuses storage. Decode mirrors that split: it allocates copies of all
// variable-length fields, while DecodeInto fills a caller-owned struct
// and aliases payloads into the input buffer, allocating nothing.
const codecVersion = 1

// Codec errors. ErrTruncated and ErrBadMessage are matched by callers
// that inject corruption in tests.
var (
	ErrBadVersion = errors.New("msg: unsupported codec version")
	ErrBadKind    = errors.New("msg: unknown message kind")
	ErrTruncated  = errors.New("msg: truncated message")
	ErrTrailing   = errors.New("msg: trailing bytes after message")
	ErrBadNesting = errors.New("msg: link frame may not nest a link-layer message")
)

// maxSliceLen bounds decoded slice lengths to keep a corrupted length
// prefix from causing a huge allocation.
const maxSliceLen = 1 << 24

// Encode serializes a message into a fresh buffer. It never fails for
// messages constructed through this package's types; the error return
// guards against a user-defined Message implementation with an unknown
// kind.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 64), m)
}

// AppendEncode serializes a message, appending to dst (which may be
// nil). It returns the extended buffer, so a caller that recycles its
// buffer across messages encodes without allocating.
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	e := encoder{buf: dst}
	if err := e.message(m); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// message appends one full version+kind+fields encoding.
func (e *encoder) message(m Message) error {
	e.u8(codecVersion)
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case Join:
		e.u32(uint32(v.MH))
	case Leave:
		e.u32(uint32(v.MH))
	case Greet:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.OldMSS))
		e.inc(v.Inc)
	case Request:
		e.req(v.Req)
		e.u32(uint32(v.Server))
		e.bytes(v.Payload)
		e.inc(v.Inc)
	case ResultDeliver:
		e.req(v.Req)
		e.bytes(v.Payload)
		e.bool(v.DelPref)
		e.inc(v.Inc)
	case AckMH:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bool(v.HaveOutstanding)
	case Dereg:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.NewMSS))
	case DeregAck:
		e.u32(uint32(v.MH))
		e.pref(v.Pref)
		e.inc(v.Inc)
	case RequestForward:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.u32(uint32(v.Server))
		e.bytes(v.Payload)
		e.inc(v.Inc)
	case UpdateCurrentLoc:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.u32(uint32(v.NewLoc))
	case ResultForward:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
		e.bool(v.DelPref)
		e.inc(v.Inc)
	case AckForward:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bool(v.DelProxy)
	case DelPrefOnly:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
	case ServerRequest:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Payload)
	case ServerResult:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Payload)
	case ServerAck:
		e.req(v.Req)
	case MIPRegister:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.CareOf))
	case MIPData:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
	case MIPTunnel:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
	case ImageTransfer:
		e.u32(uint32(v.MH))
		e.u32(uint32(len(v.Pending)))
		for _, r := range v.Pending {
			e.req(r)
		}
		e.u32(uint32(len(v.Results)))
		for _, b := range v.Results {
			e.bytes(b)
		}
	case TISQuery:
		e.u64(v.QID)
		e.u32(uint32(v.Origin))
		e.u8(uint8(v.Op))
		e.u32(v.Region)
		e.u32(uint32(v.Value))
		e.u8(v.Hops)
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Data)
	case TISDeliver:
		e.u32(uint32(v.Member))
		e.u32(v.Group)
		e.u64(v.Seq)
		e.bytes(v.Data)
	case TISReply:
		e.u64(v.QID)
		e.u32(v.Region)
		e.u32(uint32(v.Value))
		e.u64(uint64(v.Stamp))
		e.u8(v.Hops)
	case LinkFrame:
		if v.Inner == nil {
			return fmt.Errorf("%w: nil inner message", ErrBadKind)
		}
		if k := v.Inner.Kind(); k == KindLinkFrame || k == KindLinkAck {
			return ErrBadNesting
		}
		// The inner message is encoded in place behind a length
		// placeholder (patched below) instead of through a recursive
		// Encode, so framing costs no intermediate buffer.
		e.u64(v.Seq)
		lenAt := len(e.buf)
		e.u32(0)
		if err := e.message(v.Inner); err != nil {
			return err
		}
		binary.BigEndian.PutUint32(e.buf[lenAt:], uint32(len(e.buf)-lenAt-4))
	case LinkAck:
		e.u64(v.Seq)
	case RegConfirm:
		e.u32(uint32(v.MH))
	case Busy:
		e.req(v.Req)
	case Admit:
		e.req(v.Req)
	case MigOffer:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.u32(v.Pending)
		e.u32(v.HostLoad)
		e.bool(v.LoadCheck)
	case MigCommit:
		e.proxy(v.Proxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
		e.bool(v.Accept)
	case MigState:
		e.proxy(v.Proxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
		e.u32(uint32(v.CurrentLoc))
		e.u32(uint32(len(v.Reqs)))
		for _, r := range v.Reqs {
			e.req(r.Req)
			e.u32(uint32(r.Server))
			e.bytes(r.Payload)
			e.bytes(r.Result)
			e.bool(r.HasResult)
			e.bool(r.Forwarded)
			e.batch(r.Batch)
			e.inc(r.Inc)
		}
		e.u32(uint32(len(v.Batches)))
		for _, b := range v.Batches {
			e.batch(b.Batch)
			e.u32(b.Expected)
			e.bool(b.Committed)
			e.bool(b.Released)
			e.bool(b.Aborted)
			e.inc(b.Inc)
		}
		e.inc(v.LeaseInc)
	case PrefRedirect:
		e.u32(uint32(v.MH))
		e.proxy(v.OldProxy)
		e.proxy(v.NewProxy)
		e.req(v.Req)
		e.bool(v.Confirm)
	case MigGC:
		e.proxy(v.OldProxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
	case BatchOpen:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.batch(v.Batch)
		e.inc(v.Inc)
	case BatchItem:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.batch(v.Batch)
		e.req(v.Req)
		e.u32(uint32(v.Server))
		e.bytes(v.Payload)
		e.inc(v.Inc)
	case BatchCommit:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.batch(v.Batch)
		e.u32(v.Count)
	case BatchAbort:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.batch(v.Batch)
		e.u32(uint32(len(v.Reqs)))
		for _, r := range v.Reqs {
			e.req(r)
		}
	case Register:
		e.u32(uint32(v.MH))
		e.inc(v.Inc)
	case LeaseHeartbeat:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.inc(v.Inc)
	case ReclaimMemo:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.inc(v.Inc)
	case WtpData:
		e.u64(v.Epoch)
		e.u64(v.Seq)
		e.u32(uint32(len(v.Inner)))
		for _, in := range v.Inner {
			if in == nil {
				return fmt.Errorf("%w: nil inner message", ErrBadKind)
			}
			if k := in.Kind(); k == KindLinkFrame || k == KindLinkAck || k == KindWtpData || k == KindWtpAck {
				return ErrBadNesting
			}
			// Same in-place framing trick as LinkFrame: each inner
			// message sits behind a patched length prefix, so a
			// coalesced frame costs no intermediate buffers.
			lenAt := len(e.buf)
			e.u32(0)
			if err := e.message(in); err != nil {
				return err
			}
			binary.BigEndian.PutUint32(e.buf[lenAt:], uint32(len(e.buf)-lenAt-4))
		}
	case WtpAck:
		e.u64(v.Epoch)
		e.u64(v.Cum)
		e.u32(uint32(len(v.Sacks)))
		for _, s := range v.Sacks {
			e.u64(s)
		}
	case GroupUpdateLoc:
		e.proxy(v.Proxy)
		e.u32(uint32(v.NewLoc))
		e.bytes(v.Members)
	case GroupAckForward:
		e.proxy(v.Proxy)
		e.bytes(v.Members)
		e.u32(uint32(len(v.Seqs)))
		for _, s := range v.Seqs {
			e.u32(s)
		}
	default:
		return fmt.Errorf("%w: %T", ErrBadKind, m)
	}
	return nil
}

// Per-kind field decoders, shared by Decode (which boxes the result
// into the Message interface) and DecodeInto (which writes it straight
// into a caller-owned struct). Each reads exactly the fields its encode
// case wrote; errors latch in the decoder.

func decJoin(d *decoder) Join   { return Join{MH: ids.MH(d.u32())} }
func decLeave(d *decoder) Leave { return Leave{MH: ids.MH(d.u32())} }
func decGreet(d *decoder) Greet {
	return Greet{MH: ids.MH(d.u32()), OldMSS: ids.MSS(d.u32()), Inc: d.inc()}
}

func decRequest(d *decoder) Request {
	return Request{Req: d.req(), Server: ids.Server(d.u32()), Payload: d.bytes(), Inc: d.inc()}
}

func decResultDeliver(d *decoder) ResultDeliver {
	return ResultDeliver{Req: d.req(), Payload: d.bytes(), DelPref: d.bool(), Inc: d.inc()}
}

func decAckMH(d *decoder) AckMH {
	return AckMH{MH: ids.MH(d.u32()), Req: d.req(), HaveOutstanding: d.bool()}
}

func decDereg(d *decoder) Dereg {
	return Dereg{MH: ids.MH(d.u32()), NewMSS: ids.MSS(d.u32())}
}

func decDeregAck(d *decoder) DeregAck {
	return DeregAck{MH: ids.MH(d.u32()), Pref: d.pref(), Inc: d.inc()}
}

func decRequestForward(d *decoder) RequestForward {
	return RequestForward{Proxy: d.proxy(), Req: d.req(), Server: ids.Server(d.u32()), Payload: d.bytes(), Inc: d.inc()}
}

func decUpdateCurrentLoc(d *decoder) UpdateCurrentLoc {
	return UpdateCurrentLoc{Proxy: d.proxy(), MH: ids.MH(d.u32()), NewLoc: ids.MSS(d.u32())}
}

func decResultForward(d *decoder) ResultForward {
	return ResultForward{Proxy: d.proxy(), MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes(), DelPref: d.bool(), Inc: d.inc()}
}

func decAckForward(d *decoder) AckForward {
	return AckForward{Proxy: d.proxy(), MH: ids.MH(d.u32()), Req: d.req(), DelProxy: d.bool()}
}

func decDelPrefOnly(d *decoder) DelPrefOnly {
	return DelPrefOnly{Proxy: d.proxy(), MH: ids.MH(d.u32())}
}

func decServerRequest(d *decoder) ServerRequest {
	return ServerRequest{Proxy: d.proxy(), Req: d.req(), Payload: d.bytes()}
}

func decServerResult(d *decoder) ServerResult {
	return ServerResult{Proxy: d.proxy(), Req: d.req(), Payload: d.bytes()}
}

func decServerAck(d *decoder) ServerAck { return ServerAck{Req: d.req()} }

func decMIPRegister(d *decoder) MIPRegister {
	return MIPRegister{MH: ids.MH(d.u32()), CareOf: ids.MSS(d.u32())}
}

func decMIPData(d *decoder) MIPData {
	return MIPData{MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes()}
}

func decMIPTunnel(d *decoder) MIPTunnel {
	return MIPTunnel{MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes()}
}

func decImageTransfer(d *decoder) ImageTransfer {
	it := ImageTransfer{MH: ids.MH(d.u32())}
	n := d.len()
	if n > 0 && d.err == nil {
		it.Pending = make([]ids.RequestID, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		it.Pending = append(it.Pending, d.req())
	}
	n = d.len()
	if n > 0 && d.err == nil {
		it.Results = make([][]byte, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		it.Results = append(it.Results, d.bytes())
	}
	return it
}

func decTISQuery(d *decoder) TISQuery {
	return TISQuery{
		QID:    d.u64(),
		Origin: ids.Server(d.u32()),
		Op:     TISOp(d.u8()),
		Region: d.u32(),
		Value:  int32(d.u32()),
		Hops:   d.u8(),
		Proxy:  d.proxy(),
		Req:    d.req(),
		Data:   d.bytes(),
	}
}

func decTISDeliver(d *decoder) TISDeliver {
	return TISDeliver{
		Member: ids.MH(d.u32()),
		Group:  d.u32(),
		Seq:    d.u64(),
		Data:   d.bytes(),
	}
}

func decTISReply(d *decoder) TISReply {
	return TISReply{
		QID:    d.u64(),
		Region: d.u32(),
		Value:  int32(d.u32()),
		Stamp:  int64(d.u64()),
		Hops:   d.u8(),
	}
}

// decLinkFrame decodes the frame header and recursively decodes the
// inner message (which always allocates; link frames are not on the
// zero-alloc path).
func decLinkFrame(d *decoder) (LinkFrame, error) {
	seq := d.u64()
	body := d.bytes()
	if d.err != nil {
		return LinkFrame{}, d.err
	}
	inner, err := Decode(body)
	if err != nil {
		return LinkFrame{}, fmt.Errorf("msg: link frame inner: %w", err)
	}
	if k := inner.Kind(); k == KindLinkFrame || k == KindLinkAck {
		return LinkFrame{}, ErrBadNesting
	}
	return LinkFrame{Seq: seq, Inner: inner}, nil
}

func decLinkAck(d *decoder) LinkAck { return LinkAck{Seq: d.u64()} }

func decRegConfirm(d *decoder) RegConfirm { return RegConfirm{MH: ids.MH(d.u32())} }
func decBusy(d *decoder) Busy             { return Busy{Req: d.req()} }
func decAdmit(d *decoder) Admit           { return Admit{Req: d.req()} }

func decMigOffer(d *decoder) MigOffer {
	return MigOffer{Proxy: d.proxy(), MH: ids.MH(d.u32()), Pending: d.u32(), HostLoad: d.u32(), LoadCheck: d.bool()}
}

func decMigCommit(d *decoder) MigCommit {
	return MigCommit{Proxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32()), Accept: d.bool()}
}

func decMigState(d *decoder) MigState {
	ms := MigState{Proxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32()), CurrentLoc: ids.MSS(d.u32())}
	n := d.len()
	if n > 0 && d.err == nil {
		ms.Reqs = make([]MigReqState, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		ms.Reqs = append(ms.Reqs, MigReqState{
			Req:       d.req(),
			Server:    ids.Server(d.u32()),
			Payload:   d.bytes(),
			Result:    d.bytes(),
			HasResult: d.bool(),
			Forwarded: d.bool(),
			Batch:     d.batch(),
			Inc:       d.inc(),
		})
	}
	n = d.len()
	if n > 0 && d.err == nil {
		ms.Batches = make([]MigBatchState, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		ms.Batches = append(ms.Batches, MigBatchState{
			Batch:     d.batch(),
			Expected:  d.u32(),
			Committed: d.bool(),
			Released:  d.bool(),
			Aborted:   d.bool(),
			Inc:       d.inc(),
		})
	}
	ms.LeaseInc = d.inc()
	return ms
}

func decPrefRedirect(d *decoder) PrefRedirect {
	return PrefRedirect{MH: ids.MH(d.u32()), OldProxy: d.proxy(), NewProxy: d.proxy(), Req: d.req(), Confirm: d.bool()}
}

func decMigGC(d *decoder) MigGC {
	return MigGC{OldProxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32())}
}

func decBatchOpen(d *decoder) BatchOpen {
	return BatchOpen{Proxy: d.proxy(), MH: ids.MH(d.u32()), Batch: d.batch(), Inc: d.inc()}
}

func decBatchItem(d *decoder) BatchItem {
	return BatchItem{
		Proxy:   d.proxy(),
		MH:      ids.MH(d.u32()),
		Batch:   d.batch(),
		Req:     d.req(),
		Server:  ids.Server(d.u32()),
		Payload: d.bytes(),
		Inc:     d.inc(),
	}
}

func decBatchCommit(d *decoder) BatchCommit {
	return BatchCommit{Proxy: d.proxy(), MH: ids.MH(d.u32()), Batch: d.batch(), Count: d.u32()}
}

func decBatchAbort(d *decoder) BatchAbort {
	ba := BatchAbort{Proxy: d.proxy(), MH: ids.MH(d.u32()), Batch: d.batch()}
	n := d.len()
	if n > 0 && d.err == nil {
		ba.Reqs = make([]ids.RequestID, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		ba.Reqs = append(ba.Reqs, d.req())
	}
	return ba
}

func decRegister(d *decoder) Register {
	return Register{MH: ids.MH(d.u32()), Inc: d.inc()}
}

func decLeaseHeartbeat(d *decoder) LeaseHeartbeat {
	return LeaseHeartbeat{Proxy: d.proxy(), MH: ids.MH(d.u32()), Inc: d.inc()}
}

func decReclaimMemo(d *decoder) ReclaimMemo {
	return ReclaimMemo{Proxy: d.proxy(), MH: ids.MH(d.u32()), Inc: d.inc()}
}

// decWtpData decodes the frame header and recursively decodes each
// coalesced inner message (which always allocates; windowed frames, like
// link frames, are not on the zero-alloc path).
func decWtpData(d *decoder) (WtpData, error) {
	f := WtpData{Epoch: d.u64(), Seq: d.u64()}
	n := d.len()
	if n > 0 && d.err == nil {
		f.Inner = make([]Message, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		body := d.bytes()
		if d.err != nil {
			break
		}
		in, err := Decode(body)
		if err != nil {
			return WtpData{}, fmt.Errorf("msg: wtp frame inner: %w", err)
		}
		if k := in.Kind(); k == KindLinkFrame || k == KindLinkAck || k == KindWtpData || k == KindWtpAck {
			return WtpData{}, ErrBadNesting
		}
		f.Inner = append(f.Inner, in)
	}
	if d.err != nil {
		return WtpData{}, d.err
	}
	return f, nil
}

func decWtpAck(d *decoder) WtpAck {
	a := WtpAck{Epoch: d.u64(), Cum: d.u64()}
	n := d.len()
	if n > 0 && d.err == nil {
		a.Sacks = make([]uint64, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		a.Sacks = append(a.Sacks, d.u64())
	}
	return a
}

func decGroupUpdateLoc(d *decoder) GroupUpdateLoc {
	return GroupUpdateLoc{Proxy: d.proxy(), NewLoc: ids.MSS(d.u32()), Members: d.bytes()}
}

func decGroupAckForward(d *decoder) GroupAckForward {
	g := GroupAckForward{Proxy: d.proxy(), Members: d.bytes()}
	n := d.len()
	if n > 0 && d.err == nil {
		g.Seqs = make([]uint32, 0, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		g.Seqs = append(g.Seqs, d.u32())
	}
	return g
}

// Decode parses a message previously produced by Encode. It rejects
// unknown versions and kinds, truncated input, and trailing bytes. All
// variable-length fields are copied, so the result does not retain b.
func Decode(b []byte) (Message, error) {
	d := decoder{buf: b}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := Kind(d.u8())
	var m Message
	switch kind {
	case KindJoin:
		m = decJoin(&d)
	case KindLeave:
		m = decLeave(&d)
	case KindGreet:
		m = decGreet(&d)
	case KindRequest:
		m = decRequest(&d)
	case KindResultDeliver:
		m = decResultDeliver(&d)
	case KindAckMH:
		m = decAckMH(&d)
	case KindDereg:
		m = decDereg(&d)
	case KindDeregAck:
		m = decDeregAck(&d)
	case KindRequestForward:
		m = decRequestForward(&d)
	case KindUpdateCurrentLoc:
		m = decUpdateCurrentLoc(&d)
	case KindResultForward:
		m = decResultForward(&d)
	case KindAckForward:
		m = decAckForward(&d)
	case KindDelPrefOnly:
		m = decDelPrefOnly(&d)
	case KindServerRequest:
		m = decServerRequest(&d)
	case KindServerResult:
		m = decServerResult(&d)
	case KindServerAck:
		m = decServerAck(&d)
	case KindMIPRegister:
		m = decMIPRegister(&d)
	case KindMIPData:
		m = decMIPData(&d)
	case KindMIPTunnel:
		m = decMIPTunnel(&d)
	case KindImageTransfer:
		m = decImageTransfer(&d)
	case KindTISQuery:
		m = decTISQuery(&d)
	case KindTISDeliver:
		m = decTISDeliver(&d)
	case KindTISReply:
		m = decTISReply(&d)
	case KindLinkFrame:
		lf, err := decLinkFrame(&d)
		if err != nil {
			return nil, err
		}
		m = lf
	case KindLinkAck:
		m = decLinkAck(&d)
	case KindRegConfirm:
		m = decRegConfirm(&d)
	case KindBusy:
		m = decBusy(&d)
	case KindAdmit:
		m = decAdmit(&d)
	case KindMigOffer:
		m = decMigOffer(&d)
	case KindMigCommit:
		m = decMigCommit(&d)
	case KindMigState:
		m = decMigState(&d)
	case KindPrefRedirect:
		m = decPrefRedirect(&d)
	case KindMigGC:
		m = decMigGC(&d)
	case KindBatchOpen:
		m = decBatchOpen(&d)
	case KindBatchItem:
		m = decBatchItem(&d)
	case KindBatchCommit:
		m = decBatchCommit(&d)
	case KindBatchAbort:
		m = decBatchAbort(&d)
	case KindRegister:
		m = decRegister(&d)
	case KindLeaseHeartbeat:
		m = decLeaseHeartbeat(&d)
	case KindReclaimMemo:
		m = decReclaimMemo(&d)
	case KindWtpData:
		f, err := decWtpData(&d)
		if err != nil {
			return nil, err
		}
		m = f
	case KindWtpAck:
		m = decWtpAck(&d)
	case KindGroupUpdateLoc:
		m = decGroupUpdateLoc(&d)
	case KindGroupAckForward:
		m = decGroupAckForward(&d)
	default:
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, ErrTrailing
	}
	return m, nil
}

// DecodeInto parses a message of a statically known kind into the
// caller-owned *dst, avoiding the interface boxing of Decode. In this
// mode variable-length fields ALIAS the input buffer instead of copying
// it: the decoded message is only valid while b is, which makes the
// common transport round trip (read frame, decode, handle, recycle
// buffer) allocation-free. A LinkFrame destination still allocates for
// its inner message.
//
// The wire kind must match dst's kind; a mismatch reports ErrBadKind
// without touching *dst.
func DecodeInto[M Message](b []byte, dst *M) error {
	d := decoder{buf: b, alias: true}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := Kind(d.u8())
	if d.err != nil {
		return d.err
	}
	if want := (*dst).Kind(); kind != want {
		return fmt.Errorf("%w: decoding kind %d into %T", ErrBadKind, uint8(kind), *dst)
	}
	switch p := any(dst).(type) {
	case *Join:
		*p = decJoin(&d)
	case *Leave:
		*p = decLeave(&d)
	case *Greet:
		*p = decGreet(&d)
	case *Request:
		*p = decRequest(&d)
	case *ResultDeliver:
		*p = decResultDeliver(&d)
	case *AckMH:
		*p = decAckMH(&d)
	case *Dereg:
		*p = decDereg(&d)
	case *DeregAck:
		*p = decDeregAck(&d)
	case *RequestForward:
		*p = decRequestForward(&d)
	case *UpdateCurrentLoc:
		*p = decUpdateCurrentLoc(&d)
	case *ResultForward:
		*p = decResultForward(&d)
	case *AckForward:
		*p = decAckForward(&d)
	case *DelPrefOnly:
		*p = decDelPrefOnly(&d)
	case *ServerRequest:
		*p = decServerRequest(&d)
	case *ServerResult:
		*p = decServerResult(&d)
	case *ServerAck:
		*p = decServerAck(&d)
	case *MIPRegister:
		*p = decMIPRegister(&d)
	case *MIPData:
		*p = decMIPData(&d)
	case *MIPTunnel:
		*p = decMIPTunnel(&d)
	case *ImageTransfer:
		*p = decImageTransfer(&d)
	case *TISQuery:
		*p = decTISQuery(&d)
	case *TISDeliver:
		*p = decTISDeliver(&d)
	case *TISReply:
		*p = decTISReply(&d)
	case *LinkFrame:
		lf, err := decLinkFrame(&d)
		if err != nil {
			return err
		}
		*p = lf
	case *LinkAck:
		*p = decLinkAck(&d)
	case *RegConfirm:
		*p = decRegConfirm(&d)
	case *Busy:
		*p = decBusy(&d)
	case *Admit:
		*p = decAdmit(&d)
	case *MigOffer:
		*p = decMigOffer(&d)
	case *MigCommit:
		*p = decMigCommit(&d)
	case *MigState:
		*p = decMigState(&d)
	case *PrefRedirect:
		*p = decPrefRedirect(&d)
	case *MigGC:
		*p = decMigGC(&d)
	case *BatchOpen:
		*p = decBatchOpen(&d)
	case *BatchItem:
		*p = decBatchItem(&d)
	case *BatchCommit:
		*p = decBatchCommit(&d)
	case *BatchAbort:
		*p = decBatchAbort(&d)
	case *Register:
		*p = decRegister(&d)
	case *LeaseHeartbeat:
		*p = decLeaseHeartbeat(&d)
	case *ReclaimMemo:
		*p = decReclaimMemo(&d)
	case *WtpData:
		f, err := decWtpData(&d)
		if err != nil {
			return err
		}
		*p = f
	case *WtpAck:
		*p = decWtpAck(&d)
	case *GroupUpdateLoc:
		*p = decGroupUpdateLoc(&d)
	case *GroupAckForward:
		*p = decGroupAckForward(&d)
	default:
		return fmt.Errorf("%w: %T", ErrBadKind, dst)
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != d.off {
		return ErrTrailing
	}
	return nil
}

// encoder appends fields to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) req(r ids.RequestID) {
	e.u32(uint32(r.Origin))
	e.u32(r.Seq)
}

func (e *encoder) proxy(p ids.ProxyID) {
	e.u32(uint32(p.Host))
	e.u32(p.Seq)
}

func (e *encoder) pref(p Pref) {
	e.proxy(p.Proxy)
	e.bool(p.RKpR)
}

func (e *encoder) batch(b ids.BatchID) {
	e.u32(uint32(b.Origin))
	e.u32(b.Seq)
}

func (e *encoder) inc(i ids.Incarnation) { e.u32(uint32(i)) }

// decoder consumes fields from a buffer, latching the first error. With
// alias set, bytes() returns subslices of the input instead of copies
// (the DecodeInto contract).
type decoder struct {
	buf   []byte
	off   int
	err   error
	alias bool
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// len decodes a u32 length prefix, bounding it against both the sanity
// cap and the remaining input so corrupted prefixes fail fast.
func (d *decoder) len() int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen || int(n) > len(d.buf)-d.off {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *decoder) bytes() []byte {
	n := d.len()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	if d.alias {
		b := d.buf[d.off : d.off+n : d.off+n]
		d.off += n
		return b
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) req() ids.RequestID {
	return ids.RequestID{Origin: ids.MH(d.u32()), Seq: d.u32()}
}

func (d *decoder) proxy() ids.ProxyID {
	return ids.ProxyID{Host: ids.MSS(d.u32()), Seq: d.u32()}
}

func (d *decoder) pref() Pref {
	return Pref{Proxy: d.proxy(), RKpR: d.bool()}
}

func (d *decoder) batch() ids.BatchID {
	return ids.BatchID{Origin: ids.MH(d.u32()), Seq: d.u32()}
}

func (d *decoder) inc() ids.Incarnation { return ids.Incarnation(d.u32()) }

// encBufPool recycles scratch encode buffers across goroutines for the
// encode-and-discard and encode-and-write paths (WireSize, transports).
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// GetBuffer returns a pooled scratch buffer (length 0) for use with
// AppendEncode. Return it with PutBuffer once the encoding has been
// consumed.
func GetBuffer() *[]byte { return encBufPool.Get().(*[]byte) }

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must
// not retain any view of the buffer afterwards.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	encBufPool.Put(b)
}

// WireSize returns the encoded size of a message in bytes without
// retaining the encoding. It is used by the metrics layer to account
// hand-off state volume (experiment E6); the scratch buffer is pooled,
// so measuring costs no allocation in the steady state.
func WireSize(m Message) int {
	bp := encBufPool.Get().(*[]byte)
	b, err := AppendEncode((*bp)[:0], m)
	n := len(b)
	*bp = b[:0]
	encBufPool.Put(bp)
	if err != nil {
		return 0
	}
	return n
}
