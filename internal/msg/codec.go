package msg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ids"
)

// Wire format: one version byte, one kind byte, then the message fields
// in declaration order. Integers are big-endian; byte slices and lists
// are length-prefixed with a uint32. The format is intentionally simple:
// the simulator moves millions of messages and the codec sits on the hot
// path of the livenet runtime.
const codecVersion = 1

// Codec errors. ErrTruncated and ErrBadMessage are matched by callers
// that inject corruption in tests.
var (
	ErrBadVersion = errors.New("msg: unsupported codec version")
	ErrBadKind    = errors.New("msg: unknown message kind")
	ErrTruncated  = errors.New("msg: truncated message")
	ErrTrailing   = errors.New("msg: trailing bytes after message")
	ErrBadNesting = errors.New("msg: link frame may not nest a link-layer message")
)

// maxSliceLen bounds decoded slice lengths to keep a corrupted length
// prefix from causing a huge allocation.
const maxSliceLen = 1 << 24

// Encode serializes a message. It never fails for messages constructed
// through this package's types; the error return guards against a
// user-defined Message implementation with an unknown kind.
func Encode(m Message) ([]byte, error) {
	e := encoder{buf: make([]byte, 0, 64)}
	e.u8(codecVersion)
	e.u8(uint8(m.Kind()))
	switch v := m.(type) {
	case Join:
		e.u32(uint32(v.MH))
	case Leave:
		e.u32(uint32(v.MH))
	case Greet:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.OldMSS))
	case Request:
		e.req(v.Req)
		e.u32(uint32(v.Server))
		e.bytes(v.Payload)
	case ResultDeliver:
		e.req(v.Req)
		e.bytes(v.Payload)
		e.bool(v.DelPref)
	case AckMH:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bool(v.HaveOutstanding)
	case Dereg:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.NewMSS))
	case DeregAck:
		e.u32(uint32(v.MH))
		e.pref(v.Pref)
	case RequestForward:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.u32(uint32(v.Server))
		e.bytes(v.Payload)
	case UpdateCurrentLoc:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.u32(uint32(v.NewLoc))
	case ResultForward:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
		e.bool(v.DelPref)
	case AckForward:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bool(v.DelProxy)
	case DelPrefOnly:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
	case ServerRequest:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Payload)
	case ServerResult:
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Payload)
	case ServerAck:
		e.req(v.Req)
	case MIPRegister:
		e.u32(uint32(v.MH))
		e.u32(uint32(v.CareOf))
	case MIPData:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
	case MIPTunnel:
		e.u32(uint32(v.MH))
		e.req(v.Req)
		e.bytes(v.Payload)
	case ImageTransfer:
		e.u32(uint32(v.MH))
		e.u32(uint32(len(v.Pending)))
		for _, r := range v.Pending {
			e.req(r)
		}
		e.u32(uint32(len(v.Results)))
		for _, b := range v.Results {
			e.bytes(b)
		}
	case TISQuery:
		e.u64(v.QID)
		e.u32(uint32(v.Origin))
		e.u8(uint8(v.Op))
		e.u32(v.Region)
		e.u32(uint32(v.Value))
		e.u8(v.Hops)
		e.proxy(v.Proxy)
		e.req(v.Req)
		e.bytes(v.Data)
	case TISDeliver:
		e.u32(uint32(v.Member))
		e.u32(v.Group)
		e.u64(v.Seq)
		e.bytes(v.Data)
	case TISReply:
		e.u64(v.QID)
		e.u32(v.Region)
		e.u32(uint32(v.Value))
		e.u64(uint64(v.Stamp))
		e.u8(v.Hops)
	case LinkFrame:
		if v.Inner == nil {
			return nil, fmt.Errorf("%w: nil inner message", ErrBadKind)
		}
		if k := v.Inner.Kind(); k == KindLinkFrame || k == KindLinkAck {
			return nil, ErrBadNesting
		}
		inner, err := Encode(v.Inner)
		if err != nil {
			return nil, err
		}
		e.u64(v.Seq)
		e.bytes(inner)
	case LinkAck:
		e.u64(v.Seq)
	case RegConfirm:
		e.u32(uint32(v.MH))
	case Busy:
		e.req(v.Req)
	case Admit:
		e.req(v.Req)
	case MigOffer:
		e.proxy(v.Proxy)
		e.u32(uint32(v.MH))
		e.u32(v.Pending)
		e.u32(v.HostLoad)
		e.bool(v.LoadCheck)
	case MigCommit:
		e.proxy(v.Proxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
		e.bool(v.Accept)
	case MigState:
		e.proxy(v.Proxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
		e.u32(uint32(v.CurrentLoc))
		e.u32(uint32(len(v.Reqs)))
		for _, r := range v.Reqs {
			e.req(r.Req)
			e.u32(uint32(r.Server))
			e.bytes(r.Payload)
			e.bytes(r.Result)
			e.bool(r.HasResult)
			e.bool(r.Forwarded)
		}
	case PrefRedirect:
		e.u32(uint32(v.MH))
		e.proxy(v.OldProxy)
		e.proxy(v.NewProxy)
		e.req(v.Req)
		e.bool(v.Confirm)
	case MigGC:
		e.proxy(v.OldProxy)
		e.proxy(v.NewProxy)
		e.u32(uint32(v.MH))
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadKind, m)
	}
	return e.buf, nil
}

// Decode parses a message previously produced by Encode. It rejects
// unknown versions and kinds, truncated input, and trailing bytes.
func Decode(b []byte) (Message, error) {
	d := decoder{buf: b}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	kind := Kind(d.u8())
	var m Message
	switch kind {
	case KindJoin:
		m = Join{MH: ids.MH(d.u32())}
	case KindLeave:
		m = Leave{MH: ids.MH(d.u32())}
	case KindGreet:
		m = Greet{MH: ids.MH(d.u32()), OldMSS: ids.MSS(d.u32())}
	case KindRequest:
		m = Request{Req: d.req(), Server: ids.Server(d.u32()), Payload: d.bytes()}
	case KindResultDeliver:
		m = ResultDeliver{Req: d.req(), Payload: d.bytes(), DelPref: d.bool()}
	case KindAckMH:
		m = AckMH{MH: ids.MH(d.u32()), Req: d.req(), HaveOutstanding: d.bool()}
	case KindDereg:
		m = Dereg{MH: ids.MH(d.u32()), NewMSS: ids.MSS(d.u32())}
	case KindDeregAck:
		m = DeregAck{MH: ids.MH(d.u32()), Pref: d.pref()}
	case KindRequestForward:
		m = RequestForward{Proxy: d.proxy(), Req: d.req(), Server: ids.Server(d.u32()), Payload: d.bytes()}
	case KindUpdateCurrentLoc:
		m = UpdateCurrentLoc{Proxy: d.proxy(), MH: ids.MH(d.u32()), NewLoc: ids.MSS(d.u32())}
	case KindResultForward:
		m = ResultForward{Proxy: d.proxy(), MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes(), DelPref: d.bool()}
	case KindAckForward:
		m = AckForward{Proxy: d.proxy(), MH: ids.MH(d.u32()), Req: d.req(), DelProxy: d.bool()}
	case KindDelPrefOnly:
		m = DelPrefOnly{Proxy: d.proxy(), MH: ids.MH(d.u32())}
	case KindServerRequest:
		m = ServerRequest{Proxy: d.proxy(), Req: d.req(), Payload: d.bytes()}
	case KindServerResult:
		m = ServerResult{Proxy: d.proxy(), Req: d.req(), Payload: d.bytes()}
	case KindServerAck:
		m = ServerAck{Req: d.req()}
	case KindMIPRegister:
		m = MIPRegister{MH: ids.MH(d.u32()), CareOf: ids.MSS(d.u32())}
	case KindMIPData:
		m = MIPData{MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes()}
	case KindMIPTunnel:
		m = MIPTunnel{MH: ids.MH(d.u32()), Req: d.req(), Payload: d.bytes()}
	case KindImageTransfer:
		it := ImageTransfer{MH: ids.MH(d.u32())}
		n := d.len()
		for i := 0; i < n && d.err == nil; i++ {
			it.Pending = append(it.Pending, d.req())
		}
		n = d.len()
		for i := 0; i < n && d.err == nil; i++ {
			it.Results = append(it.Results, d.bytes())
		}
		m = it
	case KindTISQuery:
		m = TISQuery{
			QID:    d.u64(),
			Origin: ids.Server(d.u32()),
			Op:     TISOp(d.u8()),
			Region: d.u32(),
			Value:  int32(d.u32()),
			Hops:   d.u8(),
			Proxy:  d.proxy(),
			Req:    d.req(),
			Data:   d.bytes(),
		}
	case KindTISDeliver:
		m = TISDeliver{
			Member: ids.MH(d.u32()),
			Group:  d.u32(),
			Seq:    d.u64(),
			Data:   d.bytes(),
		}
	case KindTISReply:
		m = TISReply{
			QID:    d.u64(),
			Region: d.u32(),
			Value:  int32(d.u32()),
			Stamp:  int64(d.u64()),
			Hops:   d.u8(),
		}
	case KindLinkFrame:
		seq := d.u64()
		body := d.bytes()
		if d.err != nil {
			return nil, d.err
		}
		inner, err := Decode(body)
		if err != nil {
			return nil, fmt.Errorf("msg: link frame inner: %w", err)
		}
		if k := inner.Kind(); k == KindLinkFrame || k == KindLinkAck {
			return nil, ErrBadNesting
		}
		m = LinkFrame{Seq: seq, Inner: inner}
	case KindLinkAck:
		m = LinkAck{Seq: d.u64()}
	case KindRegConfirm:
		m = RegConfirm{MH: ids.MH(d.u32())}
	case KindBusy:
		m = Busy{Req: d.req()}
	case KindAdmit:
		m = Admit{Req: d.req()}
	case KindMigOffer:
		m = MigOffer{Proxy: d.proxy(), MH: ids.MH(d.u32()), Pending: d.u32(), HostLoad: d.u32(), LoadCheck: d.bool()}
	case KindMigCommit:
		m = MigCommit{Proxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32()), Accept: d.bool()}
	case KindMigState:
		ms := MigState{Proxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32()), CurrentLoc: ids.MSS(d.u32())}
		n := d.len()
		for i := 0; i < n && d.err == nil; i++ {
			ms.Reqs = append(ms.Reqs, MigReqState{
				Req:       d.req(),
				Server:    ids.Server(d.u32()),
				Payload:   d.bytes(),
				Result:    d.bytes(),
				HasResult: d.bool(),
				Forwarded: d.bool(),
			})
		}
		m = ms
	case KindPrefRedirect:
		m = PrefRedirect{MH: ids.MH(d.u32()), OldProxy: d.proxy(), NewProxy: d.proxy(), Req: d.req(), Confirm: d.bool()}
	case KindMigGC:
		m = MigGC{OldProxy: d.proxy(), NewProxy: d.proxy(), MH: ids.MH(d.u32())}
	default:
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, ErrTrailing
	}
	return m, nil
}

// encoder appends fields to a buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) req(r ids.RequestID) {
	e.u32(uint32(r.Origin))
	e.u32(r.Seq)
}

func (e *encoder) proxy(p ids.ProxyID) {
	e.u32(uint32(p.Host))
	e.u32(p.Seq)
}

func (e *encoder) pref(p Pref) {
	e.proxy(p.Proxy)
	e.bool(p.RKpR)
}

// decoder consumes fields from a buffer, latching the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// len decodes a u32 length prefix, bounding it against both the sanity
// cap and the remaining input so corrupted prefixes fail fast.
func (d *decoder) len() int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if n > maxSliceLen || int(n) > len(d.buf)-d.off {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *decoder) bytes() []byte {
	n := d.len()
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

func (d *decoder) req() ids.RequestID {
	return ids.RequestID{Origin: ids.MH(d.u32()), Seq: d.u32()}
}

func (d *decoder) proxy() ids.ProxyID {
	return ids.ProxyID{Host: ids.MSS(d.u32()), Seq: d.u32()}
}

func (d *decoder) pref() Pref {
	return Pref{Proxy: d.proxy(), RKpR: d.bool()}
}

// WireSize returns the encoded size of a message in bytes without
// retaining the encoding. It is used by the metrics layer to account
// hand-off state volume (experiment E6).
func WireSize(m Message) int {
	b, err := Encode(m)
	if err != nil {
		return 0
	}
	return len(b)
}
