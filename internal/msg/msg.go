// Package msg defines every message exchanged by the Result Delivery
// Protocol (RDP), by its substrates, and by the comparison baselines
// (Mobile IP-style tunneling and I-TCP-style image hand-off), together
// with a compact, versioned binary codec.
//
// Message taxonomy (paper section in parentheses):
//
//	Wireless, MH <-> respMss:
//	    Join, Leave (§2), Greet (§2, §3.2), Request (§3.1),
//	    ResultDeliver (§3.1, carries del-pref §3.3), AckMH (§3.1)
//	Wired, MSS <-> MSS (Hand-off, §3.2):
//	    Dereg, DeregAck (carries the pref)
//	Wired, MSS <-> proxy-hosting MSS (§3.1, §3.3):
//	    RequestForward, UpdateCurrentLoc, ResultForward (del-pref),
//	    AckForward (del-proxy), DelPrefOnly (Fig. 4 special message)
//	Wired, proxy <-> application server (§3.1):
//	    ServerRequest, ServerResult, ServerAck
//	Baselines (§4 comparison):
//	    MIPRegister, MIPData, MIPTunnel (Mobile IP);
//	    ImageTransfer (I-TCP-style indirect image hand-off)
package msg

import (
	"fmt"

	"repro/internal/ids"
)

// Kind discriminates message types on the wire and in traces.
type Kind uint8

// Message kinds. Values are part of the wire format; append only.
const (
	KindInvalid Kind = iota

	// Wireless MH <-> MSS.
	KindJoin
	KindLeave
	KindGreet
	KindRequest
	KindResultDeliver
	KindAckMH

	// Wired MSS <-> MSS hand-off.
	KindDereg
	KindDeregAck

	// Wired MSS <-> proxy host.
	KindRequestForward
	KindUpdateCurrentLoc
	KindResultForward
	KindAckForward
	KindDelPrefOnly

	// Wired proxy <-> server.
	KindServerRequest
	KindServerResult
	KindServerAck

	// Mobile IP baseline.
	KindMIPRegister
	KindMIPData
	KindMIPTunnel

	// I-TCP-style baseline.
	KindImageTransfer

	// SIDAM inter-TIS protocol (paper §1: "queries may eventually
	// require time-consuming data location and retrieval protocols
	// among the servers").
	KindTISQuery
	KindTISReply
	KindTISDeliver

	// Wired link layer (ARQ): per-link framing and positive acks that
	// restore assumption 1 (reliable causal MSS communication) over a
	// lossy backbone.
	KindLinkFrame
	KindLinkAck

	// Wireless MSS -> MH registration confirmation (crash recovery).
	KindRegConfirm

	// Wireless MSS -> MH admission control (overload protection): a
	// busy-NACK refusing a request, and the positive admission ack.
	KindBusy
	KindAdmit

	// Wired proxy migration (internal/proxymig): the offer/commit
	// handshake, the state transfer, the pref-redirect announcements to
	// servers and stale stations, and the tombstone garbage collection.
	KindMigOffer
	KindMigCommit
	KindMigState
	KindPrefRedirect
	KindMigGC

	// Atomic request batches (disconnected operation, E17): open a
	// batch, add member requests, seal it, and the proxy-side abort.
	KindBatchOpen
	KindBatchItem
	KindBatchCommit
	KindBatchAbort

	// Mobile-host crash/amnesia recovery (E18): incarnation-bearing
	// re-registration after a reboot, the proxy-lease heartbeat, and
	// the durable reclaim memo recording a lease-GC'd proxy.
	KindRegister
	KindLeaseHeartbeat
	KindReclaimMemo

	// Windowed wireless transport (E15, internal/wtp): a coalesced
	// sliding-window data frame carrying several inner messages, and
	// its cumulative + selective acknowledgment.
	KindWtpData
	KindWtpAck

	// Aggregated location state (E16): batched membership updates for
	// shared group proxies — a coalesced hand-off location update and a
	// coalesced forwarded-result acknowledgment, each carrying a
	// delta-encoded member set instead of one message per mobile host.
	KindGroupUpdateLoc
	KindGroupAckForward

	kindSentinel // one past the last valid kind
)

var kindNames = [...]string{
	KindInvalid:          "invalid",
	KindJoin:             "join",
	KindLeave:            "leave",
	KindGreet:            "greet",
	KindRequest:          "request",
	KindResultDeliver:    "result",
	KindAckMH:            "ack",
	KindDereg:            "dereg",
	KindDeregAck:         "deregack",
	KindRequestForward:   "request-fwd",
	KindUpdateCurrentLoc: "update-currl",
	KindResultForward:    "result-fwd",
	KindAckForward:       "ack-fwd",
	KindDelPrefOnly:      "del-pref",
	KindServerRequest:    "srv-request",
	KindServerResult:     "srv-result",
	KindServerAck:        "srv-ack",
	KindMIPRegister:      "mip-register",
	KindMIPData:          "mip-data",
	KindMIPTunnel:        "mip-tunnel",
	KindImageTransfer:    "image-transfer",
	KindTISQuery:         "tis-query",
	KindTISReply:         "tis-reply",
	KindTISDeliver:       "tis-deliver",
	KindLinkFrame:        "link-frame",
	KindLinkAck:          "link-ack",
	KindRegConfirm:       "reg-confirm",
	KindBusy:             "busy",
	KindAdmit:            "admit",
	KindMigOffer:         "mig-offer",
	KindMigCommit:        "mig-commit",
	KindMigState:         "mig-state",
	KindPrefRedirect:     "pref-redirect",
	KindMigGC:            "mig-gc",
	KindBatchOpen:        "batch-open",
	KindBatchItem:        "batch-item",
	KindBatchCommit:      "batch-commit",
	KindBatchAbort:       "batch-abort",
	KindRegister:         "register",
	KindLeaseHeartbeat:   "lease-hb",
	KindReclaimMemo:      "reclaim-memo",
	KindWtpData:          "wtp-data",
	KindWtpAck:           "wtp-ack",
	KindGroupUpdateLoc:   "group-update-loc",
	KindGroupAckForward:  "group-ack-fwd",
}

// String returns the trace tag of the kind, e.g. "update-currl".
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k names a defined message kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindSentinel }

// Message is implemented by every protocol message.
type Message interface {
	// Kind returns the wire discriminator of the message.
	Kind() Kind
	// String renders the message for traces and test failures.
	String() string
}

// Pref is the proxy reference held by an MH's respMss and handed over on
// every migration (paper §3.1). A zero Proxy means the MH currently has
// no proxy (the paper's "null address"). RKpR is the "Ready to Kill pref"
// flag (§3.3).
type Pref struct {
	Proxy ids.ProxyID
	RKpR  bool
}

// HasProxy reports whether the reference points at a live proxy.
func (p Pref) HasProxy() bool { return p.Proxy.Valid() }

// String renders the pref for traces.
func (p Pref) String() string {
	if !p.HasProxy() {
		return "pref(nil)"
	}
	return fmt.Sprintf("pref(%v,RKpR=%t)", p.Proxy, p.RKpR)
}

// ---------------------------------------------------------------------
// Wireless MH <-> MSS messages.

// Join announces a mobile host entering the system in the receiving
// station's cell (paper §2).
type Join struct {
	MH ids.MH
}

// Leave announces a mobile host leaving the system. Assumption 6: an MH
// only leaves after acknowledging every message from its respMss.
type Leave struct {
	MH ids.MH
}

// Greet is sent by an MH entering a new cell, or on reactivation in the
// same cell. OldMSS is the station responsible for the cell the MH is
// leaving; if OldMSS equals the receiving station no hand-off is started
// (paper §2, §3.2). Inc is the host's boot incarnation (E18); stations
// treat 0 as "first incarnation".
type Greet struct {
	MH     ids.MH
	OldMSS ids.MSS
	Inc    ids.Incarnation
}

// Request is a service request from an MH to its respMss, to be routed
// to (or creating) the MH's proxy (paper §3.1). Inc stamps the issuing
// incarnation of the host (E18): a request from a dead incarnation must
// never produce a delivery to the rebooted host.
type Request struct {
	Req     ids.RequestID
	Server  ids.Server
	Payload []byte
	Inc     ids.Incarnation
}

// ResultDeliver carries a request result over the wireless link from the
// respMss to the MH. DelPref is the piggy-backed del-pref flag: true when
// the proxy has no other pending request (paper §3.3). Inc is the
// incarnation that issued the request; the MH refuses delivery when it
// does not match its current incarnation (post-amnesia duplicate guard).
type ResultDeliver struct {
	Req     ids.RequestID
	Payload []byte
	DelPref bool
	Inc     ids.Incarnation
}

// AckMH is the MH's acknowledgment for a delivered result (paper
// assumption 4). HaveOutstanding reports whether the MH still awaits
// results for other requests it has issued. §3.3 confirms proxy removal
// only on "an Ack from MH that is not preceded by any new request" —
// a property of the MH's own send stream. The respMss can observe it
// only for requests routed through itself; a request issued just before
// a migration travels via the previous station and would be invisible
// to the new one, so the MH states the property explicitly.
type AckMH struct {
	MH              ids.MH
	Req             ids.RequestID
	HaveOutstanding bool
}

// ---------------------------------------------------------------------
// Wired MSS <-> MSS hand-off messages (paper §3.2).

// Dereg asks the old respMss to de-register an MH and return its pref.
type Dereg struct {
	MH     ids.MH
	NewMSS ids.MSS
}

// DeregAck transfers responsibility for the MH (with its pref) to the
// new respMss. Inc carries the old station's record of the host's
// registered incarnation, so incarnation knowledge survives hand-offs
// the same way the pref does (E18).
type DeregAck struct {
	MH   ids.MH
	Pref Pref
	Inc  ids.Incarnation
}

// ---------------------------------------------------------------------
// Wired MSS <-> proxy-hosting MSS messages.

// RequestForward routes a new request from the MH's respMss to the MSS
// hosting the MH's proxy (paper §3.1, §3.3: "all new requests must be
// forwarded to the MSS hosting the proxy").
type RequestForward struct {
	Proxy   ids.ProxyID
	Req     ids.RequestID
	Server  ids.Server
	Payload []byte
	Inc     ids.Incarnation // issuing incarnation of the origin MH (E18)
}

// UpdateCurrentLoc updates the proxy's currentLoc variable after a
// completed hand-off or a reactivation (paper §3.1, §3.2). Its arrival
// triggers retransmission of every un-acked result.
type UpdateCurrentLoc struct {
	Proxy  ids.ProxyID
	MH     ids.MH
	NewLoc ids.MSS
}

// ResultForward carries a stored result from the proxy to the MH's
// current respMss. DelPref is piggy-backed when this is the result of the
// proxy's last pending request (paper §3.3).
type ResultForward struct {
	Proxy   ids.ProxyID
	MH      ids.MH
	Req     ids.RequestID
	Payload []byte
	DelPref bool
	Inc     ids.Incarnation // incarnation that issued Req; stale => never delivered (E18)
}

// AckForward relays an MH's Ack from its respMss to the proxy. DelProxy
// is piggy-backed when the respMss confirms proxy removal (RKpR held and
// no new request intervened; paper §3.3).
type AckForward struct {
	Proxy    ids.ProxyID
	MH       ids.MH
	Req      ids.RequestID
	DelProxy bool
}

// DelPrefOnly is the Fig. 4 special message: the proxy's last pending
// result has already been forwarded (and acked at the proxy later than
// forwarded), so the proxy sends the del-pref flag alone to the respMss.
type DelPrefOnly struct {
	Proxy ids.ProxyID
	MH    ids.MH
}

// ---------------------------------------------------------------------
// Wired proxy <-> server messages (paper §3.1: "from the server's point
// of view, the service is being requested from a fixed client").

// ServerRequest is issued by a proxy to an application server on behalf
// of an MH.
type ServerRequest struct {
	Proxy   ids.ProxyID
	Req     ids.RequestID
	Payload []byte
}

// ServerResult is the server's reply, addressed to the proxy that issued
// the request.
type ServerResult struct {
	Proxy   ids.ProxyID
	Req     ids.RequestID
	Payload []byte
}

// ServerAck is the optional application-level acknowledgment sent by the
// proxy to the server once the MH acknowledged the result (paper §3.1:
// "possibly sends an acknowledgment to the server, depending on the
// particular application-level protocol").
type ServerAck struct {
	Req ids.RequestID
}

// ---------------------------------------------------------------------
// Mobile IP baseline messages (paper §4 comparison).

// MIPRegister registers a new care-of address (the foreign agent's MSS)
// with the MH's home agent.
type MIPRegister struct {
	MH     ids.MH
	CareOf ids.MSS
}

// MIPData is a datagram addressed to a mobile node, sent by a
// correspondent (server) to the MH's home agent.
type MIPData struct {
	MH      ids.MH
	Req     ids.RequestID
	Payload []byte
}

// MIPTunnel is a datagram tunneled by the home agent to the registered
// care-of address for final wireless delivery.
type MIPTunnel struct {
	MH      ids.MH
	Req     ids.RequestID
	Payload []byte
}

// ---------------------------------------------------------------------
// I-TCP-style baseline message.

// ImageTransfer ships the full per-MH session image (pending requests
// and buffered results) between support stations during a hand-off, the
// way indirect-protocol systems such as I-TCP move the MH's image
// (paper §4). RDP's equivalent transfer is the single Pref in DeregAck.
type ImageTransfer struct {
	MH      ids.MH
	Pending []ids.RequestID
	Results [][]byte
}

// ---------------------------------------------------------------------
// SIDAM inter-TIS messages.

// TISOp discriminates inter-TIS operations.
type TISOp uint8

// Inter-TIS operations.
const (
	TISOpQuery TISOp = iota + 1
	TISOpUpdate
	TISOpSubscribe
	TISOpMailbox   // park a member's mailbox request at its mailbox TIS
	TISOpMulticast // submit a group message to the group's owning TIS
)

// String names the operation.
func (o TISOp) String() string {
	switch o {
	case TISOpQuery:
		return "query"
	case TISOpUpdate:
		return "update"
	case TISOpSubscribe:
		return "subscribe"
	case TISOpMailbox:
		return "mailbox"
	case TISOpMulticast:
		return "multicast"
	default:
		return fmt.Sprintf("tisop(%d)", uint8(o))
	}
}

// TISQuery routes an operation hop-by-hop through the Traffic
// Information Server network toward the owner of a region (or of a
// group / member mailbox for the multicast operations). Proxy and Req
// identify the RDP proxy awaiting the outcome, so the owner can answer
// (or notify) the client's proxy directly. Data carries the message
// body of a multicast submission.
type TISQuery struct {
	QID    uint64
	Origin ids.Server
	Op     TISOp
	Region uint32 // region id, or group id for multicast ops
	Value  int32  // update payload / subscription threshold
	Hops   uint8
	Proxy  ids.ProxyID
	Req    ids.RequestID
	Data   []byte
}

// TISDeliver carries one group message from the group's owning TIS to a
// member's mailbox TIS. Seq is the owner's per-group serialization
// number: every member observes group messages in Seq order, giving the
// multicast operation its total order.
type TISDeliver struct {
	Member ids.MH
	Group  uint32
	Seq    uint64
	Data   []byte
}

// TISReply answers a routed TISQuery back to its origin TIS.
type TISReply struct {
	QID    uint64
	Region uint32
	Value  int32
	Stamp  int64 // virtual-time nanoseconds of the reading
	Hops   uint8
}

// ---------------------------------------------------------------------
// Wired link-layer (ARQ) messages.

// LinkFrame wraps one wired protocol message with a per-directed-link
// sequence number. The sender retransmits the frame until it receives a
// matching LinkAck; the receiver acks every copy and delivers the inner
// message at most once. Inner must not itself be a link-layer message.
type LinkFrame struct {
	Seq   uint64
	Inner Message
}

// LinkAck positively acknowledges the LinkFrame with the same Seq on the
// reverse direction of the link.
type LinkAck struct {
	Seq uint64
}

// ---------------------------------------------------------------------
// Registration confirmation (crash recovery).

// RegConfirm is sent downlink by a station once it has durably recorded
// responsibility for the MH. Until the MH sees it, the MH keeps naming
// its last *confirmed* station as OldMSS in greets, so a station that
// crashed before persisting the registration is simply bypassed.
type RegConfirm struct {
	MH ids.MH
}

// ---------------------------------------------------------------------
// Admission control (overload protection).

// Busy is the station's NACK for a request it refuses to admit — its
// inbox is past the high-watermark or its proxy storage is at quota.
// The request was not enqueued and no proxy exists for it; the MH backs
// off and re-issues. Refusal is explicit so overload never silently
// breaks the delivery guarantee: a request is either admitted (and then
// delivered at least once) or visibly refused.
type Busy struct {
	Req ids.RequestID
}

// Admit is the station's positive admission acknowledgement: the
// request is past admission control and a proxy is (or already was)
// responsible for it. From this point the delivery guarantee covers the
// request, and the MH stops its busy-retry/deadline machinery.
type Admit struct {
	Req ids.RequestID
}

// ---------------------------------------------------------------------
// Proxy migration (internal/proxymig).

// MigOffer asks the MH's current respMss to adopt the proxy. Pending and
// HostLoad describe the proxy and its host so the target can decide
// admission; LoadCheck marks a load-driven migration, which the target
// only accepts when taking the proxy actually improves the balance.
type MigOffer struct {
	Proxy     ids.ProxyID
	MH        ids.MH
	Pending   uint32 // pending requests held by the proxy
	HostLoad  uint32 // proxies hosted at the offering station
	LoadCheck bool   // load-driven policy: accept only if balance improves
}

// MigCommit answers a MigOffer. On acceptance NewProxy names the
// identity the target allocated (and durably reserved) for the adopted
// proxy; the old host then ships MigState and tombstones the old id. On
// refusal the old host simply keeps the proxy and backs off.
type MigCommit struct {
	Proxy    ids.ProxyID // the offered (old) proxy
	NewProxy ids.ProxyID // allocated at the target; zero on refusal
	MH       ids.MH
	Accept   bool
}

// MigReqState is one entry of a migrating proxy's requestList: the
// request, its target server, the original payload (for crash-recovery
// re-issue), the stored result if the server already answered, and
// whether that result has been forwarded toward the MH at least once.
type MigReqState struct {
	Req       ids.RequestID
	Server    ids.Server
	Payload   []byte
	Result    []byte
	HasResult bool
	Forwarded bool
	Batch     ids.BatchID     // batch membership; zero for ordinary requests
	Inc       ids.Incarnation // issuing incarnation of the origin MH (E18)
}

// MigBatchState is one atomic batch's control state within a migrating
// proxy: the batch identity, the committed member count (zero until
// commit arrives), and whether the batch has been sealed or released.
// The adopting host re-arms the batch deadline from scratch — the
// deadline is a per-host conservative bound, not a global clock.
// Aborted entries carry the abort memo: the decision to refuse a batch
// must survive migration (and crashes), or a replayed batch could be
// delivered after its members were told to abandon it.
type MigBatchState struct {
	Batch     ids.BatchID
	Expected  uint32
	Committed bool
	Released  bool
	Aborted   bool
	Inc       ids.Incarnation // opening incarnation of the batch (E18)
}

// MigState transfers the full proxy state from the old host to the
// target that accepted the offer. CurrentLoc is the proxy's view of the
// MH's station at snapshot time; Reqs is the requestList in issue order;
// Batches carries the control state of every atomic batch with members
// in Reqs.
type MigState struct {
	Proxy      ids.ProxyID // old identity
	NewProxy   ids.ProxyID // identity at the target
	MH         ids.MH
	CurrentLoc ids.MSS
	Reqs       []MigReqState
	Batches    []MigBatchState
	// LeaseInc is the newest incarnation the migrating proxy's lease has
	// heard for its MH; the adopting host installs it and re-arms the
	// lease-expiry timer from scratch (E18 — lease state survives
	// migration the way batch state does).
	LeaseInc ids.Incarnation
}

// PrefRedirect announces that OldProxy has migrated to NewProxy. Three
// roles share the message: the new host announces the move to every
// server with a result-less pending request (Confirm=false, Req set to
// the pending request); the server echoes it with Confirm=true to the
// old host, feeding the tombstone's confirmation set; and the tombstone
// sends it (Confirm=false) to any station that still addresses the old
// proxy, lazily rebinding stale prefs.
type PrefRedirect struct {
	MH       ids.MH
	OldProxy ids.ProxyID
	NewProxy ids.ProxyID
	Req      ids.RequestID // pending request being redirected; zero for pref rebinds
	Confirm  bool
}

// MigGC closes a migration episode: the old host garbage-collected the
// tombstone (every server confirmed and the linger window passed), so
// the new host drops its inbound reservation bookkeeping.
type MigGC struct {
	OldProxy ids.ProxyID
	NewProxy ids.ProxyID
	MH       ids.MH
}

// ---------------------------------------------------------------------
// Atomic request batches (disconnected operation, E17). Like the
// Request/RequestForward pair, each batch message serves both legs of
// its journey: Proxy is zero on the wireless uplink from the MH and is
// filled in when the respMss forwards the message to the proxy host, so
// tombstones can rebind it after a migration.

// BatchOpen opens an atomic request batch at the MH's proxy. Member
// results are withheld until every member's result is present and the
// batch is committed — delivery is all-or-nothing.
type BatchOpen struct {
	Proxy ids.ProxyID // zero uplink; proxy identity on the wired forward
	MH    ids.MH
	Batch ids.BatchID
	Inc   ids.Incarnation // opening incarnation of the MH (E18)
}

// BatchItem adds one member request to an open batch. It carries the
// same routing payload as Request; the proxy tags the request with the
// batch so its result is withheld until the batch releases.
type BatchItem struct {
	Proxy   ids.ProxyID
	MH      ids.MH
	Batch   ids.BatchID
	Req     ids.RequestID
	Server  ids.Server
	Payload []byte
	Inc     ids.Incarnation // issuing incarnation of the MH (E18)
}

// BatchCommit seals the batch. Count is the total number of members the
// MH placed in the batch; the proxy releases delivery once it holds
// results for all Count members (commit may overtake late items only in
// count, never in causal order on a single path — Count makes release
// correct across replay and migration too).
type BatchCommit struct {
	Proxy ids.ProxyID
	MH    ids.MH
	Batch ids.BatchID
	Count uint32
}

// BatchAbort tears a batch down without delivering any member result:
// the proxy's batch deadline expired before commit-plus-results. It is
// sent to the MH's current station and relayed downlink so the MH can
// abandon the member requests; Reqs lists the members known to the
// proxy at abort time.
type BatchAbort struct {
	Proxy ids.ProxyID
	MH    ids.MH
	Batch ids.BatchID
	Reqs  []ids.RequestID
}

// ---------------------------------------------------------------------
// Mobile-host crash/amnesia recovery (E18).

// Register is the incarnation-bearing registration a rebooted mobile
// host sends to the station responsible for its cell: "I am MH m, now
// in incarnation i". Unlike Join (a first boot, implicitly incarnation
// 1) and Greet (a cell change), Register re-asserts an existing
// registration in place under a fresh incarnation. The station records
// the incarnation durably, scrubs per-MH state belonging to older
// incarnations (outstanding-request ledger entries, held results) and
// confirms with RegConfirm.
type Register struct {
	MH  ids.MH
	Inc ids.Incarnation
}

// LeaseHeartbeat renews the lease on a mobile host's proxy. The host's
// respMss sends it to the proxy's host while the registration is alive;
// it names the newest incarnation the station has registered. A
// heartbeat carrying a newer incarnation than the proxy's lease tells
// the proxy host the older incarnation is dead: requests (and batches)
// it left behind are scrubbed. A proxy whose lease sees no heartbeat
// for Config.LeaseTTL is reclaimed entirely (E18 orphan GC).
type LeaseHeartbeat struct {
	Proxy ids.ProxyID
	MH    ids.MH
	Inc   ids.Incarnation
}

// ReclaimMemo records (and announces) the lease-GC reclamation of an
// orphaned proxy. The proxy host journals the memo durably before
// dropping the proxy — the decision must survive its own crash — and
// sends it to the MH's last known respMss so the stale pref and any
// outstanding-ledger entries are scrubbed there too. Inc is the lease's
// last known incarnation at reclaim time.
type ReclaimMemo struct {
	Proxy ids.ProxyID
	MH    ids.MH
	Inc   ids.Incarnation
}

// WtpData is one windowed-wireless-transport data frame (E15,
// internal/wtp): a link-layer envelope like LinkFrame, but carrying a
// whole coalesced batch of downlink messages under one sequence number.
// Epoch scopes the sequence space — a sender that gives up on an
// unreachable host resets its link and bumps the epoch, so frames and
// acks of the abandoned generation are ignored by both ends. Inner
// messages must themselves be application messages: link-layer kinds
// (LinkFrame, LinkAck, WtpData, WtpAck) do not nest.
type WtpData struct {
	Epoch uint64
	Seq   uint64
	Inner []Message
}

// WtpAck acknowledges WtpData frames: Cum is the cumulative in-order
// watermark (every sequence number at or below it is delivered) and
// Sacks lists out-of-order frames held by the receiver for reordering
// (selective acknowledgment, ascending).
type WtpAck struct {
	Epoch uint64
	Cum   uint64
	Sacks []uint64
}

// GroupUpdateLoc batches hand-off location updates for a shared group
// proxy (E16 aggregated state): every mobile host in Members now
// resides at NewLoc. Members is an aggstate delta-encoded set of MH
// identifiers — opaque bytes at this layer, so the codec stays
// independent of the membership structure. One frame replaces a
// per-host UpdateCurrentLoc storm after a cell hand-off wave.
type GroupUpdateLoc struct {
	Proxy   ids.ProxyID
	NewLoc  ids.MSS
	Members []byte
}

// GroupAckForward batches forwarded-result acknowledgments for a
// shared group proxy: member i of the delta-encoded Members set (in
// its ascending iteration order) acknowledges its own request with
// sequence number Seqs[i]. len(Seqs) must equal the decoded member
// count; the proxy validates the pairing on receipt.
type GroupAckForward struct {
	Proxy   ids.ProxyID
	Members []byte
	Seqs    []uint32
}

// ---------------------------------------------------------------------
// Kind methods.

func (Join) Kind() Kind             { return KindJoin }
func (Leave) Kind() Kind            { return KindLeave }
func (Greet) Kind() Kind            { return KindGreet }
func (Request) Kind() Kind          { return KindRequest }
func (ResultDeliver) Kind() Kind    { return KindResultDeliver }
func (AckMH) Kind() Kind            { return KindAckMH }
func (Dereg) Kind() Kind            { return KindDereg }
func (DeregAck) Kind() Kind         { return KindDeregAck }
func (RequestForward) Kind() Kind   { return KindRequestForward }
func (UpdateCurrentLoc) Kind() Kind { return KindUpdateCurrentLoc }
func (ResultForward) Kind() Kind    { return KindResultForward }
func (AckForward) Kind() Kind       { return KindAckForward }
func (DelPrefOnly) Kind() Kind      { return KindDelPrefOnly }
func (ServerRequest) Kind() Kind    { return KindServerRequest }
func (ServerResult) Kind() Kind     { return KindServerResult }
func (ServerAck) Kind() Kind        { return KindServerAck }
func (MIPRegister) Kind() Kind      { return KindMIPRegister }
func (MIPData) Kind() Kind          { return KindMIPData }
func (MIPTunnel) Kind() Kind        { return KindMIPTunnel }
func (ImageTransfer) Kind() Kind    { return KindImageTransfer }
func (TISQuery) Kind() Kind         { return KindTISQuery }
func (TISReply) Kind() Kind         { return KindTISReply }
func (TISDeliver) Kind() Kind       { return KindTISDeliver }
func (LinkFrame) Kind() Kind        { return KindLinkFrame }
func (LinkAck) Kind() Kind          { return KindLinkAck }
func (RegConfirm) Kind() Kind       { return KindRegConfirm }
func (Busy) Kind() Kind             { return KindBusy }
func (Admit) Kind() Kind            { return KindAdmit }
func (MigOffer) Kind() Kind         { return KindMigOffer }
func (MigCommit) Kind() Kind        { return KindMigCommit }
func (MigState) Kind() Kind         { return KindMigState }
func (PrefRedirect) Kind() Kind     { return KindPrefRedirect }
func (MigGC) Kind() Kind            { return KindMigGC }
func (BatchOpen) Kind() Kind        { return KindBatchOpen }
func (BatchItem) Kind() Kind        { return KindBatchItem }
func (BatchCommit) Kind() Kind      { return KindBatchCommit }
func (BatchAbort) Kind() Kind       { return KindBatchAbort }
func (Register) Kind() Kind         { return KindRegister }
func (LeaseHeartbeat) Kind() Kind   { return KindLeaseHeartbeat }
func (ReclaimMemo) Kind() Kind      { return KindReclaimMemo }
func (WtpData) Kind() Kind          { return KindWtpData }
func (WtpAck) Kind() Kind           { return KindWtpAck }
func (GroupUpdateLoc) Kind() Kind   { return KindGroupUpdateLoc }
func (GroupAckForward) Kind() Kind  { return KindGroupAckForward }

// ---------------------------------------------------------------------
// String methods (trace rendering).

func (m Join) String() string  { return fmt.Sprintf("join(%v)", m.MH) }
func (m Leave) String() string { return fmt.Sprintf("leave(%v)", m.MH) }
func (m Greet) String() string { return fmt.Sprintf("greet(%v,old=%v)", m.MH, m.OldMSS) }
func (m Request) String() string {
	return fmt.Sprintf("request(%v->%v,%dB)", m.Req, m.Server, len(m.Payload))
}
func (m ResultDeliver) String() string {
	return fmt.Sprintf("result(%v,%dB,del-pref=%t)", m.Req, len(m.Payload), m.DelPref)
}
func (m AckMH) String() string {
	return fmt.Sprintf("ack(%v,%v,outst=%t)", m.MH, m.Req, m.HaveOutstanding)
}
func (m Dereg) String() string { return fmt.Sprintf("dereg(%v,new=%v)", m.MH, m.NewMSS) }
func (m DeregAck) String() string {
	return fmt.Sprintf("deregack(%v,%v)", m.MH, m.Pref)
}
func (m RequestForward) String() string {
	return fmt.Sprintf("request-fwd(%v,%v->%v)", m.Proxy, m.Req, m.Server)
}
func (m UpdateCurrentLoc) String() string {
	return fmt.Sprintf("update-currl(%v,%v@%v)", m.Proxy, m.MH, m.NewLoc)
}
func (m ResultForward) String() string {
	return fmt.Sprintf("result-fwd(%v,%v,del-pref=%t)", m.Proxy, m.Req, m.DelPref)
}
func (m AckForward) String() string {
	return fmt.Sprintf("ack-fwd(%v,%v,del-proxy=%t)", m.Proxy, m.Req, m.DelProxy)
}
func (m DelPrefOnly) String() string {
	return fmt.Sprintf("del-pref(%v,%v)", m.Proxy, m.MH)
}
func (m ServerRequest) String() string {
	return fmt.Sprintf("srv-request(%v,%v,%dB)", m.Proxy, m.Req, len(m.Payload))
}
func (m ServerResult) String() string {
	return fmt.Sprintf("srv-result(%v,%v,%dB)", m.Proxy, m.Req, len(m.Payload))
}
func (m ServerAck) String() string { return fmt.Sprintf("srv-ack(%v)", m.Req) }
func (m MIPRegister) String() string {
	return fmt.Sprintf("mip-register(%v@%v)", m.MH, m.CareOf)
}
func (m MIPData) String() string {
	return fmt.Sprintf("mip-data(%v,%v,%dB)", m.MH, m.Req, len(m.Payload))
}
func (m MIPTunnel) String() string {
	return fmt.Sprintf("mip-tunnel(%v,%v,%dB)", m.MH, m.Req, len(m.Payload))
}
func (m ImageTransfer) String() string {
	return fmt.Sprintf("image-transfer(%v,pending=%d,results=%d)", m.MH, len(m.Pending), len(m.Results))
}

func (m TISQuery) String() string {
	return fmt.Sprintf("tis-query(%d,%v,%v,region=%d,hops=%d)", m.QID, m.Op, m.Origin, m.Region, m.Hops)
}
func (m TISReply) String() string {
	return fmt.Sprintf("tis-reply(%d,region=%d,value=%d,hops=%d)", m.QID, m.Region, m.Value, m.Hops)
}
func (m TISDeliver) String() string {
	return fmt.Sprintf("tis-deliver(%v,group=%d,seq=%d,%dB)", m.Member, m.Group, m.Seq, len(m.Data))
}

func (m LinkFrame) String() string {
	return fmt.Sprintf("link-frame(seq=%d,%v)", m.Seq, m.Inner)
}
func (m LinkAck) String() string    { return fmt.Sprintf("link-ack(seq=%d)", m.Seq) }
func (m RegConfirm) String() string { return fmt.Sprintf("reg-confirm(%v)", m.MH) }
func (m Busy) String() string       { return fmt.Sprintf("busy(%v)", m.Req) }
func (m Admit) String() string      { return fmt.Sprintf("admit(%v)", m.Req) }
func (m MigOffer) String() string {
	return fmt.Sprintf("mig-offer(%v,%v,pending=%d,load=%d,loadchk=%t)",
		m.Proxy, m.MH, m.Pending, m.HostLoad, m.LoadCheck)
}
func (m MigCommit) String() string {
	return fmt.Sprintf("mig-commit(%v->%v,%v,accept=%t)", m.Proxy, m.NewProxy, m.MH, m.Accept)
}
func (m MigState) String() string {
	return fmt.Sprintf("mig-state(%v->%v,%v,currl=%v,reqs=%d)",
		m.Proxy, m.NewProxy, m.MH, m.CurrentLoc, len(m.Reqs))
}
func (m PrefRedirect) String() string {
	return fmt.Sprintf("pref-redirect(%v,%v->%v,%v,confirm=%t)",
		m.MH, m.OldProxy, m.NewProxy, m.Req, m.Confirm)
}
func (m MigGC) String() string {
	return fmt.Sprintf("mig-gc(%v->%v,%v)", m.OldProxy, m.NewProxy, m.MH)
}
func (m BatchOpen) String() string {
	return fmt.Sprintf("batch-open(%v,%v,%v)", m.Proxy, m.MH, m.Batch)
}
func (m BatchItem) String() string {
	return fmt.Sprintf("batch-item(%v,%v,%v->%v,%dB)", m.Proxy, m.Batch, m.Req, m.Server, len(m.Payload))
}
func (m BatchCommit) String() string {
	return fmt.Sprintf("batch-commit(%v,%v,count=%d)", m.Proxy, m.Batch, m.Count)
}
func (m BatchAbort) String() string {
	return fmt.Sprintf("batch-abort(%v,%v,reqs=%d)", m.Proxy, m.Batch, len(m.Reqs))
}
func (m Register) String() string {
	return fmt.Sprintf("register(%v,%v)", m.MH, m.Inc)
}
func (m LeaseHeartbeat) String() string {
	return fmt.Sprintf("lease-hb(%v,%v,%v)", m.Proxy, m.MH, m.Inc)
}
func (m ReclaimMemo) String() string {
	return fmt.Sprintf("reclaim-memo(%v,%v,%v)", m.Proxy, m.MH, m.Inc)
}
func (m WtpData) String() string {
	return fmt.Sprintf("wtp-data(ep=%d,seq=%d,msgs=%d)", m.Epoch, m.Seq, len(m.Inner))
}
func (m WtpAck) String() string {
	return fmt.Sprintf("wtp-ack(ep=%d,cum=%d,sacks=%d)", m.Epoch, m.Cum, len(m.Sacks))
}
func (m GroupUpdateLoc) String() string {
	return fmt.Sprintf("group-update-loc(%v,new=%v,%dB)", m.Proxy, m.NewLoc, len(m.Members))
}
func (m GroupAckForward) String() string {
	return fmt.Sprintf("group-ack-fwd(%v,%dB,seqs=%d)", m.Proxy, len(m.Members), len(m.Seqs))
}

// Compile-time interface checks.
var (
	_ Message = Join{}
	_ Message = Leave{}
	_ Message = Greet{}
	_ Message = Request{}
	_ Message = ResultDeliver{}
	_ Message = AckMH{}
	_ Message = Dereg{}
	_ Message = DeregAck{}
	_ Message = RequestForward{}
	_ Message = UpdateCurrentLoc{}
	_ Message = ResultForward{}
	_ Message = AckForward{}
	_ Message = DelPrefOnly{}
	_ Message = ServerRequest{}
	_ Message = ServerResult{}
	_ Message = ServerAck{}
	_ Message = MIPRegister{}
	_ Message = MIPData{}
	_ Message = MIPTunnel{}
	_ Message = ImageTransfer{}
	_ Message = TISQuery{}
	_ Message = TISReply{}
	_ Message = TISDeliver{}
	_ Message = LinkFrame{}
	_ Message = LinkAck{}
	_ Message = RegConfirm{}
	_ Message = Busy{}
	_ Message = Admit{}
	_ Message = MigOffer{}
	_ Message = MigCommit{}
	_ Message = MigState{}
	_ Message = PrefRedirect{}
	_ Message = MigGC{}
	_ Message = BatchOpen{}
	_ Message = BatchItem{}
	_ Message = BatchCommit{}
	_ Message = BatchAbort{}
	_ Message = Register{}
	_ Message = LeaseHeartbeat{}
	_ Message = ReclaimMemo{}
	_ Message = WtpData{}
	_ Message = WtpAck{}
	_ Message = GroupUpdateLoc{}
	_ Message = GroupAckForward{}
)
