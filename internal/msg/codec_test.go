package msg

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// sampleMessages returns one populated instance of every message kind.
func sampleMessages() []Message {
	req := ids.RequestID{Origin: 3, Seq: 41}
	prx := ids.ProxyID{Host: 2, Seq: 5}
	return []Message{
		Join{MH: 3},
		Leave{MH: 3},
		Greet{MH: 3, OldMSS: 2, Inc: 2},
		Request{Req: req, Server: 1, Payload: []byte("query traffic zone 4"), Inc: 1},
		ResultDeliver{Req: req, Payload: []byte("result"), DelPref: true, Inc: 1},
		AckMH{MH: 3, Req: req},
		Dereg{MH: 3, NewMSS: 4},
		DeregAck{MH: 3, Pref: Pref{Proxy: prx, RKpR: true}},
		RequestForward{Proxy: prx, Req: req, Server: 1, Payload: []byte("p")},
		UpdateCurrentLoc{Proxy: prx, MH: 3, NewLoc: 4},
		ResultForward{Proxy: prx, MH: 3, Req: req, Payload: []byte("r"), DelPref: true},
		AckForward{Proxy: prx, MH: 3, Req: req, DelProxy: true},
		DelPrefOnly{Proxy: prx, MH: 3},
		ServerRequest{Proxy: prx, Req: req, Payload: []byte("sq")},
		ServerResult{Proxy: prx, Req: req, Payload: []byte("sr")},
		ServerAck{Req: req},
		MIPRegister{MH: 3, CareOf: 2},
		MIPData{MH: 3, Req: req, Payload: []byte("d")},
		MIPTunnel{MH: 3, Req: req, Payload: []byte("t")},
		ImageTransfer{
			MH:      3,
			Pending: []ids.RequestID{req, {Origin: 3, Seq: 42}},
			Results: [][]byte{[]byte("a"), []byte("bb")},
		},
		TISQuery{QID: 9, Origin: 2, Op: TISOpSubscribe, Region: 14, Value: 30, Hops: 2, Proxy: prx, Req: req},
		TISQuery{QID: 10, Origin: 2, Op: TISOpMulticast, Region: 3, Hops: 1, Proxy: prx, Req: req, Data: []byte("to the fleet")},
		TISReply{QID: 9, Region: 14, Value: 72, Stamp: 123456789, Hops: 3},
		TISDeliver{Member: 3, Group: 7, Seq: 42, Data: []byte("msg")},
		LinkFrame{Seq: 17, Inner: Dereg{MH: 3, NewMSS: 4}},
		LinkAck{Seq: 17},
		RegConfirm{MH: 3},
		Busy{Req: req},
		Admit{Req: req},
		MigOffer{Proxy: prx, MH: 3, Pending: 2, HostLoad: 4, LoadCheck: true},
		MigCommit{Proxy: prx, NewProxy: ids.ProxyID{Host: 4, Seq: 9}, MH: 3, Accept: true},
		MigState{
			Proxy:      prx,
			NewProxy:   ids.ProxyID{Host: 4, Seq: 9},
			MH:         3,
			CurrentLoc: 4,
			Reqs: []MigReqState{
				{Req: req, Server: 1, Payload: []byte("q"), Result: []byte("r"), HasResult: true, Forwarded: true, Inc: 1},
				{Req: ids.RequestID{Origin: 3, Seq: 42}, Server: 2, Payload: []byte("q2"), Batch: ids.BatchID{Origin: 3, Seq: 1}, Inc: 2},
			},
			Batches: []MigBatchState{
				{Batch: ids.BatchID{Origin: 3, Seq: 1}, Expected: 2, Committed: true, Inc: 2},
				{Batch: ids.BatchID{Origin: 3, Seq: 2}, Aborted: true},
			},
			LeaseInc: 2,
		},
		PrefRedirect{MH: 3, OldProxy: prx, NewProxy: ids.ProxyID{Host: 4, Seq: 9}, Req: req, Confirm: true},
		MigGC{OldProxy: prx, NewProxy: ids.ProxyID{Host: 4, Seq: 9}, MH: 3},
		BatchOpen{Proxy: prx, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}},
		BatchItem{Proxy: prx, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}, Req: req, Server: 1, Payload: []byte("bq")},
		BatchCommit{Proxy: prx, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}, Count: 2},
		BatchAbort{Proxy: prx, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}, Reqs: []ids.RequestID{req, {Origin: 3, Seq: 42}}},
		Register{MH: 3, Inc: 2},
		LeaseHeartbeat{Proxy: prx, MH: 3, Inc: 2},
		ReclaimMemo{Proxy: prx, MH: 3, Inc: 1},
		WtpData{Epoch: 1, Seq: 9, Inner: []Message{
			ResultDeliver{Req: req, Payload: []byte("r1"), Inc: 1},
			AckMH{MH: 3, Req: req},
		}},
		WtpAck{Epoch: 1, Cum: 8, Sacks: []uint64{10, 12}},
		GroupUpdateLoc{Proxy: prx, NewLoc: 4, Members: []byte{3, 1, 1, 1}},
		GroupAckForward{Proxy: prx, Members: []byte{2, 3, 1}, Seqs: []uint32{7, 9}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		t.Run(m.Kind().String(), func(t *testing.T) {
			b, err := Encode(m)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			got, err := Decode(b)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Errorf("round trip changed message:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

func TestEveryKindCovered(t *testing.T) {
	seen := make(map[Kind]bool)
	for _, m := range sampleMessages() {
		seen[m.Kind()] = true
	}
	for k := KindInvalid + 1; k < kindSentinel; k++ {
		if !seen[k] {
			t.Errorf("sampleMessages misses kind %v; codec round-trip untested", k)
		}
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b, err := Encode(Join{MH: 1})
	if err != nil {
		t.Fatal(err)
	}
	b[0] = codecVersion + 1
	if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Errorf("Decode = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsBadKind(t *testing.T) {
	b := []byte{codecVersion, byte(kindSentinel), 0, 0, 0, 1}
	if _, err := Decode(b); !errors.Is(err, ErrBadKind) {
		t.Errorf("Decode = %v, want ErrBadKind", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		// Every strict prefix must fail cleanly, never panic.
		for i := 0; i < len(b); i++ {
			if _, err := Decode(b[:i]); err == nil {
				t.Errorf("%v: Decode of %d/%d-byte prefix succeeded", m.Kind(), i, len(b))
			}
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b, err := Encode(AckMH{MH: 1, Req: ids.RequestID{Origin: 1, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, 0xFF)
	if _, err := Decode(b); !errors.Is(err, ErrTrailing) {
		t.Errorf("Decode = %v, want ErrTrailing", err)
	}
}

func TestDecodeRejectsHugeLengthPrefix(t *testing.T) {
	// A Request whose payload length prefix claims more bytes than the
	// buffer holds must fail with ErrTruncated, not allocate.
	e := encoder{}
	e.u8(codecVersion)
	e.u8(uint8(KindRequest))
	e.req(ids.RequestID{Origin: 1, Seq: 1})
	e.u32(1)
	e.u32(0xFFFFFFFF) // absurd payload length
	if _, err := Decode(e.buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode = %v, want ErrTruncated", err)
	}
}

func TestDecodeCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	msgs := sampleMessages()
	for trial := 0; trial < 2000; trial++ {
		m := msgs[rng.Intn(len(msgs))]
		b, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		// Flip up to three random bytes; Decode must return either a
		// valid message or an error, never panic.
		for i := 0; i < 1+rng.Intn(3); i++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Decode(b)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(origin, seq, server uint32, payload []byte) bool {
		m := Request{
			Req:     ids.RequestID{Origin: ids.MH(origin), Seq: seq},
			Server:  ids.Server(server),
			Payload: payload,
		}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		gr, ok := got.(Request)
		if !ok {
			return false
		}
		// nil and empty payloads are both decoded as nil.
		if len(payload) == 0 {
			return gr.Payload == nil && gr.Req == m.Req && gr.Server == m.Server
		}
		return reflect.DeepEqual(gr, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestImageTransferRoundTripProperty(t *testing.T) {
	f := func(mh uint32, seqs []uint32, results [][]byte) bool {
		m := ImageTransfer{MH: ids.MH(mh)}
		for _, s := range seqs {
			m.Pending = append(m.Pending, ids.RequestID{Origin: ids.MH(mh), Seq: s})
		}
		for _, r := range results {
			if len(r) == 0 {
				r = nil // codec normalizes empty to nil
			}
			m.Results = append(m.Results, r)
		}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWireSize(t *testing.T) {
	// DeregAck (RDP hand-off state) must be constant-size, independent of
	// the number of pending requests — the core of experiment E6.
	small := DeregAck{MH: 1, Pref: Pref{Proxy: ids.ProxyID{Host: 1, Seq: 1}}}
	if got := WireSize(small); got == 0 {
		t.Fatal("WireSize returned 0 for a valid message")
	}
	img := ImageTransfer{MH: 1}
	for i := 0; i < 50; i++ {
		img.Pending = append(img.Pending, ids.RequestID{Origin: 1, Seq: uint32(i)})
		img.Results = append(img.Results, make([]byte, 100))
	}
	if WireSize(img) <= WireSize(small)*10 {
		t.Error("image transfer should dwarf the RDP pref hand-off")
	}
}

func TestKindString(t *testing.T) {
	if got := KindUpdateCurrentLoc.String(); got != "update-currl" {
		t.Errorf("Kind.String() = %q, want %q", got, "update-currl")
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("Kind.String() = %q, want %q", got, "kind(200)")
	}
}

func TestKindValid(t *testing.T) {
	if KindInvalid.Valid() {
		t.Error("KindInvalid must not be valid")
	}
	if kindSentinel.Valid() {
		t.Error("sentinel must not be valid")
	}
	if !KindGreet.Valid() {
		t.Error("KindGreet must be valid")
	}
}

func TestPrefString(t *testing.T) {
	if got := (Pref{}).String(); got != "pref(nil)" {
		t.Errorf("empty pref String() = %q", got)
	}
	p := Pref{Proxy: ids.ProxyID{Host: 2, Seq: 1}, RKpR: true}
	if got := p.String(); got != "pref(proxy(mss2#1),RKpR=true)" {
		t.Errorf("pref String() = %q", got)
	}
}

func BenchmarkEncodeResultForward(b *testing.B) {
	m := ResultForward{
		Proxy:   ids.ProxyID{Host: 2, Seq: 5},
		MH:      3,
		Req:     ids.RequestID{Origin: 3, Seq: 41},
		Payload: make([]byte, 256),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeResultForward(b *testing.B) {
	m := ResultForward{
		Proxy:   ids.ProxyID{Host: 2, Seq: 5},
		MH:      3,
		Req:     ids.RequestID{Origin: 3, Seq: 41},
		Payload: make([]byte, 256),
	}
	buf, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic
// and, when it succeeds, re-encoding must round-trip.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		b2, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		m2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n%#v\n%#v", m, m2)
		}
	})
}

// TestStringRendering exercises every message's trace rendering: each
// must be non-empty, parenthesized, and distinct per kind (traces rely
// on the prefix to name the message type).
func TestStringRendering(t *testing.T) {
	seen := make(map[string]Kind)
	for _, m := range sampleMessages() {
		s := fmt.Sprint(m)
		if s == "" {
			t.Errorf("%v renders empty", m.Kind())
			continue
		}
		if !strings.Contains(s, "(") || !strings.HasSuffix(s, ")") {
			t.Errorf("%v renders %q; want name(...) form", m.Kind(), s)
		}
		prefix := s[:strings.Index(s, "(")]
		if prev, dup := seen[prefix]; dup && prev != m.Kind() {
			t.Errorf("prefix %q used by both %v and %v", prefix, prev, m.Kind())
		}
		seen[prefix] = m.Kind()
	}
}

// TestWireSizeEveryKind checks WireSize is consistent with Encode for
// every message kind (it is defined as the encoded length).
func TestWireSizeEveryKind(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %v: %v", m.Kind(), err)
		}
		if got := WireSize(m); got != len(b) {
			t.Errorf("WireSize(%v) = %d, want %d", m.Kind(), got, len(b))
		}
	}
}

// TestTISOpString names every operation and the unknown fallback.
func TestTISOpString(t *testing.T) {
	want := map[TISOp]string{
		TISOpQuery:     "query",
		TISOpUpdate:    "update",
		TISOpSubscribe: "subscribe",
		TISOpMailbox:   "mailbox",
		TISOpMulticast: "multicast",
		TISOp(99):      "tisop(99)",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("TISOp(%d).String() = %q, want %q", uint8(op), got, s)
		}
	}
}
