package msg

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

func allocSample() ResultForward {
	return ResultForward{
		Proxy:   ids.ProxyID{Host: 2, Seq: 5},
		MH:      3,
		Req:     ids.RequestID{Origin: 3, Seq: 41},
		Payload: bytes.Repeat([]byte{0xAB}, 256),
		DelPref: true,
	}
}

// TestEncodeDecodeAllocBudget pins the codec fast path to zero
// allocations: AppendEncode into a warm buffer and DecodeInto a
// caller-owned struct must not allocate at all. A regression here (a
// stray boxing, a lost buffer reuse) fails immediately rather than
// showing up as benchmark drift.
func TestEncodeDecodeAllocBudget(t *testing.T) {
	m := allocSample()
	// Transports hold messages boxed in the Message interface already;
	// box once here so the measurement covers the codec, not the
	// caller's interface conversion.
	var boxed Message = m
	enc, err := Encode(boxed)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		b, err := AppendEncode(enc[:0], boxed)
		if err != nil {
			panic(err)
		}
		enc = b
	}); avg != 0 {
		t.Errorf("AppendEncode into warm buffer: %.1f allocs/op, budget 0", avg)
	}

	var dst ResultForward
	if avg := testing.AllocsPerRun(200, func() {
		if err := DecodeInto(enc, &dst); err != nil {
			panic(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeInto: %.1f allocs/op, budget 0", avg)
	}
	if dst.Req != m.Req || !bytes.Equal(dst.Payload, m.Payload) || !dst.DelPref {
		t.Errorf("DecodeInto round trip corrupted message: %+v", dst)
	}

	// WireSize draws its scratch buffer from a pool; after warm-up it
	// must not allocate either.
	WireSize(boxed)
	if avg := testing.AllocsPerRun(200, func() { WireSize(boxed) }); avg != 0 {
		t.Errorf("WireSize: %.1f allocs/op, budget 0", avg)
	}
}

// TestDecodeIntoAliasesInput documents the aliasing contract: the
// decoded payload shares memory with the input buffer.
func TestDecodeIntoAliasesInput(t *testing.T) {
	enc, err := Encode(allocSample())
	if err != nil {
		t.Fatal(err)
	}
	var dst ResultForward
	if err := DecodeInto(enc, &dst); err != nil {
		t.Fatal(err)
	}
	if len(dst.Payload) == 0 {
		t.Fatal("empty payload")
	}
	// The wire layout ends payload, DelPref, Inc, so the payload's last
	// byte sits just before the trailing bool + u32 incarnation.
	enc[len(enc)-6] ^= 0xFF
	if dst.Payload[len(dst.Payload)-1] == 0xAB {
		t.Error("DecodeInto copied the payload; expected it to alias the input")
	}
}

// TestDecodeIntoKindMismatch rejects a wire kind that does not match
// the destination type without touching it.
func TestDecodeIntoKindMismatch(t *testing.T) {
	enc, err := Encode(Join{MH: 4})
	if err != nil {
		t.Fatal(err)
	}
	dst := ResultForward{MH: 99}
	if err := DecodeInto(enc, &dst); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if dst.MH != 99 {
		t.Errorf("destination modified on mismatch: %+v", dst)
	}
}

// TestDecodeIntoMatchesDecode cross-checks the two decode paths over
// every sample message (except link frames, whose inner message makes
// direct struct comparison awkward — the codec round-trip tests cover
// them).
func TestDecodeIntoMatchesDecode(t *testing.T) {
	for _, m := range sampleMessages() {
		if m.Kind() == KindLinkFrame {
			continue
		}
		enc, err := Encode(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		boxed, err := Decode(enc)
		if err != nil {
			t.Fatalf("%T: Decode: %v", m, err)
		}
		var reenc1, reenc2 []byte
		if reenc1, err = Encode(boxed); err != nil {
			t.Fatalf("%T: re-encode boxed: %v", m, err)
		}
		// Decode into the concrete type via the generic path, then
		// re-encode; both paths must agree byte-for-byte.
		reenc2, err = decodeIntoReencode(m, enc)
		if err != nil {
			t.Fatalf("%T: DecodeInto: %v", m, err)
		}
		if !bytes.Equal(reenc1, reenc2) {
			t.Errorf("%T: Decode and DecodeInto disagree:\n%x\n%x", m, reenc1, reenc2)
		}
	}
}

// decodeIntoReencode round-trips enc through DecodeInto at m's concrete
// type and re-encodes the result.
func decodeIntoReencode(m Message, enc []byte) ([]byte, error) {
	switch m.(type) {
	case Join:
		return viaDecodeInto[Join](enc)
	case Leave:
		return viaDecodeInto[Leave](enc)
	case Greet:
		return viaDecodeInto[Greet](enc)
	case Request:
		return viaDecodeInto[Request](enc)
	case ResultDeliver:
		return viaDecodeInto[ResultDeliver](enc)
	case AckMH:
		return viaDecodeInto[AckMH](enc)
	case Dereg:
		return viaDecodeInto[Dereg](enc)
	case DeregAck:
		return viaDecodeInto[DeregAck](enc)
	case RequestForward:
		return viaDecodeInto[RequestForward](enc)
	case UpdateCurrentLoc:
		return viaDecodeInto[UpdateCurrentLoc](enc)
	case ResultForward:
		return viaDecodeInto[ResultForward](enc)
	case AckForward:
		return viaDecodeInto[AckForward](enc)
	case DelPrefOnly:
		return viaDecodeInto[DelPrefOnly](enc)
	case ServerRequest:
		return viaDecodeInto[ServerRequest](enc)
	case ServerResult:
		return viaDecodeInto[ServerResult](enc)
	case ServerAck:
		return viaDecodeInto[ServerAck](enc)
	case MIPRegister:
		return viaDecodeInto[MIPRegister](enc)
	case MIPData:
		return viaDecodeInto[MIPData](enc)
	case MIPTunnel:
		return viaDecodeInto[MIPTunnel](enc)
	case ImageTransfer:
		return viaDecodeInto[ImageTransfer](enc)
	case TISQuery:
		return viaDecodeInto[TISQuery](enc)
	case TISDeliver:
		return viaDecodeInto[TISDeliver](enc)
	case TISReply:
		return viaDecodeInto[TISReply](enc)
	case LinkAck:
		return viaDecodeInto[LinkAck](enc)
	case RegConfirm:
		return viaDecodeInto[RegConfirm](enc)
	case Busy:
		return viaDecodeInto[Busy](enc)
	case Admit:
		return viaDecodeInto[Admit](enc)
	case MigOffer:
		return viaDecodeInto[MigOffer](enc)
	case MigCommit:
		return viaDecodeInto[MigCommit](enc)
	case MigState:
		return viaDecodeInto[MigState](enc)
	case PrefRedirect:
		return viaDecodeInto[PrefRedirect](enc)
	case MigGC:
		return viaDecodeInto[MigGC](enc)
	case BatchOpen:
		return viaDecodeInto[BatchOpen](enc)
	case BatchItem:
		return viaDecodeInto[BatchItem](enc)
	case BatchCommit:
		return viaDecodeInto[BatchCommit](enc)
	case BatchAbort:
		return viaDecodeInto[BatchAbort](enc)
	case Register:
		return viaDecodeInto[Register](enc)
	case LeaseHeartbeat:
		return viaDecodeInto[LeaseHeartbeat](enc)
	case ReclaimMemo:
		return viaDecodeInto[ReclaimMemo](enc)
	case WtpData:
		return viaDecodeInto[WtpData](enc)
	case WtpAck:
		return viaDecodeInto[WtpAck](enc)
	case GroupUpdateLoc:
		return viaDecodeInto[GroupUpdateLoc](enc)
	case GroupAckForward:
		return viaDecodeInto[GroupAckForward](enc)
	}
	return nil, ErrBadKind
}

func viaDecodeInto[M Message](enc []byte) ([]byte, error) {
	var dst M
	if err := DecodeInto(enc, &dst); err != nil {
		return nil, err
	}
	return Encode(dst)
}

// BenchmarkAppendEncodeResultForward measures the warm encode path the
// transports use (compare BenchmarkEncodeResultForward, which pays for
// a fresh buffer each call).
func BenchmarkAppendEncodeResultForward(b *testing.B) {
	var m Message = allocSample()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := AppendEncode(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

// BenchmarkDecodeIntoResultForward measures the zero-copy decode path.
func BenchmarkDecodeIntoResultForward(b *testing.B) {
	enc, err := Encode(allocSample())
	if err != nil {
		b.Fatal(err)
	}
	var dst ResultForward
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(enc, &dst); err != nil {
			b.Fatal(err)
		}
	}
}
