package msg

import (
	"bytes"
	"testing"

	"repro/internal/ids"
)

// FuzzDecodeLinkFrames feeds arbitrary byte strings to the codec: it
// must never panic or over-allocate, and every message it accepts must
// re-encode to a fixed point (decode(encode(m)) == encode(m)). The seed
// corpus covers the link-layer (ARQ) frames added for wired-fault
// tolerance, including an illegal nested LinkFrame payload.
func FuzzDecodeLinkFrames(f *testing.F) {
	seeds := []Message{
		LinkAck{Seq: 42},
		LinkFrame{Seq: 7, Inner: Dereg{MH: 3, NewMSS: 2}},
		LinkFrame{Seq: 1, Inner: ResultForward{
			Proxy:   ids.ProxyID{Host: 1, Seq: 4},
			MH:      3,
			Req:     ids.RequestID{Origin: 3, Seq: 9},
			Payload: []byte("result"),
			DelPref: true,
		}},
		RegConfirm{MH: 5},
		UpdateCurrentLoc{Proxy: ids.ProxyID{Host: 2, Seq: 1}, MH: 4, NewLoc: 6},
		// Proxy-migration messages, bare and ARQ-framed, so the nested
		// MigState requestList codec is fuzz-covered from day one.
		MigOffer{Proxy: ids.ProxyID{Host: 1, Seq: 2}, MH: 3, Pending: 1, HostLoad: 2},
		MigCommit{Proxy: ids.ProxyID{Host: 1, Seq: 2}, NewProxy: ids.ProxyID{Host: 2, Seq: 7}, MH: 3, Accept: true},
		PrefRedirect{MH: 3, OldProxy: ids.ProxyID{Host: 1, Seq: 2}, NewProxy: ids.ProxyID{Host: 2, Seq: 7}, Req: ids.RequestID{Origin: 3, Seq: 9}},
		MigGC{OldProxy: ids.ProxyID{Host: 1, Seq: 2}, NewProxy: ids.ProxyID{Host: 2, Seq: 7}, MH: 3},
		LinkFrame{Seq: 11, Inner: MigState{
			Proxy:      ids.ProxyID{Host: 1, Seq: 2},
			NewProxy:   ids.ProxyID{Host: 2, Seq: 7},
			MH:         3,
			CurrentLoc: 2,
			Reqs: []MigReqState{
				{Req: ids.RequestID{Origin: 3, Seq: 9}, Server: 1, Payload: []byte("q"), Result: []byte("res"), HasResult: true, Forwarded: true},
			},
		}},
		// Atomic-batch messages (E17), bare and ARQ-framed, including a
		// MigState carrying batch-tagged requests so the extended
		// requestList/batchList codec is fuzz-covered from day one.
		BatchOpen{Proxy: ids.ProxyID{Host: 1, Seq: 2}, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}},
		BatchItem{Proxy: ids.ProxyID{Host: 1, Seq: 2}, MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}, Req: ids.RequestID{Origin: 3, Seq: 9}, Server: 1, Payload: []byte("bq")},
		BatchCommit{MH: 3, Batch: ids.BatchID{Origin: 3, Seq: 1}, Count: 3},
		LinkFrame{Seq: 12, Inner: BatchAbort{
			Proxy: ids.ProxyID{Host: 1, Seq: 2},
			MH:    3,
			Batch: ids.BatchID{Origin: 3, Seq: 1},
			Reqs:  []ids.RequestID{{Origin: 3, Seq: 9}, {Origin: 3, Seq: 10}},
		}},
		LinkFrame{Seq: 13, Inner: MigState{
			Proxy:    ids.ProxyID{Host: 1, Seq: 2},
			NewProxy: ids.ProxyID{Host: 2, Seq: 7},
			MH:       3,
			Reqs: []MigReqState{
				{Req: ids.RequestID{Origin: 3, Seq: 9}, Server: 1, Payload: []byte("q"), Batch: ids.BatchID{Origin: 3, Seq: 1}},
			},
			Batches: []MigBatchState{
				{Batch: ids.BatchID{Origin: 3, Seq: 1}, Expected: 1, Committed: true, Released: false},
			},
		}},
		// Crash/amnesia-recovery messages (E18), bare and ARQ-framed,
		// plus a migration transfer that carries incarnation-stamped
		// request/batch/lease state so the Inc codec paths are
		// fuzz-covered from day one.
		Register{MH: 3, Inc: 2},
		LeaseHeartbeat{Proxy: ids.ProxyID{Host: 1, Seq: 2}, MH: 3, Inc: 2},
		LinkFrame{Seq: 14, Inner: ReclaimMemo{Proxy: ids.ProxyID{Host: 1, Seq: 2}, MH: 3, Inc: 1}},
		LinkFrame{Seq: 15, Inner: MigState{
			Proxy:    ids.ProxyID{Host: 1, Seq: 2},
			NewProxy: ids.ProxyID{Host: 2, Seq: 7},
			MH:       3,
			LeaseInc: 3,
			Reqs: []MigReqState{
				{Req: ids.RequestID{Origin: 3, Seq: 9}, Server: 1, Payload: []byte("q"), Inc: 2},
			},
			Batches: []MigBatchState{
				{Batch: ids.BatchID{Origin: 3, Seq: 1}, Expected: 1, Inc: 3},
			},
		}},
		// Windowed-transport frames (E15): a coalesced multi-message data
		// frame, an empty frame, and a selective ack, so the nested
		// inner-list codec is fuzz-covered from day one.
		WtpData{Epoch: 1, Seq: 4, Inner: []Message{
			ResultDeliver{Req: ids.RequestID{Origin: 3, Seq: 9}, Payload: []byte("r1"), Inc: 1},
			ResultDeliver{Req: ids.RequestID{Origin: 3, Seq: 10}, Payload: []byte("r2"), DelPref: true, Inc: 1},
			AckMH{MH: 3, Req: ids.RequestID{Origin: 3, Seq: 8}},
		}},
		WtpData{Epoch: 2, Seq: 0},
		WtpAck{Epoch: 1, Cum: 3, Sacks: []uint64{5, 7, 9}},
		WtpAck{Epoch: 2, Cum: 0},
		// Aggregated-state messages (E16): a coalesced hand-off location
		// update and a batched forwarded-result ack, each carrying a
		// delta-encoded member set (here the literal bytes for {1,2,3}),
		// plus empty-set variants, so the opaque-membership codec paths
		// are fuzz-covered from day one.
		GroupUpdateLoc{Proxy: ids.ProxyID{Host: 1, Seq: 1<<31 | 2}, NewLoc: 5, Members: []byte{3, 1, 1, 1}},
		GroupUpdateLoc{Proxy: ids.ProxyID{Host: 1, Seq: 1<<31 | 2}, NewLoc: 6},
		GroupAckForward{Proxy: ids.ProxyID{Host: 1, Seq: 1<<31 | 2}, Members: []byte{3, 1, 1, 1}, Seqs: []uint32{4, 5, 6}},
		GroupAckForward{Proxy: ids.ProxyID{Host: 2, Seq: 1<<31 | 1}},
	}
	for _, m := range seeds {
		b, err := Encode(m)
		if err != nil {
			f.Fatalf("seed encode %v: %v", m, err)
		}
		f.Add(b)
	}
	// A hand-built illegal nesting: LinkFrame whose inner is a LinkAck.
	// The decoder must reject it without panicking.
	inner, err := Encode(LinkAck{Seq: 1})
	if err != nil {
		f.Fatal(err)
	}
	e := encoder{}
	e.u8(codecVersion)
	e.u8(uint8(KindLinkFrame))
	e.u64(9)
	e.bytes(inner)
	f.Add(e.buf)
	// And the windowed-transport variant: a WtpData frame whose inner
	// list smuggles in a WtpAck. Same rejection requirement.
	wack, err := Encode(WtpAck{Epoch: 1, Cum: 2})
	if err != nil {
		f.Fatal(err)
	}
	e = encoder{}
	e.u8(codecVersion)
	e.u8(uint8(KindWtpData))
	e.u64(1)
	e.u64(3)
	e.u32(1)
	e.bytes(wack)
	f.Add(e.buf)
	f.Add([]byte{})
	f.Add([]byte{codecVersion, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("Decode returned nil message and nil error")
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message %v does not re-encode: %v", m, err)
		}
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		re2, err := Encode(m2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("encoding not a fixed point:\n first  %x\n second %x", re, re2)
		}
	})
}
