package mobileip

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

func build(mutate func(*Config)) *World {
	cfg := DefaultConfig()
	cfg.NumMSS = 4
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = netsim.Constant(50 * time.Millisecond)
	if mutate != nil {
		mutate(&cfg)
	}
	return NewWorld(cfg)
}

func TestStationaryDelivery(t *testing.T) {
	w := build(nil)
	mn := w.AddMH(1, 2, 1) // visiting cell 2, home agent at mss1
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	w.RunUntil(time.Second)
	if !mn.Seen(req) {
		t.Fatal("result not delivered to stationary node")
	}
	if got := w.Stats.Tunnels.Value(); got != 1 {
		t.Errorf("Tunnels = %d, want 1", got)
	}
	if got := w.Stats.TunnelLoad[1]; got != 1 {
		t.Errorf("home agent load at mss1 = %d, want 1", got)
	}
	if got := w.Stats.TunnelLoad[2]; got != 0 {
		t.Errorf("foreign agent mss2 tunneled %d, want 0", got)
	}
}

func TestHomeAgentCoLocatedWithVisitor(t *testing.T) {
	w := build(nil)
	mn := w.AddMH(1, 1, 1) // at home
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	w.RunUntil(time.Second)
	if !mn.Seen(req) {
		t.Fatal("result not delivered at home")
	}
}

func TestDatagramLostDuringHandoff(t *testing.T) {
	// The §4 claim: a datagram tunneled while the care-of update is in
	// flight is lost, and nothing retransmits it.
	w := build(nil)
	mn := w.AddMH(1, 2, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	// Reply reaches the home agent at ~80ms; migrate at 70ms so the
	// tunnel goes to the old care-of address.
	w.Kernel.After(70*time.Millisecond, func() { w.Migrate(1, 3) })
	w.RunUntil(3 * time.Second)
	if mn.Seen(req) {
		t.Fatal("datagram should have been lost during hand-off")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 0 {
		t.Errorf("ResultsDelivered = %d, want 0", got)
	}
	if got := w.Stats.WirelessDrops.Value(); got == 0 {
		t.Error("expected a wireless drop at the stale care-of address")
	}
}

func TestDatagramLostWhileInactive(t *testing.T) {
	w := build(nil)
	mn := w.AddMH(1, 2, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	w.Kernel.After(30*time.Millisecond, func() { w.SetActive(1, false) })
	w.Kernel.After(500*time.Millisecond, func() { w.SetActive(1, true) })
	w.RunUntil(3 * time.Second)
	if mn.Seen(req) {
		t.Fatal("datagram should have been lost while inactive; Mobile IP has no recovery")
	}
}

func TestUpperLayerRetryRecovers(t *testing.T) {
	w := build(func(c *Config) { c.RequestTimeout = 300 * time.Millisecond })
	mn := w.AddMH(1, 2, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	w.Kernel.After(70*time.Millisecond, func() { w.Migrate(1, 3) })
	w.RunUntil(5 * time.Second)
	if !mn.Seen(req) {
		t.Fatal("upper-layer retry did not recover the lost datagram")
	}
	if got := w.Stats.RequestRetries.Value(); got == 0 {
		t.Error("no retries recorded")
	}
	// Recovery costs at least one extra timeout of latency.
	if got := w.Stats.ResultLatency.Max(); got < 300*time.Millisecond {
		t.Errorf("recovered latency = %v, want >= one timeout", got)
	}
}

func TestLoadConcentratesAtHomeAgent(t *testing.T) {
	// All nodes share home mss1 and roam elsewhere: every reply funnels
	// through mss1 regardless of location — the E5 contrast with RDP.
	w := build(nil)
	for i := 1; i <= 6; i++ {
		mn := w.AddMH(ids.MH(i), ids.MSS(i%3+2), 1)
		for j := 0; j < 5; j++ {
			at := time.Duration(j)*200*time.Millisecond + time.Duration(i)*10*time.Millisecond
			w.Kernel.After(at, func() { mn.IssueRequest(1, []byte("x")) })
		}
	}
	w.RunUntil(10 * time.Second)
	if got := w.Stats.TunnelLoad[1]; got != 30 {
		t.Errorf("home agent tunneled %d datagrams, want 30", got)
	}
	for _, mss := range w.StationList()[1:] {
		if got := w.Stats.TunnelLoad[mss]; got != 0 {
			t.Errorf("station %v tunneled %d, want 0", mss, got)
		}
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 30 {
		t.Errorf("delivered %d of 30", got)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// The upper-layer shim can cause duplicate replies; the node must
	// count but not re-deliver them.
	w := build(func(c *Config) { c.RequestTimeout = 50 * time.Millisecond })
	mn := w.AddMH(1, 2, 1)
	var req ids.RequestID
	w.Kernel.After(0, func() { req = mn.IssueRequest(1, []byte("q")) })
	w.RunUntil(3 * time.Second)
	if !mn.Seen(req) {
		t.Fatal("not delivered")
	}
	// Round trip ~85ms > 50ms timeout, so at least one retry fired and
	// produced a duplicate reply.
	if w.Stats.Duplicates.Value() == 0 {
		t.Error("expected duplicate replies from aggressive retry")
	}
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1 despite duplicates", got)
	}
}

func TestMigrationRegistrationFlow(t *testing.T) {
	w := build(nil)
	w.AddMH(1, 2, 1)
	w.RunUntil(100 * time.Millisecond)
	before := w.Stats.Registrations.Value()
	w.Migrate(1, 4)
	w.RunUntil(time.Second)
	if got := w.Stats.Registrations.Value(); got != before+1 {
		t.Errorf("Registrations = %d, want %d", got, before+1)
	}
	if got := w.Home(1); got != 1 {
		t.Errorf("Home = %v, want mss1 (home never moves)", got)
	}
}

func TestWorldValidation(t *testing.T) {
	w := build(nil)
	w.AddMH(1, 1, 1)
	for name, fn := range map[string]func(){
		"duplicate MH": func() { w.AddMH(1, 1, 1) },
		"bad cell":     func() { w.AddMH(2, 99, 1) },
		"bad home":     func() { w.AddMH(3, 1, 99) },
		"unknown migrate": func() {
			w.Migrate(55, 1)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		})
	}
}
