// Package mobileip implements the Mobile IP-style baseline the paper
// compares RDP against (§4): datagrams for a mobile host are routed to
// its *fixed* home agent, which tunnels them to the registered care-of
// address (the foreign agent of the MH's current cell).
//
// Faithful to the comparison, the baseline provides NO delivery
// guarantee: "IP datagrams may be lost while a new care-of address
// change is on its way to the home agent, or during the periods of
// inactivity of the mobile host". Recovery, if any, comes from an
// optional upper-layer timeout-retransmit shim at the client ("Mobile IP
// delegates the task of detecting and re-transmitting lost datagrams to
// upper network layers").
//
// The two structural differences measured by the experiments:
//
//   - E5: the home agent is fixed, so forwarding load concentrates on
//     home stations instead of following the MH (no load balancing).
//   - E7: datagram losses during hand-off/inactivity reduce delivery
//     ratio, and timeout recovery costs latency.
package mobileip

import (
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Config parameterizes a Mobile IP world.
type Config struct {
	Seed            int64
	NumMSS          int
	NumServers      int
	WiredLatency    netsim.LatencyModel
	WirelessLatency netsim.LatencyModel
	// WiredPairLatency, when set, overrides WiredLatency per host pair —
	// e.g. netsim.RingLatency, so the baseline pays the same
	// distance-dependent backbone costs as RDP on a ring topology (E12).
	WiredPairLatency func(from, to ids.NodeID) netsim.LatencyModel
	WirelessLoss     float64
	ServerProc       netsim.LatencyModel
	// RequestTimeout, when positive, enables the upper-layer retransmit
	// shim at mobile nodes.
	RequestTimeout time.Duration
	// Observer, when set, receives all network events.
	Observer netsim.Observer
}

// DefaultConfig mirrors rdpcore.DefaultConfig's network parameters.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		NumMSS:          3,
		NumServers:      1,
		WiredLatency:    netsim.Constant(5 * time.Millisecond),
		WirelessLatency: netsim.Constant(20 * time.Millisecond),
		ServerProc:      netsim.Constant(150 * time.Millisecond),
	}
}

// Stats aggregates the baseline's measurements.
type Stats struct {
	RequestsIssued   metrics.Counter
	RequestRetries   metrics.Counter
	ResultsDelivered metrics.Counter
	Duplicates       metrics.Counter
	Registrations    metrics.Counter
	Tunnels          metrics.Counter
	WirelessDrops    metrics.Counter
	ResultLatency    metrics.Histogram

	// TunnelLoad counts datagrams tunneled per station while acting as a
	// home agent — the E5 concentration measure.
	TunnelLoad map[ids.MSS]int64
}

// NewStats returns an initialized Stats.
func NewStats() *Stats {
	return &Stats{TunnelLoad: make(map[ids.MSS]int64)}
}

// World is the Mobile IP simulation world: stations double as foreign
// agents and (for their assigned MHs) home agents.
type World struct {
	cfg   Config
	Stats *Stats

	Kernel   *sim.Kernel
	Wired    *netsim.Wired
	Wireless *netsim.Wireless

	stations map[ids.MSS]*station
	servers  map[ids.Server]*mipServer
	mhs      map[ids.MH]*MobileNode

	mssList []ids.MSS
	home    map[ids.MH]ids.MSS // fixed home agent assignment
	loc     map[ids.MH]ids.MSS
	active  map[ids.MH]bool
}

// NewWorld builds a Mobile IP world.
func NewWorld(cfg Config) *World {
	if cfg.NumMSS < 1 {
		panic("mobileip: Config.NumMSS must be >= 1")
	}
	w := &World{
		cfg:      cfg,
		Stats:    NewStats(),
		Kernel:   sim.NewKernel(cfg.Seed),
		stations: make(map[ids.MSS]*station),
		servers:  make(map[ids.Server]*mipServer),
		mhs:      make(map[ids.MH]*MobileNode),
		home:     make(map[ids.MH]ids.MSS),
		loc:      make(map[ids.MH]ids.MSS),
		active:   make(map[ids.MH]bool),
	}
	members := make([]ids.NodeID, 0, cfg.NumMSS+cfg.NumServers)
	for i := 1; i <= cfg.NumMSS; i++ {
		w.mssList = append(w.mssList, ids.MSS(i))
		members = append(members, ids.MSS(i).Node())
	}
	for i := 1; i <= cfg.NumServers; i++ {
		members = append(members, ids.Server(i).Node())
	}
	obs := func(at sim.Time, layer netsim.Layer, kind netsim.EventKind, from, to ids.NodeID, m msg.Message) {
		if layer == netsim.LayerWireless && kind.IsDrop() {
			w.Stats.WirelessDrops.Inc()
		}
		if cfg.Observer != nil {
			cfg.Observer(at, layer, kind, from, to, m)
		}
	}
	// Plain IP has no ordering guarantee; the wired net runs without the
	// causal layer.
	w.Wired = netsim.NewWired(w.Kernel, members, netsim.WiredConfig{
		Latency:     cfg.WiredLatency,
		PairLatency: cfg.WiredPairLatency,
	}, obs)
	w.Wireless = netsim.NewWireless(w.Kernel, netsim.WirelessConfig{
		Latency:   cfg.WirelessLatency,
		LossProb:  cfg.WirelessLoss,
		Reachable: func(mss ids.MSS, mh ids.MH) bool { return w.loc[mh] == mss && w.active[mh] },
	}, obs)

	for _, id := range w.mssList {
		st := &station{id: id, w: w, careOf: make(map[ids.MH]ids.MSS)}
		w.stations[id] = st
		w.Wired.Register(id.Node(), st)
		w.Wireless.RegisterMSS(id, st)
	}
	for i := 1; i <= cfg.NumServers; i++ {
		id := ids.Server(i)
		s := &mipServer{id: id, w: w, rng: w.Kernel.RNG().Fork()}
		w.servers[id] = s
		w.Wired.Register(id.Node(), s)
	}
	return w
}

// StationList returns station identifiers in ascending order.
func (w *World) StationList() []ids.MSS {
	return append([]ids.MSS(nil), w.mssList...)
}

// AddMH creates a mobile node in the given cell with the given fixed
// home agent, and registers its initial care-of address.
func (w *World) AddMH(id ids.MH, cell, home ids.MSS) *MobileNode {
	if _, dup := w.mhs[id]; dup {
		panic(fmt.Sprintf("mobileip: duplicate MH %v", id))
	}
	if _, ok := w.stations[cell]; !ok {
		panic(fmt.Sprintf("mobileip: unknown cell %v", cell))
	}
	if _, ok := w.stations[home]; !ok {
		panic(fmt.Sprintf("mobileip: unknown home %v", home))
	}
	mn := &MobileNode{
		id:       id,
		w:        w,
		seen:     make(map[ids.RequestID]bool),
		issuedAt: make(map[ids.RequestID]sim.Time),
	}
	w.mhs[id] = mn
	w.home[id] = home
	w.loc[id] = cell
	w.active[id] = true
	mn.cell = cell
	w.Wireless.RegisterMH(id, mn)
	mn.register()
	return mn
}

// Home returns the MH's fixed home agent station.
func (w *World) Home(id ids.MH) ids.MSS { return w.home[id] }

// Node returns the mobile node handle for an MH added with AddMH, or
// nil if unknown.
func (w *World) Node(id ids.MH) *MobileNode { return w.mhs[id] }

// Migrate moves the MH; an active node re-registers its care-of address
// with its home agent via the new foreign agent. Datagrams tunneled to
// the old care-of address while the registration is in flight are lost.
func (w *World) Migrate(id ids.MH, cell ids.MSS) {
	mn, ok := w.mhs[id]
	if !ok {
		panic(fmt.Sprintf("mobileip: unknown MH %v", id))
	}
	if w.loc[id] == cell {
		return
	}
	w.loc[id] = cell
	mn.cell = cell
	if w.active[id] {
		mn.register()
	}
}

// SetActive toggles the node's activity; activation re-registers.
func (w *World) SetActive(id ids.MH, activeNow bool) {
	mn, ok := w.mhs[id]
	if !ok {
		panic(fmt.Sprintf("mobileip: unknown MH %v", id))
	}
	if w.active[id] == activeNow {
		return
	}
	w.active[id] = activeNow
	if activeNow {
		mn.register()
	}
}

// RunUntil advances the simulation.
func (w *World) RunUntil(t time.Duration) { w.Kernel.RunUntil(sim.Time(t)) }

// station is one MSS acting as foreign agent for visitors and home
// agent for the MHs whose home it is.
type station struct {
	id     ids.MSS
	w      *World
	careOf map[ids.MH]ids.MSS // populated only at the MH's home agent
}

// HandleMessage implements netsim.Handler.
func (s *station) HandleMessage(from ids.NodeID, m msg.Message) {
	switch v := m.(type) {
	case msg.MIPRegister:
		// Uplink leg: a visitor registering through us as foreign agent
		// -> relay to the home agent. Wired leg: we are the home agent.
		if from.Kind == ids.KindMH {
			s.w.Wired.Send(s.id.Node(), s.w.home[v.MH].Node(), v)
			return
		}
		s.careOf[v.MH] = v.CareOf
		s.w.Stats.Registrations.Inc()
	case msg.Request:
		// Foreign agent: forward the visitor's request to the server.
		s.w.Wired.Send(s.id.Node(), v.Server.Node(),
			msg.MIPData{MH: v.Req.Origin, Req: v.Req, Payload: v.Payload})
	case msg.MIPData:
		// We are the home agent for this MH: tunnel to the registered
		// care-of address; without one the datagram is dropped.
		co, ok := s.careOf[v.MH]
		if !ok {
			return
		}
		s.w.Stats.Tunnels.Inc()
		s.w.Stats.TunnelLoad[s.id]++
		if co == s.id {
			s.deliver(msg.MIPTunnel(v))
			return
		}
		s.w.Wired.Send(s.id.Node(), co.Node(), msg.MIPTunnel(v))
	case msg.MIPTunnel:
		s.deliver(v)
	}
}

// deliver makes the final wireless hop; the frame is silently lost if
// the MH has moved on or sleeps — no agent retries (§4).
func (s *station) deliver(v msg.MIPTunnel) {
	s.w.Wireless.SendDownlink(s.id, v.MH,
		msg.ResultDeliver{Req: v.Req, Payload: v.Payload})
}

// mipServer answers MIPData requests; replies are routed to the MH's
// home address (its home agent station), exactly as IP routing would.
type mipServer struct {
	id  ids.Server
	w   *World
	rng *sim.RNG
}

// HandleMessage implements netsim.Handler.
func (s *mipServer) HandleMessage(from ids.NodeID, m msg.Message) {
	v, ok := m.(msg.MIPData)
	if !ok {
		return
	}
	delay := s.w.cfg.ServerProc.Sample(s.rng)
	s.w.Kernel.Defer(delay, func() {
		reply := append([]byte("re:"), v.Payload...)
		s.w.Wired.Send(s.id.Node(), s.w.home[v.MH].Node(),
			msg.MIPData{MH: v.MH, Req: v.Req, Payload: reply})
	})
}

// MobileNode is the Mobile IP client.
type MobileNode struct {
	id       ids.MH
	w        *World
	cell     ids.MSS
	nextSeq  uint32
	seen     map[ids.RequestID]bool
	issuedAt map[ids.RequestID]sim.Time
}

// ID returns the node identifier.
func (mn *MobileNode) ID() ids.MH { return mn.id }

// Seen reports whether the result of req was received.
func (mn *MobileNode) Seen(req ids.RequestID) bool { return mn.seen[req] }

// register sends a care-of registration through the current foreign
// agent. Registration beacons ride the reliable control channel, like
// RDP's greets.
func (mn *MobileNode) register() {
	mn.w.Wireless.SendUplink(mn.id, mn.cell, msg.MIPRegister{MH: mn.id, CareOf: mn.cell})
}

// IssueRequest sends a request datagram toward the server via the
// current foreign agent and returns its identifier. With RequestTimeout
// set, the upper-layer shim retransmits until the reply arrives.
func (mn *MobileNode) IssueRequest(server ids.Server, payload []byte) ids.RequestID {
	mn.nextSeq++
	req := ids.RequestID{Origin: mn.id, Seq: mn.nextSeq}
	mn.issuedAt[req] = mn.w.Kernel.Now()
	mn.w.Stats.RequestsIssued.Inc()
	mn.send(msg.Request{Req: req, Server: server, Payload: payload})
	if mn.w.cfg.RequestTimeout > 0 {
		mn.scheduleRetry(msg.Request{Req: req, Server: server, Payload: payload})
	}
	return req
}

func (mn *MobileNode) send(m msg.Request) {
	if !mn.w.active[mn.id] {
		return // a sleeping node cannot transmit; the retry shim re-fires
	}
	mn.w.Wireless.SendUplink(mn.id, mn.cell, m)
}

func (mn *MobileNode) scheduleRetry(m msg.Request) {
	mn.w.Kernel.Defer(mn.w.cfg.RequestTimeout, func() {
		if mn.seen[m.Req] {
			return
		}
		if mn.w.active[mn.id] {
			mn.w.Stats.RequestRetries.Inc()
			mn.send(m)
		}
		mn.scheduleRetry(m)
	})
}

// HandleMessage implements netsim.Handler for the node's radio.
func (mn *MobileNode) HandleMessage(from ids.NodeID, m msg.Message) {
	r, ok := m.(msg.ResultDeliver)
	if !ok {
		return
	}
	if mn.seen[r.Req] {
		mn.w.Stats.Duplicates.Inc()
		return
	}
	mn.seen[r.Req] = true
	mn.w.Stats.ResultsDelivered.Inc()
	if at, known := mn.issuedAt[r.Req]; known {
		mn.w.Stats.ResultLatency.Observe(time.Duration(mn.w.Kernel.Now() - at))
	}
}
