package explore

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// scenarios returns the explored protocol situations. Each is small
// enough that thousands of random schedules probe its interleaving
// space densely.
func scenarios() []Scenario {
	return []Scenario{
		{
			// The Figure 3 situation, order-adversarial: one request, two
			// migrations racing the result.
			Name:     "single-request-two-migrations",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				actions := []func(){
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) },
					func() { w.Migrate(1, 2) },
					func() { w.Migrate(1, 3) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			// The bounce-back race behind the HaveOutstanding completion:
			// overlapping requests while ping-ponging between two cells.
			Name:     "bounce-back-overlap",
			Stations: 2,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				issue := func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) }
				actions := []func(){
					issue,
					func() { w.Migrate(1, 2) },
					issue,
					func() { w.Migrate(1, 1) },
					func() { w.Migrate(1, 2) },
					issue,
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			// Inactivity racing delivery, wake-up in a different cell.
			Name:     "sleep-carry-wake",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				mh := w.AddMH(1, 1)
				var reqs []ids.RequestID
				actions := []func(){
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("a"))) },
					func() { w.SetActive(1, false) },
					func() { w.Migrate(1, 3) },
					func() { w.SetActive(1, true) },
					func() { reqs = append(reqs, mh.IssueRequest(1, []byte("b"))) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: reqs}
				}
			},
		},
		{
			// Two hosts whose hand-off chains interleave at shared stations.
			Name:     "two-hosts-crossing",
			Stations: 3,
			Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
				a := w.AddMH(1, 1)
				b := w.AddMH(2, 3)
				var ra, rb []ids.RequestID
				actions := []func(){
					func() { ra = append(ra, a.IssueRequest(1, []byte("a"))) },
					func() { rb = append(rb, b.IssueRequest(1, []byte("b"))) },
					func() { w.Migrate(1, 2) },
					func() { w.Migrate(2, 2) },
					func() { w.Migrate(1, 3) },
					func() { w.Migrate(2, 1) },
				}
				return actions, func() map[ids.MH][]ids.RequestID {
					return map[ids.MH][]ids.RequestID{1: ra, 2: rb}
				}
			},
		},
	}
}

// TestAdversarialSchedules runs every scenario under many random
// delivery orders: safety must hold on all of them, and liveness within
// a small number of refresh beacons.
func TestAdversarialSchedules(t *testing.T) {
	const (
		schedules  = 400
		maxRefresh = 5
	)
	for _, sc := range scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Run(sc, 1, schedules, maxRefresh, t.Errorf)
			if res.TotalFirings == 0 {
				t.Fatal("explorer fired nothing; harness broken")
			}
			t.Logf("%s: %d schedules, %d firings, %d needed recovery (max %d refresh rounds)",
				sc.Name, res.Schedules, res.TotalFirings, res.TotalRecovery, res.MaxRefreshes)
		})
	}
}

// TestControllerWirelessFIFO verifies the controller's lane discipline:
// two frames on one link fire in order regardless of schedule choices.
func TestControllerWirelessFIFO(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ctl := NewController(sim.NewRNG(seed))
		var fired []int
		ctl.Offer(netsim.LayerWireless, ids.MH(1).Node(), ids.MSS(1).Node(), func() { fired = append(fired, 1) })
		ctl.Offer(netsim.LayerWireless, ids.MH(1).Node(), ids.MSS(1).Node(), func() { fired = append(fired, 2) })
		ctl.Offer(netsim.LayerWired, ids.MSS(1).Node(), ids.MSS(2).Node(), func() { fired = append(fired, 3) })
		for ctl.Step() {
		}
		if len(fired) != 3 {
			t.Fatalf("fired %d of 3", len(fired))
		}
		pos := map[int]int{}
		for i, f := range fired {
			pos[f] = i
		}
		if pos[1] > pos[2] {
			t.Fatalf("seed %d: wireless lane reordered: %v", seed, fired)
		}
	}
}

// TestControllerEligibleCounts checks the eligibility accounting.
func TestControllerEligibleCounts(t *testing.T) {
	ctl := NewController(sim.NewRNG(1))
	if ctl.Eligible() != 0 {
		t.Fatal("fresh controller not empty")
	}
	ctl.Offer(netsim.LayerWireless, ids.MH(1).Node(), ids.MSS(1).Node(), func() {})
	ctl.Offer(netsim.LayerWireless, ids.MH(1).Node(), ids.MSS(1).Node(), func() {})
	ctl.Offer(netsim.LayerWired, ids.MSS(1).Node(), ids.MSS(2).Node(), func() {})
	// Two queued on one lane count as one eligible head, plus one wired.
	if got := ctl.Eligible(); got != 2 {
		t.Fatalf("Eligible = %d, want 2", got)
	}
	if !ctl.Step() {
		t.Fatal("Step fired nothing")
	}
}

// TestExhaustiveTiny enumerates the complete schedule tree of the tiny
// scenario: every possible interleaving of one request, one migration
// and their induced messages satisfies safety, and delivers.
func TestExhaustiveTiny(t *testing.T) {
	res := RunExhaustive(Tiny(), 200000, 5, t.Errorf)
	if !res.Complete {
		t.Fatalf("tree not fully enumerated within budget (%d schedules)", res.Schedules)
	}
	if res.Schedules < 10 {
		t.Fatalf("suspiciously small tree: %d schedules", res.Schedules)
	}
	t.Logf("enumerated %d schedules completely (max depth %d)", res.Schedules, res.MaxDepth)
}

// TestExhaustiveBudgetStops verifies the budget bound.
func TestExhaustiveBudgetStops(t *testing.T) {
	res := RunExhaustive(Tiny(), 3, 5, t.Errorf)
	if res.Complete || res.Schedules != 3 {
		t.Fatalf("budget not honoured: %+v", res)
	}
}

// TestExhaustiveSleep fully enumerates the request-vs-inactivity tree.
func TestExhaustiveSleep(t *testing.T) {
	res := RunExhaustive(TinySleep(), 500000, 5, t.Errorf)
	if !res.Complete {
		t.Fatalf("sleep tree not fully enumerated within budget (%d schedules)", res.Schedules)
	}
	if res.Schedules < 10 {
		t.Fatalf("suspiciously small tree: %d schedules", res.Schedules)
	}
	t.Logf("enumerated %d schedules completely (max depth %d)", res.Schedules, res.MaxDepth)
}

// TestExhaustiveBounce systematically explores the request-vs-bounce
// tree (the smallest instance of the hand-off-and-back race). The full
// tree exceeds two million schedules, so this enumerates a depth-first
// prefix; every schedule in that region must satisfy the properties.
func TestExhaustiveBounce(t *testing.T) {
	res := RunExhaustive(TinyHandoffBack(), 20000, 5, t.Errorf)
	if res.Complete {
		t.Log("bounce tree completed within 20000 schedules; budget note stale")
	} else if res.Schedules != 20000 {
		t.Fatalf("explored %d schedules, want the full 20000 budget", res.Schedules)
	}
	t.Logf("explored %d-schedule DFS prefix (max depth %d)", res.Schedules, res.MaxDepth)
}
