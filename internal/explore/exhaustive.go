package explore

import (
	"repro/internal/ids"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// This file adds systematic exploration: instead of random walks over
// the schedule tree, RunExhaustive enumerates schedules depth-first by
// replaying the scenario from scratch for every choice prefix. Replay
// is cheap (the worlds are tiny and deterministic), so full enumeration
// is feasible for scenarios with a few concurrent messages — where it
// proves that *no* delivery order violates the checked properties, not
// merely that none of N samples does.

// scriptedChooser follows a recorded choice prefix, then always picks
// option 0, recording the fanout seen at every decision point.
type scriptedChooser struct {
	prefix  []int
	step    int
	fanouts []int
}

// choose returns the branch to take among n options at this decision
// point and records n.
func (s *scriptedChooser) choose(n int) int {
	s.fanouts = append(s.fanouts, n)
	pick := 0
	if s.step < len(s.prefix) {
		pick = s.prefix[s.step]
	}
	s.step++
	if pick >= n {
		pick = n - 1
	}
	return pick
}

// ExhaustiveResult summarizes a systematic exploration.
type ExhaustiveResult struct {
	// Schedules is the number of complete schedules executed.
	Schedules int
	// Complete reports whether the whole tree was enumerated (false when
	// the budget ran out first).
	Complete bool
	// MaxDepth is the longest decision sequence seen.
	MaxDepth int
}

// RunExhaustive enumerates the scenario's schedule tree depth-first,
// executing every complete schedule up to budget runs, checking the
// same properties as Run on each. Choice points are (a) take the next
// world action vs. fire a delivery, and (b) which eligible delivery to
// fire.
func RunExhaustive(sc Scenario, budget, maxRefresh int, errf func(format string, args ...any)) ExhaustiveResult {
	res := ExhaustiveResult{}
	prefix := []int{}
	for {
		if res.Schedules >= budget {
			return res
		}
		chooser := &scriptedChooser{prefix: prefix}
		runScheduled(sc, chooser, maxRefresh, res.Schedules, errf)
		res.Schedules++
		if len(chooser.fanouts) > res.MaxDepth {
			res.MaxDepth = len(chooser.fanouts)
		}
		// Advance the prefix like an odometer over the recorded fanouts:
		// find the deepest decision that can still take a later branch.
		full := chooser.fanouts
		next := make([]int, len(full))
		copy(next, prefix)
		for i := len(next); i < len(full); i++ {
			next = append(next, 0)
		}
		i := len(full) - 1
		for i >= 0 {
			if next[i]+1 < full[i] {
				next[i]++
				next = next[:i+1]
				break
			}
			i--
		}
		if i < 0 {
			res.Complete = true
			return res
		}
		prefix = next
	}
}

// runScheduled executes one schedule driven by the chooser.
func runScheduled(sc Scenario, chooser *scriptedChooser, maxRefresh, scheduleID int, errf func(format string, args ...any)) {
	ctl := NewController(sim.NewRNG(1)) // rng unused: choices come from the chooser
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = sc.Stations
	cfg.NumServers = 1
	cfg.WiredSeq = ctl
	cfg.WirelessSeq = ctl
	w := rdpcore.NewWorld(cfg)

	actions, requests := sc.Build(w)
	drain := func() { w.Run() }
	drain()

	checkSafety := func(at string) {
		if err := w.CheckInvariants(); err != nil {
			errf("%s: exhaustive schedule %d (%s): invariants: %v", sc.Name, scheduleID, at, err)
		}
		if v := w.Stats.Violations.Value(); v != 0 {
			errf("%s: exhaustive schedule %d (%s): violations = %d", sc.Name, scheduleID, at, v)
		}
	}

	ai := 0
	for ai < len(actions) || ctl.Eligible() > 0 {
		// Enumerate the combined choice: option 0 = next action (when one
		// remains), options 1..k = the k eligible deliveries.
		actionOpt := 0
		if ai < len(actions) {
			actionOpt = 1
		}
		k := ctl.Eligible()
		pick := chooser.choose(actionOpt + k)
		if actionOpt == 1 && pick == 0 {
			actions[ai]()
			ai++
		} else {
			ctl.StepAt(pick - actionOpt)
		}
		drain()
		checkSafety("mid-run")
	}

	delivered := func() bool {
		for mh, reqs := range requests() {
			for _, r := range reqs {
				if !w.MHs[mh].Seen(r) {
					return false
				}
			}
		}
		return true
	}
	rounds := 0
	for !delivered() && rounds < maxRefresh {
		rounds++
		for mh := range requests() {
			w.SetActive(mh, true)
			w.Refresh(mh)
			for ctl.Eligible() > 0 {
				// Settlement order is not enumerated (it would explode the
				// tree); deliveries fire head-first deterministically.
				ctl.StepAt(0)
				drain()
			}
			drain()
		}
	}
	if !delivered() {
		errf("%s: exhaustive schedule %d: undelivered after %d refresh rounds", sc.Name, scheduleID, maxRefresh)
	}
	checkSafety("end")
	if err := w.CheckQuiescent(); err != nil {
		errf("%s: exhaustive schedule %d: %v", sc.Name, scheduleID, err)
	}
}

// StepAt fires the idx-th eligible delivery (0-based over the same
// ordering Eligible counts: pooled wired deliveries first, then the
// lane heads in stable key order). It panics on an out-of-range index.
func (c *Controller) StepAt(idx int) {
	if idx < len(c.pool) {
		p := c.pool[idx]
		c.pool = append(c.pool[:idx], c.pool[idx+1:]...)
		p.fire()
		return
	}
	idx -= len(c.pool)
	keys := c.laneKeys()
	k := keys[idx]
	lane := c.lanes[k]
	p := lane[0]
	if len(lane) == 1 {
		delete(c.lanes, k)
	} else {
		c.lanes[k] = lane[1:]
	}
	p.fire()
}

// Tiny returns the smallest interesting scenario — one request and one
// migration racing it — whose schedule tree RunExhaustive can enumerate
// completely.
func Tiny() Scenario {
	return Scenario{
		Name:     "tiny-request-vs-migration",
		Stations: 2,
		Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
			mh := w.AddMH(1, 1)
			var reqs []ids.RequestID
			actions := []func(){
				func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) },
				func() { w.Migrate(1, 2) },
			}
			return actions, func() map[ids.MH][]ids.RequestID {
				return map[ids.MH][]ids.RequestID{1: reqs}
			}
		},
	}
}

// TinySleep is the second exhaustively enumerable scenario: one request
// racing an inactivity window (§3.2's "MH becomes inactive" case and §5
// footnote 3's motivation). The result may reach the cell before the
// host sleeps, while it sleeps, or after it wakes — every interleaving
// of the induced messages must still deliver exactly once at-least.
func TinySleep() Scenario {
	return Scenario{
		Name:     "tiny-request-vs-sleep",
		Stations: 2,
		Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
			mh := w.AddMH(1, 1)
			var reqs []ids.RequestID
			actions := []func(){
				func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) },
				func() { w.SetActive(1, false) },
				func() { w.SetActive(1, true) },
			}
			return actions, func() map[ids.MH][]ids.RequestID {
				return map[ids.MH][]ids.RequestID{1: reqs}
			}
		},
	}
}

// TinyHandoffBack is the third exhaustively enumerable scenario: a
// request issued at the old station races a there-and-back migration
// (the bounce that motivates the ignoreAcks/arriving machinery of
// §3.2's hand-off, compressed to its smallest instance).
func TinyHandoffBack() Scenario {
	return Scenario{
		Name:     "tiny-request-vs-bounce",
		Stations: 2,
		Build: func(w *rdpcore.World) ([]func(), func() map[ids.MH][]ids.RequestID) {
			mh := w.AddMH(1, 1)
			var reqs []ids.RequestID
			actions := []func(){
				func() { reqs = append(reqs, mh.IssueRequest(1, []byte("q"))) },
				func() { w.Migrate(1, 2) },
				func() { w.Migrate(1, 1) },
			}
			return actions, func() map[ids.MH][]ids.RequestID {
				return map[ids.MH][]ids.RequestID{1: reqs}
			}
		},
	}
}
