// Package explore is a message-order adversary for the RDP protocol: a
// lightweight model-checking harness that replaces the latency-driven
// delivery schedule with controller-chosen orders.
//
// Under the simulation kernel, message interleavings are limited to
// those some latency assignment can produce. The explorer removes that
// restriction: every in-flight delivery is held in a pool and fired in
// an order chosen by the schedule (random walks over the choice tree),
// subject only to the physical constraints that genuinely hold — per
// radio-link FIFO, and the causal wired layer's own delivery buffering.
// Scenario checks then assert the protocol's safety properties
// (cross-node invariants, zero violations) on every explored schedule,
// and its liveness property (all results delivered) after bounded
// registration-refresh rounds, mirroring how a real deployment's
// periodic beacons bound recovery time.
package explore

import (
	"fmt"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
)

// pendingFire is one controller-held delivery.
type pendingFire struct {
	layer netsim.Layer
	from  ids.NodeID
	to    ids.NodeID
	fire  func()
}

// Controller implements netsim.Sequencer: it pools offered deliveries
// and fires them in adversarially chosen order. Wireless deliveries
// respect per-directed-link FIFO (one radio channel per direction);
// wired deliveries are unconstrained — with the causal layer enabled,
// causally-premature arrivals are buffered by the endpoints themselves,
// so the explorer covers exactly the orders a causal network permits.
type Controller struct {
	rng   *sim.RNG
	lanes map[linkKey][]*pendingFire // wireless FIFO lanes
	pool  []*pendingFire             // wired (unordered)
}

type linkKey struct{ from, to ids.NodeID }

// NewController returns a controller drawing schedule choices from rng.
func NewController(rng *sim.RNG) *Controller {
	return &Controller{rng: rng, lanes: make(map[linkKey][]*pendingFire)}
}

// Offer implements netsim.Sequencer.
func (c *Controller) Offer(layer netsim.Layer, from, to ids.NodeID, fire func()) {
	p := &pendingFire{layer: layer, from: from, to: to, fire: fire}
	if layer == netsim.LayerWireless {
		k := linkKey{from: from, to: to}
		c.lanes[k] = append(c.lanes[k], p)
		return
	}
	c.pool = append(c.pool, p)
}

// Eligible returns the number of deliveries that may fire next: every
// pooled wired delivery plus each wireless lane's head.
func (c *Controller) Eligible() int {
	n := len(c.pool)
	for _, lane := range c.lanes {
		if len(lane) > 0 {
			n++
		}
	}
	return n
}

// Step fires one randomly chosen eligible delivery; it reports whether
// anything fired.
func (c *Controller) Step() bool {
	n := c.Eligible()
	if n == 0 {
		return false
	}
	pick := c.rng.Intn(n)
	if pick < len(c.pool) {
		p := c.pool[pick]
		c.pool = append(c.pool[:pick], c.pool[pick+1:]...)
		p.fire()
		return true
	}
	pick -= len(c.pool)
	// Deterministic lane order for reproducibility.
	keys := c.laneKeys()
	k := keys[pick]
	lane := c.lanes[k]
	p := lane[0]
	if len(lane) == 1 {
		delete(c.lanes, k)
	} else {
		c.lanes[k] = lane[1:]
	}
	p.fire()
	return true
}

// laneKeys returns the non-empty lane keys in a stable order.
func (c *Controller) laneKeys() []linkKey {
	keys := make([]linkKey, 0, len(c.lanes))
	for k, lane := range c.lanes {
		if len(lane) > 0 {
			keys = append(keys, k)
		}
	}
	// Sort by (from, to) tuples for determinism across map iteration.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keyLess(keys[j], keys[i]) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func keyLess(a, b linkKey) bool {
	if a.from != b.from {
		return nodeLess(a.from, b.from)
	}
	return nodeLess(a.to, b.to)
}

func nodeLess(a, b ids.NodeID) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Num < b.Num
}

// Scenario is one explorable protocol situation.
type Scenario struct {
	Name string
	// Hosts is the number of stations in the world.
	Stations int
	// Build populates the world and returns the ordered world actions
	// (migrations, requests, activity flips) the adversary interleaves
	// with deliveries, plus the request set whose delivery the liveness
	// check demands.
	Build func(w *rdpcore.World) (actions []func(), requests func() map[ids.MH][]ids.RequestID)
}

// Result summarizes one exploration.
type Result struct {
	Schedules     int
	MaxRefreshes  int // worst-case settlement rounds needed
	TotalFirings  int
	TotalRecovery int // schedules that needed at least one refresh round
}

// Run explores the scenario under `schedules` random delivery orders
// and reports via errf (typically t.Errorf) on any property violation.
//
// Properties checked per schedule:
//
//	safety   — cross-node invariants and Violations == 0 at every
//	           quiescent point;
//	liveness — all of the scenario's requests delivered within
//	           maxRefresh registration-refresh rounds after the action
//	           script ends (each round models one refresh beacon).
func Run(sc Scenario, seed int64, schedules, maxRefresh int, errf func(format string, args ...any)) Result {
	res := Result{Schedules: schedules}
	for i := 0; i < schedules; i++ {
		rng := sim.NewRNG(seed + int64(i)*7919)
		ctl := NewController(rng.Fork())

		cfg := rdpcore.DefaultConfig()
		cfg.Seed = seed + int64(i)
		cfg.NumMSS = sc.Stations
		cfg.NumServers = 1
		// Latencies are irrelevant under the controller (they would only
		// order what the controller now orders), but kernel timers still
		// drive server processing.
		cfg.WiredSeq = ctl
		cfg.WirelessSeq = ctl
		w := rdpcore.NewWorld(cfg)

		actions, requests := sc.Build(w)
		drain := func() { w.Run() }
		drain()

		checkSafety := func(at string) {
			if err := w.CheckInvariants(); err != nil {
				errf("%s: schedule %d (%s): invariants: %v", sc.Name, i, at, err)
			}
			if v := w.Stats.Violations.Value(); v != 0 {
				errf("%s: schedule %d (%s): violations = %d", sc.Name, i, at, v)
			}
		}

		// Interleave actions and deliveries adversarially.
		ai := 0
		for ai < len(actions) || ctl.Eligible() > 0 {
			takeAction := ai < len(actions) &&
				(ctl.Eligible() == 0 || rng.Prob(0.4))
			if takeAction {
				actions[ai]()
				ai++
			} else {
				ctl.Step()
			}
			drain()
			res.TotalFirings++
			checkSafety("mid-run")
		}

		// Settlement: fire refresh beacons until everything is delivered
		// (each round is one greet per host, as a real refresh would be).
		delivered := func() bool {
			for mh, reqs := range requests() {
				for _, r := range reqs {
					if !w.MHs[mh].Seen(r) {
						return false
					}
				}
			}
			return true
		}
		rounds := 0
		for !delivered() && rounds < maxRefresh {
			rounds++
			for mh := range requests() {
				w.SetActive(mh, true) // no-op when already active
				w.Refresh(mh)
				for ctl.Eligible() > 0 {
					ctl.Step()
					drain()
				}
				drain()
			}
			checkSafety(fmt.Sprintf("refresh round %d", rounds))
		}
		if rounds > res.MaxRefreshes {
			res.MaxRefreshes = rounds
		}
		if rounds > 0 {
			res.TotalRecovery++
		}
		if !delivered() {
			errf("%s: schedule %d: requests undelivered after %d refresh rounds", sc.Name, i, maxRefresh)
		}
		checkSafety("end")
	}
	return res
}
