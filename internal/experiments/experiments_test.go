package experiments

import (
	"testing"
	"time"

	"repro/internal/trace"
)

// The experiment functions are exercised here at SmallScale, asserting
// the *shape* each paper claim predicts (EXPERIMENTS.md records the
// DefaultScale numbers).

func TestE1DeliversEverything(t *testing.T) {
	rows := E1Reliability(1, SmallScale())
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Issued == 0 {
			t.Errorf("%+v: no requests issued", r)
			continue
		}
		if r.Ratio != 1.0 {
			t.Errorf("residence %v inactive %.2f: delivery ratio %.4f, want 1.0 (%d/%d)",
				r.MeanResidence, r.InactiveProb, r.Ratio, r.Delivered, r.Issued)
		}
	}
	// Higher mobility must not break delivery but must cost retransmissions.
	if rows[0].Retrans == 0 {
		t.Error("fast mobility row shows no retransmissions; sweep not stressing the protocol")
	}
}

func TestE2AblationsShowAnomalies(t *testing.T) {
	rows := E2ExactlyOnce(1, SmallScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	full, noCausal, prioOn, prioOff := rows[0], rows[1], rows[2], rows[3]
	// The adversarial migrate-on-every-delivery schedule intentionally
	// violates the §5 "stays in its cell sufficiently long" premise in a
	// tiny fraction of bounce-back interleavings, so a sub-0.5% duplicate
	// rate is the protocol's documented at-least-once slack, not a bug.
	if full.Violations != 0 {
		t.Errorf("full protocol: violations=%d, want 0", full.Violations)
	}
	if full.Duplicates*200 > full.Delivered {
		t.Errorf("full protocol: duplicates=%d of %d delivered, want <0.5%%", full.Duplicates, full.Delivered)
	}
	if noCausal.Duplicates+noCausal.Violations+(noCausal.Issued-noCausal.Delivered) == 0 {
		t.Error("no-causal ablation shows no anomalies")
	}
	if prioOff.IgnoredAcks <= prioOn.IgnoredAcks {
		t.Errorf("no-ack-priority ignored %d acks vs %d with priority; rule has no effect",
			prioOff.IgnoredAcks, prioOn.IgnoredAcks)
	}
}

func TestE3ThresholdShape(t *testing.T) {
	rows := E3RetransmissionThreshold(1, SmallScale())
	if len(rows) < 4 {
		t.Fatal("too few sweep points")
	}
	// Below the threshold (ratio < 1) retransmissions are frequent; far
	// above it they vanish.
	below := rows[0]
	if below.RetransPerResult < 0.5 {
		t.Errorf("ratio %.1f: retrans/result = %.3f, want heavy retransmission below threshold",
			below.ThresholdRatio, below.RetransPerResult)
	}
	// Far above the threshold retransmissions are residual only: they
	// require a migration to land inside a result's short forward-or-
	// hand-off window, whose probability falls as threshold/residence.
	top := rows[len(rows)-1]
	if top.RetransPerResult > 0.02 {
		t.Errorf("ratio %.1f: retrans/result = %.3f, want near 0 far above threshold",
			top.ThresholdRatio, top.RetransPerResult)
	}
	if below.RetransPerResult < 10*top.RetransPerResult {
		t.Errorf("crossover too soft: below=%.3f top=%.3f", below.RetransPerResult, top.RetransPerResult)
	}
}

func TestE4OverheadFormulaExact(t *testing.T) {
	rows := E4Overhead(1, SmallScale())
	for _, r := range rows {
		if !r.Match {
			t.Errorf("residence %v: updates %d (predicted %d, coverage %.3f), acks %d (predicted %d)",
				r.MeanResidence, r.UpdateCurrLocs, r.PredictedUpdates, r.UpdateCoverage, r.AckForwards, r.PredictedAcks)
		}
		if r.UpdateCurrLocs == 0 || r.AckForwards == 0 {
			t.Errorf("residence %v: degenerate run (updates=%d acks=%d)", r.MeanResidence, r.UpdateCurrLocs, r.AckForwards)
		}
	}
}

func TestE5RDPBalancesLoad(t *testing.T) {
	rows := E5LoadBalance(1, SmallScale())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	rdpRow, shared, spread := rows[0], rows[1], rows[2]
	// At small scale load noise caps the achievable index; DefaultScale
	// runs land near 1 (EXPERIMENTS.md).
	if rdpRow.Jain < 0.6 {
		t.Errorf("RDP Jain index = %.3f, want balanced", rdpRow.Jain)
	}
	if shared.Jain > 0.2 {
		t.Errorf("shared-home Mobile IP Jain index = %.3f, want heavy concentration", shared.Jain)
	}
	if rdpRow.Jain <= shared.Jain || rdpRow.Jain <= spread.Jain-0.1 {
		t.Errorf("RDP (%.3f) should balance at least as well as Mobile IP (shared %.3f, spread %.3f)",
			rdpRow.Jain, shared.Jain, spread.Jain)
	}
}

func TestE6StateFlatVsLinear(t *testing.T) {
	rows := E6HandoffState(1, SmallScale())
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.RDPBytesPerHO == 0 || first.ITCPBytesPerHO == 0 {
		t.Fatal("no hand-off bytes measured")
	}
	if last.RDPBytesPerHO != first.RDPBytesPerHO {
		t.Errorf("RDP hand-off bytes grew: %f -> %f (must be flat)", first.RDPBytesPerHO, last.RDPBytesPerHO)
	}
	// The image carries every buffered 128-byte result plus request ids:
	// marginal cost must be at least ~100 bytes per extra pending item.
	extra := float64(last.PendingRequests - first.PendingRequests)
	if last.ITCPBytesPerHO-first.ITCPBytesPerHO < 100*extra {
		t.Errorf("I-TCP hand-off bytes %f -> %f over %+v extra items; expected linear growth",
			first.ITCPBytesPerHO, last.ITCPBytesPerHO, extra)
	}
	// Functional parity: both protocols delivered every result.
	for _, r := range rows {
		if r.RDPDelivered != int64(r.PendingRequests) || r.ITCPDelivered != int64(r.PendingRequests) {
			t.Errorf("pending=%d: delivered RDP=%d ITCP=%d, want both %d",
				r.PendingRequests, r.RDPDelivered, r.ITCPDelivered, r.PendingRequests)
		}
	}
}

func TestE7DeliveryOrdering(t *testing.T) {
	rows := E7VsMobileIP(1, SmallScale())
	byProto := make(map[string][]E7Row)
	for _, r := range rows {
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for _, r := range byProto["RDP"] {
		if r.Ratio != 1.0 {
			t.Errorf("RDP at residence %v: ratio %.4f, want 1.0", r.MeanResidence, r.Ratio)
		}
	}
	// Plain Mobile IP must lose datagrams under high mobility.
	fast := byProto["MobileIP"][0]
	if fast.Ratio >= 1.0 {
		t.Errorf("plain Mobile IP at residence %v: ratio %.4f, expected losses", fast.MeanResidence, fast.Ratio)
	}
	// The retry shim recovers deliveries but pays latency.
	retryFast := byProto["MobileIP+retry"][0]
	if retryFast.Ratio < fast.Ratio {
		t.Error("retry shim delivered less than plain Mobile IP")
	}
	if retryFast.Ratio > 0.99 {
		rdpFast := byProto["RDP"][0]
		if retryFast.P95Latency <= rdpFast.P95Latency {
			t.Errorf("MobileIP+retry p95 %v <= RDP p95 %v; recovery should cost latency",
				retryFast.P95Latency, rdpFast.P95Latency)
		}
	}
}

func TestE8NotificationsReachRoamingSubscribers(t *testing.T) {
	rows := E8Subscriptions(1, SmallScale())
	for _, r := range rows {
		if r.Fired == 0 {
			t.Errorf("residence %v: no notifications fired; workload degenerate", r.MeanResidence)
			continue
		}
		if r.Ratio != 1.0 {
			t.Errorf("residence %v: %d of %d notifications delivered (ratio %.4f), want all",
				r.MeanResidence, r.Received, r.Fired, r.Ratio)
		}
	}
}

func TestReplayFigure3Shape(t *testing.T) {
	rec := trace.New()
	w := ReplayFigure3(rec.Observe)
	if got := w.Stats.ResultsDelivered.Value(); got != 1 {
		t.Errorf("ResultsDelivered = %d, want 1", got)
	}
	if got := w.Stats.Retransmissions.Value(); got != 1 {
		t.Errorf("Retransmissions = %d, want 1", got)
	}
	if len(rec.Deliveries()) == 0 {
		t.Error("no trace recorded")
	}
}

func TestReplayFigure4Shape(t *testing.T) {
	rec := trace.New()
	w := ReplayFigure4(rec.Observe)
	if got := w.Stats.ResultsDelivered.Value(); got != 3 {
		t.Errorf("ResultsDelivered = %d, want 3", got)
	}
	if got := w.Stats.ProxiesCreated.Value(); got != 1 {
		t.Errorf("ProxiesCreated = %d, want 1", got)
	}
}

func TestScalesSane(t *testing.T) {
	if d := DefaultScale(); d.MHs <= SmallScale().MHs || d.Horizon <= SmallScale().Horizon {
		t.Error("DefaultScale should exceed SmallScale")
	}
	if SmallScale().Horizon < 10*time.Second {
		t.Error("SmallScale horizon too small for meaningful sweeps")
	}
}

func TestE9HoldOptimizationSavesWork(t *testing.T) {
	rows := E9HoldForInactive(1, SmallScale())
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		off, on := rows[i], rows[i+1]
		if off.Hold || !on.Hold {
			t.Fatalf("row order broken: %+v %+v", off, on)
		}
		if on.HeldResults == 0 {
			t.Errorf("inactive=%.2f: optimization never held a result", on.InactiveProb)
		}
		if on.Retrans >= off.Retrans {
			t.Errorf("inactive=%.2f: retransmissions %d (on) >= %d (off); optimization saved nothing",
				on.InactiveProb, on.Retrans, off.Retrans)
		}
		if on.WirelessDrops >= off.WirelessDrops {
			t.Errorf("inactive=%.2f: wireless drops %d (on) >= %d (off)", on.InactiveProb, on.WirelessDrops, off.WirelessDrops)
		}
		// The optimization must not hurt delivery.
		if on.Delivered < off.Delivered {
			t.Errorf("inactive=%.2f: delivered %d (on) < %d (off)", on.InactiveProb, on.Delivered, off.Delivered)
		}
	}
}

func TestE5DynamicShiftFollowsUsers(t *testing.T) {
	rows := E5DynamicShift(1, SmallScale())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	rdpRow, mipRow := rows[0], rows[1]
	// Phase 1: both protocols spread load roughly per population
	// (hotspot = 2 of 8 cells => ~25%).
	if rdpRow.Phase1Hotspot > 0.5 || mipRow.Phase1Hotspot > 0.5 {
		t.Errorf("phase-1 hotspot shares too high: rdp=%.2f mip=%.2f", rdpRow.Phase1Hotspot, mipRow.Phase1Hotspot)
	}
	// Phase 2: RDP's forwarding follows the users downtown; Mobile IP's
	// home agents stay put.
	if rdpRow.Phase2Hotspot < 0.8 {
		t.Errorf("RDP phase-2 hotspot share = %.2f, want >0.8 (load should follow users)", rdpRow.Phase2Hotspot)
	}
	if mipRow.Phase2Hotspot > 0.5 {
		t.Errorf("Mobile IP phase-2 hotspot share = %.2f, want static (<0.5)", mipRow.Phase2Hotspot)
	}
}
