package experiments

import "testing"

// TestE15WindowedBeatsStopAndWait is the acceptance test for E15. At
// the headline grid point (10% loss, offered at twice the stop-and-wait
// ceiling) the windowed transport must at least double stop-and-wait
// goodput while keeping p99 latency no worse; across the whole grid the
// windowed rows must never lose an admitted request, never duplicate a
// delivery, and actually coalesce (more messages than frames).
func TestE15WindowedBeatsStopAndWait(t *testing.T) {
	rows := E15WindowedTransport(1, SmallScale())
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24 (3 losses x 2 loads x 4 transports)", len(rows))
	}
	for _, r := range rows {
		if r.Offered == 0 {
			t.Fatalf("loss=%.2f x%.0f %s: no requests offered", r.Loss, r.OfferedX, r.Transport)
		}
		if r.Transport != "windowed" {
			continue
		}
		if r.LostAdmitted != 0 {
			t.Errorf("windowed loss=%.2f x%.0f: %d admitted requests lost, want 0",
				r.Loss, r.OfferedX, r.LostAdmitted)
		}
		if r.Duplicates != 0 {
			t.Errorf("windowed loss=%.2f x%.0f: %d duplicate deliveries, want 0",
				r.Loss, r.OfferedX, r.Duplicates)
		}
		if r.Resets != 0 {
			t.Errorf("windowed loss=%.2f x%.0f: %d link resets on an always-reachable host",
				r.Loss, r.OfferedX, r.Resets)
		}
		if r.Frames >= r.FrameMsgs && r.OfferedX >= 2 {
			t.Errorf("windowed loss=%.2f x%.0f: frames=%d msgs=%d; coalescing never engaged",
				r.Loss, r.OfferedX, r.Frames, r.FrameMsgs)
		}
	}

	w, s, ok := E15Headline(rows)
	if !ok {
		t.Fatal("headline rows (loss=0.10, x2) missing from the sweep")
	}
	if s.GoodputPct <= 0 || w.GoodputPct < 2*s.GoodputPct {
		t.Errorf("headline goodput: windowed %.1f%% vs stopwait %.1f%%, want >= 2x",
			w.GoodputPct, s.GoodputPct)
	}
	if w.P99Latency > s.P99Latency {
		t.Errorf("headline p99: windowed %v worse than stopwait %v", w.P99Latency, s.P99Latency)
	}
	// Stop-and-wait past its ceiling must show the backlog the windowed
	// transport avoids: admitted requests still queued when the run ends.
	if s.LostAdmitted == 0 {
		t.Error("stopwait at 2x ceiling drained its backlog; the sweep is not stressing the link")
	}
}

// TestE15Deterministic replays one seed through the memo-bypassing
// single-point runner and expects identical rows: the whole sweep flows
// from forked streams of each world's seeded RNG.
func TestE15Deterministic(t *testing.T) {
	a := e15Run(3, SmallScale(), 0.10, 2, "windowed")
	b := e15Run(3, SmallScale(), 0.10, 2, "windowed")
	if a != b {
		t.Errorf("rows differ between runs:\n  %+v\n  %+v", a, b)
	}
	ia := e15RunITCP(3, SmallScale(), 0.10, 2)
	ib := e15RunITCP(3, SmallScale(), 0.10, 2)
	if ia != ib {
		t.Errorf("itcp rows differ between runs:\n  %+v\n  %+v", ia, ib)
	}
}
