package experiments

import "testing"

// TestE10RecoveryRestoresGuarantee is the acceptance test for E10: with
// the recovery stack (wired ARQ + checkpointing + hand-off timeouts +
// registration confirmation) every swept fault point — wired loss up to
// 20%, one or two MSS crash/restart windows — delivers every issued
// request exactly once; the ablation, which is the paper's protocol on
// the faulty network it assumes away, measurably loses results.
func TestE10RecoveryRestoresGuarantee(t *testing.T) {
	rows := E10WiredFaults(1, SmallScale())
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12 (3 loss rates x 2 crash counts x on/off)", len(rows))
	}
	for _, r := range rows {
		if r.Issued == 0 {
			t.Fatalf("loss=%.2f crashes=%d recovery=%v: no requests issued", r.Loss, r.Crashes, r.Recovery)
		}
		if r.WiredDrops == 0 {
			t.Errorf("loss=%.2f crashes=%d recovery=%v: fault injector never dropped a frame", r.Loss, r.Crashes, r.Recovery)
		}
		if r.Recovery {
			if r.Delivered != r.Issued {
				t.Errorf("loss=%.2f crashes=%d: recovery delivered %d of %d", r.Loss, r.Crashes, r.Delivered, r.Issued)
			}
			if r.Duplicates != 0 {
				t.Errorf("loss=%.2f crashes=%d: recovery produced %d duplicate deliveries, want 0", r.Loss, r.Crashes, r.Duplicates)
			}
			if r.CheckpointOps == 0 {
				t.Errorf("loss=%.2f crashes=%d: checkpointing never wrote", r.Loss, r.Crashes)
			}
		} else {
			if r.Ratio > 0.9 {
				t.Errorf("loss=%.2f crashes=%d: ablation delivered %.2f%%; faults should measurably degrade it",
					r.Loss, r.Crashes, 100*r.Ratio)
			}
		}
	}
	// Within each loss rate the ablation should not improve when a second
	// station crash is added (weak monotonicity: more faults, no more
	// delivery than the single-crash recovery run's 100%).
	for i := 0; i+3 < len(rows); i += 4 {
		one, two := rows[i+1], rows[i+3] // recovery=false rows
		if one.Recovery || two.Recovery {
			t.Fatalf("row layout changed; update the test")
		}
		if two.Ratio > 1.0 || one.Ratio > 1.0 {
			t.Errorf("ablation ratio above 1: %.4f %.4f", one.Ratio, two.Ratio)
		}
	}
}

// TestE10Deterministic reruns one seed and expects identical counters:
// the fault injector forks the world's seeded RNG, so the whole chaos
// schedule is a pure function of (seed, plan).
func TestE10Deterministic(t *testing.T) {
	a := E10WiredFaults(2, SmallScale())
	b := E10WiredFaults(2, SmallScale())
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs between runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
