package experiments

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/trace"
)

// TestE12MigrationBoundsHops asserts the headline shapes of E12 at
// SmallScale: hop-threshold migration actually migrates and bounds the
// mean forwarding hops below the fixed proxy's drift; fairness of proxy
// placement beats the static home-agent baseline; and exactly-once
// survives (RDP rows deliver everything with at most stray duplicates).
func TestE12MigrationBoundsHops(t *testing.T) {
	rows := E12Migration(1, SmallScale())
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byName := make(map[string]E12Row, len(rows))
	for _, r := range rows {
		byName[r.Policy] = r
	}
	fixed := byName["RDP fixed proxy"]
	k1 := byName["RDP hop k=1"]
	mip := byName["MobileIP home=start"]

	for _, r := range rows[:6] { // the RDP variants
		if r.Issued == 0 {
			t.Fatalf("%s: no requests issued", r.Policy)
		}
		if r.Ratio != 1.0 {
			t.Errorf("%s: delivery ratio %.4f, want 1.0 (%d/%d)", r.Policy, r.Ratio, r.Delivered, r.Issued)
		}
		if r.Dups != 0 {
			t.Errorf("%s: %d duplicate deliveries, want 0", r.Policy, r.Dups)
		}
	}
	if fixed.Migrations != 0 || fixed.MigMsgs != 0 {
		t.Errorf("fixed proxy shows migration activity: %d completed, %d messages", fixed.Migrations, fixed.MigMsgs)
	}
	if k1.Migrations == 0 {
		t.Error("hop k=1 completed no migrations; the trigger never fired")
	}
	if k1.MeanHops >= fixed.MeanHops {
		t.Errorf("hop k=1 mean hops %.2f not below fixed proxy's %.2f", k1.MeanHops, fixed.MeanHops)
	}
	if k1.MigMsgs == 0 || k1.MigBytes == 0 {
		t.Error("hop k=1 reports no migration overhead; accounting broken")
	}
	if k1.Jain <= mip.Jain {
		t.Errorf("hop k=1 placement Jain %.3f not above Mobile IP's %.3f", k1.Jain, mip.Jain)
	}
}

// TestMigrationReplayTrace runs the mig1 worked example against the
// expected message sequence: the five-message migration exchange, in
// order, bracketed by the fast result's remote forward (the trigger)
// and the slow result's direct delivery from the migrated proxy.
func TestMigrationReplayTrace(t *testing.T) {
	rec := trace.New()
	w := ReplayMigration1(rec.Observe)

	if got := w.Stats.ResultsDelivered.Value(); got != 2 {
		t.Fatalf("ResultsDelivered = %d, want 2", got)
	}
	if got := w.Stats.DuplicateDeliveries.Value(); got != 0 {
		t.Fatalf("DuplicateDeliveries = %d, want 0", got)
	}
	if got := w.Stats.MigCompleted.Value(); got != 1 {
		t.Fatalf("MigCompleted = %d, want 1", got)
	}

	mss1, mss2 := ids.MSS(1).Node(), ids.MSS(2).Node()
	srv := ids.Server(1).Node()
	steps := []trace.Step{
		// The fast result crosses mss1 -> mss2: the remote forward that
		// fires the hop trigger.
		{Kind: msg.KindResultForward, From: mss1, To: mss2, Note: "remote forward (trigger)"},
		{Kind: msg.KindMigOffer, From: mss1, To: mss2, Note: "old host offers the proxy"},
		{Kind: msg.KindMigCommit, From: mss2, To: mss1, Note: "target accepts and reserves"},
		{Kind: msg.KindMigState, From: mss1, To: mss2, Note: "full proxy state moves"},
		{Kind: msg.KindPrefRedirect, From: mss2, To: srv, Note: "pending server learns the new pref",
			Check: func(m msg.Message) bool { return !m.(msg.PrefRedirect).Confirm }},
		{Kind: msg.KindPrefRedirect, From: srv, To: mss1, Note: "server confirm unblocks the tombstone",
			Check: func(m msg.Message) bool { return m.(msg.PrefRedirect).Confirm }},
		// The slow result now takes the direct path to the migrated proxy.
		{Kind: msg.KindServerResult, From: srv, To: mss2, Note: "slow reply to the new home"},
		{Kind: msg.KindMigGC, From: mss1, To: mss2, Note: "tombstone collected"},
	}
	if err := rec.ExpectSequence(steps); err != nil {
		t.Error(err)
	}
}
