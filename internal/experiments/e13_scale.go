package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/psim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
)

// E13 — parallel scale: the conservative parallel engine (internal/
// psim) against the serial baseline, on worlds from 16 cells up to 256
// cells and 100k mobile hosts. The claims under measurement:
//
//  1. Correctness does not degrade at scale: delivery ratio 1.0000 in
//     every configuration, no request left undelivered, and the MH
//     seen-set keeps application-level delivery exactly-once. (The
//     Duplicates column counts redundant radio copies from the rare
//     ignored-ack race — a result acked while the host migrates, so the
//     proxy re-sends; ~0.02% of deliveries at the 100k-MH tier. Those
//     copies are filtered at the MH and exist in the 1-region serial
//     run too; their count depends on server-processing samples, which
//     come from per-region streams, so it is not partition-invariant.)
//  2. The headline metrics (issued, delivered, ratio) are exactly equal
//     between a 1-region serial run and an R-region parallel run of the
//     same seed — the partition is a pure implementation detail.
//  3. Wall-clock time falls with the region count: on multi-core
//     hardware from parallel windows, and even single-threaded from the
//     smaller per-region event heaps (O(log n) pops on n/R-sized
//     queues). The lookahead windows are 2ms of virtual time, wide
//     enough to amortize the barrier at these event densities.
//
// The topology keeps every wired link at the constant 2ms minimum of
// the standard configuration, which makes 2ms the sound lookahead and —
// because equal constant latencies put timestamp order in agreement
// with causal order — lets cross-region frames bypass the causal group
// without reordering anomalies (DESIGN.md §11).

// E13Lookahead is the conservative window width: the (constant) wired
// latency of the E13 topology.
const E13Lookahead = 2 * time.Millisecond

// E13Tier is one world size of the scale sweep.
type E13Tier struct {
	Cells   int
	MHs     int
	Horizon time.Duration
}

// E13Row is one measured configuration.
type E13Row struct {
	E13Tier
	Regions int
	Workers int

	Issued      int64
	Delivered   int64
	Ratio       float64
	Duplicates  int64
	Handoffs    int64
	CrossFrames int64
	Missing     int
	Violations  int64
	Steps       uint64

	Wall time.Duration
	// Speedup is Wall of the tier's 1-region run over this run's Wall
	// (1.0 for the 1-region run itself; 0 when the tier has none).
	Speedup float64
	// HeadlineEq reports whether (Issued, Delivered) equal the tier's
	// 1-region run — the partition-invariance gate. Duplicates are
	// excluded: redundant radio copies depend on server-processing
	// samples, which are per-region streams (see the package comment).
	HeadlineEq bool
}

// e13Config is the world configuration of the scale run: the paper's
// standard operating point with the wired constant dropped to the 2ms
// topology minimum (every wired link equal, see the package comment).
func e13Config(seed int64, cells int) rdpcore.Config {
	cfg := rdpcore.DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = cells
	cfg.NumServers = cells / 8
	if cfg.NumServers < 2 {
		cfg.NumServers = 2
	}
	cfg.WiredLatency = netsim.Constant(E13Lookahead)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	cfg.ServerProc = netsim.Exponential{MeanDelay: 150 * time.Millisecond, Floor: 10 * time.Millisecond}
	return cfg
}

// e13Script parameterizes the per-host workload: ring mobility (cells
// are geographically adjacent, so contiguous regions only exchange
// hosts at their borders), moderate inactivity, Poisson requests.
func e13Script(cells []ids.MSS, servers []ids.Server, horizon time.Duration) psim.ScriptConfig {
	return psim.ScriptConfig{
		Mobility: workload.Mobility{
			Picker:            workload.RingWalk{Cells: cells},
			Residence:         netsim.Exponential{MeanDelay: 5 * time.Second, Floor: 500 * time.Millisecond},
			InactiveProb:      0.2,
			InactiveDur:       netsim.Exponential{MeanDelay: 2 * time.Second, Floor: 200 * time.Millisecond},
			MoveWhileInactive: 0.3,
		},
		Requests: workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 8 * time.Second, Floor: 500 * time.Millisecond},
			Servers:      servers,
			PayloadBytes: 64,
		},
		Horizon: horizon,
	}
}

// E13Run builds and runs one configuration and returns its row (Speedup
// and HeadlineEq are filled by the sweep).
func E13Run(seed int64, tier E13Tier, regions, workers int) E13Row {
	base := e13Config(seed, tier.Cells)
	pw := psim.New(psim.Config{
		Base:      base,
		Regions:   regions,
		Workers:   workers,
		Lookahead: E13Lookahead,
	})
	cells := make([]ids.MSS, tier.Cells)
	for i := range cells {
		cells[i] = ids.MSS(i + 1)
	}
	servers := make([]ids.Server, base.NumServers)
	for i := range servers {
		servers[i] = ids.Server(i + 1)
	}
	scfg := e13Script(cells, servers, tier.Horizon)
	for i := 1; i <= tier.MHs; i++ {
		id := ids.MH(i)
		start, events := psim.BuildScript(seed, id, cells, scfg)
		pw.AddMH(id, start, events)
	}

	t0 := time.Now()
	pw.RunUntil(tier.Horizon + tier.Horizon/2)
	wall := time.Since(t0)

	s := pw.Summary()
	return E13Row{
		E13Tier:     tier,
		Regions:     regions,
		Workers:     workers,
		Issued:      s.Issued,
		Delivered:   s.Delivered,
		Ratio:       s.Ratio,
		Duplicates:  s.Duplicates,
		Handoffs:    s.Handoffs,
		CrossFrames: s.CrossFrames,
		Missing:     len(pw.MissingResults()),
		Violations:  s.Violations,
		Steps:       s.Steps,
		Wall:        wall,
	}
}

// E13Tiers returns the sweep's world sizes for a scale.
func E13Tiers(sc Scale) []E13Tier {
	if sc.MHs < DefaultScale().MHs {
		return []E13Tier{
			{Cells: 8, MHs: 200, Horizon: 6 * time.Second},
			{Cells: 16, MHs: 600, Horizon: 6 * time.Second},
		}
	}
	return []E13Tier{
		{Cells: 16, MHs: 2000, Horizon: 15 * time.Second},
		{Cells: 64, MHs: 10000, Horizon: 12 * time.Second},
		{Cells: 256, MHs: 100000, Horizon: 8 * time.Second},
	}
}

// E13Regions returns the default region sweep for a scale.
func E13Regions(sc Scale) []int {
	if sc.MHs < DefaultScale().MHs {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

// E13Scale runs the full sweep: every tier at every region count.
// regions nil means E13Regions(sc); workers <= 0 means one worker per
// available core (workers = 1 forces serial execution — the reference
// the equality gate compares against). Each tier's first row is the
// speedup baseline; when it is a 1-region run, HeadlineEq checks every
// other row of the tier against it.
func E13Scale(seed int64, sc Scale, regions []int, workers int) []E13Row {
	if regions == nil {
		regions = E13Regions(sc)
	}
	var out []E13Row
	for _, tier := range E13Tiers(sc) {
		var base E13Row
		haveBase := false
		for _, r := range regions {
			if r > tier.Cells {
				continue
			}
			row := E13Run(seed, tier, r, workers)
			if !haveBase {
				row.Speedup = 1
				row.HeadlineEq = true
				base, haveBase = row, true
			} else {
				row.Speedup = float64(base.Wall) / float64(row.Wall)
				row.HeadlineEq = row.Issued == base.Issued &&
					row.Delivered == base.Delivered
			}
			out = append(out, row)
		}
	}
	return out
}
