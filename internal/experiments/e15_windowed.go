package experiments

import (
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/itcp"
	"repro/internal/msg"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
	"repro/internal/wtp"
)

// E15 radio-capacity model. Every mobile host owns one directed
// downlink from its station, so the contended resource is the radio
// link itself, not the station inbox (stations process instantly and
// the wired side is fast). With constant one-way latencies the
// stop-and-wait ceiling of a link is one frame per radio round trip:
// 1/(2·25ms) = 20 frames/s. The sweep offers multiples of that ceiling
// per host, crossed with the E10-style loss grid, and compares four
// transports over the identical seeded workload:
//
//	windowed  — the E15 transport at its defaults (window 32, AIMD
//	            cwnd, SACK fast retransmit, downlink coalescing)
//	stopwait  — the same code degenerated to one un-coalesced frame in
//	            flight (Window 1, MTU 1, immediate flush): the
//	            pre-E15 wireless ARQ discipline
//	plain     — no wireless ARQ at all; admitted results lost to the
//	            radio stay lost (GreetRefresh is off so nothing
//	            re-forwards them — the row documents why a bare lossy
//	            downlink breaks the delivery guarantee)
//	itcp      — the I-TCP baseline with its wireless TCP hop carried
//	            by the same windowed transport, for a cross-protocol
//	            reference on equal terms
const (
	e15WiredOneWay    = 2 * time.Millisecond
	e15WirelessOneWay = 25 * time.Millisecond
)

// e15LinkRate is one downlink's stop-and-wait ceiling in frames/second.
func e15LinkRate() float64 { return 1.0 / (2 * e15WirelessOneWay).Seconds() }

// e15MHs caps the host count: links are independent and identical, so
// extra hosts multiply cost without adding information.
func e15MHs(sc Scale) int {
	if sc.MHs > 8 {
		return 8
	}
	return sc.MHs
}

// E15Row is one sweep point of experiment E15.
type E15Row struct {
	Loss      float64
	OfferedX  float64 // offered load per host as a multiple of the stop-and-wait ceiling
	Transport string
	Offered   int64
	Delivered int64
	// GoodputPct is results delivered during the issuing horizon as a
	// percentage of the requests offered in it (the drain after the
	// horizon earns no credit).
	GoodputPct float64
	P99Latency time.Duration
	// Windowed-transport counters (zero on the plain rows).
	Retransmits int64
	Resets      int64
	Frames      int64
	FrameMsgs   int64
	Duplicates  int64
	// LostAdmitted counts requests the station admitted but never
	// delivered by the end of the run (-1 on the itcp rows, which have
	// no admission accounting). Nonzero is expected where the row's
	// transport cannot keep up — a stop-and-wait backlog past the
	// drain, or plain losses — and is a violation only for windowed.
	LostAdmitted int64
	// Transport profile from the world's WTP histograms (RDP rows with
	// the transport on; zero for plain and itcp): Karn-valid RTT
	// samples, the smoothed RTO after each, and the congestion window
	// in frames after every change.
	RttP50   time.Duration
	RttP99   time.Duration
	RtoP50   time.Duration
	CwndMean float64
}

// e15Memo caches the sweep per (seed, scale): rdpbench exposes two
// snapshot entries (e15 goodput ratio, e15lat p99) over one run.
var (
	e15Mu   sync.Mutex
	e15Memo = map[e15Key][]E15Row{}
)

type e15Key struct {
	seed    int64
	mhs     int
	horizon time.Duration
}

// E15WindowedTransport runs the loss × load × transport grid. Expected
// shape: the windowed transport holds goodput near the offered load at
// every point (coalescing lifts the per-frame ceiling, the window
// keeps the pipe full, SACK recovery absorbs loss), while stop-and-wait
// saturates at its per-link ceiling — before loss — and collapses
// further as every drop costs a full RTO. Plain tracks (1-loss) until
// it silently sheds admitted results; I-TCP over the same windowed hop
// matches windowed RDP.
func E15WindowedTransport(seed int64, sc Scale) []E15Row {
	e15Mu.Lock()
	defer e15Mu.Unlock()
	key := e15Key{seed: seed, mhs: sc.MHs, horizon: sc.Horizon}
	if rows, ok := e15Memo[key]; ok {
		return rows
	}
	var rows []E15Row
	for _, loss := range []float64{0.05, 0.10, 0.20} {
		for _, mult := range []float64{1, 2} {
			for _, tr := range []string{"windowed", "stopwait", "plain", "itcp"} {
				if tr == "itcp" {
					rows = append(rows, e15RunITCP(seed, sc, loss, mult))
				} else {
					rows = append(rows, e15Run(seed, sc, loss, mult, tr))
				}
			}
		}
	}
	e15Memo[key] = rows
	return rows
}

// e15Config assembles one RDP sweep point. The E11 admission stack is
// armed (high-water far above the instant-processing inbox) purely for
// its accounting: the explicit Admit makes LostAdmitted a measured
// guarantee, not an inference. GreetRefresh stays off so the windowed
// transport — not proxy-level greet recovery — is what carries the
// delivery guarantee across the lossy radio.
func e15Config(seed int64, loss float64, transport string) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.WiredLatency = netsim.Constant(e15WiredOneWay)
	cfg.WirelessLatency = netsim.Constant(e15WirelessOneWay)
	cfg.ServerProc = netsim.Constant(time.Millisecond)
	cfg.WirelessLoss = loss
	cfg.WirelessQueueLimit = 1024
	cfg.AdmissionHighWater = 64
	switch transport {
	case "windowed":
		cfg.WirelessWTP = wtp.Config{Enabled: true}
	case "stopwait":
		cfg.WirelessWTP = wtp.Config{Enabled: true, Window: 1, MTU: 1, CoalesceDelay: -1}
	}
	return cfg
}

// e15Run executes one RDP sweep point and gathers its row.
func e15Run(seed int64, sc Scale, loss, mult float64, transport string) E15Row {
	cfg := e15Config(seed, loss, transport)
	w := rdpcore.NewWorld(cfg)
	horizon := sc.Horizon

	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var reqs []pendingReq
	mean := time.Duration(float64(time.Second) / (e15LinkRate() * mult))
	for i := 1; i <= e15MHs(sc); i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		mh := w.AddMH(mhID, ids.MSS(i%cfg.NumMSS+1))
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: mean, Floor: time.Millisecond},
			Servers:      serverList(w),
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			w.Schedule(a.At, func() {
				reqs = append(reqs, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	var deliveredAtHorizon int64
	w.Schedule(horizon, func() { deliveredAtHorizon = w.Stats.ResultsDelivered.Value() })
	w.RunUntil(horizon + horizon/2)

	var lostAdmitted int64
	for _, pr := range reqs {
		mh := w.MHs[pr.mh]
		if mh.Admitted(pr.req) && !mh.Seen(pr.req) {
			lostAdmitted++
		}
	}
	offered := int64(len(reqs))
	goodput := 0.0
	if offered > 0 {
		goodput = 100 * float64(deliveredAtHorizon) / float64(offered)
	}
	return E15Row{
		Loss:         loss,
		OfferedX:     mult,
		Transport:    transport,
		Offered:      offered,
		Delivered:    w.Stats.ResultsDelivered.Value(),
		GoodputPct:   goodput,
		P99Latency:   w.Stats.ResultLatency.Quantile(0.99),
		Retransmits:  w.Stats.WTPRetransmits.Value(),
		Resets:       w.Stats.WTPResets.Value(),
		Frames:       w.Stats.WTPFrames.Value(),
		FrameMsgs:    w.Stats.WTPFrameMsgs.Value(),
		Duplicates:   w.Stats.DuplicateDeliveries.Value(),
		LostAdmitted: lostAdmitted,
		RttP50:       w.Stats.WTPRtt.Quantile(0.50),
		RttP99:       w.Stats.WTPRtt.Quantile(0.99),
		RtoP50:       w.Stats.WTPRto.Quantile(0.50),
		CwndMean:     float64(w.Stats.WTPCwnd.Mean()),
	}
}

// e15RunITCP executes the cross-protocol baseline point: the I-TCP
// world from E6 with its downlink carried by the windowed transport.
func e15RunITCP(seed int64, sc Scale, loss, mult float64) E15Row {
	icfg := itcp.DefaultConfig()
	icfg.Seed = seed
	icfg.NumMSS = 8
	icfg.NumServers = 2
	icfg.WiredLatency = netsim.Constant(e15WiredOneWay)
	icfg.WirelessLatency = netsim.Constant(e15WirelessOneWay)
	icfg.ServerProc = netsim.Constant(time.Millisecond)
	icfg.WirelessLoss = loss
	icfg.WirelessWTP = wtp.Config{Enabled: true}
	iw := itcp.NewWorld(icfg)
	horizon := sc.Horizon

	servers := []ids.Server{1, 2}
	var offered int64
	mean := time.Duration(float64(time.Second) / (e15LinkRate() * mult))
	for i := 1; i <= e15MHs(sc); i++ {
		rng := iw.Kernel.RNG().Fork()
		m := iw.AddMH(ids.MH(i), ids.MSS(i%icfg.NumMSS+1))
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: mean, Floor: time.Millisecond},
			Servers:      servers,
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			iw.Kernel.After(a.At, func() {
				m.IssueRequest(a.Server, a.Payload)
				offered++
			})
		}
	}
	var deliveredAtHorizon int64
	iw.Kernel.After(horizon, func() { deliveredAtHorizon = iw.Stats.ResultsDelivered.Value() })
	iw.RunUntil(horizon + horizon/2)

	retrans, _, resets, frames, msgs, _ := iw.Wireless.WTPStats()
	goodput := 0.0
	if offered > 0 {
		goodput = 100 * float64(deliveredAtHorizon) / float64(offered)
	}
	return E15Row{
		Loss:         loss,
		OfferedX:     mult,
		Transport:    "itcp",
		Offered:      offered,
		Delivered:    iw.Stats.ResultsDelivered.Value(),
		GoodputPct:   goodput,
		P99Latency:   iw.Stats.ResultLatency.Quantile(0.99),
		Retransmits:  retrans,
		Resets:       resets,
		Frames:       frames,
		FrameMsgs:    msgs,
		Duplicates:   iw.Stats.Duplicates.Value(),
		LostAdmitted: -1,
	}
}

// ReplayE15Windowed reruns a deterministic miniature of the windowed
// downlink for tracing: three quick requests whose results coalesce
// into wtp-data frames, with the very first data frame force-dropped so
// the trace shows the SACK from the out-of-order arrival and the RTO
// retransmission that repairs the hole. Attach a trace recorder through
// obs to print the message flow (drops render with ShowDrops).
func ReplayE15Windowed(obs netsim.Observer) *rdpcore.World {
	cfg := rdpcore.DefaultConfig()
	cfg.NumMSS = 2
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
	cfg.ServerProc = &scriptedProc{delays: []time.Duration{
		30 * time.Millisecond, 32 * time.Millisecond, 34 * time.Millisecond,
	}}
	cfg.Observer = obs
	cfg.WirelessWTP = wtp.Config{Enabled: true, Window: 4, CoalesceDelay: 5 * time.Millisecond}
	dropped := false
	cfg.WirelessDropFilter = func(from, to ids.NodeID, m msg.Message) bool {
		if m.Kind() == msg.KindWtpData && !dropped {
			dropped = true
			return true
		}
		return false
	}
	w := rdpcore.NewWorld(cfg)
	mh := w.AddMH(1, 1)
	w.Schedule(0, func() { mh.IssueRequest(1, []byte("A")) })
	w.Schedule(2*time.Millisecond, func() { mh.IssueRequest(1, []byte("B")) })
	w.Schedule(4*time.Millisecond, func() { mh.IssueRequest(1, []byte("C")) })
	w.RunUntil(2 * time.Second)
	return w
}

// E15Headline extracts the windowed and stop-and-wait rows at the
// headline grid point — 10% loss, 2× the stop-and-wait ceiling — used
// for the snapshot metrics and their CI gate.
func E15Headline(rows []E15Row) (windowed, stopwait E15Row, ok bool) {
	var haveW, haveS bool
	for _, r := range rows {
		if r.Loss == 0.10 && r.OfferedX == 2 {
			switch r.Transport {
			case "windowed":
				windowed, haveW = r, true
			case "stopwait":
				stopwait, haveS = r, true
			}
		}
	}
	return windowed, stopwait, haveW && haveS
}
