package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/rdpcore"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E17Row is one sweep point of experiment E17: a disconnection window
// length crossed with MSS crashes and proxy migration, running the
// disconnected-operation subsystem (result cache + offline queue +
// atomic batches) over the full recovery stack.
type E17Row struct {
	DisconnectDur time.Duration
	Crashes       int
	Migration     bool
	// Issued counts plain requests plus batch members; Lost is whatever
	// was neither delivered nor cleanly aborted with its batch.
	Issued    int64
	Delivered int64
	Lost      int64
	// Replayed counts offline-journaled messages replayed on reconnect.
	Replayed int64
	// Batch outcomes: every batch must end Delivered (all members) or
	// Aborted (no members); Partial counts violations of that atomicity.
	Batches        int64
	BatchDelivered int64
	BatchAborted   int64
	BatchPartial   int64
	// Migrations counts completed proxy migrations on migration rows.
	Migrations int64
	// Cache effectiveness on the repeated-query workload.
	CacheHits   int64
	CacheMisses int64
	CacheStale  int64
	HitRatio    float64
}

// e17Config assembles the world for one sweep point: the E10 recovery
// stack (the disconnection features must compose with crashes), the
// station result cache, a batch deadline short enough that the long
// disconnection window forces aborts, and — on migration rows — the E12
// hop policy over a ring distance metric.
func e17Config(seed int64, sc Scale, migration bool) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	cfg.WiredARQ = netsim.ARQConfig{Enabled: true, RTO: 60 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 400 * time.Millisecond
	cfg.HandoffTimeout = 500 * time.Millisecond
	cfg.RegConfirm = true
	cfg.GreetRefresh = 2 * time.Second
	// The client retry covers radio losses around crashes and the
	// reconnect burst (replayed frames can overtake the re-greet).
	cfg.RequestTimeout = 6 * time.Second
	cfg.ResultCache.TTL = 45 * time.Second
	cfg.ResultCache.MaxEntries = 128
	cfg.ResultCache.MaxBytes = 1 << 16
	// Shorter than the long disconnection window, so batches stranded
	// open across it abort instead of blocking forever.
	cfg.BatchDeadline = sc.Horizon * 3 / 10
	if migration {
		cfg.Migration = proxymig.Policy{HopThreshold: 2, MinInterval: 250 * time.Millisecond}
		cfg.StationDistance = proxymig.RingDistance(cfg.NumMSS)
	}
	return cfg
}

// e17Plan schedules the injected faults for one sweep point: every
// third MH disconnects for dur at 35% of the horizon, and the E10 crash
// victims get crash/restart windows overlapping those disconnections.
func e17Plan(sc Scale, dur time.Duration, crashes int, mhs int) faults.Plan {
	var plan faults.Plan
	at := sc.Horizon * 35 / 100
	for i := 1; i <= mhs; i += 3 {
		plan.Disconnects = append(plan.Disconnects, faults.Disconnect{
			MH: ids.MH(i), At: at, ReconnectAt: at + dur,
		})
	}
	victims := []ids.MSS{2, 5, 7}
	for i := 0; i < crashes && i < len(victims); i++ {
		cat := sc.Horizon * time.Duration(3+3*i) / 10
		plan.Crashes = append(plan.Crashes, faults.Crash{
			MSS: victims[i], At: cat, RestartAt: cat + 3*time.Second,
		})
	}
	return plan
}

// e17Batch tracks one issued batch for post-run judgment.
type e17Batch struct {
	mh ids.MH
	id ids.BatchID
}

// E17Disconnected sweeps disconnection window length × MSS crashes ×
// proxy migration and checks the three disconnected-operation
// guarantees: no request is lost (delivered, or abandoned with its
// whole batch), no batch is partially delivered, and the station result
// cache answers at least half of the repeated-query lookups. Every MH
// draws its request payloads from a small shared pool, so the same
// (server, payload) computation recurs across hosts and over time — the
// workload the cache exists for. Disconnected MHs keep issuing: those
// requests journal into the offline queue and replay on reconnect. One
// batch per disconnected MH is deliberately stranded across the window
// (members sent, commit held back past the batch deadline), forcing the
// proxy-side abort path; batches issued while connected must release
// and deliver completely.
func E17Disconnected(seed int64, sc Scale) []E17Row {
	longDur := sc.Horizon * 2 / 5
	shortDur := sc.Horizon / 10
	var rows []E17Row
	for _, dur := range []time.Duration{shortDur, longDur} {
		for _, crashes := range []int{0, 1} {
			for _, migration := range []bool{false, true} {
				rows = append(rows, e17Run(seed, sc, dur, crashes, migration))
			}
		}
	}
	return rows
}

func e17Run(seed int64, sc Scale, dur time.Duration, crashes int, migration bool) E17Row {
	cfg := e17Config(seed, sc, migration)
	k := sim.NewKernel(cfg.Seed)
	inj := faults.New(k, e17Plan(sc, dur, crashes, sc.MHs))
	cfg.WiredFaults = inj
	w := rdpcore.NewWorldOn(k, cfg)
	inj.Schedule(w.CrashMSS, w.RestartMSS)
	inj.ScheduleDisconnects(w.Disconnect, w.Reconnect)

	cells := w.StationList()
	servers := serverList(w)
	horizon := sc.Horizon
	disconnectAt := horizon * 35 / 100

	// The shared query pool: 3 payloads per server, reused by every MH.
	pool := make([][]byte, 0, 3*len(servers))
	for i := 0; i < 3; i++ {
		pool = append(pool, []byte(fmt.Sprintf("query-%d", i)))
	}

	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var plain []pendingReq
	var batches []e17Batch

	for i := 1; i <= sc.MHs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)

		mob := workload.Mobility{
			Picker:    workload.UniformCells{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: 2 * time.Second, Floor: 200 * time.Millisecond},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				w.Schedule(ev.At, func() {
					if !w.IsDisconnected(mhID) {
						w.Migrate(mhID, ev.Cell)
					}
				})
			}
		}

		// Plain repeated-query traffic, continuing through the
		// disconnection window (journaled + replayed there).
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 20 * time.Millisecond},
			Servers:      servers,
			PayloadBytes: 8,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			payload := pool[rng.Intn(len(pool))]
			w.Schedule(a.At, func() {
				plain = append(plain, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, payload)})
			})
		}

		// One connected-issue batch per MH: opened, filled and committed
		// in one go well before the disconnection window; must deliver
		// all members.
		srvA, srvB := servers[rng.Intn(len(servers))], servers[rng.Intn(len(servers))]
		pA, pB := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		w.Schedule(horizon/5, func() {
			b := mh.BeginBatch()
			mh.BatchRequest(b, srvA, pA)
			mh.BatchRequest(b, srvB, pB)
			mh.BatchRequest(b, srvA, pB)
			mh.CommitBatch(b)
			batches = append(batches, e17Batch{mh: mhID, id: b})
		})

		// Disconnected MHs additionally strand a batch across the
		// window: members go out just before the radio drops, the commit
		// only after reconnection — past the batch deadline on the long
		// rows, forcing the proxy abort.
		if i%3 == 1 {
			var stranded ids.BatchID
			w.Schedule(disconnectAt-100*time.Millisecond, func() {
				stranded = mh.BeginBatch()
				mh.BatchRequest(stranded, srvA, pA)
				mh.BatchRequest(stranded, srvB, pB)
				batches = append(batches, e17Batch{mh: mhID, id: stranded})
			})
			w.Schedule(disconnectAt+dur+time.Second, func() {
				mh.CommitBatch(stranded)
			})
		}
	}

	w.RunUntil(horizon + horizon/2)

	row := E17Row{
		DisconnectDur: dur,
		Crashes:       crashes,
		Migration:     migration,
		Replayed:      w.Stats.OfflineReplayed.Value(),
		Migrations:    w.Stats.MigCompleted.Value(),
		CacheHits:     w.Stats.CacheHits.Value(),
		CacheMisses:   w.Stats.CacheMisses.Value(),
		CacheStale:    w.Stats.CacheStale.Value(),
	}
	for _, pr := range plain {
		row.Issued++
		if w.MHs[pr.mh].Seen(pr.req) {
			row.Delivered++
		} else {
			row.Lost++
		}
	}
	for _, b := range batches {
		delivered, members, aborted := w.MHs[b.mh].BatchStatus(b.id)
		row.Batches++
		row.Issued += int64(members)
		row.Delivered += int64(delivered)
		switch {
		case aborted && delivered == 0:
			row.BatchAborted++ // clean abort: members abandoned, none delivered
		case !aborted && delivered == members:
			row.BatchDelivered++
		case delivered == 0:
			row.Lost += int64(members) // never resolved either way
		default:
			row.BatchPartial++
			row.Lost += int64(members - delivered)
		}
	}
	if lookups := row.CacheHits + row.CacheMisses + row.CacheStale; lookups > 0 {
		row.HitRatio = float64(row.CacheHits) / float64(lookups)
	}
	return row
}
