package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/proxymig"
	"repro/internal/rdpcore"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E18Row is one sweep point of experiment E18: mobile-host
// crash-with-amnesia windows crossed with disconnections, MSS crashes
// and proxy migration, running incarnation-scoped delivery and the
// lease-based orphan reclamation over the full recovery stack.
//
// The accounting is incarnation-scoped: a request issued by an
// incarnation that later died is *supposed* to vanish (its issuer lost
// the memory that tracked it), so the delivery guarantee is judged only
// over requests whose issuing incarnation is still the host's current
// one at the end of the run — the "survivor" scope.
type E18Row struct {
	DisconnectDur time.Duration
	MSSCrashes    int
	Migration     bool
	// MHCrashes/MHRestarts are the executed host outage windows (one
	// victim per row stays down permanently).
	MHCrashes  int64
	MHRestarts int64
	// Issued/Delivered/Lost cover the survivor scope only; Orphaned
	// counts requests excluded from it (issued by a dead incarnation,
	// or by a host that is still down at the end).
	Issued    int64
	Delivered int64
	Lost      int64
	Orphaned  int64
	// CrossIncDeliveries counts results accepted by a different
	// incarnation than the one that issued the request — the delivery
	// anomaly the incarnation gate exists to prevent. Must be zero.
	CrossIncDeliveries int64
	// Reclaimed counts proxies retired by the lease GC; Heartbeats the
	// lease renewals; StaleDrops the protocol-level drops of
	// dead-incarnation state; DroppedOffline the journaled offline
	// entries discarded at reboot.
	Reclaimed      int64
	Heartbeats     int64
	StaleDrops     int64
	DroppedOffline int64
	// Migrations counts completed proxy migrations (migration rows only).
	Migrations int64
	// Batch outcomes over survivor-scope batches (opened by the final
	// incarnation): all-or-nothing still holds under host crashes.
	Batches        int64
	BatchDelivered int64
	BatchAborted   int64
	BatchPartial   int64
	// Leaked is the leftover dead-incarnation proxy state found by the
	// quiescence sweep (empty string means clean).
	Leaked string
}

// e18Config assembles the world for one sweep point: the E17
// disconnected-operation stack (which itself rides the E10 recovery
// stack) plus the lease machinery. The lease TTL is long against the
// heartbeat period and short against the horizon, so an orphaned proxy
// is reclaimed mid-run rather than surviving to the end.
func e18Config(seed int64, sc Scale, migration bool) rdpcore.Config {
	cfg := baseConfig(seed)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	cfg.WiredARQ = netsim.ARQConfig{Enabled: true, RTO: 60 * time.Millisecond, MaxBackoff: 250 * time.Millisecond}
	cfg.Checkpoint = true
	cfg.RecoveryGrace = 400 * time.Millisecond
	cfg.HandoffTimeout = 500 * time.Millisecond
	cfg.RegConfirm = true
	cfg.GreetRefresh = 2 * time.Second
	cfg.RequestTimeout = 6 * time.Second
	cfg.ResultCache.TTL = 45 * time.Second
	cfg.ResultCache.MaxEntries = 128
	cfg.ResultCache.MaxBytes = 1 << 16
	cfg.BatchDeadline = sc.Horizon * 3 / 10
	cfg.LeaseTTL = 6 * time.Second
	if migration {
		cfg.Migration = proxymig.Policy{HopThreshold: 2, MinInterval: 250 * time.Millisecond}
		cfg.StationDistance = proxymig.RingDistance(cfg.NumMSS)
	}
	return cfg
}

// e18Plan schedules the faults for one sweep point: every third MH
// disconnects for dur at 35% of the horizon (as in E17), every fourth
// MH crashes with amnesia at 55% and reboots two seconds later — except
// the last crash victim, which stays down for the rest of the run (the
// permanent-casualty case the lease GC must clean up after) — and the
// E10 station crash victims overlap the middle of the run. MH 1 is both
// a disconnect and a crash victim, so on the long rows it reboots while
// still out of coverage and replays its offline journal through the
// incarnation filter.
func e18Plan(sc Scale, dur time.Duration, mssCrashes, mhs int) faults.Plan {
	var plan faults.Plan
	at := sc.Horizon * 35 / 100
	for i := 1; i <= mhs; i += 3 {
		plan.Disconnects = append(plan.Disconnects, faults.Disconnect{
			MH: ids.MH(i), At: at, ReconnectAt: at + dur,
		})
	}
	crashAt := sc.Horizon * 55 / 100
	for i := 1; i <= mhs; i += 4 {
		plan.MHCrashes = append(plan.MHCrashes, faults.MHCrash{
			MH: ids.MH(i), At: crashAt, RestartAt: crashAt + 2*time.Second,
		})
	}
	// Permanent casualty: never restarts; the lease GC must reclaim
	// whatever its death orphaned.
	plan.MHCrashes[len(plan.MHCrashes)-1].RestartAt = 0
	victims := []ids.MSS{2, 5, 7}
	for i := 0; i < mssCrashes && i < len(victims); i++ {
		cat := sc.Horizon * time.Duration(3+3*i) / 10
		plan.Crashes = append(plan.Crashes, faults.Crash{
			MSS: victims[i], At: cat, RestartAt: cat + 3*time.Second,
		})
	}
	return plan
}

// E18MHCrash sweeps disconnection window length × MSS crashes × proxy
// migration with mobile-host crash/amnesia windows injected on every
// row, and checks the three E18 guarantees: no result crosses an
// incarnation boundary (CrossIncDeliveries == 0), every survivor-scope
// request is delivered (Lost == 0), and no proxy state owned by a dead
// incarnation survives to quiescence (Leaked == ""). Crash victims keep
// issuing after their reboot — those post-restart requests are in the
// survivor scope and must deliver through whatever is left of their
// pre-crash proxy state.
func E18MHCrash(seed int64, sc Scale) []E18Row {
	longDur := sc.Horizon * 2 / 5
	shortDur := sc.Horizon / 10
	var rows []E18Row
	for _, dur := range []time.Duration{shortDur, longDur} {
		for _, mssCrashes := range []int{0, 1} {
			for _, migration := range []bool{false, true} {
				rows = append(rows, e18Run(seed, sc, dur, mssCrashes, migration))
			}
		}
	}
	return rows
}

func e18Run(seed int64, sc Scale, dur time.Duration, mssCrashes int, migration bool) E18Row {
	cfg := e18Config(seed, sc, migration)
	k := sim.NewKernel(cfg.Seed)
	inj := faults.New(k, e18Plan(sc, dur, mssCrashes, sc.MHs))
	cfg.WiredFaults = inj
	w := rdpcore.NewWorldOn(k, cfg)
	inj.Schedule(w.CrashMSS, w.RestartMSS)
	inj.ScheduleDisconnects(w.Disconnect, w.Reconnect)
	inj.ScheduleMHCrashes(w.CrashMH, w.RestartMH)

	cells := w.StationList()
	servers := serverList(w)
	horizon := sc.Horizon
	crashAt := horizon * 55 / 100

	pool := make([][]byte, 0, 3*len(servers))
	for i := 0; i < 3; i++ {
		pool = append(pool, []byte(fmt.Sprintf("query-%d", i)))
	}

	// Each issued request is recorded with the incarnation that issued
	// it; each first (non-duplicate) delivery with the incarnation that
	// accepted it. A mismatch between the two is the cross-incarnation
	// anomaly.
	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
		inc ids.Incarnation
	}
	type pendingBatch struct {
		mh  ids.MH
		id  ids.BatchID
		inc ids.Incarnation
	}
	var plain []pendingReq
	var batches []pendingBatch
	issueInc := make(map[pendingReq]bool)
	var crossInc int64

	for i := 1; i <= sc.MHs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)

		mh.OnResult(func(req ids.RequestID, payload []byte, duplicate bool) {
			if duplicate {
				return
			}
			if !issueInc[pendingReq{mh: mhID, req: req, inc: w.IncarnationOf(mhID)}] {
				crossInc++
			}
		})

		mob := workload.Mobility{
			Picker:    workload.UniformCells{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: 2 * time.Second, Floor: 200 * time.Millisecond},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				w.Schedule(ev.At, func() {
					if !w.IsDisconnected(mhID) {
						w.Migrate(mhID, ev.Cell)
					}
				})
			}
		}

		// Plain traffic through every fault window: disconnected issues
		// journal offline, crash-window issues are swallowed (the host
		// is dead), post-restart issues re-enter under the new
		// incarnation.
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 20 * time.Millisecond},
			Servers:      servers,
			PayloadBytes: 8,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			payload := pool[rng.Intn(len(pool))]
			w.Schedule(a.At, func() {
				req := mh.IssueRequest(a.Server, payload)
				if req.Seq == 0 {
					return // host crashed: the request never happened
				}
				pr := pendingReq{mh: mhID, req: req, inc: w.IncarnationOf(mhID)}
				plain = append(plain, pr)
				issueInc[pr] = true
			})
		}

		// A burst just before the crash instant guarantees every victim
		// dies with in-flight state: the results land at a proxy whose
		// owner has lost all memory of them, so the orphaned state must
		// be scrubbed on re-registration (rebooted victims) or reclaimed
		// by the lease GC (the permanent casualty).
		if i%4 == 1 {
			w.Schedule(crashAt-50*time.Millisecond, func() {
				for j := 0; j < 3; j++ {
					// Unique payloads bypass the result cache: the burst
					// must still be at the server when the host dies.
					payload := []byte(fmt.Sprintf("orphan-%d-%d", i, j))
					req := mh.IssueRequest(servers[j%len(servers)], payload)
					if req.Seq == 0 {
						return
					}
					pr := pendingReq{mh: mhID, req: req, inc: w.IncarnationOf(mhID)}
					plain = append(plain, pr)
					issueInc[pr] = true
				}
			})
		}

		// Two batches per MH, opened/filled/committed in a single
		// instant (so a batch never straddles a crash boundary on the
		// client): one before the fault windows, one after the crash
		// victims have rebooted.
		srvA, srvB := servers[rng.Intn(len(servers))], servers[rng.Intn(len(servers))]
		pA, pB := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
		for _, at := range []time.Duration{horizon / 5, horizon * 7 / 10} {
			at := at
			w.Schedule(at, func() {
				b := mh.BeginBatch()
				if b.Seq == 0 {
					return // host crashed at this instant
				}
				inc := w.IncarnationOf(mhID)
				r1 := mh.BatchRequest(b, srvA, pA)
				r2 := mh.BatchRequest(b, srvB, pB)
				mh.CommitBatch(b)
				batches = append(batches, pendingBatch{mh: mhID, id: b, inc: inc})
				for _, r := range []ids.RequestID{r1, r2} {
					issueInc[pendingReq{mh: mhID, req: r, inc: inc}] = true
				}
			})
		}
	}

	w.RunUntil(horizon + horizon/2)

	row := E18Row{
		DisconnectDur:      dur,
		MSSCrashes:         mssCrashes,
		Migration:          migration,
		MHCrashes:          w.Stats.MHCrashes.Value(),
		MHRestarts:         w.Stats.MHRestarts.Value(),
		CrossIncDeliveries: crossInc,
		Reclaimed:          w.Stats.ProxiesReclaimed.Value(),
		Heartbeats:         w.Stats.LeaseHeartbeats.Value(),
		StaleDrops:         w.Stats.StaleIncarnationDrops.Value(),
		DroppedOffline:     w.Stats.OfflineDroppedStale.Value(),
		Migrations:         w.Stats.MigCompleted.Value(),
	}
	for _, pr := range plain {
		row.Issued++
		switch {
		case w.IsCrashed(pr.mh) || pr.inc != w.IncarnationOf(pr.mh):
			// Issued by a dead incarnation (or a host still down):
			// outside the delivery guarantee by design.
			row.Orphaned++
		case w.MHs[pr.mh].Seen(pr.req):
			row.Delivered++
		default:
			row.Lost++
		}
	}
	for _, b := range batches {
		if w.IsCrashed(b.mh) || b.inc != w.IncarnationOf(b.mh) {
			continue // the batch died with its incarnation
		}
		delivered, members, aborted := w.MHs[b.mh].BatchStatus(b.id)
		row.Batches++
		row.Issued += int64(members)
		row.Delivered += int64(delivered)
		switch {
		case aborted && delivered == 0:
			row.BatchAborted++
		case !aborted && delivered == members:
			row.BatchDelivered++
		case delivered == 0:
			row.Lost += int64(members)
		default:
			row.BatchPartial++
			row.Lost += int64(members - delivered)
		}
	}
	if err := w.CheckQuiescent(); err != nil {
		row.Leaked = err.Error()
	}
	return row
}
