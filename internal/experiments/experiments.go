// Package experiments implements the paper's evaluation: one function
// per experiment (E1–E8 of DESIGN.md) plus the Figure 3 / Figure 4
// scenario replays. Each function builds the required worlds, drives the
// paper's workload, and returns the rows of the table the experiment
// regenerates; cmd/rdpbench renders them and bench_test.go wraps them as
// Go benchmarks. EXPERIMENTS.md records the measured outcomes against
// the paper's claims.
package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/itcp"
	"repro/internal/metrics"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/workload"
)

// Scale tunes how much work each experiment does; 1 is the standard
// size used by rdpbench, smaller fractions keep unit tests fast.
type Scale struct {
	// MHs is the number of mobile hosts per run.
	MHs int
	// Horizon is the issuing period; a drain of half the horizon is
	// appended.
	Horizon time.Duration
}

// DefaultScale is the rdpbench size.
func DefaultScale() Scale {
	return Scale{MHs: 20, Horizon: 2 * time.Minute}
}

// SmallScale keeps test runs under a second.
func SmallScale() Scale {
	return Scale{MHs: 6, Horizon: 20 * time.Second}
}

// baseConfig is the network every experiment runs on unless it sweeps
// one of these parameters: 8 cells, 2 servers, 5ms wired, 20ms wireless,
// 150ms mean server processing.
func baseConfig(seed int64) rdpcore.Config {
	cfg := rdpcore.DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = 8
	cfg.NumServers = 2
	cfg.WiredLatency = netsim.Uniform{Lo: 2 * time.Millisecond, Hi: 8 * time.Millisecond}
	cfg.WirelessLatency = netsim.Uniform{Lo: 10 * time.Millisecond, Hi: 30 * time.Millisecond}
	cfg.ServerProc = netsim.Exponential{MeanDelay: 150 * time.Millisecond, Floor: 10 * time.Millisecond}
	return cfg
}

// drive runs a standard workload over an RDP world: every MH follows a
// random itinerary with the given mean cell-residence time (and optional
// inactivity), issuing Poisson requests during the horizon; the world
// then drains. It returns the fraction of issued requests delivered.
func drive(w *rdpcore.World, sc Scale, residence workload.Sampler, inactiveProb float64) (issued, delivered int64) {
	cells := w.StationList()
	horizon := sc.Horizon
	drain := sc.Horizon / 2
	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	var reqs []pendingReq

	for i := 1; i <= sc.MHs; i++ {
		mhID := ids.MH(i)
		rng := w.Kernel.RNG().Fork()
		start := cells[rng.Intn(len(cells))]
		mh := w.AddMH(mhID, start)

		mob := workload.Mobility{
			Picker:            workload.UniformCells{Cells: cells},
			Residence:         residence,
			InactiveProb:      inactiveProb,
			InactiveDur:       netsim.Exponential{MeanDelay: 2 * residence.Mean(), Floor: residence.Mean() / 5},
			MoveWhileInactive: 0.4,
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			w.Schedule(ev.At, func() {
				switch ev.Kind {
				case workload.EvMigrate:
					w.Migrate(mhID, ev.Cell)
				case workload.EvDeactivate:
					w.SetActive(mhID, false)
				case workload.EvActivate:
					if ev.Cell != w.Location(mhID) {
						w.Migrate(mhID, ev.Cell)
					}
					w.SetActive(mhID, true)
				}
			})
		}
		w.Schedule(horizon+500*time.Millisecond, func() { w.SetActive(mhID, true) })

		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 20 * time.Millisecond},
			Servers:      serverList(w),
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			w.Schedule(a.At, func() {
				reqs = append(reqs, pendingReq{mh: mhID, req: mh.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	w.RunUntil(horizon + drain)

	for _, pr := range reqs {
		issued++
		if w.MHs[pr.mh].Seen(pr.req) {
			delivered++
		}
	}
	return issued, delivered
}

func serverList(w *rdpcore.World) []ids.Server {
	cfg := w.Config()
	out := make([]ids.Server, 0, cfg.NumServers)
	for i := 1; i <= cfg.NumServers; i++ {
		out = append(out, ids.Server(i))
	}
	return out
}

// ---------------------------------------------------------------------
// E1 — reliability: delivery ratio under swept mobility and inactivity.

// E1Row is one sweep point of experiment E1.
type E1Row struct {
	MeanResidence time.Duration
	InactiveProb  float64
	Issued        int64
	Delivered     int64
	Ratio         float64
	Handoffs      int64
	Retrans       int64
}

// E1Reliability sweeps the mean cell-residence time (with and without
// inactivity) and measures the delivery ratio. Paper claim (§5, abstract):
// "eventually every result will be delivered ... despite any number of
// migrations and periods of inactivity" — the Ratio column must be 1.0
// on every row.
func E1Reliability(seed int64, sc Scale) []E1Row {
	residences := []time.Duration{
		200 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 3 * time.Second, 10 * time.Second,
	}
	var rows []E1Row
	for _, res := range residences {
		for _, inact := range []float64{0, 0.25} {
			cfg := baseConfig(seed)
			w := rdpcore.NewWorld(cfg)
			issued, delivered := drive(w, sc, netsim.Exponential{MeanDelay: res, Floor: res / 10}, inact)
			ratio := 0.0
			if issued > 0 {
				ratio = float64(delivered) / float64(issued)
			}
			rows = append(rows, E1Row{
				MeanResidence: res,
				InactiveProb:  inact,
				Issued:        issued,
				Delivered:     delivered,
				Ratio:         ratio,
				Handoffs:      w.Stats.Handoffs.Value(),
				Retrans:       w.Stats.Retransmissions.Value(),
			})
		}
	}
	return rows
}

// ---------------------------------------------------------------------
// E2 — exactly-once and its two mechanisms.

// E2Row is one configuration of experiment E2.
type E2Row struct {
	Name        string
	Causal      bool
	AckPriority bool
	Issued      int64
	Delivered   int64
	Duplicates  int64
	Violations  int64
	IgnoredAcks int64
}

// E2ExactlyOnce runs an adversarial migrate-on-delivery workload in two
// regimes. Regime A (constant wireless latency, so the Ack always
// reaches the old station before the hand-off dereg — the paper's §5
// premise) isolates the causal-order mechanism: the full protocol must
// be exactly-once, the no-causal ablation must show anomalies. Regime B
// (variable wireless latency + per-message processing delay, so Acks and
// deregs race into station queues) isolates the §3.1 ack-priority rule:
// disabling it must increase ignored Acks and the duplicates they cause.
func E2ExactlyOnce(seed int64, sc Scale) []E2Row {
	type variant struct {
		name        string
		causal      bool
		ackPriority bool
		varWireless bool
	}
	variants := []variant{
		{"A: full protocol", true, true, false},
		{"A: no causal order", false, true, false},
		{"B: ack priority on", true, true, true},
		{"B: ack priority off", true, false, true},
	}
	var rows []E2Row
	for _, v := range variants {
		cfg := baseConfig(seed)
		cfg.Causal = v.causal
		cfg.AckPriority = v.ackPriority
		// Per-message processing delay gives the ack-priority rule a
		// queue to act on and widens the race windows.
		cfg.ProcDelay = 3 * time.Millisecond
		cfg.WiredLatency = netsim.Uniform{Lo: time.Millisecond, Hi: 40 * time.Millisecond}
		if v.varWireless {
			cfg.WirelessLatency = netsim.Uniform{Lo: 2 * time.Millisecond, Hi: 30 * time.Millisecond}
		} else {
			cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
		}
		w := rdpcore.NewWorld(cfg)

		// Adversarial schedule: every MH migrates immediately after each
		// delivery, racing the Ack against the hand-off.
		cells := w.StationList()
		var issued int64
		for i := 1; i <= sc.MHs; i++ {
			mhID := ids.MH(i)
			rng := w.Kernel.RNG().Fork()
			mh := w.AddMH(mhID, cells[rng.Intn(len(cells))])
			mh.OnResult(func(ids.RequestID, []byte, bool) {
				cell := cells[rng.Intn(len(cells))]
				w.Schedule(200*time.Microsecond, func() { w.Migrate(mhID, cell) })
			})
			reqCfg := workload.Requests{
				Interarrival: netsim.Exponential{MeanDelay: 400 * time.Millisecond, Floor: 10 * time.Millisecond},
				Servers:      serverList(w),
				PayloadBytes: 16,
			}
			for _, a := range workload.Schedule(rng, reqCfg, sc.Horizon) {
				a := a
				w.Schedule(a.At, func() { mh.IssueRequest(a.Server, a.Payload); issued++ })
			}
		}
		w.RunUntil(sc.Horizon + sc.Horizon/2)
		rows = append(rows, E2Row{
			Name:        v.name,
			Causal:      v.causal,
			AckPriority: v.ackPriority,
			Issued:      issued,
			Delivered:   w.Stats.ResultsDelivered.Value(),
			Duplicates:  w.Stats.DuplicateDeliveries.Value(),
			Violations:  w.Stats.Violations.Value(),
			IgnoredAcks: w.Stats.IgnoredAcks.Value(),
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// E3 — the §5 retransmission threshold.

// E3Row is one sweep point of experiment E3.
type E3Row struct {
	MeanResidence    time.Duration
	ThresholdRatio   float64 // residence / (t_wired + t_wireless)
	Results          int64
	Retrans          int64
	RetransPerResult float64
}

// E3RetransmissionThreshold sweeps the mean cell-residence time across
// the t_wired + t_wireless boundary. Paper claim (§5): "retransmissions
// ... occur only if the mean time period a MH spends in a cell is less
// than t_wired + t_wireless" — the per-result retransmission rate must
// fall toward zero as the ratio passes 1 and grow sharply below it.
func E3RetransmissionThreshold(seed int64, sc Scale) []E3Row {
	cfg := baseConfig(seed)
	// Deterministic latencies make the threshold crisp: t_wired = 5ms,
	// t_wireless = 20ms, threshold at 25ms.
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	threshold := 25 * time.Millisecond

	ratios := []float64{0.4, 0.8, 1.0, 1.5, 2, 4, 10, 40, 150, 400}
	var rows []E3Row
	for _, ratio := range ratios {
		res := time.Duration(float64(threshold) * ratio)
		w := rdpcore.NewWorld(cfg)
		// Uniform residence keeps the sweep point near its nominal mean
		// (an exponential would smear mass below the threshold at every
		// ratio) while enough jitter avoids phase-locking between the
		// migration cycle and the retransmission cycle.
		_, delivered := drive(w, sc, netsim.Uniform{Lo: res / 2, Hi: res * 3 / 2}, 0)
		retrans := w.Stats.Retransmissions.Value()
		per := 0.0
		if delivered > 0 {
			per = float64(retrans) / float64(delivered)
		}
		rows = append(rows, E3Row{
			MeanResidence:    res,
			ThresholdRatio:   ratio,
			Results:          delivered,
			Retrans:          retrans,
			RetransPerResult: per,
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// E4 — the §5 overhead formula.

// E4Row is one sweep point of experiment E4.
type E4Row struct {
	MeanResidence    time.Duration
	UpdateCurrLocs   int64
	PredictedUpdates int64 // hand-offs + reactivations (proxy always alive)
	UpdateCoverage   float64
	AckForwards      int64
	PredictedAcks    int64 // deliveries (incl. duplicates) minus ignored acks
	Match            bool
}

// E4Overhead measures the two §5 overhead terms against independent
// predictions. The paper: "(1) one update_currl whenever the mobile
// host migrates or becomes active again; and (2) one extra Ack message
// sent from respMss to the proxy whenever MH acknowledges the receipt
// of result".
//
// Updates are owed only while the MH has a proxy, so the workload keeps
// a request pipeline deep enough that every MH's proxy lives through the
// whole run: predicted updates = hand-offs + reactivations, both counted
// by independent event counters. Predicted ack relays = result
// deliveries (the MH acks every one, duplicates included) minus the acks
// the old station ignored during hand-offs.
func E4Overhead(seed int64, sc Scale) []E4Row {
	var rows []E4Row
	for _, res := range []time.Duration{500 * time.Millisecond, 2 * time.Second} {
		cfg := baseConfig(seed)
		// Deep pipeline: requests arrive faster than the server answers.
		cfg.ServerProc = netsim.Exponential{MeanDelay: 1200 * time.Millisecond, Floor: 200 * time.Millisecond}
		w := rdpcore.NewWorld(cfg)
		cells := w.StationList()
		for i := 1; i <= sc.MHs; i++ {
			mhID := ids.MH(i)
			rng := w.Kernel.RNG().Fork()
			start := cells[rng.Intn(len(cells))]
			mh := w.AddMH(mhID, start)
			// Priming burst pins the proxy alive from t=0.
			w.Schedule(0, func() {
				for j := 0; j < 4; j++ {
					mh.IssueRequest(1, []byte("prime"))
				}
			})
			mob := workload.Mobility{
				Picker:       workload.UniformCells{Cells: cells},
				Residence:    netsim.Exponential{MeanDelay: res, Floor: res / 10},
				InactiveProb: 0.15,
				InactiveDur:  netsim.Exponential{MeanDelay: res, Floor: res / 5},
			}
			for _, ev := range workload.Itinerary(rng, mob, start, sc.Horizon) {
				ev := ev
				w.Schedule(ev.At, func() {
					switch ev.Kind {
					case workload.EvMigrate:
						w.Migrate(mhID, ev.Cell)
					case workload.EvDeactivate:
						w.SetActive(mhID, false)
					case workload.EvActivate:
						w.SetActive(mhID, true)
					}
				})
			}
			reqCfg := workload.Requests{
				Interarrival: netsim.Exponential{MeanDelay: 300 * time.Millisecond, Floor: 20 * time.Millisecond},
				Servers:      serverList(w),
				PayloadBytes: 16,
			}
			for _, a := range workload.Schedule(rng, reqCfg, sc.Horizon) {
				a := a
				w.Schedule(a.At, func() { mh.IssueRequest(a.Server, a.Payload) })
			}
		}
		// Mobility and issuing stop at the horizon; a short quiescence
		// drain lets in-flight results and ack relays complete so the
		// counters are closed totals. (The pipeline stays deep through
		// the measured period.)
		w.RunUntil(sc.Horizon + 10*time.Second)
		updates := w.Stats.UpdateCurrLocs.Value()
		predictedUpdates := w.Stats.Handoffs.Value() + w.Stats.Reactivations.Value()
		acks := w.Stats.AckForwards.Value()
		predictedAcks := w.Stats.ResultsDelivered.Value() + w.Stats.DuplicateDeliveries.Value() - w.Stats.IgnoredAcks.Value()
		coverage := 0.0
		if predictedUpdates > 0 {
			coverage = float64(updates) / float64(predictedUpdates)
		}
		rows = append(rows, E4Row{
			MeanResidence:    res,
			UpdateCurrLocs:   updates,
			PredictedUpdates: predictedUpdates,
			UpdateCoverage:   coverage,
			AckForwards:      acks,
			PredictedAcks:    predictedAcks,
			// The ack term is exact. The update term may undershoot the
			// bound slightly: a migration in the instants before the MH's
			// very first request reaches its station owes no update (no
			// proxy exists yet).
			Match: acks == predictedAcks && coverage >= 0.95 && coverage <= 1.0,
		})
	}
	return rows
}

// ---------------------------------------------------------------------
// E5 — load balancing: proxy placement vs fixed home agents.

// E5Row summarizes one protocol's forwarding-load distribution.
type E5Row struct {
	Protocol    string
	Jain        float64
	MaxOverMean float64
	Loads       []float64
}

// E5LoadBalance runs the same roaming workload under RDP and under
// Mobile IP with all home agents on one station (the worst — and
// common — case of operator-assigned home networks), and compares how
// forwarding load spreads over stations. Paper claim (§1, §4): "the
// location of the proxy ... is not static (as in Mobile IP), by which
// it facilitates dynamic global load balancing within the set of MSSs".
func E5LoadBalance(seed int64, sc Scale) []E5Row {
	// RDP: result-forward work per hosting station.
	cfg := baseConfig(seed)
	w := rdpcore.NewWorld(cfg)
	drive(w, sc, netsim.Exponential{MeanDelay: time.Second, Floor: 100 * time.Millisecond}, 0)
	rdpLoads := w.Stats.ForwardLoads(w.StationList())

	// Mobile IP: tunnel work per station; all homes at mss1.
	mcfg := mobileip.DefaultConfig()
	mcfg.Seed = seed
	mcfg.NumMSS = cfg.NumMSS
	mcfg.NumServers = cfg.NumServers
	mcfg.WiredLatency = cfg.WiredLatency
	mcfg.WirelessLatency = cfg.WirelessLatency
	mcfg.ServerProc = cfg.ServerProc
	mcfg.RequestTimeout = 2 * time.Second
	mw := mobileip.NewWorld(mcfg)
	driveMIP(mw, sc, time.Second, func(i int) ids.MSS { return 1 })
	mipLoads := make([]float64, 0, len(mw.StationList()))
	for _, st := range mw.StationList() {
		mipLoads = append(mipLoads, float64(mw.Stats.TunnelLoad[st]))
	}

	// Mobile IP with homes spread round-robin (best case for MIP): load
	// is static per MH regardless of where it roams.
	mcfg.Seed = seed + 1
	mw2 := mobileip.NewWorld(mcfg)
	driveMIP(mw2, sc, time.Second, func(i int) ids.MSS {
		return ids.MSS(i%mcfg.NumMSS + 1)
	})
	mip2Loads := make([]float64, 0, len(mw2.StationList()))
	for _, st := range mw2.StationList() {
		mip2Loads = append(mip2Loads, float64(mw2.Stats.TunnelLoad[st]))
	}

	return []E5Row{
		{Protocol: "RDP (proxies follow users)", Jain: metrics.JainIndex(rdpLoads), MaxOverMean: metrics.MaxOverMean(rdpLoads), Loads: rdpLoads},
		{Protocol: "Mobile IP (shared home)", Jain: metrics.JainIndex(mipLoads), MaxOverMean: metrics.MaxOverMean(mipLoads), Loads: mipLoads},
		{Protocol: "Mobile IP (spread homes)", Jain: metrics.JainIndex(mip2Loads), MaxOverMean: metrics.MaxOverMean(mip2Loads), Loads: mip2Loads},
	}
}

// driveMIP runs the standard roaming workload over a Mobile IP world.
func driveMIP(w *mobileip.World, sc Scale, meanResidence time.Duration, homeOf func(i int) ids.MSS) (issued, delivered int64) {
	cells := w.StationList()
	horizon := sc.Horizon
	type pendingReq struct {
		mn  *mobileip.MobileNode
		req ids.RequestID
	}
	var reqs []pendingReq
	for i := 1; i <= sc.MHs; i++ {
		rng := w.Kernel.RNG().Fork()
		mhID := ids.MH(i)
		start := cells[rng.Intn(len(cells))]
		mn := w.AddMH(mhID, start, homeOf(i))
		mob := workload.Mobility{
			Picker:    workload.UniformCells{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: meanResidence, Floor: meanResidence / 10},
		}
		for _, ev := range workload.Itinerary(rng, mob, start, horizon) {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				w.Kernel.After(ev.At, func() { w.Migrate(mhID, ev.Cell) })
			}
		}
		reqCfg := workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 800 * time.Millisecond, Floor: 20 * time.Millisecond},
			Servers:      []ids.Server{1, 2},
			PayloadBytes: 32,
		}
		for _, a := range workload.Schedule(rng, reqCfg, horizon) {
			a := a
			w.Kernel.After(a.At, func() {
				reqs = append(reqs, pendingReq{mn: mn, req: mn.IssueRequest(a.Server, a.Payload)})
			})
		}
	}
	w.RunUntil(horizon + horizon/2)
	for _, pr := range reqs {
		issued++
		if pr.mn.Seen(pr.req) {
			delivered++
		}
	}
	return issued, delivered
}

// ---------------------------------------------------------------------
// E6 — hand-off state transfer.

// E6Row compares hand-off cost at one pending-request level. Both
// protocols deliver everything (the Delivered columns document equal
// functionality); the contrast is the per-hand-off state volume.
type E6Row struct {
	PendingRequests int
	RDPBytesPerHO   float64
	ITCPBytesPerHO  float64
	RDPHandoffP95   time.Duration
	ITCPHandoffP95  time.Duration
	RDPDelivered    int64
	ITCPDelivered   int64
}

// E6HandoffState measures hand-off state volume as the number of
// in-flight requests grows, for RDP (pref only) and the I-TCP-style
// image baseline. Paper claim (§5): "except for the proxy reference,
// neither result forwarding pointers nor other residue ... need to be
// kept at the MSS" — RDP's per-hand-off bytes must stay flat while the
// baseline's grow linearly.
// The scenario for each sweep point: the MH issues `pending` requests
// with 128-byte results, goes inactive just before the results arrive
// (so undelivered results accumulate on the fixed side — at the RDP
// proxy, in the I-TCP session image), is carried to a new cell asleep,
// and wakes there, triggering one hand-off that must move whatever
// per-MH state the protocol keeps at the station.
func E6HandoffState(seed int64, sc Scale) []E6Row {
	var rows []E6Row
	for _, pending := range []int{1, 5, 20, 50} {
		row := E6Row{PendingRequests: pending}

		cfg := baseConfig(seed)
		cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
		cfg.WirelessLatency = netsim.Constant(10 * time.Millisecond)
		cfg.ServerProc = netsim.Constant(300 * time.Millisecond)
		w := rdpcore.NewWorld(cfg)
		mh := w.AddMH(1, 1)
		w.Schedule(0, func() {
			for i := 0; i < pending; i++ {
				mh.IssueRequest(1, make([]byte, 128))
			}
		})
		w.Schedule(250*time.Millisecond, func() { w.SetActive(1, false) })
		w.Schedule(600*time.Millisecond, func() { w.Migrate(1, 2) }) // carried asleep
		w.Schedule(800*time.Millisecond, func() { w.SetActive(1, true) })
		w.RunUntil(10 * time.Second)
		if h := w.Stats.Handoffs.Value(); h > 0 {
			row.RDPBytesPerHO = float64(w.Stats.HandoffStateBytes.Value()) / float64(h)
		}
		row.RDPHandoffP95 = w.Stats.HandoffLatency.Quantile(0.95)
		row.RDPDelivered = w.Stats.ResultsDelivered.Value()

		icfg := itcp.DefaultConfig()
		icfg.Seed = seed
		icfg.NumMSS = cfg.NumMSS
		icfg.WiredLatency = cfg.WiredLatency
		icfg.WirelessLatency = cfg.WirelessLatency
		icfg.ServerProc = cfg.ServerProc
		iw := itcp.NewWorld(icfg)
		im := iw.AddMH(1, 1)
		iw.Kernel.After(0, func() {
			for i := 0; i < pending; i++ {
				im.IssueRequest(1, make([]byte, 128))
			}
		})
		iw.Kernel.After(250*time.Millisecond, func() { iw.SetActive(1, false) })
		iw.Kernel.After(600*time.Millisecond, func() { iw.Migrate(1, 2) })
		iw.Kernel.After(800*time.Millisecond, func() { iw.SetActive(1, true) })
		iw.RunUntil(10 * time.Second)
		if h := iw.Stats.Handoffs.Value(); h > 0 {
			row.ITCPBytesPerHO = float64(iw.Stats.HandoffStateBytes.Value()) / float64(h)
		}
		row.ITCPHandoffP95 = iw.Stats.HandoffLatency.Quantile(0.95)
		row.ITCPDelivered = iw.Stats.ResultsDelivered.Value()

		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------
// E7 — delivery vs Mobile IP.

// E7Row is one sweep point of experiment E7.
type E7Row struct {
	Protocol      string
	MeanResidence time.Duration
	Issued        int64
	Delivered     int64
	Ratio         float64
	MeanLatency   time.Duration
	P50Latency    time.Duration
	P95Latency    time.Duration
	P99Latency    time.Duration
}

// E7VsMobileIP sweeps mobility and measures delivery ratio and result
// latency for RDP, plain Mobile IP, and Mobile IP with an upper-layer
// 2s retransmission shim. Paper claims (§4): "Mobile IP does not
// guarantee reliable data delivery" (datagrams lost during care-of
// updates and inactivity), while conventional upper-layer recovery
// "presents bad performance when used in a wireless environment".
func E7VsMobileIP(seed int64, sc Scale) []E7Row {
	var rows []E7Row
	for _, res := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
		// RDP.
		cfg := baseConfig(seed)
		w := rdpcore.NewWorld(cfg)
		issued, delivered := drive(w, sc, netsim.Exponential{MeanDelay: res, Floor: res / 10}, 0.15)
		rows = append(rows, e7row("RDP", res, issued, delivered, &w.Stats.ResultLatency))

		// Plain Mobile IP (no recovery).
		mcfg := mobileip.DefaultConfig()
		mcfg.Seed = seed
		mcfg.NumMSS = cfg.NumMSS
		mcfg.NumServers = cfg.NumServers
		mcfg.WiredLatency = cfg.WiredLatency
		mcfg.WirelessLatency = cfg.WirelessLatency
		mcfg.ServerProc = cfg.ServerProc
		mw := mobileip.NewWorld(mcfg)
		mi, md := driveMIP(mw, sc, res, func(i int) ids.MSS {
			return ids.MSS(i%mcfg.NumMSS + 1)
		})
		rows = append(rows, e7row("MobileIP", res, mi, md, &mw.Stats.ResultLatency))

		// Mobile IP + upper-layer timeout recovery.
		mcfg.RequestTimeout = 2 * time.Second
		mw2 := mobileip.NewWorld(mcfg)
		ri, rd := driveMIP(mw2, sc, res, func(i int) ids.MSS {
			return ids.MSS(i%mcfg.NumMSS + 1)
		})
		rows = append(rows, e7row("MobileIP+retry", res, ri, rd, &mw2.Stats.ResultLatency))
	}
	return rows
}

func e7row(proto string, res time.Duration, issued, delivered int64, lat *metrics.Histogram) E7Row {
	ratio := 0.0
	if issued > 0 {
		ratio = float64(delivered) / float64(issued)
	}
	return E7Row{
		Protocol:      proto,
		MeanResidence: res,
		Issued:        issued,
		Delivered:     delivered,
		Ratio:         ratio,
		MeanLatency:   lat.Mean(),
		P50Latency:    lat.Quantile(0.5),
		P95Latency:    lat.Quantile(0.95),
		P99Latency:    lat.Quantile(0.99),
	}
}
