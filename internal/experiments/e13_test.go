package experiments

import "testing"

// TestE13QuickSweep runs the quick-scale E13 sweep and enforces the
// experiment's gates: perfect delivery, no duplicates, no protocol
// violations, no stragglers, and exact headline equality between the
// 1-region baseline and every partitioned run of a tier.
func TestE13QuickSweep(t *testing.T) {
	rows := E13Scale(1, SmallScale(), nil, 0)
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	for _, r := range rows {
		if r.Ratio != 1.0 {
			t.Errorf("cells=%d regions=%d: ratio %.6f, want 1.0", r.Cells, r.Regions, r.Ratio)
		}
		if r.Duplicates != 0 {
			t.Errorf("cells=%d regions=%d: %d duplicate deliveries", r.Cells, r.Regions, r.Duplicates)
		}
		if r.Missing != 0 {
			t.Errorf("cells=%d regions=%d: %d undelivered requests", r.Cells, r.Regions, r.Missing)
		}
		if r.Violations != 0 {
			t.Errorf("cells=%d regions=%d: %d protocol violations", r.Cells, r.Regions, r.Violations)
		}
		if !r.HeadlineEq {
			t.Errorf("cells=%d regions=%d: headline differs from the 1-region run", r.Cells, r.Regions)
		}
		if r.Issued == 0 {
			t.Errorf("cells=%d regions=%d: no requests issued", r.Cells, r.Regions)
		}
	}
	// Multi-region rows must actually exchange traffic — a sweep where no
	// frame ever crosses a border would not test the engine.
	var crossed bool
	for _, r := range rows {
		if r.Regions > 1 && r.CrossFrames > 0 {
			crossed = true
		}
	}
	if !crossed {
		t.Error("no multi-region row recorded any cross-region frames")
	}
}
