package experiments

import (
	"time"

	"repro/internal/ids"
	"repro/internal/mobileip"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E5ShiftRow reports, for one protocol, the fraction of forwarding work
// carried by the hotspot stations in each phase of the population-shift
// experiment.
type E5ShiftRow struct {
	Protocol      string
	Phase1Hotspot float64 // load share of the hotspot cells while users roam everywhere
	Phase2Hotspot float64 // load share after every user confines itself to the hotspot
}

// E5DynamicShift sharpens E5's *dynamic* claim: half-way through the
// run, every user's movement confines itself to two "downtown" cells.
// RDP's forwarding work follows them there (new proxies are created
// where requests are issued); Mobile IP's stays wherever the home
// agents were assigned, however well that assignment matched the old
// population. The measured quantity is the share of forwarding work the
// two hotspot stations carry in each phase.
func E5DynamicShift(seed int64, sc Scale) []E5ShiftRow {
	cfg := baseConfig(seed)
	hotspot := []ids.MSS{1, 2}

	// RDP run.
	w := rdpcore.NewWorld(cfg)
	var rdpPhase1 []float64
	w.Schedule(sc.Horizon/2, func() {
		rdpPhase1 = w.Stats.ForwardLoads(w.StationList())
	})
	drivePhased(rdpDriver{w}, w.Kernel.RNG().Fork, sc)
	w.RunUntil(sc.Horizon + sc.Horizon/4)
	rdpPhase2 := diff(w.Stats.ForwardLoads(w.StationList()), rdpPhase1)

	// Mobile IP run with homes spread round-robin (its best static case).
	mcfg := mobileip.DefaultConfig()
	mcfg.Seed = seed
	mcfg.NumMSS = cfg.NumMSS
	mcfg.NumServers = cfg.NumServers
	mcfg.WiredLatency = cfg.WiredLatency
	mcfg.WirelessLatency = cfg.WirelessLatency
	mcfg.ServerProc = cfg.ServerProc
	mcfg.RequestTimeout = 2 * time.Second
	mw := mobileip.NewWorld(mcfg)
	var mipPhase1 []float64
	mw.Kernel.After(sc.Horizon/2, func() {
		mipPhase1 = tunnelLoads(mw)
	})
	drivePhased(mipDriver{mw, mcfg.NumMSS}, mw.Kernel.RNG().Fork, sc)
	mw.RunUntil(sc.Horizon + sc.Horizon/4)
	mipPhase2 := diff(tunnelLoads(mw), mipPhase1)

	return []E5ShiftRow{
		{
			Protocol:      "RDP (proxies follow users)",
			Phase1Hotspot: share(rdpPhase1, hotspot),
			Phase2Hotspot: share(rdpPhase2, hotspot),
		},
		{
			Protocol:      "Mobile IP (spread homes)",
			Phase1Hotspot: share(mipPhase1, hotspot),
			Phase2Hotspot: share(mipPhase2, hotspot),
		},
	}
}

// protocolDriver abstracts the two worlds for the shared phased driver.
type protocolDriver interface {
	stations() []ids.MSS
	addHost(id ids.MH, cell ids.MSS)
	schedule(at time.Duration, fn func())
	migrate(id ids.MH, cell ids.MSS)
	request(id ids.MH, srv ids.Server, payload []byte)
}

type rdpDriver struct{ w *rdpcore.World }

func (d rdpDriver) stations() []ids.MSS { return d.w.StationList() }
func (d rdpDriver) addHost(id ids.MH, cell ids.MSS) {
	d.w.AddMH(id, cell)
}
func (d rdpDriver) schedule(at time.Duration, fn func()) { d.w.Schedule(at, fn) }
func (d rdpDriver) migrate(id ids.MH, cell ids.MSS)      { d.w.Migrate(id, cell) }
func (d rdpDriver) request(id ids.MH, srv ids.Server, payload []byte) {
	d.w.MHs[id].IssueRequest(srv, payload)
}

type mipDriver struct {
	w    *mobileip.World
	mssN int
}

func (d mipDriver) stations() []ids.MSS { return d.w.StationList() }
func (d mipDriver) addHost(id ids.MH, cell ids.MSS) {
	d.w.AddMH(id, cell, ids.MSS(int(id)%d.mssN+1))
}
func (d mipDriver) schedule(at time.Duration, fn func()) { d.w.Kernel.After(at, fn) }
func (d mipDriver) migrate(id ids.MH, cell ids.MSS)      { d.w.Migrate(id, cell) }

func (d mipDriver) request(id ids.MH, srv ids.Server, payload []byte) {
	d.w.Node(id).IssueRequest(srv, payload)
}

// drivePhased runs the two-phase workload: phase 1 roams all cells,
// phase 2 confines every host to the first two.
func drivePhased(d protocolDriver, fork func() *sim.RNG, sc Scale) {
	cells := d.stations()
	hotspot := cells[:2]
	res := 800 * time.Millisecond
	for i := 1; i <= sc.MHs; i++ {
		id := ids.MH(i)
		rng := fork()
		d.addHost(id, cells[rng.Intn(len(cells))])

		phase1 := workload.Itinerary(rng, workload.Mobility{
			Picker:    workload.UniformCells{Cells: cells},
			Residence: netsim.Exponential{MeanDelay: res, Floor: res / 10},
		}, cells[0], sc.Horizon/2)
		for _, ev := range phase1 {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				d.schedule(ev.At, func() { d.migrate(id, ev.Cell) })
			}
		}
		// Phase boundary: everyone relocates downtown.
		start2 := hotspot[rng.Intn(len(hotspot))]
		d.schedule(sc.Horizon/2, func() { d.migrate(id, start2) })
		phase2 := workload.Itinerary(rng, workload.Mobility{
			Picker:    workload.UniformCells{Cells: hotspot},
			Residence: netsim.Exponential{MeanDelay: res, Floor: res / 10},
		}, start2, sc.Horizon/2)
		for _, ev := range phase2 {
			ev := ev
			if ev.Kind == workload.EvMigrate {
				d.schedule(sc.Horizon/2+ev.At, func() { d.migrate(id, ev.Cell) })
			}
		}

		reqs := workload.Schedule(rng, workload.Requests{
			Interarrival: netsim.Exponential{MeanDelay: 700 * time.Millisecond, Floor: 20 * time.Millisecond},
			Servers:      []ids.Server{1, 2},
			PayloadBytes: 24,
		}, sc.Horizon)
		for _, a := range reqs {
			a := a
			d.schedule(a.At, func() { d.request(id, a.Server, a.Payload) })
		}
	}
}

func tunnelLoads(mw *mobileip.World) []float64 {
	out := make([]float64, 0, len(mw.StationList()))
	for _, st := range mw.StationList() {
		out = append(out, float64(mw.Stats.TunnelLoad[st]))
	}
	return out
}

// diff returns cur - prev element-wise (prev may be nil).
func diff(cur, prev []float64) []float64 {
	out := make([]float64, len(cur))
	for i := range cur {
		out[i] = cur[i]
		if i < len(prev) {
			out[i] -= prev[i]
		}
	}
	return out
}

// share returns the fraction of total load carried by the given
// stations (station i is index i-1).
func share(loads []float64, stations []ids.MSS) float64 {
	var total, hot float64
	for i, l := range loads {
		total += l
		for _, s := range stations {
			if int(s) == i+1 {
				hot += l
			}
		}
	}
	if total == 0 {
		return 0
	}
	return hot / total
}
