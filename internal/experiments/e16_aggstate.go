package experiments

import (
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rdpcore"
	"repro/internal/sidam"
)

// E16 — aggregated location state: the tentpole measurement for the
// O(hosts) → O(cells·servers) station-memory claim. The workload is the
// SIDAM notification scenario at subscriber scale: every mobile host in
// a cell subscribes to the same region's congestion feed, one updater
// per region later fires the notification, and ~10% of subscribers
// hand off between subscribing and being notified.
//
// Each tier runs twice — paper-faithful per-MH proxies vs the
// aggregated representation with shared group proxies (GroupTopic =
// sidam.SubscribeTopic) — on the identical seed and schedule, and the
// rows report:
//
//   - StateBytes / PerMSS: the modeled station state footprint
//     (rdpcore.StateBytes) at the subscribed peak — after the hand-off
//     wave, before the notification — total and per station. The
//     headline Reduction on the aggregated row is the faithful
//     PerMSS over the aggregated PerMSS, and is guarded: it is only
//     computed (-1 otherwise) when both rows delivered exactly the
//     same results with zero losses and duplicates, so a representation
//     that cheats on delivery can never report a ratio.
//   - Signaling: the hand-off + fan-out signaling total
//     (2·Handoffs + UpdateCurrLocs + GroupUpdateLocs + AckForwards +
//     GroupAckForwards). Faithful hand-offs re-signal the proxy per
//     host and relay every delivery ack individually; aggregated
//     hand-offs coalesce into delta-encoded group messages under
//     AggFlushDelay. SigReduction is guarded the same way.
//   - Outstanding: the outstanding-request ledger (identical in both
//     modes by construction — workload state, not representation
//     state), reported so the comparison's scope is visible.
//
// The top tier (1M subscribers) runs aggregated-only: the point of the
// aggregation is exactly that the faithful representation does not fit
// that scale comfortably, and the row's PeakRSS pins the aggregated
// engine inside the E14 memory envelope.

// E16 workload schedule (virtual time). Subscribing spreads over the
// first second, the hand-off wave runs at 2s, state is measured at
// 3.4s, the notification wave starts at 3.5s — staggered one region
// per 5ms, because a single-instant wave would put every notification
// on the causal backbone simultaneously and the per-message causal
// matrices (n×n in wired group size) would dominate peak RSS — and a
// second (no-op for subscriptions) update wave confirms the drained
// groups still serve. Virtual time is free, so the stagger costs
// nothing real.
const (
	e16SubscribeSpread = 1024 * time.Millisecond
	e16MigrateAt       = 2 * time.Second
	e16MigrateSpread   = 128 * time.Millisecond
	e16MeasureAt       = 3400 * time.Millisecond
	e16Update1At       = 3500 * time.Millisecond
	e16UpdateStagger   = 5 * time.Millisecond
	e16Drain           = 1500 * time.Millisecond

	// Subscription threshold and the two update values: baselines are
	// seeded in [0, 60], so |95-baseline| ≥ 35 ≥ 30 always fires the
	// first wave, and |10-95| = 85 would fire anything left.
	e16Threshold = 30
	e16Update1   = 95
	e16Update2   = 10
)

// e16Update2At and e16HorizonFor place the second wave and the end of
// the run after the staggered first wave has fully drained.
func e16Update2At(stations int) time.Duration {
	return e16Update1At + time.Duration(stations)*e16UpdateStagger + e16Drain
}

func e16HorizonFor(stations int) time.Duration {
	return e16Update2At(stations) + time.Duration(stations)*e16UpdateStagger + e16Drain
}

// E16Row is one (tier, representation) measurement.
type E16Row struct {
	MHs        int
	Stations   int
	Aggregated bool

	Issued     int64
	Delivered  int64
	Duplicates int64
	Missing    int

	// StateBytes is the modeled station state at the subscribed peak;
	// PerMSS is StateBytes / Stations. Outstanding is the (mode-
	// invariant) outstanding-ledger footprint at the same instant.
	StateBytes  int64
	PerMSS      float64
	Outstanding int64

	// Signaling is the hand-off + fan-out signaling message total (see
	// file comment); Handoffs is the raw hand-off count inside it.
	Signaling int64
	Handoffs  int64

	// SharedProxies / Notifications show the collapse on the two fixed
	// sides: group proxies hosted (0 when faithful) and TIS-side
	// subscription firings (per-host when faithful, per-group when
	// aggregated).
	SharedProxies int64
	Notifications int64

	// Reduction / SigReduction are set on aggregated rows only: the
	// faithful sibling's PerMSS (resp. Signaling) over this row's, or
	// -1 when the guard fails (delivery counts differ or anything was
	// lost or duplicated). 0 on faithful rows and the unpaired top tier.
	Reduction    float64
	SigReduction float64

	// PeakRSS is the process resident high-water mark after the row
	// (monotone across rows; meaningful on the last, largest row).
	PeakRSS   uint64
	PeakRSSOK bool

	Wall time.Duration
}

// e16Stations sizes the cell grid for a tier: one station per ~1k
// subscribers, floored at 8 (the base topology) and capped at 1024.
func e16Stations(mhs int) int {
	s := mhs / 1024
	if s < 8 {
		s = 8
	}
	if s > 1024 {
		s = 1024
	}
	return s
}

// E16Run builds one tier in one representation and drives the
// subscription workload to quiescence.
func E16Run(seed int64, mhs int, agg bool) E16Row {
	stations := e16Stations(mhs)
	cfg := rdpcore.DefaultConfig()
	cfg.Seed = seed
	cfg.NumMSS = stations
	cfg.NumServers = 8
	cfg.WiredLatency = netsim.Constant(5 * time.Millisecond)
	cfg.WirelessLatency = netsim.Constant(20 * time.Millisecond)
	// The causal wired backbone keeps an O(n²) matrix per in-flight
	// message (n = stations + servers ≈ 1k at the top tier ⇒ ~8MB per
	// send). That is ordering-layer simulator state, not the location
	// state this experiment measures, and E14 never pays it at scale
	// because psim partitions the wired group per region. Both modes run
	// without it — the constant wired latency keeps per-pair FIFO order,
	// and exactly-once holds either way (TestExactlyOnceUnderCausalOrder).
	cfg.Causal = false
	cfg.AggregatedState = agg
	if agg {
		cfg.GroupTopic = sidam.SubscribeTopic
		cfg.AggFlushDelay = 50 * time.Millisecond
	}
	t0 := time.Now()
	w := rdpcore.NewWorld(cfg)
	net := sidam.Install(w, sidam.Config{
		Regions:           uint32(stations),
		LocalProc:         netsim.Constant(20 * time.Millisecond),
		HopProc:           netsim.Constant(5 * time.Millisecond),
		InitialCongestion: 60,
	})

	// Subscribers 1..mhs deal round-robin over the stations; each
	// subscribes to its home station's region at the region's owning
	// TIS. Updaters mhs+1..mhs+stations (one per region) fire the two
	// update waves through private proxies (SubscribeTopic declines
	// updates).
	type pendingReq struct {
		mh  ids.MH
		req ids.RequestID
	}
	reqs := make([]pendingReq, 0, mhs+2*stations)
	stationOf := func(i int) ids.MSS { return ids.MSS(1 + (i-1)%stations) }
	regionOf := func(s ids.MSS) uint32 { return uint32(s - 1) }

	subBuckets := make([][]ids.MH, int(e16SubscribeSpread/time.Millisecond))
	migBuckets := make([][]ids.MH, int(e16MigrateSpread/time.Millisecond))
	for i := 1; i <= mhs; i++ {
		id := ids.MH(i)
		w.AddMH(id, stationOf(i))
		subBuckets[i%len(subBuckets)] = append(subBuckets[i%len(subBuckets)], id)
		if i%10 == 0 {
			migBuckets[(i/10)%len(migBuckets)] = append(migBuckets[(i/10)%len(migBuckets)], id)
		}
	}
	for off, bucket := range subBuckets {
		bucket := bucket
		w.Kernel.After(time.Duration(off)*time.Millisecond, func() {
			for _, id := range bucket {
				s := stationOf(int(id))
				region := regionOf(s)
				mh := w.MHs[id]
				r := mh.IssueRequest(net.Owner(region), sidam.EncodeSubscribe(region, e16Threshold))
				reqs = append(reqs, pendingReq{mh: id, req: r})
			}
		})
	}
	// The hand-off wave: every tenth subscriber moves to the next cell
	// while its subscription is still unanswered, so the pending fan-out
	// must chase it.
	for off, bucket := range migBuckets {
		bucket := bucket
		w.Kernel.After(e16MigrateAt+time.Duration(off)*time.Millisecond, func() {
			for _, id := range bucket {
				s := stationOf(int(id))
				w.Migrate(id, ids.MSS(1+int(s)%stations))
			}
		})
	}
	for j := 1; j <= stations; j++ {
		id := ids.MH(mhs + j)
		s := ids.MSS(j)
		w.AddMH(id, s)
		region := regionOf(s)
		stag := time.Duration(j-1) * e16UpdateStagger
		for _, uw := range []struct {
			at    time.Duration
			value int32
		}{{e16Update1At + stag, e16Update1}, {e16Update2At(stations) + stag, e16Update2}} {
			wave, value := uw.at, uw.value
			w.Kernel.After(wave, func() {
				mh := w.MHs[id]
				r := mh.IssueRequest(net.Owner(region), sidam.EncodeUpdate(region, value))
				reqs = append(reqs, pendingReq{mh: id, req: r})
			})
		}
	}

	var stateBytes, outstanding int64
	w.Kernel.After(e16MeasureAt, func() {
		stateBytes = w.StateBytes()
		outstanding = w.OutstandingBytes()
	})
	w.RunUntil(e16HorizonFor(stations))

	missing := 0
	for _, pr := range reqs {
		if !w.MHs[pr.mh].Seen(pr.req) {
			missing++
		}
	}
	rss, rssOK := metrics.PeakRSS()
	st := w.Stats
	return E16Row{
		MHs:        mhs,
		Stations:   stations,
		Aggregated: agg,
		Issued:     st.RequestsIssued.Value(),
		Delivered:  st.ResultsDelivered.Value(),
		Duplicates: st.DuplicateDeliveries.Value(),
		Missing:    missing,

		StateBytes:  stateBytes,
		PerMSS:      float64(stateBytes) / float64(stations),
		Outstanding: outstanding,

		Signaling: 2*st.Handoffs.Value() + st.UpdateCurrLocs.Value() +
			st.GroupUpdateLocs.Value() + st.AckForwards.Value() + st.GroupAckForwards.Value(),
		Handoffs: st.Handoffs.Value(),

		SharedProxies: st.SharedProxies.Value(),
		Notifications: net.Stats.Notifications.Value(),

		PeakRSS:   rss,
		PeakRSSOK: rssOK,
		Wall:      time.Since(t0),
	}
}

// E16Tiers returns the subscriber counts swept per scale. The bool is
// whether the aggregated-only 1M top tier rides along.
func E16Tiers(sc Scale) ([]int, bool) {
	if sc.MHs < DefaultScale().MHs {
		return []int{1000}, false
	}
	return []int{1000, 10000, 100000}, true
}

// e16Memo caches the sweep per (seed, scale): rdpbench's table and
// snapshot paths share one run.
var (
	e16Mu   sync.Mutex
	e16Memo = map[e16Key][]E16Row{}
)

type e16Key struct {
	seed int64
	mhs  int
}

// E16Aggregation runs the sweep: each tier in both representations
// (pairing the rows and computing the guarded reductions on the
// aggregated one), then the aggregated-only 1M tier.
func E16Aggregation(seed int64, sc Scale) []E16Row {
	e16Mu.Lock()
	defer e16Mu.Unlock()
	key := e16Key{seed: seed, mhs: sc.MHs}
	if rows, ok := e16Memo[key]; ok {
		return rows
	}
	tiers, top := E16Tiers(sc)
	var out []E16Row
	for _, mhs := range tiers {
		f := E16Run(seed, mhs, false)
		a := E16Run(seed, mhs, true)
		if f.Missing == 0 && a.Missing == 0 &&
			f.Delivered == a.Delivered && f.Duplicates == 0 && a.Duplicates == 0 &&
			a.PerMSS > 0 {
			a.Reduction = f.PerMSS / a.PerMSS
			if a.Signaling > 0 {
				a.SigReduction = float64(f.Signaling) / float64(a.Signaling)
			}
		} else {
			a.Reduction = -1
			a.SigReduction = -1
		}
		out = append(out, f, a)
	}
	if top {
		out = append(out, E16Run(seed, 1000000, true))
	}
	return out
}
